(** Client side of the compile-service wire protocol.

    A {!t} is one connection: requests written through it are answered in
    order, so a client can pipeline.  All helpers speak {!Protocol} v1 and
    return decoding problems as structured errors rather than raising —
    the only exceptions escaping this module are [Unix.Unix_error] from
    connect/IO (the daemon is down, the socket path is wrong). *)

type t

val connect : socket_path:string -> t
(** Raises [Unix.Unix_error] when nothing listens at [socket_path]. *)

val close : t -> unit
(** Idempotent. *)

val with_connection : socket_path:string -> (t -> 'a) -> 'a
(** [connect], run the callback, always [close]. *)

val roundtrip :
  t -> Protocol.request -> (Protocol.response, Fault.Ompgpu_error.t) result
(** Send one request and block for its response line.  [Error] covers a
    connection closed mid-response and undecodable response bytes (both
    [Internal], phase [Serving]). *)

val roundtrip_json :
  t -> Observe.Json.t -> (Observe.Json.t, Fault.Ompgpu_error.t) result
(** {!roundtrip} at the wire level: one JSON line out, one line back,
    no decoding of either — what [mompd request] and protocol tests
    speak. *)

val compile :
  t ->
  ?id:string ->
  ?file:string ->
  config:Ompgpu_api.Config.t ->
  string ->
  (Ompgpu_api.compiled, Fault.Ompgpu_error.t) result
(** Compile one source through the daemon.  [Ok] carries every settled
    result — including structured failures ([compiled.exit_code <> 0],
    e.g. a shed request) — whose bytes match a one-shot [mompc]; [Error]
    is reserved for transport/protocol breakdowns.  [file] defaults to
    ["<service>"], [id] to ["c0"]. *)

val stats :
  t -> ?id:string -> unit -> (Observe.Json.t, Fault.Ompgpu_error.t) result
(** The daemon's live counters (schema 2). *)

val shutdown :
  t -> ?id:string -> unit -> (unit, Fault.Ompgpu_error.t) result
(** Ask the daemon to stop; [Ok ()] once the acknowledgement arrives. *)

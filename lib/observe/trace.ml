(* Pass-pipeline trace layer: per-round, per-pass, per-function events. *)

type ir_stats = {
  funcs : int;
  blocks : int;
  instrs : int;
  calls : int;
  allocs : int;
}

let ir_stats_zero = { funcs = 0; blocks = 0; instrs = 0; calls = 0; allocs = 0 }

let ir_stats_add a b =
  {
    funcs = a.funcs + b.funcs;
    blocks = a.blocks + b.blocks;
    instrs = a.instrs + b.instrs;
    calls = a.calls + b.calls;
    allocs = a.allocs + b.allocs;
  }

let ir_stats_sub a b =
  {
    funcs = a.funcs - b.funcs;
    blocks = a.blocks - b.blocks;
    instrs = a.instrs - b.instrs;
    calls = a.calls - b.calls;
    allocs = a.allocs - b.allocs;
  }

let ir_stats_is_zero s = s = ir_stats_zero

(* runtime entry points that allocate: counted as allocation sites so the
   deglobalization delta shows up in [allocs], not just [calls] *)
let allocating_runtime_call = function
  | "__kmpc_alloc_shared" | "__kmpc_data_sharing_push_stack" -> true
  | _ -> false

let stats_of_func (f : Ir.Func.t) =
  if Ir.Func.is_declaration f then ir_stats_zero
  else
    Ir.Func.fold_instrs f
      ~init:{ ir_stats_zero with funcs = 1; blocks = List.length f.Ir.Func.blocks }
      ~g:(fun acc _ (i : Ir.Instr.t) ->
        let acc = { acc with instrs = acc.instrs + 1 } in
        match i.Ir.Instr.kind with
        | Ir.Instr.Alloca _ -> { acc with allocs = acc.allocs + 1 }
        | Ir.Instr.Call (_, Ir.Instr.Direct name, _) when allocating_runtime_call name ->
          { acc with calls = acc.calls + 1; allocs = acc.allocs + 1 }
        | Ir.Instr.Call _ -> { acc with calls = acc.calls + 1 }
        | _ -> acc)

let stats_of_module (m : Ir.Irmod.t) =
  List.fold_left
    (fun acc f -> ir_stats_add acc (stats_of_func f))
    ir_stats_zero
    (Ir.Irmod.defined_funcs m)

type snapshot = (string * ir_stats) list

let snapshot (m : Ir.Irmod.t) : snapshot =
  List.map (fun f -> (f.Ir.Func.name, stats_of_func f)) (Ir.Irmod.defined_funcs m)

type event = {
  seq : int;
  round : int;
  pass : string;
  time_s : float;
  delta : ir_stats;
  per_func : (string * ir_stats) list;
  counters : (string * int) list;
}

type t = { mutable rev_events : event list; mutable next_seq : int; on_event : event -> unit }

let create ?(on_event = fun _ -> ()) () = { rev_events = []; next_seq = 0; on_event }

let diff_snapshots (before : snapshot) (after : snapshot) =
  let deltas = ref [] in
  (* functions present after the pass: delta vs. before (zero if new) *)
  List.iter
    (fun (name, sa) ->
      let sb =
        match List.assoc_opt name before with Some s -> s | None -> ir_stats_zero
      in
      let d = ir_stats_sub sa sb in
      if not (ir_stats_is_zero d) then deltas := (name, d) :: !deltas)
    after;
  (* functions the pass deleted: their full statistics, negated *)
  List.iter
    (fun (name, sb) ->
      if not (List.mem_assoc name after) then
        deltas := (name, ir_stats_sub ir_stats_zero sb) :: !deltas)
    before;
  List.rev !deltas

let record_pass tr ~round ~pass ~time_s ~before ~after ~counters =
  let per_func = diff_snapshots before after in
  let delta =
    List.fold_left (fun acc (_, d) -> ir_stats_add acc d) ir_stats_zero per_func
  in
  let counters = List.filter (fun (_, v) -> v <> 0) counters in
  let event =
    { seq = tr.next_seq; round; pass; time_s; delta; per_func; counters }
  in
  tr.next_seq <- tr.next_seq + 1;
  tr.rev_events <- event :: tr.rev_events;
  tr.on_event event;
  event

let events tr = List.rev tr.rev_events

let pp_event ppf e =
  let pp_delta ppf (d : ir_stats) =
    let field name v = if v <> 0 then Some (Printf.sprintf "%s%+d" name v) else None in
    let parts =
      List.filter_map Fun.id
        [
          field "funcs" d.funcs; field "blocks" d.blocks; field "instrs" d.instrs;
          field "calls" d.calls; field "allocs" d.allocs;
        ]
    in
    Fmt.string ppf (if parts = [] then "=" else String.concat " " parts)
  in
  Fmt.pf ppf "r%d %-14s %8.3fms  %a" e.round e.pass (e.time_s *. 1000.0) pp_delta
    e.delta;
  if e.counters <> [] then
    Fmt.pf ppf "  {%s}"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) e.counters))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let stats_to_json (s : ir_stats) =
  Json.Obj
    [
      ("funcs", Json.Int s.funcs);
      ("blocks", Json.Int s.blocks);
      ("instrs", Json.Int s.instrs);
      ("calls", Json.Int s.calls);
      ("allocs", Json.Int s.allocs);
    ]

let stats_of_json j =
  let get k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "ir_stats: missing int field %S" k)
  in
  Result.bind (get "funcs") (fun funcs ->
      Result.bind (get "blocks") (fun blocks ->
          Result.bind (get "instrs") (fun instrs ->
              Result.bind (get "calls") (fun calls ->
                  Result.map
                    (fun allocs -> { funcs; blocks; instrs; calls; allocs })
                    (get "allocs")))))

let event_to_json e =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("round", Json.Int e.round);
      ("pass", Json.String e.pass);
      ("time_us", Json.Int (int_of_float (e.time_s *. 1e6)));
      ("delta", stats_to_json e.delta);
      ( "per_func",
        Json.List
          (List.map
             (fun (name, d) ->
               match stats_to_json d with
               | Json.Obj members -> Json.Obj (("func", Json.String name) :: members)
               | j -> j)
             e.per_func) );
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.counters));
    ]

let event_of_json j =
  let int k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "event: missing int field %S" k)
  in
  let str k =
    match Option.bind (Json.member k j) Json.to_str with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "event: missing string field %S" k)
  in
  Result.bind (int "seq") (fun seq ->
      Result.bind (int "round") (fun round ->
          Result.bind (str "pass") (fun pass ->
              Result.bind (int "time_us") (fun time_us ->
                  Result.bind
                    (match Json.member "delta" j with
                    | Some d -> stats_of_json d
                    | None -> Error "event: missing \"delta\"")
                    (fun delta ->
                      let per_func =
                        match Option.bind (Json.member "per_func" j) Json.to_list with
                        | None -> Ok []
                        | Some items ->
                          List.fold_left
                            (fun acc item ->
                              Result.bind acc (fun acc ->
                                  match
                                    Option.bind (Json.member "func" item) Json.to_str
                                  with
                                  | None -> Error "per_func: missing \"func\""
                                  | Some name ->
                                    Result.map
                                      (fun d -> (name, d) :: acc)
                                      (stats_of_json item)))
                            (Ok []) items
                          |> Result.map List.rev
                      in
                      Result.map
                        (fun per_func ->
                          let counters =
                            match Json.member "counters" j with
                            | Some (Json.Obj members) ->
                              List.filter_map
                                (fun (k, v) ->
                                  Option.map (fun v -> (k, v)) (Json.to_int v))
                                members
                            | _ -> []
                          in
                          {
                            seq;
                            round;
                            pass;
                            time_s = float_of_int time_us /. 1e6;
                            delta;
                            per_func;
                            counters;
                          })
                        per_func)))))

let to_json tr = Json.List (List.map event_to_json (events tr))

(** Machine description and cost model for the cycle-approximate GPU
    simulator.  Absolute constants do not aim to match silicon; the ratios
    between runtime-call overheads, memory-space latencies, synchronization
    and region-launch costs are what drive the reproduced figures. *)

type costs = {
  alu : int;
  imul : int;
  idiv : int;
  fadd : int;
  fmul : int;
  fdiv : int;
  cast : int;
  local_access : int;
  shared_access : int;
  shared_uncoalesced_access : int;
      (** runtime-stack shared allocations are laid out AoS per allocation,
          unlike the legacy SoA aggregate or static shared memory *)
  global_access : int;
  global_cached_access : int;  (** small arrays resident in the RO cache *)
  call : int;
  indirect_call : int;  (** function-pointer call: no inlining, ABI spill *)
  runtime_query : int;  (** bitcode-visible queries (inlined-runtime model) *)
  runtime_query_opaque : int;  (** opaque library entries (LLVM-12 model) *)
  barrier : int;
  target_init_generic : int;
  target_init_spmd : int;
  target_init_cuda : int;
  target_deinit : int;
  parallel_publish : int;  (** main signals the worker state machine *)
  parallel_join : int;
  worker_resume : int;
  worker_done : int;
  alloc_shared_main : int;  (** bump allocation on the team's shared stack *)
  alloc_shared_parallel : int;  (** contended global-heap path *)
  free_shared : int;
  push_stack : int;  (** legacy aggregated allocation *)
  pop_stack : int;
  atomic_global : int;
  atomic_shared : int;
  math_sqrt : int;
  math_trig : int;
  math_pow : int;
  trace : int;
}

val default_costs : costs

type t = {
  name : string;
  num_sms : int;
  warp_size : int;
  max_threads_per_team : int;
  shared_bytes_per_team : int;
  dyn_shared_stack_bytes : int;
      (** the runtime's dynamic data-sharing carve-out; [__kmpc_alloc_shared]
          falls back to the device heap beyond it *)
  local_bytes_per_thread : int;
  heap_bytes : int;  (** device heap backing globalization spills *)
  global_bytes : int;
  default_teams : int;  (** launch default when no num_teams clause *)
  default_threads : int;
  registers_per_sm : int;
  max_warps_per_sm : int;
  costs : costs;
}

val v100_like : t
(** A V100-scale machine (80 SMs, 8 MB heap). *)

val test_machine : t
(** Small and fast; used by the unit tests. *)

val bench_machine : t
(** The machine of the experiment harness: 8 SMs and a 64 KB heap, sized so
    the paper's RSBench out-of-memory behaviour (Fig. 11b) reproduces at the
    bench workload scale. *)

(* mompc: the MiniOMP compiler driver.

   Parses MiniOMP source files, lowers them with the selected globalization
   scheme, optionally runs the OpenMP-aware optimizer, prints remarks, and
   emits the resulting MiniIR.  Optionally runs each program on the GPU
   simulator and reports kernel statistics.

   Several files compile as one batch: [-j N] runs them on N scheduler
   domains (per-file output is buffered and printed in input order, so
   parallel output is byte-identical to sequential), and [--cache-dir DIR]
   memoizes each file's full compiler output on disk, content-addressed by
   source text, scheme and pass options.

   The disable flags mirror the paper artifact's LLVM flags
   openmp-opt-disable-... . *)

open Cmdliner

let scheme_conv =
  let parse = function
    | "simplified" -> Ok Frontend.Codegen.Simplified
    | "legacy" -> Ok Frontend.Codegen.Legacy
    | "cuda" -> Ok Frontend.Codegen.Cuda
    | s -> Error (`Msg ("unknown scheme: " ^ s))
  in
  let print ppf s = Fmt.string ppf (Frontend.Codegen.scheme_name s) in
  Arg.conv (parse, print)

(* Result of compiling one file: the process exit code it asks for, plus
   everything it wants on stdout/stderr.  Buffering instead of printing
   directly is what makes parallel batch compilation safe: formatters are
   not shared across domains, and output order is decided by the driver. *)
type file_result = { code : int; out : string; err : string }

let compile_one ~scheme ~options ~emit_ir ~run_sim ~remarks_only ~stats_json
    ~print_trace file : file_result =
  let out_buf = Buffer.create 1024 in
  let err_buf = Buffer.create 1024 in
  let out = Format.formatter_of_buffer out_buf in
  let err = Format.formatter_of_buffer err_buf in
  let finish code =
    Format.pp_print_flush out ();
    Format.pp_print_flush err ();
    { code; out = Buffer.contents out_buf; err = Buffer.contents err_buf }
  in
  let src = In_channel.with_open_text file In_channel.input_all in
  match Frontend.Codegen.compile ~scheme ~file src with
  | exception Frontend.Codegen.Error (msg, loc) ->
    Fmt.pf err "%a: error: %s@." Support.Loc.pp loc msg;
    finish 1
  | exception Frontend.Cparse.Parse_error (msg, loc) ->
    Fmt.pf err "%a: parse error: %s@." Support.Loc.pp loc msg;
    finish 1
  | exception Frontend.Lexer.Lex_error (msg, loc) ->
    Fmt.pf err "%a: lex error: %s@." Support.Loc.pp loc msg;
    finish 1
  | m -> (
    match Ir.Verify.check m with
    | Error msg ->
      Fmt.pf err "verifier error (front end): %s@." msg;
      finish 1
    | Ok () -> (
      (* the trace feeds both --trace (human-readable) and --stats-json *)
      let trace =
        if print_trace || stats_json <> None then Some (Observe.Trace.create ())
        else None
      in
      let opt_report = ref None in
      let verifier_failed = ref false in
      (match options with
      | None -> ()
      | Some options ->
        let report = Openmpopt.Pass_manager.run ~options ?trace m in
        opt_report := Some report;
        List.iter
          (fun r -> Fmt.pf err "%s@." (Openmpopt.Remark.to_string r))
          report.Openmpopt.Pass_manager.remarks;
        Fmt.pf err "openmp-opt: %a@." Openmpopt.Pass_manager.pp_report report;
        (match Ir.Verify.check m with
        | Error msg ->
          Fmt.pf err "verifier error (after openmp-opt): %s@." msg;
          verifier_failed := true
        | Ok () -> ());
        if print_trace then
          Option.iter
            (fun tr ->
              Fmt.pf err "openmp-opt trace:@.";
              List.iter
                (fun e -> Fmt.pf err "  %a@." Observe.Trace.pp_event e)
                (Observe.Trace.events tr))
            trace);
      if !verifier_failed then finish 1
      else begin
        if emit_ir && not remarks_only then Fmt.pf out "%a" Ir.Printer.pp_module m;
        let sim_result =
          if run_sim then begin
            let sim = Gpusim.Interp.create Gpusim.Machine.bench_machine m in
            match Gpusim.Interp.run_host sim with
            | exception Gpusim.Mem.Out_of_memory msg ->
              Fmt.pf err "device out of memory: %s@." msg;
              Error 3
            | () ->
              Fmt.pf out "; kernel cycles: %d@." (Gpusim.Interp.total_kernel_cycles sim);
              List.iter
                (fun (s : Gpusim.Interp.launch_stats) ->
                  Fmt.pf out
                    "; %s: cycles=%d regs=%d smem=%dB heap=%dB instrs=%d barriers=%d \
                     atomics=%d div-branches=%d@."
                    s.Gpusim.Interp.kernel_name s.Gpusim.Interp.cycles
                    s.Gpusim.Interp.registers s.Gpusim.Interp.shared_bytes
                    s.Gpusim.Interp.heap_high_water s.Gpusim.Interp.instructions
                    s.Gpusim.Interp.barriers
                    (s.Gpusim.Interp.atomics_global + s.Gpusim.Interp.atomics_shared)
                    s.Gpusim.Interp.divergent_branches)
                sim.Gpusim.Interp.kernel_stats;
              Fmt.pf out "; trace:%a@."
                (Fmt.list ~sep:Fmt.sp Gpusim.Rvalue.pp)
                (Gpusim.Interp.trace_values sim);
              Ok (Some sim)
          end
          else Ok None
        in
        match sim_result with
        | Error code -> finish code
        | Ok sim_result -> (
          match stats_json with
          | None -> finish 0
          | Some path -> (
            let json =
              Observe.Json.Obj
                ([
                   ("file", Observe.Json.String file);
                   ( "scheme",
                     Observe.Json.String (Frontend.Codegen.scheme_name scheme) );
                   ( "report",
                     match !opt_report with
                     | Some r -> Openmpopt.Pass_manager.report_to_json r
                     | None -> Observe.Json.Null );
                   ( "passes",
                     match trace with
                     | Some tr -> Observe.Trace.to_json tr
                     | None -> Observe.Json.List [] );
                 ]
                @
                match sim_result with
                | Some sim -> [ ("sim", Gpusim.Stats.json_of_sim sim) ]
                | None -> [])
            in
            try
              Out_channel.with_open_text path (fun oc ->
                  Out_channel.output_string oc (Observe.Json.to_string json);
                  Out_channel.output_char oc '\n');
              finish 0
            with Sys_error msg ->
              Fmt.pf err "cannot write stats: %s@." msg;
              finish 2))
      end))

(* ------------------------------------------------------------------ *)
(* Disk cache (--cache-dir)                                            *)
(* ------------------------------------------------------------------ *)

(* Cached payload: the full per-file result as JSON, so warm output is
   byte-identical to cold output.  The key covers everything that shapes the
   output: source text, scheme, option fingerprint and emission flags.
   --stats-json writes a side file and --trace prints wall times, so those
   runs bypass the cache. *)
let cache_version = "mompc-cache-v1"

let cache_key ~scheme ~options ~emit_ir ~run_sim ~remarks_only src =
  Sched.Cache.key
    [
      cache_version;
      src;
      Frontend.Codegen.scheme_name scheme;
      (match options with
      | None -> "noopt"
      | Some o -> Openmpopt.Pass_manager.options_fingerprint o);
      Printf.sprintf "emit=%b;sim=%b;remarks-only=%b" emit_ir run_sim remarks_only;
    ]

let result_to_json (r : file_result) =
  Observe.Json.Obj
    [
      ("code", Observe.Json.Int r.code);
      ("out", Observe.Json.String r.out);
      ("err", Observe.Json.String r.err);
    ]

let result_of_json s =
  match Observe.Json.of_string s with
  | Error _ -> None
  | Ok j -> (
    match
      ( Option.bind (Observe.Json.member "code" j) Observe.Json.to_int,
        Option.bind (Observe.Json.member "out" j) Observe.Json.to_str,
        Option.bind (Observe.Json.member "err" j) Observe.Json.to_str )
    with
    | Some code, Some out, Some err -> Some { code; out; err }
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run_compile files scheme optimize no_spmd no_deglob no_csm no_fold no_group emit_ir
    run_sim remarks_only stats_json print_trace jobs cache_dir =
  let options =
    if optimize then
      Some
        {
          Openmpopt.Pass_manager.default_options with
          disable_spmdization = no_spmd;
          disable_deglobalization = no_deglob;
          disable_state_machine_rewrite = no_csm;
          disable_folding = no_fold;
          disable_guard_grouping = no_group;
        }
    else None
  in
  if stats_json <> None && List.length files > 1 then begin
    Fmt.epr "mompc: --stats-json accepts a single input file@.";
    2
  end
  else begin
    let cache =
      (* stats-json writes a side file and --trace prints wall times:
         neither is reproducible from a cached blob *)
      if stats_json = None && not print_trace then
        Option.map (fun dir -> Sched.Disk_cache.create ~dir) cache_dir
      else None
    in
    let one file =
      let compute () =
        compile_one ~scheme ~options ~emit_ir ~run_sim ~remarks_only ~stats_json
          ~print_trace file
      in
      match cache with
      | None -> compute ()
      | Some cache -> (
        let src = In_channel.with_open_text file In_channel.input_all in
        let key = cache_key ~scheme ~options ~emit_ir ~run_sim ~remarks_only src in
        match Option.bind (Sched.Disk_cache.find cache ~key) result_of_json with
        | Some r -> r
        | None ->
          let r = compute () in
          (* failed compiles are not cached: they are cheap and the user is
             about to edit the file anyway *)
          if r.code = 0 then
            Sched.Disk_cache.store cache ~key
              ~data:(Observe.Json.to_string (result_to_json r));
          r)
    in
    let results =
      if jobs > 1 && List.length files > 1 then
        Sched.Pool.with_pool ~domains:jobs (fun pool -> Sched.Pool.map_list pool one files)
      else List.map one files
    in
    List.iter
      (fun (r : file_result) ->
        print_string r.out;
        prerr_string r.err)
      results;
    flush stdout;
    flush stderr;
    List.fold_left (fun acc r -> max acc r.code) 0 results
  end

let files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE" ~doc:"MiniOMP source file(s); several compile as a batch")

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Frontend.Codegen.Simplified
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:"Globalization scheme: simplified (LLVM 13), legacy (LLVM 12), cuda")

let flag names doc = Arg.(value & flag & info names ~doc)

let cmd =
  let doc = "compile MiniOMP to MiniIR with OpenMP-aware optimization" in
  Cmd.v
    (Cmd.info "mompc" ~doc)
    Term.(
      const run_compile $ files_arg $ scheme_arg
      $ flag [ "O"; "openmp-opt" ] "Run the OpenMP-aware optimization pipeline"
      $ flag [ "openmp-opt-disable-spmdization" ] "Disable SPMDzation"
      $ flag [ "openmp-opt-disable-deglobalization" ] "Disable HeapToStack/HeapToShared"
      $ flag [ "openmp-opt-disable-state-machine-rewrite" ]
          "Disable the custom state machine rewrite"
      $ flag [ "openmp-opt-disable-folding" ] "Disable runtime-call folding"
      $ flag [ "openmp-opt-disable-guard-grouping" ]
          "Disable side-effect grouping before guard generation (Fig. 7)"
      $ Arg.(value & opt bool true & info [ "emit-ir" ] ~doc:"Print the final MiniIR")
      $ flag [ "run" ] "Execute on the GPU simulator and print kernel statistics"
      $ flag [ "remarks-only" ] "Suppress IR output; print only remarks"
      $ Arg.(
          value
          & opt (some string) None
          & info [ "stats-json" ] ~docv:"FILE"
              ~doc:
                "Write per-round/per-pass pipeline events, the report \
                 counters and (with $(b,--run)) per-kernel simulator \
                 cost-model counters as JSON to $(docv).  Single input file \
                 only.")
      $ flag [ "trace" ] "Print the per-pass pipeline trace to stderr"
      $ Arg.(
          value & opt int 1
          & info [ "j"; "jobs" ] ~docv:"N"
              ~doc:
                "Compile a multi-file batch on $(docv) scheduler domains.  \
                 Output is printed in input order, byte-identical to -j 1.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "cache-dir" ] ~docv:"DIR"
              ~doc:
                "Content-addressed compilation cache: memoize each file's \
                 compiler output in $(docv), keyed by source text, scheme \
                 and pass options.  Ignored with $(b,--stats-json) and \
                 $(b,--trace)."))

let () = exit (Cmd.eval' cmd)

(* The simulated memory subsystem: one global space (module globals + device
   heap), one shared space per team, one local space per thread.

   Cross-thread access to local memory reproduces real GPU behaviour: local
   memory is addressed per thread, so dereferencing another thread's local
   pointer silently reads the *current* thread's local memory at the same
   offset.  This is exactly why the paper's Figure 3 program miscompiles
   under the legacy SPMD fast path; the simulator counts these accesses so
   tests can assert on them.

   Every store records a dirty high-water mark (per shared/local arena; two
   marks for the global arena — module-globals region and heap region — so
   one heap store does not mark the whole span dirty).  When a [Scratch.t]
   is attached, released arenas carry their dirty extent back to the pool,
   which re-zeroes only those bytes on reuse; bytes beyond a mark were
   never written and are still zero.  The batch path thus skips nearly all
   of the tens of MBs a fresh [Bytes.make] must fill per job, with results
   byte-identical to the allocate-per-job path. *)

open Rvalue

(* A shared/local arena plus the high end of its written span. *)
type arena = { ab : Bytes.t; mutable ahigh : int }

type t = {
  machine : Machine.t;
  injector : Fault.Injector.t;
  (* arena recycler of the owning pool worker; None = allocate-per-job *)
  scratch : Scratch.t option;
  global : Bytes.t;
  shareds : (int, arena) Hashtbl.t;
  locals : (int, arena) Hashtbl.t;
  globals_layout : (string, int) Hashtbl.t;  (* global-space globals *)
  shared_layout : (string, int) Hashtbl.t;  (* shared-space globals, per-team offsets *)
  mutable globals_size : int;
  mutable static_shared_size : int;
  heap_base : int;
  mutable heap_cursor : int;
  mutable heap_free : (int * int) list;  (* (addr, size) free blocks *)
  mutable heap_in_use : int;
  mutable heap_high_water : int;
  mutable gdirty_low : int;  (* high end of stores below heap_base *)
  mutable gdirty_heap : int;  (* high end of stores at/above heap_base *)
  mutable cross_local_accesses : int;
  (* address ranges of small read-mostly global arrays assumed resident in
     the read-only cache (the simulator has no cache hierarchy; arrays up to
     [cache_threshold] get the cached latency) *)
  mutable cached_ranges : (int * int) list;
}

exception Out_of_memory of string

let create ?(injector = Fault.Injector.none) ?scratch (machine : Machine.t) =
  let heap_base = machine.Machine.global_bytes - machine.Machine.heap_bytes in
  {
    machine;
    injector;
    scratch;
    global =
      (match scratch with
      | Some s -> Scratch.take_global s machine.Machine.global_bytes
      | None -> Bytes.make machine.Machine.global_bytes '\000');
    shareds = Hashtbl.create 16;
    locals = Hashtbl.create 64;
    globals_layout = Hashtbl.create 16;
    shared_layout = Hashtbl.create 16;
    globals_size = 0;
    static_shared_size = 0;
    heap_base;
    heap_cursor = heap_base;
    heap_free = [];
    heap_in_use = 0;
    heap_high_water = 0;
    gdirty_low = 0;
    gdirty_heap = heap_base;
    cross_local_accesses = 0;
    cached_ranges = [];
  }

(* Lay out module globals.  Global-space globals share one arena; shared-
   space globals (created by HeapToShared) get per-team offsets replicated in
   every team's shared memory. *)
let cache_threshold = 32 * 1024

let layout_module t (m : Ir.Irmod.t) =
  let place_global (g : Ir.Irmod.global) =
    match g.Ir.Irmod.gspace with
    | Ir.Types.Global | Ir.Types.Generic ->
      let size = max 1 (Ir.Types.size_of g.Ir.Irmod.gty) in
      let addr = Support.Util.round_up_to t.globals_size ~multiple:8 in
      Hashtbl.replace t.globals_layout g.Ir.Irmod.gname addr;
      if size <= cache_threshold then t.cached_ranges <- (addr, addr + size) :: t.cached_ranges;
      t.globals_size <- addr + size
    | Ir.Types.Shared ->
      let size = max 1 (Ir.Types.size_of g.Ir.Irmod.gty) in
      let addr = Support.Util.round_up_to t.static_shared_size ~multiple:8 in
      Hashtbl.replace t.shared_layout g.Ir.Irmod.gname addr;
      t.static_shared_size <- addr + size
    | Ir.Types.Local ->
      raise (Sim_error ("global in local space: " ^ g.Ir.Irmod.gname))
  in
  List.iter place_global m.Ir.Irmod.globals;
  if t.globals_size > t.heap_base then
    raise (Out_of_memory "module globals exceed global memory")

let global_addr t name ~team =
  match Hashtbl.find_opt t.globals_layout name with
  | Some addr -> { sp = Sglobal; addr }
  | None -> (
    match Hashtbl.find_opt t.shared_layout name with
    | Some addr -> { sp = Sshared team; addr }
    | None -> error "unknown global @%s" name)

let shared_of t team =
  match Hashtbl.find_opt t.shareds team with
  | Some a -> a
  | None ->
    let size = t.machine.Machine.shared_bytes_per_team in
    let b =
      match t.scratch with
      | Some s -> Scratch.take_shared s size
      | None -> Bytes.make size '\000'
    in
    let a = { ab = b; ahigh = 0 } in
    Hashtbl.replace t.shareds team a;
    a

let local_of t thread =
  match Hashtbl.find_opt t.locals thread with
  | Some a -> a
  | None ->
    let size = t.machine.Machine.local_bytes_per_thread in
    let b =
      match t.scratch with
      | Some s -> Scratch.take_local s size
      | None -> Bytes.make size '\000'
    in
    let a = { ab = b; ahigh = 0 } in
    Hashtbl.replace t.locals thread a;
    a

(* Drop a team's / thread's arena; with a scratch attached the bytes go
   back to the pool (with their dirty extent) for the next launch instead
   of to the GC. *)
let release_shared t team =
  match Hashtbl.find_opt t.shareds team with
  | None -> ()
  | Some a ->
    Hashtbl.remove t.shareds team;
    Option.iter (fun s -> Scratch.give_shared s a.ab ~dirty:a.ahigh) t.scratch

let release_local t thread =
  match Hashtbl.find_opt t.locals thread with
  | None -> ()
  | Some a ->
    Hashtbl.remove t.locals thread;
    Option.iter (fun s -> Scratch.give_local s a.ab ~dirty:a.ahigh) t.scratch

(* Hand every arena (including the global one) back to the scratch; the
   memory must not be used afterwards. *)
let release t =
  match t.scratch with
  | None -> ()
  | Some s ->
    Scratch.give_global s t.global
      ~ranges:
        [ (0, min t.gdirty_low t.heap_base); (t.heap_base, t.gdirty_heap - t.heap_base) ];
    Hashtbl.iter (fun _ a -> Scratch.give_shared s a.ab ~dirty:a.ahigh) t.shareds;
    Hashtbl.iter (fun _ a -> Scratch.give_local s a.ab ~dirty:a.ahigh) t.locals;
    Hashtbl.reset t.shareds;
    Hashtbl.reset t.locals

(* Resolve a pointer to (backing bytes, offset) for the accessing thread. *)
let resolve t ~current (p : ptr) =
  match p.sp with
  | Sglobal -> (t.global, p.addr)
  | Sshared team -> ((shared_of t team).ab, p.addr)
  | Slocal owner ->
    if owner <> current then begin
      t.cross_local_accesses <- t.cross_local_accesses + 1;
      (* local memory is thread-addressed: we read our own frame *)
      ((local_of t current).ab, p.addr)
    end
    else ((local_of t owner).ab, p.addr)

(* Like [resolve], but records the written span's high end. *)
let resolve_store t ~current (p : ptr) size =
  match p.sp with
  | Sglobal ->
    let hi = p.addr + size in
    if p.addr < t.heap_base then begin
      if hi > t.gdirty_low then t.gdirty_low <- hi
    end
    else if hi > t.gdirty_heap then t.gdirty_heap <- hi;
    (t.global, p.addr)
  | Sshared team ->
    let a = shared_of t team in
    if p.addr + size > a.ahigh then a.ahigh <- p.addr + size;
    (a.ab, p.addr)
  | Slocal owner ->
    let owner =
      if owner <> current then begin
        t.cross_local_accesses <- t.cross_local_accesses + 1;
        current
      end
      else owner
    in
    let a = local_of t owner in
    if p.addr + size > a.ahigh then a.ahigh <- p.addr + size;
    (a.ab, p.addr)

(* ------------------------------------------------------------------ *)
(* Typed access                                                        *)
(* ------------------------------------------------------------------ *)

(* pointers are serialized as tag(2) | owner(22) | addr(40) *)
let encode_ptr (p : ptr) =
  let tag, owner =
    match p.sp with Sglobal -> (0, 0) | Sshared o -> (1, o) | Slocal o -> (2, o + 1)
  in
  Int64.(
    logor
      (shift_left (of_int tag) 62)
      (logor (shift_left (of_int owner) 40) (of_int (p.addr land 0xFFFFFFFFFF))))

let decode_ptr v =
  let tag = Int64.(to_int (shift_right_logical v 62)) in
  let owner = Int64.(to_int (logand (shift_right_logical v 40) 0x3FFFFFL)) in
  let addr = Int64.(to_int (logand v 0xFFFFFFFFFFL)) in
  match tag with
  | 0 -> { sp = Sglobal; addr }
  | 1 -> { sp = Sshared owner; addr }
  | 2 -> { sp = Slocal (owner - 1); addr }
  | _ -> error "corrupt pointer bits %Lx" v

let check_bounds bytes off size what =
  if off < 0 || off + size > Bytes.length bytes then
    error "out-of-bounds %s at offset %d (size %d, arena %d)" what off size
      (Bytes.length bytes)

let read t ~current (p : ptr) (ty : Ir.Types.t) : Rvalue.t =
  let bytes, off = resolve t ~current p in
  let size = Ir.Types.size_of ty in
  check_bounds bytes off size "load";
  match ty with
  | Ir.Types.I1 | Ir.Types.I8 ->
    of_int64 (truncate_to ty (Int64.of_int (Char.code (Bytes.get bytes off))))
  | Ir.Types.I32 -> of_int64 (Int64.of_int32 (Bytes.get_int32_le bytes off))
  | Ir.Types.I64 -> of_int64 (Bytes.get_int64_le bytes off)
  | Ir.Types.F32 -> F (Int32.float_of_bits (Bytes.get_int32_le bytes off))
  | Ir.Types.F64 -> F (Int64.float_of_bits (Bytes.get_int64_le bytes off))
  | Ir.Types.Ptr _ -> P (decode_ptr (Bytes.get_int64_le bytes off))
  | Ir.Types.Void | Ir.Types.Arr _ | Ir.Types.Fn _ ->
    error "load of type %s" (Ir.Types.to_string ty)

let write t ~current (p : ptr) (ty : Ir.Types.t) (v : Rvalue.t) =
  let size = Ir.Types.size_of ty in
  let bytes, off = resolve_store t ~current p size in
  check_bounds bytes off size "store";
  match ty with
  | Ir.Types.I1 | Ir.Types.I8 ->
    Bytes.set bytes off (Char.chr (Int64.to_int (Int64.logand (as_int v) 0xFFL)))
  | Ir.Types.I32 -> Bytes.set_int32_le bytes off (Int64.to_int32 (as_int v))
  | Ir.Types.I64 -> Bytes.set_int64_le bytes off (as_int v)
  | Ir.Types.F32 -> Bytes.set_int32_le bytes off (Int32.bits_of_float (as_float v))
  | Ir.Types.F64 -> Bytes.set_int64_le bytes off (Int64.bits_of_float (as_float v))
  | Ir.Types.Ptr _ -> (
    match v with
    | P ptr -> Bytes.set_int64_le bytes off (encode_ptr ptr)
    | I 0L | Undef -> Bytes.set_int64_le bytes off 0L
    | Fn _ -> error "storing a function pointer to memory is not supported"
    | _ -> Bytes.set_int64_le bytes off (as_int v))
  | Ir.Types.Void | Ir.Types.Arr _ | Ir.Types.Fn _ ->
    error "store of type %s" (Ir.Types.to_string ty)

(* ------------------------------------------------------------------ *)
(* Device heap (globalization fallback allocations)                    *)
(* ------------------------------------------------------------------ *)

let heap_alloc t size =
  if Fault.Injector.fire t.injector Fault.Injector.Mem_alloc then
    raise
      (Out_of_memory
         (Printf.sprintf "injected device-heap allocation failure (site %s, %d bytes)"
            (Fault.Injector.site_name Fault.Injector.Mem_alloc)
            size));
  let size = Support.Util.round_up_to (max 8 size) ~multiple:8 in
  let addr =
    (* first-fit in the free list *)
    let rec find acc = function
      | [] -> None
      | (a, s) :: rest when s >= size ->
        t.heap_free <- List.rev_append acc rest;
        Some a
      | blk :: rest -> find (blk :: acc) rest
    in
    match find [] t.heap_free with
    | Some a -> a
    | None ->
      let a = t.heap_cursor in
      if a + size > t.machine.Machine.global_bytes then
        raise
          (Out_of_memory
             (Printf.sprintf "device heap exhausted (%d bytes in use, %d requested)"
                t.heap_in_use size));
      t.heap_cursor <- a + size;
      a
  in
  t.heap_in_use <- t.heap_in_use + size;
  if t.heap_in_use > t.heap_high_water then t.heap_high_water <- t.heap_in_use;
  ({ sp = Sglobal; addr }, size)

let heap_free_block t addr size =
  let size = Support.Util.round_up_to (max 8 size) ~multiple:8 in
  t.heap_free <- (addr, size) :: t.heap_free;
  t.heap_in_use <- max 0 (t.heap_in_use - size)

let is_cached t addr = List.exists (fun (a, b) -> addr >= a && addr < b) t.cached_ranges

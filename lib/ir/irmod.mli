(** A MiniIR module: globals plus functions, in declaration order. *)

type global = {
  gname : string;
  gty : Types.t;
  gspace : Types.addrspace;
      (** [Shared] globals (created by HeapToShared) are replicated per team *)
  mutable ginit : Value.const option;  (** [None] means zero-initialized *)
  mutable glinkage : Func.linkage;
}

type t = {
  mutable mname : string;
  mutable globals : global list;
  mutable funcs : Func.t list;
}

val create : ?name:string -> unit -> t

val add_func : t -> Func.t -> unit
(** @raise Failure on duplicate names. *)

val find_func : t -> string -> Func.t option
val find_func_exn : t -> string -> Func.t
val remove_func : t -> string -> unit

val add_global : t -> global -> unit
val find_global : t -> string -> global option

val kernels : t -> Func.t list
val defined_funcs : t -> Func.t list

val address_taken_funcs : t -> Func.t list
(** Functions whose address appears in operand (non-callee) position: the
    possible targets of indirect calls.  The pessimism these induce on the
    register estimate is what the custom state machine rewrite removes. *)

val fresh_name : t -> string -> string
(** A name not used by any function or global, derived from the base. *)

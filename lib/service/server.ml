(* The persistent compile daemon (see the .mli and docs/API.md).

   Layering: connection threads own all protocol work (parsing, admission,
   response framing); the Sched.Pool domains own all compiler work.  The
   only shared mutable state is the counters record (one mutex), the
   caches (thread-safe by construction) and the stop flag. *)

module J = Observe.Json
module E = Fault.Ompgpu_error

type config = {
  socket_path : string;
  domains : int;
  capacity : int;
  watchdog_s : float option;
  cache_dir : string option;
}

let default_config =
  {
    socket_path = "./mompd.sock";
    domains = 2;
    capacity = 8;
    watchdog_s = None;
    cache_dir = None;
  }

(* Request counters; one mutex is plenty (a counter bump per request
   against compiles that take milliseconds). *)
type counters = {
  mutable served : int;  (* responses written, all kinds *)
  mutable compiles : int;  (* compile/run requests admitted *)
  mutable compile_ok : int;
  mutable compile_failed : int;  (* structured failures incl. timeouts *)
  mutable shed : int;  (* rejected by admission control *)
  mutable stats_requests : int;
  mutable bad_requests : int;
  mutable in_flight : int;  (* admitted, not yet settled *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  pool : Sched.Pool.t;
  cache : Ompgpu_api.compiled Sched.Cache.t;
  disk : Sched.Disk_cache.t option;
  counters : counters;
  mutex : Mutex.t;
  mutable stopped : bool;
  mutable conn_threads : Thread.t list;
  started_at : float;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let create cfg =
  let cfg = { cfg with domains = max 1 cfg.domains; capacity = max 0 cfg.capacity } in
  (if Sys.file_exists cfg.socket_path then
     match (Unix.lstat cfg.socket_path).Unix.st_kind with
     | Unix.S_SOCK -> Unix.unlink cfg.socket_path
     | _ ->
       invalid_arg
         (Printf.sprintf "Service.Server.create: %s exists and is not a socket"
            cfg.socket_path));
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path)
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd 64;
  {
    cfg;
    listen_fd;
    (* the pool queue must outsize admission, so an admitted request never
       blocks in [submit] behind the cap it was admitted under *)
    pool =
      Sched.Pool.create
        ~queue_capacity:(max 1 (cfg.capacity + cfg.domains))
        ~domains:cfg.domains ();
    cache = Sched.Cache.create ();
    disk =
      Option.map (fun dir -> Sched.Disk_cache.create ~dir ()) cfg.cache_dir;
    counters =
      {
        served = 0;
        compiles = 0;
        compile_ok = 0;
        compile_failed = 0;
        shed = 0;
        stats_requests = 0;
        bad_requests = 0;
        in_flight = 0;
      };
    mutex = Mutex.create ();
    stopped = false;
    conn_threads = [];
    started_at = Unix.gettimeofday ();
  }

let stats_json t =
  let c, pool_stats =
    locked t (fun () -> (t.counters, Sched.Pool.stats t.pool))
  in
  Ompgpu_api.with_schema
    (J.Obj
       [
         ("protocol", J.Int Protocol.version);
         ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
         ("domains", J.Int (Sched.Pool.domain_count t.pool));
         ("capacity", J.Int t.cfg.capacity);
         ( "requests",
           J.Obj
             [
               ("served", J.Int c.served);
               ("compiles", J.Int c.compiles);
               ("compile_ok", J.Int c.compile_ok);
               ("compile_failed", J.Int c.compile_failed);
               ("shed", J.Int c.shed);
               ("stats", J.Int c.stats_requests);
               ("bad", J.Int c.bad_requests);
               ("in_flight", J.Int c.in_flight);
             ] );
         ( "cache",
           J.Obj
             ([
                ("hits", J.Int (Sched.Cache.hits t.cache));
                ("misses", J.Int (Sched.Cache.misses t.cache));
                ("entries", J.Int (Sched.Cache.length t.cache));
              ]
             @
             match t.disk with
             | Some d ->
               [
                 ("disk_hits", J.Int (Sched.Disk_cache.hits d));
                 ("disk_misses", J.Int (Sched.Disk_cache.misses d));
               ]
             | None -> []) );
         ( "pool",
           J.Obj
             [
               ("submitted", J.Int pool_stats.Sched.Pool.submitted);
               ("executed", J.Int pool_stats.Sched.Pool.executed);
               ("stolen", J.Int pool_stats.Sched.Pool.stolen);
               ("max_pending", J.Int pool_stats.Sched.Pool.max_pending);
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* Compile dispatch                                                    *)
(* ------------------------------------------------------------------ *)

(* find_or_compute caches whatever the thunk returns, and we only want
   successes in the warm cache (a failure is cheap to recompute and the
   client is about to edit the source anyway) — so failures tunnel out. *)
exception Uncached of Ompgpu_api.compiled

(* Run one admitted compile on the pool, under the optional watchdog.  The
   stalled job keeps its domain until it returns on its own; the request
   settles as a structured timeout and the daemon keeps serving. *)
let pooled_compile t ~config ~file source =
  let fut =
    Sched.Pool.submit t.pool (fun () ->
        Ompgpu_api.compile_buffered ~config ~file source)
  in
  match t.cfg.watchdog_s with
  | None -> Sched.Pool.await fut
  | Some seconds -> (
    match Sched.Pool.await_timeout fut ~seconds with
    | Some r -> r
    | None ->
      Ompgpu_api.errored ~file
        (E.make
           (E.Timeout { seconds })
           ~phase:E.Serving
           (Printf.sprintf "request exceeded its %gs watchdog" seconds)))

(* The disk cache mirrors mompc's policy: only non-stats/trace requests
   (their payloads embed wall times), only successes, same key. *)
let disk_eligible (config : Ompgpu_api.Config.t) =
  (not config.Ompgpu_api.Config.want_stats)
  && not config.Ompgpu_api.Config.print_trace

let compute_compile t ~config ~file ~key source =
  let compile_and_persist () =
    let r = pooled_compile t ~config ~file source in
    (match t.disk with
    | Some d when disk_eligible config && r.Ompgpu_api.exit_code = 0 ->
      Sched.Disk_cache.store d ~key
        ~data:(J.to_string (Ompgpu_api.compiled_to_json r))
    | _ -> ());
    r
  in
  let thunk () =
    let r =
      match t.disk with
      | Some d when disk_eligible config -> (
        match
          Option.bind (Sched.Disk_cache.find d ~key) (fun s ->
              match J.of_string s with
              | Ok j -> Ompgpu_api.compiled_of_json j
              | Error _ -> None)
        with
        | Some r -> r
        | None -> compile_and_persist ())
      | _ -> compile_and_persist ()
    in
    if r.Ompgpu_api.exit_code = 0 then r else raise (Uncached r)
  in
  match Sched.Cache.find_or_compute t.cache ~key thunk with
  | r -> r
  | exception Uncached r -> r

let handle_compile t ~file ~config source =
  (* Admission control: request capacity+1 is shed *now* with a structured
     overload instead of queueing without bound — the client's bounded
     retry (overload is transient) is the backpressure loop. *)
  let admitted =
    locked t (fun () ->
        if t.counters.in_flight >= t.cfg.capacity then begin
          t.counters.shed <- t.counters.shed + 1;
          Error t.counters.in_flight
        end
        else begin
          t.counters.in_flight <- t.counters.in_flight + 1;
          t.counters.compiles <- t.counters.compiles + 1;
          Ok ()
        end)
  in
  match admitted with
  | Error pending ->
    Ompgpu_api.errored ~file
      (E.make
         (E.Overload { pending; capacity = t.cfg.capacity })
         ~phase:E.Serving
         (Printf.sprintf
            "request shed: %d compile(s) in flight against a capacity of %d; \
             retry with backoff"
            pending t.cfg.capacity))
  | Ok () ->
    let key = Ompgpu_api.cache_key ~config ~source in
    let result =
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () -> t.counters.in_flight <- t.counters.in_flight - 1))
        (fun () -> compute_compile t ~config ~file ~key source)
    in
    locked t (fun () ->
        if result.Ompgpu_api.exit_code = 0 then
          t.counters.compile_ok <- t.counters.compile_ok + 1
        else t.counters.compile_failed <- t.counters.compile_failed + 1);
    result

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let stop t =
  locked t (fun () -> t.stopped <- true);
  (* wake the blocked accept: shutting a listening socket down makes the
     pending accept fail immediately on Linux *)
  try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let respond t oc response =
  Protocol.write_message oc (Protocol.response_to_json response);
  locked t (fun () -> t.counters.served <- t.counters.served + 1)

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let bad () =
    locked t (fun () -> t.counters.bad_requests <- t.counters.bad_requests + 1)
  in
  let rec loop () =
    match Protocol.read_message ic with
    | None -> ()
    | Some (Error e) ->
      (* an unparseable line poisons only itself, not the connection *)
      bad ();
      respond t oc (Protocol.Rejected { id = None; error = e });
      loop ()
    | Some (Ok j) -> (
      match Protocol.request_of_json j with
      | Error e ->
        bad ();
        let id = Option.bind (J.member "id" j) J.to_str in
        respond t oc (Protocol.Rejected { id; error = e });
        loop ()
      | Ok (Protocol.Stats { id }) ->
        locked t (fun () ->
            t.counters.stats_requests <- t.counters.stats_requests + 1);
        respond t oc (Protocol.Stats_reply { id; stats = stats_json t });
        loop ()
      | Ok (Protocol.Shutdown { id }) ->
        respond t oc (Protocol.Shutdown_ack { id });
        stop t
        (* stop reading: the daemon is draining *)
      | Ok (Protocol.Compile { id; file; source; config }) ->
        let op = if config.Ompgpu_api.Config.run_sim then "run" else "compile" in
        let result = handle_compile t ~file ~config source in
        respond t oc (Protocol.Compiled { id; op; result });
        loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      (try Out_channel.flush oc with Sys_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try loop () with
      | Sys_error _ | End_of_file ->
        (* client went away mid-request; nothing to answer *)
        ()
      | e ->
        (* never let a connection kill the daemon: report and move on *)
        let error =
          E.make E.Internal ~phase:E.Serving (Printexc.to_string e)
        in
        (try respond t oc (Protocol.Rejected { id = None; error })
         with Sys_error _ -> ()))

let serve_forever t =
  let rec accept_loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      let thread = Thread.create (fun () -> handle_connection t fd) () in
      locked t (fun () -> t.conn_threads <- thread :: t.conn_threads);
      accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | exception Unix.Unix_error _ when locked t (fun () -> t.stopped) -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (* drain: connections finish their in-flight requests, then the pool
         goes down and the socket file disappears *)
      List.iter Thread.join (locked t (fun () -> t.conn_threads));
      Sched.Pool.shutdown t.pool;
      try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
    accept_loop

let run cfg = serve_forever (create cfg)

(** The OpenMPOpt pass driver: the paper's optimization pipeline.

    [run] executes, over a MiniIR module produced by the front-end:
    aggressive internalization, then rounds of mode-invariant runtime-call
    folding, deglobalization (HeapToStack / HeapToShared), SPMDzation,
    the custom state machine rewrite, execution-mode folding, runtime-call
    deduplication, dead-parallel-region elimination and generic cleanup. *)

(** Pass toggles.  The [disable_*] flags mirror the paper artifact's
    LLVM flags [openmp-opt-disable-spmdization],
    [openmp-opt-disable-deglobalization],
    [openmp-opt-disable-state-machine-rewrite] and
    [openmp-opt-disable-folding]; the remaining toggles support the
    ablations called out in DESIGN.md. *)
type options = {
  disable_spmdization : bool;
  disable_deglobalization : bool;
  disable_state_machine_rewrite : bool;
  disable_folding : bool;
  disable_internalization : bool;  (** ablation: Section IV internalization *)
  disable_guard_grouping : bool;  (** ablation: Fig. 7 side-effect grouping *)
  disable_heap_to_shared : bool;  (** isolate plain HeapToStack (Fig. 11d) *)
  rounds : int;  (** pipeline iterations; 3 matches early+late scheduling *)
}

val default_options : options
(** Everything enabled, three rounds. *)

val options_fingerprint : options -> string
(** Stable, human-readable identity of an option set; used as part of the
    content address of a pipeline job in the scheduler's result cache
    (see docs/SCHEDULER.md).  Covers every field. *)

val all_disabled : options
(** Every OpenMP-specific optimization off (the "No OpenMP Optimization"
    build of Figure 11); generic cleanup still runs. *)

(** First-class pipelines: a named, ordered list of pass descriptors with a
    round count, serializable to a stable textual syntax.  This is the
    primary way to select what [run_pipeline] executes — the boolean
    [options] record above is the deprecated PR-4-era surface, kept per the
    docs/API.md deprecation policy and mapped via [of_options].

    Spec syntax (also accepted by [mompc --pipeline] and protocol v2's
    ["pipeline"] request member):

    {v spec   ::= "fast" | "full" | [name "="] passes ["@" rounds] flag*
passes ::= pass ("," pass)*
flag   ::= "!nogroup" | "!noshared" v}

    e.g. ["fast=internalize,fold,cleanup@1"].  Rounds default to 1;
    [!nogroup] disables Fig. 7 guard grouping, [!noshared] disables
    HeapToShared. *)
module Pipeline : sig
  (** One schedulable pass of the OpenMPOpt driver.  [Fold] is the
      mode-invariant fold sweep plus its trailing simplify (the "early"
      block); [Fold_late] folds execution-mode queries; [Cleanup] is a
      generic simplify sweep. *)
  type pass =
    | Internalize
    | Fold
    | Deglobalize
    | Spmdize
    | State_machine
    | Fold_late
    | Dedup
    | Dead_regions
    | Cleanup

  val all_passes : pass list
  (** Every pass, in the full pipeline's canonical order. *)

  val pass_name : pass -> string
  (** The stable spec-syntax name (e.g. ["state-machine"]). *)

  val pass_of_name : string -> pass option

  type t = {
    name : string;  (** display name; not part of [fingerprint] *)
    passes : pass list;  (** executed in order, each round *)
    rounds : int;  (** [Internalize] still runs only once, before round 1 *)
    grouping : bool;  (** Fig. 7 side-effect grouping during SPMDzation *)
    heap_to_shared : bool;  (** HeapToShared during deglobalization *)
  }

  val max_rounds : int
  (** Upper bound [of_string] accepts for [rounds] (16). *)

  val full : t
  (** The paper's default pipeline: every pass, three rounds.  Semantically
      identical to [run] with [default_options]. *)

  val fast : t
  (** The low-latency tier answering cold daemon requests:
      internalization + mode-invariant folding + cleanup, one round
      (["fast=internalize,fold,cleanup@1"]). *)

  val builtins : (string * t) list
  (** The named tiers [of_string] resolves by bare name: fast, full. *)

  val find : string -> t option

  val of_options : options -> t
  (** Map the deprecated toggle record onto a pipeline.  The result
      instruments the exact pass sequence the old [run] executed for the
      same options, so both surfaces produce byte-identical results; when
      the mapped semantics match a builtin, its name is adopted. *)

  val to_string : t -> string
  (** Canonical spec, [name ^ "=" ^ body]; [of_string (to_string p)] yields
      [p] back (names are preserved). *)

  val of_string : string -> (t, string) result
  (** Parse a spec.  Unknown pass names, unknown flags, invalid names and
      out-of-range round counts are [Error] with a human-readable message —
      callers on the service path map it to the [Bad_request] taxonomy
      error. *)

  val fingerprint : t -> string
  (** Stable semantic identity — the spec body without the display name —
      used as part of the content address of a compile (see
      [Ompgpu_api.cache_key]).  Two pipelines with equal fingerprints run
      the same pass sequence and produce the same bytes. *)

  val same_semantics : t -> t -> bool
  (** Equality ignoring the display name (i.e. equal fingerprints). *)

  val equal : t -> t -> bool
end

(** What the pipeline did — the counts behind the paper's Figure 9. *)
type report = {
  remarks : Remark.t list;  (** deduplicated, in emission order *)
  internalized : int;
  heap_to_stack : int;  (** allocations moved back to the stack (OMP110) *)
  heap_to_shared : int;  (** allocations turned into static shared memory (OMP111) *)
  shared_bytes : int;  (** bytes of static shared memory introduced *)
  spmdized : int;  (** kernels converted to SPMD mode (OMP120) *)
  guards : int;  (** guarded regions emitted during SPMDzation *)
  custom_state_machines : int;  (** kernels rewritten without function pointers *)
  csm_fallbacks : int;  (** rewrites that kept an indirect fallback *)
  folds_exec_mode : int;  (** __kmpc_is_spmd_exec_mode calls folded *)
  folds_parallel_level : int;  (** __kmpc_parallel_level calls folded *)
  folds_thread_exec : int;  (** thread-id queries folded to 0 in main-only code *)
  folds_launch_bounds : int;  (** launch-parameter queries folded to constants *)
  deduplicated_calls : int;  (** runtime queries deduplicated (OMP170) *)
  dead_regions : int;  (** effect-free parallel regions removed (OMP160) *)
}

val empty_report : report

val counters_of_report : report -> (string * int) list
(** The int fields of the report as named counters, in a stable order (the
    keys of the [--stats-json] export; remarks are not included). *)

val report_to_json : report -> Observe.Json.t
(** Counters plus the remark list (schema in docs/OBSERVABILITY.md). *)

val pp_report : Format.formatter -> report -> unit

val run_pipeline :
  ?pipeline:Pipeline.t ->
  ?injector:Fault.Injector.t ->
  ?trace:Observe.Trace.t ->
  ?sink:Remark.sink ->
  Ir.Irmod.t ->
  report
(** [run_pipeline m] optimizes [m] in place, executing [pipeline] (default
    [Pipeline.full]), and reports what happened.  The module remains
    verifier-clean; every transformation preserves the observable trace
    semantics of the program (checked by the differential test suite).

    [injector] arms the [Pass_crash] fault site: each executed pass first
    draws a coin and raises a structured
    [Fault.Ompgpu_error.Pass_crash {pass; round}] error when it fires —
    exercising the driver-level recovery paths.

    All mutable pipeline state (remark sink, counters, trace) is local to
    one [run] invocation, so concurrent runs on distinct modules from
    different domains are safe and cannot observe each other's remarks.
    [sink] injects a caller-owned (fresh, per-job) remark sink; when
    omitted, a private one is created.

    When [trace] is given, every executed pass records one
    [Observe.Trace.event] per round: wall time, module and per-function IR
    deltas, and the increments to the report counters (plus a ["remarks"]
    pseudo-counter with the number of remarks the pass emitted).  Passes
    absent from the pipeline record nothing. *)

val run :
  ?options:options ->
  ?injector:Fault.Injector.t ->
  ?trace:Observe.Trace.t ->
  ?sink:Remark.sink ->
  Ir.Irmod.t ->
  report
(** Deprecated (since api_version 2; docs/API.md deprecation policy): the
    boolean-toggle surface over [run_pipeline], equivalent to
    [run_pipeline ~pipeline:(Pipeline.of_options options)] and
    byte-identical to it.  New callers should build a [Pipeline.t]. *)

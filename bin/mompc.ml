(* mompc: the MiniOMP compiler driver.

   Parses a MiniOMP source file, lowers it with the selected globalization
   scheme, optionally runs the OpenMP-aware optimizer, prints remarks, and
   emits the resulting MiniIR.  Optionally runs the program on the GPU
   simulator and reports kernel statistics.

   The disable flags mirror the paper artifact's LLVM flags
   openmp-opt-disable-... . *)

open Cmdliner

let scheme_conv =
  let parse = function
    | "simplified" -> Ok Frontend.Codegen.Simplified
    | "legacy" -> Ok Frontend.Codegen.Legacy
    | "cuda" -> Ok Frontend.Codegen.Cuda
    | s -> Error (`Msg ("unknown scheme: " ^ s))
  in
  let print ppf s = Fmt.string ppf (Frontend.Codegen.scheme_name s) in
  Arg.conv (parse, print)

let run_compile file scheme optimize no_spmd no_deglob no_csm no_fold no_group emit_ir
    run_sim remarks_only =
  let src = In_channel.with_open_text file In_channel.input_all in
  match Frontend.Codegen.compile ~scheme ~file src with
  | exception Frontend.Codegen.Error (msg, loc) ->
    Fmt.epr "%a: error: %s@." Support.Loc.pp loc msg;
    1
  | exception Frontend.Cparse.Parse_error (msg, loc) ->
    Fmt.epr "%a: parse error: %s@." Support.Loc.pp loc msg;
    1
  | exception Frontend.Lexer.Lex_error (msg, loc) ->
    Fmt.epr "%a: lex error: %s@." Support.Loc.pp loc msg;
    1
  | m -> (
    match Ir.Verify.check m with
    | Error msg ->
      Fmt.epr "verifier error (front end): %s@." msg;
      1
    | Ok () ->
      if optimize then begin
        let options =
          {
            Openmpopt.Pass_manager.default_options with
            disable_spmdization = no_spmd;
            disable_deglobalization = no_deglob;
            disable_state_machine_rewrite = no_csm;
            disable_folding = no_fold;
            disable_guard_grouping = no_group;
          }
        in
        let report = Openmpopt.Pass_manager.run ~options m in
        List.iter
          (fun r -> Fmt.epr "%s@." (Openmpopt.Remark.to_string r))
          report.Openmpopt.Pass_manager.remarks;
        Fmt.epr "openmp-opt: %a@." Openmpopt.Pass_manager.pp_report report;
        match Ir.Verify.check m with
        | Error msg ->
          Fmt.epr "verifier error (after openmp-opt): %s@." msg;
          exit 1
        | Ok () -> ()
      end;
      if emit_ir && not remarks_only then Fmt.pr "%a" Ir.Printer.pp_module m;
      if run_sim then begin
        let sim = Gpusim.Interp.create Gpusim.Machine.bench_machine m in
        match Gpusim.Interp.run_host sim with
        | exception Gpusim.Mem.Out_of_memory msg ->
          Fmt.epr "device out of memory: %s@." msg;
          exit 3
        | () ->
          Fmt.pr "; kernel cycles: %d@." (Gpusim.Interp.total_kernel_cycles sim);
          List.iter
            (fun (s : Gpusim.Interp.launch_stats) ->
              Fmt.pr
                "; %s: cycles=%d regs=%d smem=%dB heap=%dB instrs=%d barriers=%d@."
                s.Gpusim.Interp.kernel_name s.Gpusim.Interp.cycles
                s.Gpusim.Interp.registers s.Gpusim.Interp.shared_bytes
                s.Gpusim.Interp.heap_high_water s.Gpusim.Interp.instructions
                s.Gpusim.Interp.barriers)
            sim.Gpusim.Interp.kernel_stats;
          Fmt.pr "; trace:%a@."
            (Fmt.list ~sep:Fmt.sp Gpusim.Rvalue.pp)
            (Gpusim.Interp.trace_values sim)
      end;
      0)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniOMP source file")

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Frontend.Codegen.Simplified
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:"Globalization scheme: simplified (LLVM 13), legacy (LLVM 12), cuda")

let flag names doc = Arg.(value & flag & info names ~doc)

let cmd =
  let doc = "compile MiniOMP to MiniIR with OpenMP-aware optimization" in
  Cmd.v
    (Cmd.info "mompc" ~doc)
    Term.(
      const run_compile $ file_arg $ scheme_arg
      $ flag [ "O"; "openmp-opt" ] "Run the OpenMP-aware optimization pipeline"
      $ flag [ "openmp-opt-disable-spmdization" ] "Disable SPMDzation"
      $ flag [ "openmp-opt-disable-deglobalization" ] "Disable HeapToStack/HeapToShared"
      $ flag [ "openmp-opt-disable-state-machine-rewrite" ]
          "Disable the custom state machine rewrite"
      $ flag [ "openmp-opt-disable-folding" ] "Disable runtime-call folding"
      $ flag [ "openmp-opt-disable-guard-grouping" ]
          "Disable side-effect grouping before guard generation (Fig. 7)"
      $ Arg.(value & opt bool true & info [ "emit-ir" ] ~doc:"Print the final MiniIR")
      $ flag [ "run" ] "Execute on the GPU simulator and print kernel statistics"
      $ flag [ "remarks-only" ] "Suppress IR output; print only remarks")

let () = exit (Cmd.eval' cmd)

#!/bin/sh
# Smoke test of the persistent compile service (docs/API.md).
#
# Boots a real mompd, then:
#   1. asserts `mompc --daemon` output is byte-identical to one-shot mompc;
#   2. drives 50 mixed protocol requests through `mompd request` — compiles
#      and runs (one with an injected pass-crash), repeated identical
#      requests, stats, a wrong-version request and a non-request JSON
#      line — asserting every request gets exactly one stable JSON
#      response line and structured rejections stay structured;
#   3. shuts the daemon down cleanly and checks it exits 0 and removes
#      its socket.
#
# Exit codes matched here are API (lib/fault/ompgpu_error.ml): 14
# pass-crash, 40 overload, 42 bad-request (41 is the supervisor's
# crash-loop circuit breaker, exercised by tools/chaos_soak.sh).

set -e

MOMPC=${MOMPC:-_build/default/bin/mompc.exe}
MOMPD=${MOMPD:-_build/default/bin/mompd.exe}
WORK=$(mktemp -d)
# keep the socket path short: Unix sockets cap at ~108 bytes
SOCK=$(mktemp -u /tmp/mompd-smoke-XXXXXX.sock)
DPID=
trap 'rm -rf "$WORK"; rm -f "$SOCK"; [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true' EXIT

fail() { echo "service-smoke: FAIL: $*" >&2; exit 1; }

[ -x "$MOMPC" ] || fail "mompc binary not found at $MOMPC (run: dune build bin)"
[ -x "$MOMPD" ] || fail "mompd binary not found at $MOMPD (run: dune build bin)"

cat > "$WORK/input.c" <<'EOF'
long A[8];
static void bump(long* p) { p[0] = p[0] + 1; }
int main() {
  #pragma omp target teams distribute num_teams(2) thread_limit(8)
  for (int i = 0; i < 16; i++) {
    long s = (long)i;
    bump(&s);
    A[i % 8] = s;
  }
  return 0;
}
EOF

"$MOMPD" serve --socket "$SOCK" -j 2 --capacity 8 2> "$WORK/daemon.log" &
DPID=$!
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i+1))
  [ "$i" -gt 100 ] && fail "daemon did not come up (see $WORK/daemon.log)"
  kill -0 "$DPID" 2>/dev/null || fail "daemon died on startup: $(cat "$WORK/daemon.log")"
  sleep 0.1
done

# --- 1. mompc --daemon is byte-identical to one-shot mompc -----------------

"$MOMPC" -O --run "$WORK/input.c" > "$WORK/ref.out" 2> "$WORK/ref.err" \
  || fail "one-shot compile failed"
"$MOMPC" -O --run --daemon "$SOCK" "$WORK/input.c" > "$WORK/d.out" 2> "$WORK/d.err" \
  || fail "daemon compile failed"
cmp -s "$WORK/ref.out" "$WORK/d.out" || fail "daemon stdout differs from one-shot"
cmp -s "$WORK/ref.err" "$WORK/d.err" || fail "daemon stderr differs from one-shot"

# --- 2. 50 mixed raw protocol requests -------------------------------------

# the source as a JSON string body (it contains no quotes or backslashes)
SRC=$(awk '{printf "%s\\n", $0}' "$WORK/input.c")

REQ="$WORK/requests.jsonl"
: > "$REQ"
n=0
while [ "$n" -lt 43 ]; do
  if [ $((n % 2)) -eq 0 ]; then op=compile; else op=run; fi
  printf '{"v":2,"id":"c%d","op":"%s","file":"input.c","source":"%s","config":{"optimize":true}}\n' \
    "$n" "$op" "$SRC" >> "$REQ"
  n=$((n+1))
done
# two byte-identical requests: their responses must be byte-identical too
printf '{"v":2,"id":"dup","op":"run","file":"input.c","source":"%s","config":{"optimize":true}}\n' "$SRC" >> "$REQ"
printf '{"v":2,"id":"dup","op":"run","file":"input.c","source":"%s","config":{"optimize":true}}\n' "$SRC" >> "$REQ"
# one injected fault: fails structurally (pass-crash, exit 14), daemon survives
printf '{"v":2,"id":"crash","op":"compile","file":"input.c","source":"%s","config":{"optimize":true,"inject":["pass-crash:1.0"]}}\n' "$SRC" >> "$REQ"
printf '{"v":2,"id":"s1","op":"stats"}\n' >> "$REQ"
# structured rejections: wrong protocol version, then a non-request document
printf '{"v":99,"id":"bad","op":"stats"}\n' >> "$REQ"
printf '"hello"\n' >> "$REQ"
printf '{"v":2,"id":"s2","op":"stats"}\n' >> "$REQ"
# the 51st line drains the daemon
printf '{"v":2,"id":"q","op":"shutdown"}\n' >> "$REQ"

RESP="$WORK/responses.jsonl"
"$MOMPD" request --socket "$SOCK" < "$REQ" > "$RESP" \
  || fail "mompd request exited nonzero"

[ "$(wc -l < "$RESP")" -eq 51 ] \
  || fail "expected 51 response lines, got $(wc -l < "$RESP")"
[ "$(grep -c '"ok":true' "$RESP")" -eq 48 ] \
  || fail "expected 48 ok responses, got $(grep -c '"ok":true' "$RESP")"
[ "$(grep '"id":"dup"' "$RESP" | sort -u | wc -l)" -eq 1 ] \
  || fail "identical requests produced different response bytes"
grep -q '"id":"crash".*"exit_code":14' "$RESP" \
  || fail "injected pass-crash did not answer exit 14"
grep -q '"id":"bad".*"kind":"bad-request"' "$RESP" \
  || fail "wrong-version request was not rejected as bad-request"
[ "$(grep -c '"kind":"bad-request"' "$RESP")" -eq 2 ] \
  || fail "expected 2 bad-request rejections"
[ "$(grep -c '"op":"stats".*"schema":2' "$RESP")" -eq 2 ] \
  || fail "stats responses are not schema-stamped"
grep -q '{"v":2,"id":"q","op":"shutdown","ok":true}' "$RESP" \
  || fail "missing shutdown acknowledgement"

# --- 3. clean shutdown ------------------------------------------------------

wait "$DPID" || fail "daemon exited nonzero after shutdown"
DPID=
[ ! -e "$SOCK" ] || fail "daemon left its socket file behind"

echo "service-smoke: OK (51 responses, byte-identical daemon compiles, clean shutdown)"

(* conformance: the mass-corpus differential driver (docs/CONFORMANCE.md).

     conformance [--n N] [--seed S] [--ledger PATH|-] [--expected PATH]
                 [--pipeline SPEC] [--daemon] [--router] [--tiered]
                 [--shards K] [--connections K] [--domains D]
                 [--observe JSON] [--quiet]

   Runs N seeded corpus programs through the full
   {scheme} x {mode} x {pipeline} differential matrix in-process,
   renders the ledger, and exits nonzero on any unexplained divergence —
   after shrinking each one to a minimal reproducer.  [--expected] diffs
   the ledger against a committed golden ([test/corpus_ledger.expected]);
   [--daemon] additionally replays the whole corpus through a live
   in-process mompd over K client sessions, reporting compiles/sec cold
   and warm and requiring byte-identity with in-process compilation;
   [--router] does the same through a fleet router fronting --shards
   supervised daemon shards (cold + warm, byte-identity required);
   [--pipeline SPEC] (api_version 2) replays the matrix with an explicit
   pipeline in the optimized column — `--pipeline fast` asserts the fast
   tier's deltas against the reference are all classified by the ledger,
   i.e. the tier introduces no NEW unsoundness; [--tiered] measures the
   tiered daemon (cold p50 per tier, upgrade throughput, post-upgrade
   byte-identity) and merges a schema-stamped "tiers" section with
   [--observe]; [--observe FILE] merges the resulting schema-stamped
   "corpus" (and "tiers") sections into an existing BENCH_observe.json.

   Exit codes: 0 conformant, 1 unexplained divergence or ledger drift or
   daemon mismatch, 2 usage/environment error. *)

let die fmt = Fmt.kstr (fun s -> prerr_endline ("conformance: " ^ s); exit 2) fmt

let usage () =
  prerr_endline
    "usage: conformance [--n N] [--seed S] [--ledger PATH|-] [--expected PATH]\n\
    \                   [--pipeline SPEC] [--daemon] [--router] [--tiered]\n\
    \                   [--shards K] [--connections K] [--domains D]\n\
    \                   [--observe JSON] [--quiet]";
  exit 2

type opts = {
  mutable n : int;
  mutable seed : int64;
  mutable ledger : string option;
  mutable expected : string option;
  mutable daemon : bool;
  mutable router : bool;
  mutable shards : int;
  mutable connections : int;
  mutable domains : int;
  mutable observe : string option;
  mutable quiet : bool;
  mutable only : int option;
  mutable pipeline : Ompgpu_api.Pipeline.t option;
  mutable tiered : bool;
}

let parse_args () =
  let o =
    {
      n = 1000;
      seed = 42L;
      ledger = None;
      expected = None;
      daemon = false;
      router = false;
      shards = 2;
      connections = 4;
      domains = 2;
      observe = None;
      quiet = false;
      only = None;
      pipeline = None;
      tiered = false;
    }
  in
  let pos_int name v =
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ -> die "%s expects a positive integer (got %S)" name v
  in
  let rec parse = function
    | [] -> ()
    | "--n" :: v :: rest ->
      o.n <- pos_int "--n" v;
      parse rest
    | "--seed" :: v :: rest ->
      (match Int64.of_string_opt v with
      | Some s -> o.seed <- s
      | None -> die "--seed expects an integer (got %S)" v);
      parse rest
    | "--ledger" :: v :: rest ->
      o.ledger <- Some v;
      parse rest
    | "--expected" :: v :: rest ->
      o.expected <- Some v;
      parse rest
    | "--daemon" :: rest ->
      o.daemon <- true;
      parse rest
    | "--router" :: rest ->
      o.router <- true;
      parse rest
    | "--shards" :: v :: rest ->
      o.shards <- pos_int "--shards" v;
      parse rest
    | "--connections" :: v :: rest ->
      o.connections <- pos_int "--connections" v;
      parse rest
    | "--domains" :: v :: rest ->
      o.domains <- pos_int "--domains" v;
      parse rest
    | "--observe" :: v :: rest ->
      o.observe <- Some v;
      parse rest
    | "--pipeline" :: v :: rest ->
      (match Ompgpu_api.Pipeline.of_string v with
      | Ok p -> o.pipeline <- Some p
      | Error msg -> die "--pipeline: %s" msg);
      parse rest
    | "--tiered" :: rest ->
      o.tiered <- true;
      parse rest
    | "--quiet" :: rest ->
      o.quiet <- true;
      parse rest
    | "--only" :: v :: rest ->
      o.only <- Some (match int_of_string_opt v with
        | Some n when n >= 0 -> n
        | _ -> die "--only expects a non-negative program index (got %S)" v);
      parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | a :: _ -> die "unknown argument %S (try --help)" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  o

(* Merge one named member ("corpus", "tiers") into an existing
   BENCH_observe.json without disturbing anything else in it. *)
let merge_observe path member_name member_json =
  let base =
    match In_channel.with_open_text path In_channel.input_all with
    (* a missing file starts from an empty object: conformance can seed a
       fresh observe file that bench/main.exe later fills in *)
    | exception Sys_error _ -> Observe.Json.Obj []
    | s -> (
      match Observe.Json.of_string s with
      | Ok j -> j
      | Error msg -> die "--observe: %s: %s" path msg)
  in
  let merged =
    match base with
    | Observe.Json.Obj members ->
      Observe.Json.Obj
        (List.filter (fun (k, _) -> not (String.equal k member_name)) members
        @ [ (member_name, member_json) ])
    | _ -> die "--observe: %s: top level is not an object" path
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Observe.Json.to_string merged);
      Out_channel.output_char oc '\n')

(* --only I: print one program of the corpus and its raw per-cell
   observations — how a ledger line is turned back into a reproduction. *)
let dump_program ~root index =
  let prog = Corpus.Gen.generate (Corpus.Gen.program_stream ~root index) in
  Fmt.pr "# corpus program %d of seed %Ld@.%a@." index root Corpus.Gen.pp prog;
  List.iter
    (fun cell ->
      Fmt.pr "%-22s %s@." (Corpus.Matrix.cell_name cell)
        (Corpus.Matrix.observe cell prog))
    Corpus.Matrix.cells

let () =
  let o = parse_args () in
  (match o.only with
  | Some i ->
    dump_program ~root:o.seed i;
    exit 0
  | None -> ());
  (* the committed golden pins the FULL-pipeline ledger; diffing a
     replay under another pipeline against it would always "drift" *)
  (match (o.pipeline, o.expected) with
  | Some _, Some _ ->
    die "--pipeline and --expected are mutually exclusive (the golden \
         ledger pins the full-pipeline matrix)"
  | _ -> ());
  let failed = ref false in
  let progress = ref 0 in
  let t0 = Unix.gettimeofday () in
  let on_program (_ : Corpus.Matrix.program_result) =
    incr progress;
    if (not o.quiet) && !progress mod 100 = 0 then
      Fmt.epr "conformance: %d/%d programs@." !progress o.n
  in
  let results =
    Corpus.Matrix.run ?pipeline:o.pipeline ~on_program ~root:o.seed ~n:o.n ()
  in
  let matrix_s = Unix.gettimeofday () -. t0 in
  let ledger_text = Corpus.Ledger.render ~root:o.seed results in
  (match o.ledger with
  | Some "-" -> print_string ledger_text
  | Some path ->
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc ledger_text)
  | None -> ());
  let t = Corpus.Ledger.totals results in
  if not o.quiet then begin
    (match o.pipeline with
    | Some p ->
      Fmt.pr "conformance: optimized column replayed under pipeline %s@."
        (Ompgpu_api.Pipeline.to_string p)
    | None -> ());
    Fmt.pr "conformance: %d programs, %d cells: %d pass, %d known-divergence, %d fail \
            (%.1fs in-process)@."
      o.n t.Corpus.Ledger.cells t.Corpus.Ledger.pass t.Corpus.Ledger.known
      t.Corpus.Ledger.fail matrix_s;
    List.iter
      (fun (cls, count) -> Fmt.pr "  class %-24s %d cells@." cls count)
      (Corpus.Ledger.class_counts results)
  end;
  (* every unexplained divergence ships as a minimized reproducer *)
  List.iter
    (fun ((r : Corpus.Matrix.program_result), (cr : Corpus.Matrix.cell_result)) ->
      failed := true;
      let cell = cr.Corpus.Matrix.cell in
      let small =
        Corpus.Matrix.shrink_failure ?pipeline:o.pipeline cell
          r.Corpus.Matrix.prog
      in
      Fmt.epr
        "conformance: UNEXPLAINED divergence: prog=%d cell=%s (seed %Ld)@.\
         minimized reproducer (mode %s):@.%s@."
        r.Corpus.Matrix.index
        (Corpus.Matrix.cell_name cell)
        o.seed
        (Corpus.Gen.mode_name cell.Corpus.Matrix.mode)
        (Corpus.Gen.render ~mode:cell.Corpus.Matrix.mode small))
    (Corpus.Matrix.failures results);
  (match o.expected with
  | None -> ()
  | Some path -> (
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg -> die "--expected: %s" msg
    | expected -> (
      match Corpus.Ledger.diff ~expected ~actual:ledger_text with
      | Ok () -> if not o.quiet then Fmt.pr "ledger matches %s@." path
      | Error report ->
        failed := true;
        Fmt.epr "conformance: ledger drift vs %s:@.%s@." path report)));
  if o.daemon then begin
    let s = Corpus.Traffic.run ~connections:o.connections ~domains:o.domains
        ~root:o.seed ~n:o.n ()
    in
    Fmt.pr
      "daemon: %d jobs over %d connections (%d domains): cold %.1f compiles/s \
       (%.1fs), warm %.1f compiles/s (%.1fs), byte-identical %b@."
      s.Corpus.Traffic.jobs s.Corpus.Traffic.connections s.Corpus.Traffic.domains
      s.Corpus.Traffic.cold_cps s.Corpus.Traffic.cold_s s.Corpus.Traffic.warm_cps
      s.Corpus.Traffic.warm_s s.Corpus.Traffic.byte_identical;
    if not s.Corpus.Traffic.byte_identical then begin
      failed := true;
      Fmt.epr "conformance: daemon results diverged from in-process compilation \
               (%d transport errors)@."
        s.Corpus.Traffic.transport_errors
    end;
    match o.observe with
    | Some path -> merge_observe path "corpus" (Corpus.Traffic.to_json s)
    | None -> ()
  end
  else if o.observe <> None && not o.tiered then
    die "--observe requires --daemon or --tiered (it merges daemon-measured \
         sections)";
  if o.tiered then begin
    (* tiered daemon vs untiered daemon on the tier-eligible slice: cold
       p50 must drop, and post-upgrade answers must be byte-identical to
       one-shot full-pipeline compiles *)
    let ts =
      Corpus.Traffic.run_tiered ~connections:o.connections ~domains:o.domains
        ~root:o.seed ~n:o.n ()
    in
    Fmt.pr
      "tiers: %d jobs over %d connections (%d domains): cold p50 full \
       %.1fms vs tiered %.1fms, warm %.1f vs %.1f compiles/s, %d \
       upgrade(s) drained in %.1fs (%.1f/s), post-upgrade byte-identical \
       %b@."
      ts.Corpus.Traffic.tr_jobs ts.Corpus.Traffic.tr_connections
      ts.Corpus.Traffic.tr_domains ts.Corpus.Traffic.full_cold_p50_ms
      ts.Corpus.Traffic.tiered_cold_p50_ms ts.Corpus.Traffic.full_warm_cps
      ts.Corpus.Traffic.tiered_warm_cps ts.Corpus.Traffic.upgrades_done
      ts.Corpus.Traffic.upgrade_drain_s ts.Corpus.Traffic.upgrades_per_s
      ts.Corpus.Traffic.post_upgrade_identical;
    if not ts.Corpus.Traffic.post_upgrade_identical then begin
      failed := true;
      Fmt.epr
        "conformance: post-upgrade tiered answers diverged from one-shot \
         full-pipeline compilation (%d transport errors)@."
        ts.Corpus.Traffic.tr_transport_errors
    end;
    match o.observe with
    | Some path -> merge_observe path "tiers" (Corpus.Traffic.tiers_to_json ts)
    | None -> ()
  end;
  if o.router then begin
    (* the same corpus, the same byte-identity bar, but through the fleet:
       a router + shards answer must match the in-process facade exactly *)
    let f =
      Corpus.Traffic.run_fleet ~connections:o.connections ~shards:o.shards
        ~domains:o.domains ~root:o.seed ~n:o.n ()
    in
    let s = f.Corpus.Traffic.base in
    Fmt.pr
      "router: %d jobs over %d connections and %d shard(s): cold %.1f \
       compiles/s (%.1fs), warm %.1f compiles/s (%.1fs), warm-hit ratio \
       %.2f, %d failover(s), %d fallback(s), byte-identical %b@."
      s.Corpus.Traffic.jobs s.Corpus.Traffic.connections f.Corpus.Traffic.shards
      s.Corpus.Traffic.cold_cps s.Corpus.Traffic.cold_s s.Corpus.Traffic.warm_cps
      s.Corpus.Traffic.warm_s f.Corpus.Traffic.warm_hit_ratio
      f.Corpus.Traffic.failovers f.Corpus.Traffic.fallbacks
      s.Corpus.Traffic.byte_identical;
    if not s.Corpus.Traffic.byte_identical then begin
      failed := true;
      Fmt.epr
        "conformance: fleet results diverged from in-process compilation (%d \
         transport errors)@."
        s.Corpus.Traffic.transport_errors
    end
  end;
  if !failed then exit 1

#!/bin/sh
# Chaos/soak harness for the supervised compile service (docs/ROBUSTNESS.md).
#
# Five phases, CHAOS_ITERS iterations overall (default 200):
#
#   1. Supervised crash soak: a daemon under `--inject daemon-kill` crashes
#      its serve loop on a deterministic fraction of accepts; a stream of
#      `mompc --daemon` compiles rides through the restarts and every one
#      must exit 0 with bytes identical to a one-shot reference (the client
#      retries through restarts; if a run exhausts its budget it degrades
#      in-process, which is byte-identical by construction).  Afterwards
#      `mompd health` must report restarts > 0 with the breaker closed,
#      and a shutdown must still exit 0.
#
#   2. External kill -9 soak: repeatedly SIGKILL the daemon mid-request,
#      restart it on the same socket and state dir, and assert the client
#      still exits 0 byte-identical every time.  The journal's recovery
#      scan runs on each reboot; the final health document must carry it.
#
#   3. Malformed-frame fuzz: wrong-version requests, non-request JSON
#      documents and interleaved valid stats through `mompd request` —
#      every line gets exactly one response, every bad one a structured
#      bad-request rejection, and the daemon stays up.  When python3 is
#      available, raw garbage bytes, a torn frame and an oversized
#      (> max_frame_bytes) line are also thrown at the socket directly.
#
#   4. Fleet kill -9 soak: `mompd route` fronts three subprocess shards;
#      a stream of compiles rides through the router while one shard is
#      SIGKILLed mid-traffic.  Every client must still exit 0 with bytes
#      identical to the one-shot reference (the router strikes the dead
#      shard and fails over along the ring), the monitor must respawn
#      the corpse, and the fleet document must show all shards back up
#      with a respawn on the books (docs/FLEET.md).
#
#   5. Storage-governance soak: a fleet under `--inject disk-full` (half
#      of all disk-cache stores fail as ENOSPC) and a tiny
#      `--cache-max-bytes` quota, fed a rotating set of distinct sources
#      so the caches churn.  Every reply must stay byte-identical to its
#      one-shot reference (a full disk costs warm hits, never a reply),
#      the shared cache directory must stay bounded by the per-shard
#      quotas, and the router stats must surface the storage rollup.
#
# Zero non-taxonomy exits allowed anywhere: clients exit 0, the daemon
# exits 0 on shutdown, and nothing ever dies on an unhandled exception.

set -e

MOMPC=${MOMPC:-_build/default/bin/mompc.exe}
MOMPD=${MOMPD:-_build/default/bin/mompd.exe}
CHAOS_ITERS=${CHAOS_ITERS:-200}

# iteration budget: half crash soak, a tenth kill -9 cycles (each costs a
# daemon boot), a tenth fleet compiles around a shard SIGKILL, a tenth
# storage-governance compiles under disk-full injection, the rest
# protocol fuzz lines
P1=$((CHAOS_ITERS / 2))
P2=$((CHAOS_ITERS / 10))
P4=$((CHAOS_ITERS / 10))
[ "$P4" -ge 4 ] || P4=4
P5=$((CHAOS_ITERS / 10))
[ "$P5" -ge 6 ] || P5=6
P3=$((CHAOS_ITERS - P1 - P2 - P4 - P5))
[ "$P3" -ge 5 ] || P3=5

WORK=$(mktemp -d)
# keep the socket paths short: Unix sockets cap at ~108 bytes
SOCK=$(mktemp -u /tmp/mompd-chaos-XXXXXX.sock)
RSOCK=$(mktemp -u /tmp/mompd-chaos-r-XXXXXX.sock)
DPID=
RPID=
# the router owns its shard subprocesses: TERM it first so it can stop
# them, and only then fall back to SIGKILL
trap 'rm -rf "$WORK"; rm -f "$SOCK" "$RSOCK";
      [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null;
      [ -n "$RPID" ] && { kill "$RPID" 2>/dev/null; sleep 1; kill -9 "$RPID" 2>/dev/null; };
      true' EXIT

fail() { echo "chaos-soak: FAIL: $*" >&2; exit 1; }

[ -x "$MOMPC" ] || fail "mompc binary not found at $MOMPC (run: dune build bin)"
[ -x "$MOMPD" ] || fail "mompd binary not found at $MOMPD (run: dune build bin)"

cat > "$WORK/input.c" <<'EOF'
long A[8];
static void bump(long* p) { p[0] = p[0] + 1; }
int main() {
  #pragma omp target teams distribute num_teams(2) thread_limit(8)
  for (int i = 0; i < 16; i++) {
    long s = (long)i;
    bump(&s);
    A[i % 8] = s;
  }
  return 0;
}
EOF

# one-shot reference: every daemon-path compile below must match these bytes
"$MOMPC" -O --run "$WORK/input.c" > "$WORK/ref.out" 2> "$WORK/ref.err" \
  || fail "one-shot reference compile failed"

# wait until `mompd health` answers (also exercises the health verb); the
# serve loop may be mid-restart, so connection failures here are expected
wait_healthy() {
  i=0
  while ! "$MOMPD" health --socket "$SOCK" > /dev/null 2>&1; do
    i=$((i+1))
    [ "$i" -gt 100 ] && fail "daemon did not become healthy (see $WORK/daemon.log)"
    kill -0 "$DPID" 2>/dev/null || fail "daemon died: $(tail -5 "$WORK/daemon.log")"
    sleep 0.1
  done
}

# a control verb may land on an accept that the injector crashes; retry it
retry_verb() {
  i=0
  until "$MOMPD" "$@" --socket "$SOCK" 2>/dev/null; do
    i=$((i+1))
    [ "$i" -gt 25 ] && fail "mompd $1 kept failing against $SOCK"
    sleep 0.1
  done
}

# --- phase 1: supervised crash soak ----------------------------------------

echo "chaos-soak: phase 1: $P1 compiles over daemon-kill injection" >&2

"$MOMPD" serve --socket "$SOCK" -j 2 --capacity 8 \
  --state-dir "$WORK/state1" \
  --inject daemon-kill:0.3:1 --max-restarts 100000 --restart-window 5 \
  2> "$WORK/daemon.log" &
DPID=$!
wait_healthy

n=0
while [ "$n" -lt "$P1" ]; do
  "$MOMPC" -O --run --daemon "$SOCK" "$WORK/input.c" \
    > "$WORK/p1.out" 2> "$WORK/p1.err" \
    || fail "phase 1 iter $n: client exited $? (non-taxonomy path)"
  cmp -s "$WORK/ref.out" "$WORK/p1.out" || fail "phase 1 iter $n: stdout differs"
  cmp -s "$WORK/ref.err" "$WORK/p1.err" || fail "phase 1 iter $n: stderr differs"
  n=$((n+1))
done

retry_verb health > "$WORK/health1.json"
grep -q '"breaker": "closed"' "$WORK/health1.json" \
  || fail "phase 1: breaker not closed: $(cat "$WORK/health1.json")"
grep -q '"restarts": 0,' "$WORK/health1.json" \
  && fail "phase 1: supervisor never restarted under daemon-kill injection"
grep -q '"ev":"restart"' "$WORK/state1/journal.ndjson" \
  || fail "phase 1: journal has no restart events"

retry_verb shutdown
wait "$DPID" || fail "phase 1: daemon exited nonzero after shutdown"
DPID=
[ ! -e "$SOCK" ] || fail "phase 1: daemon left its socket file behind"

# --- phase 2: external kill -9 soak ----------------------------------------

echo "chaos-soak: phase 2: $P2 kill -9 / restart cycles" >&2

start_daemon2() {
  "$MOMPD" serve --socket "$SOCK" -j 2 --capacity 8 \
    --state-dir "$WORK/state2" 2>> "$WORK/daemon.log" &
  DPID=$!
  wait_healthy
}

start_daemon2
n=0
while [ "$n" -lt "$P2" ]; do
  "$MOMPC" -O --run --daemon "$SOCK" "$WORK/input.c" \
    > "$WORK/p2.out" 2> "$WORK/p2.err" &
  CPID=$!
  # land the SIGKILL anywhere from connect to mid-compile
  sleep 0.0$((n % 5))
  kill -9 "$DPID" 2>/dev/null || true
  wait "$DPID" 2>/dev/null || true
  wait "$CPID" || fail "phase 2 iter $n: client exited $? after daemon SIGKILL"
  cmp -s "$WORK/ref.out" "$WORK/p2.out" || fail "phase 2 iter $n: stdout differs"
  cmp -s "$WORK/ref.err" "$WORK/p2.err" || fail "phase 2 iter $n: stderr differs"
  start_daemon2
  n=$((n+1))
done

# the last reboot replayed a journal that a SIGKILL cut short: the health
# document must carry the recovery scan's counters
retry_verb health > "$WORK/health2.json"
grep -q '"journal": {' "$WORK/health2.json" \
  || fail "phase 2: health carries no journal recovery counters"
grep -q '"interrupted":' "$WORK/health2.json" \
  || fail "phase 2: recovery scan reports no interrupted counter"

# --- phase 3: malformed-frame fuzz -----------------------------------------

echo "chaos-soak: phase 3: $P3 fuzz lines through mompd request" >&2

REQ="$WORK/fuzz.jsonl"
: > "$REQ"
bad=0
good=0
n=0
while [ "$n" -lt "$P3" ]; do
  case $((n % 5)) in
    0) printf '{"v":99,"id":"f%d","op":"stats"}\n' "$n" >> "$REQ"; bad=$((bad+1)) ;;
    1) printf '"hello-%d"\n' "$n" >> "$REQ"; bad=$((bad+1)) ;;
    2) printf '{"op":"nope","junk":%d}\n' "$n" >> "$REQ"; bad=$((bad+1)) ;;
    3) printf '[%d,2,3]\n' "$n" >> "$REQ"; bad=$((bad+1)) ;;
    4) printf '{"v":2,"id":"ok%d","op":"stats"}\n' "$n" >> "$REQ"; good=$((good+1)) ;;
  esac
  n=$((n+1))
done

RESP="$WORK/fuzz-resp.jsonl"
"$MOMPD" request --socket "$SOCK" < "$REQ" > "$RESP" \
  || fail "phase 3: mompd request exited nonzero"
[ "$(wc -l < "$RESP")" -eq "$P3" ] \
  || fail "phase 3: expected $P3 response lines, got $(wc -l < "$RESP")"
[ "$(grep -c '"kind":"bad-request"' "$RESP")" -eq "$bad" ] \
  || fail "phase 3: expected $bad bad-request rejections, got $(grep -c '"kind":"bad-request"' "$RESP")"
[ "$(grep -c '"ok":true' "$RESP")" -eq "$good" ] \
  || fail "phase 3: expected $good ok responses, got $(grep -c '"ok":true' "$RESP")"

# raw bytes the line-oriented `mompd request` cannot send: garbage, a torn
# frame, and an oversized (> 8 MiB) line straight onto the socket
if command -v python3 > /dev/null 2>&1; then
  python3 - "$SOCK" <<'PYEOF' || fail "phase 3: raw-socket fuzz failed"
import socket, sys
path = sys.argv[1]

def conn():
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(10)
    s.connect(path)
    return s

# garbage bytes: one structured rejection, connection stays usable
s = conn()
s.sendall(b"\x00\xff{{{ not json\n")
r = s.makefile("rb").readline()
assert b"bad-request" in r, r
s.sendall(b'{"v":2,"id":"after","op":"stats"}\n')
r = s.makefile("rb").readline()
assert b'"ok":true' in r, r
s.close()

# torn frame: half a request then EOF -- rejection, clean close
s = conn()
s.sendall(b'{"v":2,"id":"torn","op":"sta')
s.shutdown(socket.SHUT_WR)
r = s.makefile("rb").readline()
assert b"bad-request" in r, r
s.close()

# oversized line: the daemon answers one rejection then severs the
# connection; depending on how much was still in flight the sender may
# see the severance as a reset instead of the rejection line -- either
# way it must never wedge, and the daemon must survive (checked below)
s = conn()
try:
    s.sendall(b"a" * (9 * 1024 * 1024) + b"\n")
    r = s.makefile("rb").readline()
    assert r == b"" or b"bad-request" in r, r
except (BrokenPipeError, ConnectionResetError):
    pass
s.close()
PYEOF
  # the daemon must have survived all of it
  retry_verb stats > /dev/null
else
  echo "chaos-soak: note: python3 not found, skipping raw-socket fuzz" >&2
fi

# --- clean shutdown of the single daemon ------------------------------------

retry_verb shutdown
wait "$DPID" || fail "daemon exited nonzero after shutdown"
DPID=
[ ! -e "$SOCK" ] || fail "daemon left its socket file behind"

# --- phase 4: fleet kill -9 soak --------------------------------------------

echo "chaos-soak: phase 4: $P4 compiles through the router around a shard kill -9" >&2

"$MOMPD" route --socket "$RSOCK" --shards 3 -j 2 \
  --fleet-dir "$WORK/fleet" --cache-dir "$WORK/fleet-cache" \
  --probe-interval 0.05 \
  2> "$WORK/router.log" &
RPID=$!

# all three shards probed up before any traffic (or a kill) is aimed at them
fleet_doc() { "$MOMPD" fleet --socket "$RSOCK" 2>/dev/null; }
wait_fleet_up() { # $1 = expected shard count, $2 = router log
  i=0
  while [ "$(fleet_doc | grep -c '"state": "up"')" -ne "$1" ]; do
    i=$((i+1))
    [ "$i" -gt 200 ] && fail "fleet did not come up (see $2)"
    kill -0 "$RPID" 2>/dev/null || fail "router died: $(tail -5 "$2")"
    sleep 0.1
  done
}
wait_fleet_up 3 "$WORK/router.log"

n=0
while [ "$n" -lt "$P4" ]; do
  if [ "$n" -eq $((P4 / 2)) ]; then
    # SIGKILL one shard mid-traffic: pick its pid out of the fleet
    # document, index varied by the iteration count
    KPID=$(fleet_doc | grep -o '"pid": [0-9]*' | grep -o '[0-9]*$' \
           | sed -n "$(( (n % 3) + 1 ))p")
    [ -n "$KPID" ] || fail "phase 4: no shard pid in the fleet document"
    kill -9 "$KPID" 2>/dev/null || fail "phase 4: could not SIGKILL shard pid $KPID"
  fi
  "$MOMPC" -O --run --daemon "$RSOCK" "$WORK/input.c" \
    > "$WORK/p4.out" 2> "$WORK/p4.err" \
    || fail "phase 4 iter $n: client exited $? through the router"
  cmp -s "$WORK/ref.out" "$WORK/p4.out" || fail "phase 4 iter $n: stdout differs"
  cmp -s "$WORK/ref.err" "$WORK/p4.err" || fail "phase 4 iter $n: stderr differs"
  n=$((n+1))
done

# The monitor must have respawned the corpse and probed it back up.  Both
# conditions poll together: right after the kill the fleet document can
# still show three stale "up" states from probes that predate the SIGKILL,
# so requiring 3-up alone would pass before the monitor has even noticed
# the death (and the respawn counter would then read 0).
i=0
until fleet_doc > "$WORK/fleet.json" \
      && [ "$(grep -c '"state": "up"' "$WORK/fleet.json")" -eq 3 ] \
      && grep -q '"respawns": [1-9]' "$WORK/fleet.json"; do
  i=$((i+1))
  [ "$i" -gt 100 ] && fail "phase 4: killed shard never respawned and came back up: $(cat "$WORK/fleet.json")"
  sleep 0.1
done
"$MOMPD" health --socket "$RSOCK" | grep -q '"shards_up": 3' \
  || fail "phase 4: router health does not report 3 shards up"

"$MOMPD" shutdown --socket "$RSOCK" || fail "phase 4: router shutdown failed"
wait "$RPID" || fail "phase 4: router exited nonzero after shutdown"
RPID=
[ ! -e "$RSOCK" ] || fail "phase 4: router left its socket file behind"

# --- phase 5: storage governance under disk-full injection -------------------

echo "chaos-soak: phase 5: $P5 compiles under disk-full injection and a tiny cache quota" >&2

# a rotating set of distinct sources, so the byte-capped caches actually
# churn (one source would be a single key: no eviction pressure at all)
NVAR=6
v=0
while [ "$v" -lt "$NVAR" ]; do
  sed "s/num_teams(2)/num_teams($((v + 2)))/" "$WORK/input.c" > "$WORK/v$v.c"
  "$MOMPC" -O --run "$WORK/v$v.c" > "$WORK/ref$v.out" 2> "$WORK/ref$v.err" \
    || fail "phase 5: one-shot reference compile of variant $v failed"
  v=$((v+1))
done

QUOTA=4096
P5SHARDS=2
"$MOMPD" route --socket "$RSOCK" --shards "$P5SHARDS" -j 2 \
  --fleet-dir "$WORK/fleet5" --cache-dir "$WORK/p5-cache" \
  --cache-max-bytes "$QUOTA" --inject disk-full:0.5:9 \
  --probe-interval 0.05 \
  2> "$WORK/router5.log" &
RPID=$!
wait_fleet_up "$P5SHARDS" "$WORK/router5.log"

n=0
while [ "$n" -lt "$P5" ]; do
  v=$((n % NVAR))
  "$MOMPC" -O --run --daemon "$RSOCK" "$WORK/v$v.c" \
    > "$WORK/p5.out" 2> "$WORK/p5.err" \
    || fail "phase 5 iter $n: client exited $? under disk-full injection"
  cmp -s "$WORK/ref$v.out" "$WORK/p5.out" || fail "phase 5 iter $n: stdout differs"
  cmp -s "$WORK/ref$v.err" "$WORK/p5.err" || fail "phase 5 iter $n: stderr differs"
  n=$((n+1))
done

# the shared directory is bounded: each shard enforces its own quota over
# its own ledger, so the worst case is shards x quota plus one in-flight
# temp file's worth of slack
DU=$(du -sb "$WORK/p5-cache" 2>/dev/null | cut -f1)
[ -n "$DU" ] || DU=$(( $(du -sk "$WORK/p5-cache" | cut -f1) * 1024 ))
LIMIT=$((P5SHARDS * QUOTA + QUOTA))
[ "$DU" -le "$LIMIT" ] \
  || fail "phase 5: cache dir grew past the quota: ${DU}B on disk, limit ${LIMIT}B"

# the router's stats document must roll the shards' storage sections up
"$MOMPD" stats --socket "$RSOCK" > "$WORK/stats5.json" \
  || fail "phase 5: router stats failed"
grep -q '"storage"' "$WORK/stats5.json" \
  || fail "phase 5: router stats carry no storage rollup"
grep -q '"shards_reporting": '"$P5SHARDS" "$WORK/stats5.json" \
  || fail "phase 5: storage rollup missing shards: $(cat "$WORK/stats5.json")"

"$MOMPD" shutdown --socket "$RSOCK" || fail "phase 5: router shutdown failed"
wait "$RPID" || fail "phase 5: router exited nonzero after shutdown"
RPID=
[ ! -e "$RSOCK" ] || fail "phase 5: router left its socket file behind"

echo "chaos-soak: OK ($P1 compiles over crash injection, $P2 kill -9 cycles, $P3 fuzz lines, $P4 fleet compiles around a shard kill -9, $P5 compiles under disk-full injection; zero non-taxonomy exits)"

(* Dump a proxy application's MiniOMP source: gensrc <app> [tiny|bench] [omp|cuda] *)
let () =
  let app = Proxyapps.Apps.find_exn (try Sys.argv.(1) with _ -> "xsbench") in
  let scale =
    match (try Sys.argv.(2) with _ -> "tiny") with
    | "bench" -> Proxyapps.App.Bench
    | _ -> Proxyapps.App.Tiny
  in
  let variant = try Sys.argv.(3) with _ -> "omp" in
  print_string
    (match variant with
    | "cuda" -> app.Proxyapps.App.cuda_source scale
    | _ -> app.Proxyapps.App.omp_source scale)

(* Generic IR cleanup run between OpenMP-specific passes: constant folding,
   branch folding, dead-code elimination and unreachable-block pruning.
   This is what turns a folded __kmpc_is_spmd_exec_mode into an actually
   removed branch (e.g. the generic path of the runtime glue helpers). *)

open Ir
module IS = Support.Util.Int_set
(* stable identifier used by the Observe trace layer *)
let pass_name = "simplify"

let const_int ty v = Value.Const (Value.CInt (ty, Rvalue_fold.truncate_to ty v))

(* Fold an instruction with constant operands into a constant value. *)
let fold_instr (i : Instr.t) : Value.t option =
  match i.Instr.kind with
  | Instr.Bin (op, ty, Value.Const (Value.CInt (_, a)), Value.Const (Value.CInt (_, b))) ->
    Rvalue_fold.bin_int ~ty op a b |> Option.map (fun v -> const_int ty v)
  | Instr.Icmp (cc, _, Value.Const (Value.CInt (_, a)), Value.Const (Value.CInt (_, b))) ->
    Some (Value.i1 (Rvalue_fold.icmp_int cc a b))
  | Instr.Cast (Instr.Sext, ty, Value.Const (Value.CInt (_, v)))
  | Instr.Cast (Instr.Trunc, ty, Value.Const (Value.CInt (_, v)))
  | Instr.Cast (Instr.Zext, ty, Value.Const (Value.CInt (_, v)))
    when Types.is_integer ty ->
    Some (const_int ty v)
  | Instr.Select (_, Value.Const (Value.CInt (_, c)), a, b) ->
    Some (if c <> 0L then a else b)
  | _ -> None

let used_regs (f : Func.t) =
  Func.fold_instrs f ~init:IS.empty ~g:(fun acc _ i ->
      List.fold_left
        (fun acc v -> match v with Value.Reg r -> IS.add r acc | _ -> acc)
        acc (Instr.operands i))
  |> fun init ->
  List.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc v -> match v with Value.Reg r -> IS.add r acc | _ -> acc)
        acc
        (Block.term_operands b.Block.term))
    init f.Func.blocks

(* Calls are removable only when the callee is known side-effect free. *)
let removable_if_unused (m : Irmod.t) (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Alloca _ | Instr.Load _ | Instr.Gep _ | Instr.Bin _ | Instr.Icmp _
  | Instr.Fcmp _ | Instr.Cast _ | Instr.Select _ ->
    true
  | Instr.Store _ | Instr.Atomicrmw _ -> false
  | Instr.Call (_, Instr.Direct name, _) -> (
    match Devrt.Registry.lookup name with
    | Some r -> r.Devrt.Registry.rt_effect = Devrt.Registry.Eff_none
    | None -> (
      match Irmod.find_func m name with
      | Some f -> Func.has_attr f Func.Pure
      | None -> false))
  | Instr.Call (_, Instr.Indirect _, _) -> false

let run_func (m : Irmod.t) (f : Func.t) =
  if Func.is_declaration f then false
  else begin
    let changed = ref false in
    (* 1. constant folding: replace uses of foldable instructions *)
    Func.iter_instrs f ~g:(fun _ i ->
        match fold_instr i with
        | Some c ->
          Func.replace_uses f ~old_v:(Value.Reg i.Instr.id) ~new_v:c;
          changed := true
        | None -> ());
    (* 2. branch folding *)
    List.iter
      (fun b ->
        match b.Block.term with
        | Block.Cbr (Value.Const (Value.CInt (_, c)), l1, l2) ->
          b.Block.term <- Block.Br (if c <> 0L then l1 else l2);
          changed := true
        | Block.Cbr (_, l1, l2) when String.equal l1 l2 ->
          b.Block.term <- Block.Br l1;
          changed := true
        | Block.Switch (Value.Const (Value.CInt (_, c)), cases, d) ->
          let target = match List.assoc_opt c cases with Some l -> l | None -> d in
          b.Block.term <- Block.Br target;
          changed := true
        | _ -> ())
      f.Func.blocks;
    (* 3. unreachable block pruning *)
    if Cfg.prune_unreachable f then changed := true;
    (* 3b. merge straight-line blocks: b -> Br l where l has one predecessor *)
    (let cfg = Cfg.compute f in
     let merged = ref true in
     while !merged do
       merged := false;
       List.iter
         (fun b ->
           match b.Block.term with
           | Block.Br l
             when (not (String.equal l b.Block.label))
                  && (match Func.find_block f l with
                     | Some succ ->
                       List.length (Cfg.preds cfg l) = 1
                       && not (String.equal succ.Block.label (Func.entry f).Block.label)
                     | None -> false) -> (
             match Func.find_block f l with
             | Some succ when List.memq succ f.Func.blocks && List.memq b f.Func.blocks ->
               b.Block.instrs <- b.Block.instrs @ succ.Block.instrs;
               b.Block.term <- succ.Block.term;
               Func.remove_blocks f [ l ];
               merged := true;
               changed := true
             | _ -> ())
           | _ -> ())
         f.Func.blocks
     done);
    (* 4. dead instruction elimination *)
    let used = used_regs f in
    List.iter
      (fun b ->
        let keep =
          List.filter
            (fun i ->
              let dead =
                (not (Instr.has_result i) && false)
                || (not (IS.mem i.Instr.id used)) && removable_if_unused m i
              in
              if dead then changed := true;
              not dead)
            b.Block.instrs
        in
        b.Block.instrs <- keep)
      f.Func.blocks;
    !changed
  end

(* Remove internal functions not reachable from any root (main, kernels,
   externally visible functions).  This clears dead runtime glue and the
   leftovers of internalization, which would otherwise pollute the
   register-pressure estimates and fold counts. *)
let remove_dead_functions (m : Irmod.t) =
  let cg = Analysis.Callgraph.compute m in
  let roots =
    List.filter_map
      (fun f ->
        if
          Func.is_kernel f
          || String.equal f.Func.name "main"
          || f.Func.linkage <> Func.Internal
        then Some f.Func.name
        else None)
      (Irmod.defined_funcs m)
  in
  let live = Analysis.Callgraph.reachable_from cg roots in
  let dead =
    List.filter
      (fun f ->
        (not (Func.is_declaration f))
        && f.Func.linkage = Func.Internal
        && not (Support.Util.String_set.mem f.Func.name live))
      m.Irmod.funcs
  in
  List.iter (fun f -> Irmod.remove_func m f.Func.name) dead;
  dead <> []

let run (m : Irmod.t) =
  let changed = ref false in
  List.iter (fun f -> if run_func m f then changed := true) (Irmod.defined_funcs m);
  (* iterate locally to a fixpoint: folding exposes dead branches which
     expose dead code *)
  let rounds = ref 0 in
  let any = ref !changed in
  while !changed && !rounds < 8 do
    incr rounds;
    changed := false;
    List.iter (fun f -> if run_func m f then changed := true) (Irmod.defined_funcs m);
    if !changed then any := true
  done;
  (* standalone IR fragments (unit tests, tools) have no kernels or main;
     skip the global DCE there so hand-written functions survive *)
  (if Irmod.kernels m <> [] || Irmod.find_func m "main" <> None then
     if remove_dead_functions m then any := true);
  !any

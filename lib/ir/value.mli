(** MiniIR values.  Constants are self-describing (they carry their type),
    which keeps every operand position in the textual format unambiguous. *)

type const =
  | CInt of Types.t * int64
  | CFloat of Types.t * float
  | CNull of Types.addrspace
  | CUndef of Types.t

type t =
  | Const of const
  | Reg of int  (** result of the instruction with this id, function-scoped *)
  | Arg of int  (** parameter index of the enclosing function *)
  | Global of string
  | Func of string

(** Constant constructors. *)

val i1 : bool -> t
val i32 : int -> t
val i64 : int -> t
val f32 : float -> t
val f64 : float -> t
val null : Types.addrspace -> t
val undef : Types.t -> t

val const_ty : const -> Types.t
val equal_const : const -> const -> bool
val equal : t -> t -> bool

val pp_const : Format.formatter -> const -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val as_int : t -> int64 option
(** Integer-constant view, used pervasively by folding passes. *)

val is_null : t -> bool

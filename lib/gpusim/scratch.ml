(* Reusable simulation arenas.

   A simulated run allocates one large global arena (tens of MB on the
   bench machine) plus one shared arena per team and one local arena per
   thread — hundreds of Bytes values, re-made (and memset) from scratch
   for every job.  On the batch path each pool worker owns one [Scratch.t]
   and threads it through its jobs: arenas released by a finished launch
   (or job) are handed back here together with their dirty extent, and the
   next launch takes them again, so steady-state batch compilation
   allocates no arena bytes and zeroes only the bytes the previous job
   actually wrote (typically KBs, not the tens of MBs a fresh [Bytes.make]
   must fill).

   Correctness: a taken arena is zero everywhere — [Mem] records the
   high-water mark of every store, the dirty prefix/ranges are re-filled
   with zeros here, and bytes beyond the recorded marks were never written
   and are still zero from the arena's original allocation.  That is
   byte-for-byte the state a fresh arena starts in, so a simulation backed
   by recycled arenas is indistinguishable from one backed by fresh
   allocations.  The sequential reference path simply never attaches a
   scratch and keeps its stateless allocate-per-job behaviour.

   A scratch is single-owner: one worker domain, one job at a time.  It is
   NOT domain-safe and must never be shared. *)

type dirty = { db : Bytes.t; ranges : (int * int) list }  (* (offset, len) *)

type t = {
  mutable global : dirty option;
  mutable shareds : dirty list;
  mutable locals : dirty list;
  mutable reused_bytes : int;  (* arena bytes served from the pool *)
  mutable fresh_bytes : int;  (* arena bytes that had to be allocated *)
  mutable zeroed_bytes : int;  (* dirty bytes re-zeroed on reuse *)
}

(* Every scratch ever created, so `make perf` can report arena recycling
   totals across all pool workers (each scratch lives in another domain's
   DLS and is otherwise unreachable).  Counter fields are immediate ints:
   a cross-domain read during [aggregate] observes some written value,
   which is all a statistics report needs. *)
let registry : t list ref = ref []
let registry_mutex = Mutex.create ()

let create () =
  let t =
    {
      global = None;
      shareds = [];
      locals = [];
      reused_bytes = 0;
      fresh_bytes = 0;
      zeroed_bytes = 0;
    }
  in
  Mutex.lock registry_mutex;
  registry := t :: !registry;
  Mutex.unlock registry_mutex;
  t

let aggregate () =
  Mutex.lock registry_mutex;
  let all = !registry in
  Mutex.unlock registry_mutex;
  List.fold_left
    (fun (r, f, z) t -> (r + t.reused_bytes, f + t.fresh_bytes, z + t.zeroed_bytes))
    (0, 0, 0) all

let clean t { db; ranges } =
  let len = Bytes.length db in
  List.iter
    (fun (off, n) ->
      let off = max 0 (min off len) in
      let n = min n (len - off) in
      if n > 0 then begin
        Bytes.fill db off n '\000';
        t.zeroed_bytes <- t.zeroed_bytes + n
      end)
    ranges;
  t.reused_bytes <- t.reused_bytes + len;
  db

let fresh t size =
  t.fresh_bytes <- t.fresh_bytes + size;
  Bytes.make size '\000'

(* A pooled arena of the wrong size (the scratch moved to a different
   machine description) is discarded, not left clogging the pool. *)
let take_global t size =
  match t.global with
  | Some d ->
    t.global <- None;
    if Bytes.length d.db = size then clean t d else fresh t size
  | None -> fresh t size

let take_from_list t take set size =
  match take () with
  | d :: rest ->
    set rest;
    if Bytes.length d.db = size then clean t d else fresh t size
  | [] -> fresh t size

let take_shared t size =
  take_from_list t (fun () -> t.shareds) (fun l -> t.shareds <- l) size

let take_local t size =
  take_from_list t (fun () -> t.locals) (fun l -> t.locals <- l) size

let give_global t b ~ranges = t.global <- Some { db = b; ranges }
let give_shared t b ~dirty = t.shareds <- { db = b; ranges = [ (0, dirty) ] } :: t.shareds
let give_local t b ~dirty = t.locals <- { db = b; ranges = [ (0, dirty) ] } :: t.locals
let reused_bytes t = t.reused_bytes
let fresh_bytes t = t.fresh_bytes
let zeroed_bytes t = t.zeroed_bytes

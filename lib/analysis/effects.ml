(* Side-effect classification for SPMDzation (Section IV-B.3).

   When a generic-mode kernel is converted to SPMD mode, code that used to be
   executed by the main thread alone is suddenly executed by every thread of
   the team.  Each instruction in such code is classified as:

   - [Amenable]: safe for redundant execution by all threads (pure code,
     loads, stores to thread-private allocas, runtime calls marked
     spmd_amenable, calls to functions that are themselves amenable).
   - [Guardable]: a side effect that can be wrapped in an "if (tid == 0)"
     guard plus a barrier (stores to shared/global memory, atomics,
     globalization calls, tracing).
   - [Blocking]: prevents SPMDzation entirely (calls into unknown external
     code without an ext_spmd_amenable assumption). *)

open Ir

type classification = Amenable | Guardable | Blocking of string

module SM = Support.Util.String_map

type summary = {
  (* A function is amenable when every instruction in it is amenable. *)
  mutable amenable_funcs : bool SM.t;
}

let create () = { amenable_funcs = SM.empty }

(* Is a store target certainly thread-private?  A direct alloca always is;
   geps/casts of an alloca too.  We resolve through the function-local def
   chain. *)
let rec points_to_alloca (f : Func.t) v depth =
  if depth = 0 then false
  else
    match v with
    | Value.Reg id -> (
      match Func.def_of f id with
      | Some i -> (
        match i.Instr.kind with
        | Instr.Alloca _ -> true
        | Instr.Gep (_, base, _) -> points_to_alloca f base (depth - 1)
        | Instr.Cast ((Instr.Bitcast | Instr.Spacecast), _, base) ->
          points_to_alloca f base (depth - 1)
        | _ -> false)
      | None -> false)
    | _ -> false

let rec classify_instr t (m : Irmod.t) (f : Func.t) (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Alloca _ | Instr.Load _ | Instr.Gep _ | Instr.Bin _ | Instr.Icmp _
  | Instr.Fcmp _ | Instr.Cast _ | Instr.Select _ ->
    Amenable
  | Instr.Store (_, _, ptr) ->
    if points_to_alloca f ptr 8 then Amenable else Guardable
  | Instr.Atomicrmw _ -> Guardable
  | Instr.Call (_, Instr.Indirect _, _) -> Blocking "indirect call"
  | Instr.Call (_, Instr.Direct callee, _) -> (
    match Devrt.Registry.lookup callee with
    | Some r ->
      if r.Devrt.Registry.rt_spmd_amenable then Amenable
      else (
        match r.Devrt.Registry.rt_effect with
        | Devrt.Registry.Eff_alloc | Devrt.Registry.Eff_free
        | Devrt.Registry.Eff_other ->
          Guardable
        | Devrt.Registry.Eff_none -> Amenable
        | Devrt.Registry.Eff_sync | Devrt.Registry.Eff_parallel -> Amenable)
    | None -> (
      match Irmod.find_func m callee with
      | Some g when Func.has_attr g Func.Spmd_amenable -> Amenable
      | Some g when not (Func.is_declaration g) ->
        if func_is_amenable t m g then Amenable
        else Blocking (Printf.sprintf "call to non-amenable @%s" callee)
      | Some _ | None ->
        Blocking (Printf.sprintf "call to external @%s without spmd_amenable assumption" callee)))

and func_is_amenable t (m : Irmod.t) (f : Func.t) =
  match SM.find_opt f.Func.name t.amenable_funcs with
  | Some v -> v
  | None ->
    (* optimistic for recursion, then refine *)
    t.amenable_funcs <- SM.add f.Func.name true t.amenable_funcs;
    let ok = ref true in
    Func.iter_instrs f ~g:(fun _ i ->
        if !ok then
          match classify_instr t m f i with
          | Amenable -> ()
          | Guardable | Blocking _ -> ok := false);
    t.amenable_funcs <- SM.add f.Func.name !ok t.amenable_funcs;
    !ok

(* May the function (transitively) write memory that other threads could
   observe, or synchronize?  Used by HeapToStack to decide whether
   synchronization could publish a pointer between threads. *)
let rec may_sync (m : Irmod.t) seen (f : Func.t) =
  if Support.Util.String_set.mem f.Func.name seen then false
  else begin
    let seen = Support.Util.String_set.add f.Func.name seen in
    let found = ref false in
    Func.iter_instrs f ~g:(fun _ i ->
        if not !found then
          match i.Instr.kind with
          | Instr.Call (_, Instr.Direct callee, _) -> (
            match Devrt.Registry.lookup callee with
            | Some r -> (
              match r.Devrt.Registry.rt_effect with
              | Devrt.Registry.Eff_sync | Devrt.Registry.Eff_parallel -> found := true
              | _ -> ())
            | None -> (
              match Irmod.find_func m callee with
              | Some g when not (Func.is_declaration g) ->
                if may_sync m seen g then found := true
              | Some g when Func.has_attr g Func.Nosync -> ()
              | Some _ | None -> found := true))
          | Instr.Call (_, Instr.Indirect _, _) -> found := true
          | _ -> ());
    !found
  end

let func_may_sync m f = may_sync m Support.Util.String_set.empty f

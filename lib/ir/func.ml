(* Functions.  A function with no blocks is a declaration (e.g. the device
   runtime functions, which the GPU simulator intercepts by name). *)

type linkage = External | Internal | Weak

(* Function attributes.  [Spmd_amenable] and [No_openmp] correspond to the
   OpenMP 5.1 assumptions the paper integrates ("ext_spmd_amenable" /
   "omp_no_openmp"); [Nosync] and [Pure] are classic LLVM-style summaries
   used by the escape and side-effect analyses. *)
type attr =
  | Spmd_amenable
  | No_openmp
  | Nosync
  | Pure
  | Noinline
  | Nocapture_args  (* no pointer argument is captured by this function *)
  | Cuda_kernel  (* kernel compiled in native kernel-language style *)

type exec_mode = Generic | Spmd

type kernel_info = {
  mutable exec_mode : exec_mode;
  mutable num_teams : int option;    (* from num_teams clause, if constant *)
  mutable num_threads : int option;  (* from thread_limit/num_threads clause *)
}

type t = {
  name : string;
  ret_ty : Types.t;
  params : (string * Types.t) list;
  mutable blocks : Block.t list;  (* entry block first; empty = declaration *)
  mutable linkage : linkage;
  mutable attrs : attr list;
  mutable kernel : kernel_info option;
  reg_gen : Support.Util.Id_gen.t;
  mutable loc : Support.Loc.t;
}

let make ?(linkage = Internal) ?(attrs = []) ?kernel ?(loc = Support.Loc.none) name
    ~ret_ty ~params =
  {
    name;
    ret_ty;
    params;
    blocks = [];
    linkage;
    attrs;
    kernel;
    reg_gen = Support.Util.Id_gen.create ();
    loc;
  }

let declare ?(attrs = []) name ~ret_ty ~params =
  let f = make ~linkage:External ~attrs name ~ret_ty ~params in
  f

let is_declaration f = f.blocks = []
let is_kernel f = f.kernel <> None

let has_attr f a = List.mem a f.attrs
let add_attr f a = if not (has_attr f a) then f.attrs <- a :: f.attrs

let param_ty f i =
  match List.nth_opt f.params i with
  | Some (_, ty) -> ty
  | None -> Support.Util.failf "Func.param_ty: %s has no parameter %d" f.name i

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> Support.Util.failf "Func.entry: %s is a declaration" f.name

let find_block f label = List.find_opt (fun b -> String.equal b.Block.label label) f.blocks

let find_block_exn f label =
  match find_block f label with
  | Some b -> b
  | None -> Support.Util.failf "Func.find_block: no block %s in %s" label f.name

let add_block f b = f.blocks <- f.blocks @ [ b ]

let remove_blocks f labels =
  f.blocks <- List.filter (fun b -> not (List.mem b.Block.label labels)) f.blocks

let fresh_reg f = Support.Util.Id_gen.fresh f.reg_gen

let iter_blocks f ~g = List.iter g f.blocks

let iter_instrs f ~g = List.iter (fun b -> List.iter (g b) b.Block.instrs) f.blocks

let fold_instrs f ~init ~g =
  List.fold_left
    (fun acc b -> List.fold_left (fun acc i -> g acc b i) acc b.Block.instrs)
    init f.blocks

(* Find the defining instruction of a register. *)
let def_of f reg =
  let found = ref None in
  iter_instrs f ~g:(fun _ i -> if i.Instr.id = reg then found := Some i);
  !found

(* Replace all uses of [old_v] (in instructions and terminators) by [new_v]. *)
let replace_uses f ~old_v ~new_v =
  let subst v = if Value.equal v old_v then new_v else v in
  List.iter
    (fun b ->
      List.iter (Instr.map_operands subst) b.Block.instrs;
      Block.map_term_operands subst b)
    f.blocks

let uses_of f v =
  fold_instrs f ~init:[] ~g:(fun acc _ i ->
      if List.exists (Value.equal v) (Instr.operands i) then i :: acc else acc)
  |> List.rev

let linkage_name = function External -> "external" | Internal -> "internal" | Weak -> "weak"

let attr_name = function
  | Spmd_amenable -> "spmd_amenable"
  | No_openmp -> "no_openmp"
  | Nosync -> "nosync"
  | Pure -> "pure"
  | Noinline -> "noinline"
  | Nocapture_args -> "nocapture_args"
  | Cuda_kernel -> "cuda_kernel"

let attr_of_name = function
  | "spmd_amenable" -> Some Spmd_amenable
  | "no_openmp" -> Some No_openmp
  | "nosync" -> Some Nosync
  | "pure" -> Some Pure
  | "noinline" -> Some Noinline
  | "nocapture_args" -> Some Nocapture_args
  | "cuda_kernel" -> Some Cuda_kernel
  | _ -> None

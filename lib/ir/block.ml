(* Basic blocks: a label, a list of instructions, and a terminator. *)

type term =
  | Ret of Value.t option
  | Br of string
  | Cbr of Value.t * string * string
  | Switch of Value.t * (int64 * string) list * string  (* cases, default *)
  | Unreachable

type t = { label : string; mutable instrs : Instr.t list; mutable term : term }

let make ?(instrs = []) ?(term = Unreachable) label = { label; instrs; term }

let successors b =
  match b.term with
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | Cbr (_, l1, l2) -> if String.equal l1 l2 then [ l1 ] else [ l1; l2 ]
  | Switch (_, cases, default) ->
    let labels = default :: List.map snd cases in
    List.sort_uniq String.compare labels

let term_operands = function
  | Ret (Some v) -> [ v ]
  | Ret None | Br _ | Unreachable -> []
  | Cbr (v, _, _) | Switch (v, _, _) -> [ v ]

let map_term_operands f b =
  b.term <-
    (match b.term with
    | Ret (Some v) -> Ret (Some (f v))
    | Ret None -> Ret None
    | Br l -> Br l
    | Cbr (v, l1, l2) -> Cbr (f v, l1, l2)
    | Switch (v, cases, d) -> Switch (f v, cases, d)
    | Unreachable -> Unreachable)

(* Rewrite branch targets; used when splitting blocks or deleting regions. *)
let map_labels f b =
  b.term <-
    (match b.term with
    | Ret _ as t -> t
    | Br l -> Br (f l)
    | Cbr (v, l1, l2) -> Cbr (v, f l1, f l2)
    | Switch (v, cases, d) -> Switch (v, List.map (fun (c, l) -> (c, f l)) cases, f d)
    | Unreachable -> Unreachable)

let append b i = b.instrs <- b.instrs @ [ i ]

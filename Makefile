# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench experiments examples ci clean

all: build

build:
	dune build @all

test:
	dune runtest

# what a gate should run: build everything, the full test suite, and a
# reproducible (fixed-seed) longer fuzz pass
ci:
	dune build @all
	dune runtest
	FUZZ_SEED=42 FUZZ_ITERS=200 dune exec test/test_main.exe -- test fuzz

# regenerate every table and figure of the paper's evaluation
experiments:
	dune exec bin/run_experiments.exe

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/deglobalization_demo.exe
	dune exec examples/spmdization_demo.exe
	dune exec examples/remarks_demo.exe
	dune exec examples/custom_analysis.exe
	dune exec examples/oom_demo.exe

clean:
	dune clean

(** Append-only request journal of the compile daemon, and the startup
    recovery scan over it.

    The journal is newline-delimited JSON in [DIR/journal.ndjson]; every
    line is schema-stamped and carries the journal format version
    ([{"schema":2,"jv":1,"ev":...}]).  The daemon appends a [begin] record
    when a compile is admitted and a [settle] record when its response is
    written, each flushed immediately — so after a crash (even [kill -9])
    the journal tells the next boot exactly which requests were in flight.

    {!open_} runs the recovery scan: it replays the previous life's
    records into {!recovery} counters (settled ok/failed, requests begun
    but never settled = interrupted by the crash, torn trailing lines),
    rotates the old journal to [journal.prev.ndjson] for post-mortem, and
    starts a fresh journal whose first record embeds those counters.  The
    counters surface in [mompd health] and the daemon's stats JSON. *)

type t

val journal_version : int
(** 1.  Bumped when a record shape changes incompatibly; the recovery
    scan counts records with an unknown [jv] as torn rather than failing. *)

(** What the startup scan replayed out of the previous life's journal. *)
type recovery = {
  replayed_ok : int;  (** [settle] records with exit code 0 *)
  replayed_failed : int;  (** [settle] records with a nonzero exit code *)
  interrupted : int;
      (** requests begun but never settled — the crash caught them in
          flight; their clients saw a dropped connection *)
  torn : int;  (** unparseable or unknown-version lines (torn final write) *)
}

val empty_recovery : recovery
val recovery_to_json : recovery -> Observe.Json.t

val open_ :
  ?max_bytes:int -> ?on_rotate:(unit -> unit) -> dir:string -> unit -> t * recovery
(** Create [dir] if needed, scan and rotate any existing journal, open a
    fresh one.  Raises [Sys_error] only if the directory is unwritable.

    [max_bytes] also rotates mid-life: an append pushing the live file
    past the cap renames it over [journal.prev.ndjson] and reopens fresh
    (first record: a [rotated] event) — so a hot daemon's journal is
    bounded by roughly [max_bytes] plus one line, instead of growing
    until the next restart.  No recovery scan runs on a mid-life
    rotation; in-flight requests settle into the new file.  [on_rotate]
    is called after each mid-life rotation, outside the journal lock (the
    daemon uses it to checkpoint its hotness profile). *)

val path : t -> string

val rotations : t -> int
(** Mid-life size-cap rotations since {!open_} (the boot-time rotation is
    not counted). *)

val begin_request : t -> id:string -> op:string -> key:string -> int
(** Journal an admitted compile; returns the life-unique sequence number
    to pass to {!settle_request}.  Thread-safe; the line is flushed before
    returning. *)

val settle_request : t -> seq:int -> exit_code:int -> unit

val event : t -> string -> (string * Observe.Json.t) list -> unit
(** Journal a service-level event ([restart], [breaker-open], [drain],
    ...) with extra members. *)

val close : t -> unit
(** Idempotent. *)

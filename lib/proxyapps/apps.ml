(* All proxy applications, in the order of the paper's evaluation. *)

let all : App.t list = [ Xsbench.app; Rsbench.app; Su3bench.app; Miniqmc.app ]

let find name = List.find_opt (fun a -> String.equal a.App.name name) all

let find_exn name =
  match find name with
  | Some a -> a
  | None -> Support.Util.failf "unknown proxy app %s" name

(* The device runtime function registry.

   This is the MiniIR equivalent of LLVM's OMPKinds.def: the single table of
   known device runtime functions together with the semantic facts the
   OpenMP-aware optimizer is allowed to assume about them (Section IV of the
   paper: "we look for uses of known LLVM/OpenMP runtime functions that have
   been emitted by the front-end in response to user pragmas").

   The GPU simulator intercepts calls to these functions by name; their
   executable semantics live in [Gpusim]. *)

open Ir

(* Execution-mode encoding used as the i32 argument of __kmpc_target_init. *)
let mode_generic = 0
let mode_spmd = 1

(* __kmpc_target_init returns this for the thread that continues as the team's
   main thread; workers receive their hardware thread id instead. *)
let main_thread_return = -1

type effect_class =
  | Eff_none  (* pure query; may read launch state but no side effects *)
  | Eff_alloc  (* allocates globalized storage *)
  | Eff_free
  | Eff_sync  (* synchronizes threads *)
  | Eff_parallel  (* launches a parallel region *)
  | Eff_other  (* arbitrary observable side effect (tracing) *)

type t = {
  rt_name : string;
  rt_ret : Types.t;
  rt_params : Types.t list;
  rt_effect : effect_class;
  (* Safe for every thread of a team to execute (used by SPMDzation to skip
     guarding: "our SPMDzation analysis explicitly interacts with the data
     placement optimization"). *)
  rt_spmd_amenable : bool;
  (* Pointer arguments do not escape through this call. *)
  rt_nocapture : bool;
}

let rt ?(spmd_amenable = false) ?(nocapture = true) name ret params effect_ =
  {
    rt_name = name;
    rt_ret = ret;
    rt_params = params;
    rt_effect = effect_;
    rt_spmd_amenable = spmd_amenable;
    rt_nocapture = nocapture;
  }

let gp = Types.Ptr Types.Generic
let i1 = Types.I1
let i32 = Types.I32
let i64 = Types.I64
let f64 = Types.F64
let f32 = Types.F32
let void = Types.Void

let all : t list =
  [
    (* kernel bracketing *)
    rt "__kmpc_target_init" i32 [ i32 ] Eff_sync ~spmd_amenable:true;
    rt "__kmpc_target_deinit" void [ i32 ] Eff_sync ~spmd_amenable:true;
    (* parallel region launch: fn pointer (or null), region id (or -1),
       shared args pointer, requested num_threads (0 = all) *)
    rt "__kmpc_parallel_51" void [ gp; i64; gp; i32 ] Eff_parallel ~spmd_amenable:true
      ~nocapture:false;
    (* worker state-machine primitives (generic mode only) *)
    rt "__kmpc_worker_wait" gp [] Eff_sync;
    rt "__kmpc_get_parallel_id" i64 [] Eff_none;
    rt "__kmpc_get_parallel_fn" gp [] Eff_none;
    rt "__kmpc_worker_wait_id" i64 [] Eff_sync;
    rt "__kmpc_get_parallel_args" gp [] Eff_none;
    rt "__kmpc_worker_done" void [] Eff_sync;
    (* simplified globalization (LLVM 13 / this paper, Fig. 4c) *)
    rt "__kmpc_alloc_shared" gp [ i64 ] Eff_alloc;
    rt "__kmpc_free_shared" void [ gp; i64 ] Eff_free;
    (* legacy globalization (LLVM 12, Fig. 4b).  The LLVM-12-era device
       runtime is an opaque pre-compiled library: its entry points cost a
       real call and are not foldable, unlike the bitcode-linked runtime
       glue of the Dev branch. *)
    rt "__kmpc_data_sharing_push_stack" gp [ i64; i32 ] Eff_alloc;
    rt "__kmpc_data_sharing_pop_stack" void [ gp ] Eff_free;
    rt "__kmpc_data_sharing_mode_check" i1 [] Eff_none ~spmd_amenable:true;
    (* queries folded by the runtime-call optimization (Section IV-C) *)
    rt "__kmpc_is_spmd_exec_mode" i1 [] Eff_none ~spmd_amenable:true;
    (* raw hardware queries (CUDA's threadIdx/blockIdx equivalents) *)
    rt "__gpu_thread_id" i32 [] Eff_none ~spmd_amenable:true;
    rt "__gpu_num_threads" i32 [] Eff_none ~spmd_amenable:true;
    rt "__gpu_team_id" i32 [] Eff_none ~spmd_amenable:true;
    rt "__gpu_num_teams" i32 [] Eff_none ~spmd_amenable:true;
    rt "__kmpc_parallel_level" i32 [] Eff_none ~spmd_amenable:true;
    rt "__kmpc_get_warp_size" i32 [] Eff_none ~spmd_amenable:true;
    rt "__kmpc_get_hardware_num_threads" i32 [] Eff_none ~spmd_amenable:true;
    rt "omp_get_thread_num" i32 [] Eff_none ~spmd_amenable:true;
    rt "omp_get_num_threads" i32 [] Eff_none ~spmd_amenable:true;
    rt "omp_get_team_num" i32 [] Eff_none ~spmd_amenable:true;
    rt "omp_get_num_teams" i32 [] Eff_none ~spmd_amenable:true;
    (* synchronization *)
    rt "__kmpc_barrier" void [] Eff_sync ~spmd_amenable:true;
    (* math builtins: pure, thread-independent *)
    rt "__math_sqrt" f64 [ f64 ] Eff_none ~spmd_amenable:true;
    rt "__math_sin" f64 [ f64 ] Eff_none ~spmd_amenable:true;
    rt "__math_cos" f64 [ f64 ] Eff_none ~spmd_amenable:true;
    rt "__math_exp" f64 [ f64 ] Eff_none ~spmd_amenable:true;
    rt "__math_log" f64 [ f64 ] Eff_none ~spmd_amenable:true;
    rt "__math_fabs" f64 [ f64 ] Eff_none ~spmd_amenable:true;
    rt "__math_pow" f64 [ f64; f64 ] Eff_none ~spmd_amenable:true;
    rt "__math_fmin" f64 [ f64; f64 ] Eff_none ~spmd_amenable:true;
    rt "__math_fmax" f64 [ f64; f64 ] Eff_none ~spmd_amenable:true;
    rt "__math_sqrtf" f32 [ f32 ] Eff_none ~spmd_amenable:true;
    (* observable tracing, used by differential tests: optimizations must
       preserve the trace a program produces *)
    rt "__devrt_trace" void [ i64 ] Eff_other ~spmd_amenable:false;
    rt "__devrt_trace_f64" void [ f64 ] Eff_other ~spmd_amenable:false;
  ]

let by_name = Hashtbl.create 64

let () = List.iter (fun r -> Hashtbl.replace by_name r.rt_name r) all

let lookup name = Hashtbl.find_opt by_name name
let is_runtime_fn name = Hashtbl.mem by_name name

let is_alloc name =
  match lookup name with Some r -> r.rt_effect = Eff_alloc | None -> false

let is_free name = match lookup name with Some r -> r.rt_effect = Eff_free | None -> false

(* The matching deallocation function of an allocation function. *)
let free_of_alloc = function
  | "__kmpc_alloc_shared" -> Some "__kmpc_free_shared"
  | "__kmpc_data_sharing_push_stack" -> Some "__kmpc_data_sharing_pop_stack"
  | _ -> None

let is_spmd_amenable name =
  match lookup name with Some r -> r.rt_spmd_amenable | None -> false

let has_side_effect name =
  match lookup name with
  | Some r -> (
    match r.rt_effect with
    | Eff_none -> false
    | Eff_alloc | Eff_free | Eff_sync | Eff_parallel | Eff_other -> true)
  | None -> true

(* Add declarations for every runtime function not yet present. *)
let declare_in (m : Irmod.t) =
  List.iter
    (fun r ->
      match Irmod.find_func m r.rt_name with
      | Some _ -> ()
      | None ->
        Irmod.add_func m
          (Func.declare r.rt_name ~ret_ty:r.rt_ret
             ~params:(List.map (fun ty -> ("", ty)) r.rt_params)))
    all

(* Consistent-hash ring (see the .mli). *)

module H = Support.Hash64

let default_vnodes = 64

type t = {
  shards : string array;  (* sorted names; points reference indices here *)
  points : (int * int) array;  (* (position, shard index), sorted by position *)
}

(* FNV-1a's high bits barely avalanche on short inputs ("shard-0#17"),
   and ring positions order by the full integer — without a finalizer the
   vnode arcs clump and one shard of four can own half the key space.
   Splitmix-style avalanche, constants masked into OCaml's 63-bit int. *)
let mix h =
  let h = h lxor (h lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1B03738712FAD5C9 in
  h lxor (h lsr 32)

let hash_of s = mix (H.add_string H.empty s :> int)

let create ?(vnodes = default_vnodes) names =
  if names = [] then invalid_arg "Ring.create: no shards";
  let shards = Array.of_list (List.sort_uniq compare names) in
  if Array.length shards <> List.length names then
    invalid_arg "Ring.create: duplicate shard names";
  let points =
    Array.init
      (Array.length shards * vnodes)
      (fun i ->
        let shard = i / vnodes and vnode = i mod vnodes in
        (hash_of (Printf.sprintf "%s#%d" shards.(shard) vnode), shard))
  in
  Array.sort compare points;
  { shards; points }

let shards t = Array.copy t.shards

(* First point at or after [pos], wrapping: classic ring lookup. *)
let successor t pos =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < pos then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let order t key =
  let n = Array.length t.points in
  let k = Array.length t.shards in
  let seen = Array.make k false in
  let start = successor t (hash_of key) in
  let out = ref [] and found = ref 0 and i = ref 0 in
  while !found < k && !i < n do
    let _, shard = t.points.((start + !i) mod n) in
    if not seen.(shard) then begin
      seen.(shard) <- true;
      out := shard :: !out;
      incr found
    end;
    incr i
  done;
  List.rev !out

(* Operational tests of the IR interpreter: every instruction kind exercised
   through hand-written IR run on the host thread, with edge values. *)

let run_ir body =
  let text =
    Printf.sprintf
      {|module "t"
declare void @__devrt_trace(i64)
declare void @__devrt_trace_f64(f64)
define external i32 @main() {
%s
}
|}
      body
  in
  let m = Ir.Parser.parse_module text in
  Devrt.Registry.declare_in m;
  (match Ir.Verify.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verifier: %s" e);
  let sim = Gpusim.Interp.create Gpusim.Machine.test_machine m in
  Gpusim.Interp.run_host sim;
  Gpusim.Interp.trace_values sim

let ints = Alcotest.testable Gpusim.Rvalue.pp (fun a b -> a = b)

let check_ir name body expected = Alcotest.check (Alcotest.list ints) name expected (run_ir body)

let i v = Gpusim.Rvalue.I v
let f v = Gpusim.Rvalue.F v

let test_int_arithmetic () =
  check_ir "add wraps i32"
    {|entry:
  %0 = add i32 i32 2147483647, i32 1
  %1 = sext i64, %0
  call void @__devrt_trace(%1)
  ret i32 0|}
    [ i (-2147483648L) ];
  check_ir "sdiv truncates toward zero"
    {|entry:
  %0 = sdiv i32 i32 -7, i32 2
  %1 = sext i64, %0
  call void @__devrt_trace(%1)
  ret i32 0|}
    [ i (-3L) ];
  check_ir "srem keeps dividend sign"
    {|entry:
  %0 = srem i32 i32 -7, i32 3
  %1 = sext i64, %0
  call void @__devrt_trace(%1)
  ret i32 0|}
    [ i (-1L) ];
  check_ir "udiv is unsigned"
    {|entry:
  %0 = udiv i32 i32 -2, i32 2
  %1 = zext i64, %0
  %2 = and i64 %1, i64 4294967295
  call void @__devrt_trace(%2)
  ret i32 0|}
    [ i 2147483647L ]

let test_shifts_and_bits () =
  check_ir "shift amount masked"
    {|entry:
  %0 = shl i64 i64 1, i64 65
  call void @__devrt_trace(%0)
  ret i32 0|}
    [ i 2L ];
  check_ir "ashr sign extends"
    {|entry:
  %0 = ashr i64 i64 -8, i64 1
  call void @__devrt_trace(%0)
  ret i32 0|}
    [ i (-4L) ];
  check_ir "lshr is logical"
    {|entry:
  %0 = lshr i64 i64 -1, i64 60
  call void @__devrt_trace(%0)
  ret i32 0|}
    [ i 15L ];
  check_ir "xor/and/or"
    {|entry:
  %0 = xor i64 i64 12, i64 10
  %1 = and i64 %0, i64 14
  %2 = or i64 %1, i64 1
  call void @__devrt_trace(%2)
  ret i32 0|}
    [ i 7L ]

let test_division_by_zero_traps () =
  match
    run_ir
      {|entry:
  %0 = sdiv i32 i32 1, i32 0
  ret i32 0|}
  with
  | exception Gpusim.Rvalue.Sim_error _ -> ()
  | _ -> Alcotest.fail "expected a division-by-zero trap"

let test_float_ops () =
  check_ir "fdiv"
    {|entry:
  %0 = fdiv f64 f64 1.0, f64 4.0
  call void @__devrt_trace_f64(%0)
  ret i32 0|}
    [ f 0.25 ];
  check_ir "fptosi truncates"
    {|entry:
  %0 = fptosi i64, f64 -2.9
  call void @__devrt_trace(%0)
  ret i32 0|}
    [ i (-2L) ];
  check_ir "f32 arithmetic rounds"
    {|entry:
  %0 = fadd f32 f32 0.1, f32 0.2
  %1 = fpext f64, %0
  call void @__devrt_trace_f64(%1)
  ret i32 0|}
    [ f (Gpusim.Rvalue.to_f32 (Gpusim.Rvalue.to_f32 0.1 +. Gpusim.Rvalue.to_f32 0.2)) ]

let test_comparisons () =
  check_ir "signed vs unsigned compare"
    {|entry:
  %0 = icmp slt i32 i32 -1, i32 0
  %1 = icmp ult i32 i32 -1, i32 0
  %2 = zext i64, %0
  %3 = zext i64, %1
  call void @__devrt_trace(%2)
  call void @__devrt_trace(%3)
  ret i32 0|}
    [ i 1L; i 0L ];
  check_ir "fcmp one with nan"
    {|entry:
  %0 = fdiv f64 f64 0.0, f64 0.0
  %1 = fcmp one f64 %0, f64 1.0
  %2 = zext i64, %1
  call void @__devrt_trace(%2)
  ret i32 0|}
    [ i 0L ]

let test_select_and_switch () =
  check_ir "select"
    {|entry:
  %0 = icmp sgt i32 i32 5, i32 3
  %1 = select i64 %0, i64 11, i64 22
  call void @__devrt_trace(%1)
  ret i32 0|}
    [ i 11L ];
  check_ir "switch hits case and default"
    {|entry:
  %0 = add i64 i64 1, i64 1
  switch %0, [1 -> one, 2 -> two], other
one:
  call void @__devrt_trace(i64 100)
  ret i32 0
two:
  call void @__devrt_trace(i64 200)
  ret i32 0
other:
  call void @__devrt_trace(i64 300)
  ret i32 0|}
    [ i 200L ]

let test_memory_and_gep () =
  check_ir "alloca/store/load with gep offsets"
    {|entry:
  %0 = alloca [4 x i64], 1
  %1 = spacecast ptr(generic), %0
  store i64 i64 7, %1
  %3 = gep ptr(generic), %1, i64 8
  store i64 i64 9, %3
  %5 = load i64, %1
  %6 = load i64, %3
  %7 = add i64 %5, %6
  call void @__devrt_trace(%7)
  ret i32 0|}
    [ i 16L ];
  check_ir "i8 store and sign-extending load"
    {|entry:
  %0 = alloca i8, 1
  store i8 i8 200, %0
  %2 = load i8, %0
  %3 = sext i64, %2
  call void @__devrt_trace(%3)
  ret i32 0|}
    [ i (-56L) ]

let test_atomicrmw_returns_old () =
  check_ir "atomicrmw add yields old value"
    {|entry:
  %0 = alloca i64, 1
  store i64 i64 40, %0
  %2 = atomicrmw add i64 %0, i64 2
  %3 = load i64, %0
  call void @__devrt_trace(%2)
  call void @__devrt_trace(%3)
  ret i32 0|}
    [ i 40L; i 42L ];
  check_ir "atomicrmw max"
    {|entry:
  %0 = alloca i64, 1
  store i64 i64 10, %0
  %2 = atomicrmw max i64 %0, i64 7
  %3 = load i64, %0
  call void @__devrt_trace(%3)
  ret i32 0|}
    [ i 10L ]

let test_calls_and_recursion () =
  let m =
    Ir.Parser.parse_module
      {|module "r"
declare void @__devrt_trace(i64)
define internal i64 @fib(%arg0 : i64) {
entry:
  %0 = icmp sle i64 %arg0, i64 1
  cbr %0, base, rec
base:
  ret %arg0
rec:
  %1 = sub i64 %arg0, i64 1
  %2 = call i64 @fib(%1)
  %3 = sub i64 %arg0, i64 2
  %4 = call i64 @fib(%3)
  %5 = add i64 %2, %4
  ret %5
}
define external i32 @main() {
entry:
  %0 = call i64 @fib(i64 10)
  call void @__devrt_trace(%0)
  ret i32 0
}
|}
  in
  Devrt.Registry.declare_in m;
  let sim = Gpusim.Interp.create Gpusim.Machine.test_machine m in
  Gpusim.Interp.run_host sim;
  Alcotest.check (Alcotest.list ints) "fib 10" [ i 55L ] (Gpusim.Interp.trace_values sim)

let test_unreachable_traps () =
  match
    run_ir {|entry:
  unreachable|}
  with
  | exception Gpusim.Rvalue.Sim_error _ -> ()
  | _ -> Alcotest.fail "expected a trap on unreachable"

(* property: bin op folding in the simplifier agrees with the interpreter *)
let arb_binop =
  QCheck.make
    QCheck.Gen.(
      triple (int_range 0 12) (map Int64.of_int (int_range (-1000) 1000))
        (map Int64.of_int (int_range (-1000) 1000)))

let prop_fold_matches_interp (opi, a, b) =
  let op =
    List.nth
      [ Ir.Instr.Add; Ir.Instr.Sub; Ir.Instr.Mul; Ir.Instr.Sdiv; Ir.Instr.Srem;
        Ir.Instr.Udiv; Ir.Instr.Urem; Ir.Instr.And; Ir.Instr.Or; Ir.Instr.Xor;
        Ir.Instr.Shl; Ir.Instr.Lshr; Ir.Instr.Ashr ]
      opi
  in
  match Openmpopt.Rvalue_fold.bin_int op a b with
  | None -> b = 0L  (* division by zero is the only un-foldable case *)
  | Some folded ->
    let interp =
      Gpusim.Rvalue.as_int
        (Gpusim.Interp.exec_bin op Ir.Types.I64 (Gpusim.Rvalue.I a) (Gpusim.Rvalue.I b))
    in
    Gpusim.Rvalue.truncate_to Ir.Types.I64 folded = interp

let suite =
  [
    Alcotest.test_case "int arithmetic" `Quick test_int_arithmetic;
    Alcotest.test_case "shifts and bit ops" `Quick test_shifts_and_bits;
    Alcotest.test_case "division by zero traps" `Quick test_division_by_zero_traps;
    Alcotest.test_case "float ops" `Quick test_float_ops;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "select and switch" `Quick test_select_and_switch;
    Alcotest.test_case "memory and gep" `Quick test_memory_and_gep;
    Alcotest.test_case "atomicrmw" `Quick test_atomicrmw_returns_old;
    Alcotest.test_case "calls and recursion" `Quick test_calls_and_recursion;
    Alcotest.test_case "unreachable traps" `Quick test_unreachable_traps;
    Helpers.qtest ~count:200 "constant folding agrees with the interpreter" arb_binop
      prop_fold_matches_interp;
  ]

(* Backward liveness of virtual registers and the derived register-pressure
   estimate.  The pressure estimate feeds the simulator's "register count"
   statistic (Figure 10 of the paper): spurious call edges from indirect
   calls force the worst-case callee to be accounted, which is the cost the
   custom state machine rewrite eliminates. *)

module SM = Support.Util.String_map
module IS = Support.Util.Int_set

type block_liveness = { live_in : IS.t; live_out : IS.t }

let regs_of_values vs =
  List.fold_left (fun acc v -> match v with Value.Reg i -> IS.add i acc | _ -> acc) IS.empty vs

let uses_of_instr i = regs_of_values (Instr.operands i)
let def_of_instr i = if Instr.has_result i then Some i.Instr.id else None

(* Per-block gen/kill in one backward scan. *)
let block_gen_kill (b : Block.t) =
  let gen = ref (regs_of_values (Block.term_operands b.Block.term)) in
  let kill = ref IS.empty in
  List.iter
    (fun i ->
      (match def_of_instr i with
      | Some d ->
        gen := IS.remove d !gen;
        kill := IS.add d !kill
      | None -> ());
      gen := IS.union !gen (uses_of_instr i))
    (List.rev b.Block.instrs);
  (!gen, !kill)

let compute (f : Func.t) =
  let cfg = Cfg.compute f in
  let gk =
    List.fold_left
      (fun m b -> SM.add b.Block.label (block_gen_kill b) m)
      SM.empty f.Func.blocks
  in
  let live_in = ref SM.empty in
  let live_out = ref SM.empty in
  List.iter
    (fun b ->
      live_in := SM.add b.Block.label IS.empty !live_in;
      live_out := SM.add b.Block.label IS.empty !live_out)
    f.Func.blocks;
  Support.Util.fixpoint (fun () ->
      let changed = ref false in
      List.iter
        (fun b ->
          let label = b.Block.label in
          let out =
            List.fold_left
              (fun acc s -> IS.union acc (SM.find s !live_in))
              IS.empty (Block.successors b)
          in
          let gen, kill = SM.find label gk in
          let inn = IS.union gen (IS.diff out kill) in
          if not (IS.equal out (SM.find label !live_out)) then begin
            live_out := SM.add label out !live_out;
            changed := true
          end;
          if not (IS.equal inn (SM.find label !live_in)) then begin
            live_in := SM.add label inn !live_in;
            changed := true
          end)
        (List.rev (Cfg.blocks_in_order cfg));
      !changed);
  List.fold_left
    (fun m b ->
      let label = b.Block.label in
      SM.add label
        { live_in = SM.find label !live_in; live_out = SM.find label !live_out }
        m)
    SM.empty f.Func.blocks

(* Maximum number of simultaneously live registers at any program point. *)
let max_pressure (f : Func.t) =
  if Func.is_declaration f then 0
  else begin
    let liveness = compute f in
    let best = ref 0 in
    List.iter
      (fun b ->
        match SM.find_opt b.Block.label liveness with
        | None -> ()
        | Some { live_out; _ } ->
          (* walk backwards through the block tracking the live set *)
          let live = ref live_out in
          best := max !best (IS.cardinal !live);
          List.iter
            (fun i ->
              (match def_of_instr i with Some d -> live := IS.remove d !live | None -> ());
              live := IS.union !live (uses_of_instr i);
              best := max !best (IS.cardinal !live))
            (List.rev b.Block.instrs))
      f.Func.blocks;
    (* function arguments occupy registers on entry as well *)
    max !best (List.length f.Func.params)
  end

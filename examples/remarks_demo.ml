(* Remarks demo: the paper's Figure 8 and Section IV-D.

   Compiles a program where static analysis is insufficient, prints the
   numbered OMP1xx remarks with their actionable advice, then shows how the
   OpenMP 5.1 assumptions (ext_spmd_amenable / ext_nocapture) unlock the
   blocked transformations.

     dune exec examples/remarks_demo.exe *)

let blocked assume_capture assume_spmd =
  Printf.sprintf
    {|
%s
extern void combine_external(double* p);
%s
extern void helper_external();
double Out[4];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(4)
  {
    double lcl = 1.0;
    combine_external(&lcl);     // may capture &lcl -> blocks heap-to-stack
    helper_external();          // unknown side effects -> blocks SPMDzation
    Out[0] = lcl;
    #pragma omp parallel
    {
      #pragma omp atomic
      Out[1] += 1.0;
    }
  }
  return 0;
}
|}
    assume_capture assume_spmd

let compile_and_report title src =
  Fmt.pr "== %s ==@." title;
  let m = Frontend.Codegen.compile ~file:"example.c" src in
  let report = Openmpopt.Pass_manager.run m in
  List.iter
    (fun r -> Fmt.pr "%s@." (Openmpopt.Remark.to_string r))
    report.Openmpopt.Pass_manager.remarks;
  Fmt.pr "summary: %a@.@." Openmpopt.Pass_manager.pp_report report

let () =
  compile_and_report "without assumptions (missed-optimization remarks)"
    (blocked "" "");
  compile_and_report "with ext_nocapture on combine_external"
    (blocked "#pragma omp assume ext_nocapture" "");
  compile_and_report "with both assumptions (everything fires)"
    (blocked "#pragma omp assume ext_nocapture" "#pragma omp assume ext_spmd_amenable");
  Fmt.pr
    "Each [OMPxxx] identifier corresponds to a documented remark; missed-optimization@.\
     remarks carry the suggested source change, mirroring@.\
     https://openmp.llvm.org/remarks/OptimizationRemarks.html@."

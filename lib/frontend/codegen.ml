(* MiniOMP -> MiniIR code generation, modeled after Clang's OpenMP device
   lowering.

   Three globalization schemes are supported (Section IV-A):

   - [Simplified] (LLVM 13 / the paper, Fig. 4c): every escaping local gets
     its own __kmpc_alloc_shared / __kmpc_free_shared pair, always, even in
     SPMD kernels.  Correct but slow until the middle-end undoes it.
   - [Legacy] (LLVM 12, Fig. 4b): escaping locals are aggregated into one
     runtime allocation; SPMD-mode kernels skip globalization entirely (the
     unsound fast path that miscompiles Fig. 3); device functions emit a
     runtime execution-mode check choosing between stack and runtime stack.
   - [Cuda]: kernel-language semantics, no globalization (used for the CUDA
     watermark builds of the benchmarks).

   Kernels are emitted in generic mode (explicit worker state machine in IR,
   TRegion-style) unless the directive is the combined
   "target teams distribute parallel for", which is lowered SPMD. *)

open Ast
module SM = Support.Util.String_map
module SS = Support.Util.String_set
open Ir

exception Error of string * Support.Loc.t

let err loc fmt = Fmt.kstr (fun s -> raise (Error (s, loc))) fmt

type scheme = Simplified | Legacy | Cuda

let scheme_name = function
  | Simplified -> "simplified"
  | Legacy -> "legacy"
  | Cuda -> "cuda"

type options = { scheme : scheme; module_name : string }

(* ------------------------------------------------------------------ *)
(* C type helpers                                                      *)
(* ------------------------------------------------------------------ *)

let rec sizeof_cty = function
  | Tvoid -> 0
  | Tint -> 4
  | Tlong -> 8
  | Tfloat -> 4
  | Tdouble -> 8
  | Tptr _ -> 8
  | Tarr (t, n) -> n * sizeof_cty t

(* The IR type of a [cty] when used as a first-class value. *)
let irty_value = function
  | Tvoid -> Types.Void
  | Tint -> Types.I32
  | Tlong -> Types.I64
  | Tfloat -> Types.F32
  | Tdouble -> Types.F64
  | Tptr _ | Tarr _ -> Types.Ptr Types.Generic

(* The IR type used to allocate storage for a [cty]. *)
let rec irty_storage = function
  | Tarr (t, n) -> Types.Arr (n, irty_storage t)
  | t -> irty_value t

let is_float_cty = function Tfloat | Tdouble -> true | _ -> false
let is_int_cty = function Tint | Tlong -> true | _ -> false
let is_ptr_cty = function Tptr _ | Tarr _ -> true | _ -> false

(* usual arithmetic conversions: double > float > long > int *)
let rank = function Tdouble -> 4 | Tfloat -> 3 | Tlong -> 2 | Tint -> 1 | _ -> 0
let unify_cty a b = if rank a >= rank b then a else b

(* ------------------------------------------------------------------ *)
(* Contexts                                                            *)
(* ------------------------------------------------------------------ *)

type context =
  | Host
  | Kernel_main of Func.exec_mode
  | Parallel_region
  | Device_fn

let is_device_ctx = function Host -> false | Kernel_main _ | Parallel_region | Device_fn -> true

type gctx = {
  m : Irmod.t;
  opts : options;
  fsigs : (cty * cty list) SM.t;
  global_tys : cty SM.t;
  outlined_counter : Support.Util.Id_gen.t;
  kernel_counter : Support.Util.Id_gen.t;
}

type binding = { addr : Value.t (* ptr(generic) *); bcty : cty }

type fenv = {
  g : gctx;
  bld : Builder.t;
  func : Func.t;
  mutable vars : binding SM.t;
  (* globalized allocations to release on return, in allocation order *)
  frees : (Value.t * int) list ref;
  legacy_base : Value.t option;  (* base of the aggregated legacy allocation *)
  globalize : SS.t;
  legacy_offsets : int SM.t;
  mutable brk : string list;
  mutable cont : string list;
  ctx : context;
}

type tv = { v : Value.t; t : cty }

(* ------------------------------------------------------------------ *)
(* small IR helpers                                                    *)
(* ------------------------------------------------------------------ *)

let gptr = Types.Ptr Types.Generic

let to_generic fe v ty =
  match ty with
  | Types.Ptr Types.Generic -> v
  | Types.Ptr _ -> Builder.cast fe.bld Instr.Spacecast gptr v
  | _ -> v

(* convert a typed value to another C type *)
let convert fe (x : tv) (target : cty) loc =
  if x.t = target then x.v
  else
    match (x.t, target) with
    | Tint, Tlong -> Builder.cast fe.bld Instr.Sext Types.I64 x.v
    | Tlong, Tint -> Builder.cast fe.bld Instr.Trunc Types.I32 x.v
    | (Tint | Tlong), (Tfloat | Tdouble) ->
      Builder.cast fe.bld Instr.Sitofp (irty_value target) x.v
    | (Tfloat | Tdouble), (Tint | Tlong) ->
      Builder.cast fe.bld Instr.Fptosi (irty_value target) x.v
    | Tfloat, Tdouble -> Builder.cast fe.bld Instr.Fpext Types.F64 x.v
    | Tdouble, Tfloat -> Builder.cast fe.bld Instr.Fptrunc Types.F32 x.v
    | (Tptr _ | Tarr _), (Tptr _ | Tarr _) -> x.v
    | _ -> err loc "cannot convert %a to %a" pp_cty x.t pp_cty target

let zero_of = function
  | Tint -> Value.i32 0
  | Tlong -> Value.i64 0
  | Tfloat -> Value.f32 0.0
  | Tdouble -> Value.f64 0.0
  | Tptr _ | Tarr _ -> Value.null Types.Generic
  | Tvoid -> Value.undef Types.Void

(* an i1 from a C scalar: v != 0 *)
let truth fe (x : tv) loc =
  match x.t with
  | Tint | Tlong -> Builder.icmp fe.bld Instr.Ne (irty_value x.t) x.v (zero_of x.t)
  | Tfloat | Tdouble -> Builder.fcmp fe.bld Instr.One (irty_value x.t) x.v (zero_of x.t)
  | Tptr _ | Tarr _ -> Builder.icmp fe.bld Instr.Ne gptr x.v (Value.null Types.Generic)
  | Tvoid -> err loc "void value used in condition"

(* C int from an i1 *)
let of_bool fe b = Builder.cast fe.bld Instr.Zext Types.I32 b

(* ------------------------------------------------------------------ *)
(* Variable allocation and globalization                               *)
(* ------------------------------------------------------------------ *)

let should_globalize fe name =
  is_device_ctx fe.ctx
  && fe.g.opts.scheme <> Cuda
  && SS.mem name fe.globalize
  &&
  (* Legacy SPMD kernels skip globalization: the unsound fast path. *)
  match (fe.g.opts.scheme, fe.ctx) with
  | Legacy, Kernel_main Func.Spmd -> false
  | _ -> true

(* Allocate backing storage for a variable and return its generic address. *)
let alloc_var fe name cty loc =
  let size = sizeof_cty cty in
  if not (should_globalize fe name) then begin
    let a = Builder.alloca fe.bld (irty_storage cty) in
    to_generic fe a (Types.Ptr Types.Local)
  end
  else
    match fe.g.opts.scheme with
    | Simplified ->
      Builder.set_loc fe.bld loc;
      let p = Builder.call fe.bld gptr "__kmpc_alloc_shared" [ Value.i64 size ] in
      fe.frees := (p, size) :: !(fe.frees);
      p
    | Legacy -> (
      match (fe.legacy_base, SM.find_opt name fe.legacy_offsets) with
      | Some base, Some off ->
        Builder.gep fe.bld ~ptr_ty:gptr base (Value.i64 off)
      | _ ->
        (* a variable we did not account for in the prescan: fall back *)
        let a = Builder.alloca fe.bld (irty_storage cty) in
        to_generic fe a (Types.Ptr Types.Local))
    | Cuda -> assert false

let bind fe name cty addr = fe.vars <- SM.add name { addr; bcty = cty } fe.vars

(* emit the frees for all live globalized allocations (at returns) *)
let emit_frees fe =
  (match fe.g.opts.scheme with
  | Simplified ->
    List.iter
      (fun (p, size) ->
        ignore (Builder.call fe.bld Types.Void "__kmpc_free_shared" [ p; Value.i64 size ]))
      !(fe.frees)
  | Legacy -> (
    match fe.legacy_base with
    | Some base ->
      ignore (Builder.call fe.bld Types.Void "__kmpc_data_sharing_pop_stack" [ base ])
    | None -> ())
  | Cuda -> ())

(* ------------------------------------------------------------------ *)
(* Builtin calls                                                       *)
(* ------------------------------------------------------------------ *)

(* name -> (runtime function, return cty, param ctys); device glue versions
   are chosen in [gen_call]. *)
let math_builtins =
  [
    ("sqrt", "__math_sqrt"); ("sin", "__math_sin"); ("cos", "__math_cos");
    ("exp", "__math_exp"); ("log", "__math_log"); ("fabs", "__math_fabs");
    ("pow", "__math_pow"); ("fmin", "__math_fmin"); ("fmax", "__math_fmax");
  ]

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec gen_lvalue fe (e : expr) : Value.t * cty =
  match e.e with
  | Ident x -> (
    match SM.find_opt x fe.vars with
    | Some b -> (b.addr, b.bcty)
    | None -> (
      match SM.find_opt x fe.g.global_tys with
      | Some cty ->
        let v = to_generic fe (Value.Global x) (Types.Ptr Types.Global) in
        (v, cty)
      | None -> err e.eloc "unknown variable %s" x))
  | Index (a, i) -> (
    let base, elem_ty =
      let addr, cty = gen_addr_of_indexable fe a in
      match cty with
      | Tarr (el, _) -> (addr, el)
      | Tptr el -> (addr, el)
      | t -> err a.eloc "cannot index a value of type %a" pp_cty t
    in
    let iv = gen_expr fe i in
    let idx64 = convert fe iv Tlong i.eloc in
    let scaled =
      Builder.mul fe.bld Types.I64 idx64 (Value.i64 (sizeof_cty elem_ty))
    in
    (Builder.gep fe.bld ~ptr_ty:gptr base scaled, elem_ty))
  | Unary (Deref, p) ->
    let pv = gen_expr fe p in
    (match pv.t with
    | Tptr t -> (pv.v, t)
    | t -> err e.eloc "cannot dereference a value of type %a" pp_cty t)
  | _ -> err e.eloc "expression is not an lvalue"

(* For a[i]: if [a] is an array lvalue we use its address directly (no load);
   if it is a pointer we load the pointer value. *)
and gen_addr_of_indexable fe (a : expr) : Value.t * cty =
  match a.e with
  | Ident x -> (
    match SM.find_opt x fe.vars with
    | Some ({ bcty = Tarr _; _ } as b) -> (b.addr, b.bcty)
    | Some _ ->
      let v = gen_expr fe a in
      (v.v, v.t)
    | None -> (
      match SM.find_opt x fe.g.global_tys with
      | Some (Tarr _ as cty) ->
        (to_generic fe (Value.Global x) (Types.Ptr Types.Global), cty)
      | Some _ ->
        let v = gen_expr fe a in
        (v.v, v.t)
      | None -> err a.eloc "unknown variable %s" x))
  | Index _ ->
    (* multi-dimensional arrays: inner index yields an array-typed lvalue *)
    let addr, cty = gen_lvalue fe a in
    (match cty with
    | Tarr _ -> (addr, cty)
    | Tptr _ ->
      let v = Builder.load fe.bld gptr addr in
      (v, cty)
    | t -> err a.eloc "cannot index into %a" pp_cty t)
  | _ ->
    let v = gen_expr fe a in
    (v.v, v.t)

and gen_expr fe (e : expr) : tv =
  Builder.set_loc fe.bld e.eloc;
  match e.e with
  | Int_lit v ->
    if v >= -2147483648L && v <= 2147483647L then
      { v = Value.Const (Value.CInt (Types.I32, v)); t = Tint }
    else { v = Value.Const (Value.CInt (Types.I64, v)); t = Tlong }
  | Float_lit v -> { v = Value.f64 v; t = Tdouble }
  | Ident _ | Index _ | Unary (Deref, _) ->
    let addr, cty = gen_lvalue fe e in
    (match cty with
    | Tarr (el, _) -> { v = addr; t = Tptr el }  (* array decays to pointer *)
    | _ -> { v = Builder.load fe.bld (irty_value cty) addr; t = cty })
  | Unary (Addr, inner) ->
    let addr, cty = gen_lvalue fe inner in
    let pointee = match cty with Tarr (el, _) -> el | t -> t in
    { v = addr; t = Tptr pointee }
  | Unary (Neg, inner) ->
    let x = gen_expr fe inner in
    if is_float_cty x.t then
      { v = Builder.bin fe.bld Instr.Fsub (irty_value x.t) (zero_of x.t) x.v; t = x.t }
    else { v = Builder.sub fe.bld (irty_value x.t) (zero_of x.t) x.v; t = x.t }
  | Unary (Lnot, inner) ->
    let x = gen_expr fe inner in
    let b = truth fe x e.eloc in
    let nb = Builder.icmp fe.bld Instr.Eq Types.I1 b (Value.i1 false) in
    { v = of_bool fe nb; t = Tint }
  | Unary (Bnot, inner) ->
    let x = gen_expr fe inner in
    if not (is_int_cty x.t) then err e.eloc "~ requires an integer";
    let all_ones = if x.t = Tint then Value.i32 (-1) else Value.i64 (-1) in
    { v = Builder.bin fe.bld Instr.Xor (irty_value x.t) x.v all_ones; t = x.t }
  | Binary ((Land | Lor) as op, a, b) -> gen_short_circuit fe op a b e.eloc
  | Binary (op, a, b) ->
    let av = gen_expr fe a in
    let bv = gen_expr fe b in
    gen_arith fe op av bv e.eloc
  | Assign (lhs, rhs) ->
    let addr, cty = gen_lvalue fe lhs in
    let rv = gen_expr fe rhs in
    let v = convert fe rv cty e.eloc in
    Builder.store fe.bld (irty_value cty) v addr;
    { v; t = cty }
  | Op_assign (op, lhs, rhs) ->
    let addr, cty = gen_lvalue fe lhs in
    let old = { v = Builder.load fe.bld (irty_value cty) addr; t = cty } in
    let rv = gen_expr fe rhs in
    let res = gen_arith fe op old rv e.eloc in
    let v = convert fe res cty e.eloc in
    Builder.store fe.bld (irty_value cty) v addr;
    { v; t = cty }
  | Call (name, args) -> gen_call fe name args e.eloc
  | Cast (cty, inner) ->
    let x = gen_expr fe inner in
    { v = convert fe x cty e.eloc; t = cty }
  | Cond (c, a, b) ->
    (* lower with a result slot; avoids needing phi nodes *)
    let cv = gen_expr fe c in
    let cb = truth fe cv e.eloc in
    let then_bb = Builder.new_block fe.bld "cond.then" in
    let else_bb = Builder.new_block fe.bld "cond.else" in
    let merge_bb = Builder.new_block fe.bld "cond.end" in
    (* evaluate both arms into a result slot; the slot's type is computed by
       a cheap syntactic typing of the arms (no side effects are emitted) *)
    let probe_ty =
      (* peek: literals and idents give us the type cheaply *)
      let rec ty_of (x : expr) =
        match x.e with
        | Int_lit _ -> Tint
        | Float_lit _ -> Tdouble
        | Ident n -> (
          match SM.find_opt n fe.vars with
          | Some b -> b.bcty
          | None -> (
            match SM.find_opt n fe.g.global_tys with Some t -> t | None -> Tdouble))
        | Cast (t, _) -> t
        | Binary (_, l, r) -> unify_cty (ty_of l) (ty_of r)
        | _ -> Tdouble
      in
      unify_cty (ty_of a) (ty_of b)
    in
    let res_slot = Builder.alloca fe.bld (irty_value probe_ty) in
    let res_addr = to_generic fe res_slot (Types.Ptr Types.Local) in
    Builder.cbr fe.bld cb then_bb.Block.label else_bb.Block.label;
    Builder.position_at_end fe.bld then_bb;
    let av = gen_expr fe a in
    Builder.store fe.bld (irty_value probe_ty) (convert fe av probe_ty e.eloc) res_addr;
    Builder.br fe.bld merge_bb.Block.label;
    Builder.position_at_end fe.bld else_bb;
    let bv = gen_expr fe b in
    Builder.store fe.bld (irty_value probe_ty) (convert fe bv probe_ty e.eloc) res_addr;
    Builder.br fe.bld merge_bb.Block.label;
    Builder.position_at_end fe.bld merge_bb;
    { v = Builder.load fe.bld (irty_value probe_ty) res_addr; t = probe_ty }

and gen_short_circuit fe op a b loc =
  let res_slot = Builder.alloca fe.bld Types.I32 in
  let res_addr = to_generic fe res_slot (Types.Ptr Types.Local) in
  let rhs_bb = Builder.new_block fe.bld "sc.rhs" in
  let merge_bb = Builder.new_block fe.bld "sc.end" in
  let av = gen_expr fe a in
  let ab = truth fe av loc in
  Builder.store fe.bld Types.I32 (of_bool fe ab) res_addr;
  (match op with
  | Land -> Builder.cbr fe.bld ab rhs_bb.Block.label merge_bb.Block.label
  | Lor -> Builder.cbr fe.bld ab merge_bb.Block.label rhs_bb.Block.label
  | _ -> assert false);
  Builder.position_at_end fe.bld rhs_bb;
  let bv = gen_expr fe b in
  let bb = truth fe bv loc in
  Builder.store fe.bld Types.I32 (of_bool fe bb) res_addr;
  Builder.br fe.bld merge_bb.Block.label;
  Builder.position_at_end fe.bld merge_bb;
  { v = Builder.load fe.bld Types.I32 res_addr; t = Tint }

and gen_arith fe op (a : tv) (b : tv) loc : tv =
  match op with
  | Add | Sub | Mul | Div | Mod -> (
    (* pointer arithmetic *)
    match (a.t, op) with
    | (Tptr el | Tarr (el, _)), (Add | Sub) when is_int_cty b.t ->
      let off = convert fe b Tlong loc in
      let scaled = Builder.mul fe.bld Types.I64 off (Value.i64 (sizeof_cty el)) in
      let scaled =
        if op = Sub then Builder.sub fe.bld Types.I64 (Value.i64 0) scaled else scaled
      in
      { v = Builder.gep fe.bld ~ptr_ty:gptr a.v scaled; t = Tptr el }
    | _ ->
      let ty = unify_cty a.t b.t in
      if rank ty = 0 then err loc "invalid arithmetic operands";
      let av = convert fe a ty loc and bv = convert fe b ty loc in
      let instr_op =
        if is_float_cty ty then
          match op with
          | Add -> Instr.Fadd | Sub -> Instr.Fsub | Mul -> Instr.Fmul | Div -> Instr.Fdiv
          | Mod -> err loc "%% on floating point"
          | _ -> assert false
        else
          match op with
          | Add -> Instr.Add | Sub -> Instr.Sub | Mul -> Instr.Mul | Div -> Instr.Sdiv
          | Mod -> Instr.Srem
          | _ -> assert false
      in
      { v = Builder.bin fe.bld instr_op (irty_value ty) av bv; t = ty })
  | Band | Bor | Bxor | Shl | Shr ->
    let ty = unify_cty a.t b.t in
    if not (is_int_cty ty) then err loc "bitwise op requires integers";
    let av = convert fe a ty loc and bv = convert fe b ty loc in
    let instr_op =
      match op with
      | Band -> Instr.And | Bor -> Instr.Or | Bxor -> Instr.Xor
      | Shl -> Instr.Shl | Shr -> Instr.Ashr
      | _ -> assert false
    in
    { v = Builder.bin fe.bld instr_op (irty_value ty) av bv; t = ty }
  | Lt | Le | Gt | Ge | Eq | Ne ->
    let cmp =
      if is_ptr_cty a.t || is_ptr_cty b.t then begin
        let cc =
          match op with
          | Eq -> Instr.Eq | Ne -> Instr.Ne | Lt -> Instr.Ult | Le -> Instr.Ule
          | Gt -> Instr.Ugt | Ge -> Instr.Uge
          | _ -> assert false
        in
        Builder.icmp fe.bld cc gptr a.v b.v
      end
      else begin
        let ty = unify_cty a.t b.t in
        let av = convert fe a ty loc and bv = convert fe b ty loc in
        if is_float_cty ty then
          let cc =
            match op with
            | Eq -> Instr.Oeq | Ne -> Instr.One | Lt -> Instr.Olt | Le -> Instr.Ole
            | Gt -> Instr.Ogt | Ge -> Instr.Oge
            | _ -> assert false
          in
          Builder.fcmp fe.bld cc (irty_value ty) av bv
        else
          let cc =
            match op with
            | Eq -> Instr.Eq | Ne -> Instr.Ne | Lt -> Instr.Slt | Le -> Instr.Sle
            | Gt -> Instr.Sgt | Ge -> Instr.Sge
            | _ -> assert false
          in
          Builder.icmp fe.bld cc (irty_value ty) av bv
      end
    in
    { v = of_bool fe cmp; t = Tint }
  | Land | Lor -> assert false  (* handled by gen_short_circuit *)

and gen_call fe name args loc : tv =
  let eval_args () = List.map (gen_expr fe) args in
  let unary_f64 rt =
    match eval_args () with
    | [ a ] -> { v = Builder.call fe.bld Types.F64 rt [ convert fe a Tdouble loc ]; t = Tdouble }
    | _ -> err loc "%s expects 1 argument" name
  in
  let binary_f64 rt =
    match eval_args () with
    | [ a; b ] ->
      { v =
          Builder.call fe.bld Types.F64 rt
            [ convert fe a Tdouble loc; convert fe b Tdouble loc ];
        t = Tdouble;
      }
    | _ -> err loc "%s expects 2 arguments" name
  in
  match name with
  | "sqrt" | "sin" | "cos" | "exp" | "log" | "fabs" ->
    unary_f64 (List.assoc name math_builtins)
  | "pow" | "fmin" | "fmax" -> binary_f64 (List.assoc name math_builtins)
  | "trace" -> (
    match eval_args () with
    | [ a ] ->
      let v = convert fe a Tlong loc in
      ignore (Builder.call fe.bld Types.Void "__devrt_trace" [ v ]);
      { v = Value.undef Types.Void; t = Tvoid }
    | _ -> err loc "trace expects 1 argument")
  | "trace_f64" -> (
    match eval_args () with
    | [ a ] ->
      let v = convert fe a Tdouble loc in
      ignore (Builder.call fe.bld Types.Void "__devrt_trace_f64" [ v ]);
      { v = Value.undef Types.Void; t = Tvoid }
    | _ -> err loc "trace_f64 expects 1 argument")
  | "omp_get_thread_num" ->
    { v = Builder.call fe.bld Types.I32 (omp_query fe `Tid) []; t = Tint }
  | "omp_get_num_threads" ->
    { v = Builder.call fe.bld Types.I32 (omp_query fe `Nthreads) []; t = Tint }
  | "omp_get_team_num" ->
    { v = Builder.call fe.bld Types.I32 (omp_query fe `Team) []; t = Tint }
  | "omp_get_num_teams" ->
    { v = Builder.call fe.bld Types.I32 (omp_query fe `Nteams) []; t = Tint }
  | _ -> (
    match SM.find_opt name fe.g.fsigs with
    | None -> err loc "call to unknown function %s" name
    | Some (ret, params) ->
      let avs = eval_args () in
      if List.length avs <> List.length params then
        err loc "%s expects %d arguments, got %d" name (List.length params)
          (List.length avs);
      let conv = List.map2 (fun a p -> convert fe a p loc) avs params in
      { v = Builder.call fe.bld (irty_value ret) name conv; t = ret })

(* which query functions to use: CUDA builds read the hardware registers
   directly; OpenMP builds go through the IR glue helpers *)
and omp_query fe q =
  match (fe.g.opts.scheme, q) with
  | Cuda, `Tid -> "__gpu_thread_id"
  | Cuda, `Nthreads -> "__gpu_num_threads"
  | Cuda, `Team -> "__gpu_team_id"
  | Cuda, `Nteams -> "__gpu_num_teams"
  (* the LLVM-12-era runtime is an opaque library: queries are real calls *)
  | Legacy, `Tid -> "omp_get_thread_num"
  | Legacy, `Nthreads -> "omp_get_num_threads"
  | Legacy, `Team -> "omp_get_team_num"
  | Legacy, `Nteams -> "omp_get_num_teams"
  (* the Dev runtime is linked as IR: queries go through foldable glue *)
  | Simplified, `Tid -> Glue.tid_name
  | Simplified, `Nthreads -> Glue.nthreads_name
  | Simplified, `Team -> Glue.team_name
  | Simplified, `Nteams -> Glue.nteams_name

(* ------------------------------------------------------------------ *)
(* Worksharing loop normalization                                      *)
(* ------------------------------------------------------------------ *)

(* A canonical worksharing loop: for (ty v = lb; v < ub; v += step). *)
type canonical_loop = {
  lv_name : string;
  lv_ty : cty;
  lb : expr;
  ub : expr;
  inclusive : bool;  (* <= instead of < *)
  step : expr;
  body : stmt;
}

let normalize_for loc (init, cond, step, body) =
  let lv_name, lv_ty, lb =
    match init with
    | Some { s = Decl ((Tint | Tlong) as ty, v, Some lb); _ } -> (v, ty, lb)
    | Some { s = Expr { e = Assign ({ e = Ident v; _ }, lb); _ }; _ } -> (v, Tint, lb)
    | _ -> err loc "worksharing loop must initialize its induction variable"
  in
  let ub, inclusive =
    match cond with
    | Some { e = Binary (Lt, { e = Ident v; _ }, ub); _ } when v = lv_name -> (ub, false)
    | Some { e = Binary (Le, { e = Ident v; _ }, ub); _ } when v = lv_name -> (ub, true)
    | _ -> err loc "worksharing loop condition must be 'v < ub' or 'v <= ub'"
  in
  let step =
    match step with
    | Some { e = Op_assign (Add, { e = Ident v; _ }, s); _ } when v = lv_name -> s
    | Some { e = Assign ({ e = Ident v; _ },
                         { e = Binary (Add, { e = Ident v'; _ }, s); _ }); _ }
      when v = lv_name && v' = lv_name ->
      s
    | _ -> err loc "worksharing loop step must be 'v += step' or 'v = v + step'"
  in
  { lv_name; lv_ty; lb; ub; inclusive; step; body }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec gen_stmt fe (st : stmt) =
  Builder.set_loc fe.bld st.sloc;
  match st.s with
  | Decl (cty, name, init) ->
    let addr = alloc_var fe name cty st.sloc in
    bind fe name cty addr;
    (match init with
    | Some e ->
      let v = gen_expr fe e in
      Builder.store fe.bld (irty_value cty) (convert fe v cty st.sloc) addr
    | None -> ())
  | Expr e -> ignore (gen_expr fe e)
  | Block stmts ->
    let saved = fe.vars in
    let saved_frees = !(fe.frees) in
    List.iter (gen_stmt fe) stmts;
    (* release globalized allocations made in this scope (Clang frees at end
       of scope; crucial when the scope sits inside a loop) *)
    (match fe.g.opts.scheme with
    | Simplified ->
      let scope_allocs =
        let rec take acc = function
          | rest when rest == saved_frees -> acc
          | (p, size) :: rest -> take ((p, size) :: acc) rest
          | [] -> acc
        in
        List.rev (take [] !(fe.frees))
      in
      List.iter
        (fun (p, size) ->
          ignore
            (Builder.call fe.bld Types.Void "__kmpc_free_shared" [ p; Value.i64 size ]))
        scope_allocs;
      fe.frees := saved_frees
    | Legacy | Cuda -> ());
    fe.vars <- saved
  | If (c, t, f) ->
    let cv = gen_expr fe c in
    let cb = truth fe cv st.sloc in
    let then_bb = Builder.new_block fe.bld "if.then" in
    let else_bb = Builder.new_block fe.bld "if.else" in
    let end_bb = Builder.new_block fe.bld "if.end" in
    Builder.cbr fe.bld cb then_bb.Block.label else_bb.Block.label;
    Builder.position_at_end fe.bld then_bb;
    gen_stmt fe t;
    Builder.br fe.bld end_bb.Block.label;
    Builder.position_at_end fe.bld else_bb;
    (match f with Some f -> gen_stmt fe f | None -> ());
    Builder.br fe.bld end_bb.Block.label;
    Builder.position_at_end fe.bld end_bb
  | While (c, body) ->
    let cond_bb = Builder.new_block fe.bld "while.cond" in
    let body_bb = Builder.new_block fe.bld "while.body" in
    let end_bb = Builder.new_block fe.bld "while.end" in
    Builder.br fe.bld cond_bb.Block.label;
    Builder.position_at_end fe.bld cond_bb;
    let cv = gen_expr fe c in
    let cb = truth fe cv st.sloc in
    Builder.cbr fe.bld cb body_bb.Block.label end_bb.Block.label;
    Builder.position_at_end fe.bld body_bb;
    fe.brk <- end_bb.Block.label :: fe.brk;
    fe.cont <- cond_bb.Block.label :: fe.cont;
    gen_stmt fe body;
    fe.brk <- List.tl fe.brk;
    fe.cont <- List.tl fe.cont;
    Builder.br fe.bld cond_bb.Block.label;
    Builder.position_at_end fe.bld end_bb
  | For (init, cond, step, body) ->
    let saved = fe.vars in
    (match init with Some s -> gen_stmt fe s | None -> ());
    let cond_bb = Builder.new_block fe.bld "for.cond" in
    let body_bb = Builder.new_block fe.bld "for.body" in
    let step_bb = Builder.new_block fe.bld "for.step" in
    let end_bb = Builder.new_block fe.bld "for.end" in
    Builder.br fe.bld cond_bb.Block.label;
    Builder.position_at_end fe.bld cond_bb;
    (match cond with
    | Some c ->
      let cv = gen_expr fe c in
      let cb = truth fe cv st.sloc in
      Builder.cbr fe.bld cb body_bb.Block.label end_bb.Block.label
    | None -> Builder.br fe.bld body_bb.Block.label);
    Builder.position_at_end fe.bld body_bb;
    fe.brk <- end_bb.Block.label :: fe.brk;
    fe.cont <- step_bb.Block.label :: fe.cont;
    gen_stmt fe body;
    fe.brk <- List.tl fe.brk;
    fe.cont <- List.tl fe.cont;
    Builder.br fe.bld step_bb.Block.label;
    Builder.position_at_end fe.bld step_bb;
    (match step with Some e -> ignore (gen_expr fe e) | None -> ());
    Builder.br fe.bld cond_bb.Block.label;
    Builder.position_at_end fe.bld end_bb;
    fe.vars <- saved
  | Break -> (
    match fe.brk with
    | l :: _ ->
      Builder.br fe.bld l;
      Builder.position_at_end fe.bld (Builder.new_block fe.bld "after.break")
    | [] -> err st.sloc "break outside of a loop")
  | Continue -> (
    match fe.cont with
    | l :: _ ->
      Builder.br fe.bld l;
      Builder.position_at_end fe.bld (Builder.new_block fe.bld "after.continue")
    | [] -> err st.sloc "continue outside of a loop")
  | Return e -> (
    match fe.ctx with
    | Kernel_main _ -> err st.sloc "return is not allowed inside a target region"
    | _ ->
      let v =
        match e with
        | Some e ->
          let x = gen_expr fe e in
          let ret_cty =
            match fe.func.Func.ret_ty with
            | Types.Void -> err st.sloc "returning a value from a void function"
            | _ -> cty_of_ret fe
          in
          Some (convert fe x ret_cty st.sloc)
        | None -> None
      in
      emit_frees fe;
      Builder.ret fe.bld v;
      Builder.position_at_end fe.bld (Builder.new_block fe.bld "after.return"))
  | Pragma (p, body) -> gen_pragma fe p body st.sloc

and cty_of_ret fe =
  match fe.func.Func.ret_ty with
  | Types.I32 -> Tint
  | Types.I64 -> Tlong
  | Types.F32 -> Tfloat
  | Types.F64 -> Tdouble
  | Types.Ptr _ -> Tptr Tvoid
  | _ -> Tvoid

(* ------------------------------------------------------------------ *)
(* Pragmas                                                             *)
(* ------------------------------------------------------------------ *)

and gen_pragma fe p body loc =
  match (p, fe.ctx) with
  | (P_target_teams _ | P_target_teams_distribute _
    | P_target_teams_distribute_parallel_for _), Host ->
    gen_kernel fe p body loc
  | (P_target_teams _ | P_target_teams_distribute _
    | P_target_teams_distribute_parallel_for _), _ ->
    err loc "nested target regions are not supported"
  | P_parallel clauses, (Kernel_main _ | Parallel_region | Device_fn) ->
    gen_parallel fe clauses ~is_for:false body loc
  | P_parallel_for clauses, (Kernel_main _ | Parallel_region | Device_fn) ->
    gen_parallel fe clauses ~is_for:true body loc
  | (P_parallel _ | P_parallel_for _), Host ->
    err loc "host-side parallel regions are not supported (device-only model)"
  | P_barrier, (Kernel_main _ | Parallel_region | Device_fn) ->
    let callee =
      match fe.g.opts.scheme with
      | Simplified -> Glue.barrier_name
      | Legacy | Cuda -> "__kmpc_barrier"
    in
    ignore (Builder.call fe.bld Types.Void callee [])
  | P_barrier, Host -> ()
  | P_atomic, _ -> gen_atomic fe body loc

and gen_atomic fe body loc =
  match body.s with
  | Expr { e = Op_assign ((Add | Sub) as op, lhs, rhs); _ } ->
    let addr, cty = gen_lvalue fe lhs in
    let rv = gen_expr fe rhs in
    let v = convert fe rv cty loc in
    let v =
      if op = Sub then
        if is_float_cty cty then
          Builder.bin fe.bld Instr.Fsub (irty_value cty) (zero_of cty) v
        else Builder.sub fe.bld (irty_value cty) (zero_of cty) v
      else v
    in
    let aop = if is_float_cty cty then Instr.A_fadd else Instr.A_add in
    ignore (Builder.atomicrmw fe.bld aop (irty_value cty) addr v)
  | _ -> err loc "atomic supports only '+=' and '-=' updates"

(* ------------------------------------------------------------------ *)
(* Worksharing loop emission                                           *)
(* ------------------------------------------------------------------ *)

(* Emit: for (v = lb + who*step; v </<= ub; v += step*total) body
   where [who]/[total] are i32 values. *)
and gen_cyclic_loop fe ?iv_addr (cl : canonical_loop) ~who ~total =
  let saved = fe.vars in
  let ty = cl.lv_ty in
  (* the induction variable may be captured by a nested parallel region
     (e.g. the site index of a distribute loop), in which case it must be
     globalized like any other shared local.  When the loop is emitted twice
     (sequential fallback + parallel arm) the caller allocates the storage
     once, above the branch, and passes it in. *)
  let iv_addr =
    match iv_addr with
    | Some addr -> addr
    | None -> alloc_var fe cl.lv_name ty cl.body.sloc
  in
  bind fe cl.lv_name ty iv_addr;
  let lb = gen_expr fe cl.lb in
  let lb = convert fe lb ty cl.body.sloc in
  let step = gen_expr fe cl.step in
  let step = convert fe step ty cl.body.sloc in
  let who_c = convert fe { v = who; t = Tint } ty cl.body.sloc in
  let total_c = convert fe { v = total; t = Tint } ty cl.body.sloc in
  let offset = Builder.mul fe.bld (irty_value ty) who_c step in
  let start = Builder.add fe.bld (irty_value ty) lb offset in
  Builder.store fe.bld (irty_value ty) start iv_addr;
  let stride = Builder.mul fe.bld (irty_value ty) step total_c in
  let cond_bb = Builder.new_block fe.bld "ws.cond" in
  let body_bb = Builder.new_block fe.bld "ws.body" in
  let end_bb = Builder.new_block fe.bld "ws.end" in
  Builder.br fe.bld cond_bb.Block.label;
  Builder.position_at_end fe.bld cond_bb;
  let cur = Builder.load fe.bld (irty_value ty) iv_addr in
  let ub = gen_expr fe cl.ub in
  let ub = convert fe ub ty cl.body.sloc in
  let cc = if cl.inclusive then Instr.Sle else Instr.Slt in
  let c = Builder.icmp fe.bld cc (irty_value ty) cur ub in
  Builder.cbr fe.bld c body_bb.Block.label end_bb.Block.label;
  Builder.position_at_end fe.bld body_bb;
  fe.brk <- end_bb.Block.label :: fe.brk;
  fe.cont <- cond_bb.Block.label :: fe.cont;
  gen_stmt fe cl.body;
  fe.brk <- List.tl fe.brk;
  fe.cont <- List.tl fe.cont;
  let cur2 = Builder.load fe.bld (irty_value ty) iv_addr in
  let nxt = Builder.add fe.bld (irty_value ty) cur2 stride in
  Builder.store fe.bld (irty_value ty) nxt iv_addr;
  Builder.br fe.bld cond_bb.Block.label;
  Builder.position_at_end fe.bld end_bb;
  fe.vars <- saved

(* Worksharing loops carry an inline sequential fallback for nested
   parallelism: the runtime parallel level selects between the parallel
   cyclic schedule and a serial execution on the encountering thread.  The
   runtime-call folding pass removes the level check (and with it the
   sequential path) when nested parallelism is provably absent. *)
and gen_worksharing_with_fallback fe cl ~queries =
  if fe.g.opts.scheme = Cuda then begin
    let who, total = queries fe in
    gen_cyclic_loop fe cl ~who ~total
  end
  else begin
    (* allocate the induction variable once, dominating both arms *)
    let iv_addr = alloc_var fe cl.lv_name cl.lv_ty cl.body.sloc in
    let lvl = Builder.call fe.bld Types.I32 "__kmpc_parallel_level" [] in
    let nested = Builder.icmp fe.bld Instr.Sgt Types.I32 lvl (Value.i32 1) in
    let seq_bb = Builder.new_block fe.bld "ws.seq" in
    let par_bb = Builder.new_block fe.bld "ws.par" in
    let join_bb = Builder.new_block fe.bld "ws.join" in
    Builder.cbr fe.bld nested seq_bb.Block.label par_bb.Block.label;
    Builder.position_at_end fe.bld seq_bb;
    gen_cyclic_loop fe ~iv_addr cl ~who:(Value.i32 0) ~total:(Value.i32 1);
    Builder.br fe.bld join_bb.Block.label;
    Builder.position_at_end fe.bld par_bb;
    let who, total = queries fe in
    gen_cyclic_loop fe ~iv_addr cl ~who ~total;
    Builder.br fe.bld join_bb.Block.label;
    Builder.position_at_end fe.bld join_bb
  end

(* ------------------------------------------------------------------ *)
(* Parallel regions (outlining)                                        *)
(* ------------------------------------------------------------------ *)

(* [by_value] selects firstprivate capture semantics: the combined
   target-teams-distribute-parallel-for construct makes scalars firstprivate
   per the OpenMP spec, so the outlined region receives copies rather than
   addresses (and the argument buffer can live on the thread's own stack). *)
and gen_parallel fe ?ws_queries ?(by_value = false) clauses ~is_for body loc =
  (* captured variables: free in the region, bound in the enclosing fn *)
  let free = stmt_free_vars body in
  let captured =
    SS.elements free
    |> List.filter (fun x -> SM.mem x fe.vars)
    |> List.sort String.compare
  in
  let region_idx = Support.Util.Id_gen.fresh fe.g.outlined_counter in
  let fn_name = Printf.sprintf "__omp_outlined__%d" region_idx in
  (* build the outlined function *)
  let outlined =
    Func.make ~linkage:Func.Internal ~loc fn_name ~ret_ty:Types.Void
      ~params:[ ("args", gptr) ]
  in
  Irmod.add_func fe.g.m outlined;
  let obld = Builder.create outlined in
  let oentry = Builder.new_block obld "entry" in
  Builder.position_at_end obld oentry;
  let ofe =
    {
      g = fe.g;
      bld = obld;
      func = outlined;
      vars = SM.empty;
      frees = ref [];
      legacy_base = None;
      globalize = compute_globalize_set fe.g body [];
      legacy_offsets = SM.empty;
      brk = [];
      cont = [];
      ctx = Parallel_region;
    }
  in
  (* rebind captures from the args buffer: by reference (shared semantics)
     or by value (firstprivate: copy into a fresh private slot) *)
  List.iteri
    (fun idx name ->
      let b = SM.find name fe.vars in
      let slot = Builder.gep obld ~ptr_ty:gptr (Value.Arg 0) (Value.i64 (8 * idx)) in
      if by_value then begin
        let v = Builder.load obld (irty_value b.bcty) slot in
        let priv = Builder.alloca obld (irty_value b.bcty) in
        let priv = to_generic ofe priv (Types.Ptr Types.Local) in
        Builder.store obld (irty_value b.bcty) v priv;
        ofe.vars <- SM.add name { addr = priv; bcty = b.bcty } ofe.vars
      end
      else begin
        let addr = Builder.load obld gptr slot in
        ofe.vars <- SM.add name { addr; bcty = b.bcty } ofe.vars
      end)
    captured;
  (* legacy scheme: outlined regions with globalized locals get the runtime
     check pattern; simplified handles it per variable in alloc_var *)
  let ofe = setup_legacy_frame ofe body [] in
  (match is_for with
  | true ->
    let cl =
      match body.s with
      | For (i, c, s, b) -> normalize_for loc (i, c, s, b)
      | _ -> err loc "'parallel for' must be followed by a for loop"
    in
    let default_queries fe' =
      let who = Builder.call fe'.bld Types.I32 (omp_query fe' `Tid) [] in
      let total = Builder.call fe'.bld Types.I32 (omp_query fe' `Nthreads) [] in
      (who, total)
    in
    let queries = Option.value ws_queries ~default:default_queries in
    gen_worksharing_with_fallback ofe cl ~queries
  | false -> gen_stmt ofe body);
  emit_frees ofe;
  Builder.ret ofe.bld None;
  (* call-site: allocate and fill the args buffer, launch *)
  let nargs = List.length captured in
  let args_size = max 8 (8 * nargs) in
  let args_ptr =
    if by_value then begin
      (* firstprivate payload: never crosses threads, lives on the stack *)
      let a = Builder.alloca fe.bld (Types.Arr (args_size, Types.I8)) in
      to_generic fe a (Types.Ptr Types.Local)
    end
    else
      match fe.g.opts.scheme with
      | Legacy ->
        Builder.call fe.bld gptr "__kmpc_data_sharing_push_stack"
          [ Value.i64 args_size; Value.i32 1 ]
      | Simplified | Cuda ->
        Builder.call fe.bld gptr "__kmpc_alloc_shared" [ Value.i64 args_size ]
  in
  List.iteri
    (fun idx name ->
      let b = SM.find name fe.vars in
      let slot = Builder.gep fe.bld ~ptr_ty:gptr args_ptr (Value.i64 (8 * idx)) in
      if by_value then begin
        let v = Builder.load fe.bld (irty_value b.bcty) b.addr in
        Builder.store fe.bld (irty_value b.bcty) v slot
      end
      else Builder.store fe.bld gptr b.addr slot)
    captured;
  let num_threads =
    List.fold_left
      (fun acc c -> match c with Num_threads n -> n | _ -> acc)
      0 clauses
  in
  ignore
    (Builder.call fe.bld Types.Void "__kmpc_parallel_51"
       [ Value.Func fn_name; Value.i64 (-1); args_ptr; Value.i32 num_threads ]);
  if not by_value then
    match fe.g.opts.scheme with
    | Legacy ->
      ignore (Builder.call fe.bld Types.Void "__kmpc_data_sharing_pop_stack" [ args_ptr ])
    | Simplified | Cuda ->
      ignore
        (Builder.call fe.bld Types.Void "__kmpc_free_shared"
           [ args_ptr; Value.i64 args_size ])

(* ------------------------------------------------------------------ *)
(* Globalization set computation and legacy frames                     *)
(* ------------------------------------------------------------------ *)

(* Variables of a function body that the front-end must globalize: those
   whose address is taken, those captured by nested parallel regions, and
   local arrays (their address is implicitly taken on use). *)
and compute_globalize_set g (body : stmt) (params : (cty * string) list) =
  let addr_taken = addr_taken_vars body in
  let captured_by_parallel =
    let acc = ref SS.empty in
    let rec walk st =
      (match st.s with
      | Pragma ((P_parallel _ | P_parallel_for _), pbody) ->
        acc := SS.union !acc (stmt_free_vars pbody)
      | _ -> ());
      match st.s with
      | Block ss -> List.iter walk ss
      | If (_, t, f) ->
        walk t;
        Option.iter walk f
      | While (_, b) | For (_, _, _, b) | Pragma (_, b) -> walk b
      | Decl _ | Expr _ | Return _ | Break | Continue -> ()
    in
    walk body;
    !acc
  in
  let local_arrays =
    let acc = ref SS.empty in
    let rec walk st =
      (match st.s with
      | Decl (Tarr _, name, _) -> acc := SS.add name !acc
      | _ -> ());
      match st.s with
      | Block ss -> List.iter walk ss
      | If (_, t, f) ->
        walk t;
        Option.iter walk f
      | For (init, _, _, b) ->
        Option.iter walk init;
        walk b
      | While (_, b) | Pragma (_, b) -> walk b
      | Decl _ | Expr _ | Return _ | Break | Continue -> ()
    in
    walk body;
    !acc
  in
  ignore params;
  let set = SS.union addr_taken (SS.union captured_by_parallel local_arrays) in
  (* globals are referenced directly, never captured *)
  SS.filter (fun x -> not (SM.mem x g.global_tys)) set

(* For the legacy scheme, pre-scan the function body for globalized
   declarations, lay them out in one aggregate and emit the Fig. 4b pattern.
   Returns the fenv updated with the aggregate base. *)
and setup_legacy_frame fe (body : stmt) (params : (cty * string) list) =
  if fe.g.opts.scheme <> Legacy || not (is_device_ctx fe.ctx) then fe
  else if (match fe.ctx with Kernel_main Func.Spmd -> true | _ -> false) then fe
  else begin
    (* collect (name, cty) of globalized declarations in order *)
    let decls = ref [] in
    let rec walk st =
      (match st.s with
      | Decl (cty, name, _) when SS.mem name fe.globalize ->
        if not (List.mem_assoc name !decls) then decls := (name, cty) :: !decls
      | _ -> ());
      match st.s with
      | Block ss -> List.iter walk ss
      | If (_, t, f) ->
        walk t;
        Option.iter walk f
      | For (init, _, _, b) ->
        Option.iter walk init;
        walk b
      | While (_, b) | Pragma (_, b) -> walk b
      | Decl _ | Expr _ | Return _ | Break | Continue -> ()
    in
    walk body;
    List.iter
      (fun (cty, name) ->
        if SS.mem name fe.globalize && not (List.mem_assoc name !decls) then
          decls := (name, cty) :: !decls)
      params;
    let decls = List.rev !decls in
    if decls = [] then fe
    else begin
      let offsets, total =
        List.fold_left
          (fun (m, off) (name, cty) ->
            let size = Support.Util.round_up_to (sizeof_cty cty) ~multiple:8 in
            (SM.add name off m, off + size))
          (SM.empty, 0) decls
      in
      let base =
        match fe.ctx with
        | Kernel_main Func.Generic ->
          (* statically known generic mode: push directly *)
          Builder.call fe.bld gptr "__kmpc_data_sharing_push_stack"
            [ Value.i64 total; Value.i32 1 ]
        | _ ->
          (* device function / parallel region: runtime mode check (Fig 4b) *)
          let slot = Builder.alloca fe.bld gptr in
          let slot = to_generic fe slot (Types.Ptr Types.Local) in
          let spmd_bb = Builder.new_block fe.bld "leg.spmd" in
          let gen_bb = Builder.new_block fe.bld "leg.generic" in
          let merge_bb = Builder.new_block fe.bld "leg.merge" in
          let is_spmd =
            Builder.call fe.bld Types.I1 "__kmpc_data_sharing_mode_check" []
          in
          Builder.cbr fe.bld is_spmd spmd_bb.Block.label gen_bb.Block.label;
          Builder.position_at_end fe.bld spmd_bb;
          let a = Builder.alloca fe.bld (Types.Arr (total, Types.I8)) in
          let ag = to_generic fe a (Types.Ptr Types.Local) in
          Builder.store fe.bld gptr ag slot;
          Builder.br fe.bld merge_bb.Block.label;
          Builder.position_at_end fe.bld gen_bb;
          let p =
            Builder.call fe.bld gptr "__kmpc_data_sharing_push_stack"
              [ Value.i64 total; Value.i32 1 ]
          in
          Builder.store fe.bld gptr p slot;
          Builder.br fe.bld merge_bb.Block.label;
          Builder.position_at_end fe.bld merge_bb;
          Builder.load fe.bld gptr slot
      in
      { fe with legacy_base = Some base; legacy_offsets = offsets }
    end
  end

(* ------------------------------------------------------------------ *)
(* Kernels                                                             *)
(* ------------------------------------------------------------------ *)

and clause_launch_bounds clauses =
  List.fold_left
    (fun (teams, threads) c ->
      match c with
      | Num_teams n -> (Some n, threads)
      | Thread_limit n | Num_threads n -> (teams, Some n))
    (None, None) clauses

(* Emit the generic-mode worker state machine (TRegion style): workers loop
   waiting for a published parallel region and invoke it through a function
   pointer.  The custom state machine rewrite of the optimizer replaces the
   indirect call with an if-cascade over region ids. *)
and emit_worker_state_machine bld ~exit_label =
  let wait_bb = Builder.new_block bld "worker.await" in
  let dispatch_bb = Builder.new_block bld "worker.dispatch" in
  let done_bb = Builder.new_block bld "worker.done" in
  Builder.br bld wait_bb.Block.label;
  Builder.position_at_end bld wait_bb;
  let fp = Builder.call bld gptr "__kmpc_worker_wait" [] in
  let is_term = Builder.icmp bld Instr.Eq gptr fp (Value.null Types.Generic) in
  Builder.cbr bld is_term exit_label dispatch_bb.Block.label;
  Builder.position_at_end bld dispatch_bb;
  let args = Builder.call bld gptr "__kmpc_get_parallel_args" [] in
  ignore (Builder.call_indirect bld Types.Void fp [ args ]);
  Builder.br bld done_bb.Block.label;
  Builder.position_at_end bld done_bb;
  ignore (Builder.call bld Types.Void "__kmpc_worker_done" []);
  Builder.br bld wait_bb.Block.label

and gen_kernel fe p body loc =
  let clauses, mode, kind =
    match p with
    | P_target_teams c -> (c, Func.Generic, `Teams)
    | P_target_teams_distribute c -> (c, Func.Generic, `Distribute)
    | P_target_teams_distribute_parallel_for c -> (c, Func.Spmd, `Combined)
    | _ -> assert false
  in
  let num_teams, num_threads = clause_launch_bounds clauses in
  let free = stmt_free_vars body in
  let captured =
    SS.elements free
    |> List.filter (fun x -> SM.mem x fe.vars)
    |> List.sort String.compare
  in
  let kid = Support.Util.Id_gen.fresh fe.g.kernel_counter in
  let kname =
    Printf.sprintf "__omp_offloading_%s_l%d_%d" fe.func.Func.name loc.Support.Loc.line kid
  in
  let captured_ctys = List.map (fun x -> (x, (SM.find x fe.vars).bcty)) captured in
  let params =
    List.map (fun (x, cty) -> (x, irty_value cty)) captured_ctys
  in
  let kernel =
    Func.make ~linkage:Func.External ~loc
      ~kernel:{ Func.exec_mode = mode; num_teams; num_threads }
      kname ~ret_ty:Types.Void ~params
  in
  if fe.g.opts.scheme = Cuda then Func.add_attr kernel Func.Cuda_kernel;
  Irmod.add_func fe.g.m kernel;
  let kbld = Builder.create kernel in
  let entry = Builder.new_block kbld "entry" in
  let kfe =
    {
      g = fe.g;
      bld = kbld;
      func = kernel;
      vars = SM.empty;
      frees = ref [];
      legacy_base = None;
      globalize = compute_globalize_set fe.g body [];
      legacy_offsets = SM.empty;
      brk = [];
      cont = [];
      ctx = Kernel_main mode;
    }
  in
  (match mode with
  | Func.Generic ->
    let exit_bb = Builder.new_block kbld "worker.exit" in
    let worker_bb = Builder.new_block kbld "worker.begin" in
    let main_bb = Builder.new_block kbld "main.begin" in
    Builder.position_at_end kbld entry;
    let r = Builder.call kbld Types.I32 "__kmpc_target_init" [ Value.i32 0 ] in
    let is_main = Builder.icmp kbld Instr.Eq Types.I32 r (Value.i32 (-1)) in
    Builder.cbr kbld is_main main_bb.Block.label worker_bb.Block.label;
    Builder.position_at_end kbld worker_bb;
    emit_worker_state_machine kbld ~exit_label:exit_bb.Block.label;
    Builder.position_at_end kbld exit_bb;
    Builder.ret kbld None;
    Builder.position_at_end kbld main_bb;
    gen_kernel_main kfe captured_ctys kind body loc;
    emit_frees kfe;
    ignore (Builder.call kfe.bld Types.Void "__kmpc_target_deinit" [ Value.i32 0 ]);
    Builder.ret kfe.bld None
  | Func.Spmd ->
    Builder.position_at_end kbld entry;
    ignore (Builder.call kbld Types.I32 "__kmpc_target_init" [ Value.i32 1 ]);
    gen_kernel_main kfe captured_ctys kind body loc;
    emit_frees kfe;
    ignore (Builder.call kfe.bld Types.Void "__kmpc_target_deinit" [ Value.i32 1 ]);
    Builder.ret kfe.bld None);
  (* host side: evaluate the captured values and "launch" (the simulator
     intercepts direct calls to kernel functions) *)
  let args =
    List.map
      (fun x ->
        let b = SM.find x fe.vars in
        let v = gen_expr fe { e = Ident x; eloc = loc } in
        convert fe v b.bcty loc)
      captured
  in
  ignore (Builder.call fe.bld Types.Void kname args)

(* The user code of a kernel: bind captured parameters into (possibly
   globalized) storage, set up the legacy frame if needed, then emit the
   region body according to the directive kind. *)
and gen_kernel_main kfe captured_ctys kind body loc =
  let kfe =
    setup_legacy_frame kfe body (List.map (fun (n, cty) -> (cty, n)) captured_ctys)
  in
  List.iteri
    (fun idx (name, cty) ->
      let addr = alloc_var kfe name cty loc in
      Builder.store kfe.bld (irty_value cty) (Value.Arg idx) addr;
      bind kfe name cty addr)
    captured_ctys;
  match kind with
  | `Teams -> gen_stmt kfe body
  | `Distribute ->
    let cl =
      match body.s with
      | For (i, c, s, b) -> normalize_for loc (i, c, s, b)
      | _ -> err loc "'distribute' must be followed by a for loop"
    in
    let who = Builder.call kfe.bld Types.I32 (omp_query kfe `Team) [] in
    let total = Builder.call kfe.bld Types.I32 (omp_query kfe `Nteams) [] in
    gen_cyclic_loop kfe cl ~who ~total
  | `Combined ->
    (match body.s with
    | For _ -> ()
    | _ -> err loc "combined directive must be followed by a for loop");
    let league_queries fe' =
      let tid = Builder.call fe'.bld Types.I32 (omp_query fe' `Tid) [] in
      let nthreads = Builder.call fe'.bld Types.I32 (omp_query fe' `Nthreads) [] in
      let team = Builder.call fe'.bld Types.I32 (omp_query fe' `Team) [] in
      let nteams = Builder.call fe'.bld Types.I32 (omp_query fe' `Nteams) [] in
      let base = Builder.mul fe'.bld Types.I32 team nthreads in
      let gtid = Builder.add fe'.bld Types.I32 base tid in
      let total = Builder.mul fe'.bld Types.I32 nteams nthreads in
      (gtid, total)
    in
    if kfe.g.opts.scheme = Cuda then begin
      (* kernel-language form: the loop is the kernel body *)
      let cl =
        match body.s with
        | For (i, c, s, b) -> normalize_for loc (i, c, s, b)
        | _ -> assert false
      in
      gen_worksharing_with_fallback kfe cl ~queries:league_queries
    end
    else
      (* Clang outlines the combined parallel region and launches it through
         __kmpc_parallel_51; nested parallel regions inside the loop body
         then observe level >= 1 and serialize *)
      gen_parallel kfe ~ws_queries:league_queries ~by_value:true [] ~is_for:true body loc

(* ------------------------------------------------------------------ *)
(* Functions and the module driver                                     *)
(* ------------------------------------------------------------------ *)

let compile_func g (fd : func_def) =
  let ret_ty = irty_value fd.fret in
  let params = List.map (fun (cty, name) -> (name, irty_value cty)) fd.fparams in
  let attrs =
    List.filter_map
      (function
        | A_spmd_amenable -> Some Func.Spmd_amenable
        | A_nocapture -> Some Func.Nocapture_args
        | A_no_openmp -> Some Func.No_openmp)
      fd.fassumes
  in
  match fd.fbody with
  | None -> Irmod.add_func g.m (Func.declare ~attrs fd.fname ~ret_ty ~params)
  | Some body ->
    let linkage = if fd.fstatic then Func.Internal else Func.External in
    let f = Func.make ~linkage ~attrs ~loc:fd.floc fd.fname ~ret_ty ~params in
    Irmod.add_func g.m f;
    let bld = Builder.create f in
    let entry = Builder.new_block bld "entry" in
    Builder.position_at_end bld entry;
    let ctx = if String.equal fd.fname "main" then Host else Device_fn in
    let fe =
      {
        g;
        bld;
        func = f;
        vars = SM.empty;
        frees = ref [];
        legacy_base = None;
        globalize = compute_globalize_set g body fd.fparams;
        legacy_offsets = SM.empty;
        brk = [];
        cont = [];
        ctx;
      }
    in
    let fe = setup_legacy_frame fe body fd.fparams in
    List.iteri
      (fun idx (cty, name) ->
        let addr = alloc_var fe name cty fd.floc in
        Builder.store fe.bld (irty_value cty) (Value.Arg idx) addr;
        bind fe name cty addr)
      fd.fparams;
    gen_stmt fe body;
    (* fall-off-the-end return *)
    emit_frees fe;
    (match f.Func.ret_ty with
    | Types.Void -> Builder.ret fe.bld None
    | _ -> Builder.ret fe.bld (Some (zero_of fd.fret)))

let run (opts : options) (prog : program) =
  let m = Irmod.create ~name:opts.module_name () in
  Devrt.Registry.declare_in m;
  if opts.scheme = Simplified then Glue.emit m;
  List.iter
    (fun (gd : global_def) ->
      Irmod.add_global m
        {
          Irmod.gname = gd.gname;
          gty = irty_storage gd.gty;
          gspace = Types.Global;
          ginit = None;
          glinkage = Func.External;
        })
    prog.globals;
  let fsigs =
    List.fold_left
      (fun acc fd -> SM.add fd.fname (fd.fret, List.map fst fd.fparams) acc)
      SM.empty prog.funcs
  in
  let global_tys =
    List.fold_left (fun acc (gd : global_def) -> SM.add gd.gname gd.gty acc) SM.empty
      prog.globals
  in
  let g =
    {
      m;
      opts;
      fsigs;
      global_tys;
      outlined_counter = Support.Util.Id_gen.create ();
      kernel_counter = Support.Util.Id_gen.create ();
    }
  in
  List.iter (compile_func g) prog.funcs;
  m

(* Convenience: parse and lower in one step. *)
let compile ?(scheme = Simplified) ~file src =
  let prog = Cparse.parse_program ~file src in
  run { scheme; module_name = file } prog

(* Deglobalization (Section IV-A): undo the front-end's conservative
   globalization in the middle-end.

   HeapToStack: a __kmpc_alloc_shared whose pointer provably never escapes to
   another thread and whose deallocation is always reached becomes a plain
   alloca (hoisted to the entry block).

   HeapToShared: a remaining allocation that is only ever executed by the
   main thread of a team is replaced by a statically allocated shared-memory
   global, and its deallocations are removed. *)

open Ir
(* stable identifier used by the Observe trace layer *)
let pass_name = "deglobalize"

type result = {
  mutable to_stack : int;
  mutable to_shared : int;
  mutable shared_bytes : int;
}

(* An upper bound on statically allocated shared memory, like the
   -openmp-opt-shared-limit flag upstream. *)
let shared_budget = 64 * 1024

let alloc_sites (f : Func.t) =
  Func.fold_instrs f ~init:[] ~g:(fun acc b i ->
      match i.Instr.kind with
      | Instr.Call (_, Instr.Direct "__kmpc_alloc_shared", [ size ]) -> (b, i, size) :: acc
      | _ -> acc)
  |> List.rev

let remove_frees (f : Func.t) reg =
  List.iter
    (fun b ->
      b.Block.instrs <-
        List.filter
          (fun (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Call (_, Instr.Direct "__kmpc_free_shared", args) ->
              not (List.exists (fun a -> Value.equal a (Value.Reg reg)) args)
            | _ -> true)
          b.Block.instrs)
    f.Func.blocks

(* Replace the allocation call by an entry-block alloca + spacecast carrying
   the original register id (so all uses stay valid). *)
let to_stack (f : Func.t) (b : Block.t) (i : Instr.t) size =
  let alloca_id = Func.fresh_reg f in
  let alloca =
    Instr.make ~loc:i.Instr.loc ~id:alloca_id (Instr.Alloca (Types.I8, max 1 size))
  in
  let cast =
    Instr.make ~loc:i.Instr.loc ~id:i.Instr.id
      (Instr.Cast (Instr.Spacecast, Types.Ptr Types.Generic, Value.Reg alloca_id))
  in
  b.Block.instrs <- List.filter (fun j -> j.Instr.id <> i.Instr.id) b.Block.instrs;
  let entry = Func.entry f in
  entry.Block.instrs <- alloca :: cast :: entry.Block.instrs;
  remove_frees f i.Instr.id

let to_shared (m : Irmod.t) (f : Func.t) (i : Instr.t) size =
  let gname = Irmod.fresh_name m (Printf.sprintf "%s_shared_glob" f.Func.name) in
  Irmod.add_global m
    {
      Irmod.gname;
      gty = Types.Arr (max 1 size, Types.I8);
      gspace = Types.Shared;
      ginit = None;
      glinkage = Func.Internal;
    };
  i.Instr.kind <-
    Instr.Cast (Instr.Spacecast, Types.Ptr Types.Generic, Value.Global gname);
  remove_frees f i.Instr.id

let run ?(heap_to_shared = true) (m : Irmod.t) (domains : Analysis.Exec_domain.t) (sink : Remark.sink) =
  let res = { to_stack = 0; to_shared = 0; shared_bytes = 0 } in
  let ctx = Analysis.Escape.create m in
  List.iter
    (fun f ->
      List.iter
        (fun (b, i, size_v) ->
          let size =
            match Value.as_int size_v with Some s -> Int64.to_int s | None -> -1
          in
          if size >= 0 then begin
            let escape = Analysis.Escape.pointer_escapes ctx f i in
            let freed =
              Analysis.Escape.free_always_reached f ~alloc:i
                ~free_name:"__kmpc_free_shared"
            in
            match escape with
            | Analysis.Escape.No_escape when freed ->
              to_stack f b i size;
              res.to_stack <- res.to_stack + 1;
              Remark.emit sink
                (Remark.make ~loc:i.Instr.loc ~func:f.Func.name 110)
            | _ -> (
              let domain = Analysis.Exec_domain.instr_domain domains f b in
              match domain with
              | Analysis.Exec_domain.Main_only
                when heap_to_shared && res.shared_bytes + size <= shared_budget ->
                to_shared m f i size;
                res.to_shared <- res.to_shared + 1;
                res.shared_bytes <- res.shared_bytes + size;
                Remark.emit sink
                  (Remark.make ~loc:i.Instr.loc ~func:f.Func.name 111
                     ~detail:(Printf.sprintf "%d bytes" size))
              | _ ->
                (* globalization stays: report it, with the reason *)
                Remark.emit sink
                  (Remark.make ~kind:Remark.Missed ~loc:i.Instr.loc ~func:f.Func.name
                     112);
                (match escape with
                | Analysis.Escape.Escapes reason ->
                  Remark.emit sink
                    (Remark.make ~kind:Remark.Missed ~loc:i.Instr.loc
                       ~func:f.Func.name 113 ~detail:reason)
                | Analysis.Escape.No_escape -> ()))
          end)
        (alloc_sites f))
    (Irmod.defined_funcs m);
  res

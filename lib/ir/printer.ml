(* Textual form of MiniIR.  [Parser] accepts exactly this syntax; the
   round-trip property is checked by the test suite. *)

open Fmt

let pp_callee ppf = function
  | Instr.Direct name -> pf ppf "@%s" name
  | Instr.Indirect v -> Value.pp ppf v

let pp_instr ppf (i : Instr.t) =
  let lhs ppf () = if Instr.has_result i then pf ppf "%%%d = " i.id else pf ppf "" in
  match i.kind with
  | Alloca (ty, n) -> pf ppf "%aalloca %a, %d" lhs () Types.pp ty n
  | Load (ty, p) -> pf ppf "%aload %a, %a" lhs () Types.pp ty Value.pp p
  | Store (ty, v, p) -> pf ppf "store %a %a, %a" Types.pp ty Value.pp v Value.pp p
  | Gep (ty, b, o) -> pf ppf "%agep %a, %a, %a" lhs () Types.pp ty Value.pp b Value.pp o
  | Bin (op, ty, a, b) ->
    pf ppf "%a%s %a %a, %a" lhs () (Instr.bin_name op) Types.pp ty Value.pp a Value.pp b
  | Icmp (cc, ty, a, b) ->
    pf ppf "%aicmp %s %a %a, %a" lhs () (Instr.icmp_name cc) Types.pp ty Value.pp a
      Value.pp b
  | Fcmp (cc, ty, a, b) ->
    pf ppf "%afcmp %s %a %a, %a" lhs () (Instr.fcmp_name cc) Types.pp ty Value.pp a
      Value.pp b
  | Cast (op, ty, v) -> pf ppf "%a%s %a, %a" lhs () (Instr.cast_name op) Types.pp ty Value.pp v
  | Select (ty, c, a, b) ->
    pf ppf "%aselect %a %a, %a, %a" lhs () Types.pp ty Value.pp c Value.pp a Value.pp b
  | Call (ty, callee, args) ->
    pf ppf "%acall %a %a(%a)" lhs () Types.pp ty pp_callee callee
      (list ~sep:(any ", ") Value.pp) args
  | Atomicrmw (op, ty, p, v) ->
    pf ppf "%aatomicrmw %s %a %a, %a" lhs () (Instr.atomic_name op) Types.pp ty Value.pp p
      Value.pp v

let pp_term ppf = function
  | Block.Ret None -> string ppf "ret"
  | Block.Ret (Some v) -> pf ppf "ret %a" Value.pp v
  | Block.Br l -> pf ppf "br %s" l
  | Block.Cbr (v, l1, l2) -> pf ppf "cbr %a, %s, %s" Value.pp v l1 l2
  | Block.Switch (v, cases, d) ->
    let pp_case ppf (c, l) = pf ppf "%Ld -> %s" c l in
    pf ppf "switch %a, [%a], %s" Value.pp v (list ~sep:(any ", ") pp_case) cases d
  | Block.Unreachable -> string ppf "unreachable"

let pp_block ppf (b : Block.t) =
  pf ppf "%s:@." b.label;
  List.iter (fun i -> pf ppf "  %a@." pp_instr i) b.instrs;
  pf ppf "  %a@." pp_term b.term

let pp_kernel_info ppf (k : Func.kernel_info) =
  let mode = match k.exec_mode with Func.Generic -> "generic" | Func.Spmd -> "spmd" in
  pf ppf " kernel(%s" mode;
  Option.iter (pf ppf ", teams=%d") k.num_teams;
  Option.iter (pf ppf ", threads=%d") k.num_threads;
  pf ppf ")"

let pp_attrs ppf = function
  | [] -> ()
  | attrs -> pf ppf " attrs(%a)" (list ~sep:(any ", ") (using Func.attr_name string)) attrs

let pp_params ppf params =
  let pp_param ppf (idx, (_, ty)) = pf ppf "%%arg%d : %a" idx Types.pp ty in
  list ~sep:(any ", ") pp_param ppf (List.mapi (fun i p -> (i, p)) params)

let pp_func ppf (f : Func.t) =
  if Func.is_declaration f then
    pf ppf "declare %a @%s(%a)%a@." Types.pp f.ret_ty f.name
      (list ~sep:(any ", ") Types.pp)
      (List.map snd f.params) pp_attrs f.attrs
  else begin
    pf ppf "define %s %a @%s(%a)" (Func.linkage_name f.linkage) Types.pp f.ret_ty f.name
      pp_params f.params;
    Option.iter (pp_kernel_info ppf) f.kernel;
    pp_attrs ppf f.attrs;
    pf ppf " {@.";
    List.iter (pp_block ppf) f.blocks;
    pf ppf "}@."
  end

let pp_global ppf (g : Irmod.global) =
  pf ppf "global %s @%s : %a in %s" (Func.linkage_name g.glinkage) g.gname Types.pp g.gty
    (Types.space_name g.gspace);
  (match g.ginit with
  | None -> pf ppf " = zeroinit"
  | Some c -> pf ppf " = %a" Value.pp_const c);
  pf ppf "@."

let pp_module ppf (m : Irmod.t) =
  pf ppf "module \"%s\"@.@." m.mname;
  List.iter (pp_global ppf) m.globals;
  if m.globals <> [] then pf ppf "@.";
  List.iter
    (fun f ->
      pp_func ppf f;
      pf ppf "@.")
    m.funcs

let func_to_string f = Fmt.str "%a" pp_func f
let module_to_string m = Fmt.str "%a" pp_module m
let instr_to_string i = Fmt.str "%a" pp_instr i

(* Golden report counters: lock what the full pipeline does to each proxy
   application at tiny scale.  A counter drifting is not necessarily a bug —
   but it must be a *decision*: update the golden below together with the
   change that moved it, and say why in the commit.

   The goldens use [Pass_manager.counters_of_report], so a newly added
   counter fails here until the tables are extended — by design. *)

let counters app_name =
  let app = Proxyapps.Apps.find_exn app_name in
  let src = app.Proxyapps.App.omp_source Proxyapps.App.Tiny in
  let m =
    Frontend.Codegen.compile ~scheme:Frontend.Codegen.Simplified
      ~file:(app_name ^ ".c") src
  in
  let report = Openmpopt.Pass_manager.run m in
  Helpers.verify m;
  Openmpopt.Pass_manager.counters_of_report report

let check_golden app_name golden () =
  let actual = counters app_name in
  if Sys.getenv_opt "GOLDEN_PRINT" <> None then begin
    Printf.eprintf "let golden_%s =\n  [\n" app_name;
    List.iter (fun (k, v) -> Printf.eprintf "    (%S, %d);\n" k v) actual;
    Printf.eprintf "  ]\n"
  end;
  Alcotest.(check (list (pair string int)))
    (app_name ^ " report counters") golden actual

(* Re-generate with:
     GOLDEN_PRINT=1 dune exec test/test_main.exe -- test report-golden
   and paste the printed lists below. *)

let golden_xsbench =
  [
    ("internalized", 0);
    ("heap_to_stack", 3);
    ("heap_to_shared", 0);
    ("shared_bytes", 0);
    ("spmdized", 0);
    ("guards", 0);
    ("custom_state_machines", 0);
    ("csm_fallbacks", 0);
    ("folds_exec_mode", 2);
    ("folds_parallel_level", 1);
    ("folds_thread_exec", 0);
    ("folds_launch_bounds", 3);
    ("deduplicated_calls", 0);
    ("dead_regions", 0);
  ]

let golden_rsbench =
  [
    ("internalized", 0);
    ("heap_to_stack", 7);
    ("heap_to_shared", 0);
    ("shared_bytes", 0);
    ("spmdized", 0);
    ("guards", 0);
    ("custom_state_machines", 0);
    ("csm_fallbacks", 0);
    ("folds_exec_mode", 2);
    ("folds_parallel_level", 1);
    ("folds_thread_exec", 0);
    ("folds_launch_bounds", 3);
    ("deduplicated_calls", 0);
    ("dead_regions", 0);
  ]

let golden_su3bench =
  [
    ("internalized", 0);
    ("heap_to_stack", 4);
    ("heap_to_shared", 3);
    ("shared_bytes", 20);
    ("spmdized", 1);
    ("guards", 4);
    ("custom_state_machines", 0);
    ("csm_fallbacks", 0);
    ("folds_exec_mode", 2);
    ("folds_parallel_level", 2);
    ("folds_thread_exec", 0);
    ("folds_launch_bounds", 3);
    ("deduplicated_calls", 3);
    ("dead_regions", 0);
  ]

let golden_miniqmc =
  [
    ("internalized", 0);
    ("heap_to_stack", 3);
    ("heap_to_shared", 18);
    ("shared_bytes", 264);
    ("spmdized", 1);
    ("guards", 18);
    ("custom_state_machines", 0);
    ("csm_fallbacks", 0);
    ("folds_exec_mode", 2);
    ("folds_parallel_level", 2);
    ("folds_thread_exec", 0);
    ("folds_launch_bounds", 3);
    ("deduplicated_calls", 17);
    ("dead_regions", 0);
  ]

let suite =
  [
    Alcotest.test_case "xsbench" `Quick (check_golden "xsbench" golden_xsbench);
    Alcotest.test_case "rsbench" `Quick (check_golden "rsbench" golden_rsbench);
    Alcotest.test_case "su3bench" `Quick (check_golden "su3bench" golden_su3bench);
    Alcotest.test_case "miniqmc" `Quick (check_golden "miniqmc" golden_miniqmc);
  ]

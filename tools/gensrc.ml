(* Dump a proxy application's MiniOMP source:

     gensrc [<app>] [tiny|bench] [omp|cuda]

   Defaults: xsbench, tiny, omp.  Unknown arguments are a usage error
   (exit 2) — silently falling back to a default would hand a script the
   wrong source with no indication anything was misspelled. *)

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("gensrc: " ^ s);
      prerr_endline "usage: gensrc [<app>] [tiny|bench] [omp|cuda]";
      exit 2)
    fmt

let arg i default = if Array.length Sys.argv > i then Sys.argv.(i) else default

let () =
  if Array.length Sys.argv > 4 then die "too many arguments";
  let app_name = arg 1 "xsbench" in
  let app =
    match Proxyapps.Apps.find app_name with
    | Some app -> app
    | None ->
      die "unknown app %S (known: %s)" app_name
        (String.concat ", "
           (List.map (fun (a : Proxyapps.App.t) -> a.Proxyapps.App.name)
              Proxyapps.Apps.all))
  in
  let scale =
    match arg 2 "tiny" with
    | "tiny" -> Proxyapps.App.Tiny
    | "bench" -> Proxyapps.App.Bench
    | s -> die "unknown scale %S (expected tiny or bench)" s
  in
  print_string
    (match arg 3 "omp" with
    | "omp" -> app.Proxyapps.App.omp_source scale
    | "cuda" -> app.Proxyapps.App.cuda_source scale
    | v -> die "unknown variant %S (expected omp or cuda)" v)

(** Module verifier: structural well-formedness plus a type check and a
    defs-dominate-uses check.  Run by the test suite after every front-end
    lowering and every optimizer pass. *)

exception Invalid of string

val verify_func : Irmod.t -> Func.t -> unit
(** @raise Invalid describing the first violation. *)

val verify_module : Irmod.t -> unit

val check : Irmod.t -> (unit, string) result
(** Wrapper around [verify_module] returning a result. *)

(* The RSBench out-of-memory story (paper Section V-C / Fig. 11b).

   Without HeapToStack, the paper's simplified globalization makes every
   thread allocate its seven locals from the device heap on every lookup;
   at scale this exhausts the heap (the paper: "resulting in an
   out-of-memory (OOM) error, or, with an increased heap-size
   (LIBOMPTARGET_HEAP_SIZE), tremendous slowdowns").  This demo reproduces
   all three outcomes: OOM, bigger-heap-but-slow, and optimized.

     dune exec examples/oom_demo.exe *)

let app = Proxyapps.Apps.find_exn "rsbench"

let measure label machine config =
  let m = Harness.Runner.run ~machine ~scale:Proxyapps.App.Bench app config in
  (match m.Harness.Runner.outcome with
  | Harness.Runner.Ok x ->
    Fmt.pr "  %-42s %10d cycles   heap high-water %6d KB@." label x.Harness.Runner.cycles
      (x.Harness.Runner.heap_high_water / 1024)
  | Harness.Runner.Err { Fault.Ompgpu_error.kind = Fault.Ompgpu_error.Oom; message; _ } ->
    Fmt.pr "  %-42s OOM (%s)@." label message
  | Harness.Runner.Err e -> Fmt.pr "  %-42s ERROR %s@." label (Fault.Ompgpu_error.to_string e));
  m

let () =
  let default = Gpusim.Machine.bench_machine in
  let big_heap =
    {
      default with
      Gpusim.Machine.name = "bench+heap";
      heap_bytes = 8 * default.Gpusim.Machine.heap_bytes;
    }
  in
  Fmt.pr "== RSBench, default device heap (%d KB) ==@."
    (default.Gpusim.Machine.heap_bytes / 1024);
  ignore (measure "No OpenMP Optimization" default Harness.Config.no_opt);
  ignore (measure "LLVM Dev 0 (HeapToStack fires)" default Harness.Config.dev0);
  Fmt.pr "@.== the LIBOMPTARGET_HEAP_SIZE workaround: 8x heap ==@.";
  let slow = measure "No OpenMP Optimization" big_heap Harness.Config.no_opt in
  let fast = measure "LLVM Dev 0" big_heap Harness.Config.dev0 in
  (match (slow.Harness.Runner.outcome, fast.Harness.Runner.outcome) with
  | Harness.Runner.Ok s, Harness.Runner.Ok f ->
    Fmt.pr "@.the unoptimized build now runs — %.1fx slower than the optimized one@."
      (float_of_int s.Harness.Runner.cycles /. float_of_int f.Harness.Runner.cycles)
  | _ -> ());
  Fmt.pr
    "@.HeapToStack turns the per-thread runtime allocations back into registers/stack,@.\
     removing both the footprint and the allocation traffic (Fig. 11b: 13.21x).@."

(* Work-stealing domain pool, lock-striped.

   Each worker owns an array-backed ring deque guarded by its own stripe
   lock; the hot path (push a job / pop a job) touches exactly one stripe
   mutex and a handful of atomics.  A single small "gate" mutex exists only
   for parking and waking — its critical sections are a few loads, never a
   deque operation.  Owners pop newest-first from their own deque
   (locality: a just-submitted batch stays warm), thieves take the oldest
   job of a victim (the one the owner would reach last).

   Oversubscription control: spawning more domains than the machine has
   cores is catastrophic under OCaml 5's stop-the-world minor GC — every
   runnable mutator domain lengthens every GC synchronization.  The pool
   therefore runs at most [active] workers (default: the runtime's
   recommended domain count, clamped to [domains]); the remaining workers
   are *reserves* that park immediately and cost nothing.  A reserve is
   engaged by {!boost} — called from [await_timeout]'s poll loop, i.e.
   exactly when a supervisor observes a job overstaying its watchdog while
   queued work exists.  A blocked primary therefore cannot stall a guarded
   batch (the reserve picks the queue up within one 5ms poll), yet an
   unguarded batch on a loaded single-core host never thrashes.

   Wakeup correctness is epoch-based: submitters push, then bump [epoch],
   then signal if anyone is parked; a worker records the epoch *before*
   scanning and re-checks it (after registering itself idle, under the
   gate) before sleeping.  Atomics are sequentially consistent, so either
   the re-check sees the bump or the submitter sees the idle registration
   — a missed wakeup is impossible. *)

(* Jobs erase their result type: the closure fulfils its own future. *)
type job = unit -> unit

(* A fixed-capacity growable ring deque.  All operations on one ring run
   under its stripe lock. *)
module Ring = struct
  type t = {
    mutable buf : job array;
    mutable head : int;  (* index of oldest *)
    mutable len : int;
  }

  let dummy : job = fun () -> ()
  let create cap = { buf = Array.make (max 4 cap) dummy; head = 0; len = 0 }

  let grow r =
    let cap = Array.length r.buf in
    let buf = Array.make (2 * cap) dummy in
    for k = 0 to r.len - 1 do
      buf.(k) <- r.buf.((r.head + k) mod cap)
    done;
    r.buf <- buf;
    r.head <- 0

  let push_newest r x =
    if r.len = Array.length r.buf then grow r;
    r.buf.((r.head + r.len) mod Array.length r.buf) <- x;
    r.len <- r.len + 1

  let pop_newest r =
    if r.len = 0 then None
    else begin
      r.len <- r.len - 1;
      let i = (r.head + r.len) mod Array.length r.buf in
      let x = r.buf.(i) in
      r.buf.(i) <- dummy;
      Some x
    end

  let pop_oldest r =
    if r.len = 0 then None
    else begin
      let x = r.buf.(r.head) in
      r.buf.(r.head) <- dummy;
      r.head <- (r.head + 1) mod Array.length r.buf;
      r.len <- r.len - 1;
      Some x
    end
end

type stripe = { lock : Mutex.t; ring : Ring.t }

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type stats = {
  submitted : int;
  executed : int;
  stolen : int;
  max_pending : int;
  waits : int;
  boosts : int;
}

type t = {
  stripes : stripe array;
  queue_capacity : int;
  active : int;  (* workers 0..active-1 run eagerly; the rest are reserves *)
  gate : Mutex.t;  (* parking/waking only — never held around deque ops *)
  work_cond : Condition.t;  (* primaries park here *)
  reserve_cond : Condition.t;  (* reserves park here, woken by [boost] *)
  space_cond : Condition.t;  (* submitters park here under backpressure *)
  epoch : int Atomic.t;  (* bumped after every push; anti-lost-wakeup *)
  pending : int Atomic.t;  (* queued, not yet started *)
  cursor : int Atomic.t;  (* round-robin submission cursor *)
  idle_primaries : int Atomic.t;
  parked_reserves : int Atomic.t;
  space_waiters : int Atomic.t;
  submitted : int Atomic.t;
  executed : int Atomic.t;
  stolen : int Atomic.t;
  max_pending : int Atomic.t;
  waits : int Atomic.t;
  boosts : int Atomic.t;
  mutable stop : bool;  (* written under [gate] *)
  mutable workers : unit Domain.t list;  (* mutated under [gate] *)
  mutable spawned_reserves : int;  (* reserves are spawned lazily, under [gate] *)
}

type 'a future = {
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable fstate : 'a state;
  fpool : t;  (* lets [await_timeout] engage a reserve on overstay *)
}

let domain_count t = Array.length t.stripes
let active_limit t = t.active

(* The index of the pool worker running the current domain, if any; lets a
   job bind per-worker resources (e.g. a scratch arena) race-free. *)
let ix_key = Domain.DLS.new_key (fun () -> None)
let worker_index () = Domain.DLS.get ix_key

let update_max cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

(* Take a job for worker [i]: own deque newest-first, then steal the oldest
   job from the first non-empty sibling.  Locks one stripe at a time. *)
let try_take t i =
  let own = t.stripes.(i) in
  Mutex.lock own.lock;
  let mine = Ring.pop_newest own.ring in
  Mutex.unlock own.lock;
  match mine with
  | Some _ -> mine
  | None ->
    let n = Array.length t.stripes in
    let rec scan k =
      if k = n then None
      else begin
        let victim = t.stripes.((i + k) mod n) in
        Mutex.lock victim.lock;
        let got = Ring.pop_oldest victim.ring in
        Mutex.unlock victim.lock;
        match got with
        | Some _ ->
          Atomic.incr t.stolen;
          got
        | None -> scan (k + 1)
      end
    in
    scan 1

let took_one t =
  Atomic.decr t.pending;
  if Atomic.get t.space_waiters > 0 then begin
    Mutex.lock t.gate;
    Condition.broadcast t.space_cond;
    Mutex.unlock t.gate
  end

(* Run one queued job on the calling domain, if any.  Used by [await]
   (work-stealing join: an awaiter executes the queue instead of blocking)
   and by backpressured submitters (the producer becomes a consumer), which
   is also what keeps a pool with zero eager workers live. *)
let help_one t =
  match try_take t 0 with
  | Some job ->
    took_one t;
    job ();
    true
  | None -> false

(* Primary worker: scan, run, park on empty.  The epoch is read before the
   scan; see the module comment for why sleeping is then safe. *)
let worker_minor_heap_words = 1 lsl 22  (* 4M words = 32MB nursery *)

(* Batch jobs allocate tens of MB each; every nursery fill is a
   stop-the-world handshake with every live domain.  Workers therefore run
   with a large nursery (the server-GC trade: latency for throughput) —
   jobs see ~an order of magnitude fewer STW pauses.  Only the worker
   domain's own nursery grows; the main domain keeps its default. *)
let set_worker_gc () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = worker_minor_heap_words }

let worker_loop t i =
  Domain.DLS.set ix_key (Some i);
  set_worker_gc ();
  let rec run () =
    let e = Atomic.get t.epoch in
    match try_take t i with
    | Some job ->
      took_one t;
      job ();
      run ()
    | None ->
      Mutex.lock t.gate;
      if t.stop then Mutex.unlock t.gate
      else begin
        Atomic.incr t.idle_primaries;
        if Atomic.get t.epoch <> e then begin
          Atomic.decr t.idle_primaries;
          Mutex.unlock t.gate;
          run ()
        end
        else begin
          Atomic.incr t.waits;
          Condition.wait t.work_cond t.gate;
          Atomic.decr t.idle_primaries;
          Mutex.unlock t.gate;
          run ()
        end
      end
  in
  run ()

(* Reserve worker: spawned lazily by the first [boost] that finds no parked
   reserve (an idle domain is not free — every minor-GC stop-the-world must
   handshake it, which on a loaded single-core host is a context switch per
   collection).  Once alive it drains until a scan comes up dry, then parks
   on [reserve_cond]; later boosts wake it.  A boost with no reserve
   available is dropped — the next watchdog poll retries, so liveness is
   kept by the 5ms poll cadence. *)
let reserve_loop t i =
  Domain.DLS.set ix_key (Some i);
  set_worker_gc ();
  let rec park () =
    Mutex.lock t.gate;
    if t.stop then Mutex.unlock t.gate
    else begin
      Atomic.incr t.parked_reserves;
      Atomic.incr t.waits;
      Condition.wait t.reserve_cond t.gate;
      Atomic.decr t.parked_reserves;
      Mutex.unlock t.gate;
      engaged ()
    end
  and engaged () =
    match try_take t i with
    | Some job ->
      took_one t;
      job ();
      engaged ()
    | None -> park ()
  in
  engaged ()

(* One fewer eager worker than the machine has cores: the awaiting caller
   helps execute the queue (see [await]), so it occupies the last slot
   itself.  On a single-core host this means ZERO worker domains — the
   whole batch runs on the caller, and no stop-the-world handshake ever
   involves a second domain. *)
let default_active ~domains =
  min domains (max 0 (Domain.recommended_domain_count () - 1))

let create ?queue_capacity ?active ~domains () =
  let domains = max 1 domains in
  let queue_capacity =
    match queue_capacity with Some c -> max 1 c | None -> 4 * domains
  in
  let active =
    match active with
    | Some a -> max 0 (min domains a)
    | None -> default_active ~domains
  in
  let t =
    {
      stripes =
        Array.init domains (fun _ ->
            { lock = Mutex.create (); ring = Ring.create 16 });
      queue_capacity;
      active;
      gate = Mutex.create ();
      work_cond = Condition.create ();
      reserve_cond = Condition.create ();
      space_cond = Condition.create ();
      epoch = Atomic.make 0;
      pending = Atomic.make 0;
      cursor = Atomic.make 0;
      idle_primaries = Atomic.make 0;
      parked_reserves = Atomic.make 0;
      space_waiters = Atomic.make 0;
      submitted = Atomic.make 0;
      executed = Atomic.make 0;
      stolen = Atomic.make 0;
      max_pending = Atomic.make 0;
      waits = Atomic.make 0;
      boosts = Atomic.make 0;
      stop = false;
      workers = [];
      spawned_reserves = 0;
    }
  in
  t.workers <-
    List.init active (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let boost t =
  if Atomic.get t.pending > 0 then begin
    if Atomic.get t.parked_reserves > 0 then begin
      Atomic.incr t.boosts;
      Mutex.lock t.gate;
      Condition.signal t.reserve_cond;
      Mutex.unlock t.gate
    end
    else if t.spawned_reserves < domain_count t - t.active then begin
      Mutex.lock t.gate;
      if (not t.stop) && t.spawned_reserves < domain_count t - t.active then begin
        let i = t.active + t.spawned_reserves in
        t.spawned_reserves <- t.spawned_reserves + 1;
        Atomic.incr t.boosts;
        t.workers <- Domain.spawn (fun () -> reserve_loop t i) :: t.workers
      end;
      Mutex.unlock t.gate
    end
  end

let fulfil fut result =
  Mutex.lock fut.fmutex;
  fut.fstate <- result;
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.fmutex

(* Reserve a queue slot; blocks under backpressure.  Registering as a
   space-waiter before re-checking [pending] mirrors the worker-side
   epoch protocol: either the re-check sees the freed slot or the worker
   sees the waiter and broadcasts. *)
let reserve_slot t =
  let rec attempt () =
    let old = Atomic.fetch_and_add t.pending 1 in
    if old < t.queue_capacity then update_max t.max_pending (old + 1)
    else begin
      Atomic.decr t.pending;
      (* full queue: run one queued job right here rather than waiting for
         a worker to drain it *)
      if help_one t then attempt ()
      else begin
        Mutex.lock t.gate;
        Atomic.incr t.space_waiters;
        if Atomic.get t.pending >= t.queue_capacity then
          Condition.wait t.space_cond t.gate;
        Atomic.decr t.space_waiters;
        Mutex.unlock t.gate;
        attempt ()
      end
    end
  in
  attempt ()

let submit t f =
  if t.stop then invalid_arg "Sched.Pool.submit: pool is shut down";
  let fut =
    { fmutex = Mutex.create (); fcond = Condition.create (); fstate = Pending; fpool = t }
  in
  (* [executed] is bumped before the future is fulfilled, so any stats read
     that follows an [await] of this job already counts it. *)
  let job () =
    let result =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Atomic.incr t.executed;
    fulfil fut result
  in
  reserve_slot t;
  let stripe =
    t.stripes.(Atomic.fetch_and_add t.cursor 1 mod Array.length t.stripes)
  in
  Mutex.lock stripe.lock;
  Ring.push_newest stripe.ring job;
  Mutex.unlock stripe.lock;
  Atomic.incr t.submitted;
  Atomic.incr t.epoch;
  if Atomic.get t.idle_primaries > 0 then begin
    Mutex.lock t.gate;
    Condition.signal t.work_cond;
    Mutex.unlock t.gate
  end;
  fut

(* Work-stealing join: while the future is unresolved and the queue is
   non-empty, the awaiter executes jobs itself.  If its scan comes up dry
   while the future is still pending, the future's own job must already be
   running on some other domain (a queued job would have been found), so
   blocking on the future's condition is safe. *)
let await fut =
  let t = fut.fpool in
  let rec go () =
    Mutex.lock fut.fmutex;
    let st = fut.fstate in
    Mutex.unlock fut.fmutex;
    match st with
    | Pending -> if help_one t then go () else block ()
    | st -> settle st
  and block () =
    Mutex.lock fut.fmutex;
    while fut.fstate = Pending do
      Condition.wait fut.fcond fut.fmutex
    done;
    let st = fut.fstate in
    Mutex.unlock fut.fmutex;
    settle st
  and settle = function
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending -> assert false
  in
  go ()

(* OCaml's Condition has no timed wait, so the watchdog polls.  The poll
   interval (5ms) is invisible against jobs that run for milliseconds to
   seconds; only awaits that actually hit their deadline pay it.  Each
   miss also [boost]s the pool: an unsettled future plus queued work is
   precisely the signature of a stalled worker, so a reserve is engaged. *)
let watchdog_poll_s = 0.005

let await_timeout fut ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec loop () =
    Mutex.lock fut.fmutex;
    let st = fut.fstate in
    Mutex.unlock fut.fmutex;
    match st with
    | Done v -> Some v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending ->
      if Unix.gettimeofday () >= deadline then None
      else begin
        boost fut.fpool;
        Unix.sleepf watchdog_poll_s;
        loop ()
      end
  in
  loop ()

(* Split [xs] into groups of [chunk], keeping order. *)
let chunks_of chunk xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = chunk then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

(* Results come back in input order regardless of execution interleaving:
   the futures list is built in order and awaited in order. *)
let map_list t ?(chunk = 1) f xs =
  if chunk <= 1 then begin
    let futures = List.map (fun x -> submit t (fun () -> f x)) xs in
    List.map await futures
  end
  else begin
    (* coarsen tiny jobs: one pool job maps a whole chunk, amortizing the
       submit/steal/wake cost; order is preserved chunk-wise and in-chunk *)
    let futures =
      List.map
        (fun group -> submit t (fun () -> List.map f group))
        (chunks_of chunk xs)
    in
    List.concat_map await futures
  end

let default_transient = function
  | Fault.Ompgpu_error.Error err -> Fault.Ompgpu_error.is_transient err
  | _ -> false

let map_list_guarded t ?watchdog_s ?(retries = 0) ?(backoff_s = 0.05)
    ?(is_transient = default_transient) f xs =
  let submit_attempt n x = submit t (fun () -> f ~attempt:n x) in
  (* first attempts are all in flight before any await: full parallelism on
     the happy path; retries are submitted on demand as failures surface *)
  let futures = List.map (submit_attempt 0) xs in
  let rec settle n x fut =
    let outcome =
      match watchdog_s with
      | None -> (
        match await fut with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      | Some seconds -> (
        match await_timeout fut ~seconds with
        | Some v -> Ok v
        | None ->
          (* the stalled job keeps its domain until it returns on its own;
             its eventual result is discarded *)
          let err =
            Fault.Ompgpu_error.make
              (Fault.Ompgpu_error.Timeout { seconds })
              ~phase:Fault.Ompgpu_error.Scheduling
              (Printf.sprintf "job exceeded its %gs watchdog (attempt %d)" seconds
                 (n + 1))
          in
          Error (Fault.Ompgpu_error.Error err, Printexc.get_callstack 0)
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    match outcome with
    | Ok v -> Ok v
    | Error (e, _) when n < retries && is_transient e ->
      Unix.sleepf (backoff_s *. float_of_int (1 lsl n));
      settle (n + 1) x (submit_attempt (n + 1) x)
    | Error _ as failed -> failed
  in
  List.map2 (settle 0) xs futures

let stats t =
  {
    submitted = Atomic.get t.submitted;
    executed = Atomic.get t.executed;
    stolen = Atomic.get t.stolen;
    max_pending = Atomic.get t.max_pending;
    waits = Atomic.get t.waits;
    boosts = Atomic.get t.boosts;
  }

let shutdown t =
  Mutex.lock t.gate;
  if t.stop then Mutex.unlock t.gate
  else begin
    t.stop <- true;
    Condition.broadcast t.work_cond;
    Condition.broadcast t.reserve_cond;
    Condition.broadcast t.space_cond;
    let workers = t.workers in
    t.workers <- [];
    Mutex.unlock t.gate;
    List.iter Domain.join workers;
    (* drain anything still queued (a parked worker re-checks [stop] before
       sleeping, so by here every worker has exited; late-queued jobs run
       on the caller, preserving the drain-then-join contract) *)
    let rec drain i =
      match try_take t i with
      | Some job ->
        took_one t;
        job ();
        drain i
      | None -> ()
    in
    drain 0
  end

let with_pool ?queue_capacity ?active ~domains f =
  let t = create ?queue_capacity ?active ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Deterministic fault injection (see the .mli). *)

type site =
  | Mem_alloc
  | Shared_budget
  | Sim_trap
  | Pass_crash
  | Cache_corrupt
  | Disk_full
  | Pool_stall
  | Conn_drop
  | Partial_frame
  | Slow_client
  | Daemon_kill
  | Shard_down
  | Probe_timeout
  | Ring_skew

let all_sites =
  [
    Mem_alloc;
    Shared_budget;
    Sim_trap;
    Pass_crash;
    Cache_corrupt;
    Disk_full;
    Pool_stall;
    Conn_drop;
    Partial_frame;
    Slow_client;
    Daemon_kill;
    Shard_down;
    Probe_timeout;
    Ring_skew;
  ]

let site_name = function
  | Mem_alloc -> "mem-alloc"
  | Shared_budget -> "shared-budget"
  | Sim_trap -> "sim-trap"
  | Pass_crash -> "pass-crash"
  | Cache_corrupt -> "cache-corrupt"
  | Disk_full -> "disk-full"
  | Pool_stall -> "pool-stall"
  | Conn_drop -> "conn-drop"
  | Partial_frame -> "partial-frame"
  | Slow_client -> "slow-client"
  | Daemon_kill -> "daemon-kill"
  | Shard_down -> "shard-down"
  | Probe_timeout -> "probe-timeout"
  | Ring_skew -> "ring-skew"

let site_of_name s = List.find_opt (fun x -> site_name x = s) all_sites

type spec = { site : site; rate : float; seed : int }

let parse_spec s =
  match String.split_on_char ':' s with
  | [] | [ "" ] -> Error "empty injection spec"
  | name :: rest -> (
    match site_of_name name with
    | None ->
      Error
        (Printf.sprintf "unknown injection site %S (known: %s)" name
           (String.concat ", " (List.map site_name all_sites)))
    | Some site -> (
      let rate_of s =
        match float_of_string_opt s with
        | Some r when r >= 0.0 && r <= 1.0 -> Ok r
        | _ -> Error (Printf.sprintf "bad rate %S (want a float in [0,1])" s)
      in
      let seed_of s =
        match int_of_string_opt s with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "bad seed %S (want an integer)" s)
      in
      match rest with
      | [] -> Ok { site; rate = 1.0; seed = 0 }
      | [ r ] -> Result.map (fun rate -> { site; rate; seed = 0 }) (rate_of r)
      | [ r; s ] ->
        Result.bind (rate_of r) (fun rate ->
            Result.map (fun seed -> { site; rate; seed }) (seed_of s))
      | _ -> Error (Printf.sprintf "malformed injection spec %S (site[:rate][:seed])" s)))

let spec_to_string { site; rate; seed } =
  Printf.sprintf "%s:%g:%d" (site_name site) rate seed

(* One armed site: the spec plus its query counter.  The counter is the only
   mutable state; Atomic keeps [fire] safe to call from pool domains. *)
type armed = { spec : spec; counter : int Atomic.t }

type t = armed list  (* empty = none *)

let none = []
let is_none t = t = []
let create specs = List.map (fun spec -> { spec; counter = Atomic.make 0 }) specs
let specs t = List.map (fun a -> a.spec) t

(* splitmix64: the standard 64-bit finalizer; full avalanche, so consecutive
   counters give independent-looking coins. *)
let splitmix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let site_tag site = Int64.of_int (1 + Hashtbl.hash (site_name site))

let coin ~seed ~site ~n =
  let h = splitmix64 (Int64.logxor (Int64.of_int seed) (site_tag site)) in
  let h = splitmix64 (Int64.logxor h (Int64.of_int n)) in
  (* top 53 bits → uniform float in [0,1) *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let fire t site =
  match List.find_opt (fun a -> a.spec.site = site) t with
  | None -> false
  | Some a ->
    let n = Atomic.fetch_and_add a.counter 1 in
    coin ~seed:a.spec.seed ~site ~n < a.spec.rate

let derive t tag =
  let tag64 = splitmix64 (Int64.of_int (Hashtbl.hash tag)) in
  create
    (List.map
       (fun a ->
         let seed64 = splitmix64 (Int64.logxor (Int64.of_int a.spec.seed) tag64) in
         { a.spec with seed = Int64.to_int (Int64.shift_right_logical seed64 1) })
       t)

let fingerprint t =
  match t with
  | [] -> ""
  | _ -> String.concat ";" (List.sort compare (List.map (fun a -> spec_to_string a.spec) t))

let stall_seconds = 0.25

let stall t = if fire t Pool_stall then Unix.sleepf stall_seconds

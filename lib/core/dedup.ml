(* Two auxiliary OpenMPOpt transformations from the upstream implementation:

   - Runtime-call deduplication (OMP170): repeated calls to side-effect-free
     device runtime queries whose result cannot change during the kernel
     (thread id, team id, launch bounds, execution mode) are deduplicated:
     later calls are replaced by the value of a dominating earlier call.

   - Dead parallel-region elimination (OMP160): a __kmpc_parallel_51 whose
     outlined region has no observable side effects is removed entirely,
     together with its argument-buffer setup when that becomes dead. *)

open Ir
module SS = Support.Util.String_set
(* stable identifier used by the Observe trace layer *)
let pass_name = "dedup"

(* Queries that return the same value on every call within one kernel
   execution for a fixed thread. *)
let dedupable_queries =
  SS.of_list
    [
      "__gpu_thread_id"; "__gpu_num_threads"; "__gpu_team_id"; "__gpu_num_teams";
      "__kmpc_is_spmd_exec_mode"; "__kmpc_get_warp_size";
      "__kmpc_get_hardware_num_threads"; "omp_get_thread_num"; "omp_get_num_threads";
      "omp_get_team_num"; "omp_get_num_teams";
    ]

(* Deduplicate within a function: a call in block B replaces a later call to
   the same query in any block dominated by B (including B itself). *)
let dedup_calls_in_func (f : Func.t) =
  if Func.is_declaration f then 0
  else begin
    let cfg = Cfg.compute f in
    let dom = Cfg.dominators cfg in
    (* first occurrence per query: (block label, index, instr) *)
    let first : (string, string * int * Instr.t) Hashtbl.t = Hashtbl.create 8 in
    let removed = ref 0 in
    List.iter
      (fun b ->
        List.iteri
          (fun idx (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Call (_, Instr.Direct name, [])
              when SS.mem name dedupable_queries -> (
              match Hashtbl.find_opt first name with
              | None -> Hashtbl.replace first name (b.Block.label, idx, i)
              | Some (dlabel, didx, def) ->
                let dominates =
                  if String.equal dlabel b.Block.label then didx < idx
                  else Cfg.dominates dom ~by:dlabel b.Block.label
                in
                if dominates then begin
                  Func.replace_uses f ~old_v:(Value.Reg i.Instr.id)
                    ~new_v:(Value.Reg def.Instr.id);
                  b.Block.instrs <-
                    List.filter (fun j -> j.Instr.id <> i.Instr.id) b.Block.instrs;
                  incr removed
                end)
            | _ -> ())
          b.Block.instrs)
      (Cfg.blocks_in_order cfg);
    !removed
  end

let dedup_runtime_calls (m : Irmod.t) (sink : Remark.sink) =
  List.fold_left
    (fun acc f ->
      let n = dedup_calls_in_func f in
      if n > 0 then
        Remark.emit sink
          (Remark.make ~loc:f.Func.loc ~func:f.Func.name 170
             ~detail:(Printf.sprintf "%d calls" n));
      acc + n)
    0 (Irmod.defined_funcs m)

(* ------------------------------------------------------------------ *)
(* Dead parallel-region elimination                                    *)
(* ------------------------------------------------------------------ *)

(* Does the outlined region function (transitively) perform any observable
   side effect?  Loads are not observable; stores, atomics, tracing,
   allocation, nested parallelism and unknown calls are. *)
let rec region_has_effects (m : Irmod.t) seen (f : Func.t) =
  if SS.mem f.Func.name seen then false
  else begin
    let seen = SS.add f.Func.name seen in
    Func.fold_instrs f ~init:false ~g:(fun acc _ i ->
        acc
        ||
        match i.Instr.kind with
        | Instr.Store (_, _, ptr) -> (
          (* stores to provably-private allocas are invisible outside *)
          match ptr with
          | Value.Reg r -> (
            match Func.def_of f r with
            | Some { Instr.kind = Instr.Alloca _; _ } -> false
            | _ -> true)
          | _ -> true)
        | Instr.Atomicrmw _ -> true
        | Instr.Call (_, Instr.Indirect _, _) -> true
        | Instr.Call (_, Instr.Direct callee, _) -> (
          match Devrt.Registry.lookup callee with
          | Some r -> (
            match r.Devrt.Registry.rt_effect with
            | Devrt.Registry.Eff_none -> false
            | Devrt.Registry.Eff_sync -> false  (* sync alone is unobservable *)
            | Devrt.Registry.Eff_alloc | Devrt.Registry.Eff_free -> false
            | Devrt.Registry.Eff_parallel | Devrt.Registry.Eff_other -> true)
          | None -> (
            match Irmod.find_func m callee with
            | Some g when not (Func.is_declaration g) -> region_has_effects m seen g
            | Some _ | None -> true))
        | _ -> false)
  end

let delete_dead_regions (m : Irmod.t) (sink : Remark.sink) =
  let deleted = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          b.Block.instrs <-
            List.filter
              (fun (i : Instr.t) ->
                match i.Instr.kind with
                | Instr.Call (_, Instr.Direct "__kmpc_parallel_51",
                              Value.Func region :: _) -> (
                  match Irmod.find_func m region with
                  | Some rf
                    when (not (Func.is_declaration rf))
                         && not (region_has_effects m SS.empty rf) ->
                    incr deleted;
                    Remark.emit sink
                      (Remark.make ~loc:i.Instr.loc ~func:f.Func.name 160
                         ~detail:("@" ^ region));
                    false
                  | _ -> true)
                | _ -> true)
              b.Block.instrs)
        f.Func.blocks)
    (Irmod.defined_funcs m);
  !deleted

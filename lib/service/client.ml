module E = Fault.Ompgpu_error

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  peer : string;  (* the socket path, so transport errors name the shard *)
  mutable closed : bool;
}

let connect ?deadline_s ~socket_path () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_UNIX socket_path);
     match deadline_s with
     | Some s when s > 0. ->
       (* the deadline is per blocking syscall, which upper-bounds each
          request round-trip: a wedged daemon turns into a timed-out read
          (a transient transport error), not a hung client *)
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
     | _ -> ()
   with e ->
     Unix.close fd;
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    peer = socket_path;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try flush t.oc with Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_connection ~socket_path f =
  let t = connect ~socket_path () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* Every transport breakdown names the peer it was observed against
   ([E.t.peer]), so a fleet-mode failure says *which* shard, not just
   "daemon unreachable". *)
let transport_error ~peer fmt =
  Printf.ksprintf (fun m -> Error (E.make E.Internal ~phase:E.Serving ~peer m)) fmt

let roundtrip_json t j =
  match
    Protocol.write_message t.oc j;
    Protocol.read_message t.ic
  with
  | `Eof -> transport_error ~peer:t.peer "connection closed before a response arrived"
  | `Overflow e | `Msg (Error e) -> Error e
  | `Msg (Ok reply) -> Ok reply
  | exception Sys_error msg ->
    (* a timed-out or reset socket read/write; the stream can no longer be
       resynchronized, so the caller must reconnect *)
    transport_error ~peer:t.peer "transport failure: %s" msg
  | exception Sys_blocked_io ->
    (* the per-request deadline (SO_RCVTIMEO) fired mid-read *)
    transport_error ~peer:t.peer "request deadline exceeded waiting for the daemon"
  | exception End_of_file ->
    transport_error ~peer:t.peer "connection closed before a response arrived"

let roundtrip t request =
  match roundtrip_json t (Protocol.request_to_json request) with
  | Error e -> Error e
  | Ok j -> (
    match Protocol.response_of_json j with
    | Ok r -> Ok r
    | Error msg -> transport_error ~peer:t.peer "undecodable response: %s" msg)

(* A [Rejected] response is the daemon speaking the taxonomy; surface its
   error directly.  Any other unexpected shape is a protocol breakdown. *)
let rejected_or_mismatch ~peer ~expected = function
  | Protocol.Rejected { error; _ } -> Error error
  | Protocol.Compiled _ ->
    transport_error ~peer "expected a %s reply, got a compile result" expected
  | Protocol.Stats_reply _ -> transport_error ~peer "expected a %s reply, got stats" expected
  | Protocol.Health_reply _ -> transport_error ~peer "expected a %s reply, got health" expected
  | Protocol.Fleet_reply _ ->
    transport_error ~peer "expected a %s reply, got a fleet document" expected
  | Protocol.Shutdown_ack _ ->
    transport_error ~peer "expected a %s reply, got a shutdown acknowledgement" expected

let compile t ?(id = "c0") ?(file = "<service>") ?tenant ~config source =
  match roundtrip t (Protocol.Compile { id; file; source; config; tenant }) with
  | Error e -> Error e
  | Ok (Protocol.Compiled { result; _ }) -> Ok result
  | Ok other -> rejected_or_mismatch ~peer:t.peer ~expected:"compile" other

let stats t ?(id = "s0") () =
  match roundtrip t (Protocol.Stats { id }) with
  | Error e -> Error e
  | Ok (Protocol.Stats_reply { stats; _ }) -> Ok stats
  | Ok other -> rejected_or_mismatch ~peer:t.peer ~expected:"stats" other

let health t ?(id = "h0") () =
  match roundtrip t (Protocol.Health { id }) with
  | Error e -> Error e
  | Ok (Protocol.Health_reply { health; _ }) -> Ok health
  | Ok other -> rejected_or_mismatch ~peer:t.peer ~expected:"health" other

let fleet t ?(id = "f0") () =
  match roundtrip t (Protocol.Fleet { id }) with
  | Error e -> Error e
  | Ok (Protocol.Fleet_reply { fleet; _ }) -> Ok fleet
  | Ok other -> rejected_or_mismatch ~peer:t.peer ~expected:"fleet" other

let shutdown t ?(id = "q0") () =
  match roundtrip t (Protocol.Shutdown { id }) with
  | Error e -> Error e
  | Ok (Protocol.Shutdown_ack _) -> Ok ()
  | Ok other -> rejected_or_mismatch ~peer:t.peer ~expected:"shutdown" other

(* ------------------------------------------------------------------ *)
(* Resilient sessions                                                  *)
(* ------------------------------------------------------------------ *)

type policy = {
  attempts : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  deadline_s : float option;
}

let default_policy =
  { attempts = 4; backoff_base_s = 0.02; backoff_cap_s = 0.25; deadline_s = Some 30. }

type session = {
  socket_path : string;
  policy : policy;
  mutable conn : t option;
  mutable retries : int;
  mutable reconnects : int;
}

let session ?(policy = default_policy) ~socket_path () =
  {
    socket_path;
    policy = { policy with attempts = max 1 policy.attempts };
    conn = None;
    retries = 0;
    reconnects = 0;
  }

let session_retries s = s.retries
let session_reconnects s = s.reconnects

let drop_conn s =
  Option.iter close s.conn;
  s.conn <- None

let session_close = drop_conn

(* Deterministic jitter in [0.75, 1.25): no wall-clock or PRNG state, so
   a replayed run backs off identically. *)
let jitter key =
  let h = Hashtbl.hash key land 0xFFFF in
  0.75 +. (0.5 *. (float_of_int h /. 65536.))

let backoff_delay policy ~attempt ~key =
  min policy.backoff_cap_s
    (policy.backoff_base_s *. (2. ** float_of_int attempt))
  *. jitter (key, attempt)

let unavailable ~peer fmt =
  Printf.ksprintf (fun m -> E.make E.Internal ~phase:E.Serving ~peer m) fmt

let ensure_conn s =
  match s.conn with
  | Some c when not c.closed -> Ok c
  | _ -> (
    s.conn <- None;
    match connect ?deadline_s:s.policy.deadline_s ~socket_path:s.socket_path () with
    | c ->
      if s.retries > 0 || s.reconnects > 0 then s.reconnects <- s.reconnects + 1;
      s.conn <- Some c;
      Ok c
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      (* no socket file at all: the daemon was never started here — do not
         burn the retry budget, degrade immediately *)
      Error
        (`Fatal
          (unavailable ~peer:s.socket_path "no daemon at %s (socket file missing)"
             s.socket_path))
    | exception Unix.Unix_error (err, _, _) ->
      (* ECONNREFUSED and friends: a stale socket — the daemon may be mid
         restart, worth the bounded retries *)
      Error
        (`Transient
          (unavailable ~peer:s.socket_path "cannot reach daemon at %s: %s"
             s.socket_path (Unix.error_message err))))

let try_once s ~id ~file ~config source =
  match ensure_conn s with
  | Error (`Fatal _ as f) -> f
  | Error (`Transient _ as tr) -> tr
  | Ok c -> (
    match compile c ~id ~file ~config source with
    | Ok r -> `Ok r
    | Error e -> (
      match e.E.kind with
      | E.Internal ->
        (* transport breakdowns (dropped/reset/timed-out connection, torn
           or undecodable frame) and handler crashes both surface as
           [Internal]: the stream may be desynchronized, so reconnect, and
           a fresh attempt is worthwhile either way *)
        drop_conn s;
        `Transient e
      | _ -> if E.is_transient e then `Transient e else `Fatal e)
    | exception (Sys_error _ | End_of_file) ->
      drop_conn s;
      `Transient
        (unavailable ~peer:s.socket_path "connection to %s broke mid-request"
           s.socket_path)
    | exception Unix.Unix_error (err, _, _) ->
      drop_conn s;
      `Transient
        (unavailable ~peer:s.socket_path "connection to %s failed: %s"
           s.socket_path (Unix.error_message err)))

(* One compile with the full client-resilience loop: per-request deadline
   (set at connect), bounded jittered retries over transient failures
   (dropped/reset/timed-out connections, torn frames, shed [Overload]
   responses), transparent reconnect between attempts.  [Error] means the
   daemon could not settle this request inside the budget — the caller's
   graceful degradation (compile in-process) takes over. *)
let session_compile s ?(id = "c0") ?(file = "<service>") ~config source =
  let rec go attempt =
    match try_once s ~id ~file ~config source with
    | `Ok r -> Ok r
    | `Fatal e -> Error e
    | `Transient e ->
      if attempt + 1 >= s.policy.attempts then Error e
      else begin
        s.retries <- s.retries + 1;
        Unix.sleepf (backoff_delay s.policy ~attempt ~key:(id, file));
        go (attempt + 1)
      end
  in
  go 0

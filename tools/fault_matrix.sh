#!/bin/sh
# Fault-injection matrix over the mompc CLI (docs/ROBUSTNESS.md).
#
# Drives every injection site through the driver in each supervision mode —
# fail-fast, bounded retry, graceful fallback, watchdog — and asserts:
#   1. failure sites exit with their documented taxonomy code, cleanly
#      (structured one-line diagnostic, no unhandled exception);
#   2. graceful sites (shared-budget) exit 0: exhaustion degrades to the
#      device heap instead of aborting;
#   3. two same-seed runs produce byte-identical stdout and stderr — an
#      injected run is replayable from its seed alone.
#
# Exit codes matched here are API (lib/fault/ompgpu_error.ml): 14
# pass-crash, 20 sim-trap, 21 oom, 24 timeout, 0 success/fallback.

set -e

MOMPC=${MOMPC:-_build/default/bin/mompc.exe}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "fault-matrix: FAIL: $*" >&2; exit 1; }

[ -x "$MOMPC" ] || fail "mompc binary not found at $MOMPC (run: dune build bin/mompc.exe)"

# One generic-mode kernel with a small globalized local (lands in shared
# memory: the shared-budget site's target) and a large one (lands on the
# device heap: the mem-alloc site's target).
cat > "$WORK/input.c" <<'EOF'
long A[8];
long B[4];
static void bump(long* p) { p[0] = p[0] + 1; }
int main() {
  #pragma omp target teams distribute num_teams(2) thread_limit(8)
  for (int i = 0; i < 16; i++) {
    long s = (long)i;
    bump(&s);
    long v[512];
    v[0] = s;
    bump(v);
    #pragma omp atomic
    B[0] += v[0];
    A[i % 8] = 3;
  }
  for (int k = 0; k < 8; k++) { trace(A[k]); }
  trace(B[0]);
  return 0;
}
EOF
cp "$WORK/input.c" "$WORK/input2.c"

# run NAME EXPECTED_EXIT [mompc args...]
run() {
  name=$1; expect=$2; shift 2
  set +e
  "$MOMPC" --emit-ir=false "$@" > "$WORK/$name.out" 2> "$WORK/$name.err"
  code=$?
  set -e
  if [ "$code" -ne "$expect" ]; then
    cat "$WORK/$name.err" >&2
    fail "$name: exit $code, expected $expect"
  fi
  # an escaping OCaml exception prints "Fatal error: exception ..." — the
  # taxonomy guarantees that never happens, whatever is injected
  if grep -q "Fatal error" "$WORK/$name.err"; then
    cat "$WORK/$name.err" >&2
    fail "$name: unhandled exception escaped the driver"
  fi
  echo "fault-matrix: ok: $name (exit $code)"
}

# --- fail-fast: each failure site exits with its taxonomy code ----------
run clean          0  "$WORK/input.c" --run
run pass-crash     14 "$WORK/input.c" -O --inject pass-crash
run sim-trap       20 "$WORK/input.c" --run --inject sim-trap
run mem-alloc      21 "$WORK/input.c" --run --inject mem-alloc
grep -q "error\[pass-crash\]" "$WORK/pass-crash.err" || fail "pass-crash: diagnostic missing"
grep -q "error\[sim-trap\]"   "$WORK/sim-trap.err"   || fail "sim-trap: diagnostic missing"
grep -q "error\[oom\]"        "$WORK/mem-alloc.err"  || fail "mem-alloc: diagnostic missing"

# --- graceful fallback: shared-memory exhaustion is not an error --------
run shared-budget  0  "$WORK/input.c" --run --inject shared-budget
run shared-stats   0  "$WORK/input.c" --run --inject shared-budget --stats-json "$WORK/stats.json"
grep -q '"shared_fallbacks": *[1-9]' "$WORK/stats.json" \
  || fail "shared-budget: no heap fallbacks counted in stats JSON"

# --- bounded retry: transient failures retry, then settle structurally --
run retry-exhaust  21 "$WORK/input.c" --run --inject mem-alloc --retries 2 --backoff 0.01
run retry-clean    0  "$WORK/input.c" --run --retries 2

# --- watchdog: a stalled pool job settles as a structured timeout -------
run watchdog       24 "$WORK/input.c" "$WORK/input2.c" -j 2 --watchdog 0.05 --inject pool-stall
grep -q "error\[timeout\]" "$WORK/watchdog.err" || fail "watchdog: timeout diagnostic missing"

# --- cache corruption: quarantined and recomputed, never served --------
run cache-store    0  "$WORK/input.c" --cache-dir "$WORK/cache" --inject cache-corrupt
run cache-reread   0  "$WORK/input.c" --cache-dir "$WORK/cache" --inject cache-corrupt
grep -q "quarantined" "$WORK/cache-reread.err" || fail "cache-corrupt: quarantine remark missing"
[ -n "$(ls "$WORK/cache/quarantine" 2>/dev/null)" ] || fail "cache-corrupt: quarantine dir empty"

# --- replay: two same-seed runs are byte-identical ----------------------
run replay-a       20 "$WORK/input.c" --run --inject sim-trap:0.5:7
run replay-b       20 "$WORK/input.c" --run --inject sim-trap:0.5:7
cmp -s "$WORK/replay-a.out" "$WORK/replay-b.out" || fail "replay: stdout differs across same-seed runs"
cmp -s "$WORK/replay-a.err" "$WORK/replay-b.err" || fail "replay: stderr differs across same-seed runs"

# all six sites armed at once, still structured and replayable
ALL="--inject mem-alloc:0.001:3 --inject shared-budget:0.5:3 --inject sim-trap:0.0005:3 \
     --inject pass-crash:0.1:3 --inject cache-corrupt:1.0:3 --inject pool-stall:0.2:3"
set +e
"$MOMPC" --emit-ir=false "$WORK/input.c" -O --run $ALL > "$WORK/all-a.out" 2> "$WORK/all-a.err"; ca=$?
"$MOMPC" --emit-ir=false "$WORK/input.c" -O --run $ALL > "$WORK/all-b.out" 2> "$WORK/all-b.err"; cb=$?
set -e
[ "$ca" -eq "$cb" ] || fail "all-sites: exit codes differ across same-seed runs ($ca vs $cb)"
if grep -q "Fatal error" "$WORK/all-a.err"; then fail "all-sites: unhandled exception"; fi
cmp -s "$WORK/all-a.out" "$WORK/all-b.out" || fail "all-sites: stdout differs across same-seed runs"
cmp -s "$WORK/all-a.err" "$WORK/all-b.err" || fail "all-sites: stderr differs across same-seed runs"
echo "fault-matrix: ok: all-sites (exit $ca, byte-stable)"

echo "fault-matrix: PASS"

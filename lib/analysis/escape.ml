(* Inter-procedural pointer-capture ("escape to another thread") analysis.

   This is the first check of the paper's HeapToStack transformation: "follow
   all uses of the heap pointer inter-procedurally and report if any of the
   uses might expose the pointer to another thread."  A pointer escapes when
   it is itself stored to memory, returned, passed to an unknown or
   address-taken function, or handed to a runtime call that may capture it.

   Derived pointers (gep, casts, selects) are tracked; passing the pointer to
   a defined function recurses into the callee's uses of the corresponding
   parameter, with memoization and a recursion cut-off for cycles. *)

open Ir

type verdict = No_escape | Escapes of string  (* reason, for remarks *)

let is_no_escape = function No_escape -> true | Escapes _ -> false

type memo_key = string * int  (* function name, parameter index *)

type ctx = {
  m : Irmod.t;
  memo : (memo_key, verdict) Hashtbl.t;
  mutable in_progress : memo_key list;  (* cycle detection *)
}

let create m = { m; memo = Hashtbl.create 32; in_progress = [] }

(* Resolve a value through space/bit casts to its defining alloca, if any.
   Used to recognize thread-private "slots" (the parameter copies Clang-style
   codegen emits): storing a pointer into such a slot is not a capture as
   long as the slot itself never escapes; loads from the slot yield the
   tracked pointer again. *)
let rec slot_root (f : Func.t) v =
  match v with
  | Value.Reg r -> (
    match Func.def_of f r with
    | Some i -> (
      match i.Instr.kind with
      | Instr.Alloca _ -> Some r
      | Instr.Cast ((Instr.Spacecast | Instr.Bitcast), _, inner) -> slot_root f inner
      | _ -> None)
    | None -> None)
  | _ -> None

(* Allocas whose every use is a load from it or a store *to* it (address
   position only): safe slots for capture tracking. *)
let safe_slots (f : Func.t) =
  let slots = Hashtbl.create 8 in
  Func.iter_instrs f ~g:(fun _ i ->
      match i.Instr.kind with
      | Instr.Alloca _ -> Hashtbl.replace slots i.Instr.id true
      | _ -> ());
  let invalidate a = Hashtbl.replace slots a false in
  Func.iter_instrs f ~g:(fun _ i ->
      let resolves v = slot_root f v in
      match i.Instr.kind with
      | Instr.Load (_, _) -> ()
      | Instr.Store (_, v, p) -> (
        (* storing the slot address itself anywhere leaks the slot *)
        match resolves v with
        | Some a -> ( match resolves p with Some a' when a' = a -> invalidate a | _ -> invalidate a)
        | None -> ())
      | Instr.Cast ((Instr.Spacecast | Instr.Bitcast), _, _) -> ()
      | _ ->
        (* any other use of a slot value (gep, call argument, compare, ...)
           disqualifies it *)
        List.iter
          (fun v -> match resolves v with Some a -> invalidate a | None -> ())
          (Instr.operands i));
  List.iter
    (fun b ->
      List.iter
        (fun v -> match slot_root f v with Some a -> invalidate a | None -> ())
        (Block.term_operands b.Block.term))
    f.Func.blocks;
  slots

let is_safe_slot slots a = Hashtbl.find_opt slots a = Some true

(* Does value [v] syntactically involve register [reg]?  Tracked values are
   always registers or arguments in this analysis. *)
let rec value_uses tracked v =
  match (tracked, v) with
  | `Reg r, Value.Reg r' -> r = r'
  | `Arg a, Value.Arg a' -> a = a'
  | _, _ ->
    ignore tracked;
    ignore v;
    false

and escapes_in_func ctx (f : Func.t) tracked =
  let slots = safe_slots f in
  (* registers derived from the tracked pointer, plus the safe slots that
     currently hold it, grown to a fixpoint *)
  let derived = Hashtbl.create 8 in
  let holders = Hashtbl.create 4 in
  let is_tracked v =
    value_uses tracked v
    || match v with Value.Reg r -> Hashtbl.mem derived r | _ -> false
  in
  let grow () =
    let changed = ref false in
    let add_derived id =
      if not (Hashtbl.mem derived id) then begin
        Hashtbl.replace derived id ();
        changed := true
      end
    in
    Func.iter_instrs f ~g:(fun _ i ->
        match i.Instr.kind with
        | Instr.Gep (_, base, _) when is_tracked base -> add_derived i.Instr.id
        | Instr.Cast (_, _, v) when is_tracked v -> add_derived i.Instr.id
        | Instr.Select (_, _, a, b) when is_tracked a || is_tracked b ->
          add_derived i.Instr.id
        | Instr.Store (_, v, p) when is_tracked v -> (
          match slot_root f p with
          | Some a when is_safe_slot slots a && not (Hashtbl.mem holders a) ->
            Hashtbl.replace holders a ();
            changed := true
          | _ -> ())
        | Instr.Load (_, p) -> (
          match slot_root f p with
          | Some a when Hashtbl.mem holders a -> add_derived i.Instr.id
          | _ -> ())
        | _ -> ());
    !changed
  in
  Support.Util.fixpoint grow;
  let result = ref No_escape in
  let note reason = if is_no_escape !result then result := Escapes reason in
  Func.iter_instrs f ~g:(fun _ i ->
      if is_no_escape !result then
        match i.Instr.kind with
        | Instr.Store (_, v, p) when is_tracked v -> (
          match slot_root f p with
          | Some a when is_safe_slot slots a -> ()  (* held in a private slot *)
          | _ -> note (Printf.sprintf "pointer stored to memory in @%s" f.Func.name))
        | Instr.Call (_, Instr.Direct callee, args) ->
          List.iteri
            (fun idx arg ->
              if is_tracked arg then
                match Devrt.Registry.lookup callee with
                | Some r ->
                  if not r.Devrt.Registry.rt_nocapture then
                    note (Printf.sprintf "pointer captured by runtime call @%s" callee)
                | None -> (
                  match Irmod.find_func ctx.m callee with
                  | Some g when not (Func.is_declaration g) ->
                    if Func.has_attr g Func.Nocapture_args then ()
                    else (
                      match escapes_via_param ctx g idx with
                      | No_escape -> ()
                      | Escapes r -> note r)
                  | Some g when Func.has_attr g Func.Nocapture_args -> ()
                  | Some _ | None ->
                    note (Printf.sprintf "pointer passed to external @%s" callee)))
            args
        | Instr.Call (_, Instr.Indirect _, args) ->
          if List.exists is_tracked args then note "pointer passed through indirect call"
        | Instr.Atomicrmw (_, _, _, v) when is_tracked v ->
          note "pointer exchanged atomically"
        | _ -> ());
  (* returning the pointer exposes it to an arbitrary caller *)
  List.iter
    (fun b ->
      match b.Block.term with
      | Block.Ret (Some v) when is_tracked v ->
        note (Printf.sprintf "pointer returned from @%s" f.Func.name)
      | _ -> ())
    f.Func.blocks;
  !result

and escapes_via_param ctx (f : Func.t) idx =
  let key = (f.Func.name, idx) in
  match Hashtbl.find_opt ctx.memo key with
  | Some v -> v
  | None ->
    if List.mem key ctx.in_progress then No_escape  (* optimistic on cycles *)
    else begin
      ctx.in_progress <- key :: ctx.in_progress;
      let v = escapes_in_func ctx f (`Arg idx) in
      ctx.in_progress <- List.tl ctx.in_progress;
      Hashtbl.replace ctx.memo key v;
      v
    end

(* Entry point: may the pointer produced by instruction [alloc] in [f] escape
   to another thread? *)
let pointer_escapes ctx (f : Func.t) (alloc : Instr.t) = escapes_in_func ctx f (`Reg alloc.Instr.id)

(* Second HeapToStack check: on every path from the allocation to a return
   of [f], is the matching deallocation reached?  Implemented as a CFG walk
   from the allocation site that stops at blocks containing the free; if a
   return is reachable without passing a free, the check fails. *)
let free_always_reached (f : Func.t) ~(alloc : Instr.t) ~free_name =
  let is_free_of i =
    match i.Instr.kind with
    | Instr.Call (_, Instr.Direct n, args) when String.equal n free_name ->
      List.exists (fun a -> Value.equal a (Value.Reg alloc.Instr.id)) args
    | _ -> false
  in
  let alloc_block =
    List.find_opt
      (fun b -> List.exists (fun i -> i.Instr.id = alloc.Instr.id) b.Block.instrs)
      f.Func.blocks
  in
  match alloc_block with
  | None -> false
  | Some b0 ->
    (* instructions after the alloc in its own block *)
    let rec after = function
      | [] -> []
      | i :: rest when i.Instr.id = alloc.Instr.id -> rest
      | _ :: rest -> after rest
    in
    if List.exists is_free_of (after b0.Block.instrs) then true
    else begin
      let module SS = Support.Util.String_set in
      let visited = ref SS.empty in
      let ok = ref true in
      let rec visit label =
        if !ok && not (SS.mem label !visited) then begin
          visited := SS.add label !visited;
          match Func.find_block f label with
          | None -> ok := false
          | Some b ->
            if List.exists is_free_of b.Block.instrs then ()  (* path is freed *)
            else begin
              (match b.Block.term with
              | Block.Ret _ -> ok := false  (* escaped to a return unfreed *)
              | _ -> ());
              List.iter visit (Block.successors b)
            end
        end
      in
      (match b0.Block.term with
      | Block.Ret _ -> ok := false
      | _ -> List.iter visit (Block.successors b0));
      !ok
    end

(* Pure integer folding helpers shared by the simplifier (kept independent
   of the simulator so the optimizer has no dependency on gpusim). *)

let truncate_to (ty : Ir.Types.t) v =
  match ty with
  | Ir.Types.I1 -> Int64.logand v 1L
  | Ir.Types.I8 -> Int64.shift_right (Int64.shift_left v 56) 56
  | Ir.Types.I32 -> Int64.shift_right (Int64.shift_left v 32) 32
  | _ -> v

(* Unsigned operations must see the zero-extended value of the width;
   signed/bitwise ones are width-agnostic on sign-extended representations. *)
let unsigned_of ty v =
  match ty with
  | Ir.Types.I1 -> Int64.logand v 1L
  | Ir.Types.I8 -> Int64.logand v 0xFFL
  | Ir.Types.I32 -> Int64.logand v 0xFFFFFFFFL
  | _ -> v

let bin_int ?(ty = Ir.Types.I64) (op : Ir.Instr.bin) a b =
  let open Ir.Instr in
  match op with
  | Add -> Some (Int64.add a b)
  | Sub -> Some (Int64.sub a b)
  | Mul -> Some (Int64.mul a b)
  | Sdiv -> if b = 0L then None else Some (Int64.div a b)
  | Srem -> if b = 0L then None else Some (Int64.rem a b)
  | Udiv ->
    if b = 0L then None
    else Some (Int64.unsigned_div (unsigned_of ty a) (unsigned_of ty b))
  | Urem ->
    if b = 0L then None
    else Some (Int64.unsigned_rem (unsigned_of ty a) (unsigned_of ty b))
  | And -> Some (Int64.logand a b)
  | Or -> Some (Int64.logor a b)
  | Xor -> Some (Int64.logxor a b)
  | Shl -> Some (Int64.shift_left a (Int64.to_int b land 63))
  | Lshr -> Some (Int64.shift_right_logical (unsigned_of ty a) (Int64.to_int b land 63))
  | Ashr -> Some (Int64.shift_right a (Int64.to_int b land 63))
  | Fadd | Fsub | Fmul | Fdiv -> None

let icmp_int (cc : Ir.Instr.icmp) a b =
  let open Ir.Instr in
  match cc with
  | Eq -> a = b
  | Ne -> a <> b
  | Slt -> a < b
  | Sle -> a <= b
  | Sgt -> a > b
  | Sge -> a >= b
  | Ult -> Int64.unsigned_compare a b < 0
  | Ule -> Int64.unsigned_compare a b <= 0
  | Ugt -> Int64.unsigned_compare a b > 0
  | Uge -> Int64.unsigned_compare a b >= 0

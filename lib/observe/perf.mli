(** Phase-level profiling: wall time and allocation words per semantic
    stack frame, exported as folded stacks (flamegraph input) and a
    schema-stamped per-phase summary.  The collector is safe to share
    across pool domains; recording costs two clock reads and one
    [Gc.quick_stat] per phase (see docs/PERF.md). *)

type t

val create : unit -> t

val record : t -> stack:string list -> (unit -> 'a) -> 'a
(** Run the thunk, append one sample tagged [stack] with its wall seconds
    and the minor-heap words it allocated on this domain.  A raising
    thunk is still attributed before the exception propagates. *)

val folded : value:[ `Time_us | `Alloc_words ] -> t -> string
(** Samples aggregated by stack in first-appearance order, one
    ["frame;frame COUNT\n"] line each — the folded-stacks text format
    flamegraph.pl and speedscope consume.  Counts are microseconds
    ([`Time_us]) or allocation words ([`Alloc_words]). *)

val to_json : t -> Json.t
(** Schema-stamped per-phase totals (seconds, allocation words, sample
    count), aggregated by leaf frame. *)

(** Classification of layer-specific exceptions into the structured
    taxonomy.  The [fault] library owns the taxonomy but cannot name the
    frontend or simulator exception types (it sits below them); the harness
    depends on every layer, so the mapping lives here.  [bin/mompc] and the
    batch runner both route caught exceptions through {!classify}. *)

val classify :
  phase:Fault.Ompgpu_error.phase ->
  exn ->
  Printexc.raw_backtrace ->
  Fault.Ompgpu_error.t
(** Map any exception caught at a harness boundary to a structured error.
    Known layer exceptions (frontend lex/parse/codegen errors, simulator
    OOM and dynamic errors) get their precise kind, phase and location —
    the [phase] argument only labels exceptions that carry no phase of
    their own, which become [Internal].  A [Fault.Ompgpu_error.Error]
    passes through unchanged (filling in the backtrace if absent).  The
    backtrace is preserved whenever recording is on. *)

val run_protected :
  phase:Fault.Ompgpu_error.phase ->
  (unit -> 'a) ->
  ('a, Fault.Ompgpu_error.t) result
(** Run a thunk, classifying any escaping exception. *)

open Support

let test_round_up () =
  Alcotest.(check int) "exact" 16 (Util.round_up_to 16 ~multiple:8);
  Alcotest.(check int) "up" 16 (Util.round_up_to 9 ~multiple:8);
  Alcotest.(check int) "zero" 0 (Util.round_up_to 0 ~multiple:8);
  Alcotest.(check int) "one" 8 (Util.round_up_to 1 ~multiple:8)

let test_round_up_invalid () =
  Alcotest.check_raises "non-positive multiple" (Invalid_argument "round_up_to") (fun () ->
      ignore (Util.round_up_to 5 ~multiple:0))

let test_id_gen () =
  let g = Util.Id_gen.create () in
  Alcotest.(check int) "first" 0 (Util.Id_gen.fresh g);
  Alcotest.(check int) "second" 1 (Util.Id_gen.fresh g);
  Util.Id_gen.reserve g 10;
  Alcotest.(check int) "after reserve" 11 (Util.Id_gen.fresh g);
  Util.Id_gen.reserve g 3;
  Alcotest.(check int) "reserve below is a no-op" 12 (Util.Id_gen.fresh g)

let test_take_drop () =
  Alcotest.(check (pair (list int) (list int)))
    "split" ([ 1; 2 ], [ 3; 4 ]) (Util.take_drop 2 [ 1; 2; 3; 4 ]);
  Alcotest.(check (pair (list int) (list int)))
    "short" ([ 1 ], []) (Util.take_drop 5 [ 1 ])

let test_fixpoint () =
  let n = ref 0 in
  Util.fixpoint (fun () ->
      incr n;
      !n < 5);
  Alcotest.(check int) "iterations" 5 !n

let test_fixpoint_diverges () =
  Alcotest.check_raises "divergence detected" (Failure "Util.fixpoint: did not converge")
    (fun () -> Util.fixpoint ~max_iters:10 (fun () -> true))

let test_loc () =
  let l = Loc.make ~file:"a.c" ~line:3 ~col:7 in
  Alcotest.(check string) "render" "a.c:3:7" (Loc.to_string l);
  Alcotest.(check bool) "none" true (Loc.is_none Loc.none);
  Alcotest.(check bool) "not none" false (Loc.is_none l);
  Alcotest.(check int) "compare equal" 0 (Loc.compare l l);
  Alcotest.(check bool) "ordering" true
    (Loc.compare l (Loc.make ~file:"a.c" ~line:4 ~col:0) < 0)

let qcheck_round_up =
  Helpers.qtest "round_up_to is the smallest multiple >= value"
    QCheck.(pair (int_bound 10_000) (int_range 1 64))
    (fun (v, m) ->
      let r = Util.round_up_to v ~multiple:m in
      r >= v && r mod m = 0 && r - v < m)

let suite =
  [
    Alcotest.test_case "round_up_to" `Quick test_round_up;
    Alcotest.test_case "round_up_to invalid" `Quick test_round_up_invalid;
    Alcotest.test_case "id generator" `Quick test_id_gen;
    Alcotest.test_case "take_drop" `Quick test_take_drop;
    Alcotest.test_case "fixpoint" `Quick test_fixpoint;
    Alcotest.test_case "fixpoint divergence" `Quick test_fixpoint_diverges;
    Alcotest.test_case "locations" `Quick test_loc;
    qcheck_round_up;
  ]

(* Minimal JSON tree, printer and parser.  The subset implemented is the
   full JSON grammar except that parsed floats go through OCaml's
   [float_of_string] (accepting a superset of JSON number syntax) and
   \uXXXX escapes outside the Basic Multilingual Plane are not combined
   into surrogate pairs — none of our exports produce such strings. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | String x, String y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
         xs ys
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let schema_version = 2

let with_schema = function
  | Obj members -> Obj (("schema", Int schema_version) :: members)
  | j -> j

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(minify = false) j =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_nl depth =
    if not minify then begin
      Buffer.add_char buf '\n';
      indent depth
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          sep_nl (depth + 1);
          go (depth + 1) item)
        items;
      sep_nl depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          sep_nl (depth + 1);
          escape_string buf k;
          Buffer.add_char buf ':';
          if not minify then Buffer.add_char buf ' ';
          go (depth + 1) v)
        members;
      sep_nl depth;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string ~minify:true j)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_fail of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun msg -> raise (Parse_fail (Printf.sprintf "at offset %d: %s" !pos msg))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c, found %c" c c'
    | None -> fail "expected %c, found end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape %s" hex
          in
          (* encode the code point as UTF-8; surrogate pairs not combined *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          pos := !pos + 4
        | _ -> fail "bad escape");
        advance ();
        loop ())
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %s" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number %s" text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let members = ref [ member () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          members := member () :: !members;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !members)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_fail msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

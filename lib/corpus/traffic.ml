(* Corpus-over-daemon traffic generation (see the .mli).  The server runs
   in-process exactly as bench's service benchmark boots it; clients are
   plain threads sharing a work queue, so [connections] concurrent
   sessions stress the accept loop, admission control and the shared
   caches the way a compile fleet would. *)

module Api = Ompgpu_api

type stats = {
  programs : int;
  jobs : int;
  connections : int;
  domains : int;
  cold_s : float;
  warm_s : float;
  cold_cps : float;
  warm_cps : float;
  byte_identical : bool;
  transport_errors : int;
}

type job = { file : string; config : Api.Config.t; src : string }

let jobs_of_corpus ~root ~n =
  List.concat
    (List.init n (fun i ->
         let prog = Gen.generate (Gen.program_stream ~root i) in
         List.map
           (fun cell ->
             {
               file = Printf.sprintf "corpus-%d-%s.c" i (Matrix.cell_name cell);
               config = Matrix.config_of_cell cell;
               src = Gen.render ~mode:cell.Matrix.mode prog;
             })
           Matrix.cells))

let identical (a : Api.compiled) (b : Api.compiled) =
  a.Api.exit_code = b.Api.exit_code
  && String.equal a.Api.output b.Api.output
  && String.equal a.Api.diagnostics b.Api.diagnostics

(* One timed pass: [connections] threads, each with its own resilient
   session, draining a shared queue.  Results land in a per-job slot so
   no two threads write the same cell. *)
let timed_pass ~socket_path ~connections (jobs : job array) =
  let results = Array.make (Array.length jobs) None in
  let next = ref 0 in
  let lock = Mutex.create () in
  let take () =
    Mutex.lock lock;
    let i = !next in
    if i < Array.length jobs then incr next;
    Mutex.unlock lock;
    if i < Array.length jobs then Some i else None
  in
  let worker () =
    let session = Service.Client.session ~socket_path () in
    let rec loop () =
      match take () with
      | None -> ()
      | Some i ->
        let j = jobs.(i) in
        results.(i) <-
          Some (Service.Client.session_compile session ~file:j.file ~config:j.config j.src);
        loop ()
    in
    loop ();
    Service.Client.session_close session
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init connections (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  (results, Unix.gettimeofday () -. t0)

(* This module boots servers (and kills shards) inside the calling
   process, so a peer closing mid-write is an expected event here even
   when the host binary never asked for one: without this, a failover
   run dies of SIGPIPE instead of recording the failover. *)
let ignore_sigpipe () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let run ?(connections = 4) ?(domains = 2) ~root ~n () =
  ignore_sigpipe ();
  let jobs = Array.of_list (jobs_of_corpus ~root ~n) in
  let expected =
    Array.map (fun j -> Api.compile_buffered ~config:j.config ~file:j.file j.src) jobs
  in
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mompd-corpus-%d.sock" (Unix.getpid ()))
  in
  let server =
    Service.Server.create
      { Service.Server.default_config with socket_path; domains }
  in
  let server_thread = Thread.create Service.Server.serve_forever server in
  let cold, cold_s = timed_pass ~socket_path ~connections jobs in
  let warm, warm_s = timed_pass ~socket_path ~connections jobs in
  let () =
    Service.Client.with_connection ~socket_path (fun c ->
        match Service.Client.shutdown c () with
        | Ok () -> ()
        | Error e ->
          Fmt.epr "corpus traffic: shutdown: %s@." (Fault.Ompgpu_error.to_string e))
  in
  Thread.join server_thread;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let errors = ref 0 in
  let matches = ref true in
  let check results =
    Array.iteri
      (fun i r ->
        match r with
        | Some (Ok compiled) ->
          if not (identical compiled expected.(i)) then matches := false
        | Some (Error _) | None -> incr errors)
      results
  in
  check cold;
  check warm;
  let total = Array.length jobs in
  let cps s = if s > 0.0 then float_of_int total /. s else 0.0 in
  {
    programs = n;
    jobs = total;
    connections;
    domains;
    cold_s;
    warm_s;
    cold_cps = cps cold_s;
    warm_cps = cps warm_s;
    byte_identical = !matches && !errors = 0;
    transport_errors = !errors;
  }

let to_json s =
  Observe.Json.with_schema
    (Observe.Json.Obj
       [
         ("programs", Observe.Json.Int s.programs);
         ("jobs", Observe.Json.Int s.jobs);
         ("connections", Observe.Json.Int s.connections);
         ("domains", Observe.Json.Int s.domains);
         ("cold_s", Observe.Json.Float s.cold_s);
         ("warm_s", Observe.Json.Float s.warm_s);
         ("cold_compiles_per_s", Observe.Json.Float s.cold_cps);
         ("warm_compiles_per_s", Observe.Json.Float s.warm_cps);
         ("byte_identical", Observe.Json.Bool s.byte_identical);
         ("transport_errors", Observe.Json.Int s.transport_errors);
       ])

(* ------------------------------------------------------------------ *)
(* The corpus through the fleet router                                 *)
(* ------------------------------------------------------------------ *)

module J = Observe.Json

type fleet_stats = {
  base : stats;
  shards : int;
  failovers : int;
  fallbacks : int;
  warm_hit_ratio : float;
}

(* Sum every reachable shard's in-memory cache hits out of a fleet
   document: the delta between the warm and cold passes is how many warm
   answers the ring kept on the shard that already compiled them. *)
let fleet_cache_hits doc =
  match J.member "shards" doc with
  | Some (J.List entries) ->
    List.fold_left
      (fun acc entry ->
        match
          Option.bind (J.member "stats" entry) (fun stats ->
              Option.bind (J.member "cache" stats) (fun cache ->
                  Option.bind (J.member "hits" cache) J.to_int))
        with
        | Some hits -> acc + hits
        | None -> acc)
      0 entries
  | _ -> 0

let router_counter doc name =
  Option.value
    (Option.bind (J.member "router" doc) (fun r ->
         Option.bind (J.member name r) J.to_int))
    ~default:0

let fleet_respawns doc =
  match J.member "shards" doc with
  | Some (J.List entries) ->
    List.fold_left
      (fun acc entry ->
        match Option.bind (J.member "respawns" entry) J.to_int with
        | Some n -> acc + n
        | None -> acc)
      0 entries
  | _ -> 0

let fetch_fleet_doc ~router_socket =
  Service.Client.with_connection ~socket_path:router_socket (fun c ->
      match Service.Client.fleet c () with
      | Ok doc -> doc
      | Error _ -> J.Obj [])

let with_fleet ?(shards = 2) ?(domains = 2) ~tag f =
  ignore_sigpipe ();
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mompd-fleet-%d-%s" (Unix.getpid ()) tag)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let cache_dir = Filename.concat dir "cache" in
  let backends =
    List.init shards (fun i ->
        let name = Printf.sprintf "shard-%d" i in
        Service.Router.inproc_backend
          {
            Service.Supervisor.default_config with
            Service.Supervisor.server =
              {
                Service.Server.default_config with
                Service.Server.socket_path =
                  Filename.concat dir (name ^ ".sock");
                domains;
                capacity = 4 * max 1 domains;
                cache_dir = Some cache_dir;  (* the shared disk tier *)
              };
          }
          ~name)
  in
  let router_socket = Filename.concat dir "router.sock" in
  let router =
    Service.Router.create
      {
        Service.Router.default_config with
        Service.Router.socket_path = router_socket;
        capacity = 4 * max 1 domains * shards;
        probe_interval_s = 0.05;
      }
      backends
  in
  let router_thread = Thread.create Service.Router.serve_forever router in
  let finish () =
    Service.Client.with_connection ~socket_path:router_socket (fun c ->
        match Service.Client.shutdown c () with
        | Ok () -> ()
        | Error e ->
          Fmt.epr "fleet traffic: shutdown: %s@."
            (Fault.Ompgpu_error.to_string e));
    Thread.join router_thread
  in
  match f ~router_socket ~backends with
  | result ->
    finish ();
    result
  | exception e ->
    (try finish () with _ -> ());
    raise e

let run_fleet ?(connections = 4) ?(shards = 2) ?(domains = 2) ~root ~n () =
  let jobs = Array.of_list (jobs_of_corpus ~root ~n) in
  let expected =
    Array.map (fun j -> Api.compile_buffered ~config:j.config ~file:j.file j.src) jobs
  in
  with_fleet ~shards ~domains ~tag:(Printf.sprintf "s%d" shards)
    (fun ~router_socket ~backends:_ ->
      let cold, cold_s = timed_pass ~socket_path:router_socket ~connections jobs in
      let after_cold = fetch_fleet_doc ~router_socket in
      let warm, warm_s = timed_pass ~socket_path:router_socket ~connections jobs in
      let after_warm = fetch_fleet_doc ~router_socket in
      let errors = ref 0 in
      let matches = ref true in
      let check results =
        Array.iteri
          (fun i r ->
            match r with
            | Some (Ok compiled) ->
              if not (identical compiled expected.(i)) then matches := false
            | Some (Error _) | None -> incr errors)
          results
      in
      check cold;
      check warm;
      let total = Array.length jobs in
      let cps s = if s > 0.0 then float_of_int total /. s else 0.0 in
      let warm_hits = fleet_cache_hits after_warm - fleet_cache_hits after_cold in
      {
        base =
          {
            programs = n;
            jobs = total;
            connections;
            domains;
            cold_s;
            warm_s;
            cold_cps = cps cold_s;
            warm_cps = cps warm_s;
            byte_identical = !matches && !errors = 0;
            transport_errors = !errors;
          };
        shards;
        failovers = router_counter after_warm "failovers";
        fallbacks = router_counter after_warm "fallbacks";
        warm_hit_ratio =
          (if total > 0 then float_of_int warm_hits /. float_of_int total
           else 0.0);
      })

let fleet_to_json s =
  match to_json s.base with
  | J.Obj members ->
    J.Obj
      (members
      @ [
          ("shards", J.Int s.shards);
          ("failovers", J.Int s.failovers);
          ("fallbacks", J.Int s.fallbacks);
          ("warm_hit_ratio", J.Float s.warm_hit_ratio);
        ])
  | j -> j

(* ------------------------------------------------------------------ *)
(* Failover latency: stop a shard in the middle of a measured pass     *)
(* ------------------------------------------------------------------ *)

type failover_stats = {
  shards_total : int;
  fo_jobs : int;
  killed : string;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  fo_byte_identical : bool;
  fo_failovers : int;
  fo_fallbacks : int;
  respawns : int;
}

(* [timed_pass], but with a per-request latency recorded next to each
   result — the distribution, not the total, is what a shard kill
   distorts — and a [taken] counter the killer thread watches so the
   kill lands mid-pass whatever this host's throughput is. *)
let latency_pass ~taken ~socket_path ~connections (jobs : job array) =
  let results = Array.make (Array.length jobs) None in
  let lat = Array.make (Array.length jobs) 0.0 in
  let next = ref 0 in
  let lock = Mutex.create () in
  let take () =
    Mutex.lock lock;
    let i = !next in
    if i < Array.length jobs then incr next;
    Mutex.unlock lock;
    if i < Array.length jobs then begin
      Atomic.incr taken;
      Some i
    end
    else None
  in
  let worker () =
    let session = Service.Client.session ~socket_path () in
    let rec loop () =
      match take () with
      | None -> ()
      | Some i ->
        let j = jobs.(i) in
        let t0 = Unix.gettimeofday () in
        results.(i) <-
          Some (Service.Client.session_compile session ~file:j.file ~config:j.config j.src);
        lat.(i) <- Unix.gettimeofday () -. t0;
        loop ()
    in
    loop ();
    Service.Client.session_close session
  in
  let threads = List.init connections (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  (results, lat)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let run_failover ?(connections = 4) ?(shards = 3) ?(domains = 2) ~root ~n () =
  let jobs = Array.of_list (jobs_of_corpus ~root ~n) in
  let expected =
    Array.map (fun j -> Api.compile_buffered ~config:j.config ~file:j.file j.src) jobs
  in
  with_fleet ~shards ~domains ~tag:"failover" (fun ~router_socket ~backends ->
      (* A cold pass first, so the measured pass isolates failover cost
         from first-compile cost: every key is warm somewhere (in-memory
         on its shard, on the shared disk tier for everyone else). *)
      let (_ : (Api.compiled, Fault.Ompgpu_error.t) result option array * float) =
        timed_pass ~socket_path:router_socket ~connections jobs
      in
      let victim = List.hd backends in
      (* the kill lands once a quarter of the jobs are in flight or done,
         so the remaining three quarters exercise strike + failover *)
      let taken = Atomic.make 0 in
      let quarter = max 1 (Array.length jobs / 4) in
      let killer =
        Thread.create
          (fun () ->
            while Atomic.get taken < quarter do
              Thread.delay 0.001
            done;
            victim.Service.Router.stop ())
          ()
      in
      let results, lat =
        latency_pass ~taken ~socket_path:router_socket ~connections jobs
      in
      Thread.join killer;
      (* give the monitor a moment to notice the corpse and respawn it —
         the counters below should show the kill was real *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec settle () =
        let doc = fetch_fleet_doc ~router_socket in
        if fleet_respawns doc >= 1 || Unix.gettimeofday () > deadline then doc
        else begin
          Thread.delay 0.05;
          settle ()
        end
      in
      let doc = settle () in
      let errors = ref 0 in
      let matches = ref true in
      Array.iteri
        (fun i r ->
          match r with
          | Some (Ok compiled) ->
            if not (identical compiled expected.(i)) then matches := false
          | Some (Error _) | None -> incr errors)
        results;
      let sorted = Array.copy lat in
      Array.sort compare sorted;
      let ms s = 1000.0 *. s in
      {
        shards_total = shards;
        fo_jobs = Array.length jobs;
        killed = victim.Service.Router.name;
        p50_ms = ms (percentile sorted 50.0);
        p99_ms = ms (percentile sorted 99.0);
        max_ms = ms (percentile sorted 100.0);
        fo_byte_identical = !matches && !errors = 0;
        fo_failovers = router_counter doc "failovers";
        fo_fallbacks = router_counter doc "fallbacks";
        respawns = fleet_respawns doc;
      })

let failover_to_json s =
  J.Obj
    [
      ("shards", J.Int s.shards_total);
      ("jobs", J.Int s.fo_jobs);
      ("killed", J.String s.killed);
      ("p50_ms", J.Float s.p50_ms);
      ("p99_ms", J.Float s.p99_ms);
      ("max_ms", J.Float s.max_ms);
      ("byte_identical", J.Bool s.fo_byte_identical);
      ("failovers", J.Int s.fo_failovers);
      ("fallbacks", J.Int s.fo_fallbacks);
      ("respawns", J.Int s.respawns);
    ]

(* ------------------------------------------------------------------ *)
(* Tiered compilation: cold latency per tier + upgrade throughput      *)
(* ------------------------------------------------------------------ *)

type tier_stats = {
  tr_jobs : int;
  tr_connections : int;
  tr_domains : int;
  full_cold_p50_ms : float;
  tiered_cold_p50_ms : float;
  full_warm_cps : float;
  tiered_warm_cps : float;
  upgrades_done : int;
  upgrade_drain_s : float;
  upgrades_per_s : float;
  post_upgrade_identical : bool;
  tr_transport_errors : int;
}

(* Only the tier-eligible slice of the matrix: Full-pipeline cells are
   the requests whose cold latency the fast tier hides; O0 cells would
   be served as-asked on either daemon and only dilute the comparison.
   The jobs are compile-only (IR out, no simulation): compilation is
   what the fast tier makes cheap — a run_sim request spends most of its
   time simulating, and less-optimized fast-tier code simulates slower,
   which would measure the simulator, not the tier.  Emitting IR also
   makes post-upgrade byte-identity a real check: fast and full IR
   genuinely differ, so a non-promoted entry cannot pass by accident. *)
let tier_jobs ~root ~n =
  List.concat
    (List.init n (fun i ->
         let prog = Gen.generate (Gen.program_stream ~root i) in
         List.filter_map
           (fun cell ->
             match cell.Matrix.pipeline with
             | Matrix.O0 -> None
             | Matrix.Full ->
               let config = Matrix.config_of_cell cell in
               Some
                 {
                   file =
                     Printf.sprintf "corpus-%d-%s.c" i (Matrix.cell_name cell);
                   config =
                     {
                       config with
                       Api.Config.run_sim = false;
                       emit_ir = true;
                     };
                   src = Gen.render ~mode:cell.Matrix.mode prog;
                 })
           Matrix.cells))

let with_daemon ?(tiered = false) ~domains ~tag f =
  ignore_sigpipe ();
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mompd-%s-%d.sock" tag (Unix.getpid ()))
  in
  let server =
    Service.Server.create
      { Service.Server.default_config with socket_path; domains; tiered }
  in
  let server_thread = Thread.create Service.Server.serve_forever server in
  let finish () =
    Service.Client.with_connection ~socket_path (fun c ->
        match Service.Client.shutdown c () with
        | Ok () -> ()
        | Error e ->
          Fmt.epr "tier traffic: shutdown: %s@." (Fault.Ompgpu_error.to_string e));
    Thread.join server_thread;
    try Unix.unlink socket_path with Unix.Unix_error _ -> ()
  in
  match f ~socket_path with
  | result ->
    finish ();
    result
  | exception e ->
    (try finish () with _ -> ());
    raise e

let tier_counters ~socket_path =
  Service.Client.with_connection ~socket_path (fun c ->
      match Service.Client.stats c () with
      | Ok doc ->
        let tier k =
          Option.value
            (Option.bind (J.member "tiers" doc) (fun t ->
                 Option.bind (J.member k t) J.to_int))
            ~default:0
        in
        ( tier "upgrades_pending",
          tier "upgrades_queued",
          tier "upgrades_done",
          tier "upgrades_failed" )
      | Error _ -> (0, 0, 0, 0))

(* Wait for the upgrade queue to settle: nothing pending and every queued
   upgrade accounted for (done or failed). *)
let wait_upgrades_drained ~socket_path ~deadline_s =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec loop () =
    let pending, queued, done_, failed = tier_counters ~socket_path in
    if pending = 0 && done_ + failed >= queued then (done_, failed)
    else if Unix.gettimeofday () > deadline then (done_, failed)
    else begin
      Thread.delay 0.02;
      loop ()
    end
  in
  loop ()

let run_tiered ?(connections = 4) ?(domains = 2) ~root ~n () =
  ignore_sigpipe ();
  let jobs = Array.of_list (tier_jobs ~root ~n) in
  let expected =
    Array.map (fun j -> Api.compile_buffered ~config:j.config ~file:j.file j.src) jobs
  in
  let errors = ref 0 in
  let count_errors results =
    Array.iter
      (function Some (Ok _) -> () | Some (Error _) | None -> incr errors)
      results
  in
  let p50_ms lat =
    let sorted = Array.copy lat in
    Array.sort compare sorted;
    1000.0 *. percentile sorted 50.0
  in
  let total = Array.length jobs in
  let cps s = if s > 0.0 then float_of_int total /. s else 0.0 in
  (* baseline: the identical workload against an untiered daemon *)
  let full_cold_p50_ms, full_warm_cps =
    with_daemon ~domains ~tag:"untiered" (fun ~socket_path ->
        let cold, lat =
          latency_pass ~taken:(Atomic.make 0) ~socket_path ~connections jobs
        in
        count_errors cold;
        let _warm, warm_s = timed_pass ~socket_path ~connections jobs in
        (p50_ms lat, cps warm_s))
  in
  (* the tiered daemon: cold answers come from the fast tier, then the
     background queue converges every entry to the full-pipeline bytes *)
  let ( tiered_cold_p50_ms,
        tiered_warm_cps,
        upgrades_done,
        upgrade_drain_s,
        post_upgrade_identical ) =
    with_daemon ~tiered:true ~domains ~tag:"tiered" (fun ~socket_path ->
        let cold, lat =
          latency_pass ~taken:(Atomic.make 0) ~socket_path ~connections jobs
        in
        count_errors cold;
        let t0 = Unix.gettimeofday () in
        let done_, _failed =
          wait_upgrades_drained ~socket_path ~deadline_s:120.0
        in
        let drain_s = Unix.gettimeofday () -. t0 in
        (* post-upgrade, every warm answer must be byte-identical to the
           one-shot full-pipeline compile — the acceptance criterion *)
        let warm, warm_s = timed_pass ~socket_path ~connections jobs in
        let identical_to_full = ref true in
        Array.iteri
          (fun i r ->
            match r with
            | Some (Ok compiled) ->
              if not (identical compiled expected.(i)) then begin
                if !identical_to_full then
                  Fmt.epr
                    "tier traffic: %s diverged post-upgrade (daemon exit %d \
                     vs one-shot full exit %d)@."
                    jobs.(i).file compiled.Api.exit_code
                    expected.(i).Api.exit_code;
                identical_to_full := false
              end
            | Some (Error _) | None ->
              incr errors;
              identical_to_full := false)
          warm;
        (p50_ms lat, cps warm_s, done_, drain_s, !identical_to_full))
  in
  {
    tr_jobs = total;
    tr_connections = connections;
    tr_domains = domains;
    full_cold_p50_ms;
    tiered_cold_p50_ms;
    full_warm_cps;
    tiered_warm_cps;
    upgrades_done;
    upgrade_drain_s;
    upgrades_per_s =
      (if upgrade_drain_s > 0.0 then
         float_of_int upgrades_done /. upgrade_drain_s
       else 0.0);
    post_upgrade_identical;
    tr_transport_errors = !errors;
  }

let tiers_to_json s =
  J.with_schema
    (J.Obj
       [
         ("jobs", J.Int s.tr_jobs);
         ("connections", J.Int s.tr_connections);
         ("domains", J.Int s.tr_domains);
         ("full_cold_p50_ms", J.Float s.full_cold_p50_ms);
         ("tiered_cold_p50_ms", J.Float s.tiered_cold_p50_ms);
         ("full_warm_compiles_per_s", J.Float s.full_warm_cps);
         ("tiered_warm_compiles_per_s", J.Float s.tiered_warm_cps);
         ("upgrades_done", J.Int s.upgrades_done);
         ("upgrade_drain_s", J.Float s.upgrade_drain_s);
         ("upgrades_per_s", J.Float s.upgrades_per_s);
         ("byte_identical", J.Bool s.post_upgrade_identical);
         ("transport_errors", J.Int s.tr_transport_errors);
       ])

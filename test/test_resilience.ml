(* Crash-safety and resilience of the compile service (ISSUE 5).

   What this suite pins: the disk cache's orphaned-temp sweep, the request
   journal's crash-recovery scan, the protocol codec under hostile frames
   (never raises, always answers with the taxonomy), the client's
   deadline/retry/reconnect/fallback loop, the supervisor's
   restart-with-backoff and crash-loop circuit breaker (exit 41), and the
   graceful SIGTERM drain of a real mompd process — all without ever
   changing observable compile bytes. *)

module J = Observe.Json
module E = Fault.Ompgpu_error
module A = Ompgpu_api

(* Severed sockets are routine here; a write to one must be a Sys_error,
   not a process-killing SIGPIPE. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let tiny = Proxyapps.App.Tiny
let app_source name = (Proxyapps.Apps.find_exn name).Proxyapps.App.omp_source tiny

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "momprs-%d-%d.sock" (Unix.getpid ()) !n)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let write_file path contents =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents)

let read_file path = In_channel.with_open_text path In_channel.input_all

let contains s frag =
  let ls = String.length s and lf = String.length frag in
  let rec go i = i + lf <= ls && (String.sub s i lf = frag || go (i + 1)) in
  go 0

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected service error: %s" (E.to_string e)

let server_config ?(domains = 2) ?(capacity = 8) ?watchdog_s ?cache_dir
    ?state_dir ?(injector = Fault.Injector.none) ?(drain_deadline_s = 5.0)
    socket_path =
  {
    Service.Server.socket_path;
    domains;
    capacity;
    watchdog_s;
    cache_dir;
    state_dir;
    injector;
    drain_deadline_s;
    tiered = false;
    cache_max_entries = None;
    cache_max_bytes = None;
    journal_max_bytes = None;
  }

let check_same_compiled what (expected : A.compiled) (got : A.compiled) =
  Alcotest.(check int) (what ^ ": exit code") expected.A.exit_code got.A.exit_code;
  Alcotest.(check string) (what ^ ": stdout bytes") expected.A.output got.A.output;
  Alcotest.(check string)
    (what ^ ": stderr bytes")
    expected.A.diagnostics got.A.diagnostics

(* ------------------------------------------------------------------ *)
(* Disk cache: orphaned temp sweep                                     *)
(* ------------------------------------------------------------------ *)

let test_disk_cache_temp_sweep () =
  let dir = temp_dir "sweep" in
  (* a crash between temp-write and rename orphans files like these *)
  let stale = Filename.concat dir "sched-cache-stale1.tmp" in
  let fresh = Filename.concat dir "sched-cache-fresh2.tmp" in
  let foreign = Filename.concat dir "unrelated.tmp" in
  write_file stale "half-written entry";
  write_file fresh "a concurrent writer's live temp";
  write_file foreign "not ours";
  Unix.utimes stale 1000. 1000.;
  let cache = Sched.Disk_cache.create ~dir () in
  Alcotest.(check int) "one orphan swept" 1 (Sched.Disk_cache.swept cache);
  Alcotest.(check bool) "stale temp gone" false (Sys.file_exists stale);
  Alcotest.(check bool)
    "stale temp quarantined, not deleted" true
    (Sys.file_exists
       (Filename.concat (Filename.concat dir "quarantine")
          "sched-cache-stale1.tmp"));
  Alcotest.(check bool) "young temp untouched" true (Sys.file_exists fresh);
  Alcotest.(check bool) "foreign file untouched" true (Sys.file_exists foreign);
  (* a re-sweep with an aggressive age catches the fresh one too *)
  Unix.utimes fresh 1000. 1000.;
  Alcotest.(check int) "re-sweep" 1
    (Sched.Disk_cache.sweep_temps ~max_age_s:0.5 cache);
  Alcotest.(check int) "counter accumulates" 2 (Sched.Disk_cache.swept cache);
  (* the cache still stores and finds through all of this *)
  Sched.Disk_cache.store cache ~key:"k" ~data:"v";
  Alcotest.(check (option string))
    "cache functional after sweeps" (Some "v")
    (Sched.Disk_cache.find cache ~key:"k")

(* ------------------------------------------------------------------ *)
(* Journal: recovery scan                                              *)
(* ------------------------------------------------------------------ *)

let test_journal_recovery_scan () =
  let dir = temp_dir "journal" in
  let path = Filename.concat dir "journal.ndjson" in
  write_file path
    (String.concat "\n"
       [
         {|{"schema":2,"jv":1,"ev":"begin","seq":0,"id":"a","op":"compile","key":"k0"}|};
         {|{"schema":2,"jv":1,"ev":"settle","seq":0,"code":0}|};
         {|{"schema":2,"jv":1,"ev":"begin","seq":1,"id":"b","op":"run","key":"k1"}|};
         {|{"schema":2,"jv":1,"ev":"settle","seq":1,"code":14}|};
         {|{"schema":2,"jv":1,"ev":"begin","seq":2,"id":"c","op":"compile","key":"k2"}|};
         {|{"schema":2,"jv":99,"ev":"begin","seq":3}|};
         {|{"torn final wri|};
       ]);
  let j, r = Service.Journal.open_ ~dir () in
  Alcotest.(check int) "replayed ok" 1 r.Service.Journal.replayed_ok;
  Alcotest.(check int) "replayed failed" 1 r.Service.Journal.replayed_failed;
  Alcotest.(check int) "interrupted (begun, never settled)" 1
    r.Service.Journal.interrupted;
  Alcotest.(check int) "torn lines (incl. unknown jv)" 2 r.Service.Journal.torn;
  (* the previous life was rotated aside, the fresh journal embeds the
     recovery counters *)
  Alcotest.(check bool)
    "old journal rotated" true
    (Sys.file_exists (Filename.concat dir "journal.prev.ndjson"));
  let fresh = read_file path in
  Alcotest.(check bool) "fresh journal records recovery" true
    (contains fresh {|"ev":"recovered"|});
  (* begin/settle round-trips through a second boot *)
  let seq = Service.Journal.begin_request j ~id:"x" ~op:"compile" ~key:"kx" in
  Service.Journal.settle_request j ~seq ~exit_code:0;
  Service.Journal.close j;
  let _, r2 = Service.Journal.open_ ~dir () in
  Alcotest.(check int) "second boot replays the settle" 1
    r2.Service.Journal.replayed_ok;
  Alcotest.(check int) "second boot sees nothing interrupted" 0
    r2.Service.Journal.interrupted

(* ------------------------------------------------------------------ *)
(* Protocol fuzz: hostile frames never raise                           *)
(* ------------------------------------------------------------------ *)

let read_message_of_bytes bytes =
  let path = Filename.temp_file "frame" ".bin" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes);
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      In_channel.with_open_bin path (fun ic -> Service.Protocol.read_message ic))

let test_protocol_hostile_frames () =
  (match read_message_of_bytes "" with
  | `Eof -> ()
  | _ -> Alcotest.fail "empty stream should be Eof");
  (match read_message_of_bytes "{\"v\":1,\"id\":\"x\",\"op\":\"stats\"}\n" with
  | `Msg (Ok _) -> ()
  | _ -> Alcotest.fail "well-formed frame should decode");
  (match read_message_of_bytes "\x00\xff garbage \x17 bytes\n" with
  | `Msg (Error e) ->
    Alcotest.(check string) "garbage kind" "bad-request" (E.kind_name e.E.kind);
    Alcotest.(check int) "garbage exit code" 42 (E.exit_code e)
  | _ -> Alcotest.fail "garbage should be a structured bad-request");
  (match read_message_of_bytes "{\"v\":1,\"id\":\"tr" with
  | `Msg (Error e) ->
    Alcotest.(check string) "mid-frame EOF kind" "bad-request"
      (E.kind_name e.E.kind)
  | _ -> Alcotest.fail "EOF mid-frame should be a structured bad-request");
  let oversized =
    String.make (Service.Protocol.max_frame_bytes + 1024) 'a' ^ "\n"
  in
  match read_message_of_bytes oversized with
  | `Overflow e ->
    Alcotest.(check string) "oversized kind" "bad-request" (E.kind_name e.E.kind)
  | _ -> Alcotest.fail "oversized frame should be Overflow"

(* A hostile peer against a live daemon: garbage gets a structured answer
   on the same connection; a torn frame (EOF mid-line) gets answered
   best-effort; and the daemon serves clean clients afterwards. *)
let test_daemon_survives_hostile_peer () =
  let socket_path = fresh_socket () in
  let server = Service.Server.create (server_config socket_path) in
  let thread = Thread.create Service.Server.serve_forever server in
  Fun.protect
    ~finally:(fun () ->
      Service.Server.stop server;
      Thread.join thread)
    (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      Out_channel.output_string oc "\x01\x02 not json at all\n";
      Out_channel.flush oc;
      let reply1 = Option.value (In_channel.input_line ic) ~default:"" in
      Alcotest.(check bool) "garbage answered structurally" true
        (contains reply1 {|"kind":"bad-request"|});
      (* a torn frame: half a request, then EOF on the write side *)
      Out_channel.output_string oc "{\"v\":1,\"id\":\"torn";
      Out_channel.flush oc;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let reply2 = Option.value (In_channel.input_line ic) ~default:"" in
      Alcotest.(check bool) "torn frame answered structurally" true
        (contains reply2 {|"kind":"bad-request"|});
      Alcotest.(check (option string)) "then the connection closes cleanly"
        None
        (In_channel.input_line ic);
      Unix.close fd;
      (* the daemon is unharmed *)
      Service.Client.with_connection ~socket_path @@ fun c ->
      let r =
        ok_exn
          (Service.Client.compile c ~file:"x.momp" ~config:A.Config.default
             (app_source "xsbench"))
      in
      Alcotest.(check int) "daemon still compiles" 0 r.A.exit_code;
      let stats = ok_exn (Service.Client.stats c ()) in
      Alcotest.(check (option int))
        "bad requests counted" (Some 2)
        (Option.bind (J.member "requests" stats) (fun r ->
             Option.bind (J.member "bad" r) J.to_int)))

(* ------------------------------------------------------------------ *)
(* Client resilience                                                   *)
(* ------------------------------------------------------------------ *)

let fast_policy =
  {
    Service.Client.attempts = 4;
    backoff_base_s = 0.005;
    backoff_cap_s = 0.02;
    deadline_s = Some 5.;
  }

(* A server that accepts and reads but never answers: the client's
   per-request deadline must turn it into a bounded, transient failure. *)
let test_client_deadline () =
  let socket_path = fresh_socket () in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 8;
  let acceptor =
    Thread.create
      (fun () ->
        let rec loop () =
          match Unix.accept listen_fd with
          | client, _ ->
            ignore
              (Thread.create
                 (fun () ->
                   let buf = Bytes.create 4096 in
                   let rec swallow () =
                     match Unix.read client buf 0 4096 with
                     | 0 -> Unix.close client
                     | _ -> swallow ()
                     | exception Unix.Unix_error _ -> (
                       try Unix.close client with Unix.Unix_error _ -> ())
                   in
                   swallow ())
                 ());
            loop ()
          | exception Unix.Unix_error _ -> ()
        in
        loop ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.shutdown listen_fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Thread.join acceptor;
      try Sys.remove socket_path with Sys_error _ -> ())
    (fun () ->
      let session =
        Service.Client.session
          ~policy:
            { fast_policy with Service.Client.attempts = 2; deadline_s = Some 0.2 }
          ~socket_path ()
      in
      let started = Unix.gettimeofday () in
      let result =
        Service.Client.session_compile session ~file:"x.momp"
          ~config:A.Config.default "x"
      in
      let elapsed = Unix.gettimeofday () -. started in
      Alcotest.(check bool) "unresponsive daemon yields an error" true
        (Result.is_error result);
      Alcotest.(check int) "one retry burned" 1
        (Service.Client.session_retries session);
      Alcotest.(check bool)
        (Printf.sprintf "bounded by the deadline (took %.2fs)" elapsed)
        true (elapsed < 3.);
      Service.Client.session_close session)

(* conn-drop at rate 1.0: every request is dropped mid-flight; the client
   retries (reconnecting each time) until the budget is exhausted, then
   reports the transient error for the caller's fallback. *)
let test_client_retry_budget_exhaustion () =
  let socket_path = fresh_socket () in
  let injector = Fault.Injector.create
      [ { Fault.Injector.site = Fault.Injector.Conn_drop; rate = 1.0; seed = 1 } ]
  in
  let server = Service.Server.create (server_config ~injector socket_path) in
  let thread = Thread.create Service.Server.serve_forever server in
  Fun.protect
    ~finally:(fun () ->
      Service.Server.stop server;
      Thread.join thread)
    (fun () ->
      let session = Service.Client.session ~policy:fast_policy ~socket_path () in
      let result =
        Service.Client.session_compile session ~file:"x.momp"
          ~config:A.Config.default (app_source "xsbench")
      in
      Alcotest.(check bool) "budget exhaustion surfaces the error" true
        (Result.is_error result);
      Alcotest.(check int) "all retries spent" 3
        (Service.Client.session_retries session);
      Service.Client.session_close session)

(* conn-drop at rate 0.5 (deterministic seed): some requests drop, the
   client reconnects and retries, and every compile still settles with
   exactly the one-shot bytes. *)
let test_client_reconnect_byte_identical () =
  let socket_path = fresh_socket () in
  let injector = Fault.Injector.create
      [ { Fault.Injector.site = Fault.Injector.Conn_drop; rate = 0.5; seed = 11 } ]
  in
  let server = Service.Server.create (server_config ~injector socket_path) in
  let thread = Thread.create Service.Server.serve_forever server in
  Fun.protect
    ~finally:(fun () ->
      Service.Server.stop server;
      Thread.join thread)
    (fun () ->
      let config = A.Config.(default |> optimized) in
      let session = Service.Client.session ~policy:fast_policy ~socket_path () in
      List.iter
        (fun name ->
          let file = name ^ ".momp" in
          let source = app_source name in
          let oneshot = A.compile_buffered ~config ~file source in
          let served =
            ok_exn (Service.Client.session_compile session ~file ~config source)
          in
          check_same_compiled (name ^ " despite dropped connections") oneshot
            served)
        [ "xsbench"; "rsbench"; "su3bench"; "miniqmc"; "xsbench"; "rsbench" ];
      Alcotest.(check bool)
        (Printf.sprintf "the faults actually fired (%d retries)"
           (Service.Client.session_retries session))
        true
        (Service.Client.session_retries session >= 1);
      Alcotest.(check bool) "and reconnects happened" true
        (Service.Client.session_reconnects session >= 1);
      Service.Client.session_close session)

(* ------------------------------------------------------------------ *)
(* Supervisor: restart with backoff, breaker, recovery                 *)
(* ------------------------------------------------------------------ *)

let supervisor_config ?(max_restarts = 50) ?(window_s = 30.) server =
  {
    Service.Supervisor.server;
    max_restarts;
    window_s;
    backoff_base_s = 0.002;
    backoff_cap_s = 0.02;
    log = ignore;
  }

(* daemon-kill at rate 0.5: serve loops keep crashing under the client;
   the supervisor restarts them on the same bound socket and every
   compile still settles byte-identically. *)
let test_supervisor_restarts_transparently () =
  let socket_path = fresh_socket () in
  let state_dir = temp_dir "sup-state" in
  (* seed 6's deterministic coin sequence (TFFTFFFT...) crashes the serve
     loop on some accepts but never twice in a row, so the client's
     4-attempt budget always wins; a fresh session per compile forces a
     fresh accept (and coin) per compile *)
  let injector = Fault.Injector.create
      [ { Fault.Injector.site = Fault.Injector.Daemon_kill; rate = 0.5; seed = 6 } ]
  in
  let sup =
    Service.Supervisor.create
      (supervisor_config (server_config ~injector ~state_dir socket_path))
  in
  let outcome = ref None in
  let thread =
    Thread.create (fun () -> outcome := Some (Service.Supervisor.run sup)) ()
  in
  let config = A.Config.(default |> optimized) in
  List.iter
    (fun name ->
      let file = name ^ ".momp" in
      let source = app_source name in
      let oneshot = A.compile_buffered ~config ~file source in
      let session = Service.Client.session ~policy:fast_policy ~socket_path () in
      let served =
        ok_exn (Service.Client.session_compile session ~file ~config source)
      in
      Service.Client.session_close session;
      check_same_compiled (name ^ " across serve-loop crashes") oneshot served)
    [ "xsbench"; "rsbench"; "su3bench"; "miniqmc"; "xsbench"; "su3bench" ];
  let restarts = (Service.Supervisor.supervision sup).Service.Server.restarts in
  Alcotest.(check bool)
    (Printf.sprintf "serve loop crashed and was restarted (%d times)" restarts)
    true (restarts >= 1);
  Service.Supervisor.stop sup;
  Thread.join thread;
  (match !outcome with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "supervisor errored: %s" (E.to_string e)
  | None -> Alcotest.fail "supervisor never finished");
  Alcotest.(check bool) "socket cleaned up" false (Sys.file_exists socket_path);
  (* the journal recorded the restarts *)
  let journal = read_file (Filename.concat state_dir "journal.ndjson") in
  Alcotest.(check bool) "restarts journaled" true
    (contains journal {|"ev":"restart"|})

let test_supervisor_breaker_opens () =
  let socket_path = fresh_socket () in
  let injector = Fault.Injector.create
      [ { Fault.Injector.site = Fault.Injector.Daemon_kill; rate = 1.0; seed = 5 } ]
  in
  let sup =
    Service.Supervisor.create
      (supervisor_config ~max_restarts:2
         (server_config ~injector socket_path))
  in
  let outcome = ref None in
  let thread =
    Thread.create (fun () -> outcome := Some (Service.Supervisor.run sup)) ()
  in
  (* every accept crashes the serve loop; a few connects trip the breaker *)
  let tries = ref 0 in
  while !outcome = None && !tries < 100 do
    incr tries;
    let session =
      Service.Client.session
        ~policy:{ fast_policy with Service.Client.attempts = 1 }
        ~socket_path ()
    in
    ignore
      (Service.Client.session_compile session ~file:"x.momp"
         ~config:A.Config.default "x");
    Service.Client.session_close session;
    Thread.delay 0.01
  done;
  Thread.join thread;
  (match !outcome with
  | Some (Error e) -> (
    Alcotest.(check string) "breaker error kind" "crash-loop"
      (E.kind_name e.E.kind);
    Alcotest.(check int) "breaker exit code" 41 (E.exit_code e);
    Alcotest.(check bool) "crash-loop is not transient" false (E.is_transient e);
    match e.E.kind with
    | E.Crash_loop { restarts; _ } ->
      Alcotest.(check bool) "counted past the threshold" true (restarts > 2)
    | _ -> ())
  | Some (Ok ()) -> Alcotest.fail "supervisor stopped cleanly instead of tripping"
  | None -> Alcotest.fail "breaker never opened");
  Alcotest.(check bool) "breaker state exposed" true
    (Service.Supervisor.supervision sup).Service.Server.breaker_open

(* ------------------------------------------------------------------ *)
(* Graceful drain of a real mompd under SIGTERM                        *)
(* ------------------------------------------------------------------ *)

let mompd_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/mompd.exe"

let () =
  if not (Sys.file_exists mompd_exe) then
    failwith ("test_resilience: mompd binary not found at " ^ mompd_exe)

let wait_for_socket socket_path =
  let rec go n =
    if n > 500 then Alcotest.fail "daemon socket never appeared";
    let probe () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
          | () -> true
          | exception Unix.Unix_error _ -> false)
    in
    if not (Sys.file_exists socket_path && probe ()) then begin
      Thread.delay 0.02;
      go (n + 1)
    end
  in
  go 0

let waitpid_timeout pid ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then None
      else begin
        Thread.delay 0.02;
        go ()
      end
    | _, status -> Some status
  in
  go ()

let test_sigterm_graceful_drain () =
  let socket_path = fresh_socket () in
  let state_dir = temp_dir "drain-state" in
  let err_log = Filename.temp_file "mompd" ".err" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let err_fd =
    Unix.openfile err_log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    Unix.create_process mompd_exe
      [|
        mompd_exe;
        "serve";
        "--socket";
        socket_path;
        "--state-dir";
        state_dir;
        (* every response waits 150ms: guarantees the request is still in
           flight when SIGTERM lands *)
        "--inject";
        "slow-client:1.0";
        "--drain-deadline";
        "5";
      |]
      devnull Unix.stdout err_fd
  in
  Unix.close devnull;
  Unix.close err_fd;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (try Unix.waitpid [ Unix.WNOHANG ] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
      try Sys.remove err_log with Sys_error _ -> ())
    (fun () ->
      wait_for_socket socket_path;
      let config = A.Config.default in
      let source = app_source "xsbench" in
      let oneshot = A.compile_buffered ~config ~file:"x.momp" source in
      let result = ref None in
      let client_thread =
        Thread.create
          (fun () ->
            let c = Service.Client.connect ~deadline_s:10. ~socket_path () in
            result := Some (Service.Client.compile c ~file:"x.momp" ~config source);
            Service.Client.close c)
          ()
      in
      (* let the request reach the daemon, then ask it to die politely *)
      Thread.delay 0.05;
      let sigterm_at = Unix.gettimeofday () in
      Unix.kill pid Sys.sigterm;
      Thread.join client_thread;
      (match !result with
      | Some (Ok served) ->
        check_same_compiled "in-flight request finished during drain" oneshot
          served
      | Some (Error e) ->
        Alcotest.failf "in-flight request lost to the drain: %s (stderr: %s)"
          (E.to_string e) (read_file err_log)
      | None -> Alcotest.fail "client thread died");
      match waitpid_timeout pid ~seconds:8. with
      | Some (Unix.WEXITED 0) ->
        let took = Unix.gettimeofday () -. sigterm_at in
        Alcotest.(check bool)
          (Printf.sprintf "exited within the drain deadline (took %.2fs)" took)
          true (took < 7.);
        Alcotest.(check bool) "socket file removed" false
          (Sys.file_exists socket_path);
        let journal = read_file (Filename.concat state_dir "journal.ndjson") in
        Alcotest.(check bool) "request settled in the journal" true
          (contains journal {|"ev":"settle"|});
        Alcotest.(check bool) "drain journaled" true
          (contains journal {|"ev":"drain"|})
      | Some status ->
        let s =
          match status with
          | Unix.WEXITED n -> Printf.sprintf "exit %d" n
          | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
          | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n
        in
        Alcotest.failf "daemon did not drain cleanly: %s (stderr: %s)" s
          (read_file err_log)
      | None -> Alcotest.failf "daemon hung past the drain deadline")

(* ------------------------------------------------------------------ *)
(* Graceful degradation: no daemon, byte-identical fallback            *)
(* ------------------------------------------------------------------ *)

let mompc_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/mompc.exe"

let run_command cmd =
  let out_file = Filename.temp_file "rsl" ".out" in
  let err_file = Filename.temp_file "rsl" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s > %s 2> %s" cmd (Filename.quote out_file)
         (Filename.quote err_file))
  in
  let out = read_file out_file and err = read_file err_file in
  Sys.remove out_file;
  Sys.remove err_file;
  (code, out, err)

let test_daemonless_fallback_byte_identical () =
  let path = Filename.temp_file "rsl" ".momp.c" in
  write_file path (app_source "rsbench");
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let flags = Printf.sprintf "-O --run %s" (Filename.quote path) in
      let code1, out1, err1 =
        run_command (Printf.sprintf "%s %s" mompc_exe flags)
      in
      (* no socket file at all: immediate in-process fallback *)
      let missing = fresh_socket () in
      let code2, out2, err2 =
        run_command
          (Printf.sprintf "%s %s --daemon %s" mompc_exe flags
             (Filename.quote missing))
      in
      Alcotest.(check int) "exit code (missing socket)" code1 code2;
      Alcotest.(check string) "stdout bytes (missing socket)" out1 out2;
      Alcotest.(check string) "stderr bytes (missing socket)" err1 err2;
      (* a stale socket file nobody listens on: bounded retries, then the
         same fallback *)
      let stale = fresh_socket () in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX stale);
      Unix.close fd;
      Fun.protect
        ~finally:(fun () -> try Sys.remove stale with Sys_error _ -> ())
        (fun () ->
          let code3, out3, err3 =
            run_command
              (Printf.sprintf "%s %s --daemon %s" mompc_exe flags
                 (Filename.quote stale))
          in
          Alcotest.(check int) "exit code (stale socket)" code1 code3;
          Alcotest.(check string) "stdout bytes (stale socket)" out1 out3;
          Alcotest.(check string) "stderr bytes (stale socket)" err1 err3))

let suite =
  [
    Alcotest.test_case "disk-cache/orphan-temp-sweep" `Quick
      test_disk_cache_temp_sweep;
    Alcotest.test_case "journal/recovery-scan" `Quick test_journal_recovery_scan;
    Alcotest.test_case "protocol/hostile-frames" `Quick
      test_protocol_hostile_frames;
    Alcotest.test_case "daemon/survives-hostile-peer" `Quick
      test_daemon_survives_hostile_peer;
    Alcotest.test_case "client/deadline-bounds-unresponsive-daemon" `Quick
      test_client_deadline;
    Alcotest.test_case "client/retry-budget-exhaustion" `Quick
      test_client_retry_budget_exhaustion;
    Alcotest.test_case "client/reconnect-byte-identical" `Quick
      test_client_reconnect_byte_identical;
    Alcotest.test_case "supervisor/restarts-transparently" `Quick
      test_supervisor_restarts_transparently;
    Alcotest.test_case "supervisor/breaker-opens" `Quick
      test_supervisor_breaker_opens;
    Alcotest.test_case "daemon/sigterm-graceful-drain" `Quick
      test_sigterm_graceful_drain;
    Alcotest.test_case "client/daemonless-fallback-byte-identical" `Quick
      test_daemonless_fallback_byte_identical;
  ]

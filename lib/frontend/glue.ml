(* The IR "glue" layer of the device runtime.

   In LLVM the OpenMP device runtime is shipped as bitcode and linked into
   the application module, so execution-mode and parallel-level checks that
   live inside runtime helpers become visible to (and foldable by) the
   middle-end optimizer.  We reproduce that: the front-end routes OpenMP API
   queries through small IR-defined helpers whose bodies branch on
   __kmpc_is_spmd_exec_mode / __kmpc_parallel_level; the runtime-call folding
   pass of the optimizer (Section IV-C) then removes those branches when the
   answers are statically known. *)

open Ir

let tid_name = "__omp_tid"
let nthreads_name = "__omp_nthreads"
let team_name = "__omp_team"
let nteams_name = "__omp_nteams"
let barrier_name = "__omp_barrier"

(* The SPMD and generic runtimes fetch thread-level queries differently;
   the mode check inside these helpers is what the folding pass removes.
   Nested parallelism is handled by the inline sequential fallback the
   front-end emits around worksharing loops, not here. *)
let emit_query_with_mode_check m name target_spmd target_generic =
  let f = Func.make ~linkage:Func.Internal name ~ret_ty:Types.I32 ~params:[] in
  let b = Builder.create f in
  let entry = Builder.new_block b "entry" in
  let spmd_bb = Builder.new_block b "spmd" in
  let generic_bb = Builder.new_block b "generic" in
  Builder.position_at_end b entry;
  let is_spmd = Builder.call b Types.I1 "__kmpc_is_spmd_exec_mode" [] in
  Builder.cbr b is_spmd spmd_bb.Block.label generic_bb.Block.label;
  Builder.position_at_end b spmd_bb;
  let t = Builder.call b Types.I32 target_spmd [] in
  Builder.ret b (Some t);
  Builder.position_at_end b generic_bb;
  let t = Builder.call b Types.I32 target_generic [] in
  Builder.ret b (Some t);
  Irmod.add_func m f

let emit_tid m = emit_query_with_mode_check m tid_name "__gpu_thread_id" "__gpu_thread_id"

let emit_nthreads m =
  emit_query_with_mode_check m nthreads_name "__gpu_num_threads" "__gpu_num_threads"

(* Team queries have no mode dependence: plain pass-throughs. *)
let emit_passthrough m name target =
  let f = Func.make ~linkage:Func.Internal name ~ret_ty:Types.I32 ~params:[] in
  let b = Builder.create f in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let t = Builder.call b Types.I32 target [] in
  Builder.ret b (Some t);
  Irmod.add_func m f

(* define internal void @__omp_barrier(): the aligned (SPMD) barrier and the
   generic-mode barrier differ in the real runtime; the mode check is what
   the folding pass removes. *)
let emit_barrier m =
  let f = Func.make ~linkage:Func.Internal barrier_name ~ret_ty:Types.Void ~params:[] in
  let b = Builder.create f in
  let entry = Builder.new_block b "entry" in
  let spmd_bb = Builder.new_block b "spmd" in
  let generic_bb = Builder.new_block b "generic" in
  let exit_bb = Builder.new_block b "exit" in
  Builder.position_at_end b entry;
  let is_spmd = Builder.call b Types.I1 "__kmpc_is_spmd_exec_mode" [] in
  Builder.cbr b is_spmd spmd_bb.Block.label generic_bb.Block.label;
  Builder.position_at_end b spmd_bb;
  ignore (Builder.call b Types.Void "__kmpc_barrier" []);
  Builder.br b exit_bb.Block.label;
  Builder.position_at_end b generic_bb;
  ignore (Builder.call b Types.Void "__kmpc_barrier" []);
  Builder.br b exit_bb.Block.label;
  Builder.position_at_end b exit_bb;
  Builder.ret b None;
  Irmod.add_func m f

(* Emit the glue helpers into [m] (idempotent). *)
let emit m =
  if Irmod.find_func m tid_name = None then begin
    emit_tid m;
    emit_nthreads m;
    emit_passthrough m team_name "__gpu_team_id";
    emit_passthrough m nteams_name "__gpu_num_teams";
    emit_barrier m
  end

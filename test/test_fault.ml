(* The fault-injection harness, the structured error taxonomy and the
   hang/deadlock detectors (docs/ROBUSTNESS.md).

   The matrix tests exercise every injection site in each supervision mode —
   fail-fast, bounded retry, graceful fallback — through the public driver
   surfaces (Harness.Runner batches, the scheduler pool, the disk cache),
   asserting that faults always settle into structured outcomes and that
   injected runs are replayable from their seed alone. *)

module E = Fault.Ompgpu_error
module Inj = Fault.Injector

let machine = Gpusim.Machine.test_machine
let scale = Proxyapps.App.Tiny
let rsbench () = Proxyapps.Apps.find_exn "rsbench"

let inject site ?(rate = 1.0) ?(seed = 0) config =
  Harness.Config.with_inject [ { Inj.site; rate; seed } ] config

let outcome_kind (m : Harness.Runner.measurement) =
  match m.Harness.Runner.outcome with
  | Harness.Runner.Ok _ -> None
  | Harness.Runner.Err e -> Some e.E.kind

(* ------------------------------------------------------------------ *)
(* Taxonomy                                                            *)
(* ------------------------------------------------------------------ *)

let all_kinds =
  [
    (E.Lex, 10); (E.Parse, 11); (E.Codegen, 12); (E.Verify, 13);
    (E.Pass_crash { pass = "p"; round = 0 }, 14); (E.Sim_trap, 20);
    (E.Oom, 21); (E.Shared_budget_exceeded, 22);
    (E.Deadlock { barrier = "f/b" }, 23); (E.Timeout { seconds = 1. }, 24);
    (E.Cache_corrupt, 30); (E.Internal, 70);
  ]

let test_exit_codes () =
  (* the exit codes are API: CI's fault matrix and scripts match on them *)
  List.iter
    (fun (kind, expect) ->
      let e = E.make kind ~phase:E.Driver "x" in
      Alcotest.(check int) (E.kind_name kind ^ " exit code") expect (E.exit_code e))
    all_kinds

let test_transient () =
  List.iter
    (fun (kind, _) ->
      let e = E.make kind ~phase:E.Driver "x" in
      let expect =
        match kind with E.Timeout _ | E.Oom -> true | _ -> false
      in
      Alcotest.(check bool) (E.kind_name kind ^ " transient") expect (E.is_transient e))
    all_kinds

let test_to_string_stable () =
  let e =
    E.make (E.Deadlock { barrier = "main/then0" }) ~phase:E.Simulating
      ~loc:(Support.Loc.make ~file:"a.c" ~line:3 ~col:7) "stuck"
  in
  Alcotest.(check string) "rendering"
    "simulating error[deadlock] (barrier main/then0) at a.c:3:7: stuck"
    (E.to_string e);
  (* the backtrace never leaks into the stable rendering *)
  let e = { e with E.backtrace = Some "Raised at ..." } in
  Alcotest.(check bool) "no backtrace in to_string" false
    (String.length (E.to_string e) > String.length (E.to_string { e with E.backtrace = None }))

let test_to_json_fields () =
  let e = E.make E.Sim_trap ~phase:E.Simulating ~backtrace:"BT" "boom" in
  let j = E.to_json e in
  let str k = Option.bind (Observe.Json.member k j) Observe.Json.to_str in
  let num k = Option.bind (Observe.Json.member k j) Observe.Json.to_int in
  Alcotest.(check (option string)) "kind" (Some "sim-trap") (str "kind");
  Alcotest.(check (option string)) "phase" (Some "simulating") (str "phase");
  Alcotest.(check (option int)) "exit_code" (Some 20) (num "exit_code");
  Alcotest.(check (option string)) "message" (Some "boom") (str "message");
  Alcotest.(check (option string)) "backtrace" (Some "BT") (str "backtrace")

let test_classify_backtrace () =
  Printexc.record_backtrace true;
  let e =
    try failwith "kaboom"
    with ex -> Harness.Errors.classify ~phase:E.Driver ex (Printexc.get_raw_backtrace ())
  in
  Alcotest.(check string) "kind" "internal" (E.kind_name e.E.kind);
  Alcotest.(check int) "exit code" 70 (E.exit_code e);
  Alcotest.(check bool) "backtrace captured" true (e.E.backtrace <> None)

(* ------------------------------------------------------------------ *)
(* Injector determinism                                                *)
(* ------------------------------------------------------------------ *)

let coins t site n = List.init n (fun _ -> Inj.fire t site)

let test_parse_spec () =
  (match Inj.parse_spec "mem-alloc" with
  | Ok { Inj.site = Inj.Mem_alloc; rate; seed } ->
    Alcotest.(check (float 0.)) "default rate" 1.0 rate;
    Alcotest.(check int) "default seed" 0 seed
  | _ -> Alcotest.fail "mem-alloc should parse");
  (match Inj.parse_spec "pool-stall:0.25:42" with
  | Ok { Inj.site = Inj.Pool_stall; rate; seed } ->
    Alcotest.(check (float 0.)) "rate" 0.25 rate;
    Alcotest.(check int) "seed" 42 seed
  | _ -> Alcotest.fail "full spec should parse");
  List.iter
    (fun bad ->
      match Inj.parse_spec bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ "bogus-site"; "mem-alloc:xx"; "mem-alloc:0.5:zz"; "" ]

let test_injector_replay () =
  let spec = { Inj.site = Inj.Sim_trap; rate = 0.5; seed = 9 } in
  let a = Inj.create [ spec ] and b = Inj.create [ spec ] in
  Alcotest.(check (list bool)) "same seed, same coins"
    (coins a Inj.Sim_trap 128) (coins b Inj.Sim_trap 128);
  Alcotest.(check bool) "unarmed site never fires" false
    (List.mem true (coins a Inj.Mem_alloc 64))

let test_derive () =
  let base = Inj.create [ { Inj.site = Inj.Sim_trap; rate = 0.5; seed = 9 } ] in
  let seq tag = coins (Inj.derive base tag) Inj.Sim_trap 128 in
  Alcotest.(check (list bool)) "same tag, same coins" (seq "job-a#0") (seq "job-a#0");
  Alcotest.(check bool) "fresh tag, fresh coins" false (seq "job-a#0" = seq "job-a#1");
  Alcotest.(check bool) "derive of none stays none" true
    (Inj.is_none (Inj.derive Inj.none "x"))

let test_fingerprint () =
  Alcotest.(check string) "none" "" (Inj.fingerprint Inj.none);
  let a =
    Inj.create
      [ { Inj.site = Inj.Sim_trap; rate = 1.0; seed = 0 };
        { Inj.site = Inj.Mem_alloc; rate = 0.5; seed = 3 } ]
  and b =
    Inj.create
      [ { Inj.site = Inj.Mem_alloc; rate = 0.5; seed = 3 };
        { Inj.site = Inj.Sim_trap; rate = 1.0; seed = 0 } ]
  in
  Alcotest.(check string) "order-independent" (Inj.fingerprint a) (Inj.fingerprint b);
  Alcotest.(check bool) "non-empty" true (Inj.fingerprint a <> "")

(* ------------------------------------------------------------------ *)
(* The fault matrix: site x supervision mode, through the runner       *)
(* ------------------------------------------------------------------ *)

let test_fail_fast_kinds () =
  (* rate-1.0 injection settles as the site's taxonomy kind, never an
     exception out of the runner *)
  let app = rsbench () in
  let expect site config kind_name =
    let m = Harness.Runner.run ~machine ~scale app (inject site config) in
    match outcome_kind m with
    | Some k -> Alcotest.(check string) (Inj.site_name site) kind_name (E.kind_name k)
    | None -> Alcotest.failf "%s: expected an Err outcome" (Inj.site_name site)
  in
  expect Inj.Mem_alloc Harness.Config.no_opt "oom";
  expect Inj.Sim_trap Harness.Config.no_opt "sim-trap";
  expect Inj.Pass_crash Harness.Config.dev0 "pass-crash"

let test_injection_joins_cache_key () =
  let app = rsbench () in
  let m = Frontend.Codegen.compile ~scheme:Frontend.Codegen.Simplified ~file:"rsbench.c"
      (app.Proxyapps.App.omp_source scale)
  in
  let clean = Harness.Config.no_opt in
  let injected = inject Inj.Sim_trap clean in
  Alcotest.(check bool) "injected and clean runs never share a cache entry" false
    (Harness.Runner.cache_key ~machine ~scale m clean
    = Harness.Runner.cache_key ~machine ~scale
        ~inject:(Inj.fingerprint (Inj.create injected.Harness.Config.inject))
        m injected)

let test_retry_recovers () =
  (* rate 0.0002 / seed 8 is a probed (deterministic) schedule: attempt 0
     fires an allocation fault, attempt 1 draws fresh coins and runs clean —
     exactly the transient profile bounded retry exists for *)
  let app = rsbench () in
  let config = inject Inj.Mem_alloc ~rate:0.0002 ~seed:8 Harness.Config.no_opt in
  let once = Harness.Runner.run ~machine ~scale app config in
  Alcotest.(check (option string)) "attempt 0 fails transiently" (Some "oom")
    (Option.map E.kind_name (outcome_kind once));
  let no_retry = Harness.Runner.run_batch ~machine ~scale [ (app, config) ] in
  Alcotest.(check bool) "retries=0 keeps the failure" true
    (outcome_kind (List.hd no_retry) <> None);
  let retried =
    Harness.Runner.run_batch ~machine ~scale ~retries:1 ~backoff_s:0.001
      [ (app, config) ]
  in
  Alcotest.(check (option string)) "one retry recovers" None
    (Option.map E.kind_name (outcome_kind (List.hd retried)))

let test_injected_batch_byte_stable () =
  (* two same-seed injected batches render byte-identically — the replay
     guarantee the CI fault matrix asserts end-to-end on mompc *)
  let app = rsbench () in
  let jobs =
    [ (app, inject Inj.Sim_trap ~rate:0.001 ~seed:7 Harness.Config.no_opt);
      (app, inject Inj.Mem_alloc ~rate:0.0002 ~seed:8 Harness.Config.no_opt) ]
  in
  let json ms =
    String.concat "\n"
      (List.map
         (fun m -> Observe.Json.to_string (Harness.Runner.json_of_measurement m))
         ms)
  in
  (* backtraces are raise-path- and domain-dependent by nature, so the
     cross-schedule guarantee covers the stable rendering (what CI diffs),
     not the json backtrace field *)
  let stable ms =
    String.concat "\n"
      (List.map
         (fun (m : Harness.Runner.measurement) ->
           m.Harness.Runner.app ^ "/" ^ m.Harness.Runner.config.Harness.Config.label
           ^ ": "
           ^
           match m.Harness.Runner.outcome with
           | Harness.Runner.Ok x -> string_of_int x.Harness.Runner.cycles
           | Harness.Runner.Err e -> E.to_string e)
         ms)
  in
  let a = Harness.Runner.run_batch ~machine ~scale jobs in
  let b = Harness.Runner.run_batch ~machine ~scale jobs in
  let c =
    Sched.Pool.with_pool ~domains:2 (fun pool ->
        Harness.Runner.run_batch ~machine ~scale ~pool jobs)
  in
  Alcotest.(check string) "replayed batch identical" (json a) (json b);
  Alcotest.(check string) "parallel injected batch identical" (stable a) (stable c)

(* ------------------------------------------------------------------ *)
(* Shared-memory exhaustion: graceful fallback, not abort              *)
(* ------------------------------------------------------------------ *)

let fallback_src =
  {|
long A[8];
long B[4];
static void bump(long* p) { p[0] = p[0] + 1; }
int main() {
  #pragma omp target teams distribute num_teams(2) thread_limit(4)
  for (int i = 0; i < 8; i++) {
    long v = (long)i;
    bump(&v);
    #pragma omp atomic
    B[0] += v;
    A[i] = v;
  }
  for (int k = 0; k < 8; k++) { trace(A[k]); }
  trace(B[0]);
  return 0;
}
|}

let run_with injector src =
  let m = Helpers.compile src in
  let sim = Gpusim.Interp.create ~injector machine m in
  Gpusim.Interp.run_host sim;
  sim

let total_fallbacks (sim : Gpusim.Interp.t) =
  List.fold_left
    (fun acc (s : Gpusim.Interp.launch_stats) -> acc + s.Gpusim.Interp.shared_fallbacks)
    0 sim.Gpusim.Interp.kernel_stats

let test_shared_budget_fallback () =
  let clean = run_with Inj.none fallback_src in
  let injected =
    run_with (Inj.create [ { Inj.site = Inj.Shared_budget; rate = 1.0; seed = 0 } ])
      fallback_src
  in
  Alcotest.(check bool) "clean run never falls back" true (total_fallbacks clean = 0);
  Alcotest.(check bool) "exhaustion is served from the heap" true
    (total_fallbacks injected > 0);
  (* the fallback path is semantics-preserving: same observable trace *)
  Alcotest.(check (list string)) "trace preserved"
    (List.map (Fmt.str "%a" Gpusim.Rvalue.pp) (Gpusim.Interp.trace_values clean))
    (List.map (Fmt.str "%a" Gpusim.Rvalue.pp) (Gpusim.Interp.trace_values injected))

(* ------------------------------------------------------------------ *)
(* Hang/deadlock detection                                             *)
(* ------------------------------------------------------------------ *)

let divergent_barrier_src =
  {|
long A[8];
int main() {
  #pragma omp target teams distribute num_teams(1) thread_limit(4)
  for (int i = 0; i < 1; i++) {
    #pragma omp parallel
    {
      if (omp_get_thread_num() < 2) {
        #pragma omp barrier
      }
      A[omp_get_thread_num()] = 1;
    }
  }
  return 0;
}
|}

let test_divergent_barrier_flagged () =
  match run_with Inj.none divergent_barrier_src with
  | exception E.Error { E.kind = E.Deadlock { barrier }; message; _ } ->
    (* the diagnosis names the func/block site the stuck threads park at *)
    Alcotest.(check bool) "barrier site named" true (String.contains barrier '/');
    Alcotest.(check bool) "diagnosis mentions divergence" true
      (String.length message > 0)
  | exception e -> Alcotest.failf "expected a Deadlock error, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "divergent barrier must be flagged as a deadlock"

let test_deadlock_distinct_from_fuel () =
  (* fuel exhaustion (a hang, possibly productive) and barrier divergence
     (provably stuck) are different kinds with different exit codes *)
  let m = Helpers.compile "int main() { int x = 1; while (x) { x = 1; } return 0; }" in
  let sim = Gpusim.Interp.create ~fuel:10_000 machine m in
  match Gpusim.Interp.run_host sim with
  | exception E.Error e ->
    Alcotest.(check string) "fuel is a timeout" "timeout" (E.kind_name e.E.kind);
    Alcotest.(check int) "timeout exit code" 24 (E.exit_code e)
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_experiment_kernels_deadlock_free () =
  (* every experiment configuration of every proxy app — including all the
     SPMD-mode builds — must run to completion: no barrier divergence *)
  List.iter
    (fun app ->
      List.iter
        (fun config ->
          let m = Harness.Runner.run ~machine ~scale app config in
          match m.Harness.Runner.outcome with
          | Harness.Runner.Err { E.kind = E.Deadlock _; _ } ->
            Alcotest.failf "%s/%s deadlocked" app.Proxyapps.App.name
              config.Harness.Config.label
          | _ -> ())
        (Harness.Config.fig11_configs app.Proxyapps.App.name))
    Proxyapps.Apps.all

(* ------------------------------------------------------------------ *)
(* Pool supervision: watchdog, bounded retry, containment              *)
(* ------------------------------------------------------------------ *)

let test_pool_watchdog () =
  let results =
    Sched.Pool.with_pool ~domains:2 (fun pool ->
        Sched.Pool.map_list_guarded pool ~watchdog_s:0.05
          (fun ~attempt:_ x ->
            if x = 1 then Unix.sleepf 0.4;
            x * 10)
          [ 0; 1; 2 ])
  in
  (match results with
  | [ Ok 0; Error (E.Error e, _); Ok 20 ] ->
    Alcotest.(check string) "hung job settles as timeout" "timeout" (E.kind_name e.E.kind);
    Alcotest.(check string) "scheduling phase" "scheduling" (E.phase_name e.E.phase)
  | _ -> Alcotest.fail "expected [Ok 0; Error timeout; Ok 20]");
  ()

let test_pool_retry_fresh_attempt () =
  let attempts = Atomic.make 0 in
  let results =
    Sched.Pool.with_pool ~domains:1 (fun pool ->
        Sched.Pool.map_list_guarded pool ~retries:2 ~backoff_s:0.001
          (fun ~attempt x ->
            Atomic.incr attempts;
            if attempt = 0 then
              E.raise_error (E.Timeout { seconds = 0. }) ~phase:E.Scheduling
                "transient glitch"
            else x + attempt)
          [ 100 ])
  in
  (match results with
  | [ Ok v ] -> Alcotest.(check int) "second attempt succeeds" 101 v
  | _ -> Alcotest.fail "retry should recover the job");
  Alcotest.(check int) "exactly two attempts" 2 (Atomic.get attempts)

let test_pool_containment () =
  (* a deterministic failure is not retried and never escapes the batch *)
  let attempts = Atomic.make 0 in
  let results =
    Sched.Pool.with_pool ~domains:2 (fun pool ->
        Sched.Pool.map_list_guarded pool ~retries:3 ~backoff_s:0.001
          (fun ~attempt:_ x ->
            if x = 1 then begin
              Atomic.incr attempts;
              failwith "deterministic bug"
            end;
            x)
          [ 0; 1; 2 ])
  in
  (match results with
  | [ Ok 0; Error (Failure msg, _); Ok 2 ] ->
    Alcotest.(check string) "original exception preserved" "deterministic bug" msg
  | _ -> Alcotest.fail "expected the failure contained in slot 1");
  Alcotest.(check int) "deterministic failures are not retried" 1 (Atomic.get attempts)

(* ------------------------------------------------------------------ *)
(* Disk-cache integrity                                                *)
(* ------------------------------------------------------------------ *)

let with_tmp_dir f =
  let dir = Filename.temp_file "fault-cache" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_cache_corruption_quarantined () =
  with_tmp_dir (fun dir ->
      let reported = ref [] in
      let injector = Inj.create [ { Inj.site = Inj.Cache_corrupt; rate = 1.0; seed = 0 } ] in
      let cache =
        Sched.Disk_cache.create ~injector
          ~on_corrupt:(fun ~key ~path:_ -> reported := key :: !reported)
          ~dir ()
      in
      Sched.Disk_cache.store cache ~key:"k1" ~data:"precious payload";
      (* the injected bit-flip makes the entry fail digest verification: the
         cache must treat it as a miss and quarantine it, never serve it *)
      Alcotest.(check (option string)) "corrupt entry is a miss" None
        (Sched.Disk_cache.find cache ~key:"k1");
      Alcotest.(check int) "counted" 1 (Sched.Disk_cache.corrupt cache);
      Alcotest.(check (list string)) "reported" [ "k1" ] !reported;
      Alcotest.(check bool) "entry moved to quarantine/" true
        (Sys.file_exists (Filename.concat (Filename.concat dir "quarantine") "k1"));
      (* after the miss the caller recomputes and stores again; a clean cache
         over the same dir serves it *)
      let clean = Sched.Disk_cache.create ~dir () in
      Sched.Disk_cache.store clean ~key:"k1" ~data:"precious payload";
      Alcotest.(check (option string)) "clean store round-trips"
        (Some "precious payload")
        (Sched.Disk_cache.find clean ~key:"k1"))

let test_cache_external_corruption () =
  (* corruption from outside the process (torn write, disk fault) is caught
     by the same digest check *)
  with_tmp_dir (fun dir ->
      let cache = Sched.Disk_cache.create ~dir () in
      Sched.Disk_cache.store cache ~key:"k2" ~data:"0123456789";
      let path = Filename.concat dir "k2" in
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let bytes = really_input_string ic n in
      close_in ic;
      let mangled = Bytes.of_string bytes in
      Bytes.set mangled (n - 1) (Char.chr (Char.code (Bytes.get mangled (n - 1)) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc mangled;
      close_out oc;
      Alcotest.(check (option string)) "mangled entry is a miss" None
        (Sched.Disk_cache.find cache ~key:"k2");
      Alcotest.(check int) "counted" 1 (Sched.Disk_cache.corrupt cache))

let suite =
  [
    Alcotest.test_case "taxonomy exit codes" `Quick test_exit_codes;
    Alcotest.test_case "taxonomy transience" `Quick test_transient;
    Alcotest.test_case "stable rendering" `Quick test_to_string_stable;
    Alcotest.test_case "error json shape" `Quick test_to_json_fields;
    Alcotest.test_case "classify captures backtrace" `Quick test_classify_backtrace;
    Alcotest.test_case "spec parsing" `Quick test_parse_spec;
    Alcotest.test_case "injector replay" `Quick test_injector_replay;
    Alcotest.test_case "per-tag derivation" `Quick test_derive;
    Alcotest.test_case "fingerprint" `Quick test_fingerprint;
    Alcotest.test_case "fail-fast matrix" `Quick test_fail_fast_kinds;
    Alcotest.test_case "injection joins cache key" `Quick test_injection_joins_cache_key;
    Alcotest.test_case "bounded retry recovers" `Quick test_retry_recovers;
    Alcotest.test_case "injected batch byte-stable" `Quick test_injected_batch_byte_stable;
    Alcotest.test_case "shared-budget heap fallback" `Quick test_shared_budget_fallback;
    Alcotest.test_case "divergent barrier flagged" `Quick test_divergent_barrier_flagged;
    Alcotest.test_case "deadlock distinct from fuel" `Quick test_deadlock_distinct_from_fuel;
    Alcotest.test_case "experiment kernels deadlock-free" `Quick
      test_experiment_kernels_deadlock_free;
    Alcotest.test_case "pool watchdog" `Quick test_pool_watchdog;
    Alcotest.test_case "pool retry draws fresh attempt" `Quick test_pool_retry_fresh_attempt;
    Alcotest.test_case "pool containment" `Quick test_pool_containment;
    Alcotest.test_case "cache corruption quarantined" `Quick test_cache_corruption_quarantined;
    Alcotest.test_case "cache external corruption" `Quick test_cache_external_corruption;
  ]

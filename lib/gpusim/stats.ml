(* Cost-model counters as JSON, one object per kernel launch. *)

let json_of_launch (s : Interp.launch_stats) =
  Observe.Json.Obj
    [
      ("kernel", Observe.Json.String s.Interp.kernel_name);
      ("cycles", Observe.Json.Int s.Interp.cycles);
      ("team_cycles_total", Observe.Json.Int s.Interp.team_cycles_total);
      ("instructions", Observe.Json.Int s.Interp.instructions);
      ("loads_global", Observe.Json.Int s.Interp.loads_global);
      ("loads_shared", Observe.Json.Int s.Interp.loads_shared);
      ("loads_local", Observe.Json.Int s.Interp.loads_local);
      ("stores_global", Observe.Json.Int s.Interp.stores_global);
      ("stores_shared", Observe.Json.Int s.Interp.stores_shared);
      ("stores_local", Observe.Json.Int s.Interp.stores_local);
      ("atomics_global", Observe.Json.Int s.Interp.atomics_global);
      ("atomics_shared", Observe.Json.Int s.Interp.atomics_shared);
      ("divergent_branches", Observe.Json.Int s.Interp.divergent_branches);
      ("runtime_calls", Observe.Json.Int s.Interp.runtime_calls);
      ("barriers", Observe.Json.Int s.Interp.barriers);
      ("indirect_calls", Observe.Json.Int s.Interp.indirect_calls);
      ("shared_bytes", Observe.Json.Int s.Interp.shared_bytes);
      ("shared_fallbacks", Observe.Json.Int s.Interp.shared_fallbacks);
      ("heap_high_water", Observe.Json.Int s.Interp.heap_high_water);
      ("registers", Observe.Json.Int s.Interp.registers);
      ("teams", Observe.Json.Int s.Interp.teams);
      ("threads_per_team", Observe.Json.Int s.Interp.threads_per_team);
    ]

let json_of_sim (t : Interp.t) =
  Observe.Json.Obj
    [
      ("total_kernel_cycles", Observe.Json.Int (Interp.total_kernel_cycles t));
      ( "kernels",
        Observe.Json.List
          (List.rev_map json_of_launch t.Interp.kernel_stats) );
    ]

(** Deterministic, seedable fault injection.

    An injector is a set of named sites, each with a firing rate and a seed.
    Every layer that can fail consults its site before the fallible action:
    [fire t site] draws the next pseudo-random coin of that site — a pure
    function of (seed, site, query index), so a run is replayable from its
    seed alone, independent of wall-clock, scheduling or domain count.

    Per-job determinism under the parallel drivers comes from [derive]: the
    batch runner derives a child injector per (job, attempt) tag, so the
    coin sequence a job sees does not depend on how jobs interleave — and a
    *retried* job draws fresh coins, which is what makes bounded retry
    worthwhile against sub-1.0 rates. *)

type site =
  | Mem_alloc  (** device-heap allocation failure in [Gpusim.Mem] *)
  | Shared_budget
      (** shared-memory budget exhaustion in [Gpusim.Interp]: forces the
          paper's heap-fallback path (graceful, counted) instead of abort *)
  | Sim_trap  (** a trap on an executed instruction in [Gpusim.Interp] *)
  | Pass_crash  (** an exception inside [Openmpopt.Pass_manager.run] *)
  | Cache_corrupt  (** bit-flip a [Sched.Disk_cache] entry at store time *)
  | Disk_full
      (** fail a [Sched.Disk_cache] store as if the disk were full
          (ENOSPC-shaped: counted, breaker-tripping, never client-visible) *)
  | Pool_stall  (** stall a scheduler job (exercises the pool watchdog) *)
  | Conn_drop
      (** [Service.Server]: drop the connection after reading a request,
          before answering (exercises client reconnect + retry) *)
  | Partial_frame
      (** [Service.Server]: write only a prefix of the response line, then
          drop the connection (exercises client partial-frame recovery) *)
  | Slow_client
      (** [Service.Server]: delay the response (exercises per-request
          client deadlines) *)
  | Daemon_kill
      (** [Service.Server]: crash the serve loop itself after an accept
          (exercises the supervisor's restart-with-backoff path) *)
  | Shard_down
      (** [Service.Router]: treat the hash ring's primary shard as down for
          one request (exercises failover to the next live shard) *)
  | Probe_timeout
      (** [Service.Router]: fail one health probe without contacting the
          shard (exercises the up/degraded/down state machine) *)
  | Ring_skew
      (** [Service.Router]: rotate the ring's preference order for one
          request (exercises cold-but-correct misrouting) *)

val all_sites : site list
val site_name : site -> string
val site_of_name : string -> site option

type spec = { site : site; rate : float; seed : int }

val parse_spec : string -> (spec, string) result
(** Parse ["site[:rate][:seed]"] (e.g. ["mem-alloc:0.5:42"]).  Rate
    defaults to 1.0, seed to 0. *)

val spec_to_string : spec -> string

type t

val none : t
(** The null injector: every [fire] is false, zero overhead. *)

val create : spec list -> t
val is_none : t -> bool
val specs : t -> spec list

val fire : t -> site -> bool
(** Draw the site's next coin; false when the site is not armed. *)

val derive : t -> string -> t
(** Child injector with per-site seeds re-derived from [tag] (and fresh
    query counters): same parent + same tag → same coin sequence. *)

val fingerprint : t -> string
(** Stable content identity for cache keys: ["" ] for [none], else the
    sorted spec list.  Two runs with different injection must never share a
    cached result. *)

val stall_seconds : float
(** How long an injected [Pool_stall] sleeps (long enough for a short
    watchdog to fire, short enough for tests: 0.25s). *)

val stall : t -> unit
(** Sleep [stall_seconds] if the [Pool_stall] site fires. *)

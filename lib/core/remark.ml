(* Optimization remarks (Section IV-D).

   Every remark carries the unique OMP1xx identifier used by the upstream
   implementation, so users can look up the explanation page; [Passed]
   remarks report performed transformations, [Missed] ones are actionable
   missed opportunities, [Analysis] ones provide supporting detail. *)

type kind = Passed | Missed | Analysis

type t = {
  id : int;  (* e.g. 110 for OMP110 *)
  kind : kind;
  loc : Support.Loc.t;
  func : string;  (* enclosing function *)
  message : string;
}

let registry : (int * string) list =
  [
    (100, "Potentially unknown OpenMP target region behaviour.");
    (110, "Moving globalized variable to the stack.");
    (111, "Replacing globalized variable with shared memory.");
    (112, "Found thread data sharing on the GPU. Expect degraded performance due to data \
           globalization.");
    (113, "Could not move globalized variable to the stack. Variable is potentially captured \
           in call. Mark parameter as `__attribute__((noescape))` to override.");
    (120, "Transformed generic-mode kernel to SPMD-mode.");
    (121, "Value has potential side effects preventing SPMD-mode execution. Add \
           `ext_spmd_amenable` assumption to the called function to override.");
    (130, "Rewriting generic-mode kernel with a customized state machine.");
    (131, "Generic-mode kernel is executed with a customized state machine that requires a \
           fallback.");
    (132, "Generic-mode kernel is executed with a customized state machine that requires a \
           fallback (indirect call or unknown callee).");
    (133, "Generic-mode kernel contains no parallel regions; the state machine was removed.");
    (140, "Could not internalize function. Some optimizations may not be possible.");
    (150, "Parallel region is used in unknown ways. Will not attempt to rewrite the state \
           machine.");
    (160, "Removing parallel region with no side-effects.");
    (170, "OpenMP runtime call deduplicated.");
    (180, "Replacing OpenMP runtime call with a constant.");
  ]

let description id =
  match List.assoc_opt id registry with
  | Some d -> d
  | None -> "Unknown remark."

let make ?(kind = Passed) ?(loc = Support.Loc.none) ~func ?detail id =
  let message =
    match detail with
    | Some d -> Printf.sprintf "%s (%s)" (description id) d
    | None -> description id
  in
  { id; kind; loc; func; message }

let pp ppf r =
  let kind_str =
    match r.kind with
    | Passed -> "-Rpass=openmp-opt"
    | Missed -> "-Rpass-missed=openmp-opt"
    | Analysis -> "-Rpass-analysis=openmp-opt"
  in
  Fmt.pf ppf "%a: remark: %s [OMP%d] [%s] (in %s)" Support.Loc.pp r.loc r.message r.id
    kind_str r.func

let to_string r = Fmt.str "%a" pp r

(* A collector threaded through the passes. *)
type sink = { mutable remarks : t list }

let sink () = { remarks = [] }
let emit sink r = sink.remarks <- r :: sink.remarks
let all sink = List.rev sink.remarks
let count ?id ?kind sink =
  List.length
    (List.filter
       (fun r ->
         (match id with Some i -> r.id = i | None -> true)
         && match kind with Some k -> r.kind = k | None -> true)
       sink.remarks)

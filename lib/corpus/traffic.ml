(* Corpus-over-daemon traffic generation (see the .mli).  The server runs
   in-process exactly as bench's service benchmark boots it; clients are
   plain threads sharing a work queue, so [connections] concurrent
   sessions stress the accept loop, admission control and the shared
   caches the way a compile fleet would. *)

module Api = Ompgpu_api

type stats = {
  programs : int;
  jobs : int;
  connections : int;
  domains : int;
  cold_s : float;
  warm_s : float;
  cold_cps : float;
  warm_cps : float;
  byte_identical : bool;
  transport_errors : int;
}

type job = { file : string; config : Api.Config.t; src : string }

let jobs_of_corpus ~root ~n =
  List.concat
    (List.init n (fun i ->
         let prog = Gen.generate (Gen.program_stream ~root i) in
         List.map
           (fun cell ->
             {
               file = Printf.sprintf "corpus-%d-%s.c" i (Matrix.cell_name cell);
               config = Matrix.config_of_cell cell;
               src = Gen.render ~mode:cell.Matrix.mode prog;
             })
           Matrix.cells))

let identical (a : Api.compiled) (b : Api.compiled) =
  a.Api.exit_code = b.Api.exit_code
  && String.equal a.Api.output b.Api.output
  && String.equal a.Api.diagnostics b.Api.diagnostics

(* One timed pass: [connections] threads, each with its own resilient
   session, draining a shared queue.  Results land in a per-job slot so
   no two threads write the same cell. *)
let timed_pass ~socket_path ~connections (jobs : job array) =
  let results = Array.make (Array.length jobs) None in
  let next = ref 0 in
  let lock = Mutex.create () in
  let take () =
    Mutex.lock lock;
    let i = !next in
    if i < Array.length jobs then incr next;
    Mutex.unlock lock;
    if i < Array.length jobs then Some i else None
  in
  let worker () =
    let session = Service.Client.session ~socket_path () in
    let rec loop () =
      match take () with
      | None -> ()
      | Some i ->
        let j = jobs.(i) in
        results.(i) <-
          Some (Service.Client.session_compile session ~file:j.file ~config:j.config j.src);
        loop ()
    in
    loop ();
    Service.Client.session_close session
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init connections (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  (results, Unix.gettimeofday () -. t0)

let run ?(connections = 4) ?(domains = 2) ~root ~n () =
  let jobs = Array.of_list (jobs_of_corpus ~root ~n) in
  let expected =
    Array.map (fun j -> Api.compile_buffered ~config:j.config ~file:j.file j.src) jobs
  in
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mompd-corpus-%d.sock" (Unix.getpid ()))
  in
  let server =
    Service.Server.create
      { Service.Server.default_config with socket_path; domains }
  in
  let server_thread = Thread.create Service.Server.serve_forever server in
  let cold, cold_s = timed_pass ~socket_path ~connections jobs in
  let warm, warm_s = timed_pass ~socket_path ~connections jobs in
  let () =
    Service.Client.with_connection ~socket_path (fun c ->
        match Service.Client.shutdown c () with
        | Ok () -> ()
        | Error e ->
          Fmt.epr "corpus traffic: shutdown: %s@." (Fault.Ompgpu_error.to_string e))
  in
  Thread.join server_thread;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let errors = ref 0 in
  let matches = ref true in
  let check results =
    Array.iteri
      (fun i r ->
        match r with
        | Some (Ok compiled) ->
          if not (identical compiled expected.(i)) then matches := false
        | Some (Error _) | None -> incr errors)
      results
  in
  check cold;
  check warm;
  let total = Array.length jobs in
  let cps s = if s > 0.0 then float_of_int total /. s else 0.0 in
  {
    programs = n;
    jobs = total;
    connections;
    domains;
    cold_s;
    warm_s;
    cold_cps = cps cold_s;
    warm_cps = cps warm_s;
    byte_identical = !matches && !errors = 0;
    transport_errors = !errors;
  }

let to_json s =
  Observe.Json.with_schema
    (Observe.Json.Obj
       [
         ("programs", Observe.Json.Int s.programs);
         ("jobs", Observe.Json.Int s.jobs);
         ("connections", Observe.Json.Int s.connections);
         ("domains", Observe.Json.Int s.domains);
         ("cold_s", Observe.Json.Float s.cold_s);
         ("warm_s", Observe.Json.Float s.warm_s);
         ("cold_compiles_per_s", Observe.Json.Float s.cold_cps);
         ("warm_compiles_per_s", Observe.Json.Float s.warm_cps);
         ("byte_identical", Observe.Json.Bool s.byte_identical);
         ("transport_errors", Observe.Json.Int s.transport_errors);
       ])

open Ir

let parse text = Ir.Parser.parse_module text

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)
(* ------------------------------------------------------------------ *)

let cg_module () =
  parse
    {|module "cg"
declare void @__devrt_trace(i64)
define internal void @leaf() {
entry:
  call void @__devrt_trace(i64 1)
  ret
}
define internal void @mid() {
entry:
  call void @leaf()
  ret
}
define internal void @recursive(%arg0 : i32) {
entry:
  %0 = icmp sgt i32 %arg0, i32 0
  cbr %0, again, done
again:
  %1 = add i32 %arg0, i32 -1
  call void @recursive(%1)
  br done
done:
  ret
}
define internal void @indirect_site(%arg0 : ptr(generic)) {
entry:
  call void %arg0()
  ret
}
define internal void @takes_addr() {
entry:
  call void @indirect_site(@leaf)
  ret
}
define external void @root() {
entry:
  call void @mid()
  call void @recursive(i32 3)
  call void @takes_addr()
  ret
}
|}

let test_callgraph_edges () =
  let m = cg_module () in
  let cg = Analysis.Callgraph.compute m in
  let callees n = Support.Util.String_set.elements (Analysis.Callgraph.callees cg n) in
  Alcotest.(check (list string)) "mid calls leaf" [ "leaf" ] (callees "mid");
  Alcotest.(check bool) "root reaches leaf" true
    (Support.Util.String_set.mem "leaf"
       (Analysis.Callgraph.reachable_from cg [ "root" ]));
  Alcotest.(check bool) "leaf is address-taken" true
    (Analysis.Callgraph.is_address_taken cg "leaf");
  Alcotest.(check bool) "mid is not address-taken" false
    (Analysis.Callgraph.is_address_taken cg "mid")

let test_callgraph_indirect_conservative () =
  let m = cg_module () in
  let cg = Analysis.Callgraph.compute m in
  (* the indirect call site points at every address-taken function *)
  Alcotest.(check bool) "indirect_site may call leaf" true
    (Support.Util.String_set.mem "leaf" (Analysis.Callgraph.callees cg "indirect_site"))

let test_sccs () =
  let m = cg_module () in
  let cg = Analysis.Callgraph.compute m in
  let sccs = Analysis.Callgraph.sccs cg in
  (* every defined function appears exactly once *)
  let all = List.concat sccs in
  Alcotest.(check int) "partition" (List.length (Irmod.defined_funcs m)) (List.length all);
  (* callees come before callers: leaf's component precedes mid's *)
  let index name =
    let rec find i = function
      | [] -> -1
      | comp :: rest -> if List.mem name comp then i else find (i + 1) rest
    in
    find 0 sccs
  in
  Alcotest.(check bool) "reverse topological" true (index "leaf" < index "mid");
  Alcotest.(check bool) "root last-ish" true (index "mid" < index "root")

let test_scc_self_loop () =
  let m = cg_module () in
  let cg = Analysis.Callgraph.compute m in
  let sccs = Analysis.Callgraph.sccs cg in
  let rec_comp = List.find (List.mem "recursive") sccs in
  Alcotest.(check (list string)) "self-recursive singleton" [ "recursive" ] rec_comp

(* ------------------------------------------------------------------ *)
(* Execution domains                                                   *)
(* ------------------------------------------------------------------ *)

let domain_module () =
  Helpers.compile
    {|
double A[16];
static double main_only_helper(double x) { return x + 1.0; }
static double region_helper(double x) { return x * 2.0; }
int main() {
  int n = 4;
  #pragma omp target teams distribute num_teams(2) thread_limit(4)
  for (int i = 0; i < n; i++) {
    double v = main_only_helper((double)i);
    #pragma omp parallel for
    for (int j = 0; j < 4; j++) {
      A[i] = A[i] + region_helper(v);
    }
  }
  return 0;
}
|}

let test_exec_domain () =
  let m = domain_module () in
  let cg = Analysis.Callgraph.compute m in
  let d = Analysis.Exec_domain.compute m cg in
  Alcotest.(check bool) "main-only helper" true
    (Analysis.Exec_domain.func_domain d "main_only_helper" = Analysis.Exec_domain.Main_only);
  Alcotest.(check bool) "region helper is parallel" true
    (Analysis.Exec_domain.func_domain d "region_helper" = Analysis.Exec_domain.Parallel);
  (* the outlined region itself *)
  Alcotest.(check bool) "outlined region recorded" true
    (Analysis.Exec_domain.is_parallel_region d "__omp_outlined__0")

let test_exec_domain_generic_prologue () =
  let m = domain_module () in
  let kernel = List.hd (Irmod.kernels m) in
  match Analysis.Exec_domain.generic_prologue kernel with
  | Some (main_l, worker_l) ->
    Alcotest.(check bool) "labels differ" true (main_l <> worker_l)
  | None -> Alcotest.fail "generic prologue not recognized"

let test_exec_domain_spmd_kernel () =
  let m =
    Helpers.compile
      {|
double A[16];
int main() {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (int i = 0; i < 8; i++) { A[i] = (double)i; }
  return 0;
}
|}
  in
  let cg = Analysis.Callgraph.compute m in
  let d = Analysis.Exec_domain.compute m cg in
  let kernel = List.hd (Irmod.kernels m) in
  List.iter
    (fun b ->
      Alcotest.(check bool) "all blocks parallel in SPMD" true
        (Analysis.Exec_domain.instr_domain d kernel b = Analysis.Exec_domain.Parallel))
    kernel.Func.blocks

let test_exec_domain_external_poisoned () =
  let m =
    parse
      {|module "x"
define external void @exported() {
entry:
  ret
}
|}
  in
  let cg = Analysis.Callgraph.compute m in
  let d = Analysis.Exec_domain.compute m cg in
  Alcotest.(check bool) "external linkage means unknown callers" true
    (Analysis.Exec_domain.func_domain d "exported" = Analysis.Exec_domain.Both)

(* ------------------------------------------------------------------ *)
(* Escape analysis                                                     *)
(* ------------------------------------------------------------------ *)

let escape_module () =
  parse
    {|module "esc"
declare ptr(generic) @__kmpc_alloc_shared(i64)
declare void @__kmpc_free_shared(ptr(generic), i64)
declare void @unknown_external(ptr(generic))
global external @slot : ptr(generic) in global = zeroinit
define internal void @local_use() {
entry:
  %0 = call ptr(generic) @__kmpc_alloc_shared(i64 8)
  store f64 f64 1.0, %0
  %2 = load f64, %0
  call void @__kmpc_free_shared(%0, i64 8)
  ret
}
define internal void @stored_to_global() {
entry:
  %0 = call ptr(generic) @__kmpc_alloc_shared(i64 8)
  store ptr(generic) %0, @slot
  call void @__kmpc_free_shared(%0, i64 8)
  ret
}
define internal void @reads_param(%arg0 : ptr(generic)) {
entry:
  %0 = load f64, %arg0
  ret
}
define internal void @leaks_param(%arg0 : ptr(generic)) {
entry:
  call void @unknown_external(%arg0)
  ret
}
define internal void @passes_to_reader() {
entry:
  %0 = call ptr(generic) @__kmpc_alloc_shared(i64 8)
  call void @reads_param(%0)
  call void @__kmpc_free_shared(%0, i64 8)
  ret
}
define internal void @passes_to_leaker() {
entry:
  %0 = call ptr(generic) @__kmpc_alloc_shared(i64 8)
  call void @leaks_param(%0)
  call void @__kmpc_free_shared(%0, i64 8)
  ret
}
define internal void @no_free(%arg0 : i1) {
entry:
  %0 = call ptr(generic) @__kmpc_alloc_shared(i64 8)
  cbr %arg0, f, g
f:
  call void @__kmpc_free_shared(%0, i64 8)
  br g
g:
  ret
}
define internal void @slot_holding() {
entry:
  %0 = call ptr(generic) @__kmpc_alloc_shared(i64 8)
  %1 = alloca ptr(generic), 1
  %2 = spacecast ptr(generic), %1
  store ptr(generic) %0, %2
  %4 = load ptr(generic), %2
  store f64 f64 2.0, %4
  call void @__kmpc_free_shared(%0, i64 8)
  ret
}
|}

let find_alloc f =
  match
    Ir.Func.fold_instrs f ~init:None ~g:(fun acc _ i ->
        match i.Instr.kind with
        | Instr.Call (_, Instr.Direct "__kmpc_alloc_shared", _) -> Some i
        | _ -> acc)
  with
  | Some i -> i
  | None -> Alcotest.fail "no allocation in function"

let escape_verdict m fname =
  let ctx = Analysis.Escape.create m in
  let f = Irmod.find_func_exn m fname in
  Analysis.Escape.pointer_escapes ctx f (find_alloc f)

let test_escape_local_use () =
  let m = escape_module () in
  Alcotest.(check bool) "pure local use does not escape" true
    (Analysis.Escape.is_no_escape (escape_verdict m "local_use"))

let test_escape_global_store () =
  let m = escape_module () in
  Alcotest.(check bool) "store to global escapes" false
    (Analysis.Escape.is_no_escape (escape_verdict m "stored_to_global"))

let test_escape_interprocedural () =
  let m = escape_module () in
  Alcotest.(check bool) "passing to a reader is fine" true
    (Analysis.Escape.is_no_escape (escape_verdict m "passes_to_reader"));
  Alcotest.(check bool) "passing to a leaker escapes" false
    (Analysis.Escape.is_no_escape (escape_verdict m "passes_to_leaker"))

let test_escape_slot_holding () =
  let m = escape_module () in
  Alcotest.(check bool) "held in a private alloca slot: no escape" true
    (Analysis.Escape.is_no_escape (escape_verdict m "slot_holding"))

let test_free_reached () =
  let m = escape_module () in
  let check fname expected =
    let f = Irmod.find_func_exn m fname in
    Alcotest.(check bool) fname expected
      (Analysis.Escape.free_always_reached f ~alloc:(find_alloc f)
         ~free_name:"__kmpc_free_shared")
  in
  check "local_use" true;
  check "no_free" false  (* a path skips the free *)

let test_free_reached_in_loop () =
  let m =
    Helpers.compile
      {|
int main() {
  #pragma omp target teams num_teams(1) thread_limit(2)
  {
    for (int i = 0; i < 3; i++) {
      double v = (double)i;
      #pragma omp parallel
      { trace_f64(v); }
    }
  }
  return 0;
}
|}
  in
  (* the kernel's per-iteration allocation is freed at the end of the scope;
     the path-based check must accept the loop structure *)
  let kernel = List.hd (Irmod.kernels m) in
  let allocs =
    Ir.Func.fold_instrs kernel ~init:[] ~g:(fun acc _ i ->
        match i.Instr.kind with
        | Instr.Call (_, Instr.Direct "__kmpc_alloc_shared", _) -> i :: acc
        | _ -> acc)
  in
  Alcotest.(check bool) "kernel has allocations" true (allocs <> []);
  List.iter
    (fun alloc ->
      Alcotest.(check bool) "freed in loop" true
        (Analysis.Escape.free_always_reached kernel ~alloc
           ~free_name:"__kmpc_free_shared"))
    allocs

(* ------------------------------------------------------------------ *)
(* Effects / SPMD amenability                                          *)
(* ------------------------------------------------------------------ *)

let test_effects_classification () =
  let m =
    parse
      {|module "eff"
declare void @__devrt_trace(i64)
declare ptr(generic) @__kmpc_alloc_shared(i64)
declare i32 @__gpu_thread_id()
declare void @some_external()
global external @g : f64 in global = zeroinit
define internal void @f() {
entry:
  %0 = alloca f64, 1
  store f64 f64 1.0, %0
  store f64 f64 1.0, @g
  %3 = call i32 @__gpu_thread_id()
  call void @__devrt_trace(i64 1)
  %5 = call ptr(generic) @__kmpc_alloc_shared(i64 8)
  call void @some_external()
  ret
}
|}
  in
  let f = Irmod.find_func_exn m "f" in
  let eff = Analysis.Effects.create () in
  let classify_nth n =
    Analysis.Effects.classify_instr eff m f (List.nth (Ir.Func.entry f).Block.instrs n)
  in
  Alcotest.(check bool) "alloca amenable" true (classify_nth 0 = Analysis.Effects.Amenable);
  Alcotest.(check bool) "store to own alloca amenable" true
    (classify_nth 1 = Analysis.Effects.Amenable);
  Alcotest.(check bool) "store to global guardable" true
    (classify_nth 2 = Analysis.Effects.Guardable);
  Alcotest.(check bool) "pure query amenable" true (classify_nth 3 = Analysis.Effects.Amenable);
  Alcotest.(check bool) "trace guardable" true (classify_nth 4 = Analysis.Effects.Guardable);
  Alcotest.(check bool) "allocation guardable" true
    (classify_nth 5 = Analysis.Effects.Guardable);
  (match classify_nth 6 with
  | Analysis.Effects.Blocking _ -> ()
  | _ -> Alcotest.fail "external call should block SPMDzation")

let test_effects_amenable_callee () =
  let m =
    parse
      {|module "eff2"
define internal f64 @pure_helper(%arg0 : f64) {
entry:
  %0 = fmul f64 %arg0, f64 2.0
  ret %0
}
define internal void @caller() {
entry:
  %0 = call f64 @pure_helper(f64 1.0)
  ret
}
|}
  in
  let f = Irmod.find_func_exn m "caller" in
  let eff = Analysis.Effects.create () in
  Alcotest.(check bool) "call to amenable function is amenable" true
    (Analysis.Effects.classify_instr eff m f (List.hd (Ir.Func.entry f).Block.instrs)
    = Analysis.Effects.Amenable)

let test_effects_assumption_attr () =
  let m =
    parse
      {|module "eff3"
declare void @opaque() attrs(spmd_amenable)
define internal void @caller() {
entry:
  call void @opaque()
  ret
}
|}
  in
  let f = Irmod.find_func_exn m "caller" in
  let eff = Analysis.Effects.create () in
  Alcotest.(check bool) "ext_spmd_amenable assumption unblocks" true
    (Analysis.Effects.classify_instr eff m f (List.hd (Ir.Func.entry f).Block.instrs)
    = Analysis.Effects.Amenable)

let test_may_sync () =
  let m =
    parse
      {|module "sync"
declare void @__kmpc_barrier()
define internal void @with_barrier() {
entry:
  call void @__kmpc_barrier()
  ret
}
define internal void @without() {
entry:
  %0 = add i32 i32 1, i32 1
  ret
}
define internal void @transitively() {
entry:
  call void @with_barrier()
  ret
}
|}
  in
  let get n = Irmod.find_func_exn m n in
  Alcotest.(check bool) "direct barrier" true (Analysis.Effects.func_may_sync m (get "with_barrier"));
  Alcotest.(check bool) "no sync" false (Analysis.Effects.func_may_sync m (get "without"));
  Alcotest.(check bool) "transitive" true
    (Analysis.Effects.func_may_sync m (get "transitively"))

let suite =
  [
    Alcotest.test_case "callgraph edges" `Quick test_callgraph_edges;
    Alcotest.test_case "callgraph indirect conservative" `Quick
      test_callgraph_indirect_conservative;
    Alcotest.test_case "sccs" `Quick test_sccs;
    Alcotest.test_case "scc self loop" `Quick test_scc_self_loop;
    Alcotest.test_case "exec domains" `Quick test_exec_domain;
    Alcotest.test_case "generic prologue" `Quick test_exec_domain_generic_prologue;
    Alcotest.test_case "spmd kernel domains" `Quick test_exec_domain_spmd_kernel;
    Alcotest.test_case "external linkage poisons domain" `Quick
      test_exec_domain_external_poisoned;
    Alcotest.test_case "escape: local use" `Quick test_escape_local_use;
    Alcotest.test_case "escape: global store" `Quick test_escape_global_store;
    Alcotest.test_case "escape: interprocedural" `Quick test_escape_interprocedural;
    Alcotest.test_case "escape: slot holding" `Quick test_escape_slot_holding;
    Alcotest.test_case "free reached" `Quick test_free_reached;
    Alcotest.test_case "free reached in loop" `Quick test_free_reached_in_loop;
    Alcotest.test_case "effects classification" `Quick test_effects_classification;
    Alcotest.test_case "effects amenable callee" `Quick test_effects_amenable_callee;
    Alcotest.test_case "effects assumption attr" `Quick test_effects_assumption_attr;
    Alcotest.test_case "may sync" `Quick test_may_sync;
  ]

(* The corpus grammar.  See the .mli for the determinism rules; the
   rendering mirrors what test/test_fuzz.ml historically generated so the
   long-standing differential property keeps its coverage, with the
   Local_arr / Escape extensions and the externalized execution mode. *)

type expr =
  | Cst of int
  | Var_i
  | Var_j
  | Read_a of int
  | Add of expr * expr
  | Mul of expr * expr

type stmt =
  | Store_a of int * expr
  | Store_ai of expr
  | Atomic_b of expr
  | Local of expr
  | Nested of expr
  | Local_arr of int * expr
  | Escape of expr

type prog = { outer : int; stmts : stmt list }
type mode = Generic | Spmd

let modes = [ Generic; Spmd ]
let mode_name = function Generic -> "generic" | Spmd -> "spmd"

(* small, past-the-budget-when-stacked, and far past it: bench_machine's
   per-team shared budget is stressed by the larger shapes once a few
   threads each globalize one *)
let arr_lens = [ 2; 8; 64; 256 ]

let has_escape p =
  List.exists (function Escape _ -> true | _ -> false) p.stmts

let has_local_arr p =
  List.exists (function Local_arr _ -> true | _ -> false) p.stmts

let has_nested p =
  List.exists (function Nested _ -> true | _ -> false) p.stmts

(* ------------------------------------------------------------------ *)
(* Drawing                                                             *)
(* ------------------------------------------------------------------ *)

let rec gen_expr rng depth =
  if depth = 0 then
    match Splitmix.int rng 4 with
    | 0 -> Cst (Splitmix.int rng 7)
    | 1 -> Var_i
    | 2 -> Var_j
    | _ -> Read_a (Splitmix.int rng 8)
  else
    match Splitmix.int rng 4 with
    | 0 -> Cst (Splitmix.int rng 7)
    | 1 -> Add (gen_expr rng (depth - 1), gen_expr rng (depth - 1))
    | 2 -> Mul (gen_expr rng (depth - 1), gen_expr rng (depth - 1))
    | _ -> Read_a (Splitmix.int rng 8)

(* [j] is only in scope inside nested loops; rewrite it away elsewhere *)
let rec scrub_j = function
  | Var_j -> Var_i
  | Add (a, b) -> Add (scrub_j a, scrub_j b)
  | Mul (a, b) -> Mul (scrub_j a, scrub_j b)
  | e -> e

(* A plain store racing across iterations must store an i-independent
   value, so every schedule writes the same bytes (see test_fuzz.ml's
   historical [deracify]); the value is scrubbed at construction. *)
let rec scrub_i = function
  | Var_i -> Cst 3
  | Add (a, b) -> Add (scrub_i a, scrub_i b)
  | Mul (a, b) -> Mul (scrub_i a, scrub_i b)
  | e -> e

let gen_stmt rng =
  let e depth = gen_expr rng depth in
  (* weights follow the fuzz grammar; the new forms ride at low weight so
     most programs stay in the deterministic common case *)
  match Splitmix.int rng 14 with
  | 0 | 1 -> Store_a (Splitmix.int rng 8, scrub_i (scrub_j (e 2)))
  | 2 | 3 -> Store_ai (e 2)
  | 4 | 5 | 6 -> Atomic_b (e 3)
  | 7 | 8 -> Local (e 2)
  | 9 | 10 -> Nested (e 2)
  | 11 | 12 ->
    Local_arr (List.nth arr_lens (Splitmix.int rng (List.length arr_lens)), e 2)
  | _ -> Escape (e 2)

let generate rng =
  let outer = 4 + Splitmix.int rng 8 in
  let n = 1 + Splitmix.int rng 4 in
  let stmts = List.init n (fun _ -> gen_stmt rng) in
  let p = { outer; stmts } in
  (* an Escape's barriers divide threads evenly only when every thread
     runs the same iteration count: one team, trip count = thread limit *)
  if has_escape p then { p with outer = 4 } else p

let program_stream ~root i =
  Splitmix.split (Splitmix.create root) (Printf.sprintf "prog#%d" i)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let rec pp_expr = function
  | Cst c -> string_of_int c
  | Var_i -> "i"
  | Var_j -> "j"
  | Read_a k -> Printf.sprintf "A[%d]" k
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (pp_expr a) (pp_expr b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (pp_expr a) (pp_expr b)

(* Escape only keeps its cross-thread shape in SPMD mode: its barriers
   assume every team thread executes every iteration's statement list,
   which generic mode (team masters iterating) does not guarantee. *)
let pp_stmt ~mode buf idx stmt =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  match stmt with
  | Store_a (k, e) -> line "    A[%d] = %s;" k (pp_expr (scrub_j e))
  | Store_ai e -> line "    A[(i + 7) %% 8] = %s;" (pp_expr (scrub_j e))
  | Atomic_b e ->
    line "    #pragma omp atomic";
    line "    B[0] += %s;" (pp_expr (scrub_j e))
  | Local e ->
    line "    long v%d = %s;" idx (pp_expr (scrub_j e));
    line "    bump(&v%d);" idx;
    line "    #pragma omp atomic";
    line "    B[1] += v%d;" idx
  | Nested e ->
    line "    #pragma omp parallel for";
    line "    for (int j = 0; j < 4; j++) {";
    line "      #pragma omp atomic";
    line "      B[2] += %s;" (pp_expr e);
    line "    }"
  | Local_arr (len, e) ->
    line "    long w%d[%d];" idx len;
    line "    w%d[0] = %s;" idx (pp_expr (scrub_j e));
    line "    w%d[%d] = w%d[0] + 3;" idx (len - 1) idx;
    line "    #pragma omp atomic";
    line "    B[3] += w%d[0] + w%d[%d];" idx idx (len - 1)
  | Escape e -> (
    match mode with
    | Spmd ->
      line "    long v%d = %s;" idx (pp_expr (scrub_j e));
      line "    if (i == 0) { P = &v%d; }" idx;
      line "    #pragma omp barrier";
      line "    #pragma omp atomic";
      line "    B[4] += P[0];";
      line "    #pragma omp barrier"
    | Generic ->
      line "    long v%d = %s;" idx (pp_expr (scrub_j e));
      line "    bump(&v%d);" idx;
      line "    #pragma omp atomic";
      line "    B[4] += v%d;" idx)

let render ~mode (p : prog) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let teams = if has_escape p then 1 else 2 in
  line "long A[8];";
  line "long B[6];";
  if has_escape p then line "long* P;";
  line "static void bump(long* p) { p[0] = p[0] + 1; }";
  line "int main() {";
  line "  for (int k = 0; k < 8; k++) { A[k] = k; }";
  (match mode with
  | Generic ->
    line "  #pragma omp target teams distribute num_teams(%d) thread_limit(4)" teams
  | Spmd ->
    line
      "  #pragma omp target teams distribute parallel for num_teams(%d) \
       thread_limit(4)"
      teams);
  line "  for (int i = 0; i < %d; i++) {" p.outer;
  List.iteri (fun idx s -> pp_stmt ~mode buf idx s) p.stmts;
  line "  }";
  line "  for (int k = 0; k < 8; k++) { trace(A[k]); }";
  line "  for (int k = 0; k < 6; k++) { trace(B[k]); }";
  line "  return 0;";
  line "}";
  Buffer.contents buf

let pp ppf p =
  Format.fprintf ppf "--- generic ---@.%s--- spmd ---@.%s" (render ~mode:Generic p)
    (render ~mode:Spmd p)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Greedy candidates, as in the historical fuzz shrinker: drop a
   statement, reset the trip count, demote the exotic statement forms,
   then constant-fold sub-expressions. *)
let shrink (p : prog) yield =
  let rec drops pre = function
    | [] -> ()
    | s :: rest ->
      yield { p with stmts = List.rev_append pre rest };
      drops (s :: pre) rest
  in
  if List.length p.stmts > 1 then drops [] p.stmts;
  if p.outer > 4 then yield { p with outer = 4 };
  let rec stmts pre = function
    | [] -> ()
    | s :: rest ->
      let keep s' = yield { p with stmts = List.rev_append pre (s' :: rest) } in
      let try_expr e rebuild =
        match e with Cst _ -> () | _ -> keep (rebuild (Cst 1))
      in
      (match s with
      | Store_a (k, e) -> try_expr e (fun e -> Store_a (k, e))
      | Store_ai e -> try_expr e (fun e -> Store_ai e)
      | Atomic_b e -> try_expr e (fun e -> Atomic_b e)
      | Local e ->
        keep (Atomic_b e);
        try_expr e (fun e -> Local e)
      | Nested e ->
        keep (Atomic_b e);
        try_expr e (fun e -> Nested e)
      | Local_arr (len, e) ->
        keep (Atomic_b e);
        if len > 2 then keep (Local_arr (2, e));
        try_expr e (fun e -> Local_arr (len, e))
      | Escape e ->
        keep (Atomic_b e);
        try_expr e (fun e -> Escape e));
      stmts (s :: pre) rest
  in
  stmts [] p.stmts

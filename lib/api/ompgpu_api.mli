(** The stable public API of the ompgpu stack.

    Everything a client needs — one-shot source compilation, batch
    compilation, proxy-app measurement, the build matrix, stats/trace
    types and the error taxonomy — behind one versioned module, so that
    [mompc], [mompd], [run_experiments], [bench] and external embedders
    share a single surface instead of reaching into [Harness.Runner] or
    [Openmpopt.Pass_manager] directly.

    Versioning and deprecation policy (docs/API.md):
    - {!api_version} names this module's surface; additive changes keep
      the version, breaking changes bump it and keep the old entry points
      as deprecated aliases for one release.
    - {!schema_version} stamps every JSON payload the stack emits
      ([--stats-json], [BENCH_observe.json], per-measurement records);
      consumers reject payloads they do not understand.
    - The service wire protocol is versioned independently
      ([Service.Protocol.version], docs/API.md). *)

val api_version : int
(** The façade's surface version: 2.  Version 2 made pass pipelines
    first-class ({!Pipeline}, [Config.pipeline], cache v6); the version-1
    entry points ([Config.optimized], the [Config.options] field,
    [Options.run]) remain as deprecated aliases for one release per the
    policy above. *)

val schema_version : int
(** Schema stamp of every JSON payload emitted by the stack: 2. *)

val with_schema : Observe.Json.t -> Observe.Json.t
(** Prepend [("schema", Int schema_version)] to a JSON object (other
    values are returned unchanged). *)

(** {1 Re-exported building blocks}

    Aliases, not copies: the types are equal to the underlying ones, so
    existing code can migrate piecemeal. *)

module Error = Fault.Ompgpu_error
(** The structured error taxonomy (kinds, phases, exit codes). *)

module Json = Observe.Json
(** The JSON tree every stats/trace payload is built from. *)

module Trace = Observe.Trace
(** Per-pass pipeline events ([--trace], the ["passes"] stats member). *)

module Injector = Fault.Injector
(** Deterministic fault injection ([--inject] specs). *)

module Options = Openmpopt.Pass_manager
(** Pass-pipeline options, report and counters ([Options.options],
    [Options.default_options], [Options.report]). *)

module Pipeline = Openmpopt.Pass_manager.Pipeline
(** First-class pass pipelines (api_version 2): named tiers
    ([Pipeline.fast], [Pipeline.full]), custom ordered pass lists, and the
    stable textual spec syntax ([Pipeline.of_string] /
    [Pipeline.to_string]) accepted by [mompc --pipeline] and protocol v2's
    ["pipeline"] member. *)

module Scheme = Frontend.Codegen
(** Globalization schemes ([Scheme.Simplified] (LLVM 13),
    [Scheme.Legacy] (LLVM 12), [Scheme.Cuda]). *)

module Builds = Harness.Config
(** The evaluation build matrix (Figure 11 legends): [Builds.dev0],
    [Builds.llvm12], [Builds.fig10_configs], ... *)

module Runner = Harness.Runner
(** Proxy-app measurement: [Runner.run], [Runner.run_batch],
    [Runner.json_of_measurement]. *)

module Tables = Harness.Tables
(** Renderers for the paper's figures and tables. *)

module App = Proxyapps.App
module Apps = Proxyapps.Apps

(** {1 Source compilation} *)

(** A source-compile configuration: what [mompc]'s flags select, as a
    value.  Build one from {!Config.default} with the [with_*] builders. *)
module Config : sig
  type t = {
    scheme : Frontend.Codegen.scheme;  (** globalization scheme *)
    options : Openmpopt.Pass_manager.options option;
        (** deprecated (api_version 2): the toggle-record way to request
            optimization; superseded by [pipeline], which wins when both
            are set.  Kept for one release per the deprecation policy. *)
    pipeline : Openmpopt.Pass_manager.Pipeline.t option;
        (** [Some _] runs this pipeline; [None] falls back to [options]
            (mapped via [Pipeline.of_options]) or, when that is also
            [None], skips optimization entirely *)
    emit_ir : bool;  (** print the final MiniIR to the output *)
    run_sim : bool;  (** execute on the GPU simulator ([--run]) *)
    remarks_only : bool;  (** suppress IR output; keep remarks *)
    want_stats : bool;
        (** collect the stats JSON payload ({!compiled.stats}) *)
    print_trace : bool;  (** append the per-pass trace to diagnostics *)
    inject : Fault.Injector.spec list;  (** armed fault sites *)
    retries : int;  (** bounded retry on transient failures *)
    backoff_s : float;  (** base retry backoff (doubles per attempt) *)
    backtraces : bool;
        (** append the raise-point backtrace under diagnostics; off by
            default so diagnostics stay byte-stable across runs *)
  }

  val default : t
  (** [Simplified] scheme, no optimization, emit IR, no simulation, no
      stats/trace/injection, no retries, backoff 0.05s, no backtraces. *)

  val with_scheme : Frontend.Codegen.scheme -> t -> t

  val optimized : ?options:Openmpopt.Pass_manager.options -> t -> t
  (** Deprecated (api_version 2): sets the legacy [options] field; prefer
      {!with_pipeline}.  [options] defaults to
      [Openmpopt.Pass_manager.default_options], which is semantically
      [Pipeline.full]. *)

  val with_pipeline : Openmpopt.Pass_manager.Pipeline.t -> t -> t
  (** Run this pipeline (wins over the deprecated [options] field). *)

  val pipeline_of : t -> Openmpopt.Pass_manager.Pipeline.t option
  (** The pipeline the config actually runs: [pipeline] if set, else the
      deprecated [options] mapped via [Pipeline.of_options], else [None]
      (no optimization).  This is the identity {!fingerprint} hashes. *)

  val with_sim : t -> t
  val with_stats : t -> t
  val with_trace : t -> t

  val with_inject : Fault.Injector.spec list -> t -> t
  (** Injection joins {!val:cache_key}, so injected and clean compiles
      never share cached results. *)

  val with_retries : ?backoff_s:float -> int -> t -> t

  val fingerprint : t -> string
  (** Content identity of everything in the config that shapes the
      compiled bytes; part of {!val:cache_key}. *)
end

(** One compiled source: the process exit code it asks for plus everything
    it wants on stdout/stderr.  Buffering instead of printing is what makes
    both parallel batches and the compile service byte-identical to a
    sequential one-shot run: formatters are never shared, output order is
    the caller's decision. *)
type compiled = {
  exit_code : int;  (** 0 on success, else the taxonomy exit code *)
  output : string;  (** stdout payload (IR, simulator statistics) *)
  diagnostics : string;
      (** stderr payload: remarks, the pipeline report, the rendered
          error line on failure *)
  error : Error.t option;  (** the structured failure, when [exit_code <> 0] *)
  stats : Observe.Json.t option;
      (** the stats payload (schema {!schema_version}), when the config
          sets [want_stats] and the compile got far enough to collect it *)
}

val errored : file:string -> Error.t -> compiled
(** A {!compiled} that settles a structured failure without running the
    compiler: exit code, the one-line diagnostic a one-shot driver prints
    ([file: rendered-error\n]) and the error itself.  Used by the batch
    driver for unreadable files and by the service for shed and timed-out
    requests — the bytes match what [compile_buffered] would emit. *)

val compile_buffered : ?config:Config.t -> ?file:string -> string -> compiled
(** Compile one MiniOMP source (the exact semantics of one [mompc] file):
    lower with the config's scheme, verify, optionally optimize and
    simulate, retrying transient failures per the config.  [file] labels
    diagnostics and seeds the per-(file, attempt) fault injector (default
    ["<source>"]).  Never raises. *)

val compile : ?config:Config.t -> ?file:string -> string -> (compiled, Error.t) result
(** {!compile_buffered} as a result: [Error e] for any failure (the
    taxonomy value), [Ok c] with [c.exit_code = 0] otherwise.  The [Error]
    side still carries nothing but the structured error — use
    {!compile_buffered} when the partially-accumulated diagnostics bytes
    matter (the CLIs and the service do). *)

val cache_key : file:string -> config:Config.t -> source:string -> string
(** Content address of one source compile: digest of the file label, the
    source text, the config fingerprint (scheme, pass options, emission
    flags, stats/trace selection) and the fault-injector fingerprint.
    Shared by the [--cache-dir] disk cache and the service's warm
    in-memory cache.  The file label joins the key because diagnostics
    embed it: the same source compiled as [a.c] and as [b.c] produces
    different bytes, and the caches must never alias the two. *)

val compiled_to_json : compiled -> Observe.Json.t
val compiled_of_json : Observe.Json.t -> compiled option
(** Round-trip a compiled result for the disk cache and the wire.  Stats
    payloads survive the trip; the [error] field travels as its taxonomy
    JSON. *)

val compile_files :
  ?jobs:int ->
  ?cache_dir:string ->
  ?cache_max_bytes:int ->
  ?cache_max_entries:int ->
  ?watchdog_s:float ->
  ?on_cache_corrupt:(key:string -> path:string -> unit) ->
  config:Config.t ->
  string list ->
  compiled list
(** The batch driver behind [mompc FILE...]: read each file, compile —
    on [jobs] > 1 scheduler domains when the batch has several files —
    and return per-file results in input order (byte-identical at every
    [jobs]).  [cache_dir] memoizes successful compiles on disk,
    content-addressed by {!val:cache_key}; stats/trace runs bypass the
    disk cache (their payloads embed wall times).
    [cache_max_bytes]/[cache_max_entries] bound the cache directory —
    oldest entries are evicted on store ({!Sched.Disk_cache}), and a
    failing store (full disk) is absorbed there, never surfaced here.
    [watchdog_s] settles a
    hung job as a structured timeout (pool runs only).  An unreadable
    file settles to a [Driver]-phase error, never an exception. *)

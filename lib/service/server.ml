(* The persistent compile daemon (see the .mli and docs/API.md).

   Layering: connection threads own all protocol work (parsing, admission,
   response framing); the Sched.Pool domains own all compiler work.  The
   only shared mutable state is the counters record (one mutex), the
   caches (thread-safe by construction), the journal (its own mutex) and
   the stop/drain flags.

   Supervision: when created with [~listen_fd] (by {!Supervisor}), the
   server borrows the listening socket — a serve-loop crash severs the
   live connections, re-raises, and leaves the socket bound so the
   supervisor can restart the loop without dropping the address. *)

module J = Observe.Json
module E = Fault.Ompgpu_error

type config = {
  socket_path : string;
  domains : int;
  capacity : int;
  watchdog_s : float option;
  cache_dir : string option;
  state_dir : string option;
  injector : Fault.Injector.t;
  drain_deadline_s : float;
  tiered : bool;
  cache_max_entries : int option;  (* in-memory result-cache entry cap *)
  cache_max_bytes : int option;  (* in-memory byte cap + disk-cache quota *)
  journal_max_bytes : int option;  (* mid-life journal rotation cap *)
}

let default_config =
  {
    socket_path = "./mompd.sock";
    domains = 2;
    capacity = 8;
    watchdog_s = None;
    cache_dir = None;
    state_dir = None;
    injector = Fault.Injector.none;
    drain_deadline_s = 5.0;
    tiered = false;
    cache_max_entries = None;
    cache_max_bytes = None;
    journal_max_bytes = None;
  }

(* Cross-incarnation supervision state: owned by the supervisor, read by
   every incarnation's stats/health answers. *)
type supervision = {
  mutable restarts : int;
  mutable breaker_open : bool;
  mutable last_crash : string option;
  mutable on_journal_rotate : unit -> unit;
      (* set by each incarnation: the journal outlives servers, so its
         rotation hook indirects through here to reach the current one *)
}

let new_supervision () =
  {
    restarts = 0;
    breaker_open = false;
    last_crash = None;
    on_journal_rotate = ignore;
  }

(* Request counters; one mutex is plenty (a counter bump per request
   against compiles that take milliseconds). *)
type counters = {
  mutable served : int;  (* responses written, all kinds *)
  mutable compiles : int;  (* compile/run requests admitted *)
  mutable compile_ok : int;
  mutable compile_failed : int;  (* structured failures incl. timeouts *)
  mutable shed : int;  (* rejected by admission control (incl. drain) *)
  mutable stats_requests : int;
  mutable health_requests : int;
  mutable bad_requests : int;
  mutable in_flight : int;  (* admitted, not yet settled *)
  mutable busy : int;  (* requests between parse and response write *)
  mutable injected_drops : int;  (* conn-drop/partial-frame faults fired *)
  mutable fast_served : int;  (* compile answers taken from the fast tier *)
  mutable profile_saves : int;  (* hotness-profile checkpoints written *)
}

(* Tiered compilation (docs/SCHEDULER.md): with [config.tiered], a cold
   full-pipeline request is answered from the low-latency fast tier and
   the cache entry is tier-tagged; a background worker re-runs the full
   pipeline (hottest key first) and atomically replaces the entry. *)
type tier = Fast | Full

type entry = { tier : tier; result : Ompgpu_api.compiled }

type upgrade = {
  u_key : string;
  u_file : string;
  u_config : Ompgpu_api.Config.t;
  u_source : string;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  owns_listener : bool;
  pool : Sched.Pool.t;
  cache : entry Sched.Cache.t;
  disk : Sched.Disk_cache.t option;
  journal : Journal.t option;
  owns_journal : bool;
  recovery : Journal.recovery;
  supervision : supervision;
  counters : counters;
  profile_restored : int;  (* hot keys reloaded from the saved profile *)
  mutex : Mutex.t;
  mutable stopped : bool;
  mutable draining : bool;
  mutable conns : (Unix.file_descr * Thread.t) list;
  started_at : float;
  (* tier-upgrade state: its own mutex/condition so the worker never
     contends with the request-path counters lock *)
  hot : Observe.Hitcount.t;  (* per-key request counts; promotion order *)
  upgrade_mutex : Mutex.t;
  upgrade_cond : Condition.t;
  mutable upgrade_queue : upgrade list;  (* pending; worker picks hottest *)
  mutable upgrade_stop : bool;
  mutable upgrade_worker : Thread.t option;
  mutable upgrades_queued : int;
  mutable upgrades_done : int;
  mutable upgrades_failed : int;
  mutable last_active : float;  (* last compile admission/settle (t.mutex) *)
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bind_listener socket_path =
  (if Sys.file_exists socket_path then
     match (Unix.lstat socket_path).Unix.st_kind with
     | Unix.S_SOCK -> Unix.unlink socket_path
     | _ ->
       invalid_arg
         (Printf.sprintf "Service.Server.create: %s exists and is not a socket"
            socket_path));
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX socket_path)
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd 64;
  listen_fd

(* The hotness table is always bounded: over unbounded distinct-key
   traffic the decay cap keeps profile memory O(hot_keys_cap) while hot
   keys keep their relative order (Observe.Hitcount). *)
let hot_keys_cap = 4096

let profile_file = "hotness.json"
let profile_path dir = Filename.concat dir profile_file

(* Checkpoint the hotness profile (tiered daemons with a state dir only):
   written on drain and on every mid-life journal rotation, loaded at
   create — a restarted daemon re-queues upgrades hottest-first from the
   counts its previous life observed. *)
let save_profile t =
  match t.cfg.state_dir with
  | Some dir when t.cfg.tiered ->
    if Observe.Hitcount.save t.hot ~path:(profile_path dir) then
      locked t (fun () ->
          t.counters.profile_saves <- t.counters.profile_saves + 1)
  | _ -> ()

(* Approximate retained bytes of one warm-cache entry: the payload
   strings dominate; the constant covers record/JSON overhead.  Feeds the
   --cache-max-bytes LRU cap. *)
let entry_bytes e =
  String.length e.result.Ompgpu_api.output
  + String.length e.result.Ompgpu_api.diagnostics
  + 256

let create ?listen_fd ?journal ?supervision cfg =
  let cfg = { cfg with domains = max 1 cfg.domains; capacity = max 0 cfg.capacity } in
  let supervision =
    match supervision with Some s -> s | None -> new_supervision ()
  in
  let listen_fd, owns_listener =
    match listen_fd with
    | Some fd -> (fd, false)
    | None -> (bind_listener cfg.socket_path, true)
  in
  let journal, recovery, owns_journal =
    match journal with
    | Some (j, r) -> (Some j, r, false)
    | None -> (
      match cfg.state_dir with
      | None -> (None, Journal.empty_recovery, false)
      | Some dir ->
        let j, r =
          Journal.open_ ?max_bytes:cfg.journal_max_bytes
            ~on_rotate:(fun () -> supervision.on_journal_rotate ())
            ~dir ()
        in
        (Some j, r, true))
  in
  let hot = Observe.Hitcount.create ~max_keys:hot_keys_cap () in
  let profile_restored =
    match cfg.state_dir with
    | Some dir when cfg.tiered ->
      Observe.Hitcount.load_into hot ~path:(profile_path dir)
    | _ -> 0
  in
  let t =
    {
      cfg;
      listen_fd;
      owns_listener;
      (* the pool queue must outsize admission, so an admitted request never
         blocks in [submit] behind the cap it was admitted under *)
      pool =
        Sched.Pool.create
          ~queue_capacity:(max 1 (cfg.capacity + cfg.domains))
          ~domains:cfg.domains ();
      cache =
        Sched.Cache.create ?max_entries:cfg.cache_max_entries
          ?max_bytes:cfg.cache_max_bytes ~size_of:entry_bytes ();
      disk =
        Option.map
          (fun dir ->
            Sched.Disk_cache.create ~injector:cfg.injector
              ?max_bytes:cfg.cache_max_bytes ~dir ())
          cfg.cache_dir;
      journal;
      owns_journal;
      recovery;
      supervision;
      counters =
        {
          served = 0;
          compiles = 0;
          compile_ok = 0;
          compile_failed = 0;
          shed = 0;
          stats_requests = 0;
          health_requests = 0;
          bad_requests = 0;
          in_flight = 0;
          busy = 0;
          injected_drops = 0;
          fast_served = 0;
          profile_saves = 0;
        };
      profile_restored;
      mutex = Mutex.create ();
      stopped = false;
      draining = false;
      conns = [];
      started_at = Unix.gettimeofday ();
      hot;
      upgrade_mutex = Mutex.create ();
      upgrade_cond = Condition.create ();
      upgrade_queue = [];
      upgrade_stop = false;
      upgrade_worker = None;
      upgrades_queued = 0;
      upgrades_done = 0;
      upgrades_failed = 0;
      last_active = 0.0;
    }
  in
  supervision.on_journal_rotate <- (fun () -> save_profile t);
  t

(* ------------------------------------------------------------------ *)
(* Stats and health                                                    *)
(* ------------------------------------------------------------------ *)

let service_json t =
  let sup = t.supervision in
  J.Obj
    [
      ("restarts", J.Int sup.restarts);
      ("breaker", J.String (if sup.breaker_open then "open" else "closed"));
      ("draining", J.Bool (locked t (fun () -> t.draining)));
      ("journal", Journal.recovery_to_json t.recovery);
      ( "swept_temps",
        J.Int (match t.disk with Some d -> Sched.Disk_cache.swept d | None -> 0)
      );
      ("injected_drops", J.Int t.counters.injected_drops);
    ]

let health_json t =
  let c = t.counters in
  Ompgpu_api.with_schema
    (J.Obj
       ([
          ( "status",
            J.String (if locked t (fun () -> t.draining) then "draining" else "ok")
          );
          ("protocol", J.Int Protocol.version);
          ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
          ("in_flight", J.Int c.in_flight);
          ("capacity", J.Int t.cfg.capacity);
        ]
       @
       match service_json t with J.Obj ms -> ms | _ -> []))

(* The storage-governance view: every bound, ledger and breaker the
   daemon runs under, one object (docs/API.md).  [quarantined] counts
   both scrub-time and read-time digest failures. *)
let storage_json t =
  let opt_int name v =
    match v with Some n -> [ (name, J.Int n) ] | None -> []
  in
  let cache_o =
    [
      ("entries", J.Int (Sched.Cache.length t.cache));
      ("bytes", J.Int (Sched.Cache.bytes t.cache));
      ("evictions", J.Int (Sched.Cache.evictions t.cache));
    ]
    @ opt_int "max_entries" (Sched.Cache.max_entries t.cache)
    @ opt_int "max_bytes" (Sched.Cache.max_bytes t.cache)
  in
  let disk_o =
    match t.disk with
    | None -> [ ("enabled", J.Bool false) ]
    | Some d ->
      [
        ("enabled", J.Bool true);
        ("bytes", J.Int (Sched.Disk_cache.bytes d));
        ("entries", J.Int (Sched.Disk_cache.entries d));
        ("evictions", J.Int (Sched.Disk_cache.evictions d));
        ("scrubbed", J.Int (Sched.Disk_cache.scrubbed d));
        ("quarantined", J.Int (Sched.Disk_cache.corrupt d));
        ("store_failures", J.Int (Sched.Disk_cache.store_failures d));
        ("breaker_trips", J.Int (Sched.Disk_cache.breaker_trips d));
        ("writes_disabled", J.Bool (Sched.Disk_cache.writes_disabled d));
        ("swept_temps", J.Int (Sched.Disk_cache.swept d));
      ]
      @ opt_int "max_bytes" (Sched.Disk_cache.max_bytes d)
  in
  let journal_o =
    [
      ( "rotations",
        J.Int (match t.journal with Some j -> Journal.rotations j | None -> 0)
      );
    ]
    @ opt_int "max_bytes" t.cfg.journal_max_bytes
  in
  J.Obj
    [
      ("cache", J.Obj cache_o);
      ("disk", J.Obj disk_o);
      ("journal", J.Obj journal_o);
    ]

let stats_json t =
  let c, pool_stats =
    locked t (fun () -> (t.counters, Sched.Pool.stats t.pool))
  in
  Ompgpu_api.with_schema
    (J.Obj
       [
         ("protocol", J.Int Protocol.version);
         ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
         ("domains", J.Int (Sched.Pool.domain_count t.pool));
         ("capacity", J.Int t.cfg.capacity);
         ( "requests",
           J.Obj
             [
               ("served", J.Int c.served);
               ("compiles", J.Int c.compiles);
               ("compile_ok", J.Int c.compile_ok);
               ("compile_failed", J.Int c.compile_failed);
               ("shed", J.Int c.shed);
               ("stats", J.Int c.stats_requests);
               ("health", J.Int c.health_requests);
               ("bad", J.Int c.bad_requests);
               ("in_flight", J.Int c.in_flight);
             ] );
         ( "cache",
           J.Obj
             ([
                ("hits", J.Int (Sched.Cache.hits t.cache));
                ("misses", J.Int (Sched.Cache.misses t.cache));
                ("entries", J.Int (Sched.Cache.length t.cache));
              ]
             @
             match t.disk with
             | Some d ->
               [
                 ("disk_hits", J.Int (Sched.Disk_cache.hits d));
                 ("disk_misses", J.Int (Sched.Disk_cache.misses d));
               ]
             | None -> []) );
         ( "pool",
           J.Obj
             [
               ("submitted", J.Int pool_stats.Sched.Pool.submitted);
               ("executed", J.Int pool_stats.Sched.Pool.executed);
               ("stolen", J.Int pool_stats.Sched.Pool.stolen);
               ("max_pending", J.Int pool_stats.Sched.Pool.max_pending);
             ] );
         ( "tiers",
           (let pending, queued, done_, failed =
              Mutex.lock t.upgrade_mutex;
              let v =
                ( List.length t.upgrade_queue,
                  t.upgrades_queued,
                  t.upgrades_done,
                  t.upgrades_failed )
              in
              Mutex.unlock t.upgrade_mutex;
              v
            in
            J.Obj
              [
                ("enabled", J.Bool t.cfg.tiered);
                ("fast_served", J.Int c.fast_served);
                ("hot_keys", J.Int (Observe.Hitcount.distinct t.hot));
                ("upgrades_pending", J.Int pending);
                ("upgrades_queued", J.Int queued);
                ("upgrades_done", J.Int done_);
                ("upgrades_failed", J.Int failed);
                ("profile_restored", J.Int t.profile_restored);
                ("profile_saves", J.Int c.profile_saves);
              ]) );
         ("storage", storage_json t);
         ("service", service_json t);
       ])

(* ------------------------------------------------------------------ *)
(* Compile dispatch                                                    *)
(* ------------------------------------------------------------------ *)

(* find_or_compute caches whatever the thunk returns, and we only want
   successes in the warm cache (a failure is cheap to recompute and the
   client is about to edit the source anyway) — so failures tunnel out. *)
exception Uncached of Ompgpu_api.compiled

(* Run one admitted compile on the pool, under the optional watchdog.  The
   stalled job keeps its domain until it returns on its own; the request
   settles as a structured timeout and the daemon keeps serving. *)
let pooled_compile t ~config ~file source =
  let fut =
    Sched.Pool.submit t.pool (fun () ->
        Ompgpu_api.compile_buffered ~config ~file source)
  in
  match t.cfg.watchdog_s with
  | None -> Sched.Pool.await fut
  | Some seconds -> (
    match Sched.Pool.await_timeout fut ~seconds with
    | Some r -> r
    | None ->
      Ompgpu_api.errored ~file
        (E.make
           (E.Timeout { seconds })
           ~phase:E.Serving
           (Printf.sprintf "request exceeded its %gs watchdog" seconds)))

(* The disk cache mirrors mompc's policy: only non-stats/trace requests
   (their payloads embed wall times), only successes, same key. *)
let disk_eligible (config : Ompgpu_api.Config.t) =
  (not config.Ompgpu_api.Config.want_stats)
  && not config.Ompgpu_api.Config.print_trace

(* A request is tier-eligible when it asks for the full pipeline's
   semantics with cacheable, injection-free output: those are the requests
   whose cold latency the fast tier can hide while the background upgrade
   converges the entry to the exact full-pipeline bytes. *)
let tier_eligible t (config : Ompgpu_api.Config.t) =
  t.cfg.tiered && disk_eligible config
  && config.Ompgpu_api.Config.inject = []
  &&
  match Ompgpu_api.Config.pipeline_of config with
  | Some p ->
    Openmpopt.Pass_manager.Pipeline.same_semantics p
      Openmpopt.Pass_manager.Pipeline.full
  | None -> false

let fast_config (config : Ompgpu_api.Config.t) =
  {
    config with
    Ompgpu_api.Config.options = None;
    pipeline = Some Openmpopt.Pass_manager.Pipeline.fast;
  }

(* Fast-tier disk entries live under a derived key, not the request's: a
   non-tiered daemon or a one-shot mompc sharing the --cache-dir looks up
   the plain key only and must never be served fast bytes for a
   full-pipeline request. *)
let fast_disk_key key = Sched.Cache.key [ key; "fast-tier" ]

let disk_find d ~key =
  Option.bind (Sched.Disk_cache.find d ~key) (fun s ->
      match J.of_string s with
      | Ok j -> Ompgpu_api.compiled_of_json j
      | Error _ -> None)

let disk_store t ~config ~tier ~key (r : Ompgpu_api.compiled) =
  match t.disk with
  | Some d when disk_eligible config && r.Ompgpu_api.exit_code = 0 ->
    let key = match tier with Full -> key | Fast -> fast_disk_key key in
    Sched.Disk_cache.store d ~key
      ~data:(J.to_string (Ompgpu_api.compiled_to_json r))
  | _ -> ()

(* Upgrades are strictly idle-time work: a picked upgrade waits for the
   compile path to have been quiet for [idle_window_s] before touching
   the pool, so tiering never taxes cold-request latency — an active
   request burst (its inter-request gaps are far below the window) defers
   every upgrade until the burst ends.  Within a quiet drain the window
   is already elapsed, so consecutive upgrades proceed back to back.
   Under sustained saturation the queue simply waits (visible as
   upgrades_pending in stats); a drain/stop releases the wait
   immediately. *)
let idle_window_s = 0.05

let rec wait_for_idle t =
  let stopping =
    Mutex.lock t.upgrade_mutex;
    let s = t.upgrade_stop in
    Mutex.unlock t.upgrade_mutex;
    s
  in
  if not stopping then begin
    let busy, last =
      locked t (fun () -> (t.counters.in_flight > 0, t.last_active))
    in
    if busy || Unix.gettimeofday () -. last < idle_window_s then begin
      Thread.delay 0.002;
      wait_for_idle t
    end
  end

(* The upgrade worker: drains the queue hottest-key-first (per-key request
   counts in [t.hot]; queue order on ties) on the shared pool, atomically
   replacing the warm entry (Sched.Cache.replace) and the disk entry
   (Disk_cache.store is temp+rename) with the full-pipeline result.  The
   full-pipeline outcome is authoritative even when it is a failure — the
   request asked for full semantics, so the entry must converge to the
   exact full-pipeline answer, failing or not; this is the one deliberate
   exception to the successes-only warm-cache policy (the failing disk
   store is still skipped).  Only an upgrade that raises (a poisoned
   pool, a shutdown race) leaves the fast entry in place. *)
let rec upgrade_loop t =
  Mutex.lock t.upgrade_mutex;
  while t.upgrade_queue = [] && not t.upgrade_stop do
    Condition.wait t.upgrade_cond t.upgrade_mutex
  done;
  if t.upgrade_stop then Mutex.unlock t.upgrade_mutex
  else begin
    let u =
      match List.rev t.upgrade_queue (* oldest first, so ties stay FIFO *) with
      | [] -> assert false
      | first :: rest ->
        List.fold_left
          (fun best v ->
            if
              Observe.Hitcount.count t.hot v.u_key
              > Observe.Hitcount.count t.hot best.u_key
            then v
            else best)
          first rest
    in
    t.upgrade_queue <- List.filter (fun v -> v.u_key <> u.u_key) t.upgrade_queue;
    Mutex.unlock t.upgrade_mutex;
    wait_for_idle t;
    let promoted =
      match pooled_compile t ~config:u.u_config ~file:u.u_file u.u_source with
      | r ->
        Sched.Cache.replace t.cache ~key:u.u_key { tier = Full; result = r };
        disk_store t ~config:u.u_config ~tier:Full ~key:u.u_key r;
        true
      | exception _ -> false
    in
    Mutex.lock t.upgrade_mutex;
    if promoted then t.upgrades_done <- t.upgrades_done + 1
    else t.upgrades_failed <- t.upgrades_failed + 1;
    Mutex.unlock t.upgrade_mutex;
    upgrade_loop t
  end

(* Enqueue is idempotent per key, and the worker thread starts lazily on
   the first upgrade so non-tiered daemons never pay for one. *)
let enqueue_upgrade t ~key ~config ~file ~source =
  Mutex.lock t.upgrade_mutex;
  (if not (t.upgrade_stop || List.exists (fun u -> u.u_key = key) t.upgrade_queue)
   then begin
     t.upgrade_queue <-
       { u_key = key; u_file = file; u_config = config; u_source = source }
       :: t.upgrade_queue;
     t.upgrades_queued <- t.upgrades_queued + 1;
     if t.upgrade_worker = None then
       t.upgrade_worker <- Some (Thread.create upgrade_loop t)
     else Condition.signal t.upgrade_cond
   end);
  Mutex.unlock t.upgrade_mutex

let stop_upgrader t =
  Mutex.lock t.upgrade_mutex;
  t.upgrade_stop <- true;
  Condition.broadcast t.upgrade_cond;
  let worker = t.upgrade_worker in
  t.upgrade_worker <- None;
  Mutex.unlock t.upgrade_mutex;
  Option.iter Thread.join worker

let compute_compile t ~config ~file ~key source =
  let eligible = tier_eligible t config in
  if eligible then ignore (Observe.Hitcount.bump t.hot key);
  let compile_and_persist () =
    let e =
      if eligible then begin
        let fast = pooled_compile t ~config:(fast_config config) ~file source in
        if fast.Ompgpu_api.exit_code = 0 then { tier = Fast; result = fast }
        else
          (* the fast tier cannot stand in for a failing compile: fall
             back to the asked-for full pipeline synchronously so the
             client sees the authoritative outcome (no upgrade needed) *)
          { tier = Full; result = pooled_compile t ~config ~file source }
      end
      else { tier = Full; result = pooled_compile t ~config ~file source }
    in
    disk_store t ~config ~tier:e.tier ~key e.result;
    e
  in
  let thunk () =
    let e =
      match t.disk with
      | Some d when disk_eligible config -> (
        (* the plain key always holds full-pipeline bytes; a tiered boot
           also accepts a leftover fast entry (and re-queues its upgrade
           via the Fast tag below) *)
        match disk_find d ~key with
        | Some r -> { tier = Full; result = r }
        | None ->
          if eligible then
            match disk_find d ~key:(fast_disk_key key) with
            | Some r -> { tier = Fast; result = r }
            | None -> compile_and_persist ()
          else compile_and_persist ())
      | _ -> compile_and_persist ()
    in
    if e.result.Ompgpu_api.exit_code = 0 then e else raise (Uncached e.result)
  in
  match Sched.Cache.find_or_compute t.cache ~key thunk with
  | e ->
    if e.tier = Fast then begin
      locked t (fun () -> t.counters.fast_served <- t.counters.fast_served + 1);
      enqueue_upgrade t ~key ~config ~file ~source
    end;
    e.result
  | exception Uncached r -> r

let handle_compile t ~id ~file ~config source =
  (* Admission control: request capacity+1 — and any compile arriving
     while the daemon drains — is shed *now* with a structured overload
     instead of queueing without bound.  The client's bounded retry
     (overload is transient) is the backpressure loop. *)
  let admitted =
    locked t (fun () ->
        if t.draining then Error (`Draining t.counters.in_flight)
        else if t.counters.in_flight >= t.cfg.capacity then begin
          t.counters.shed <- t.counters.shed + 1;
          Error (`Over t.counters.in_flight)
        end
        else begin
          t.counters.in_flight <- t.counters.in_flight + 1;
          t.counters.compiles <- t.counters.compiles + 1;
          t.last_active <- Unix.gettimeofday ();
          Ok ()
        end)
  in
  match admitted with
  | Error (`Draining pending) ->
    locked t (fun () -> t.counters.shed <- t.counters.shed + 1);
    Ompgpu_api.errored ~file
      (E.make
         (E.Overload { pending; capacity = t.cfg.capacity })
         ~phase:E.Serving
         "request shed: the daemon is draining; retry against the restarted \
          daemon or fall back to in-process compilation")
  | Error (`Over pending) ->
    Ompgpu_api.errored ~file
      (E.make
         (E.Overload { pending; capacity = t.cfg.capacity })
         ~phase:E.Serving
         (Printf.sprintf
            "request shed: %d compile(s) in flight against a capacity of %d; \
             retry with backoff"
            pending t.cfg.capacity))
  | Ok () ->
    let key = Ompgpu_api.cache_key ~file ~config ~source in
    let seq =
      Option.map
        (fun j ->
          Journal.begin_request j ~id
            ~op:(if config.Ompgpu_api.Config.run_sim then "run" else "compile")
            ~key)
        t.journal
    in
    let result =
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () ->
              t.counters.in_flight <- t.counters.in_flight - 1;
              t.last_active <- Unix.gettimeofday ()))
        (fun () -> compute_compile t ~config ~file ~key source)
    in
    locked t (fun () ->
        if result.Ompgpu_api.exit_code = 0 then
          t.counters.compile_ok <- t.counters.compile_ok + 1
        else t.counters.compile_failed <- t.counters.compile_failed + 1);
    (match (t.journal, seq) with
    | Some j, Some seq ->
      Journal.settle_request j ~seq ~exit_code:result.Ompgpu_api.exit_code
    | _ -> ());
    result

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let stop t =
  locked t (fun () ->
      t.stopped <- true;
      t.draining <- true);
  (* wake the blocked accept: shutting a listening socket down makes the
     pending accept fail immediately on Linux *)
  try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let count_injected_drop t =
  locked t (fun () ->
      t.counters.injected_drops <- t.counters.injected_drops + 1)

let respond t ~fd oc response =
  let line = J.to_string ~minify:true (Protocol.response_to_json response) in
  if Fault.Injector.fire t.cfg.injector Fault.Injector.Slow_client then
    Thread.delay 0.15;
  if Fault.Injector.fire t.cfg.injector Fault.Injector.Partial_frame then begin
    (* a torn response: half the line, no newline, then a hard close — the
       client must treat it as a transient transport failure *)
    count_injected_drop t;
    Out_channel.output_string oc (String.sub line 0 (String.length line / 2));
    Out_channel.flush oc;
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    raise End_of_file
  end;
  Out_channel.output_string oc line;
  Out_channel.output_char oc '\n';
  Out_channel.flush oc;
  locked t (fun () -> t.counters.served <- t.counters.served + 1)

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let bad () =
    locked t (fun () -> t.counters.bad_requests <- t.counters.bad_requests + 1)
  in
  (* [busy] brackets parse→response so the drain knows a request is being
     answered even while [in_flight] (compiles only) is zero *)
  let busily f =
    locked t (fun () -> t.counters.busy <- t.counters.busy + 1);
    Fun.protect
      ~finally:(fun () ->
        locked t (fun () -> t.counters.busy <- t.counters.busy - 1))
      f
  in
  let rec loop () =
    match Protocol.read_message ic with
    | `Eof -> ()
    | `Overflow error ->
      (* an oversized frame poisons the whole connection: answer once,
         stop reading (the rest of the line is still in flight) *)
      bad ();
      busily (fun () -> respond t ~fd oc (Protocol.Rejected { id = None; error }))
    | `Msg (Error e) ->
      (* an unparseable line poisons only itself, not the connection *)
      bad ();
      busily (fun () -> respond t ~fd oc (Protocol.Rejected { id = None; error = e }));
      loop ()
    | `Msg (Ok j) ->
      if Fault.Injector.fire t.cfg.injector Fault.Injector.Conn_drop then begin
        (* drop the connection on the floor, mid-request: the client's
           reconnect-and-retry path owns recovery *)
        count_injected_drop t;
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
      end
      else begin
        (match Protocol.request_of_json j with
        | Error e ->
          bad ();
          let id = Option.bind (J.member "id" j) J.to_str in
          busily (fun () -> respond t ~fd oc (Protocol.Rejected { id; error = e }))
        | Ok (Protocol.Stats { id }) ->
          locked t (fun () ->
              t.counters.stats_requests <- t.counters.stats_requests + 1);
          busily (fun () ->
              respond t ~fd oc
                (Protocol.Stats_reply { id; stats = stats_json t }))
        | Ok (Protocol.Health { id }) ->
          locked t (fun () ->
              t.counters.health_requests <- t.counters.health_requests + 1);
          busily (fun () ->
              respond t ~fd oc
                (Protocol.Health_reply { id; health = health_json t }))
        | Ok (Protocol.Fleet { id }) ->
          (* fleet aggregation is the router's job; a bare shard saying
             "yes" here would masquerade as a one-shard fleet *)
          bad ();
          busily (fun () ->
              respond t ~fd oc
                (Protocol.Rejected
                   {
                     id = Some id;
                     error =
                       E.make E.Bad_request ~phase:E.Serving
                         "fleet: this daemon is a single shard; ask the \
                          fleet router (mompd route)";
                   }))
        | Ok (Protocol.Shutdown { id }) ->
          busily (fun () -> respond t ~fd oc (Protocol.Shutdown_ack { id }));
          stop t;
          raise Exit (* stop reading: the daemon is draining *)
        | Ok (Protocol.Compile { id; file; source; config; tenant = _ }) ->
          let op = if config.Ompgpu_api.Config.run_sim then "run" else "compile" in
          busily (fun () ->
              let result = handle_compile t ~id ~file ~config source in
              respond t ~fd oc (Protocol.Compiled { id; op; result })));
        loop ()
      end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Out_channel.flush oc with Sys_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      locked t (fun () ->
          t.conns <- List.filter (fun (fd', _) -> fd' != fd) t.conns))
    (fun () ->
      try loop () with
      | Exit -> ()
      | Sys_error _ | End_of_file ->
        (* client went away mid-request; nothing to answer *)
        ()
      | e ->
        (* never let a connection kill the daemon: report and move on *)
        let error =
          E.make E.Internal ~phase:E.Serving (Printexc.to_string e)
        in
        (try respond t ~fd oc (Protocol.Rejected { id = None; error })
         with Sys_error _ | End_of_file -> ()))

(* ------------------------------------------------------------------ *)
(* Serve loop, drain, crash containment                                *)
(* ------------------------------------------------------------------ *)

let sever_connections t =
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    (locked t (fun () -> t.conns))

let join_connections t =
  List.iter (fun (_, th) -> Thread.join th) (locked t (fun () -> t.conns))

(* Drain: let requests that are already being answered finish (up to the
   deadline), then sever the remaining connections — blocked reads see
   EOF, threads exit — join them and take the pool down. *)
let drain t =
  let deadline = Unix.gettimeofday () +. t.cfg.drain_deadline_s in
  let rec wait () =
    if
      locked t (fun () -> t.counters.busy) > 0
      && Unix.gettimeofday () < deadline
    then begin
      Thread.delay 0.01;
      wait ()
    end
  in
  wait ();
  (match t.journal with
  | Some j ->
    Journal.event j "drain"
      [ ("busy", J.Int (locked t (fun () -> t.counters.busy))) ]
  | None -> ());
  (* checkpoint the hotness profile while the table is final: the next
     tiered boot restores it and re-queues upgrades hottest-first *)
  save_profile t;
  sever_connections t;
  join_connections t;
  (* pending upgrades are abandoned (their fast entries persist under the
     derived disk key and re-queue on the next tiered boot); the worker
     must be joined before the pool it submits to goes down *)
  stop_upgrader t;
  Sched.Pool.shutdown t.pool

let release_listener t =
  if t.owns_listener then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ()
  end

let close_journal t =
  if t.owns_journal then Option.iter Journal.close t.journal

let serve_forever t =
  let rec accept_loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      if Fault.Injector.fire t.cfg.injector Fault.Injector.Daemon_kill then begin
        (* the serve loop itself dies; connections are severed and the
           supervisor (if any) restarts the loop on the same socket *)
        (try Unix.close fd with Unix.Unix_error _ -> ());
        failwith "injected daemon-kill: serve loop crashed"
      end;
      let thread = Thread.create (fun () -> handle_connection t fd) () in
      locked t (fun () -> t.conns <- (fd, thread) :: t.conns);
      accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if locked t (fun () -> t.stopped) then () else accept_loop ()
    | exception Unix.Unix_error _ when locked t (fun () -> t.stopped) -> ()
  in
  match accept_loop () with
  | () ->
    (* clean stop: connections finish their in-flight requests (bounded by
       the drain deadline), then the pool goes down and — standalone only —
       the socket file disappears *)
    drain t;
    release_listener t;
    close_journal t
  | exception e ->
    (* serve-loop crash: contain it — sever and join connections, stop the
       pool — and hand the exception to the supervisor with the listening
       socket still bound (supervised) or fully released (standalone) *)
    let bt = Printexc.get_raw_backtrace () in
    locked t (fun () -> t.draining <- true);
    sever_connections t;
    join_connections t;
    (try stop_upgrader t with _ -> ());
    (try Sched.Pool.shutdown t.pool with _ -> ());
    release_listener t;
    close_journal t;
    Printexc.raise_with_backtrace e bt

let run cfg = serve_forever (create cfg)

(** The persistent compile daemon behind [mompd].

    One server owns a Unix-domain listening socket, a {!Sched.Pool} of
    worker domains, and warm caches shared across every request: an
    in-memory content-addressed result cache plus (optionally) the same
    on-disk cache [mompc --cache-dir] uses — so a repeated compile is a
    cache hit whichever client sends it, and a service restart still
    starts warm from disk.

    Concurrency model: the accept loop hands each connection to a
    lightweight thread that parses newline-delimited JSON requests
    ({!Protocol}) and blocks on the pool for compile work; compiles
    themselves run on the pool's domains.  Requests from one connection
    are answered in order; connections are independent.

    Robustness: admission control bounds the number of compile requests
    in flight — request [capacity + 1] is shed immediately with a
    structured [Overload] (exit 40) instead of queueing without bound —
    and an optional per-request watchdog settles a hung compile as a
    structured [Timeout] (exit 24), so one poisoned job never wedges the
    daemon.  No client input can raise out of a connection thread. *)

type config = {
  socket_path : string;
  domains : int;  (** pool worker domains (at least 1) *)
  capacity : int;
      (** max compile requests admitted concurrently; 0 sheds everything
          (useful to test client backoff) *)
  watchdog_s : float option;  (** per-request wall-time bound *)
  cache_dir : string option;  (** warm the disk cache shared with [mompc] *)
}

val default_config : config
(** [./mompd.sock], 2 domains, capacity [4 * domains], no watchdog, no
    disk cache. *)

type t

val create : config -> t
(** Bind and listen (replacing a stale socket file), spawn the pool.
    Raises [Unix.Unix_error] if the socket cannot be bound. *)

val serve_forever : t -> unit
(** Accept and serve until a [shutdown] request (or {!stop}) arrives,
    then drain: join every connection thread, shut the pool down, unlink
    the socket file. *)

val stop : t -> unit
(** Ask the accept loop to exit as if a shutdown request had arrived.
    Thread-safe and idempotent; [serve_forever] still performs the
    drain. *)

val stats_json : t -> Observe.Json.t
(** The live counters served to a [stats] request (schema 2): requests
    by kind and outcome, shed count, cache hit/miss/entries, pool
    statistics, uptime. *)

val run : config -> unit
(** [create] + [serve_forever]. *)

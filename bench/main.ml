(* Benchmark harness: one Bechamel test per table and figure of the paper's
   evaluation, followed by the regeneration of every table at bench scale.

     dune exec bench/main.exe            # bechamel timings + all tables
     dune exec bench/main.exe -- tables  # tables only (faster)

   The bechamel micro-benchmarks time the full pipeline (compile + optimize
   + simulate) at tiny scale, so the numbers track the cost of regenerating
   each artifact; the tables themselves are produced at bench scale, which
   is where the paper's performance shapes hold. *)

open Bechamel
open Toolkit

let machine = Gpusim.Machine.bench_machine
let tiny = Proxyapps.App.Tiny

let run_config app config () =
  ignore (Harness.Runner.run ~machine ~scale:tiny (Proxyapps.Apps.find_exn app) config)

(* one test per figure/table of the evaluation section *)
let tests =
  [
    Test.make ~name:"fig9/opportunities"
      (Staged.stage (fun () -> ignore (Harness.Tables.fig9 ~machine ~scale:tiny ())));
    Test.make ~name:"fig10/xsbench" (Staged.stage (run_config "xsbench" Harness.Config.dev0));
    Test.make ~name:"fig10/rsbench" (Staged.stage (run_config "rsbench" Harness.Config.dev0));
    Test.make ~name:"fig10/su3bench" (Staged.stage (run_config "su3bench" Harness.Config.dev0));
    Test.make ~name:"fig10/miniqmc" (Staged.stage (run_config "miniqmc" Harness.Config.dev0));
    Test.make ~name:"fig11/xsbench"
      (Staged.stage (fun () ->
           ignore
             (Harness.Tables.fig11 ~machine ~scale:tiny (Proxyapps.Apps.find_exn "xsbench"))));
    Test.make ~name:"fig11/rsbench"
      (Staged.stage (fun () ->
           ignore
             (Harness.Tables.fig11 ~machine ~scale:tiny (Proxyapps.Apps.find_exn "rsbench"))));
    Test.make ~name:"fig11/su3bench"
      (Staged.stage (fun () ->
           ignore
             (Harness.Tables.fig11 ~machine ~scale:tiny (Proxyapps.Apps.find_exn "su3bench"))));
    Test.make ~name:"fig11/miniqmc"
      (Staged.stage (fun () ->
           ignore
             (Harness.Tables.fig11 ~machine ~scale:tiny (Proxyapps.Apps.find_exn "miniqmc"))));
    (* ablations called out in DESIGN.md *)
    Test.make ~name:"ablation/guard-grouping"
      (Staged.stage
         (run_config "su3bench"
            {
              Harness.Config.label = "no-grouping";
              build =
                Harness.Config.dev
                  {
                    Openmpopt.Pass_manager.default_options with
                    disable_guard_grouping = true;
                  };
              inject = [];
            }));
    Test.make ~name:"ablation/internalization"
      (Staged.stage
         (run_config "xsbench"
            {
              Harness.Config.label = "no-internalization";
              build =
                Harness.Config.dev
                  {
                    Openmpopt.Pass_manager.default_options with
                    disable_internalization = true;
                  };
              inject = [];
            }));
  ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) () in
  Fmt.pr "== Bechamel: time to regenerate each artifact (tiny scale) ==@.";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let result = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Fmt.pr "  %-28s %12.3f ms/run@." name (est /. 1e6)
          | _ -> Fmt.pr "  %-28s (no estimate)@." name)
        result)
    tests;
  Fmt.pr "@."

let tables () =
  let scale = Proxyapps.App.Bench in
  print_string (Harness.Tables.fig9 ~machine ~scale ());
  print_newline ();
  print_string (Harness.Tables.fig10 ~machine ~scale ());
  print_newline ();
  print_string (Harness.Tables.fig11_all ~machine ~scale ());
  print_newline ();
  print_string (Harness.Tables.pass_breakdown_all ~machine ~scale ());
  print_newline ();
  print_string (Harness.Tables.ablations ~machine ~scale ())

(* ------------------------------------------------------------------ *)
(* Scheduler benchmark: sequential vs parallel batch + cache hit rates  *)
(* ------------------------------------------------------------------ *)

(* The batch is every Figure-10 cell at tiny scale — the same workload
   run_experiments parallelizes.  Wall clock must be Unix.gettimeofday:
   Sys.time is process CPU time, which *sums* across domains and would
   report a slowdown for any parallel run.  Speedup is whatever this host
   measures (a single-core machine legitimately reports ~1x); the cache
   hit rates are machine-independent. *)
let sched_domains = 4

let sched_bench () =
  let jobs =
    List.concat_map
      (fun (app : Proxyapps.App.t) ->
        List.map
          (fun config -> (app, config))
          (Harness.Config.fig10_configs app.Proxyapps.App.name))
      Proxyapps.Apps.all
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Symmetric min-of-2: each side keeps its best of two runs, so one
     scheduler hiccup (a GC pause, a noisy-neighbour slice) on either side
     does not decide the ratio the CI perf gate enforces. *)
  let min2 f =
    let r, a = timed f in
    let _, b = timed f in
    (r, Float.min a b)
  in
  let seq, seq_s =
    min2 (fun () -> Harness.Runner.run_batch ~machine ~scale:tiny jobs)
  in
  let cold_par () =
    let cache : Harness.Runner.outcome Sched.Cache.t = Sched.Cache.create () in
    timed (fun () ->
        Sched.Pool.with_pool ~domains:sched_domains (fun pool ->
            let r = Harness.Runner.run_batch ~machine ~scale:tiny ~pool ~cache jobs in
            (r, Sched.Pool.stats pool, Sched.Pool.active_limit pool, cache)))
  in
  let (par, pool_stats, active, cache), par_a = cold_par () in
  let _, par_b = cold_par () in
  let par_s = Float.min par_a par_b in
  let cold_hits = Sched.Cache.hits cache in
  let cold_misses = Sched.Cache.misses cache in
  Sched.Cache.reset_counters cache;
  let warm, warm_s =
    timed (fun () ->
        Sched.Pool.with_pool ~domains:sched_domains (fun pool ->
            Harness.Runner.run_batch ~machine ~scale:tiny ~pool ~cache jobs))
  in
  let labels ms =
    List.map
      (fun (m : Harness.Runner.measurement) ->
        (m.Harness.Runner.app, m.Harness.Runner.config.Harness.Config.label))
      ms
  in
  assert (labels seq = labels par && labels seq = labels warm);
  let speedup = if par_s > 0.0 then seq_s /. par_s else 1.0 in
  Fmt.pr "== Sched: batch of %d jobs, %d domains ==@." (List.length jobs)
    sched_domains;
  Fmt.pr "  sequential         %8.3f s  (best of 2)@." seq_s;
  Fmt.pr "  parallel (cold)    %8.3f s  (best of 2)  speedup %.2fx  cache %d hit / %d miss@."
    par_s speedup cold_hits cold_misses;
  Fmt.pr "  parallel (warm)    %8.3f s  cache hit rate %.2f@." warm_s
    (Sched.Cache.hit_rate cache);
  Fmt.pr
    "  pool: active=%d submitted=%d executed=%d stolen=%d max_pending=%d \
     waits=%d boosts=%d@.@."
    active pool_stats.Sched.Pool.submitted pool_stats.Sched.Pool.executed
    pool_stats.Sched.Pool.stolen pool_stats.Sched.Pool.max_pending
    pool_stats.Sched.Pool.waits pool_stats.Sched.Pool.boosts;
  (* Schema-stamped: tools/bench_gate.ml refuses a sched section it cannot
     version, and rejects submitted <> executed (a lost or phantom job). *)
  Observe.Json.with_schema
    (Observe.Json.Obj
       [
         ("jobs", Observe.Json.Int (List.length jobs));
         ("domains", Observe.Json.Int sched_domains);
         ("sequential_s", Observe.Json.Float seq_s);
         ("parallel_s", Observe.Json.Float par_s);
         ("speedup", Observe.Json.Float speedup);
         ("cold_cache_hits", Observe.Json.Int cold_hits);
         ("cold_cache_misses", Observe.Json.Int cold_misses);
         ("warm_cache_hit_rate", Observe.Json.Float (Sched.Cache.hit_rate cache));
         ( "pool",
           Observe.Json.Obj
             [
               ("active", Observe.Json.Int active);
               ("submitted", Observe.Json.Int pool_stats.Sched.Pool.submitted);
               ("executed", Observe.Json.Int pool_stats.Sched.Pool.executed);
               ("stolen", Observe.Json.Int pool_stats.Sched.Pool.stolen);
               ("max_pending", Observe.Json.Int pool_stats.Sched.Pool.max_pending);
               ("waits", Observe.Json.Int pool_stats.Sched.Pool.waits);
               ("boosts", Observe.Json.Int pool_stats.Sched.Pool.boosts);
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* Service benchmark: request latency against a live daemon            *)
(* ------------------------------------------------------------------ *)

(* The acceptance shape of the compile service: a warm request — answered
   from the daemon's in-memory cache — must be cheaper than a cold
   one-shot compile of the same source.  Latencies measure this host; the
   byte-identity and cache-hit facts are machine-independent. *)
let service_bench () =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mompd-bench-%d.sock" (Unix.getpid ()))
  in
  let server =
    Service.Server.create { Service.Server.default_config with socket_path }
  in
  let server_thread = Thread.create Service.Server.serve_forever server in
  let config = Ompgpu_api.Config.(default |> optimized |> with_sim) in
  let file = "xsbench.momp" in
  let source =
    (Proxyapps.Apps.find_exn "xsbench").Proxyapps.App.omp_source tiny
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let request c () =
    match Service.Client.compile c ~file ~config source with
    | Ok r -> r
    | Error e -> Fmt.failwith "service bench: %s" (Fault.Ompgpu_error.to_string e)
  in
  let oneshot, oneshot_s =
    timed (fun () -> Ompgpu_api.compile_buffered ~config ~file source)
  in
  let (cold, cold_s), (warm, warm_avg_s) =
    Service.Client.with_connection ~socket_path (fun c ->
        let cold = timed (request c) in
        let reps = 20 in
        let warms, warm_total = timed (fun () -> List.init reps (fun _ -> request c ())) in
        let () =
          match Service.Client.shutdown c () with
          | Ok () -> ()
          | Error e ->
            Fmt.failwith "service bench: shutdown: %s"
              (Fault.Ompgpu_error.to_string e)
        in
        (cold, (List.hd warms, warm_total /. float_of_int reps)))
  in
  Thread.join server_thread;
  let identical r =
    r.Ompgpu_api.exit_code = oneshot.Ompgpu_api.exit_code
    && String.equal r.Ompgpu_api.output oneshot.Ompgpu_api.output
    && String.equal r.Ompgpu_api.diagnostics oneshot.Ompgpu_api.diagnostics
  in
  let byte_identical = identical cold && identical warm in
  Fmt.pr "== Service: mompd request latency (xsbench, tiny, -O --run) ==@.";
  Fmt.pr "  one-shot (no daemon) %8.4f s@." oneshot_s;
  Fmt.pr "  request (cold cache) %8.4f s@." cold_s;
  Fmt.pr "  request (warm cache) %8.4f s  (avg of 20)@." warm_avg_s;
  Fmt.pr "  warm < cold one-shot: %b   byte-identical to one-shot: %b@.@."
    (warm_avg_s < oneshot_s) byte_identical;
  Observe.Json.Obj
    [
      ("oneshot_s", Observe.Json.Float oneshot_s);
      ("cold_request_s", Observe.Json.Float cold_s);
      ("warm_request_s", Observe.Json.Float warm_avg_s);
      ("warm_beats_cold_oneshot", Observe.Json.Bool (warm_avg_s < oneshot_s));
      ("byte_identical", Observe.Json.Bool byte_identical);
    ]

(* ------------------------------------------------------------------ *)
(* Corpus benchmark: conformance corpus as daemon traffic              *)
(* ------------------------------------------------------------------ *)

(* The conformance corpus (lib/corpus, docs/CONFORMANCE.md) replayed
   through a live mompd over resilient client sessions: compiles/sec is
   the serving throughput of the daemon on generated kernels, cold
   against empty caches and warm against the in-memory result cache.
   Throughput measures this host; byte-identity with in-process
   compilation and the zero-transport-error bar are machine-independent.
   `make conformance` runs the same traffic at full corpus size. *)
let corpus_bench () =
  let s = Corpus.Traffic.run ~connections:4 ~domains:2 ~root:42L ~n:24 () in
  Fmt.pr "== Corpus: conformance corpus as daemon traffic ==@.";
  Fmt.pr "  %d programs x %d cells = %d jobs over %d connections (%d domains)@."
    s.Corpus.Traffic.programs
    (List.length Corpus.Matrix.cells)
    s.Corpus.Traffic.jobs s.Corpus.Traffic.connections s.Corpus.Traffic.domains;
  Fmt.pr "  cold  %8.1f compiles/s  (%.2fs)@." s.Corpus.Traffic.cold_cps
    s.Corpus.Traffic.cold_s;
  Fmt.pr "  warm  %8.1f compiles/s  (%.2fs)@." s.Corpus.Traffic.warm_cps
    s.Corpus.Traffic.warm_s;
  Fmt.pr "  byte-identical to in-process: %b   transport errors: %d@.@."
    s.Corpus.Traffic.byte_identical s.Corpus.Traffic.transport_errors;
  Corpus.Traffic.to_json s

(* ------------------------------------------------------------------ *)
(* Fleet benchmark: the corpus through the sharded router              *)
(* ------------------------------------------------------------------ *)

(* How serving scales with shard count, and what a shard dying costs.
   The same corpus traffic as corpus_bench, but through a Router fronting
   N supervised in-process shards: requests/sec cold and warm at N=1,2,4
   (the warm-hit ratio says whether the consistent-hash ring kept each
   key on its warm shard), then the failover run — one shard stopped
   mid-pass — whose p99 prices the router's absorption of the kill.
   Throughput and latency measure this host; byte-identity of every
   fleet answer with in-process compilation is machine-independent and
   is the member tools/bench_gate.ml refuses to pass without. *)
let fleet_bench () =
  Fmt.pr "== Fleet: corpus through the sharded router ==@.";
  let scaling =
    List.map
      (fun shards ->
        let f =
          Corpus.Traffic.run_fleet ~connections:4 ~shards ~domains:2 ~root:42L
            ~n:12 ()
        in
        let s = f.Corpus.Traffic.base in
        Fmt.pr
          "  shards=%d  cold %8.1f compiles/s  warm %8.1f compiles/s  \
           warm-hit %.2f  failovers %d  fallbacks %d  byte-identical %b@."
          shards s.Corpus.Traffic.cold_cps s.Corpus.Traffic.warm_cps
          f.Corpus.Traffic.warm_hit_ratio f.Corpus.Traffic.failovers
          f.Corpus.Traffic.fallbacks s.Corpus.Traffic.byte_identical;
        f)
      [ 1; 2; 4 ]
  in
  let fo = Corpus.Traffic.run_failover ~connections:4 ~shards:3 ~domains:2
      ~root:42L ~n:8 ()
  in
  Fmt.pr
    "  failover: killed %s mid-pass (3 shards, %d jobs): p50 %.1fms  p99 \
     %.1fms  max %.1fms  %d failover(s), %d fallback(s), %d respawn(s), \
     byte-identical %b@.@."
    fo.Corpus.Traffic.killed fo.Corpus.Traffic.fo_jobs
    fo.Corpus.Traffic.p50_ms fo.Corpus.Traffic.p99_ms fo.Corpus.Traffic.max_ms
    fo.Corpus.Traffic.fo_failovers fo.Corpus.Traffic.fo_fallbacks
    fo.Corpus.Traffic.respawns fo.Corpus.Traffic.fo_byte_identical;
  let byte_identical =
    fo.Corpus.Traffic.fo_byte_identical
    && List.for_all
         (fun (f : Corpus.Traffic.fleet_stats) ->
           f.Corpus.Traffic.base.Corpus.Traffic.byte_identical)
         scaling
  in
  Observe.Json.with_schema
    (Observe.Json.Obj
       [
         ( "scaling",
           Observe.Json.List (List.map Corpus.Traffic.fleet_to_json scaling) );
         ("failover", Corpus.Traffic.failover_to_json fo);
         ("byte_identical", Observe.Json.Bool byte_identical);
       ])

(* ------------------------------------------------------------------ *)
(* Tiers benchmark: cold latency per tier, upgrade throughput          *)
(* ------------------------------------------------------------------ *)

(* The tiered-compilation acceptance shape (docs/SCHEDULER.md): a cold
   request against a tiered daemon — answered from the fast tier — must
   be cheaper than the same cold request against an untiered (full-only)
   daemon, the warm path must not regress, and once the background
   upgrade queue drains every answer must be byte-identical to a
   one-shot full-pipeline compile.  Latencies and upgrade throughput
   measure this host; byte-identity is machine-independent and is the
   member tools/bench_gate.ml refuses to pass without. *)
let tiers_bench () =
  let t = Corpus.Traffic.run_tiered ~connections:4 ~domains:2 ~root:42L ~n:12 () in
  Fmt.pr "== Tiers: cold latency per tier, background upgrade throughput ==@.";
  Fmt.pr "  %d tier-eligible jobs over %d connections (%d domains)@."
    t.Corpus.Traffic.tr_jobs t.Corpus.Traffic.tr_connections
    t.Corpus.Traffic.tr_domains;
  Fmt.pr "  cold p50   full %8.1f ms   tiered %8.1f ms@."
    t.Corpus.Traffic.full_cold_p50_ms t.Corpus.Traffic.tiered_cold_p50_ms;
  Fmt.pr "  warm       full %8.1f c/s  tiered %8.1f c/s@."
    t.Corpus.Traffic.full_warm_cps t.Corpus.Traffic.tiered_warm_cps;
  Fmt.pr "  upgrades   %d drained in %.2fs (%.1f/s)@."
    t.Corpus.Traffic.upgrades_done t.Corpus.Traffic.upgrade_drain_s
    t.Corpus.Traffic.upgrades_per_s;
  Fmt.pr "  post-upgrade byte-identical to one-shot full: %b   transport \
          errors: %d@.@."
    t.Corpus.Traffic.post_upgrade_identical t.Corpus.Traffic.tr_transport_errors;
  Corpus.Traffic.tiers_to_json t

(* ------------------------------------------------------------------ *)
(* Storage benchmark: governed caches under pressure                   *)
(* ------------------------------------------------------------------ *)

(* The storage-governance acceptance shape (docs/ROBUSTNESS.md): a
   byte-capped warm cache under eviction pressure and a disk cache with
   every store failing as disk-full must both keep serving byte-identical
   results — governance costs warm hits, never correctness — while the
   caps hold and the counters (evictions, store failures, breaker trips)
   surface the pressure.  At an ample cap the warm pass still hits
   everything.  [byte_identical] is the member tools/bench_gate.ml
   refuses to pass without. *)
let storage_bench () =
  Fmt.pr "== Storage: bounded caches and ENOSPC-graceful writes ==@.";
  let apps = List.map (fun (a : Proxyapps.App.t) -> a.Proxyapps.App.name) Proxyapps.Apps.all in
  let config = Ompgpu_api.Config.default in
  let reference =
    List.map
      (fun app ->
        let source = (Proxyapps.Apps.find_exn app).Proxyapps.App.omp_source tiny in
        (app, source, Ompgpu_api.compile_buffered ~config ~file:(app ^ ".momp") source))
      apps
  in
  (* eviction pressure: a cap far under the working set, two rounds *)
  let small_cap = 1024 in
  let small = Sched.Cache.create ~max_bytes:small_cap ~size_of:String.length () in
  let identical = ref true in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 2 do
    List.iter
      (fun (app, source, (reference : Ompgpu_api.compiled)) ->
        let key = Ompgpu_api.cache_key ~file:(app ^ ".momp") ~config ~source in
        let out =
          Sched.Cache.find_or_compute small ~key (fun () ->
              (Ompgpu_api.compile_buffered ~config ~file:(app ^ ".momp") source)
                .Ompgpu_api.output)
        in
        if not (String.equal out reference.Ompgpu_api.output) then identical := false)
      reference
  done;
  let pressured_s = Unix.gettimeofday () -. t0 in
  (* ample cap: the same two rounds must hit everything the second time *)
  let ample = Sched.Cache.create ~max_bytes:(16 * 1024 * 1024) ~size_of:String.length () in
  let warm_pass () =
    List.iter
      (fun (app, source, _) ->
        let key = Ompgpu_api.cache_key ~file:(app ^ ".momp") ~config ~source in
        ignore
          (Sched.Cache.find_or_compute ample ~key (fun () ->
               (Ompgpu_api.compile_buffered ~config ~file:(app ^ ".momp") source)
                 .Ompgpu_api.output)))
      reference
  in
  warm_pass ();
  Sched.Cache.reset_counters ample;
  warm_pass ();
  let warm_hit_rate = Sched.Cache.hit_rate ample in
  (* every store fails as disk-full: no store may raise, the breaker must
     trip, and lookups stay plain misses *)
  let dfull_dir = Filename.temp_file "bench-dfull" "" in
  Sys.remove dfull_dir;
  let injector =
    Fault.Injector.create
      [ { Fault.Injector.site = Fault.Injector.Disk_full; rate = 1.0; seed = 0 } ]
  in
  let dfull = Sched.Disk_cache.create ~injector ~dir:dfull_dir () in
  List.iter
    (fun (app, _, (r : Ompgpu_api.compiled)) ->
      Sched.Disk_cache.store dfull ~key:app ~data:r.Ompgpu_api.output)
    reference;
  (* a quota'd disk cache under the same working set: two entries' worth
     of quota (outputs vary per app, so size it off the largest), so the
     footprint is bounded and eviction is LRU-by-mtime *)
  let quota =
    2
    * List.fold_left
        (fun m (_, _, (r : Ompgpu_api.compiled)) ->
          max m (String.length r.Ompgpu_api.output + 64))
        0 reference
  in
  let quota_dir = Filename.temp_file "bench-quota" "" in
  Sys.remove quota_dir;
  let quotad = Sched.Disk_cache.create ~max_bytes:quota ~dir:quota_dir () in
  List.iter
    (fun (app, _, (r : Ompgpu_api.compiled)) ->
      Sched.Disk_cache.store quotad ~key:app ~data:r.Ompgpu_api.output)
    reference;
  let byte_identical =
    !identical
    && Sched.Disk_cache.bytes quotad <= quota
    && Sched.Disk_cache.writes_disabled dfull
  in
  Fmt.pr "  %d apps x2 through a %dB warm cache: %.1f ms, %d eviction(s), \
          byte-identical %b@."
    (List.length apps) small_cap (pressured_s *. 1e3)
    (Sched.Cache.evictions small) !identical;
  Fmt.pr "  ample cap warm hit rate: %.2f@." warm_hit_rate;
  Fmt.pr "  injected disk-full: %d store failure(s), %d breaker trip(s), \
          writes disabled %b, zero raised@."
    (Sched.Disk_cache.store_failures dfull)
    (Sched.Disk_cache.breaker_trips dfull)
    (Sched.Disk_cache.writes_disabled dfull);
  Fmt.pr "  %dB disk quota: %d entrie(s) kept, %d evicted, %dB on disk@.@."
    quota
    (Sched.Disk_cache.entries quotad)
    (Sched.Disk_cache.evictions quotad)
    (Sched.Disk_cache.bytes quotad);
  Observe.Json.with_schema
    (Observe.Json.Obj
       [
         ( "cache",
           Observe.Json.Obj
             [
               ("cap_bytes", Observe.Json.Int small_cap);
               ("evictions", Observe.Json.Int (Sched.Cache.evictions small));
               ("pressured_ms", Observe.Json.Float (pressured_s *. 1e3));
               ("warm_hit_rate", Observe.Json.Float warm_hit_rate);
             ] );
         ( "disk",
           Observe.Json.Obj
             [
               ("quota_bytes", Observe.Json.Int quota);
               ("entries", Observe.Json.Int (Sched.Disk_cache.entries quotad));
               ("evictions", Observe.Json.Int (Sched.Disk_cache.evictions quotad));
               ("bytes", Observe.Json.Int (Sched.Disk_cache.bytes quotad));
               ( "store_failures",
                 Observe.Json.Int (Sched.Disk_cache.store_failures dfull) );
               ( "breaker_trips",
                 Observe.Json.Int (Sched.Disk_cache.breaker_trips dfull) );
             ] );
         ("byte_identical", Observe.Json.Bool byte_identical);
       ])

(* Machine-readable perf trajectory: every app at bench scale under the
   default developer build, with the pipeline trace attached, so future
   changes can be diffed against this file. *)
let observe_json ~sched ~service ~corpus ~fleet ~tiers ~storage path =
  let scale = Proxyapps.App.Bench in
  let records =
    List.map
      (fun app ->
        Harness.Runner.json_of_measurement
          (Harness.Runner.run ~machine ~scale ~with_trace:true app
             Harness.Config.dev0))
      Proxyapps.Apps.all
  in
  let json =
    Observe.Json.with_schema
      (Observe.Json.Obj
      [
        ("scale", Observe.Json.String "bench");
        ("config", Observe.Json.String Harness.Config.dev0.Harness.Config.label);
        ("measurements", Observe.Json.List records);
        ("sched", sched);
        ("service", service);
        ("corpus", corpus);
        ("fleet", fleet);
        ("tiers", tiers);
        ("storage", storage);
      ])
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Observe.Json.to_string json);
      Out_channel.output_char oc '\n');
  Fmt.pr "wrote %s@." path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if not (List.mem "tables" args) then benchmark ();
  let sched = sched_bench () in
  let service = service_bench () in
  let corpus = corpus_bench () in
  let fleet = fleet_bench () in
  let tiers = tiers_bench () in
  let storage = storage_bench () in
  tables ();
  observe_json ~sched ~service ~corpus ~fleet ~tiers ~storage "BENCH_observe.json"

(* Differential fuzzing: generate random small MiniOMP kernels and check
   that every globalization scheme and every optimization configuration
   observes the same trace.  Integer accumulators keep results exact, so
   scheduling differences cannot hide behind floating-point rounding. *)

(* ------------------------------------------------------------------ *)
(* Program generator                                                   *)
(* ------------------------------------------------------------------ *)

type expr = Cst of int | Var_i | Var_j | Read_a of int | Add of expr * expr | Mul of expr * expr

type stmt =
  | Store_a of int * expr  (* A[k] = e (k is a fixed slot, i-independent) *)
  | Store_ai of expr  (* A[i % N] = e *)
  | Atomic_b of expr  (* atomic B[0] += e *)
  | Local of expr  (* long v = e; atomic B[1] += v (address taken via helper) *)
  | Nested of expr  (* inner parallel for with an atomic accumulation *)

type prog = { outer : int; stmts : stmt list; generic : bool }

let rec pp_expr = function
  | Cst c -> string_of_int c
  | Var_i -> "i"
  | Var_j -> "j"
  | Read_a k -> Printf.sprintf "A[%d]" k
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (pp_expr a) (pp_expr b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (pp_expr a) (pp_expr b)

(* [j] is only in scope inside nested loops; rewrite it away elsewhere *)
let rec scrub_j = function
  | Var_j -> Var_i
  | Add (a, b) -> Add (scrub_j a, scrub_j b)
  | Mul (a, b) -> Mul (scrub_j a, scrub_j b)
  | e -> e

let pp_stmt buf idx stmt =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  match stmt with
  | Store_a (k, e) -> line "    A[%d] = %s;" k (pp_expr (scrub_j e))
  | Store_ai e -> line "    A[(i + 7) %% 8] = %s;" (pp_expr (scrub_j e))
  | Atomic_b e ->
    line "    #pragma omp atomic";
    line "    B[0] += %s;" (pp_expr (scrub_j e))
  | Local e ->
    line "    long v%d = %s;" idx (pp_expr (scrub_j e));
    line "    bump(&v%d);" idx;
    line "    #pragma omp atomic";
    line "    B[1] += v%d;" idx
  | Nested e ->
    line "    #pragma omp parallel for";
    line "    for (int j = 0; j < 4; j++) {";
    line "      #pragma omp atomic";
    line "      B[2] += %s;" (pp_expr e);
    line "    }"

let render (p : prog) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "long A[8];";
  line "long B[4];";
  line "static void bump(long* p) { p[0] = p[0] + 1; }";
  line "int main() {";
  line "  for (int k = 0; k < 8; k++) { A[k] = k; }";
  if p.generic then begin
    line "  #pragma omp target teams distribute num_teams(2) thread_limit(4)";
    line "  for (int i = 0; i < %d; i++) {" p.outer
  end
  else begin
    line
      "  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)";
    line "  for (int i = 0; i < %d; i++) {" p.outer
  end;
  List.iteri (fun idx s -> pp_stmt buf idx s) p.stmts;
  line "  }";
  line "  for (int k = 0; k < 8; k++) { trace(A[k]); }";
  line "  for (int k = 0; k < 4; k++) { trace(B[k]); }";
  line "  return 0;";
  line "}";
  Buffer.contents buf

(* generators *)
let gen_expr =
  QCheck.Gen.(
    sized_size (int_bound 3) (fix (fun self n ->
        if n = 0 then
          oneof
            [ map (fun c -> Cst (c mod 7)) (int_bound 20); return Var_i; return Var_j;
              map (fun k -> Read_a (k mod 8)) (int_bound 7) ]
        else
          oneof
            [
              map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2));
            ])))

let gen_stmt =
  QCheck.Gen.(
    frequency
      [
        (2, map2 (fun k e -> Store_a (k mod 8, e)) (int_bound 7) gen_expr);
        (2, map (fun e -> Store_ai e) gen_expr);
        (3, map (fun e -> Atomic_b e) gen_expr);
        (2, map (fun e -> Local e) gen_expr);
        (2, map (fun e -> Nested e) gen_expr);
      ])

let gen_prog =
  QCheck.Gen.(
    map3
      (fun outer stmts generic -> { outer = 4 + (outer mod 8); stmts; generic })
      (int_bound 7)
      (list_size (int_range 1 4) gen_stmt)
      bool)

(* Greedy shrinker: counterexamples come out as the smallest failing kernel.
   QCheck keeps a candidate only if the property still fails on it, so each
   yield below is a *candidate* simplification, tried in order:
   drop a statement, shrink the trip count, replace a sub-expression by a
   constant. *)
let shrink_prog (p : prog) yield =
  let rec drops pre = function
    | [] -> ()
    | s :: rest ->
      yield { p with stmts = List.rev_append pre rest };
      drops (s :: pre) rest
  in
  if List.length p.stmts > 1 then drops [] p.stmts;
  if p.outer > 4 then yield { p with outer = 4 };
  let rec stmts pre = function
    | [] -> ()
    | s :: rest ->
      let try_expr e rebuild =
        match e with
        | Cst _ -> ()
        | _ -> yield { p with stmts = List.rev_append pre (rebuild (Cst 1) :: rest) }
      in
      (match s with
      | Store_a (k, e) -> try_expr e (fun e -> Store_a (k, e))
      | Store_ai e -> try_expr e (fun e -> Store_ai e)
      | Atomic_b e -> try_expr e (fun e -> Atomic_b e)
      | Local e -> try_expr e (fun e -> Local e)
      | Nested e -> try_expr e (fun e -> Nested e));
      stmts (s :: pre) rest
  in
  stmts [] p.stmts

let arb_prog =
  QCheck.make gen_prog ~print:(fun p -> render p) ~shrink:shrink_prog

(* ------------------------------------------------------------------ *)
(* The differential property                                           *)
(* ------------------------------------------------------------------ *)

(* Caveat: a [Store_a] with an i-dependent value in a kernel loop is a data
   race between iterations run by different threads — different schedules
   may legitimately observe different winners.  We make racy stores
   deterministic by only generating stores whose value is rendered
   i-independent below, or by accepting the race between the *same* config
   (run-to-run determinism is separately asserted).  To keep the property
   crisp we post-process: Store_a values are scrubbed of i. *)
let rec scrub_i = function
  | Var_i -> Cst 3
  | Add (a, b) -> Add (scrub_i a, scrub_i b)
  | Mul (a, b) -> Mul (scrub_i a, scrub_i b)
  | e -> e

let deracify p =
  {
    p with
    stmts =
      List.map
        (function
          | Store_a (k, e) -> Store_a (k, scrub_i (scrub_j e))
          | s -> s)
        p.stmts;
  }

let configurations =
  let open Openmpopt.Pass_manager in
  [
    (None : options option);
    Some default_options;
    Some { default_options with disable_spmdization = true };
    Some
      { default_options with disable_spmdization = true;
        disable_state_machine_rewrite = true };
    Some { default_options with disable_deglobalization = true };
    Some { default_options with disable_guard_grouping = true };
  ]

let prop_differential p =
  let p = deracify p in
  let src = render p in
  let reference = Helpers.run_trace src in
  List.for_all
    (fun scheme ->
      List.for_all
        (fun options ->
          let got =
            match options with
            | None -> Helpers.run_trace ~scheme src
            | Some options -> Helpers.run_trace ~scheme ~options src
          in
          if got <> reference then
            QCheck.Test.fail_reportf
              "trace mismatch (scheme %s, %s):@.got      %s@.expected %s@.program:@.%s"
              (Frontend.Codegen.scheme_name scheme)
              (match options with None -> "no-opt" | Some _ -> "optimized")
              (String.concat " " got) (String.concat " " reference) src
          else true)
        configurations)
    [ Frontend.Codegen.Simplified; Frontend.Codegen.Legacy ]

(* running the pipeline on an already-optimized module finds nothing new *)
let prop_idempotent p =
  let p = deracify p in
  let src = render p in
  let m = Helpers.compile src in
  ignore (Openmpopt.Pass_manager.run m);
  let second = Openmpopt.Pass_manager.run m in
  let open Openmpopt.Pass_manager in
  if
    second.heap_to_stack <> 0 || second.heap_to_shared <> 0 || second.spmdized <> 0
    || second.custom_state_machines <> 0
  then
    QCheck.Test.fail_reportf
      "second pipeline run still transformed (h2s=%d h2shared=%d spmd=%d csm=%d):@.%s"
      second.heap_to_stack second.heap_to_shared second.spmdized
      second.custom_state_machines src
  else
    match Ir.Verify.check m with
    | Result.Ok () -> true
    | Result.Error msg ->
      QCheck.Test.fail_reportf "verifier rejected twice-optimized module: %s@.%s" msg
        src

(* ------------------------------------------------------------------ *)
(* Robustness: malformed input never escapes as a raw exception        *)
(* ------------------------------------------------------------------ *)

(* Truncate a valid program at an arbitrary byte, or splat one byte with
   punctuation the grammar rejects.  Whatever comes out, the front end must
   either compile it or fail with a *located* structured error — a raw
   [Failure]/[Invalid_argument]/assert escaping the lexer, parser or codegen
   classifies as [Internal] and fails the property. *)
let mangle (p, n, mutate) =
  let src = render (deracify p) in
  let len = String.length src in
  if mutate then begin
    let b = Bytes.of_string src in
    Bytes.set b (n mod len) (List.nth [ '$'; '@'; '~'; '#'; '('; '}' ] (n mod 6));
    Bytes.to_string b
  end
  else String.sub src 0 (n mod len)

let arb_mangled =
  QCheck.make
    QCheck.Gen.(triple gen_prog (int_bound 4096) bool)
    ~print:(fun arg -> mangle arg)

let prop_malformed_is_structured arg =
  let src = mangle arg in
  let open Fault.Ompgpu_error in
  match
    Harness.Errors.run_protected ~phase:Lowering (fun () ->
        let m =
          Frontend.Codegen.compile ~scheme:Frontend.Codegen.Simplified
            ~file:"mangled.c" src
        in
        match Ir.Verify.check m with
        | Result.Ok () -> ()
        | Result.Error msg -> raise_error Verify ~phase:Verifying "%s" msg)
  with
  | Result.Ok () -> true
  | Result.Error e -> (
    match e.kind with
    | Verify -> true
    | Lex | Parse | Codegen ->
      if e.loc = None then
        QCheck.Test.fail_reportf "compile error lost its location: %s@.%s"
          (to_string e) src
      else true
    | k ->
      QCheck.Test.fail_reportf
        "raw exception escaped the front end (classified %s): %s@.%s"
        (kind_name k) (to_string e) src)

(* CI exit-path canary: FUZZ_FORCE_FAIL=1 injects a property that always
   fails, so the shrinker reduces a counterexample and the run must exit
   nonzero.  tools/check_fuzz_exit.sh asserts that this exit code survives
   the `dune exec ... -- test fuzz` invocation `make ci` uses; a gate whose
   failing fuzz run exits 0 is not a gate. *)
let forced_fail =
  Helpers.qtest ~count:5 "forced failure (FUZZ_FORCE_FAIL canary)" arb_prog
    (fun p ->
      ignore (render (deracify p));
      QCheck.Test.fail_reportf "FUZZ_FORCE_FAIL canary: intentional failure")

let suite =
  let base =
    [
      Helpers.qtest ~count:40 "random kernels: all schemes and configs agree" arb_prog
        prop_differential;
      Helpers.qtest ~count:30 "optimizer pipeline is idempotent" arb_prog
        prop_idempotent;
      Helpers.qtest ~count:150 "malformed source yields located structured errors"
        arb_mangled prop_malformed_is_structured;
    ]
  in
  if Sys.getenv_opt "FUZZ_FORCE_FAIL" = Some "1" then base @ [ forced_fail ]
  else base

(** Content-addressed, domain-safe result cache.

    Keys are digests of job *content* — for pipeline jobs, the printed IR
    module text plus the pass-option fingerprint (plus machine/scale salts;
    see docs/SCHEDULER.md for the exact key definition) — so identical
    inputs hit regardless of which file, app or batch slot produced them.
    Values are whatever the job computes (pipeline report, optimized IR
    text, a full measurement).

    All operations are thread-safe.  Two domains that miss the same key
    concurrently both compute; the first insertion wins and both count as
    misses (values are equal by the determinism contract, so which one is
    kept is unobservable). *)

type 'a t

val create : unit -> 'a t

val key : string list -> string
(** Digest (hex) of the concatenated parts, separator-framed so that part
    boundaries cannot collide. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a
(** Return the cached value for [key], or run the thunk (outside the cache
    lock), memoize and return its result.  A raising thunk caches
    nothing. *)

val replace : 'a t -> key:string -> 'a -> unit
(** Atomically overwrite (or insert) [key]'s entry.  Concurrent readers
    see the old or the new value, never a torn one; hit/miss counters are
    untouched.  Used by the daemon's tier-upgrade path to promote a
    fast-tier entry to the full-pipeline result. *)

val peek : 'a t -> key:string -> 'a option
(** Counter-neutral lookup: like a read under {!find_or_compute}'s lock
    but without touching the hit/miss accounting.  For background
    maintenance (the upgrade worker), not the request path. *)

val hits : 'a t -> int

val misses : 'a t -> int

val hit_rate : 'a t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

val length : 'a t -> int

val reset_counters : 'a t -> unit
(** Zero the hit/miss counters, keeping the cached entries — used to
    measure the hit rate of one warm batch in isolation. *)

(** JSON export of the simulator cost model (schema in
    docs/OBSERVABILITY.md). *)

val json_of_launch : Interp.launch_stats -> Observe.Json.t
(** One kernel launch as a flat JSON object of its counters. *)

val json_of_sim : Interp.t -> Observe.Json.t
(** All launches of a simulation, oldest first, plus the total modeled
    kernel cycles: [{"total_kernel_cycles": n, "kernels": [...]}]. *)

# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench experiments examples ci clean fmt fmt-check bench-gate fault-matrix service-smoke chaos conformance conformance-smoke perf

all: build

build:
	dune build @all

test:
	dune runtest

# Formatting is pinned by .ocamlformat (currently `disable = true`: the
# infrastructure is wired and enforced in CI, adoption is per-file).
# Requires the ocamlformat binary; CI installs the pinned version.
fmt:
	dune build @fmt --auto-promote

fmt-check:
	dune build @fmt

# What a gate should run: build everything, the full test suite, a
# reproducible (fixed-seed) longer fuzz pass, and the regression test that
# fuzz counterexamples actually fail the gate (exit-code propagation).
ci:
	dune build @all
	dune runtest
	FUZZ_SEED=42 FUZZ_ITERS=200 dune exec test/test_main.exe -- test fuzz
	sh tools/check_fuzz_exit.sh
	sh tools/fault_matrix.sh
	sh tools/service_smoke.sh
	sh tools/chaos_soak.sh

# Fault-injection matrix: every injection site through the mompc CLI in each
# supervision mode (fail-fast, bounded retry, graceful fallback, watchdog),
# asserting the taxonomy exit codes, that no unhandled exception escapes the
# driver, and that two same-seed runs are byte-identical
# (docs/ROBUSTNESS.md).
fault-matrix:
	dune build bin/mompc.exe
	sh tools/fault_matrix.sh

# Persistent-service smoke: boot a real mompd, check `mompc --daemon` is
# byte-identical to one-shot mompc, drive 50 mixed protocol requests
# (including an injected pass-crash and malformed lines) through
# `mompd request`, and require a clean shutdown (docs/API.md).
service-smoke:
	dune build bin/mompc.exe bin/mompd.exe
	sh tools/service_smoke.sh

# Chaos/soak harness (CHAOS_ITERS=200 by default): a supervised daemon under
# `--inject daemon-kill` crash injection, external kill -9 / restart cycles,
# a malformed-frame fuzz pass, a fleet phase that SIGKILLs router shards
# under traffic, and a storage-governance phase that runs fleet traffic
# under `--inject disk-full` with a tiny `--cache-max-bytes` quota — every
# client compile must exit 0 with bytes identical to one-shot mompc, the
# supervisor must restart within its backoff bounds, the cache directory
# must stay inside its quota, and no process may exit outside the taxonomy
# (docs/ROBUSTNESS.md, docs/FLEET.md).
chaos:
	dune build bin/mompc.exe bin/mompd.exe
	sh tools/chaos_soak.sh

# Mass-conformance corpus (docs/CONFORMANCE.md): CORPUS_N seeded programs
# through the full {scheme} x {mode} x {pipeline} differential matrix —
# any unexplained divergence fails with a minimized reproducer — then the
# whole corpus replayed through a live mompd (--daemon) plus the tiered
# vs untiered daemon comparison (--tiered), requiring byte-identity with
# in-process compilation and recording compiles/sec, cold p50 per tier
# and upgrade throughput into BENCH_observe.json's "corpus" and "tiers"
# sections.
CORPUS_N ?= 1000
CORPUS_SEED ?= 42
conformance:
	dune build tools/conformance.exe bench/main.exe
	dune exec tools/conformance.exe -- --n $(CORPUS_N) --seed $(CORPUS_SEED) \
	  --daemon --tiered --observe BENCH_observe.json

# The CI-sized corpus: the committed ledger's exact run (48 programs,
# seed 42) diffed against test/corpus_ledger.expected, plus daemon
# replay.  Any drift is a one-line ledger diff.  Then the same corpus
# replayed with `--pipeline fast` standing in for the optimized column —
# the divergence licenses are scheme/mode/program-keyed, so every
# fast-vs-full delta must still classify (api_version 2's pipeline API
# cannot introduce unexplained divergences).
conformance-smoke:
	dune build tools/conformance.exe
	dune exec tools/conformance.exe -- --n 48 --seed 42 \
	  --expected test/corpus_ledger.expected --daemon
	dune exec tools/conformance.exe -- --n 48 --seed 42 --pipeline fast

# Benchmark-regression gate: regenerate BENCH_observe.json into a scratch
# directory and diff its deterministic counters (per-app barriers and store
# counts) against the committed baseline.  Fresh wall-clock numbers are
# never gated here (they measure the host, not the compiler; `make perf` +
# `bench_gate --perf` own that), but the *committed* baseline must record
# sched.speedup > 1.0 and a pool that executed every submitted job.
bench-gate:
	dune build bench/main.exe tools/bench_gate.exe
	mkdir -p _gate
	cd _gate && ../_build/default/bench/main.exe tables > /dev/null
	./_build/default/tools/bench_gate.exe BENCH_observe.json _gate/BENCH_observe.json --min-speedup 1.0

# Phase-level profile of the standard Figure-10 batch (docs/PERF.md):
# sequential vs PERF_JOBS-domain parallel (best of 2 each), then one
# instrumented run whose per-job/per-phase samples become a flamegraph
# (PERF_DIR/flame.folded), an allocation profile (alloc.folded) and a
# schema-stamped perf.json the CI perf job gates with
# `bench_gate --perf PERF_DIR/perf.json --min-speedup 1.0`.
PERF_JOBS ?= 4
PERF_BATCH ?= tiny
PERF_DIR ?= _perf
perf:
	dune build tools/perf_report.exe
	PERF_JOBS=$(PERF_JOBS) PERF_BATCH=$(PERF_BATCH) \
	  dune exec tools/perf_report.exe -- $(PERF_DIR)

# regenerate every table and figure of the paper's evaluation
experiments:
	dune exec bin/run_experiments.exe

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/deglobalization_demo.exe
	dune exec examples/spmdization_demo.exe
	dune exec examples/remarks_demo.exe
	dune exec examples/custom_analysis.exe
	dune exec examples/oom_demo.exe

clean:
	dune clean
	rm -rf _gate _perf

(* Imperative construction of MiniIR functions, in the style of LLVM's
   IRBuilder: the builder holds an insertion point (a block) and appends
   instructions, returning the [Value.t] of each result. *)

type t = {
  func : Func.t;
  mutable cur : Block.t option;
  mutable loc : Support.Loc.t;
}

let create func = { func; cur = None; loc = Support.Loc.none }

let set_loc b loc = b.loc <- loc

let new_block b label =
  let label =
    if Func.find_block b.func label = None then label
    else
      let rec loop i =
        let l = Printf.sprintf "%s.%d" label i in
        if Func.find_block b.func l = None then l else loop (i + 1)
      in
      loop 1
  in
  let blk = Block.make label in
  Func.add_block b.func blk;
  blk

let position_at_end b blk = b.cur <- Some blk

let current_block b =
  match b.cur with
  | Some blk -> blk
  | None -> Support.Util.failf "Builder: no insertion point in %s" b.func.Func.name

let insert b kind =
  let id = Func.fresh_reg b.func in
  let i = Instr.make ~loc:b.loc ~id kind in
  Block.append (current_block b) i;
  if Instr.has_result i then Value.Reg id else Value.undef Types.Void

let alloca b ?(count = 1) ty = insert b (Instr.Alloca (ty, count))
let load b ty ptr = insert b (Instr.Load (ty, ptr))
let store b ty v ptr = ignore (insert b (Instr.Store (ty, v, ptr)))
let gep b ~ptr_ty base off = insert b (Instr.Gep (ptr_ty, base, off))
let bin b op ty x y = insert b (Instr.Bin (op, ty, x, y))
let icmp b cc ty x y = insert b (Instr.Icmp (cc, ty, x, y))
let fcmp b cc ty x y = insert b (Instr.Fcmp (cc, ty, x, y))
let cast b op ty v = insert b (Instr.Cast (op, ty, v))
let select b ty c x y = insert b (Instr.Select (ty, c, x, y))
let call b ty name args = insert b (Instr.Call (ty, Instr.Direct name, args))
let call_indirect b ty fn args = insert b (Instr.Call (ty, Instr.Indirect fn, args))
let atomicrmw b op ty ptr v = insert b (Instr.Atomicrmw (op, ty, ptr, v))

let add b ty x y = bin b Instr.Add ty x y
let sub b ty x y = bin b Instr.Sub ty x y
let mul b ty x y = bin b Instr.Mul ty x y

let set_term b term = (current_block b).Block.term <- term
let ret b v = set_term b (Block.Ret v)
let br b label = set_term b (Block.Br label)
let cbr b cond l1 l2 = set_term b (Block.Cbr (cond, l1, l2))
let switch b v cases default = set_term b (Block.Switch (v, cases, default))
let unreachable b = set_term b Block.Unreachable

(* mompd: the persistent MiniOMP compile daemon.

     mompd serve --socket ./mompd.sock -j 4 --cache-dir .cache &
     mompc --daemon ./mompd.sock file.momp        # warm-cache compiles
     mompd stats                                  # live counters (schema 2)
     mompd health                                 # liveness/readiness JSON
     mompd request < requests.jsonl               # raw protocol access
     mompd shutdown

   The daemon keeps a Sched.Pool of worker domains and warm in-memory +
   on-disk compile caches alive across requests, so repeated compiles of
   the same source are cache hits whichever client sends them.  The serve
   loop runs under a supervisor: a crash restarts it on the same bound
   socket with jittered backoff, and a crash loop opens a circuit breaker
   (exit 41).  SIGTERM/SIGINT drain gracefully.  Wire protocol v2
   (newline-delimited JSON) is specified in docs/API.md. *)

open Cmdliner

let default_socket = Service.Server.default_config.Service.Server.socket_path

let socket_arg = Cli_common.socket ~default:default_socket ()

let require_socket = function
  | Some s -> s
  | None -> default_socket

(* Surface a connect failure as the taxonomy does everywhere else: one
   stable line, the kind's exit code. *)
let with_client socket_path f =
  (* the daemon hanging up mid-request (e.g. a serve-loop crash between
     accept and respond) must be a structured transport error, not a
     process-killing SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Service.Client.with_connection ~socket_path f with
  | exception Unix.Unix_error (err, _, _) ->
    let e =
      Fault.Ompgpu_error.make Fault.Ompgpu_error.Internal
        ~phase:Fault.Ompgpu_error.Serving
        (Printf.sprintf "cannot reach daemon at %s: %s" socket_path
           (Unix.error_message err))
    in
    Fmt.epr "mompd: %s@." (Fault.Ompgpu_error.to_string e);
    Fault.Ompgpu_error.exit_code e
  | code -> code

let fail_error e =
  Fmt.epr "mompd: %s@." (Fault.Ompgpu_error.to_string e);
  Fault.Ompgpu_error.exit_code e

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve socket domains capacity watchdog cache_dir cache_max_bytes
    cache_max_entries state_dir journal_max_bytes inject max_restarts
    restart_window drain_deadline tiered =
  let socket_path = require_socket socket in
  let capacity = Option.value capacity ~default:(4 * max 1 domains) in
  match Cli_common.parse_injects inject with
  | Error msgs ->
    List.iter (fun m -> Fmt.epr "mompd: --inject: %s@." m) msgs;
    2
  | Ok specs ->
    (* a client hanging up mid-response must be a Sys_error on the
       connection thread, not a process-killing SIGPIPE *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let cfg =
      {
        Service.Server.socket_path;
        domains;
        capacity;
        watchdog_s = watchdog;
        cache_dir;
        state_dir;
        injector = Fault.Injector.create specs;
        drain_deadline_s = drain_deadline;
        tiered;
        cache_max_entries;
        cache_max_bytes;
        journal_max_bytes;
      }
    in
    let sup_cfg =
      {
        Service.Supervisor.default_config with
        Service.Supervisor.server = cfg;
        max_restarts;
        window_s = restart_window;
        log = (fun m -> Fmt.epr "%s@." m);
      }
    in
    let sup = Service.Supervisor.create sup_cfg in
    let drain_and_exit _signal =
      Service.Supervisor.stop sup;
      (* hard stop: if the drain wedges (a compile past the deadline), do
         not hang the process group forever *)
      ignore
        (Thread.create
           (fun () ->
             Thread.delay (drain_deadline +. 2.0);
             Stdlib.exit 0)
           ())
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle drain_and_exit);
    Sys.set_signal Sys.sigint (Sys.Signal_handle drain_and_exit);
    Fmt.epr "mompd: listening on %s (domains=%d capacity=%d%s%s%s%s)@."
      socket_path (max 1 domains) capacity
      (match watchdog with
      | Some s -> Printf.sprintf " watchdog=%gs" s
      | None -> "")
      (match cache_dir with
      | Some d -> Printf.sprintf " cache-dir=%s" d
      | None -> "")
      (match state_dir with
      | Some d -> Printf.sprintf " state-dir=%s" d
      | None -> "")
      (if tiered then " tiered" else "");
    (match Service.Supervisor.run sup with
    | Ok () ->
      Fmt.epr "mompd: shut down@.";
      0
    | Error e -> fail_error e)

let serve_cmd =
  let doc =
    "run the compile daemon (supervised) until a shutdown request or \
     SIGTERM arrives"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket_arg $ Cli_common.jobs
      $ Arg.(
          value
          & opt (some int) None
          & info [ "capacity" ] ~docv:"N"
              ~doc:
                "Admission limit: shed (exit 40, retryable) any compile \
                 request arriving while $(docv) are already in flight.  \
                 Default 4 * domains; 0 sheds everything.")
      $ Cli_common.watchdog $ Cli_common.cache_dir
      $ Cli_common.cache_max_bytes $ Cli_common.cache_max_entries
      $ Arg.(
          value
          & opt (some string) None
          & info [ "state-dir" ] ~docv:"DIR"
              ~doc:
                "Journal every request to $(docv)/journal.ndjson and run \
                 the crash-recovery scan at startup (counters surface in \
                 $(b,mompd health)).  A tiered daemon also checkpoints \
                 its hotness profile here ($(docv)/hotness.json).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "journal-max-bytes" ] ~docv:"BYTES"
              ~doc:
                "Rotate the journal mid-life once it exceeds $(docv) \
                 bytes (to journal.prev.ndjson), instead of only at the \
                 next restart.")
      $ Cli_common.inject
      $ Arg.(
          value
          & opt int Service.Supervisor.default_config.Service.Supervisor.max_restarts
          & info [ "max-restarts" ] ~docv:"N"
              ~doc:
                "Circuit breaker: more than $(docv) serve-loop crashes \
                 within the restart window stop the daemon with exit 41.")
      $ Arg.(
          value
          & opt float Service.Supervisor.default_config.Service.Supervisor.window_s
          & info [ "restart-window" ] ~docv:"SECONDS"
              ~doc:"Sliding window the circuit breaker counts crashes in.")
      $ Arg.(
          value
          & opt float Service.Server.default_config.Service.Server.drain_deadline_s
          & info [ "drain-deadline" ] ~docv:"SECONDS"
              ~doc:
                "On shutdown/SIGTERM, wait at most $(docv) for in-flight \
                 requests to finish before severing connections.")
      $ Arg.(
          value & flag
          & info [ "tiered" ]
              ~doc:
                "Tiered compilation: answer cold full-pipeline compiles \
                 from the $(b,fast) tier immediately and promote hot cache \
                 entries to the full pipeline in the background (see \
                 docs/SCHEDULER.md).  Off by default: until the upgrade \
                 lands, a fast-tier answer is not byte-identical to a \
                 one-shot $(b,mompc) compile."))

(* ------------------------------------------------------------------ *)
(* route: the sharded fleet front-end                                  *)
(* ------------------------------------------------------------------ *)

let default_router_socket =
  Service.Router.default_config.Service.Router.socket_path

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* One daemon shard as a child process: [mompd serve] on its own socket
   and state dir, stdout/stderr appended to a per-shard log.  [alive] and
   [stop] reap with waitpid; the router's monitor thread is the only
   [alive] caller, so the pid slot needs no locking. *)
let subprocess_backend ~name ~socket_path ~log_file args =
  let pid = ref None in
  let start () =
    let logfd =
      Unix.openfile log_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let p =
      Fun.protect
        ~finally:(fun () -> Unix.close logfd)
        (fun () -> Unix.create_process Sys.executable_name args Unix.stdin logfd logfd)
    in
    pid := Some p
  in
  let alive () =
    match !pid with
    | None -> false
    | Some p -> (
      match Unix.waitpid [ Unix.WNOHANG ] p with
      | 0, _ -> true
      | _ ->
        pid := None;
        false
      | exception Unix.Unix_error _ ->
        pid := None;
        false)
  in
  let stop () =
    match !pid with
    | None -> ()
    | Some p ->
      (try Unix.kill p Sys.sigterm with Unix.Unix_error _ -> ());
      let deadline = Unix.gettimeofday () +. 8.0 in
      let rec reap () =
        match Unix.waitpid [ Unix.WNOHANG ] p with
        | 0, _ ->
          if Unix.gettimeofday () < deadline then begin
            Thread.delay 0.05;
            reap ()
          end
          else begin
            (* the graceful drain wedged: do not leave an orphan behind *)
            (try Unix.kill p Sys.sigkill with Unix.Unix_error _ -> ());
            try ignore (Unix.waitpid [] p) with Unix.Unix_error _ -> ()
          end
        | _ -> ()
        | exception Unix.Unix_error _ -> ()
      in
      reap ();
      pid := None
  in
  { Service.Router.name; socket_path; start; stop; alive; pid = (fun () -> !pid) }

let route socket shards domains capacity cache_dir cache_max_bytes
    cache_max_entries fleet_dir inject queue_deadline probe_interval
    max_respawns eject_cooldown tiered =
  let socket_path =
    match socket with Some s -> s | None -> default_router_socket
  in
  let shards = max 1 shards in
  let capacity = Option.value capacity ~default:(4 * max 1 domains * shards) in
  match Cli_common.parse_injects inject with
  | Error msgs ->
    List.iter (fun m -> Fmt.epr "mompd: --inject: %s@." m) msgs;
    2
  | Ok specs ->
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    mkdir_p fleet_dir;
    Option.iter mkdir_p cache_dir;
    let backends =
      List.init shards (fun i ->
          let name = Printf.sprintf "shard-%d" i in
          let state_dir = Filename.concat fleet_dir (name ^ ".state") in
          mkdir_p state_dir;
          let shard_socket = Filename.concat fleet_dir (name ^ ".sock") in
          let args =
            [
              Sys.executable_name;
              "serve";
              "--socket";
              shard_socket;
              "-j";
              string_of_int (max 1 domains);
              (* each shard takes the whole fleet capacity: the router's
                 per-tenant fair queue is the real admission gate, and a
                 failover must not be shed by a tight per-shard cap *)
              "--capacity";
              string_of_int capacity;
              "--state-dir";
              state_dir;
            ]
            @ (match cache_dir with
              | Some d -> [ "--cache-dir"; d ]  (* the shared disk tier *)
              | None -> [])
            (* storage governance is per shard: every shard enforces the
               same caps over its own in-memory cache and the shared
               disk tier *)
            @ (match cache_max_bytes with
              | Some n -> [ "--cache-max-bytes"; string_of_int n ]
              | None -> [])
            @ (match cache_max_entries with
              | Some n -> [ "--cache-max-entries"; string_of_int n ]
              | None -> [])
            (* shards are full Servers: tiering is inherited unchanged *)
            @ (if tiered then [ "--tiered" ] else [])
            @ List.concat_map
                (fun s ->
                  [ "--inject"; Fault.Injector.spec_to_string s ])
                (List.filter
                   (fun s ->
                     (* router-level sites stay at the router *)
                     match s.Fault.Injector.site with
                     | Fault.Injector.Shard_down | Fault.Injector.Probe_timeout
                     | Fault.Injector.Ring_skew ->
                       false
                     | _ -> true)
                   specs)
          in
          subprocess_backend ~name ~socket_path:shard_socket
            ~log_file:(Filename.concat fleet_dir (name ^ ".log"))
            (Array.of_list args))
    in
    let cfg =
      {
        Service.Router.default_config with
        Service.Router.socket_path;
        capacity;
        queue_deadline_s = queue_deadline;
        probe_interval_s = probe_interval;
        max_respawns;
        eject_cooldown_s = eject_cooldown;
        injector = Fault.Injector.create specs;
        log = (fun m -> Fmt.epr "mompd: %s@." m);
      }
    in
    let router = Service.Router.create cfg backends in
    let drain_and_exit _signal =
      Service.Router.stop router;
      ignore
        (Thread.create
           (fun () ->
             Thread.delay 10.0;
             Stdlib.exit 0)
           ())
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle drain_and_exit);
    Sys.set_signal Sys.sigint (Sys.Signal_handle drain_and_exit);
    Fmt.epr "mompd: routing on %s across %d shard(s) (fleet-dir=%s capacity=%d%s)@."
      socket_path shards fleet_dir capacity
      (match cache_dir with
      | Some d -> Printf.sprintf " cache-dir=%s" d
      | None -> "");
    Service.Router.serve_forever router;
    Fmt.epr "mompd: fleet shut down@.";
    0

let route_cmd =
  let doc =
    "run the fleet router: N supervised daemon shards behind one socket, \
     requests sharded by cache key over a consistent-hash ring with \
     health-probed failover (see docs/FLEET.md)"
  in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(
      const route
      $ Cli_common.socket ~default:default_router_socket ()
      $ Arg.(
          value
          & opt int 2
          & info [ "shards" ] ~docv:"N"
              ~doc:"Number of daemon shards to spawn and supervise.")
      $ Cli_common.jobs
      $ Arg.(
          value
          & opt (some int) None
          & info [ "capacity" ] ~docv:"N"
              ~doc:
                "Fleet-wide admission limit enforced by the per-tenant fair \
                 queue.  Default 4 * domains * shards.")
      $ Cli_common.cache_dir
      $ Cli_common.cache_max_bytes $ Cli_common.cache_max_entries
      $ Arg.(
          value
          & opt string "./mompd-fleet"
          & info [ "fleet-dir" ] ~docv:"DIR"
              ~doc:
                "Home for per-shard sockets, state dirs and logs \
                 ($(docv)/shard-K.sock, $(docv)/shard-K.state, \
                 $(docv)/shard-K.log).")
      $ Cli_common.inject
      $ Arg.(
          value
          & opt float
              Service.Router.default_config.Service.Router.queue_deadline_s
          & info [ "queue-deadline" ] ~docv:"SECONDS"
              ~doc:
                "Longest a request waits for fair-queue capacity before \
                 being shed (exit 40, retryable).")
      $ Arg.(
          value
          & opt float
              Service.Router.default_config.Service.Router.probe_interval_s
          & info [ "probe-interval" ] ~docv:"SECONDS"
              ~doc:"Health-probe period per shard.")
      $ Arg.(
          value
          & opt int Service.Router.default_config.Service.Router.max_respawns
          & info [ "max-respawns" ] ~docv:"N"
              ~doc:
                "Respawns tolerated per window before a crash-looping shard \
                 is ejected from the ring.")
      $ Arg.(
          value
          & opt float
              Service.Router.default_config.Service.Router.eject_cooldown_s
          & info [ "eject-cooldown" ] ~docv:"SECONDS"
              ~doc:"How long an ejected shard sits out before rejoining.")
      $ Arg.(
          value & flag
          & info [ "tiered" ]
              ~doc:
                "Spawn every shard with $(b,--tiered): shards are full \
                 daemons, so tiered compilation is inherited unchanged \
                 (see docs/SCHEDULER.md)."))

(* ------------------------------------------------------------------ *)
(* stats / health / shutdown                                           *)
(* ------------------------------------------------------------------ *)

let stats socket =
  with_client (require_socket socket) (fun c ->
      match Service.Client.stats c () with
      | Ok j ->
        print_string (Observe.Json.to_string j);
        print_newline ();
        0
      | Error e -> fail_error e)

let stats_cmd =
  let doc = "print the daemon's live counters (schema 2) as JSON" in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const stats $ socket_arg)

let health socket =
  with_client (require_socket socket) (fun c ->
      match Service.Client.health c () with
      | Ok j ->
        print_string (Observe.Json.to_string j);
        print_newline ();
        0
      | Error e -> fail_error e)

let health_cmd =
  let doc =
    "print the daemon's health/readiness document (schema 2) as JSON: \
     status, uptime, in-flight count, breaker state, restart and \
     journal-replay counters"
  in
  Cmd.v (Cmd.info "health" ~doc) Term.(const health $ socket_arg)

let fleet socket =
  let socket_path =
    match socket with Some s -> s | None -> default_router_socket
  in
  with_client socket_path (fun c ->
      match Service.Client.fleet c () with
      | Ok j ->
        print_string (Observe.Json.to_string j);
        print_newline ();
        0
      | Error e -> fail_error e)

let fleet_cmd =
  let doc =
    "print the router's fleet document (schema 2) as JSON: ring layout, \
     router counters, and per-shard state/probe/respawn counters with \
     each reachable shard's live stats"
  in
  Cmd.v (Cmd.info "fleet" ~doc)
    Term.(const fleet $ Cli_common.socket ~default:default_router_socket ())

let shutdown socket =
  with_client (require_socket socket) (fun c ->
      match Service.Client.shutdown c () with
      | Ok () -> 0
      | Error e -> fail_error e)

let shutdown_cmd =
  let doc = "ask the daemon to drain and exit" in
  Cmd.v (Cmd.info "shutdown" ~doc) Term.(const shutdown $ socket_arg)

(* ------------------------------------------------------------------ *)
(* request: raw protocol access for scripts and tests                  *)
(* ------------------------------------------------------------------ *)

let request socket =
  with_client (require_socket socket) (fun c ->
      let code = ref 0 in
      (try
         while true do
           let line = input_line stdin in
           if String.trim line <> "" then
             match Observe.Json.of_string line with
             | Error msg ->
               Fmt.epr "mompd: request: unparseable JSON line: %s@." msg;
               code := max !code 2
             | Ok j -> (
               match Service.Client.roundtrip_json c j with
               | Ok reply ->
                 print_string (Observe.Json.to_string ~minify:true reply);
                 print_newline ()
               | Error e -> code := max !code (fail_error e))
         done
       with End_of_file -> ());
      !code)

let request_cmd =
  let doc =
    "send newline-delimited JSON protocol requests from stdin, print one \
     response line each (see docs/API.md for the v2 request shapes)"
  in
  Cmd.v (Cmd.info "request" ~doc) Term.(const request $ socket_arg)

let cmd =
  let doc = "persistent MiniOMP compile service" in
  Cmd.group (Cmd.info "mompd" ~doc)
    [
      serve_cmd;
      route_cmd;
      stats_cmd;
      health_cmd;
      fleet_cmd;
      shutdown_cmd;
      request_cmd;
    ]

let () = exit (Cmd.eval' cmd)

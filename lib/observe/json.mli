(** A minimal JSON tree: enough for the observability exports and their
    round-trip tests, with no external dependency.  Numbers keep the
    int/float distinction ([Int] prints without a decimal point) so counter
    values survive a round trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** members in insertion order *)

val equal : t -> t -> bool

val schema_version : int
(** Version stamp of every JSON payload the stack exports ([--stats-json],
    [BENCH_observe.json], per-measurement records, service stats):
    currently 2.  Consumers ([tools/bench_gate.ml]) reject payloads
    without the stamp or with one they do not understand. *)

val with_schema : t -> t
(** Prepend [("schema", Int schema_version)] to an [Obj]; other values
    are returned unchanged. *)

val to_string : ?minify:bool -> t -> string
(** Serialize; [minify:false] (the default) pretty-prints with 2-space
    indentation, [minify:true] emits a single line. *)

val pp : Format.formatter -> t -> unit
(** Minified rendering (for error messages and logs). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error.
    Numbers without [.], [e] or [E] parse as [Int]. *)

(** Accessors used by the JSON round-trip paths; all are total. *)

val member : string -> t -> t option
(** [member k j] is the value of key [k] when [j] is an [Obj]. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option

(* The work-stealing scheduler and result cache: ordering, backpressure,
   exception propagation, hit/miss accounting — and the properties the
   parallel driver stands on: byte-identical tables at any [-j] and no
   remark/trace bleed between concurrent pipeline jobs. *)

let machine = Gpusim.Machine.test_machine
let scale = Proxyapps.App.Tiny

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_map_list_order () =
  Sched.Pool.with_pool ~domains:4 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  let ys = Sched.Pool.map_list pool (fun x -> x * x) xs in
  Alcotest.(check (list int)) "results in input order" (List.map (fun x -> x * x) xs) ys;
  let s = Sched.Pool.stats pool in
  Alcotest.(check int) "all submitted" 100 s.Sched.Pool.submitted;
  Alcotest.(check int) "all executed" 100 s.Sched.Pool.executed

let test_backpressure () =
  (* queue capacity 3: the submitter must block rather than queue a 4th
     pending job, so the high-water mark never exceeds the capacity *)
  let capacity = 3 in
  Sched.Pool.with_pool ~queue_capacity:capacity ~domains:2 @@ fun pool ->
  let spin = ref 0 in
  let job _ =
    (* enough work that the queue actually fills *)
    for _ = 1 to 10_000 do
      incr spin
    done
  in
  ignore (Sched.Pool.map_list pool job (List.init 50 Fun.id));
  let s = Sched.Pool.stats pool in
  Alcotest.(check bool)
    (Printf.sprintf "max_pending %d <= capacity %d" s.Sched.Pool.max_pending capacity)
    true
    (s.Sched.Pool.max_pending <= capacity)

exception Boom of string

let test_exception_propagation () =
  Sched.Pool.with_pool ~domains:2 @@ fun pool ->
  let ok = Sched.Pool.submit pool (fun () -> 41 + 1) in
  let bad = Sched.Pool.submit pool (fun () -> raise (Boom "from job")) in
  Alcotest.(check int) "healthy job unaffected" 42 (Sched.Pool.await ok);
  match Sched.Pool.await bad with
  | () -> Alcotest.fail "await of failing job returned"
  | exception Boom msg -> Alcotest.(check string) "original exception" "from job" msg

let test_submit_after_shutdown () =
  let pool = Sched.Pool.create ~domains:1 () in
  Sched.Pool.shutdown pool;
  Sched.Pool.shutdown pool;
  (* idempotent *)
  match Sched.Pool.submit pool (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown accepted"
  | exception Invalid_argument _ -> ()

(* A batch an order of magnitude past anything the drivers submit: 500
   jobs whose costs span four orders of magnitude (no-ops through ~1M
   iterations of mixing), mapped at every -j the CI matrix uses.  The
   claims: every future settles (the map returns a full-length list — a
   lost future would hang or shorten it), results land in input order
   independent of -j, chunked submission agrees with unchunked, and at
   -j4 the striped deques actually exchange work (stolen > 0: jobs are
   round-robined over all stripes while any one domain drains its own
   stripe first, so an 11x imbalance forces cross-stripe traffic). *)
let test_stress_mixed_cost () =
  let n = 500 in
  (* deterministic mixed costs: 0, ~1e2, ~1e4, ~1e6 iterations *)
  let cost i = match i mod 4 with 0 -> 0 | 1 -> 100 | 2 -> 10_000 | _ -> 1_000_000 in
  let job i =
    let acc = ref i in
    for k = 1 to cost i do
      acc := (!acc * 31) + k
    done;
    (i, !acc)
  in
  let expected = List.init n job in
  let run ~domains ~chunk =
    Sched.Pool.with_pool ~domains @@ fun pool ->
    let r = Sched.Pool.map_list pool ~chunk job (List.init n Fun.id) in
    (r, Sched.Pool.stats pool)
  in
  let seq = List.init n job in
  List.iter
    (fun (domains, chunk) ->
      let r, s = run ~domains ~chunk in
      Alcotest.(check int)
        (Printf.sprintf "-j%d chunk=%d: no lost futures" domains chunk)
        n (List.length r);
      Alcotest.(check bool)
        (Printf.sprintf "-j%d chunk=%d: deterministic, in input order" domains chunk)
        true (r = expected && r = seq);
      Alcotest.(check int)
        (Printf.sprintf "-j%d: executed all" domains)
        s.Sched.Pool.submitted s.Sched.Pool.executed)
    [ (1, 1); (2, 1); (4, 1); (4, 8) ];
  let _, s4 = run ~domains:4 ~chunk:1 in
  Alcotest.(check bool)
    (Printf.sprintf "-j4: work was stolen across stripes (stolen=%d)"
       s4.Sched.Pool.stolen)
    true
    (s4.Sched.Pool.stolen > 0)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_accounting () =
  let cache : int Sched.Cache.t = Sched.Cache.create () in
  let computes = ref 0 in
  let compute () =
    incr computes;
    7
  in
  let k = Sched.Cache.key [ "module text"; "options"; "machine" ] in
  Alcotest.(check int) "first lookup computes" 7 (Sched.Cache.find_or_compute cache ~key:k compute);
  Alcotest.(check int) "second lookup cached" 7 (Sched.Cache.find_or_compute cache ~key:k compute);
  Alcotest.(check int) "thunk ran once" 1 !computes;
  Alcotest.(check int) "one miss" 1 (Sched.Cache.misses cache);
  Alcotest.(check int) "one hit" 1 (Sched.Cache.hits cache);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Sched.Cache.hit_rate cache);
  Alcotest.(check int) "one entry" 1 (Sched.Cache.length cache);
  Sched.Cache.reset_counters cache;
  Alcotest.(check int) "counters reset" 0 (Sched.Cache.hits cache);
  ignore (Sched.Cache.find_or_compute cache ~key:k compute);
  Alcotest.(check int) "entries survive reset" 1 (Sched.Cache.hits cache)

let test_cache_key_framing () =
  (* parts are length-framed: regrouping the same bytes is a different key *)
  Alcotest.(check bool)
    "[ab;c] <> [a;bc]" true
    (Sched.Cache.key [ "ab"; "c" ] <> Sched.Cache.key [ "a"; "bc" ]);
  Alcotest.(check bool)
    "[abc] <> [ab;c]" true
    (Sched.Cache.key [ "abc" ] <> Sched.Cache.key [ "ab"; "c" ]);
  Alcotest.(check string)
    "deterministic"
    (Sched.Cache.key [ "x"; "y" ])
    (Sched.Cache.key [ "x"; "y" ])

let test_cache_raising_thunk () =
  let cache : int Sched.Cache.t = Sched.Cache.create () in
  let k = Sched.Cache.key [ "k" ] in
  (match Sched.Cache.find_or_compute cache ~key:k (fun () -> raise (Boom "no")) with
  | _ -> Alcotest.fail "raising thunk returned"
  | exception Boom _ -> ());
  Alcotest.(check int) "nothing cached" 0 (Sched.Cache.length cache);
  Alcotest.(check int) "retry recomputes" 5 (Sched.Cache.find_or_compute cache ~key:k (fun () -> 5))

let test_concurrent_cache () =
  (* many domains racing on few keys: every key computes at least once,
     every lookup agrees on the value, accounting adds up *)
  let cache : string Sched.Cache.t = Sched.Cache.create () in
  let keys = List.init 5 (fun i -> Sched.Cache.key [ string_of_int i ]) in
  Sched.Pool.with_pool ~domains:8 @@ fun pool ->
  let results =
    Sched.Pool.map_list pool
      (fun i ->
        let k = List.nth keys (i mod 5) in
        Sched.Cache.find_or_compute cache ~key:k (fun () -> "v" ^ string_of_int (i mod 5)))
      (List.init 200 Fun.id)
  in
  List.iteri
    (fun i v -> Alcotest.(check string) "agreed value" ("v" ^ string_of_int (i mod 5)) v)
    results;
  Alcotest.(check int) "5 entries" 5 (Sched.Cache.length cache);
  Alcotest.(check int) "hits+misses = lookups" 200
    (Sched.Cache.hits cache + Sched.Cache.misses cache)

(* ------------------------------------------------------------------ *)
(* The driver properties                                               *)
(* ------------------------------------------------------------------ *)

let batch_jobs =
  List.concat_map
    (fun app -> [ (app, Harness.Config.dev0); (app, Harness.Config.llvm12) ])
    Proxyapps.Apps.all

let remark_strings (m : Harness.Runner.measurement) =
  match m.Harness.Runner.outcome with
  | Harness.Runner.Ok { report = Some r; _ } ->
    List.map Openmpopt.Remark.to_string r.Openmpopt.Pass_manager.remarks
  | _ -> []

let test_parallel_determinism () =
  (* same batch sequentially, at -j 1 and at -j 8: identical measurements,
     rendered identically *)
  let seq = Harness.Runner.run_batch ~machine ~scale batch_jobs in
  let j1 =
    Sched.Pool.with_pool ~domains:1 (fun pool ->
        Harness.Runner.run_batch ~machine ~scale ~pool batch_jobs)
  in
  let j8 =
    Sched.Pool.with_pool ~domains:8 (fun pool ->
        Harness.Runner.run_batch ~machine ~scale ~pool batch_jobs)
  in
  let fingerprint ms =
    String.concat "\n"
      (List.map
         (fun m -> Observe.Json.to_string (Harness.Runner.json_of_measurement m))
         ms)
  in
  Alcotest.(check string) "-j 1 = sequential" (fingerprint seq) (fingerprint j1);
  Alcotest.(check string) "-j 8 = sequential" (fingerprint seq) (fingerprint j8)

let test_no_remark_bleed () =
  (* Stress the per-job remark sinks: at -j 8 every job's report must carry
     exactly the remarks its sequential twin produced — a shared sink would
     interleave another job's remarks (different app names in the text). *)
  let seq = Harness.Runner.run_batch ~machine ~scale batch_jobs in
  let par =
    Sched.Pool.with_pool ~domains:8 (fun pool ->
        Harness.Runner.run_batch ~machine ~scale ~pool batch_jobs)
  in
  List.iter2
    (fun s p ->
      Alcotest.(check (list string))
        (s.Harness.Runner.app ^ "/" ^ s.Harness.Runner.config.Harness.Config.label
       ^ " remarks identical")
        (remark_strings s) (remark_strings p))
    seq par

let test_cached_batch () =
  (* a warm batch over a shared cache: all hits, measurements unchanged *)
  let cache : Harness.Runner.outcome Sched.Cache.t = Sched.Cache.create () in
  let cold =
    Sched.Pool.with_pool ~domains:4 (fun pool ->
        Harness.Runner.run_batch ~machine ~scale ~pool ~cache batch_jobs)
  in
  Alcotest.(check int) "cold run misses" (List.length batch_jobs) (Sched.Cache.misses cache);
  Sched.Cache.reset_counters cache;
  let warm =
    Sched.Pool.with_pool ~domains:4 (fun pool ->
        Harness.Runner.run_batch ~machine ~scale ~pool ~cache batch_jobs)
  in
  Alcotest.(check int) "warm run all hits" (List.length batch_jobs) (Sched.Cache.hits cache);
  Alcotest.(check int) "warm run no misses" 0 (Sched.Cache.misses cache);
  let fingerprint ms =
    String.concat "\n"
      (List.map
         (fun (m : Harness.Runner.measurement) ->
           m.Harness.Runner.app ^ "/" ^ m.Harness.Runner.config.Harness.Config.label
           ^ "/"
           ^
           match m.Harness.Runner.outcome with
           | Harness.Runner.Ok x -> string_of_int x.Harness.Runner.cycles
           | Harness.Runner.Err e -> "err:" ^ Fault.Ompgpu_error.to_string e)
         ms)
  in
  Alcotest.(check string) "warm = cold" (fingerprint cold) (fingerprint warm)

let suite =
  [
    Alcotest.test_case "map_list order" `Quick test_map_list_order;
    Alcotest.test_case "backpressure bound" `Quick test_backpressure;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "submit after shutdown" `Quick test_submit_after_shutdown;
    Alcotest.test_case "stress: 500 mixed-cost jobs" `Slow test_stress_mixed_cost;
    Alcotest.test_case "cache accounting" `Quick test_cache_accounting;
    Alcotest.test_case "cache key framing" `Quick test_cache_key_framing;
    Alcotest.test_case "cache raising thunk" `Quick test_cache_raising_thunk;
    Alcotest.test_case "concurrent cache" `Quick test_concurrent_cache;
    Alcotest.test_case "parallel determinism" `Slow test_parallel_determinism;
    Alcotest.test_case "no remark bleed" `Slow test_no_remark_bleed;
    Alcotest.test_case "cached batch" `Slow test_cached_batch;
  ]

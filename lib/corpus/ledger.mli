(** The committed conformance ledger.

    A ledger is the deterministic text rendering of one corpus run: the
    corpus identity (schema, seed, size, matrix dimensions), the verdict
    totals, the per-class known-divergence counts, and one line per
    divergent cell with its observation checksums.  It is committed as
    [test/corpus_ledger.expected] and diffed like a golden file, so any
    behavioral drift — a new divergence, a vanished one, a changed
    observation — is a visible one-line diff in the PR that caused it. *)

type totals = { cells : int; pass : int; known : int; fail : int }

val totals : Matrix.program_result list -> totals

val class_counts : Matrix.program_result list -> (string * int) list
(** Known-divergence cell counts, sorted by class name. *)

val render : root:int64 -> Matrix.program_result list -> string
(** The full ledger text.  Line-oriented; ends with a newline. *)

val diff : expected:string -> actual:string -> (unit, string) result
(** Structural comparison of two ledger texts (comment lines excluded);
    [Error] carries a human-readable first-difference report. *)

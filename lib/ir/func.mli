(** Functions.  A function with no blocks is a declaration (for example the
    device runtime functions, which the GPU simulator intercepts by name). *)

type linkage = External | Internal | Weak

(** Function attributes.  [Spmd_amenable] and [No_openmp] correspond to the
    OpenMP 5.1 assumptions the paper integrates ([ext_spmd_amenable] /
    [omp_no_openmp]); [Nocapture_args] is the noescape-style annotation the
    HeapToStack remarks suggest. *)
type attr =
  | Spmd_amenable
  | No_openmp
  | Nosync
  | Pure
  | Noinline
  | Nocapture_args
  | Cuda_kernel  (** kernel compiled in native kernel-language style *)

type exec_mode = Generic | Spmd

type kernel_info = {
  mutable exec_mode : exec_mode;
  mutable num_teams : int option;  (** from the num_teams clause, if constant *)
  mutable num_threads : int option;  (** from thread_limit / num_threads *)
}

type t = {
  name : string;
  ret_ty : Types.t;
  params : (string * Types.t) list;
  mutable blocks : Block.t list;  (** entry first; empty means declaration *)
  mutable linkage : linkage;
  mutable attrs : attr list;
  mutable kernel : kernel_info option;
  reg_gen : Support.Util.Id_gen.t;
  mutable loc : Support.Loc.t;
}

val make :
  ?linkage:linkage ->
  ?attrs:attr list ->
  ?kernel:kernel_info ->
  ?loc:Support.Loc.t ->
  string ->
  ret_ty:Types.t ->
  params:(string * Types.t) list ->
  t
(** A fresh definition shell ([Internal] linkage by default, no blocks). *)

val declare : ?attrs:attr list -> string -> ret_ty:Types.t -> params:(string * Types.t) list -> t

val is_declaration : t -> bool
val is_kernel : t -> bool
val has_attr : t -> attr -> bool
val add_attr : t -> attr -> unit

val param_ty : t -> int -> Types.t
(** @raise Failure on an out-of-range index. *)

val entry : t -> Block.t
(** @raise Failure on declarations. *)

val find_block : t -> string -> Block.t option
val find_block_exn : t -> string -> Block.t
val add_block : t -> Block.t -> unit
val remove_blocks : t -> string list -> unit

val fresh_reg : t -> int
(** A register id unused in this function. *)

val iter_blocks : t -> g:(Block.t -> unit) -> unit
val iter_instrs : t -> g:(Block.t -> Instr.t -> unit) -> unit
val fold_instrs : t -> init:'a -> g:('a -> Block.t -> Instr.t -> 'a) -> 'a

val def_of : t -> int -> Instr.t option
(** The defining instruction of a register. *)

val replace_uses : t -> old_v:Value.t -> new_v:Value.t -> unit
(** Replace all uses of [old_v] (instructions and terminators). *)

val uses_of : t -> Value.t -> Instr.t list

val linkage_name : linkage -> string
val attr_name : attr -> string
val attr_of_name : string -> attr option

(** MiniIR types.

    The IR is byte-addressed with opaque pointers (LLVM-15 style): a pointer
    type carries only its address space.  Address spaces follow the GPU
    mapping of the paper's Figure 2: global memory is visible to the whole
    league, shared memory to one team, local memory to a single thread. *)

type addrspace =
  | Generic  (** may alias any space; produced by address-space casts *)
  | Global
  | Shared
  | Local

type t =
  | Void
  | I1
  | I8
  | I32
  | I64
  | F32
  | F64
  | Ptr of addrspace
  | Arr of int * t  (** fixed-size array, for globals and allocas *)
  | Fn of t * t list  (** function type; only used in casts and checks *)

val equal : t -> t -> bool

val size_of : t -> int
(** Size in bytes ([Void] is 0, pointers are 8). *)

val is_integer : t -> bool
val is_float : t -> bool
val is_pointer : t -> bool

val bit_width : t -> int
(** @raise Failure on non-integer types. *)

val space_name : addrspace -> string
val space_of_name : string -> addrspace option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

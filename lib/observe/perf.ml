(* Phase-level profiling: wall time and allocation words per semantic
   stack frame, foldable into flamegraph input.

   A sample is one timed region tagged with a stack of labels — e.g.
   ["xsbench/dev"; "simulate"] — plus the wall seconds and the minor-heap
   words the region allocated on the recording domain.  Samples aggregate
   by stack into the classic folded-stacks text format (one
   "frame;frame;frame COUNT" line per stack), which flamegraph.pl,
   speedscope and inferno all consume directly; counts are microseconds
   for the time profile and words for the allocation profile.

   The collector is shared across pool domains: [record] runs the thunk
   unlocked (timing and Gc.minor_words are domain-local) and takes the
   mutex only to append, so profiling perturbs the measured batch by two
   clock reads and one Gc.quick_stat per phase. *)

type sample = { stack : string list; seconds : float; words : float }

type t = { mutex : Mutex.t; mutable samples : sample list }

let create () = { mutex = Mutex.create (); samples = [] }

let add t sample =
  Mutex.lock t.mutex;
  t.samples <- sample :: t.samples;
  Mutex.unlock t.mutex

let record t ~stack f =
  let w0 = (Gc.quick_stat ()).Gc.minor_words in
  let t0 = Unix.gettimeofday () in
  match f () with
  | r ->
    let seconds = Unix.gettimeofday () -. t0 in
    let words = (Gc.quick_stat ()).Gc.minor_words -. w0 in
    add t { stack; seconds; words };
    r
  | exception e ->
    (* failed phases still cost time; attribute it before re-raising *)
    let seconds = Unix.gettimeofday () -. t0 in
    let words = (Gc.quick_stat ()).Gc.minor_words -. w0 in
    add t { stack; seconds; words };
    raise e

let samples t =
  Mutex.lock t.mutex;
  let s = List.rev t.samples in
  Mutex.unlock t.mutex;
  s

(* Aggregate samples by stack, preserving first-appearance order so the
   folded output is deterministic for a deterministic batch. *)
let aggregate ss =
  let table = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun { stack; seconds; words } ->
      let key = String.concat ";" stack in
      match Hashtbl.find_opt table key with
      | Some (s, w, n) -> Hashtbl.replace table key (s +. seconds, w +. words, n + 1)
      | None ->
        order := key :: !order;
        Hashtbl.add table key (seconds, words, 1))
    ss;
  List.rev_map (fun key -> (key, Hashtbl.find table key)) !order

let folded ~value t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (key, (seconds, words, _n)) ->
      let count =
        match value with
        | `Time_us -> int_of_float (seconds *. 1e6)
        | `Alloc_words -> int_of_float words
      in
      Buffer.add_string buf key;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int count);
      Buffer.add_char buf '\n')
    (aggregate (samples t));
  Buffer.contents buf

(* Totals per leaf frame (the last stack element): the per-phase summary
   the perf JSON exports — "simulate: 0.31s, 42M words" regardless of
   which job the sample came from. *)
let by_leaf t =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun { stack; seconds; words } ->
      let leaf = match List.rev stack with [] -> "?" | leaf :: _ -> leaf in
      match Hashtbl.find_opt table leaf with
      | Some (s, w, n) -> Hashtbl.replace table leaf (s +. seconds, w +. words, n + 1)
      | None ->
        order := leaf :: !order;
        Hashtbl.add table leaf (seconds, words, 1))
    (samples t);
  List.rev_map (fun leaf -> (leaf, Hashtbl.find table leaf)) !order

let to_json t =
  Json.with_schema
    (Json.Obj
       [
         ( "phases",
           Json.List
             (List.map
                (fun (leaf, (seconds, words, n)) ->
                  Json.Obj
                    [
                      ("phase", Json.String leaf);
                      ("seconds", Json.Float seconds);
                      ("alloc_words", Json.Float words);
                      ("samples", Json.Int n);
                    ])
                (by_leaf t)) );
       ])

(** Consistent-hash ring over compile-fleet shards.

    The router shards requests by {!Ompgpu_api.cache_key} so each shard's
    warm in-memory cache stays hot and disjoint: the same key always lands
    on the same shard, and removing one shard from a [k]-shard fleet
    remaps only ~[1/k] of the key space (the vnodes owned by the departed
    shard) — every other key keeps its warm primary.

    A ring is immutable and pure: shard membership changes (a shard going
    down, coming back, being ejected) are expressed by *filtering* the
    preference order {!order} returns, never by rebuilding the ring — this
    is what makes the remap minimal and the routing deterministic under
    churn. *)

type t

val create : ?vnodes:int -> string list -> t
(** Build a ring over the given shard names (order-insensitive: the ring
    depends only on the set of names).  Each shard owns [vnodes] points
    (default {!default_vnodes}) placed by hashing ["name#i"], so load
    spreads evenly even with few shards.  Raises [Invalid_argument] on an
    empty or duplicate-bearing name list. *)

val default_vnodes : int
(** 64 — small enough to walk cheaply, even enough for single-digit
    fleets. *)

val shards : t -> string array
(** The shard names, sorted; indices returned by {!order} index this
    array. *)

val order : t -> string -> int list
(** The full preference order for a key: every shard index exactly once,
    starting at the key's primary and continuing around the ring.  The
    router filters this by shard health — the first live entry is where
    the request goes, the rest are its failover ladder.  Deterministic:
    same ring + same key → same order, across processes and runs. *)

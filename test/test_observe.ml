(* The observability layer: JSON round-trips, trace event arithmetic, and
   the simulator cost-model counters (barriers, atomics, divergence).

   The SPMD-vs-generic barrier comparison at the bottom is the acceptance
   check of the observability PR: an SPMDized kernel must execute strictly
   fewer barriers than its generic-mode counterpart on the same program. *)

module J = Observe.Json
module T = Observe.Trace

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let sample_json =
  J.Obj
    [
      ("null", J.Null);
      ("bools", J.List [ J.Bool true; J.Bool false ]);
      ("ints", J.List [ J.Int 0; J.Int (-17); J.Int 123456789 ]);
      ("floats", J.List [ J.Float 1.5; J.Float (-0.25); J.Float 1e-9 ]);
      ("string", J.String "line\nbreak \"quoted\" back\\slash \t tab");
      ("nested", J.Obj [ ("empty_list", J.List []); ("empty_obj", J.Obj []) ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun minify ->
      match J.of_string (J.to_string ~minify sample_json) with
      | Ok parsed -> Alcotest.(check bool) "round-trip equal" true (J.equal sample_json parsed)
      | Error msg -> Alcotest.failf "re-parse failed (minify=%b): %s" minify msg)
    [ true; false ]

let test_json_parser_accepts () =
  let cases =
    [
      ("42", J.Int 42);
      ("-0", J.Int 0);
      ("3.25", J.Float 3.25);
      ("2e3", J.Float 2000.0);
      ("\"\\u0041\\u00e9\"", J.String "A\xc3\xa9");  (* é as UTF-8 *)
      ("[1, [2, [3]]]", J.List [ J.Int 1; J.List [ J.Int 2; J.List [ J.Int 3 ] ] ]);
      ("  {\"a\" : null}  ", J.Obj [ ("a", J.Null) ]);
      ("true", J.Bool true);
    ]
  in
  List.iter
    (fun (src, expected) ->
      match J.of_string src with
      | Ok got ->
        Alcotest.(check bool) (Printf.sprintf "parse %S" src) true (J.equal expected got)
      | Error msg -> Alcotest.failf "parse %S failed: %s" src msg)
    cases

let test_json_parser_rejects () =
  List.iter
    (fun src ->
      match J.of_string src with
      | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" src
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "\"unterminated"; "1 2"; "{\"a\":}"; "nul"; "[}" ]

(* int/float distinction survives: 1 stays Int, 1.0 stays Float *)
let test_json_number_identity () =
  (match J.of_string "[1, 1.0]" with
  | Ok (J.List [ J.Int 1; J.Float f ]) ->
    Alcotest.(check (float 0.0)) "float value" 1.0 f
  | Ok j -> Alcotest.failf "unexpected shape: %s" (J.to_string ~minify:true j)
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check string) "ints print bare" "[1,2]"
    (J.to_string ~minify:true (J.List [ J.Int 1; J.Int 2 ]))

(* ------------------------------------------------------------------ *)
(* Trace events from a real pipeline run                               *)
(* ------------------------------------------------------------------ *)

let spmd_src =
  {|
long A[8];
long B[4];
int main() {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (int i = 0; i < 8; i++) {
    A[(i + 7) % 8] = 3;
    #pragma omp atomic
    B[0] += i;
  }
  for (int k = 0; k < 4; k++) { trace(B[k]); }
  return 0;
}
|}

let traced_run ?options src =
  let m = Helpers.compile src in
  let tr = T.create () in
  let options =
    match options with Some o -> o | None -> Openmpopt.Pass_manager.default_options
  in
  let report = Openmpopt.Pass_manager.run ~options ~trace:tr m in
  (m, report, T.events tr)

let test_event_ordering () =
  let _, _, events = traced_run spmd_src in
  Alcotest.(check bool) "at least one event per pipeline pass" true
    (List.length events > 5);
  List.iteri
    (fun i (e : T.event) ->
      Alcotest.(check int) "seq is the recording index" i e.seq)
    events;
  let rounds = List.map (fun (e : T.event) -> e.round) events in
  Alcotest.(check bool) "rounds are non-decreasing" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < List.length rounds - 1) rounds)
       (List.tl rounds));
  match events with
  | first :: _ -> Alcotest.(check string) "internalization runs first" "internalize" first.pass
  | [] -> Alcotest.fail "no events"

let test_delta_arithmetic () =
  (* the sum of per-pass module deltas must equal the end-to-end change *)
  let m = Helpers.compile spmd_src in
  let before = T.stats_of_module m in
  let tr = T.create () in
  let report = Openmpopt.Pass_manager.run ~trace:tr m in
  let after = T.stats_of_module m in
  let total =
    List.fold_left
      (fun acc (e : T.event) -> T.ir_stats_add acc e.delta)
      T.ir_stats_zero (T.events tr)
  in
  Alcotest.(check bool) "Σ per-pass deltas = end-to-end delta" true
    (total = T.ir_stats_sub after before);
  (* and the same for the report counters (minus the remarks pseudo-counter) *)
  let summed = Hashtbl.create 16 in
  List.iter
    (fun (e : T.event) ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace summed k (v + Option.value ~default:0 (Hashtbl.find_opt summed k)))
        e.counters)
    (T.events tr);
  List.iter
    (fun (k, v) ->
      Alcotest.(check int) (Printf.sprintf "Σ %s increments" k) v
        (Option.value ~default:0 (Hashtbl.find_opt summed k)))
    (Openmpopt.Pass_manager.counters_of_report report)

let test_ir_stats_ops () =
  let a = { T.funcs = 1; blocks = 2; instrs = 10; calls = 3; allocs = 1 } in
  let b = { T.funcs = 0; blocks = 1; instrs = -4; calls = 1; allocs = 0 } in
  Alcotest.(check bool) "add" true
    (T.ir_stats_add a b = { T.funcs = 1; blocks = 3; instrs = 6; calls = 4; allocs = 1 });
  Alcotest.(check bool) "sub inverts add" true (T.ir_stats_sub (T.ir_stats_add a b) b = a);
  Alcotest.(check bool) "zero is neutral" true (T.ir_stats_add a T.ir_stats_zero = a);
  Alcotest.(check bool) "is_zero" true (T.ir_stats_is_zero T.ir_stats_zero);
  Alcotest.(check bool) "is_zero on nonzero" false (T.ir_stats_is_zero b)

let test_event_json_roundtrip () =
  let _, _, events = traced_run spmd_src in
  List.iter
    (fun (e : T.event) ->
      match T.event_of_json (T.event_to_json e) with
      | Error msg -> Alcotest.failf "event_of_json failed: %s" msg
      | Ok e' ->
        (* time is exported with microsecond granularity, so compare the
           canonical JSON forms rather than the float fields *)
        Alcotest.(check bool)
          (Printf.sprintf "event %d round-trips" e.seq)
          true
          (J.equal (T.event_to_json e) (T.event_to_json e')))
    events;
  (* and the whole trace parses back from its serialized form *)
  let m = Helpers.compile spmd_src in
  let tr = T.create () in
  ignore (Openmpopt.Pass_manager.run ~trace:tr m);
  match J.of_string (J.to_string (T.to_json tr)) with
  | Ok (J.List l) ->
    Alcotest.(check int) "event count survives" (List.length (T.events tr)) (List.length l)
  | Ok _ -> Alcotest.fail "trace JSON is not a list"
  | Error msg -> Alcotest.failf "trace JSON re-parse failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Simulator cost model                                                *)
(* ------------------------------------------------------------------ *)

let kernel_stats_of ?options src =
  let m = Helpers.compile src in
  let report =
    Option.map (fun options -> Helpers.optimize ~options m) options
  in
  let sim = Helpers.simulate m in
  match sim.Gpusim.Interp.kernel_stats with
  | [ stats ] -> (stats, report)
  | l -> Alcotest.failf "expected exactly one kernel launch, got %d" (List.length l)

let test_atomic_counts () =
  (* 8 loop iterations, one global atomic each; nothing else is atomic *)
  let stats, _ = kernel_stats_of spmd_src in
  Alcotest.(check int) "atomics_global" 8 stats.Gpusim.Interp.atomics_global;
  Alcotest.(check int) "atomics_shared" 0 stats.Gpusim.Interp.atomics_shared

let test_divergence_uniform_vs_uneven () =
  (* 8 iterations over 2 teams x 4 threads: every thread runs exactly one
     iteration, so every branch site is taken uniformly *)
  let uniform_src =
    {|
long A[8];
int main() {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (int i = 0; i < 8; i++) {
    A[(i + 7) % 8] = 3;
  }
  for (int k = 0; k < 8; k++) { trace(A[k]); }
  return 0;
}
|}
  in
  (* 10 iterations over the same grid: two threads run a second iteration
     while the rest exit the loop — structural divergence at the back edge *)
  let uneven_src =
    {|
long A[8];
int main() {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (int i = 0; i < 10; i++) {
    A[(i + 7) % 8] = 3;
  }
  for (int k = 0; k < 8; k++) { trace(A[k]); }
  return 0;
}
|}
  in
  let options = Openmpopt.Pass_manager.default_options in
  (* both kernels are SPMD by construction (combined parallel-for target) *)
  let uniform, _ = kernel_stats_of ~options uniform_src in
  let uneven, _ = kernel_stats_of ~options uneven_src in
  Alcotest.(check int) "uniform SPMD kernel has no divergence" 0
    uniform.Gpusim.Interp.divergent_branches;
  Alcotest.(check bool) "uneven trip counts diverge" true
    (uneven.Gpusim.Interp.divergent_branches > 0)

(* Acceptance criterion of the observability PR: the generic-mode worker
   state machine dispatches every parallel region through two team-wide
   barriers; SPMDization deletes them (and, with no sequential side effects
   between the regions, introduces no guard barriers in exchange). *)
let generic_teams_src =
  {|
long B[4];
int main() {
  #pragma omp target teams num_teams(2) thread_limit(4)
  {
    #pragma omp parallel
    {
      #pragma omp atomic
      B[0] += 1;
    }
    #pragma omp parallel
    {
      #pragma omp atomic
      B[1] += 2;
    }
  }
  for (int k = 0; k < 4; k++) { trace(B[k]); }
  return 0;
}
|}

let test_spmd_fewer_barriers_than_generic () =
  let options_generic =
    { Openmpopt.Pass_manager.default_options with disable_spmdization = true }
  in
  let spmd, spmd_report =
    kernel_stats_of ~options:Openmpopt.Pass_manager.default_options generic_teams_src
  in
  let generic, _ = kernel_stats_of ~options:options_generic generic_teams_src in
  (match spmd_report with
  | Some r ->
    Alcotest.(check bool) "kernel was SPMDized" true (r.Openmpopt.Pass_manager.spmdized >= 1)
  | None -> ());
  Alcotest.(check bool)
    (Printf.sprintf "SPMD executes fewer barriers (%d) than generic (%d)"
       spmd.Gpusim.Interp.barriers generic.Gpusim.Interp.barriers)
    true
    (spmd.Gpusim.Interp.barriers < generic.Gpusim.Interp.barriers);
  (* the state machine is also where generic-mode divergence comes from *)
  Alcotest.(check bool) "generic mode diverges at the state machine" true
    (generic.Gpusim.Interp.divergent_branches > spmd.Gpusim.Interp.divergent_branches)

let test_store_class_counters () =
  (* the stores of spmd_src all target module globals *)
  let stats, _ = kernel_stats_of spmd_src in
  Alcotest.(check bool) "global stores counted" true
    (stats.Gpusim.Interp.stores_global >= 8);
  Alcotest.(check int) "no shared-memory stores without globalization" 0
    stats.Gpusim.Interp.stores_shared

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parser accepts" `Quick test_json_parser_accepts;
    Alcotest.test_case "json parser rejects" `Quick test_json_parser_rejects;
    Alcotest.test_case "json int/float identity" `Quick test_json_number_identity;
    Alcotest.test_case "event ordering" `Quick test_event_ordering;
    Alcotest.test_case "delta arithmetic" `Quick test_delta_arithmetic;
    Alcotest.test_case "ir_stats operations" `Quick test_ir_stats_ops;
    Alcotest.test_case "event json round-trip" `Quick test_event_json_roundtrip;
    Alcotest.test_case "atomic counts" `Quick test_atomic_counts;
    Alcotest.test_case "divergence: uniform vs uneven" `Quick
      test_divergence_uniform_vs_uneven;
    Alcotest.test_case "spmd fewer barriers than generic" `Quick
      test_spmd_fewer_barriers_than_generic;
    Alcotest.test_case "store class counters" `Quick test_store_class_counters;
  ]

(* perf_report: the `make perf` driver (docs/PERF.md).

     perf_report [OUTDIR]            # default _perf
     PERF_JOBS=4 PERF_BATCH=tiny perf_report

   Runs the standard Figure-10 batch (every fig10 config x every proxy
   app) twice sequentially and twice in parallel on PERF_JOBS domains —
   each side keeping its best run, the same protocol bench/main.exe uses —
   then once more in parallel with the phase profiler attached, and writes:

     OUTDIR/perf.json      schema-stamped: sched section (speedup, pool
                           counters), per-phase totals, arena-recycling
                           stats — what the CI perf job gates with
                           `bench_gate --perf`
     OUTDIR/flame.folded   folded stacks, counts = microseconds; feed to
                           flamegraph.pl or paste into speedscope.app
     OUTDIR/alloc.folded   folded stacks, counts = minor-heap words

   Wall-clock numbers measure this host; the batch's byte-identity with
   the sequential reference is asserted on every run. *)

let machine = Gpusim.Machine.bench_machine

let scale =
  match Sys.getenv_opt "PERF_BATCH" with
  | None | Some "tiny" -> Proxyapps.App.Tiny
  | Some "bench" -> Proxyapps.App.Bench
  | Some other ->
    prerr_endline ("perf_report: PERF_BATCH must be tiny or bench, got " ^ other);
    exit 2

let domains =
  match Sys.getenv_opt "PERF_JOBS" with
  | None -> 4
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n >= 1 -> n
    | _ ->
      prerr_endline ("perf_report: PERF_JOBS must be a positive int, got " ^ v);
      exit 2)

let jobs =
  List.concat_map
    (fun (app : Proxyapps.App.t) ->
      List.map
        (fun config -> (app, config))
        (Harness.Config.fig10_configs app.Proxyapps.App.name))
    Proxyapps.Apps.all

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let min2 f =
  let r, a = timed f in
  let _, b = timed f in
  (r, Float.min a b)

let labels ms =
  List.map
    (fun (m : Harness.Runner.measurement) ->
      (m.Harness.Runner.app, m.Harness.Runner.config.Harness.Config.label))
    ms

let write_file path contents =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents)

let () =
  let outdir =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> "_perf"
    | [ d ] -> d
    | _ ->
      prerr_endline "usage: perf_report [OUTDIR]";
      exit 2
  in
  if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
  Printf.printf "perf_report: %d jobs, %d domains, %s scale -> %s/\n%!"
    (List.length jobs) domains
    (match scale with Proxyapps.App.Tiny -> "tiny" | Proxyapps.App.Bench -> "bench")
    outdir;
  (* timed comparison, uninstrumented: the numbers the gate reads *)
  let seq, seq_s = min2 (fun () -> Harness.Runner.run_batch ~machine ~scale jobs) in
  let cold_par () =
    timed (fun () ->
        Sched.Pool.with_pool ~domains (fun pool ->
            let cache : Harness.Runner.outcome Sched.Cache.t = Sched.Cache.create () in
            let r = Harness.Runner.run_batch ~machine ~scale ~pool ~cache jobs in
            (r, Sched.Pool.stats pool, Sched.Pool.active_limit pool)))
  in
  let (par, pool_stats, active), par_a = cold_par () in
  let _, par_b = cold_par () in
  let par_s = Float.min par_a par_b in
  assert (labels seq = labels par);
  let speedup = if par_s > 0.0 then seq_s /. par_s else 1.0 in
  (* instrumented run: phase attribution for the flamegraph and the
     allocation profile (its wall time is not the gated number) *)
  let perf = Observe.Perf.create () in
  let prof =
    Sched.Pool.with_pool ~domains (fun pool ->
        let cache : Harness.Runner.outcome Sched.Cache.t = Sched.Cache.create () in
        Harness.Runner.run_batch ~machine ~scale ~pool ~cache ~perf jobs)
  in
  assert (labels seq = labels prof);
  let reused, fresh, zeroed = Gpusim.Scratch.aggregate () in
  let sched =
    Observe.Json.with_schema
      (Observe.Json.Obj
         [
           ("jobs", Observe.Json.Int (List.length jobs));
           ("domains", Observe.Json.Int domains);
           ("sequential_s", Observe.Json.Float seq_s);
           ("parallel_s", Observe.Json.Float par_s);
           ("speedup", Observe.Json.Float speedup);
           ( "pool",
             Observe.Json.Obj
               [
                 ("active", Observe.Json.Int active);
                 ("submitted", Observe.Json.Int pool_stats.Sched.Pool.submitted);
                 ("executed", Observe.Json.Int pool_stats.Sched.Pool.executed);
                 ("stolen", Observe.Json.Int pool_stats.Sched.Pool.stolen);
                 ("max_pending", Observe.Json.Int pool_stats.Sched.Pool.max_pending);
                 ("waits", Observe.Json.Int pool_stats.Sched.Pool.waits);
                 ("boosts", Observe.Json.Int pool_stats.Sched.Pool.boosts);
               ] );
         ])
  in
  let json =
    Observe.Json.with_schema
      (Observe.Json.Obj
         [
           ( "batch",
             Observe.Json.String
               (match scale with
               | Proxyapps.App.Tiny -> "fig10/tiny"
               | Proxyapps.App.Bench -> "fig10/bench") );
           ("sched", sched);
           ("profile", Observe.Perf.to_json perf);
           ( "scratch",
             Observe.Json.Obj
               [
                 ("reused_bytes", Observe.Json.Int reused);
                 ("fresh_bytes", Observe.Json.Int fresh);
                 ("zeroed_bytes", Observe.Json.Int zeroed);
               ] );
         ])
  in
  write_file
    (Filename.concat outdir "perf.json")
    (Observe.Json.to_string json ^ "\n");
  write_file
    (Filename.concat outdir "flame.folded")
    (Observe.Perf.folded ~value:`Time_us perf);
  write_file
    (Filename.concat outdir "alloc.folded")
    (Observe.Perf.folded ~value:`Alloc_words perf);
  Printf.printf "  sequential %.3fs  parallel %.3fs  speedup %.2fx (best of 2)\n"
    seq_s par_s speedup;
  Printf.printf
    "  pool: active=%d submitted=%d executed=%d stolen=%d waits=%d boosts=%d\n"
    active pool_stats.Sched.Pool.submitted pool_stats.Sched.Pool.executed
    pool_stats.Sched.Pool.stolen pool_stats.Sched.Pool.waits
    pool_stats.Sched.Pool.boosts;
  Printf.printf "  scratch: reused %dMB fresh %dMB zeroed %dKB\n"
    (reused / 1_000_000) (fresh / 1_000_000) (zeroed / 1_000);
  Printf.printf "  wrote %s/perf.json, flame.folded, alloc.folded\n%!" outdir

(* Quickstart: compile the paper's Figure 1 program, run the OpenMP-aware
   optimizer, and simulate it on the GPU model — the 30-second tour of the
   public API.

     dune exec examples/quickstart.exe *)

let figure1 =
  {|
double A[32];

static double compute(int x) { return (double)x * 2.0 + 1.0; }

int main() {
  int NBlocks = 32;
  int NThreads = 8;
  // The paper's Figure 1: a CPU-centric OpenMP offload region.  team_val is
  // shared between the team's threads, so the front-end must globalize it.
  #pragma omp target teams distribute num_teams(4) thread_limit(8)
  for (int block_id = 0; block_id < NBlocks; block_id++) {
    double team_val = compute(block_id);
    #pragma omp parallel for
    for (int thread_id = 0; thread_id < NThreads; thread_id++) {
      double thread_val = compute(thread_id);
      #pragma omp atomic
      team_val += thread_val;
    }
    A[block_id] = team_val;
  }
  double checksum = 0.0;
  for (int i = 0; i < NBlocks; i++) { checksum += A[i]; }
  trace_f64(checksum);
  return 0;
}
|}

let run_and_report label m =
  let sim = Gpusim.Interp.create Gpusim.Machine.test_machine m in
  Gpusim.Interp.run_host sim;
  let cycles = Gpusim.Interp.total_kernel_cycles sim in
  let regs = Gpusim.Interp.max_registers sim in
  Fmt.pr "%-12s %8d kernel cycles, %3d registers, checksum %a@." label cycles regs
    (Fmt.list Gpusim.Rvalue.pp)
    (Gpusim.Interp.trace_values sim);
  cycles

let () =
  Fmt.pr "== Quickstart: compile, optimize, simulate ==@.@.";
  (* 1. compile with the paper's simplified globalization (LLVM 13 style) *)
  let unoptimized = Frontend.Codegen.compile ~file:"figure1.c" figure1 in
  (match Ir.Verify.check unoptimized with
  | Ok () -> ()
  | Error e -> failwith e);
  let base = run_and_report "unoptimized" unoptimized in
  (* 2. the same program through the OpenMPOpt pipeline *)
  let optimized = Frontend.Codegen.compile ~file:"figure1.c" figure1 in
  let report = Openmpopt.Pass_manager.run optimized in
  Fmt.pr "@.optimizer: %a@.@." Openmpopt.Pass_manager.pp_report report;
  let opt = run_and_report "optimized" optimized in
  Fmt.pr "@.speedup from OpenMP-aware optimization: %.2fx@."
    (float_of_int base /. float_of_int opt)

(* bench_gate: the CI benchmark-regression gate.

     bench_gate BASELINE.json NEW.json [--threshold PCT] [--min-speedup X]
     bench_gate --perf PERF.json --min-speedup X

   Compare mode: diffs two BENCH_observe.json files (the committed
   baseline vs a fresh run) and fails — exit 1 — when any per-app
   cost-model counter regresses by more than the threshold (default 20%).
   Only deterministic simulator counters are gated: per-app barriers and
   the store counts summed over kernel launches (global + shared +
   local).  Both files must carry a schema-stamped "sched" section whose
   pool executed every submitted job, and "corpus", "fleet", "tiers" and
   "storage" sections that each recorded byte_identical=true (daemon,
   sharded-router, post-upgrade tiered, and governed-cache answers
   matched the expected in-process compilation bit for bit);
   with [--min-speedup], the
   *committed baseline's* recorded sched.speedup must clear the bar — a
   regression there means someone committed a benchmark file from a run
   where parallel compilation lost to sequential.

   Perf mode (--perf): validates a single perf.json from `make perf`
   (tools/perf_report.ml) — schema, sched section, no lost or phantom
   pool jobs — and gates its freshly measured sched.speedup against
   [--min-speedup].  This is the only place a fresh wall-clock ratio is
   gated, and it is the CI perf job's contract: parallel compilation of
   the standard batch must beat sequential (docs/PERF.md). *)

let threshold = ref 20.0
let min_speedup : float option ref = ref None
let perf_path : string option ref = ref None

let die fmt = Fmt.kstr (fun s -> prerr_endline ("bench_gate: " ^ s); exit 2) fmt

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> die "%s" msg
  | s -> (
    match Observe.Json.of_string s with
    | Ok j -> j
    | Error msg -> die "%s: %s" path msg)

(* Unversioned payloads are rejected outright: a schema-less file predates
   the stamp (regenerate it) and a future schema may change counter
   semantics under the same member names. *)
let require_schema path j =
  match Option.bind (Observe.Json.member "schema" j) Observe.Json.to_int with
  | Some v when v = Observe.Json.schema_version -> ()
  | Some v ->
    die "%s: unsupported schema %d (this gate reads schema %d)" path v
      Observe.Json.schema_version
  | None ->
    die
      "%s: unversioned payload (no \"schema\" member); regenerate it with a \
       current bench/main.exe"
      path

(* The corpus throughput section (bench/main.exe, `make conformance`)
   must be present and itself schema-stamped; its compiles/sec numbers
   are wall-clock and never gated, but byte-identity of daemon answers
   with in-process compilation is machine-independent and must hold. *)
let require_corpus path j =
  match Observe.Json.member "corpus" j with
  | None ->
    die
      "%s: no \"corpus\" member (daemon throughput section); regenerate it \
       with a current bench/main.exe or `make conformance`"
      path
  | Some c -> (
    require_schema (path ^ ": corpus") c;
    let to_bool = function Observe.Json.Bool b -> Some b | _ -> None in
    match Option.bind (Observe.Json.member "byte_identical" c) to_bool with
    | Some true -> ()
    | Some false ->
      die "%s: corpus section recorded byte_identical=false (daemon answers \
           diverged from in-process compilation)"
        path
    | None -> die "%s: corpus section without \"byte_identical\"" path)

(* The fleet section (bench/main.exe) must be present and itself
   schema-stamped: requests/sec per shard count and the failover p99 are
   wall-clock and never gated, but a fleet answer diverging from
   in-process compilation — anywhere in the shard-scaling runs or the
   shard-kill failover run — is a routing bug, not a perf number. *)
let require_fleet path j =
  match Observe.Json.member "fleet" j with
  | None ->
    die
      "%s: no \"fleet\" member (sharded-router section); regenerate it with \
       a current bench/main.exe"
      path
  | Some f -> (
    require_schema (path ^ ": fleet") f;
    let to_bool = function Observe.Json.Bool b -> Some b | _ -> None in
    match Option.bind (Observe.Json.member "byte_identical" f) to_bool with
    | Some true -> ()
    | Some false ->
      die "%s: fleet section recorded byte_identical=false (routed answers \
           diverged from in-process compilation)"
        path
    | None -> die "%s: fleet section without \"byte_identical\"" path)

(* The tiers section (bench/main.exe, `make conformance TIERED=1`) must
   be present and itself schema-stamped: the cold p50 per tier and the
   upgrade throughput are wall-clock and never gated, but a tiered
   daemon whose post-drain answers diverge from one-shot full-pipeline
   compilation has broken the tier-upgrade atomicity contract — that is
   a correctness bug, not a perf number. *)
let require_tiers path j =
  match Observe.Json.member "tiers" j with
  | None ->
    die
      "%s: no \"tiers\" member (tiered-compilation section); regenerate it \
       with a current bench/main.exe"
      path
  | Some t -> (
    require_schema (path ^ ": tiers") t;
    let to_bool = function Observe.Json.Bool b -> Some b | _ -> None in
    match Option.bind (Observe.Json.member "byte_identical" t) to_bool with
    | Some true -> ()
    | Some false ->
      die "%s: tiers section recorded byte_identical=false (post-upgrade \
           answers diverged from one-shot full-pipeline compilation)"
        path
    | None -> die "%s: tiers section without \"byte_identical\"" path)

(* The storage section (bench/main.exe) must be present and itself
   schema-stamped: eviction counts, cache footprints and the pressured
   wall time are machine-local and never gated, but a governed cache
   that served different bytes under eviction pressure — or a disk-full
   store that leaked past the breaker — is a correctness bug, not a
   perf number. *)
let require_storage path j =
  match Observe.Json.member "storage" j with
  | None ->
    die
      "%s: no \"storage\" member (storage-governance section); regenerate \
       it with a current bench/main.exe"
      path
  | Some s -> (
    require_schema (path ^ ": storage") s;
    let to_bool = function Observe.Json.Bool b -> Some b | _ -> None in
    match Option.bind (Observe.Json.member "byte_identical" s) to_bool with
    | Some true -> ()
    | Some false ->
      die "%s: storage section recorded byte_identical=false (governed \
           caches diverged from ungoverned compilation, or the disk-full \
           breaker failed to hold)"
        path
    | None -> die "%s: storage section without \"byte_identical\"" path)

(* The scheduler section (bench/main.exe, `make perf`) must be present,
   itself schema-stamped, and internally consistent: a pool that executed
   fewer jobs than were submitted lost futures, one that executed more
   invented them — either way the speedup number is meaningless.  Returns
   the recorded speedup for the optional --min-speedup gate. *)
let require_sched path j =
  match Observe.Json.member "sched" j with
  | None ->
    die
      "%s: no \"sched\" member (scheduler section); regenerate it with a \
       current bench/main.exe or `make perf`"
      path
  | Some s -> (
    require_schema (path ^ ": sched") s;
    let pool =
      match Observe.Json.member "pool" s with
      | Some p -> p
      | None -> die "%s: sched section without \"pool\"" path
    in
    let pool_int k =
      match Option.bind (Observe.Json.member k pool) Observe.Json.to_int with
      | Some n -> n
      | None -> die "%s: sched.pool without counter %S" path k
    in
    let submitted = pool_int "submitted" and executed = pool_int "executed" in
    if submitted <> executed then
      die
        "%s: sched.pool submitted=%d but executed=%d (lost or phantom jobs; \
         the speedup number is meaningless)"
        path submitted executed;
    let to_float = function
      | Observe.Json.Float f -> Some f
      | Observe.Json.Int n -> Some (float_of_int n)
      | _ -> None
    in
    match Option.bind (Observe.Json.member "speedup" s) to_float with
    | Some sp -> sp
    | None -> die "%s: sched section without \"speedup\"" path)

let gate_speedup path speedup =
  match !min_speedup with
  | None -> ()
  | Some bar ->
    if speedup > bar then
      Fmt.pr "bench_gate: %s sched.speedup %.3f > %.3f OK@." path speedup bar
    else begin
      Fmt.pr
        "bench_gate: %s sched.speedup %.3f <= %.3f — parallel compilation \
         does not beat sequential@."
        path speedup bar;
      exit 1
    end

let measurements j =
  match Option.bind (Observe.Json.member "measurements" j) Observe.Json.to_list with
  | Some ms -> ms
  | None -> die "no \"measurements\" member"

let str_member k j =
  match Option.bind (Observe.Json.member k j) Observe.Json.to_str with
  | Some s -> s
  | None -> die "measurement without %S" k

let int_member k j =
  match Option.bind (Observe.Json.member k j) Observe.Json.to_int with
  | Some n -> n
  | None -> die "measurement without counter %S" k

(* the gated counters for one measurement: name -> value *)
let counters m =
  let kernels =
    Option.value ~default:[]
      (Option.bind (Observe.Json.member "kernels" m) Observe.Json.to_list)
  in
  let sum key = List.fold_left (fun acc k -> acc + int_member key k) 0 kernels in
  [
    ("barriers", int_member "barriers" m);
    ("stores_global", sum "stores_global");
    ("stores_shared", sum "stores_shared");
    ("stores_local", sum "stores_local");
  ]

let () =
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t > 0.0 ->
        threshold := t;
        parse rest
      | _ -> die "--threshold expects a positive number")
    | "--min-speedup" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t > 0.0 ->
        min_speedup := Some t;
        parse rest
      | _ -> die "--min-speedup expects a positive number")
    | "--perf" :: p :: rest ->
      perf_path := Some p;
      parse rest
    | a :: rest ->
      positional := a :: !positional;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !perf_path with
  | Some path ->
    if !positional <> [] then
      die "--perf takes no positional arguments";
    let j = load path in
    require_schema path j;
    let speedup = require_sched path j in
    (if !min_speedup = None then min_speedup := Some 1.0);
    gate_speedup path speedup;
    Fmt.pr "bench_gate: %s OK@." path;
    exit 0
  | None -> ());
  let baseline_path, new_path =
    match List.rev !positional with
    | [ b; n ] -> (b, n)
    | _ ->
      prerr_endline
        "usage: bench_gate BASELINE.json NEW.json [--threshold PCT] \
         [--min-speedup X]\n\
        \       bench_gate --perf PERF.json [--min-speedup X]";
      exit 2
  in
  let base_json = load baseline_path in
  let next_json = load new_path in
  require_schema baseline_path base_json;
  require_schema new_path next_json;
  require_corpus baseline_path base_json;
  require_corpus new_path next_json;
  require_fleet baseline_path base_json;
  require_fleet new_path next_json;
  require_tiers baseline_path base_json;
  require_tiers new_path next_json;
  require_storage baseline_path base_json;
  require_storage new_path next_json;
  let base_speedup = require_sched baseline_path base_json in
  ignore (require_sched new_path next_json);
  gate_speedup baseline_path base_speedup;
  let base = measurements base_json in
  let next = measurements next_json in
  let find_app app ms =
    List.find_opt (fun m -> String.equal (str_member "app" m) app) ms
  in
  let failures = ref 0 in
  Fmt.pr "bench_gate: %s vs %s (threshold %+.0f%%)@." baseline_path new_path
    !threshold;
  Fmt.pr "%-10s %-14s %12s %12s %9s@." "app" "counter" "baseline" "new" "delta";
  List.iter
    (fun bm ->
      let app = str_member "app" bm in
      match find_app app next with
      | None ->
        Fmt.pr "%-10s MISSING from %s@." app new_path;
        incr failures
      | Some nm ->
        List.iter2
          (fun (name, bv) (name', nv) ->
            assert (String.equal name name');
            let delta =
              if bv = 0 then if nv = 0 then 0.0 else infinity
              else 100.0 *. float_of_int (nv - bv) /. float_of_int bv
            in
            let verdict = if delta > !threshold then "FAIL" else "" in
            if delta > !threshold then incr failures;
            if delta <> 0.0 || verdict <> "" then
              Fmt.pr "%-10s %-14s %12d %12d %+8.1f%% %s@." app name bv nv delta
                verdict)
          (counters bm) (counters nm))
    base;
  if !failures > 0 then begin
    Fmt.pr "bench_gate: %d counter regression(s) above %+.0f%%@." !failures
      !threshold;
    exit 1
  end
  else Fmt.pr "bench_gate: OK (no counter regression above %+.0f%%)@." !threshold

(* SPMDzation (Section IV-B.3): convert a generic-mode kernel into SPMD mode.

   All code executed by the main thread alone becomes redundantly executed by
   every thread; side effects in that code are wrapped in "if (tid == 0)"
   guards followed by a team barrier, with values flowing out of a guard
   broadcast through shared memory.  Prior to guard generation, side effects
   are grouped at the basic-block level (Figure 7): SPMD-amenable
   instructions that do not depend on the pending group are hoisted above it
   so that adjacent side effects share one guarded region and one barrier.

   The worker state machine becomes dead and is removed; parallel regions
   keep their __kmpc_parallel_51 call sites, which the (SPMD-mode) runtime
   executes directly on every thread. *)

open Ir
module SS = Support.Util.String_set
(* stable identifier used by the Observe trace layer *)
let pass_name = "spmdize"

type outcome =
  | Converted of { guards : int }
  | Not_applicable  (* already SPMD, or no prologue recognized *)
  | Blocked of string * Support.Loc.t

let gptr = Types.Ptr Types.Generic

(* depends_on i group: does [i] use a result produced by the group? *)
let depends_on (i : Instr.t) group =
  List.exists
    (fun v ->
      match v with
      | Value.Reg r -> List.exists (fun (j : Instr.t) -> j.Instr.id = r) group
      | _ -> false)
    (Instr.operands i)

(* Partition the instructions of one block into segments of amenable code and
   guardable groups, applying the grouping/hoisting optimization. *)
let segment_block ~grouping eff m f (b : Block.t) =
  (* returns (segments, blocked) where segments are
     [`Plain of instrs | `Guard of instrs] in order.  While a guardable
     group is pending, amenable instructions that are pure, read no memory
     and do not depend on the group are hoisted above it (accumulated in
     [plain], which is emitted before the group); anything else closes the
     group. *)
  let segments = ref [] in
  let plain = ref [] in
  let pending = ref [] in
  let blocked = ref None in
  let flush () =
    if !plain <> [] then begin
      segments := `Plain (List.rev !plain) :: !segments;
      plain := []
    end;
    if !pending <> [] then begin
      segments := `Guard (List.rev !pending) :: !segments;
      pending := []
    end
  in
  let hoistable i =
    grouping && Instr.is_pure i
    && (not (Instr.reads_memory i))
    && not (depends_on i !pending)
  in
  List.iter
    (fun (i : Instr.t) ->
      if !blocked = None then
        match Analysis.Effects.classify_instr eff m f i with
        | Analysis.Effects.Blocking reason -> blocked := Some (reason, i.Instr.loc)
        | Analysis.Effects.Guardable -> pending := i :: !pending
        | Analysis.Effects.Amenable ->
          if !pending = [] || hoistable i then plain := i :: !plain
          else begin
            flush ();
            plain := [ i ]
          end)
    b.Block.instrs;
  (match !blocked with None -> flush () | Some _ -> ());
  (List.rev !segments, !blocked)

(* Emit the guarded structure for one block's segments, rewriting the
   function's block list.  Returns the number of guarded regions emitted. *)
let emit_guards (m : Irmod.t) (f : Func.t) (b : Block.t) segments =
  let guards = ref 0 in
  (* snapshot all uses in the function BEFORE rebuilding the block, so that
     uses in later segments of this very block are seen *)
  let all_uses =
    let acc = ref [] in
    List.iter
      (fun blk ->
        List.iter
          (fun (j : Instr.t) -> acc := (j.Instr.id, Instr.operands j) :: !acc)
          blk.Block.instrs;
        acc := (-1, Block.term_operands blk.Block.term) :: !acc)
      f.Func.blocks;
    !acc
  in
  (* We rebuild the block chain: the original block keeps its label and the
     first segment; each guard introduces guard/rejoin blocks. *)
  let orig_term = b.Block.term in
  let cur = ref b in
  (!cur).Block.instrs <- [];
  let new_blocks = ref [] in
  let fresh_label base =
    let existing =
      List.map (fun blk -> blk.Block.label) f.Func.blocks
      @ List.map (fun blk -> blk.Block.label) !new_blocks
    in
    let rec loop i =
      let l = Printf.sprintf "%s.%d" base i in
      if List.mem l existing then loop (i + 1) else l
    in
    loop 0
  in
  let append_block label =
    let nb = Block.make label in
    new_blocks := nb :: !new_blocks;
    nb
  in
  let uses_outside_segment (i : Instr.t) seg =
    Instr.has_result i
    && List.exists
         (fun (user_id, operands) ->
           (not (List.exists (fun (k : Instr.t) -> k.Instr.id = user_id) seg))
           && List.exists (fun v -> Value.equal v (Value.Reg i.Instr.id)) operands)
         all_uses
  in
  List.iter
    (fun seg ->
      match seg with
      | `Plain instrs ->
        (!cur).Block.instrs <- (!cur).Block.instrs @ instrs
      | `Guard instrs ->
        incr guards;
        let guard_bb = append_block (fresh_label (b.Block.label ^ ".guard")) in
        let rejoin_bb = append_block (fresh_label (b.Block.label ^ ".rejoin")) in
        (* broadcast slots for values escaping the guard *)
        let escaping = List.filter (fun i -> uses_outside_segment i instrs) instrs in
        let slots =
          List.map
            (fun (i : Instr.t) ->
              let gname =
                Irmod.fresh_name m (Printf.sprintf "%s_bcast" f.Func.name)
              in
              Irmod.add_global m
                {
                  Irmod.gname;
                  gty = Types.Arr (8, Types.I8);
                  gspace = Types.Shared;
                  ginit = None;
                  glinkage = Func.Internal;
                };
              (i, gname))
            escaping
        in
        (* rename escaping results inside the guard to fresh ids *)
        let renames =
          List.map
            (fun ((i : Instr.t), gname) ->
              let fresh = Func.fresh_reg f in
              (i.Instr.id, fresh, gname, Instr.result_ty i))
            slots
        in
        let rename_value v =
          match v with
          | Value.Reg r -> (
            match List.find_opt (fun (old, _, _, _) -> old = r) renames with
            | Some (_, fresh, _, _) -> Value.Reg fresh
            | None -> v)
          | _ -> v
        in
        (* guard entry: tid check in the current block *)
        let tid_id = Func.fresh_reg f in
        let cmp_id = Func.fresh_reg f in
        (!cur).Block.instrs <-
          (!cur).Block.instrs
          @ [
              Instr.make ~id:tid_id (Instr.Call (Types.I32, Instr.Direct "__gpu_thread_id", []));
              Instr.make ~id:cmp_id
                (Instr.Icmp (Instr.Eq, Types.I32, Value.Reg tid_id, Value.i32 0));
            ];
        (!cur).Block.term <-
          Block.Cbr (Value.Reg cmp_id, guard_bb.Block.label, rejoin_bb.Block.label);
        (* guard body: renamed side effects + broadcast stores *)
        let guarded_instrs =
          List.map
            (fun (i : Instr.t) ->
              match List.find_opt (fun (old, _, _, _) -> old = i.Instr.id) renames with
              | Some (_, fresh, _, _) ->
                let copy = Instr.make ~loc:i.Instr.loc ~id:fresh i.Instr.kind in
                Instr.map_operands rename_value copy;
                copy
              | None ->
                Instr.map_operands rename_value i;
                i)
            instrs
        in
        let bcast_stores =
          List.map
            (fun (_, fresh, gname, ty) ->
              Instr.make (Instr.Store (ty, Value.Reg fresh, Value.Global gname))
                ~id:(Func.fresh_reg f))
            renames
        in
        guard_bb.Block.instrs <- guarded_instrs @ bcast_stores;
        guard_bb.Block.term <- Block.Br rejoin_bb.Block.label;
        (* rejoin: barrier, then broadcast loads into the original ids *)
        let barrier =
          Instr.make ~id:(Func.fresh_reg f)
            (Instr.Call (Types.Void, Instr.Direct "__kmpc_barrier", []))
        in
        let bcast_loads =
          List.map
            (fun (old, _, gname, ty) ->
              Instr.make ~id:old (Instr.Load (ty, Value.Global gname)))
            renames
        in
        rejoin_bb.Block.instrs <- (barrier :: bcast_loads);
        rejoin_bb.Block.term <- orig_term;  (* temporarily; fixed below *)
        cur := rejoin_bb)
    segments;
  (!cur).Block.term <- orig_term;
  (* register newly created blocks *)
  List.iter (fun nb -> Func.add_block f nb) (List.rev !new_blocks);
  !guards

(* Remove the worker state machine of a generic kernel: redirect the
   prologue branch straight to the main path and prune. *)
let remove_state_machine (f : Func.t) ~main_label =
  let entry = Func.entry f in
  entry.Block.term <- Block.Br main_label;
  ignore (Cfg.prune_unreachable f)

let rewrite_init_constants (f : Func.t) =
  Func.iter_instrs f ~g:(fun _ i ->
      match i.Instr.kind with
      | Instr.Call (ty, Instr.Direct ("__kmpc_target_init" as n), [ _ ])
      | Instr.Call (ty, Instr.Direct ("__kmpc_target_deinit" as n), [ _ ]) ->
        i.Instr.kind <- Instr.Call (ty, Instr.Direct n, [ Value.i32 1 ])
      | _ -> ())

(* Attempt to SPMDize one kernel. *)
let try_kernel (m : Irmod.t) (domains : Analysis.Exec_domain.t) (sink : Remark.sink)
    ~grouping (kernel : Func.t) =
  match kernel.Func.kernel with
  | None | Some { Func.exec_mode = Func.Spmd; _ } -> Not_applicable
  | Some ({ Func.exec_mode = Func.Generic; _ } as info) -> (
    match Analysis.Exec_domain.generic_prologue kernel with
    | None -> Not_applicable
    | Some (main_label, _worker_label) -> (
      let eff = Analysis.Effects.create () in
      (* analyze all main-only blocks first; collect per-block segments *)
      let main_blocks =
        List.filter
          (fun b ->
            Analysis.Exec_domain.instr_domain domains kernel b
            = Analysis.Exec_domain.Main_only)
          kernel.Func.blocks
      in
      let analyzed =
        List.map (fun b -> (b, segment_block ~grouping eff m kernel b)) main_blocks
      in
      let first_blocked =
        List.find_map (fun (_, (_, blocked)) -> blocked) analyzed
      in
      match first_blocked with
      | Some (reason, loc) ->
        Remark.emit sink
          (Remark.make ~kind:Remark.Missed ~loc ~func:kernel.Func.name 121
             ~detail:reason);
        Blocked (reason, loc)
      | None ->
        let guards = ref 0 in
        List.iter
          (fun (b, (segments, _)) ->
            let has_guard =
              List.exists (function `Guard _ -> true | `Plain _ -> false) segments
            in
            if has_guard then guards := !guards + emit_guards m kernel b segments)
          analyzed;
        remove_state_machine kernel ~main_label;
        rewrite_init_constants kernel;
        info.Func.exec_mode <- Func.Spmd;
        Remark.emit sink
          (Remark.make ~loc:kernel.Func.loc ~func:kernel.Func.name 120);
        Converted { guards = !guards }))

let run (m : Irmod.t) (domains : Analysis.Exec_domain.t) (sink : Remark.sink) ~grouping =
  let converted = ref 0 in
  let guards = ref 0 in
  List.iter
    (fun k ->
      match try_kernel m domains sink ~grouping k with
      | Converted g ->
        incr converted;
        guards := !guards + g.guards
      | Not_applicable | Blocked _ -> ())
    (Irmod.kernels m);
  (!converted, !guards)

(* Build configurations of the evaluation (Section V / Figure 11 legends). *)

type build =
  | Llvm12  (* legacy globalization, no OpenMP-aware middle end *)
  | Dev_noopt  (* simplified globalization, explicit OpenMP opts disabled *)
  | Dev of Openmpopt.Pass_manager.options  (* simplified + a subset of passes *)
  | Cuda  (* kernel-style build of the CUDA source *)

type t = { label : string; build : build; inject : Fault.Injector.spec list }

let dev options = Dev options

let with_inject inject t = { t with inject }

(* Content identity of a build for the scheduler's result cache.  The label
   is deliberately excluded: two configs with different labels but the same
   build produce the same measurement and should share a cache entry. *)
let build_fingerprint = function
  | Llvm12 -> "llvm12"
  | Dev_noopt -> "dev-noopt"
  | Dev options ->
    "dev{" ^ Openmpopt.Pass_manager.options_fingerprint options ^ "}"
  | Cuda -> "cuda"

let opts = Openmpopt.Pass_manager.default_options

(* Named option subsets, mirroring the bar labels of Figure 11. *)
let only_h2s =
  {
    opts with
    Openmpopt.Pass_manager.disable_spmdization = true;
    disable_state_machine_rewrite = true;
    disable_folding = true;
    disable_heap_to_shared = true;
  }

let h2s2 =
  {
    opts with
    Openmpopt.Pass_manager.disable_spmdization = true;
    disable_state_machine_rewrite = true;
    disable_folding = true;
  }

let h2s2_rtc =
  {
    opts with
    Openmpopt.Pass_manager.disable_spmdization = true;
    disable_state_machine_rewrite = true;
  }

let h2s2_rtc_csm = { opts with Openmpopt.Pass_manager.disable_spmdization = true }

let h2s2_rtc_spmd = { opts with Openmpopt.Pass_manager.disable_state_machine_rewrite = true }

let dev_full = opts

let mk label build = { label; build; inject = [] }

let llvm12 = mk "LLVM 12" Llvm12
let no_opt = mk "No OpenMP Optimization" Dev_noopt
let heap_2_stack = mk "heap-2-stack" (dev only_h2s)
let h2s2_cfg = mk "heap-2-stack&shared (=h2s2)" (dev h2s2)
let h2s2_rtc_cfg = mk "h2s2 + RTCspec" (dev h2s2_rtc)
let h2s2_rtc_csm_cfg = mk "h2s2 + RTCspec + CSM" (dev h2s2_rtc_csm)
let h2s2_rtc_spmd_cfg = mk "h2s2 + RTCspec + SPMDzation" (dev h2s2_rtc_spmd)
let dev0 = mk "LLVM Dev 0" (dev dev_full)
let cuda = mk "CUDA (Clang Dev)" Cuda

(* The configuration set used for each application's Figure 11 plot ("we
   restricted each plot to the configurations that impact performance"). *)
let fig11_configs (app_name : string) =
  match app_name with
  | "xsbench" | "rsbench" ->
    [ llvm12; no_opt; h2s2_cfg; h2s2_rtc_cfg; dev0; cuda ]
  | "su3bench" ->
    [ llvm12; no_opt; h2s2_cfg; h2s2_rtc_csm_cfg; h2s2_rtc_spmd_cfg; dev0; cuda ]
  | "miniqmc" ->
    [ llvm12; no_opt; heap_2_stack; h2s2_cfg; h2s2_rtc_csm_cfg; h2s2_rtc_spmd_cfg; dev0 ]
  | _ -> [ llvm12; no_opt; dev0; cuda ]

let fig10_configs (app_name : string) =
  match app_name with
  | "miniqmc" -> [ llvm12; dev0 ]
  | _ -> [ cuda; llvm12; dev0 ]

(* Parser for the textual MiniIR form emitted by [Printer].  This is used by
   tests (round-trip property), by the CLI driver to read IR files, and by
   examples that embed IR snippets. *)

exception Parse_error of string

let error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string       (* keywords, labels, type names *)
  | Reg of int             (* %3 *)
  | ArgRef of int          (* %arg2 *)
  | At of string           (* @name *)
  | Int of int64
  | Float of float
  | Str of string          (* "..." *)
  | Lparen | Rparen | Lbrack | Rbrack | Lbrace | Rbrace
  | Comma | Colon | Equal | Arrow | Eof

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "ident %s" s
  | Reg i -> Fmt.pf ppf "%%%d" i
  | ArgRef i -> Fmt.pf ppf "%%arg%d" i
  | At s -> Fmt.pf ppf "@%s" s
  | Int i -> Fmt.pf ppf "%Ld" i
  | Float f -> Fmt.pf ppf "%h" f
  | Str s -> Fmt.pf ppf "%S" s
  | Lparen -> Fmt.string ppf "(" | Rparen -> Fmt.string ppf ")"
  | Lbrack -> Fmt.string ppf "[" | Rbrack -> Fmt.string ppf "]"
  | Lbrace -> Fmt.string ppf "{" | Rbrace -> Fmt.string ppf "}"
  | Comma -> Fmt.string ppf "," | Colon -> Fmt.string ppf ":"
  | Equal -> Fmt.string ppf "=" | Arrow -> Fmt.string ppf "->"
  | Eof -> Fmt.string ppf "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let emit t = toks := t :: !toks in
  let read_while pred =
    let start = !pos in
    while !pos < n && pred src.[!pos] do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  while !pos < n do
    match src.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> advance ()
    | ';' ->
      (* comment to end of line *)
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    | '(' -> advance (); emit Lparen
    | ')' -> advance (); emit Rparen
    | '[' -> advance (); emit Lbrack
    | ']' -> advance (); emit Rbrack
    | '{' -> advance (); emit Lbrace
    | '}' -> advance (); emit Rbrace
    | ',' -> advance (); emit Comma
    | ':' -> advance (); emit Colon
    | '=' -> advance (); emit Equal
    | '"' ->
      advance ();
      let s = read_while (fun c -> c <> '"') in
      if peek () <> Some '"' then error "unterminated string";
      advance ();
      emit (Str s)
    | '%' ->
      advance ();
      let word = read_while is_ident_char in
      if String.length word > 3 && String.sub word 0 3 = "arg" then
        emit (ArgRef (int_of_string (String.sub word 3 (String.length word - 3))))
      else (
        match int_of_string_opt word with
        | Some i -> emit (Reg i)
        | None -> error "bad register name %%%s" word)
    | '@' ->
      advance ();
      emit (At (read_while is_ident_char))
    | '-' when !pos + 1 < n && src.[!pos + 1] = '>' ->
      advance (); advance ();
      emit Arrow
    | c when c = '-' || is_digit c ->
      let start = !pos in
      if c = '-' then advance ();
      let _ = read_while (fun c -> is_digit c || c = '.' || c = 'x' || c = 'p'
                                   || c = 'e' || c = '+' || c = '-'
                                   || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')) in
      let text = String.sub src start (!pos - start) in
      (match Int64.of_string_opt text with
      | Some i -> emit (Int i)
      | None -> (
        match float_of_string_opt text with
        | Some f -> emit (Float f)
        | None -> error "bad number %s" text))
    | c when is_ident_start c -> emit (Ident (read_while is_ident_char))
    | c -> error "unexpected character %c" c
  done;
  List.rev (Eof :: !toks)

(* ------------------------------------------------------------------ *)
(* Token stream                                                        *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : token list }

let peek st = match st.toks with t :: _ -> t | [] -> Eof
let next st =
  match st.toks with
  | t :: rest ->
    st.toks <- rest;
    t
  | [] -> Eof

let expect st t =
  let got = next st in
  if got <> t then error "expected %a, got %a" pp_token t pp_token got

let expect_ident st =
  match next st with Ident s -> s | t -> error "expected identifier, got %a" pp_token t

let expect_kw st kw =
  let s = expect_ident st in
  if s <> kw then error "expected keyword %s, got %s" kw s

let expect_int st =
  match next st with Int i -> i | t -> error "expected integer, got %a" pp_token t

let accept st t = if peek st = t then (ignore (next st); true) else false

(* ------------------------------------------------------------------ *)
(* Types and values                                                    *)
(* ------------------------------------------------------------------ *)

let rec parse_ty st =
  match next st with
  | Ident "void" -> Types.Void
  | Ident "i1" -> Types.I1
  | Ident "i8" -> Types.I8
  | Ident "i32" -> Types.I32
  | Ident "i64" -> Types.I64
  | Ident "f32" -> Types.F32
  | Ident "f64" -> Types.F64
  | Ident "ptr" ->
    expect st Lparen;
    let space = parse_space st in
    expect st Rparen;
    Types.Ptr space
  | Lbrack ->
    let n = Int64.to_int (expect_int st) in
    expect_kw st "x";
    let elt = parse_ty st in
    expect st Rbrack;
    Types.Arr (n, elt)
  | t -> error "expected type, got %a" pp_token t

and parse_space st =
  let name = expect_ident st in
  match Types.space_of_name name with
  | Some s -> s
  | None -> error "unknown address space %s" name

(* Values: %N | %argN | @name | <int-ty> <int> | <float-ty> <num>
   | null(<space>) | undef(<ty>).  [@name] is resolved to Func/Global after
   the whole module is parsed. *)
let parse_value st =
  match peek st with
  | Reg i -> ignore (next st); Value.Reg i
  | ArgRef i -> ignore (next st); Value.Arg i
  | At name -> ignore (next st); Value.Global name  (* resolved later *)
  | Ident "null" ->
    ignore (next st);
    expect st Lparen;
    let space = parse_space st in
    expect st Rparen;
    Value.null space
  | Ident "undef" ->
    ignore (next st);
    expect st Lparen;
    let ty = parse_ty st in
    expect st Rparen;
    Value.undef ty
  | Ident ("i1" | "i8" | "i32" | "i64" | "f32" | "f64") ->
    let ty = parse_ty st in
    (match (ty, next st) with
    | (Types.I1 | Types.I8 | Types.I32 | Types.I64), Int v -> Value.Const (Value.CInt (ty, v))
    | (Types.F32 | Types.F64), Int v -> Value.Const (Value.CFloat (ty, Int64.to_float v))
    | (Types.F32 | Types.F64), Float v -> Value.Const (Value.CFloat (ty, v))
    | _, t -> error "expected literal after type, got %a" pp_token t)
  | t -> error "expected value, got %a" pp_token t

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)
(* ------------------------------------------------------------------ *)

let parse_args st =
  expect st Lparen;
  if accept st Rparen then []
  else
    let rec loop acc =
      let v = parse_value st in
      if accept st Comma then loop (v :: acc)
      else (
        expect st Rparen;
        List.rev (v :: acc))
    in
    loop []

let parse_call st =
  let ty = parse_ty st in
  let callee =
    match peek st with
    | At name -> ignore (next st); Instr.Direct name
    | _ -> Instr.Indirect (parse_value st)
  in
  let args = parse_args st in
  Instr.Call (ty, callee, args)

(* Parse one instruction body given its mnemonic has been consumed. *)
let parse_instr_kind st mnemonic =
  let comma () = expect st Comma in
  match mnemonic with
  | "alloca" ->
    let ty = parse_ty st in
    comma ();
    let n = Int64.to_int (expect_int st) in
    Instr.Alloca (ty, n)
  | "load" ->
    let ty = parse_ty st in
    comma ();
    Instr.Load (ty, parse_value st)
  | "store" ->
    let ty = parse_ty st in
    let v = parse_value st in
    comma ();
    Instr.Store (ty, v, parse_value st)
  | "gep" ->
    let ty = parse_ty st in
    comma ();
    let base = parse_value st in
    comma ();
    Instr.Gep (ty, base, parse_value st)
  | "icmp" ->
    let cc =
      match Instr.icmp_of_name (expect_ident st) with
      | Some cc -> cc
      | None -> error "bad icmp condition"
    in
    let ty = parse_ty st in
    let a = parse_value st in
    comma ();
    Instr.Icmp (cc, ty, a, parse_value st)
  | "fcmp" ->
    let cc =
      match Instr.fcmp_of_name (expect_ident st) with
      | Some cc -> cc
      | None -> error "bad fcmp condition"
    in
    let ty = parse_ty st in
    let a = parse_value st in
    comma ();
    Instr.Fcmp (cc, ty, a, parse_value st)
  | "select" ->
    let ty = parse_ty st in
    let c = parse_value st in
    comma ();
    let a = parse_value st in
    comma ();
    Instr.Select (ty, c, a, parse_value st)
  | "call" -> parse_call st
  | "atomicrmw" ->
    let op =
      match Instr.atomic_of_name (expect_ident st) with
      | Some op -> op
      | None -> error "bad atomicrmw op"
    in
    let ty = parse_ty st in
    let p = parse_value st in
    comma ();
    Instr.Atomicrmw (op, ty, p, parse_value st)
  | m -> (
    match Instr.bin_of_name m with
    | Some op ->
      let ty = parse_ty st in
      let a = parse_value st in
      comma ();
      Instr.Bin (op, ty, a, parse_value st)
    | None -> (
      match Instr.cast_of_name m with
      | Some op ->
        let ty = parse_ty st in
        comma ();
        Instr.Cast (op, ty, parse_value st)
      | None -> error "unknown instruction mnemonic %s" m))

let parse_term st mnemonic =
  match mnemonic with
  | "ret" -> (
    match peek st with
    | Reg _ | ArgRef _ | At _
    | Ident ("null" | "undef" | "i1" | "i8" | "i32" | "i64" | "f32" | "f64") ->
      Block.Ret (Some (parse_value st))
    | _ -> Block.Ret None)
  | "br" -> Block.Br (expect_ident st)
  | "cbr" ->
    let v = parse_value st in
    expect st Comma;
    let l1 = expect_ident st in
    expect st Comma;
    Block.Cbr (v, l1, expect_ident st)
  | "switch" ->
    let v = parse_value st in
    expect st Comma;
    expect st Lbrack;
    let rec cases acc =
      if accept st Rbrack then List.rev acc
      else
        let c = expect_int st in
        expect st Arrow;
        let l = expect_ident st in
        ignore (accept st Comma);
        cases ((c, l) :: acc)
    in
    let cs = cases [] in
    expect st Comma;
    Block.Switch (v, cs, expect_ident st)
  | "unreachable" -> Block.Unreachable
  | m -> error "unknown terminator %s" m

let is_term_mnemonic = function
  | "ret" | "br" | "cbr" | "switch" | "unreachable" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Functions, globals, module                                          *)
(* ------------------------------------------------------------------ *)

let parse_attrs st =
  if peek st = Ident "attrs" then begin
    ignore (next st);
    expect st Lparen;
    let rec loop acc =
      let name = expect_ident st in
      let attr =
        match Func.attr_of_name name with
        | Some a -> a
        | None -> error "unknown attribute %s" name
      in
      if accept st Comma then loop (attr :: acc)
      else (
        expect st Rparen;
        List.rev (attr :: acc))
    in
    loop []
  end
  else []

let parse_kernel_info st =
  if peek st = Ident "kernel" then begin
    ignore (next st);
    expect st Lparen;
    let mode =
      match expect_ident st with
      | "generic" -> Func.Generic
      | "spmd" -> Func.Spmd
      | m -> error "unknown exec mode %s" m
    in
    let info = { Func.exec_mode = mode; num_teams = None; num_threads = None } in
    while accept st Comma do
      let key = expect_ident st in
      expect st Equal;
      let v = Int64.to_int (expect_int st) in
      match key with
      | "teams" -> info.Func.num_teams <- Some v
      | "threads" -> info.Func.num_threads <- Some v
      | k -> error "unknown kernel key %s" k
    done;
    expect st Rparen;
    Some info
  end
  else None

let parse_block st =
  let label = expect_ident st in
  expect st Colon;
  let instrs = ref [] in
  let term = ref None in
  (* ids of result-less instructions are assigned by the caller once the
     maximum explicit id of the whole function is known *)
  let rec loop () =
    match peek st with
    | Reg id ->
      ignore (next st);
      expect st Equal;
      let m = expect_ident st in
      let kind = parse_instr_kind st m in
      instrs := (Some id, kind) :: !instrs;
      loop ()
    | Ident m when is_term_mnemonic m ->
      ignore (next st);
      term := Some (parse_term st m)
    | Ident m ->
      ignore (next st);
      let kind = parse_instr_kind st m in
      instrs := (None, kind) :: !instrs;
      loop ()
    | t -> error "expected instruction or terminator in block %s, got %a" label pp_token t
  in
  loop ();
  match !term with
  | None -> error "block %s has no terminator" label
  | Some term -> (label, List.rev !instrs, term)

let parse_define st =
  let linkage =
    match expect_ident st with
    | "external" -> Func.External
    | "internal" -> Func.Internal
    | "weak" -> Func.Weak
    | l -> error "unknown linkage %s" l
  in
  let ret_ty = parse_ty st in
  let name = match next st with At n -> n | t -> error "expected @name, got %a" pp_token t in
  expect st Lparen;
  let params = ref [] in
  if not (accept st Rparen) then begin
    let rec loop () =
      (match next st with
      | ArgRef _ -> ()
      | t -> error "expected %%argN, got %a" pp_token t);
      expect st Colon;
      let ty = parse_ty st in
      params := ("", ty) :: !params;
      if accept st Comma then loop () else expect st Rparen
    in
    loop ()
  end;
  let params = List.rev !params in
  let kernel = parse_kernel_info st in
  let attrs = parse_attrs st in
  let f = Func.make ~linkage ~attrs ?kernel name ~ret_ty ~params in
  expect st Lbrace;
  let raw_blocks = ref [] in
  while peek st <> Rbrace do
    raw_blocks := parse_block st :: !raw_blocks
  done;
  expect st Rbrace;
  let raw_blocks = List.rev !raw_blocks in
  let max_id = ref (-1) in
  List.iter
    (fun (_, raw_instrs, _) ->
      List.iter
        (fun (id_opt, _) -> Option.iter (fun id -> if id > !max_id then max_id := id) id_opt)
        raw_instrs)
    raw_blocks;
  List.iter
    (fun (label, raw_instrs, term) ->
      let blk = Block.make label ~term in
      List.iter
        (fun (id_opt, kind) ->
          let id =
            match id_opt with
            | Some id -> id
            | None ->
              incr max_id;
              !max_id
          in
          Block.append blk (Instr.make ~id kind))
        raw_instrs;
      Func.add_block f blk)
    raw_blocks;
  Support.Util.Id_gen.reserve f.Func.reg_gen !max_id;
  f

let parse_declare st =
  let ret_ty = parse_ty st in
  let name = match next st with At n -> n | t -> error "expected @name, got %a" pp_token t in
  expect st Lparen;
  let params = ref [] in
  if not (accept st Rparen) then begin
    let rec loop () =
      let ty = parse_ty st in
      params := ("", ty) :: !params;
      if accept st Comma then loop () else expect st Rparen
    in
    loop ()
  end;
  let attrs = parse_attrs st in
  Func.declare ~attrs name ~ret_ty ~params:(List.rev !params)

let parse_global st =
  let linkage =
    match expect_ident st with
    | "external" -> Func.External
    | "internal" -> Func.Internal
    | "weak" -> Func.Weak
    | l -> error "unknown linkage %s" l
  in
  let name = match next st with At n -> n | t -> error "expected @name, got %a" pp_token t in
  expect st Colon;
  let ty = parse_ty st in
  expect_kw st "in";
  let space = parse_space st in
  expect st Equal;
  let init =
    if peek st = Ident "zeroinit" then (
      ignore (next st);
      None)
    else
      match parse_value st with
      | Value.Const c -> Some c
      | _ -> error "global initializer must be a constant"
  in
  { Irmod.gname = name; gty = ty; gspace = space; ginit = init; glinkage = linkage }

(* After parsing, operands written [@name] default to [Value.Global]; turn
   the ones naming functions into [Value.Func]. *)
let resolve_symbols (m : Irmod.t) =
  let is_func n = Irmod.find_func m n <> None in
  let fix v = match v with Value.Global n when is_func n -> Value.Func n | v -> v in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter (Instr.map_operands fix) b.Block.instrs;
          Block.map_term_operands fix b)
        f.Func.blocks)
    m.Irmod.funcs

let parse_module src =
  let st = { toks = tokenize src } in
  let m = Irmod.create () in
  expect_kw st "module";
  (match next st with
  | Str name -> m.Irmod.mname <- name
  | t -> error "expected module name string, got %a" pp_token t);
  let rec loop () =
    match next st with
    | Eof -> ()
    | Ident "global" ->
      Irmod.add_global m (parse_global st);
      loop ()
    | Ident "declare" ->
      Irmod.add_func m (parse_declare st);
      loop ()
    | Ident "define" ->
      Irmod.add_func m (parse_define st);
      loop ()
    | t -> error "expected top-level item, got %a" pp_token t
  in
  loop ();
  resolve_symbols m;
  m

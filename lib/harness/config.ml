(* Build configurations of the evaluation (Section V / Figure 11 legends). *)

type build =
  | Llvm12  (* legacy globalization, no OpenMP-aware middle end *)
  | Dev_noopt  (* simplified globalization, explicit OpenMP opts disabled *)
  | Dev of Openmpopt.Pass_manager.options  (* simplified + a subset of passes *)
  | Cuda  (* kernel-style build of the CUDA source *)

type t = { label : string; build : build }

let dev options = Dev options

(* Content identity of a build for the scheduler's result cache.  The label
   is deliberately excluded: two configs with different labels but the same
   build produce the same measurement and should share a cache entry. *)
let build_fingerprint = function
  | Llvm12 -> "llvm12"
  | Dev_noopt -> "dev-noopt"
  | Dev options ->
    "dev{" ^ Openmpopt.Pass_manager.options_fingerprint options ^ "}"
  | Cuda -> "cuda"

let opts = Openmpopt.Pass_manager.default_options

(* Named option subsets, mirroring the bar labels of Figure 11. *)
let only_h2s =
  {
    opts with
    Openmpopt.Pass_manager.disable_spmdization = true;
    disable_state_machine_rewrite = true;
    disable_folding = true;
    disable_heap_to_shared = true;
  }

let h2s2 =
  {
    opts with
    Openmpopt.Pass_manager.disable_spmdization = true;
    disable_state_machine_rewrite = true;
    disable_folding = true;
  }

let h2s2_rtc =
  {
    opts with
    Openmpopt.Pass_manager.disable_spmdization = true;
    disable_state_machine_rewrite = true;
  }

let h2s2_rtc_csm = { opts with Openmpopt.Pass_manager.disable_spmdization = true }

let h2s2_rtc_spmd = { opts with Openmpopt.Pass_manager.disable_state_machine_rewrite = true }

let dev_full = opts

let llvm12 = { label = "LLVM 12"; build = Llvm12 }
let no_opt = { label = "No OpenMP Optimization"; build = Dev_noopt }
let heap_2_stack = { label = "heap-2-stack"; build = dev only_h2s }
let h2s2_cfg = { label = "heap-2-stack&shared (=h2s2)"; build = dev h2s2 }
let h2s2_rtc_cfg = { label = "h2s2 + RTCspec"; build = dev h2s2_rtc }
let h2s2_rtc_csm_cfg = { label = "h2s2 + RTCspec + CSM"; build = dev h2s2_rtc_csm }
let h2s2_rtc_spmd_cfg = { label = "h2s2 + RTCspec + SPMDzation"; build = dev h2s2_rtc_spmd }
let dev0 = { label = "LLVM Dev 0"; build = dev dev_full }
let cuda = { label = "CUDA (Clang Dev)"; build = Cuda }

(* The configuration set used for each application's Figure 11 plot ("we
   restricted each plot to the configurations that impact performance"). *)
let fig11_configs (app_name : string) =
  match app_name with
  | "xsbench" | "rsbench" ->
    [ llvm12; no_opt; h2s2_cfg; h2s2_rtc_cfg; dev0; cuda ]
  | "su3bench" ->
    [ llvm12; no_opt; h2s2_cfg; h2s2_rtc_csm_cfg; h2s2_rtc_spmd_cfg; dev0; cuda ]
  | "miniqmc" ->
    [ llvm12; no_opt; heap_2_stack; h2s2_cfg; h2s2_rtc_csm_cfg; h2s2_rtc_spmd_cfg; dev0 ]
  | _ -> [ llvm12; no_opt; dev0; cuda ]

let fig10_configs (app_name : string) =
  match app_name with
  | "miniqmc" -> [ llvm12; dev0 ]
  | _ -> [ cuda; llvm12; dev0 ]

(* The sharded compile fleet (docs/FLEET.md).

   What this suite pins: the consistent-hash ring's determinism, coverage
   and minimal-remap property; failover byte-identity when the injector
   declares the primary shard down (and the in-process fallback when every
   shard is); per-tenant fair-queue admission (a greedy tenant is shed at
   the deadline, a second tenant is not starved); the monitor's ejection
   of a crash-looping shard and its cooldown re-admission; and the shape
   of the router's health/stats/fleet documents, including the lone
   daemon's structured rejection of the fleet op. *)

module J = Observe.Json
module E = Fault.Ompgpu_error
module A = Ompgpu_api
module Router = Service.Router
module Ring = Service.Ring

(* Shards are stopped under live relays here; a write to a severed socket
   must surface as an error, not a process-killing SIGPIPE. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mompfl-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir path 0o755;
    path

let config = A.Config.(default |> optimized |> with_sim)

let source =
  (Proxyapps.Apps.find_exn "xsbench").Proxyapps.App.omp_source Proxyapps.App.Tiny

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected service error: %s" (E.to_string e)

let check_same_compiled what (expected : A.compiled) (got : A.compiled) =
  Alcotest.(check int) (what ^ ": exit code") expected.A.exit_code got.A.exit_code;
  Alcotest.(check string) (what ^ ": stdout bytes") expected.A.output got.A.output;
  Alcotest.(check string)
    (what ^ ": stderr bytes")
    expected.A.diagnostics got.A.diagnostics

(* A fleet of in-process supervised shards behind a router, torn down even
   when the body raises.  [injector] arms router-level sites only. *)
let with_fleet ?(shards = 2) ?(injector = Fault.Injector.none)
    ?(router_cfg = fun (c : Router.config) -> c) f =
  let dir = fresh_dir () in
  let backends =
    List.init shards (fun i ->
        let name = Printf.sprintf "shard-%d" i in
        Router.inproc_backend
          {
            Service.Supervisor.default_config with
            Service.Supervisor.server =
              {
                Service.Server.default_config with
                Service.Server.socket_path = Filename.concat dir (name ^ ".sock");
                domains = 2;
                capacity = 8;
                cache_dir = Some (Filename.concat dir "cache");
              };
          }
          ~name)
  in
  let router_socket = Filename.concat dir "router.sock" in
  let cfg =
    router_cfg
      {
        Router.default_config with
        Router.socket_path = router_socket;
        capacity = 8;
        probe_interval_s = 0.02;
        injector;
      }
  in
  let router = Router.create cfg backends in
  let thread = Thread.create Router.serve_forever router in
  let finish () =
    Router.stop router;
    Thread.join thread
  in
  match f ~router ~router_socket ~backends with
  | result ->
    finish ();
    result
  | exception e ->
    (try finish () with _ -> ());
    raise e

(* Poll [probe] until it holds or the deadline passes; the fleet's state
   machine advances on prober/monitor threads, not on ours. *)
let eventually ?(deadline_s = 10.0) what probe =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if probe () then ()
    else if Unix.gettimeofday () -. t0 > deadline_s then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let shard_entries doc =
  match J.member "shards" doc with Some (J.List l) -> l | _ -> []

let entry_str name entry =
  Option.bind (J.member name entry) J.to_str

let entry_int name entry =
  Option.bind (J.member name entry) J.to_int

(* ------------------------------------------------------------------ *)
(* Ring: determinism, coverage, minimal remap                          *)
(* ------------------------------------------------------------------ *)

let test_ring_determinism () =
  let names = [ "a"; "b"; "c" ] in
  let r1 = Ring.create names in
  (* order-insensitive: membership, not list order, defines the ring *)
  let r2 = Ring.create (List.rev names) in
  Alcotest.(check (array string))
    "shard array is sorted and order-insensitive" [| "a"; "b"; "c" |]
    (Ring.shards r1);
  Alcotest.(check (array string)) "same membership, same array" (Ring.shards r1)
    (Ring.shards r2);
  for i = 0 to 199 do
    let key = Printf.sprintf "key-%d" i in
    let o1 = Ring.order r1 key in
    Alcotest.(check (list int))
      "independently built rings agree on every key" o1 (Ring.order r2 key);
    Alcotest.(check (list int))
      "preference order covers every shard exactly once"
      (List.sort compare o1) [ 0; 1; 2 ]
  done;
  Alcotest.check_raises "empty ring rejected"
    (Invalid_argument "Ring.create: no shards") (fun () ->
      ignore (Ring.create []));
  Alcotest.check_raises "duplicate shard rejected"
    (Invalid_argument "Ring.create: duplicate shard names") (fun () ->
      ignore (Ring.create [ "a"; "a" ]))

let test_ring_minimal_remap () =
  (* Removing one shard of four must remap only the keys it owned: every
     other key keeps its primary, because the surviving shards' ring
     points are identical in both rings. *)
  let big = Ring.create [ "a"; "b"; "c"; "d" ] in
  let small = Ring.create [ "a"; "b"; "c" ] in
  let big_names = Ring.shards big and small_names = Ring.shards small in
  let moved = ref 0 in
  let n = 500 in
  for i = 0 to n - 1 do
    let key = Printf.sprintf "cache-key-%d" i in
    let big_primary = big_names.(List.hd (Ring.order big key)) in
    let small_primary = small_names.(List.hd (Ring.order small key)) in
    if String.equal big_primary "d" then incr moved
    else
      Alcotest.(check string)
        (Printf.sprintf "%s keeps its primary when d leaves" key)
        big_primary small_primary
  done;
  (* ~1/4 of the key space belonged to the departed shard; vnodes keep the
     split even enough that the bound below is loose *)
  Alcotest.(check bool)
    (Printf.sprintf "departed shard owned a sane fraction (%d/%d)" !moved n)
    true
    (!moved > n / 10 && !moved < n / 2)

(* ------------------------------------------------------------------ *)
(* Failover byte-identity                                              *)
(* ------------------------------------------------------------------ *)

let test_failover_byte_identity () =
  (* shard-down at rate 1.0 drops the primary candidate for every
     request: everything lands on a non-primary shard, and the bytes must
     not care *)
  let injector =
    Fault.Injector.create
      [ { Fault.Injector.site = Fault.Injector.Shard_down; rate = 1.0; seed = 7 } ]
  in
  with_fleet ~shards:2 ~injector (fun ~router:_ ~router_socket ~backends:_ ->
      Service.Client.with_connection ~socket_path:router_socket (fun c ->
          for i = 0 to 5 do
            let file = Printf.sprintf "failover-%d.c" i in
            let expected = A.compile_buffered ~config ~file source in
            let got = ok_exn (Service.Client.compile c ~file ~config source) in
            check_same_compiled (Printf.sprintf "misrouted request %d" i)
              expected got
          done))

let test_all_down_falls_back_in_process () =
  (* one shard, always dropped: the ladder is empty and the router must
     settle the compile itself, byte-identically *)
  let injector =
    Fault.Injector.create
      [ { Fault.Injector.site = Fault.Injector.Shard_down; rate = 1.0; seed = 7 } ]
  in
  with_fleet ~shards:1 ~injector (fun ~router ~router_socket ~backends:_ ->
      Service.Client.with_connection ~socket_path:router_socket (fun c ->
          let file = "fallback.c" in
          let expected = A.compile_buffered ~config ~file source in
          let got = ok_exn (Service.Client.compile c ~file ~config source) in
          check_same_compiled "in-process fallback" expected got);
      let doc = Router.fleet_json router in
      let fallbacks =
        Option.value ~default:0
          (Option.bind (J.member "router" doc) (fun r ->
               Option.bind (J.member "fallbacks" r) J.to_int))
      in
      Alcotest.(check bool)
        "router counted the in-process fallback" true (fallbacks >= 1))

let test_stopped_shard_failover () =
  (* no injector: stop a real shard and let the strike path discover it *)
  with_fleet ~shards:2 (fun ~router:_ ~router_socket ~backends ->
      Service.Client.with_connection ~socket_path:router_socket (fun c ->
          (* route at least one request per shard so both sockets are known
             good first *)
          for i = 0 to 3 do
            let file = Printf.sprintf "pre-%d.c" i in
            ignore (ok_exn (Service.Client.compile c ~file ~config source))
          done);
      (List.hd backends).Router.stop ();
      Service.Client.with_connection ~socket_path:router_socket (fun c ->
          for i = 0 to 5 do
            let file = Printf.sprintf "post-%d.c" i in
            let expected = A.compile_buffered ~config ~file source in
            let got = ok_exn (Service.Client.compile c ~file ~config source) in
            check_same_compiled
              (Printf.sprintf "request %d with shard-0 stopped" i)
              expected got
          done))

(* ------------------------------------------------------------------ *)
(* Admission: per-tenant fair queue                                    *)
(* ------------------------------------------------------------------ *)

let test_admission_greedy_tenant_shed () =
  let adm = Router.Admission.create ~capacity:2 ~queue_deadline_s:0.05 in
  let admit tenant =
    match Router.Admission.acquire adm ~tenant with
    | Router.Admission.Admitted -> true
    | Router.Admission.Shed _ -> false
  in
  Alcotest.(check bool) "first slot" true (admit "acme");
  Alcotest.(check bool) "second slot" true (admit "acme");
  Alcotest.(check int) "both in flight" 2 (Router.Admission.in_flight adm);
  (match Router.Admission.acquire adm ~tenant:"acme" with
  | Router.Admission.Admitted -> Alcotest.fail "third slot over capacity admitted"
  | Router.Admission.Shed { pending; capacity } ->
    Alcotest.(check int) "shed names the capacity" 2 capacity;
    Alcotest.(check bool) "shed reports pending load" true (pending >= 2));
  Router.Admission.release adm ~tenant:"acme";
  Router.Admission.release adm ~tenant:"acme";
  Alcotest.(check int) "released" 0 (Router.Admission.in_flight adm)

let test_admission_starved_tenant_progresses () =
  (* tenant a holds the whole capacity; when b arrives, a release must let
     b in — the fair share bounds a at capacity/2 and b's wait ends *)
  let adm = Router.Admission.create ~capacity:2 ~queue_deadline_s:2.0 in
  (match Router.Admission.acquire adm ~tenant:"a" with
  | Router.Admission.Admitted -> ()
  | Router.Admission.Shed _ -> Alcotest.fail "a's first slot shed");
  (match Router.Admission.acquire adm ~tenant:"a" with
  | Router.Admission.Admitted -> ()
  | Router.Admission.Shed _ -> Alcotest.fail "a's second slot shed");
  let b_outcome = ref None in
  let waiter =
    Thread.create
      (fun () -> b_outcome := Some (Router.Admission.acquire adm ~tenant:"b"))
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check (option bool)) "b still waiting" None
    (Option.map (fun _ -> true) !b_outcome);
  Router.Admission.release adm ~tenant:"a";
  Thread.join waiter;
  (match !b_outcome with
  | Some Router.Admission.Admitted -> ()
  | Some (Router.Admission.Shed _) ->
    Alcotest.fail "b was shed although a released within the deadline"
  | None -> Alcotest.fail "b's acquire never returned");
  Router.Admission.release adm ~tenant:"b";
  Router.Admission.release adm ~tenant:"a";
  Alcotest.(check int) "drained" 0 (Router.Admission.in_flight adm)

(* ------------------------------------------------------------------ *)
(* Ejection of a crash-looping shard, cooldown re-admission            *)
(* ------------------------------------------------------------------ *)

let test_crash_loop_ejection_and_cooldown () =
  let dir = fresh_dir () in
  let starts = ref 0 in
  (* a shard that dies the instant it is started: every monitor poll sees
     a corpse, every respawn burns one token of the window *)
  let flaky =
    {
      Router.name = "flaky";
      socket_path = Filename.concat dir "flaky.sock";
      start = (fun () -> incr starts);
      stop = (fun () -> ());
      alive = (fun () -> false);
      pid = (fun () -> None);
    }
  in
  let healthy =
    Router.inproc_backend
      {
        Service.Supervisor.default_config with
        Service.Supervisor.server =
          {
            Service.Server.default_config with
            Service.Server.socket_path = Filename.concat dir "healthy.sock";
            domains = 2;
            capacity = 8;
          };
      }
      ~name:"healthy"
  in
  let router =
    Router.create
      {
        Router.default_config with
        Router.socket_path = Filename.concat dir "router.sock";
        capacity = 8;
        probe_interval_s = 0.02;
        max_respawns = 2;
        respawn_window_s = 10.0;
        eject_cooldown_s = 0.3;
      }
      [ flaky; healthy ]
  in
  let thread = Thread.create Router.serve_forever router in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      Thread.join thread)
    (fun () ->
      let state_of name =
        List.find_map
          (fun e ->
            if entry_str "name" e = Some name then entry_str "state" e else None)
          (shard_entries (Router.fleet_json router))
      in
      eventually "the crash-looping shard to be ejected" (fun () ->
          state_of "flaky" = Some "ejected");
      let respawns =
        List.find_map
          (fun e ->
            if entry_str "name" e = Some "flaky" then entry_int "respawns" e
            else None)
          (shard_entries (Router.fleet_json router))
      in
      Alcotest.(check bool) "the window's respawn budget was spent" true
        (match respawns with Some n -> n >= 2 | None -> false);
      Alcotest.(check bool) "start was actually driven" true (!starts >= 2);
      (* compiles keep settling while one shard crash-loops *)
      Service.Client.with_connection
        ~socket_path:(Filename.concat dir "router.sock") (fun c ->
          let file = "during-ejection.c" in
          let expected = A.compile_buffered ~config ~file source in
          let got = ok_exn (Service.Client.compile c ~file ~config source) in
          check_same_compiled "compile with a shard ejected" expected got);
      (* cooldown expiry re-admits the shard (as down, to be probed) — it
         immediately starts burning a fresh window, so accept any
         non-ejected state ever being observed *)
      eventually "cooldown re-admission" (fun () ->
          match state_of "flaky" with
          | Some "ejected" -> false
          | Some _ -> true
          | None -> false))

(* ------------------------------------------------------------------ *)
(* Documents: health / stats / fleet, and the lone daemon's rejection  *)
(* ------------------------------------------------------------------ *)

let test_documents_shape () =
  with_fleet ~shards:2 (fun ~router:_ ~router_socket ~backends:_ ->
      Service.Client.with_connection ~socket_path:router_socket (fun c ->
          (* make the counters move before reading them *)
          let file = "doc.c" in
          ignore (ok_exn (Service.Client.compile c ~file ~config source));
          let health = ok_exn (Service.Client.health c ()) in
          Alcotest.(check (option string))
            "health.role" (Some "router")
            (Option.bind (J.member "role" health) J.to_str);
          Alcotest.(check (option string))
            "health.status" (Some "ok")
            (Option.bind (J.member "status" health) J.to_str);
          Alcotest.(check (option int))
            "health.shards_total" (Some 2)
            (Option.bind (J.member "shards_total" health) J.to_int);
          let stats = ok_exn (Service.Client.stats c ()) in
          let requests =
            match J.member "requests" stats with
            | Some r -> r
            | None -> Alcotest.fail "stats without requests"
          in
          Alcotest.(check bool)
            "stats.requests.routed counted the compile" true
            (match Option.bind (J.member "routed" requests) J.to_int with
            | Some n -> n >= 1
            | None -> false);
          let fleet = ok_exn (Service.Client.fleet c ()) in
          Alcotest.(check (option int))
            "fleet is schema-stamped"
            (Some J.schema_version)
            (Option.bind (J.member "schema" fleet) J.to_int);
          (match Option.bind (J.member "ring" fleet) (J.member "shards") with
          | Some (J.List names) ->
            Alcotest.(check (list string))
              "ring lists both shards" [ "shard-0"; "shard-1" ]
              (List.filter_map J.to_str names)
          | _ -> Alcotest.fail "fleet without ring.shards");
          let entries = shard_entries fleet in
          Alcotest.(check int) "one entry per shard" 2 (List.length entries);
          List.iter
            (fun e ->
              Alcotest.(check bool)
                "entry carries probe counters" true
                (entry_int "probes_ok" e <> None
                && entry_int "respawns" e <> None);
              Alcotest.(check bool)
                "in-process shards have no pid" true
                (J.member "pid" e = Some J.Null))
            entries))

let test_single_daemon_rejects_fleet_op () =
  (* a lone mompd is not a router: the fleet op gets a structured
     bad-request, not a hang or a crash *)
  let dir = fresh_dir () in
  let socket_path = Filename.concat dir "lone.sock" in
  let server =
    Service.Server.create
      { Service.Server.default_config with Service.Server.socket_path }
  in
  let thread = Thread.create Service.Server.serve_forever server in
  Service.Client.with_connection ~socket_path (fun c ->
      (match Service.Client.fleet c () with
      | Ok _ -> Alcotest.fail "lone daemon answered the fleet op"
      | Error e ->
        Alcotest.(check string)
          "taxonomy kind" "bad-request"
          (E.kind_name e.E.kind));
      match Service.Client.shutdown c () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "shutdown: %s" (E.to_string e));
  Thread.join thread

let suite =
  [
    Alcotest.test_case "ring: deterministic, order-insensitive, covering" `Quick
      test_ring_determinism;
    Alcotest.test_case "ring: removing a shard remaps only its keys" `Quick
      test_ring_minimal_remap;
    Alcotest.test_case "failover: injected shard-down is byte-identical" `Quick
      test_failover_byte_identity;
    Alcotest.test_case "failover: all shards down falls back in-process" `Quick
      test_all_down_falls_back_in_process;
    Alcotest.test_case "failover: a stopped shard is struck and routed around"
      `Quick test_stopped_shard_failover;
    Alcotest.test_case "admission: greedy tenant shed at the deadline" `Quick
      test_admission_greedy_tenant_shed;
    Alcotest.test_case "admission: waiting tenant admitted on release" `Quick
      test_admission_starved_tenant_progresses;
    Alcotest.test_case "monitor: crash-looping shard ejected, then re-admitted"
      `Quick test_crash_loop_ejection_and_cooldown;
    Alcotest.test_case "documents: health/stats/fleet shape" `Quick
      test_documents_shape;
    Alcotest.test_case "protocol: lone daemon rejects the fleet op" `Quick
      test_single_daemon_rejects_fleet_op;
  ]

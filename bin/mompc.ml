(* mompc: the MiniOMP compiler driver.

   Parses MiniOMP source files, lowers them with the selected globalization
   scheme, optionally runs the OpenMP-aware optimizer, prints remarks, and
   emits the resulting MiniIR.  Optionally runs each program on the GPU
   simulator and reports kernel statistics.

   Several files compile as one batch: [-j N] runs them on N scheduler
   domains (per-file output is buffered and printed in input order, so
   parallel output is byte-identical to sequential), and [--cache-dir DIR]
   memoizes each file's full compiler output on disk, content-addressed by
   source text, scheme and pass options.

   The disable flags mirror the paper artifact's LLVM flags
   openmp-opt-disable-... . *)

open Cmdliner

let scheme_conv =
  let parse = function
    | "simplified" -> Ok Frontend.Codegen.Simplified
    | "legacy" -> Ok Frontend.Codegen.Legacy
    | "cuda" -> Ok Frontend.Codegen.Cuda
    | s -> Error (`Msg ("unknown scheme: " ^ s))
  in
  let print ppf s = Fmt.string ppf (Frontend.Codegen.scheme_name s) in
  Arg.conv (parse, print)

(* Result of compiling one file: the process exit code it asks for, plus
   everything it wants on stdout/stderr.  Buffering instead of printing
   directly is what makes parallel batch compilation safe: formatters are
   not shared across domains, and output order is decided by the driver. *)
type file_result = { code : int; out : string; err : string }

(* Backtrace printing is opt-in (OMPGPU_BACKTRACE=1 or --backtrace):
   diagnostics must be byte-stable across runs — the CI fault matrix
   compares two same-seed runs — and backtraces are not. *)
let backtraces_wanted = ref false

let compile_one ~scheme ~options ~injector ~emit_ir ~run_sim ~remarks_only
    ~stats_json ~print_trace file : file_result =
  let out_buf = Buffer.create 1024 in
  let err_buf = Buffer.create 1024 in
  let out = Format.formatter_of_buffer out_buf in
  let err = Format.formatter_of_buffer err_buf in
  let finish code =
    Format.pp_print_flush out ();
    Format.pp_print_flush err ();
    { code; out = Buffer.contents out_buf; err = Buffer.contents err_buf }
  in
  (* Every failure exits through here: one stable diagnostic line, the
     taxonomy's exit code, and (opt-in) the captured backtrace. *)
  let fail (e : Fault.Ompgpu_error.t) =
    Fmt.pf err "%s: %s@." file (Fault.Ompgpu_error.to_string e);
    (if !backtraces_wanted then
       match e.Fault.Ompgpu_error.backtrace with
       | Some bt -> Fmt.pf err "%s@." (String.trim bt)
       | None -> ());
    finish (Fault.Ompgpu_error.exit_code e)
  in
  let classify ~phase e =
    Harness.Errors.classify ~phase e (Printexc.get_raw_backtrace ())
  in
  let src = In_channel.with_open_text file In_channel.input_all in
  match Frontend.Codegen.compile ~scheme ~file src with
  | exception e -> fail (classify ~phase:Fault.Ompgpu_error.Lowering e)
  | m -> (
    match Ir.Verify.check m with
    | Error msg ->
      fail
        (Fault.Ompgpu_error.make Fault.Ompgpu_error.Verify
           ~phase:Fault.Ompgpu_error.Verifying ("front end: " ^ msg))
    | Ok () -> (
      (* the trace feeds both --trace (human-readable) and --stats-json *)
      let trace =
        if print_trace || stats_json <> None then Some (Observe.Trace.create ())
        else None
      in
      let opt_report = ref None in
      let opt_error = ref None in
      (match options with
      | None -> ()
      | Some options -> (
        match Openmpopt.Pass_manager.run ~options ~injector ?trace m with
        | exception e -> opt_error := Some (classify ~phase:Fault.Ompgpu_error.Optimizing e)
        | report ->
          opt_report := Some report;
          List.iter
            (fun r -> Fmt.pf err "%s@." (Openmpopt.Remark.to_string r))
            report.Openmpopt.Pass_manager.remarks;
          Fmt.pf err "openmp-opt: %a@." Openmpopt.Pass_manager.pp_report report;
          (match Ir.Verify.check m with
          | Error msg ->
            opt_error :=
              Some
                (Fault.Ompgpu_error.make Fault.Ompgpu_error.Verify
                   ~phase:Fault.Ompgpu_error.Verifying ("after openmp-opt: " ^ msg))
          | Ok () -> ());
          if print_trace then
            Option.iter
              (fun tr ->
                Fmt.pf err "openmp-opt trace:@.";
                List.iter
                  (fun e -> Fmt.pf err "  %a@." Observe.Trace.pp_event e)
                  (Observe.Trace.events tr))
              trace));
      match !opt_error with
      | Some e -> fail e
      | None ->
        if emit_ir && not remarks_only then Fmt.pf out "%a" Ir.Printer.pp_module m;
        let sim_result =
          if run_sim then begin
            let sim = Gpusim.Interp.create ~injector Gpusim.Machine.bench_machine m in
            match Gpusim.Interp.run_host sim with
            | exception e ->
              Error (classify ~phase:Fault.Ompgpu_error.Simulating e)
            | () ->
              Fmt.pf out "; kernel cycles: %d@." (Gpusim.Interp.total_kernel_cycles sim);
              List.iter
                (fun (s : Gpusim.Interp.launch_stats) ->
                  Fmt.pf out
                    "; %s: cycles=%d regs=%d smem=%dB heap=%dB instrs=%d barriers=%d \
                     atomics=%d div-branches=%d@."
                    s.Gpusim.Interp.kernel_name s.Gpusim.Interp.cycles
                    s.Gpusim.Interp.registers s.Gpusim.Interp.shared_bytes
                    s.Gpusim.Interp.heap_high_water s.Gpusim.Interp.instructions
                    s.Gpusim.Interp.barriers
                    (s.Gpusim.Interp.atomics_global + s.Gpusim.Interp.atomics_shared)
                    s.Gpusim.Interp.divergent_branches)
                sim.Gpusim.Interp.kernel_stats;
              Fmt.pf out "; trace:%a@."
                (Fmt.list ~sep:Fmt.sp Gpusim.Rvalue.pp)
                (Gpusim.Interp.trace_values sim);
              Ok (Some sim)
          end
          else Ok None
        in
        match sim_result with
        | Error e -> fail e
        | Ok sim_result -> (
          match stats_json with
          | None -> finish 0
          | Some path -> (
            let json =
              Observe.Json.Obj
                ([
                   ("file", Observe.Json.String file);
                   ( "scheme",
                     Observe.Json.String (Frontend.Codegen.scheme_name scheme) );
                   ( "report",
                     match !opt_report with
                     | Some r -> Openmpopt.Pass_manager.report_to_json r
                     | None -> Observe.Json.Null );
                   ( "passes",
                     match trace with
                     | Some tr -> Observe.Trace.to_json tr
                     | None -> Observe.Json.List [] );
                 ]
                @
                match sim_result with
                | Some sim -> [ ("sim", Gpusim.Stats.json_of_sim sim) ]
                | None -> [])
            in
            try
              Out_channel.with_open_text path (fun oc ->
                  Out_channel.output_string oc (Observe.Json.to_string json);
                  Out_channel.output_char oc '\n');
              finish 0
            with Sys_error msg ->
              Fmt.pf err "cannot write stats: %s@." msg;
              finish 2))))

(* ------------------------------------------------------------------ *)
(* Disk cache (--cache-dir)                                            *)
(* ------------------------------------------------------------------ *)

(* Cached payload: the full per-file result as JSON, so warm output is
   byte-identical to cold output.  The key covers everything that shapes the
   output: source text, scheme, option fingerprint, emission flags and the
   fault-injector fingerprint (injected and clean runs must never share an
   entry).  --stats-json writes a side file and --trace prints wall times,
   so those runs bypass the cache. *)
let cache_version = "mompc-cache-v2"

let cache_key ~scheme ~options ~injector ~emit_ir ~run_sim ~remarks_only src =
  Sched.Cache.key
    [
      cache_version;
      src;
      Frontend.Codegen.scheme_name scheme;
      (match options with
      | None -> "noopt"
      | Some o -> Openmpopt.Pass_manager.options_fingerprint o);
      Fault.Injector.fingerprint injector;
      Printf.sprintf "emit=%b;sim=%b;remarks-only=%b" emit_ir run_sim remarks_only;
    ]

let result_to_json (r : file_result) =
  Observe.Json.Obj
    [
      ("code", Observe.Json.Int r.code);
      ("out", Observe.Json.String r.out);
      ("err", Observe.Json.String r.err);
    ]

let result_of_json s =
  match Observe.Json.of_string s with
  | Error _ -> None
  | Ok j -> (
    match
      ( Option.bind (Observe.Json.member "code" j) Observe.Json.to_int,
        Option.bind (Observe.Json.member "out" j) Observe.Json.to_str,
        Option.bind (Observe.Json.member "err" j) Observe.Json.to_str )
    with
    | Some code, Some out, Some err -> Some { code; out; err }
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run_compile files scheme optimize no_spmd no_deglob no_csm no_fold no_group emit_ir
    run_sim remarks_only stats_json print_trace jobs cache_dir inject retries
    backoff watchdog backtrace =
  backtraces_wanted :=
    backtrace || Sys.getenv_opt "OMPGPU_BACKTRACE" = Some "1";
  if !backtraces_wanted then Printexc.record_backtrace true;
  let options =
    if optimize then
      Some
        {
          Openmpopt.Pass_manager.default_options with
          disable_spmdization = no_spmd;
          disable_deglobalization = no_deglob;
          disable_state_machine_rewrite = no_csm;
          disable_folding = no_fold;
          disable_guard_grouping = no_group;
        }
    else None
  in
  let specs, spec_errors =
    List.fold_left
      (fun (ok, errs) s ->
        match Fault.Injector.parse_spec s with
        | Ok spec -> (spec :: ok, errs)
        | Error msg -> (ok, msg :: errs))
      ([], []) inject
  in
  if spec_errors <> [] then begin
    List.iter (fun m -> Fmt.epr "mompc: --inject: %s@." m) (List.rev spec_errors);
    2
  end
  else if stats_json <> None && List.length files > 1 then begin
    Fmt.epr "mompc: --stats-json accepts a single input file@.";
    2
  end
  else begin
    let base_injector = Fault.Injector.create (List.rev specs) in
    let cache =
      (* stats-json writes a side file and --trace prints wall times:
         neither is reproducible from a cached blob *)
      if stats_json = None && not print_trace then
        Option.map
          (fun dir ->
            Sched.Disk_cache.create ~injector:base_injector
              ~on_corrupt:(fun ~key ~path ->
                Fmt.epr
                  "mompc: remark: cache entry %s failed verification, \
                   quarantined at %s@."
                  key path)
              ~dir ())
          cache_dir
      else None
    in
    let one file =
      (* Per-(file, attempt) injector: the coin sequence a file sees does
         not depend on batch order or domain count, and a retry draws fresh
         coins.  [stall] exercises the pool watchdog when pool-stall is
         armed. *)
      let compute ~attempt =
        let injector =
          Fault.Injector.derive base_injector
            (Printf.sprintf "%s#%d" file attempt)
        in
        Fault.Injector.stall injector;
        compile_one ~scheme ~options ~injector ~emit_ir ~run_sim ~remarks_only
          ~stats_json ~print_trace file
      in
      (* Bounded retry on the taxonomy's transient exit codes only
         (21 = oom, 24 = timeout); deterministic failures re-fail
         identically, so retrying them is waste. *)
      let rec attempt_loop n =
        let r = compute ~attempt:n in
        if n < retries && (r.code = 21 || r.code = 24) then begin
          Unix.sleepf (backoff *. float_of_int (1 lsl n));
          attempt_loop (n + 1)
        end
        else r
      in
      match cache with
      | None -> attempt_loop 0
      | Some cache -> (
        let src = In_channel.with_open_text file In_channel.input_all in
        let key =
          cache_key ~scheme ~options ~injector:base_injector ~emit_ir ~run_sim
            ~remarks_only src
        in
        match Option.bind (Sched.Disk_cache.find cache ~key) result_of_json with
        | Some r -> r
        | None ->
          let r = attempt_loop 0 in
          (* failed compiles are not cached: they are cheap and the user is
             about to edit the file anyway *)
          if r.code = 0 then
            Sched.Disk_cache.store cache ~key
              ~data:(Observe.Json.to_string (result_to_json r));
          r)
    in
    let results =
      if jobs > 1 && List.length files > 1 then
        Sched.Pool.with_pool ~domains:jobs (fun pool ->
            match watchdog with
            | None -> Sched.Pool.map_list pool one files
            | Some watchdog_s ->
              (* The guard turns a hung job into a structured Timeout; the
                 per-file retry loop already lives inside [one], so the
                 guard itself does not retry. *)
              Sched.Pool.map_list_guarded pool ~watchdog_s
                (fun ~attempt:_ file -> one file)
                files
              |> List.map2
                   (fun file -> function
                     | Ok r -> r
                     | Error (e, bt) ->
                       let e =
                         Harness.Errors.classify
                           ~phase:Fault.Ompgpu_error.Scheduling e bt
                       in
                       {
                         code = Fault.Ompgpu_error.exit_code e;
                         out = "";
                         err =
                           Printf.sprintf "%s: %s\n" file
                             (Fault.Ompgpu_error.to_string e);
                       })
                   files)
      else List.map one files
    in
    List.iter
      (fun (r : file_result) ->
        print_string r.out;
        prerr_string r.err)
      results;
    flush stdout;
    flush stderr;
    List.fold_left (fun acc r -> max acc r.code) 0 results
  end

let files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE" ~doc:"MiniOMP source file(s); several compile as a batch")

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Frontend.Codegen.Simplified
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:"Globalization scheme: simplified (LLVM 13), legacy (LLVM 12), cuda")

let flag names doc = Arg.(value & flag & info names ~doc)

let cmd =
  let doc = "compile MiniOMP to MiniIR with OpenMP-aware optimization" in
  Cmd.v
    (Cmd.info "mompc" ~doc)
    Term.(
      const run_compile $ files_arg $ scheme_arg
      $ flag [ "O"; "openmp-opt" ] "Run the OpenMP-aware optimization pipeline"
      $ flag [ "openmp-opt-disable-spmdization" ] "Disable SPMDzation"
      $ flag [ "openmp-opt-disable-deglobalization" ] "Disable HeapToStack/HeapToShared"
      $ flag [ "openmp-opt-disable-state-machine-rewrite" ]
          "Disable the custom state machine rewrite"
      $ flag [ "openmp-opt-disable-folding" ] "Disable runtime-call folding"
      $ flag [ "openmp-opt-disable-guard-grouping" ]
          "Disable side-effect grouping before guard generation (Fig. 7)"
      $ Arg.(value & opt bool true & info [ "emit-ir" ] ~doc:"Print the final MiniIR")
      $ flag [ "run" ] "Execute on the GPU simulator and print kernel statistics"
      $ flag [ "remarks-only" ] "Suppress IR output; print only remarks"
      $ Arg.(
          value
          & opt (some string) None
          & info [ "stats-json" ] ~docv:"FILE"
              ~doc:
                "Write per-round/per-pass pipeline events, the report \
                 counters and (with $(b,--run)) per-kernel simulator \
                 cost-model counters as JSON to $(docv).  Single input file \
                 only.")
      $ flag [ "trace" ] "Print the per-pass pipeline trace to stderr"
      $ Arg.(
          value & opt int 1
          & info [ "j"; "jobs" ] ~docv:"N"
              ~doc:
                "Compile a multi-file batch on $(docv) scheduler domains.  \
                 Output is printed in input order, byte-identical to -j 1.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "cache-dir" ] ~docv:"DIR"
              ~doc:
                "Content-addressed compilation cache: memoize each file's \
                 compiler output in $(docv), keyed by source text, scheme \
                 and pass options.  Ignored with $(b,--stats-json) and \
                 $(b,--trace).")
      $ Arg.(
          value
          & opt_all string []
          & info [ "inject" ] ~docv:"SITE[:RATE][:SEED]"
              ~doc:
                "Arm a deterministic fault-injection site (repeatable).  \
                 Sites: mem-alloc, shared-budget, sim-trap, pass-crash, \
                 cache-corrupt, pool-stall.  RATE defaults to 1.0, SEED to \
                 0; the same seed replays the same faults.  See \
                 docs/ROBUSTNESS.md.")
      $ Arg.(
          value & opt int 0
          & info [ "retries" ] ~docv:"N"
              ~doc:
                "Retry a file up to $(docv) times when it fails with a \
                 transient taxonomy code (oom, timeout).  Each attempt \
                 draws fresh injector coins.")
      $ Arg.(
          value & opt float 0.05
          & info [ "backoff" ] ~docv:"S"
              ~doc:
                "Base retry backoff in seconds (doubles per attempt; \
                 default 0.05).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "watchdog" ] ~docv:"S"
              ~doc:
                "With $(b,-j) > 1: declare a file's job hung after $(docv) \
                 seconds and settle it as a structured timeout (exit code \
                 24) instead of blocking the batch.")
      $ flag [ "backtrace" ]
          "Print the captured raise-point backtrace under each diagnostic \
           (also enabled by OMPGPU_BACKTRACE=1).  Off by default: \
           diagnostics stay byte-stable across runs.")

let () = exit (Cmd.eval' cmd)

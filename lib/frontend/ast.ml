(* Abstract syntax of MiniOMP: a small C subset with OpenMP pragmas, just
   large enough to express the proxy applications and the paper's examples. *)

type cty =
  | Tvoid
  | Tint     (* 32-bit signed *)
  | Tlong    (* 64-bit signed *)
  | Tfloat
  | Tdouble
  | Tptr of cty
  | Tarr of cty * int

let rec pp_cty ppf = function
  | Tvoid -> Fmt.string ppf "void"
  | Tint -> Fmt.string ppf "int"
  | Tlong -> Fmt.string ppf "long"
  | Tfloat -> Fmt.string ppf "float"
  | Tdouble -> Fmt.string ppf "double"
  | Tptr t -> Fmt.pf ppf "%a*" pp_cty t
  | Tarr (t, n) -> Fmt.pf ppf "%a[%d]" pp_cty t n

type unop = Neg | Lnot | Bnot | Addr | Deref

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr

type expr = { e : expr_kind; eloc : Support.Loc.t }

and expr_kind =
  | Int_lit of int64
  | Float_lit of float
  | Ident of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of expr * expr
  | Op_assign of binop * expr * expr  (* x += e and friends *)
  | Call of string * expr list
  | Index of expr * expr
  | Cast of cty * expr
  | Cond of expr * expr * expr

type clause =
  | Num_teams of int
  | Thread_limit of int
  | Num_threads of int

type pragma =
  | P_target_teams of clause list
  | P_target_teams_distribute of clause list
  | P_target_teams_distribute_parallel_for of clause list
  | P_parallel of clause list
  | P_parallel_for of clause list
  | P_barrier
  | P_atomic

type stmt = { s : stmt_kind; sloc : Support.Loc.t }

and stmt_kind =
  | Decl of cty * string * expr option
  | Expr of expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | For of stmt option * expr option * expr option * stmt
  | Return of expr option
  | Block of stmt list
  | Pragma of pragma * stmt
  | Break
  | Continue

(* Assumptions attachable to functions, mirroring the OpenMP 5.1 [assume]
   directive integration described in Section IV-D. *)
type assumption = A_spmd_amenable | A_nocapture | A_no_openmp

type func_def = {
  fname : string;
  fret : cty;
  fparams : (cty * string) list;
  fbody : stmt option;  (* None for extern declarations *)
  fassumes : assumption list;
  fstatic : bool;  (* static = internal linkage *)
  floc : Support.Loc.t;
}

type global_def = {
  gname : string;
  gty : cty;
  gloc : Support.Loc.t;
}

type program = { globals : global_def list; funcs : func_def list }

(* Free variables of a statement, minus those declared inside it.  Used by
   the code generator to compute the captures of outlined regions. *)
module SS = Support.Util.String_set

let rec expr_vars e =
  match e.e with
  | Int_lit _ | Float_lit _ -> SS.empty
  | Ident x -> SS.singleton x
  | Unary (_, a) | Cast (_, a) -> expr_vars a
  | Binary (_, a, b) | Assign (a, b) | Op_assign (_, a, b) | Index (a, b) ->
    SS.union (expr_vars a) (expr_vars b)
  | Call (_, args) -> List.fold_left (fun s a -> SS.union s (expr_vars a)) SS.empty args
  | Cond (c, a, b) -> SS.union (expr_vars c) (SS.union (expr_vars a) (expr_vars b))

let rec stmt_free_vars st =
  match st.s with
  | Decl (_, _, init) -> ( match init with Some e -> expr_vars e | None -> SS.empty)
  | Expr e -> expr_vars e
  | If (c, t, f) ->
    SS.union (expr_vars c)
      (SS.union (stmt_free_vars t)
         (match f with Some f -> stmt_free_vars f | None -> SS.empty))
  | While (c, body) -> SS.union (expr_vars c) (stmt_free_vars body)
  | For (init, cond, step, body) ->
    let of_opt_e = function Some e -> expr_vars e | None -> SS.empty in
    let inner =
      SS.union (of_opt_e cond) (SS.union (of_opt_e step) (stmt_free_vars body))
    in
    (* a variable declared in the init clause is bound in the whole loop *)
    let inner =
      match init with
      | Some { s = Decl (_, x, ie); _ } ->
        SS.union
          (match ie with Some e -> expr_vars e | None -> SS.empty)
          (SS.remove x inner)
      | Some st -> SS.union (stmt_free_vars st) inner
      | None -> inner
    in
    inner
  | Return (Some e) -> expr_vars e
  | Return None | Break | Continue -> SS.empty
  | Block stmts ->
    (* fold right so declarations bind the statements that follow them *)
    List.fold_right
      (fun st acc ->
        match st.s with
        | Decl (_, x, init) ->
          SS.union
            (match init with Some e -> expr_vars e | None -> SS.empty)
            (SS.remove x acc)
        | _ -> SS.union (stmt_free_vars st) acc)
      stmts SS.empty
  | Pragma (_, body) -> stmt_free_vars body

(* Variables whose address is taken explicitly with &x inside a statement. *)
let rec addr_taken_vars st =
  let rec of_expr e =
    match e.e with
    | Unary (Addr, { e = Ident x; _ }) -> SS.singleton x
    | Int_lit _ | Float_lit _ | Ident _ -> SS.empty
    | Unary (_, a) | Cast (_, a) -> of_expr a
    | Binary (_, a, b) | Assign (a, b) | Op_assign (_, a, b) | Index (a, b) ->
      SS.union (of_expr a) (of_expr b)
    | Call (_, args) -> List.fold_left (fun s a -> SS.union s (of_expr a)) SS.empty args
    | Cond (c, a, b) -> SS.union (of_expr c) (SS.union (of_expr a) (of_expr b))
  in
  match st.s with
  | Decl (_, _, Some e) | Expr e -> of_expr e
  | Decl (_, _, None) | Break | Continue | Return None -> SS.empty
  | Return (Some e) -> of_expr e
  | If (c, t, f) ->
    SS.union (of_expr c)
      (SS.union (addr_taken_vars t)
         (match f with Some f -> addr_taken_vars f | None -> SS.empty))
  | While (c, body) -> SS.union (of_expr c) (addr_taken_vars body)
  | For (init, cond, step, body) ->
    let of_opt = function Some e -> of_expr e | None -> SS.empty in
    let of_init = function Some st -> addr_taken_vars st | None -> SS.empty in
    SS.union (of_init init) (SS.union (of_opt cond) (SS.union (of_opt step) (addr_taken_vars body)))
  | Block stmts -> List.fold_left (fun s st -> SS.union s (addr_taken_vars st)) SS.empty stmts
  | Pragma (_, body) -> addr_taken_vars body

(* Compile + optimize + simulate one proxy application under one build
   configuration, collecting the metrics the paper reports. *)

type metrics = {
  cycles : int;
  smem_bytes : int;
  registers : int;
  heap_high_water : int;
  instructions : int;
  barriers : int;
  atomics : int;
  divergent_branches : int;
  indirect_calls : int;
  runtime_calls : int;
  checksum : float option;  (* the app's traced result, for cross-checking *)
  report : Openmpopt.Pass_manager.report option;
  kernel_stats : Gpusim.Interp.launch_stats list;  (* oldest first *)
  trace : Observe.Trace.t option;  (* present when run with [with_trace] *)
}

type outcome = Ok of metrics | Oom of string | Error of string

type measurement = { app : string; config : Config.t; outcome : outcome }

let compile_for ?trace (config : Config.t) (app : Proxyapps.App.t)
    (scale : Proxyapps.App.scale) =
  let file = app.Proxyapps.App.name ^ ".c" in
  match config.Config.build with
  | Config.Llvm12 ->
    let src = app.Proxyapps.App.omp_source scale in
    (Frontend.Codegen.compile ~scheme:Frontend.Codegen.Legacy ~file src, None)
  | Config.Dev_noopt ->
    let src = app.Proxyapps.App.omp_source scale in
    (Frontend.Codegen.compile ~scheme:Frontend.Codegen.Simplified ~file src, None)
  | Config.Dev options ->
    let src = app.Proxyapps.App.omp_source scale in
    let m = Frontend.Codegen.compile ~scheme:Frontend.Codegen.Simplified ~file src in
    let report = Openmpopt.Pass_manager.run ~options ?trace m in
    (m, Some report)
  | Config.Cuda ->
    let src = app.Proxyapps.App.cuda_source scale in
    (Frontend.Codegen.compile ~scheme:Frontend.Codegen.Cuda ~file src, None)

let checksum_of_trace sim =
  match Gpusim.Interp.trace_values sim with
  | [ Gpusim.Rvalue.F v ] -> Some v
  | [ Gpusim.Rvalue.I v ] -> Some (Int64.to_float v)
  | _ -> None

let run ?(machine = Gpusim.Machine.bench_machine) ?(scale = Proxyapps.App.Bench)
    ?(with_trace = false) (app : Proxyapps.App.t) (config : Config.t) : measurement =
  let trace = if with_trace then Some (Observe.Trace.create ()) else None in
  let outcome =
    match compile_for ?trace config app scale with
    | exception e -> Error (Printexc.to_string e)
    | m, report -> (
      match Ir.Verify.check m with
      | Result.Error msg -> Error ("verifier: " ^ msg)
      | Result.Ok () -> (
        let sim = Gpusim.Interp.create machine m in
        match Gpusim.Interp.run_host sim with
        | exception Gpusim.Mem.Out_of_memory msg -> Oom msg
        | exception e -> Error (Printexc.to_string e)
        | () ->
          let stats = sim.Gpusim.Interp.kernel_stats in
          let sum f = List.fold_left (fun acc s -> acc + f s) 0 stats in
          Ok
            {
              cycles = Gpusim.Interp.total_kernel_cycles sim;
              smem_bytes = Gpusim.Interp.max_shared_bytes sim;
              registers = Gpusim.Interp.max_registers sim;
              heap_high_water =
                List.fold_left
                  (fun acc (s : Gpusim.Interp.launch_stats) ->
                    max acc s.heap_high_water)
                  0 stats;
              instructions = sum (fun s -> s.Gpusim.Interp.instructions);
              barriers = sum (fun s -> s.Gpusim.Interp.barriers);
              atomics =
                sum (fun s ->
                    s.Gpusim.Interp.atomics_global + s.Gpusim.Interp.atomics_shared);
              divergent_branches = sum (fun s -> s.Gpusim.Interp.divergent_branches);
              indirect_calls = sum (fun s -> s.Gpusim.Interp.indirect_calls);
              runtime_calls = sum (fun s -> s.Gpusim.Interp.runtime_calls);
              checksum = checksum_of_trace sim;
              report;
              kernel_stats = List.rev stats;
              trace;
            }))
  in
  { app = app.Proxyapps.App.name; config; outcome }

(* Run a list of configurations for one app; the result list is in config
   order. *)
let run_configs ?machine ?scale ?with_trace app configs =
  List.map (fun config -> run ?machine ?scale ?with_trace app config) configs

(* Relative performance versus a baseline measurement (the paper normalizes
   to LLVM 12): >1 means faster than the baseline. *)
let relative ~baseline m =
  match (baseline.outcome, m.outcome) with
  | Ok b, Ok x when x.cycles > 0 -> Some (float_of_int b.cycles /. float_of_int x.cycles)
  | _ -> None

(* One measurement as a machine-readable perf record (bench/main.ml appends
   these to BENCH_observe.json). *)
let json_of_measurement (m : measurement) : Observe.Json.t =
  let base =
    [
      ("app", Observe.Json.String m.app);
      ("config", Observe.Json.String m.config.Config.label);
    ]
  in
  match m.outcome with
  | Oom msg ->
    Observe.Json.Obj
      (base
      @ [ ("outcome", Observe.Json.String "oom"); ("error", Observe.Json.String msg) ])
  | Error msg ->
    Observe.Json.Obj
      (base
      @ [
          ("outcome", Observe.Json.String "error"); ("error", Observe.Json.String msg);
        ])
  | Ok x ->
    Observe.Json.Obj
      (base
      @ [
          ("outcome", Observe.Json.String "ok");
          ("cycles", Observe.Json.Int x.cycles);
          ("smem_bytes", Observe.Json.Int x.smem_bytes);
          ("registers", Observe.Json.Int x.registers);
          ("heap_high_water", Observe.Json.Int x.heap_high_water);
          ("instructions", Observe.Json.Int x.instructions);
          ("barriers", Observe.Json.Int x.barriers);
          ("atomics", Observe.Json.Int x.atomics);
          ("divergent_branches", Observe.Json.Int x.divergent_branches);
          ("indirect_calls", Observe.Json.Int x.indirect_calls);
          ("runtime_calls", Observe.Json.Int x.runtime_calls);
          ( "checksum",
            match x.checksum with
            | Some c -> Observe.Json.Float c
            | None -> Observe.Json.Null );
          ( "report",
            match x.report with
            | Some r -> Openmpopt.Pass_manager.report_to_json r
            | None -> Observe.Json.Null );
          ( "kernels",
            Observe.Json.List (List.map Gpusim.Stats.json_of_launch x.kernel_stats) );
          ( "passes",
            match x.trace with
            | Some tr -> Observe.Trace.to_json tr
            | None -> Observe.Json.List [] );
        ])

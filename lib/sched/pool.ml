(* Work-stealing domain pool.

   One mutex guards all scheduler state (the per-worker deques and the
   counters).  Our jobs are whole compile+optimize+simulate pipelines —
   milliseconds to seconds each — so a scheduler-level lock is invisible in
   profiles; what matters is the work-stealing *shape*: owners pop
   newest-first from their own deque (locality: a just-submitted batch stays
   warm), thieves take the oldest job of a victim (the one the owner would
   reach last). *)

(* A deque as a front/back list pair; every operation runs under the pool
   mutex, so no per-deque synchronization is needed. *)
module Deque = struct
  type 'a t = { mutable front : 'a list; mutable back : 'a list }
  (* front holds oldest-first, back holds newest-first *)

  let create () = { front = []; back = [] }
  let push_newest d x = d.back <- x :: d.back

  let pop_newest d =
    match d.back with
    | x :: rest ->
      d.back <- rest;
      Some x
    | [] -> (
      (* move front (oldest-first) to back (newest-first) *)
      match List.rev d.front with
      | [] -> None
      | x :: rest ->
        d.front <- [];
        d.back <- rest;
        Some x)

  let pop_oldest d =
    match d.front with
    | x :: rest ->
      d.front <- rest;
      Some x
    | [] -> (
      match List.rev d.back with
      | [] -> None
      | x :: rest ->
        d.back <- [];
        d.front <- rest;
        Some x)
end

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable fstate : 'a state;
}

(* Jobs erase their result type: the closure fulfils its own future. *)
type job = unit -> unit

type stats = { submitted : int; executed : int; stolen : int; max_pending : int }

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;  (* workers wait here for jobs *)
  space_available : Condition.t;  (* submitters wait here under backpressure *)
  deques : job Deque.t array;
  queue_capacity : int;
  mutable pending : int;  (* queued, not yet started *)
  mutable next_deque : int;  (* round-robin submission cursor *)
  mutable shutting_down : bool;
  mutable submitted : int;
  mutable executed : int;
  mutable stolen : int;
  mutable max_pending : int;
  mutable workers : unit Domain.t list;
}

let domain_count t = Array.length t.deques

(* Take a job for worker [i]: own deque newest-first, then steal the oldest
   job from the first non-empty sibling.  Caller holds the mutex. *)
let try_take t i =
  match Deque.pop_newest t.deques.(i) with
  | Some j -> Some j
  | None ->
    let n = Array.length t.deques in
    let rec scan k =
      if k = n then None
      else
        let victim = (i + k) mod n in
        match Deque.pop_oldest t.deques.(victim) with
        | Some j ->
          t.stolen <- t.stolen + 1;
          Some j
        | None -> scan (k + 1)
    in
    scan 1

let worker_loop t i =
  Mutex.lock t.mutex;
  let rec next () =
    match try_take t i with
    | Some job ->
      t.pending <- t.pending - 1;
      Condition.signal t.space_available;
      Mutex.unlock t.mutex;
      job ();
      Mutex.lock t.mutex;
      next ()
    | None ->
      if t.shutting_down then Mutex.unlock t.mutex
      else begin
        Condition.wait t.work_available t.mutex;
        next ()
      end
  in
  next ()

let create ?queue_capacity ~domains () =
  let domains = max 1 domains in
  let queue_capacity =
    match queue_capacity with Some c -> max 1 c | None -> 4 * domains
  in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      space_available = Condition.create ();
      deques = Array.init domains (fun _ -> Deque.create ());
      queue_capacity;
      pending = 0;
      next_deque = 0;
      shutting_down = false;
      submitted = 0;
      executed = 0;
      stolen = 0;
      max_pending = 0;
      workers = [];
    }
  in
  t.workers <- List.init domains (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let fulfil fut result =
  Mutex.lock fut.fmutex;
  fut.fstate <- result;
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.fmutex

let submit t f =
  let fut = { fmutex = Mutex.create (); fcond = Condition.create (); fstate = Pending } in
  (* [executed] is bumped before the future is fulfilled, so any stats read
     that follows an [await] of this job already counts it. *)
  let job () =
    let result =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mutex;
    t.executed <- t.executed + 1;
    Mutex.unlock t.mutex;
    fulfil fut result
  in
  Mutex.lock t.mutex;
  if t.shutting_down then begin
    Mutex.unlock t.mutex;
    invalid_arg "Sched.Pool.submit: pool is shut down"
  end;
  while t.pending >= t.queue_capacity do
    Condition.wait t.space_available t.mutex
  done;
  Deque.push_newest t.deques.(t.next_deque) job;
  t.next_deque <- (t.next_deque + 1) mod Array.length t.deques;
  t.pending <- t.pending + 1;
  t.submitted <- t.submitted + 1;
  if t.pending > t.max_pending then t.max_pending <- t.pending;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex;
  fut

let await fut =
  Mutex.lock fut.fmutex;
  while fut.fstate = Pending do
    Condition.wait fut.fcond fut.fmutex
  done;
  let st = fut.fstate in
  Mutex.unlock fut.fmutex;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

(* OCaml's Condition has no timed wait, so the watchdog polls.  The poll
   interval (5ms) is invisible against jobs that run for milliseconds to
   seconds; only awaits that actually hit their deadline pay it. *)
let watchdog_poll_s = 0.005

let await_timeout fut ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec loop () =
    Mutex.lock fut.fmutex;
    let st = fut.fstate in
    Mutex.unlock fut.fmutex;
    match st with
    | Done v -> Some v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending ->
      if Unix.gettimeofday () >= deadline then None
      else begin
        Unix.sleepf watchdog_poll_s;
        loop ()
      end
  in
  loop ()

(* Results come back in input order regardless of execution interleaving:
   the futures list is built in order and awaited in order. *)
let map_list t f xs =
  let futures = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map await futures

let default_transient = function
  | Fault.Ompgpu_error.Error err -> Fault.Ompgpu_error.is_transient err
  | _ -> false

let map_list_guarded t ?watchdog_s ?(retries = 0) ?(backoff_s = 0.05)
    ?(is_transient = default_transient) f xs =
  let submit_attempt n x = submit t (fun () -> f ~attempt:n x) in
  (* first attempts are all in flight before any await: full parallelism on
     the happy path; retries are submitted on demand as failures surface *)
  let futures = List.map (submit_attempt 0) xs in
  let rec settle n x fut =
    let outcome =
      match watchdog_s with
      | None -> (
        match await fut with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      | Some seconds -> (
        match await_timeout fut ~seconds with
        | Some v -> Ok v
        | None ->
          (* the stalled job keeps its domain until it returns on its own;
             its eventual result is discarded *)
          let err =
            Fault.Ompgpu_error.make
              (Fault.Ompgpu_error.Timeout { seconds })
              ~phase:Fault.Ompgpu_error.Scheduling
              (Printf.sprintf "job exceeded its %gs watchdog (attempt %d)" seconds
                 (n + 1))
          in
          Error (Fault.Ompgpu_error.Error err, Printexc.get_callstack 0)
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    match outcome with
    | Ok v -> Ok v
    | Error (e, _) when n < retries && is_transient e ->
      Unix.sleepf (backoff_s *. float_of_int (1 lsl n));
      settle (n + 1) x (submit_attempt (n + 1) x)
    | Error _ as failed -> failed
  in
  List.map2 (settle 0) xs futures

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      submitted = t.submitted;
      executed = t.executed;
      stolen = t.stolen;
      max_pending = t.max_pending;
    }
  in
  Mutex.unlock t.mutex;
  s

let shutdown t =
  Mutex.lock t.mutex;
  if t.shutting_down then Mutex.unlock t.mutex
  else begin
    t.shutting_down <- true;
    Condition.broadcast t.work_available;
    Condition.broadcast t.space_available;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?queue_capacity ~domains f =
  let t = create ?queue_capacity ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

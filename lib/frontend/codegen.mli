(** MiniOMP → MiniIR code generation, modeled after Clang's OpenMP device
    lowering (paper Section IV-A).

    The generator emits the same runtime-call shapes the optimizer pattern
    matches on: [__kmpc_target_init] bracketing with an explicit worker
    state machine for generic-mode kernels, [__kmpc_parallel_51] region
    launches with outlined functions, and per-scheme globalization of
    escaping locals. *)

exception Error of string * Support.Loc.t

(** Globalization scheme selecting which compiler era to model:

    - [Simplified]: the paper / LLVM 13 (Fig. 4c): one
      [__kmpc_alloc_shared]/[__kmpc_free_shared] pair per escaping local,
      in every execution mode.  Correct; relies on the middle end to
      recover performance.
    - [Legacy]: LLVM 12 (Fig. 4b): locals aggregated into one runtime
      allocation behind an opaque execution-mode check; SPMD-mode kernels
      skip globalization entirely — the unsound fast path that miscompiles
      the paper's Figure 3.
    - [Cuda]: kernel-language semantics; no globalization, no runtime glue
      (used for the CUDA watermark builds). *)
type scheme = Simplified | Legacy | Cuda

val scheme_name : scheme -> string

type options = { scheme : scheme; module_name : string }

val run : options -> Ast.program -> Ir.Irmod.t
(** Lower a parsed program.  The resulting module contains the device
    runtime declarations, the per-scheme runtime glue, one kernel function
    per [target] construct (named [__omp_offloading_<fn>_l<line>_<n>]), one
    outlined function per parallel region ([__omp_outlined__<n>]), and a
    host [main].  @raise Error on semantic errors. *)

val compile : ?scheme:scheme -> file:string -> string -> Ir.Irmod.t
(** Parse and lower in one step.
    @raise Cparse.Parse_error / Lexer.Lex_error / Error. *)

(* Third wave: front-end corners, simulator isolation properties, and
   harness rendering details. *)

let run = Helpers.run_trace

(* ------------------------------------------------------------------ *)
(* Front-end corners                                                   *)
(* ------------------------------------------------------------------ *)

let test_while_in_kernel () =
  Helpers.assert_same_trace
    ~schemes:[ Frontend.Codegen.Simplified; Frontend.Codegen.Legacy ]
    ~option_sets:Helpers.all_opt_variants
    {|
long Out[8];
int main() {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (int i = 0; i < 8; i++) {
    int x = i;
    int steps = 0;
    while (x > 1) {
      if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
      steps++;
    }
    Out[i] = steps;
  }
  for (int i = 0; i < 8; i++) { trace(Out[i]); }
  return 0;
}
|}

let test_clause_with_spaces () =
  let m =
    Helpers.compile
      {|
double A[4];
int main() {
  #pragma omp target teams distribute parallel for num_teams (3) thread_limit( 4 )
  for (int i = 0; i < 4; i++) { A[i] = 1.0; }
  return 0;
}
|}
  in
  match Ir.Irmod.kernels m with
  | [ k ] ->
    let info = Option.get k.Ir.Func.kernel in
    Alcotest.(check (option int)) "teams" (Some 3) info.Ir.Func.num_teams;
    Alcotest.(check (option int)) "threads" (Some 4) info.Ir.Func.num_threads
  | _ -> Alcotest.fail "one kernel expected"

let test_shadowing_scopes () =
  Alcotest.check Helpers.trace_testable "inner shadows outer"
    [ "i:1"; "i:2"; "i:99" ]
    (List.sort String.compare
       (run
          {|
int main() {
  int x = 1;
  {
    int x = 99;
    trace(x);
  }
  trace(x);
  x = x + 1;
  trace(x);
  return 0;
}
|}))

let test_pointer_walks () =
  Alcotest.check Helpers.trace_testable "pointer increments"
    [ "f:10"; "f:30" ]
    (run
       {|
double G[4];
int main() {
  G[0] = 10.0; G[1] = 20.0; G[2] = 30.0;
  double* p = G;
  trace_f64(*p);
  p = p + 2;
  trace_f64(*p);
  return 0;
}
|})

let test_multiple_kernels_one_program () =
  Alcotest.check Helpers.trace_testable "two kernels compose"
    [ "f:12" ]
    (run
       {|
double A[4];
int main() {
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(4)
  for (int i = 0; i < 4; i++) { A[i] = (double)i; }
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(4)
  for (int i = 0; i < 4; i++) { A[i] = A[i] * 2.0; }
  double s = 0.0;
  for (int i = 0; i < 4; i++) { s += A[i]; }
  trace_f64(s);
  return 0;
}
|});
  let m =
    Helpers.compile
      {|
double A[2];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(2)
  { A[0] = 1.0; }
  #pragma omp target teams num_teams(1) thread_limit(2)
  { A[1] = 2.0; }
  return 0;
}
|}
  in
  Alcotest.(check int) "two kernel functions" 2 (List.length (Ir.Irmod.kernels m))

let test_capture_written_scalar_shared_semantics () =
  (* a scalar captured by a (non-combined) parallel region is shared: the
     region's writes are visible after *)
  Alcotest.check Helpers.trace_testable "shared capture write-back"
    [ "f:4" ]
    (run
       {|
double Out[1];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(4)
  {
    double acc = 0.0;
    #pragma omp parallel
    {
      #pragma omp atomic
      acc += 1.0;
    }
    Out[0] = acc;
  }
  trace_f64(Out[0]);
  return 0;
}
|})

let test_combined_firstprivate_semantics () =
  (* in the combined construct scalars are firstprivate: writes inside the
     region do not leak back *)
  Alcotest.check Helpers.trace_testable "firstprivate copy"
    [ "f:5" ]
    (run
       {|
double Out[4];
int main() {
  double seed = 5.0;
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(4)
  for (int i = 0; i < 4; i++) {
    seed = seed + 100.0;   // modifies the thread's private copy only
    Out[i] = seed;
  }
  trace_f64(5.0);  // host copy untouched by the device (by-value capture)
  return 0;
}
|})

let test_extern_decl_callable_check () =
  (* calling a declared-but-undefined function traps at simulation time *)
  let m =
    Helpers.compile
      {|
extern double mystery(double x);
int main() {
  trace_f64(mystery(1.0));
  return 0;
}
|}
  in
  match Helpers.simulate m with
  | exception Gpusim.Rvalue.Sim_error _ -> ()
  | _ -> Alcotest.fail "expected a trap on an external call"

(* ------------------------------------------------------------------ *)
(* Simulator isolation properties                                      *)
(* ------------------------------------------------------------------ *)

let test_team_shared_isolation () =
  (* HeapToShared globals are per-team: two teams accumulating into the same
     "shared" variable never interfere *)
  let src =
    {|
double Out[2];
int main() {
  #pragma omp target teams distribute num_teams(2) thread_limit(4)
  for (int t = 0; t < 2; t++) {
    double team_acc = 0.0;
    #pragma omp parallel for
    for (int j = 0; j < 4; j++) {
      #pragma omp atomic
      team_acc += (double)(t + 1);
    }
    Out[t] = team_acc;
  }
  trace_f64(Out[0]);
  trace_f64(Out[1]);
  return 0;
}
|}
  in
  Alcotest.check Helpers.trace_testable "per-team accumulators"
    [ "f:4"; "f:8" ]
    (run ~options:Openmpopt.Pass_manager.default_options src)

let test_occupancy_monotone () =
  let cycles regs =
    int_of_float
      (1000.0 *. Gpusim.Interp.occupancy_factor Gpusim.Machine.v100_like regs)
  in
  Alcotest.(check bool) "more registers, no faster" true
    (cycles 32 <= cycles 64 && cycles 64 <= cycles 128 && cycles 128 <= cycles 255)

let test_shared_stack_reuse_across_iterations () =
  (* per-iteration allocations are freed at scope end: the shared stack high
     water must not grow with the iteration count *)
  let sim_for n =
    let m =
      Helpers.compile
        (Printf.sprintf
           {|
double Out[4];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(2)
  {
    for (int i = 0; i < %d; i++) {
      double v = (double)i;
      #pragma omp parallel
      {
        #pragma omp atomic
        Out[0] += v;
      }
    }
  }
  return 0;
}
|}
           n)
    in
    let sim = Helpers.simulate m in
    (List.hd sim.Gpusim.Interp.kernel_stats).Gpusim.Interp.shared_bytes
  in
  Alcotest.(check int) "shared high water independent of trip count" (sim_for 2)
    (sim_for 10)

let test_cuda_kernel_attr_lowers_init_cost () =
  let cycles scheme =
    let m =
      Frontend.Codegen.compile ~scheme ~file:"t.c"
        {|
double A[4];
int main() {
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(4)
  for (int i = 0; i < 4; i++) { A[i] = (double)i; }
  return 0;
}
|}
    in
    let sim = Helpers.simulate m in
    Gpusim.Interp.total_kernel_cycles sim
  in
  Alcotest.(check bool) "cuda launch cheaper than unoptimized OpenMP" true
    (cycles Frontend.Codegen.Cuda < cycles Frontend.Codegen.Simplified)

(* ------------------------------------------------------------------ *)
(* Harness details                                                     *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_fig10_renders_all_builds () =
  let out =
    Harness.Tables.fig10 ~machine:Gpusim.Machine.test_machine ~scale:Proxyapps.App.Tiny ()
  in
  List.iter
    (fun label -> Alcotest.(check bool) label true (contains out label))
    [ "CUDA (Clang Dev)"; "LLVM 12"; "LLVM Dev 0" ]

let test_ablations_render () =
  let out =
    Harness.Tables.ablations ~machine:Gpusim.Machine.test_machine
      ~scale:Proxyapps.App.Tiny ()
  in
  Alcotest.(check bool) "has grouping variant" true (contains out "no guard grouping");
  Alcotest.(check bool) "no errors" false (contains out "ERROR")

let test_runner_reports_compile_errors () =
  let broken : Proxyapps.App.t =
    {
      Proxyapps.App.name = "broken";
      description = "intentionally invalid";
      omp_source = (fun _ -> "int main( { }");
      cuda_source = (fun _ -> "int main( { }");
      expected_h2s = 0;
      expected_h2shared = 0;
      expected_spmdized = false;
    }
  in
  let m =
    Harness.Runner.run ~machine:Gpusim.Machine.test_machine ~scale:Proxyapps.App.Tiny
      broken Harness.Config.dev0
  in
  match m.Harness.Runner.outcome with
  | Harness.Runner.Err _ -> ()
  | _ -> Alcotest.fail "expected an Err outcome"

let suite =
  [
    Alcotest.test_case "while in kernel (collatz)" `Quick test_while_in_kernel;
    Alcotest.test_case "clauses with spaces" `Quick test_clause_with_spaces;
    Alcotest.test_case "shadowing scopes" `Quick test_shadowing_scopes;
    Alcotest.test_case "pointer walks" `Quick test_pointer_walks;
    Alcotest.test_case "multiple kernels" `Quick test_multiple_kernels_one_program;
    Alcotest.test_case "shared capture semantics" `Quick
      test_capture_written_scalar_shared_semantics;
    Alcotest.test_case "combined firstprivate semantics" `Quick
      test_combined_firstprivate_semantics;
    Alcotest.test_case "external call traps" `Quick test_extern_decl_callable_check;
    Alcotest.test_case "team shared isolation" `Quick test_team_shared_isolation;
    Alcotest.test_case "occupancy monotone" `Quick test_occupancy_monotone;
    Alcotest.test_case "shared stack reuse" `Quick test_shared_stack_reuse_across_iterations;
    Alcotest.test_case "cuda init cost" `Quick test_cuda_kernel_attr_lowers_init_cost;
    Alcotest.test_case "fig10 renders" `Slow test_fig10_renders_all_builds;
    Alcotest.test_case "ablations render" `Slow test_ablations_render;
    Alcotest.test_case "runner reports errors" `Quick test_runner_reports_compile_errors;
  ]

(* ------------------------------------------------------------------ *)
(* Wave 3b: extra corners                                              *)
(* ------------------------------------------------------------------ *)

let test_ternary_on_device () =
  Helpers.assert_same_trace
    ~schemes:[ Frontend.Codegen.Simplified; Frontend.Codegen.Legacy ]
    ~option_sets:Helpers.all_opt_variants
    {|
long Out[8];
int main() {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (int i = 0; i < 8; i++) {
    Out[i] = i % 2 == 0 ? i * 10 : i + 100;
  }
  for (int i = 0; i < 8; i++) { trace(Out[i]); }
  return 0;
}
|}

let test_hex_float_roundtrip () =
  (* the printer emits %h hex floats; the parser must read them exactly *)
  let values = [ 0.1; -0.0; 1e-300; 1.7976931348623157e308; 3.14159265358979 ] in
  List.iter
    (fun v ->
      let m = Ir.Irmod.create () in
      let f = Ir.Func.make "f" ~ret_ty:Ir.Types.F64 ~params:[] in
      Ir.Irmod.add_func m f;
      let b = Ir.Builder.create f in
      Ir.Builder.position_at_end b (Ir.Builder.new_block b "entry");
      let x = Ir.Builder.bin b Ir.Instr.Fadd Ir.Types.F64 (Ir.Value.f64 v) (Ir.Value.f64 0.0) in
      Ir.Builder.ret b (Some x);
      let m2 = Ir.Parser.parse_module (Ir.Printer.module_to_string m) in
      let f2 = Ir.Irmod.find_func_exn m2 "f" in
      let found = ref false in
      Ir.Func.iter_instrs f2 ~g:(fun _ i ->
          match i.Ir.Instr.kind with
          | Ir.Instr.Bin (_, _, Ir.Value.Const (Ir.Value.CFloat (_, v')), _) ->
            if Int64.bits_of_float v' = Int64.bits_of_float v then found := true
          | _ -> ());
      Alcotest.(check bool) (Printf.sprintf "float %h preserved bit-exactly" v) true !found)
    values

let test_escape_through_select () =
  let m =
    Ir.Parser.parse_module
      {|module "sel"
declare ptr(generic) @__kmpc_alloc_shared(i64)
declare void @__kmpc_free_shared(ptr(generic), i64)
global external @leak : ptr(generic) in global = zeroinit
define internal void @f(%arg0 : i1) {
entry:
  %0 = call ptr(generic) @__kmpc_alloc_shared(i64 8)
  %1 = select ptr(generic) %arg0, %0, null(generic)
  store ptr(generic) %1, @leak
  call void @__kmpc_free_shared(%0, i64 8)
  ret
}
|}
  in
  let ctx = Analysis.Escape.create m in
  let f = Ir.Irmod.find_func_exn m "f" in
  let alloc =
    Option.get
      (Ir.Func.fold_instrs f ~init:None ~g:(fun acc _ i ->
           match i.Ir.Instr.kind with
           | Ir.Instr.Call (_, Ir.Instr.Direct "__kmpc_alloc_shared", _) -> Some i
           | _ -> acc))
  in
  Alcotest.(check bool) "select-derived pointer escapes" false
    (Analysis.Escape.is_no_escape (Analysis.Escape.pointer_escapes ctx f alloc))

let test_legacy_generic_kernel_pushes_directly () =
  (* in a statically-generic kernel main, legacy pushes without a mode check *)
  let m =
    Frontend.Codegen.compile ~scheme:Frontend.Codegen.Legacy ~file:"t.c"
      {|
double Out[2];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(2)
  {
    double v = 1.0;
    #pragma omp parallel
    {
      #pragma omp atomic
      v += 1.0;
    }
    Out[0] = v;
  }
  return 0;
}
|}
  in
  let kernel = List.hd (Ir.Irmod.kernels m) in
  let count name =
    Ir.Func.fold_instrs kernel ~init:0 ~g:(fun acc _ i ->
        if Ir.Instr.callee_name i = Some name then acc + 1 else acc)
  in
  Alcotest.(check bool) "push present in kernel main" true
    (count "__kmpc_data_sharing_push_stack" >= 1);
  Alcotest.(check int) "no mode check in statically generic code" 0
    (count "__kmpc_data_sharing_mode_check")

let test_fig10_shape_generic_apps () =
  (* LLVM 12 uses more registers and shared memory than Dev on the
     generic-mode apps (Figure 10's qualitative shape) *)
  let machine = Gpusim.Machine.test_machine in
  let scale = Proxyapps.App.Tiny in
  List.iter
    (fun name ->
      let app = Proxyapps.Apps.find_exn name in
      let get cfg =
        match (Harness.Runner.run ~machine ~scale app cfg).Harness.Runner.outcome with
        | Harness.Runner.Ok x -> x
        | _ -> Alcotest.failf "%s should run" name
      in
      let legacy = get Harness.Config.llvm12 in
      let dev = get Harness.Config.dev0 in
      Alcotest.(check bool) (name ^ ": legacy regs >= dev regs") true
        (legacy.Harness.Runner.registers >= dev.Harness.Runner.registers);
      Alcotest.(check bool) (name ^ ": legacy cycles > dev cycles") true
        (legacy.Harness.Runner.cycles > dev.Harness.Runner.cycles))
    [ "su3bench"; "miniqmc" ]

let test_local_stack_overflow_traps () =
  (* the cuda scheme keeps arrays on the thread stack, so deep recursion
     exhausts the per-thread local arena *)
  let m =
    Helpers.compile ~scheme:Frontend.Codegen.Cuda
      {|
static double deep(int n) {
  double buf[512];
  buf[0] = (double)n;
  if (n <= 0) { return buf[0]; }
  return deep(n - 1) + buf[0];
}
int main() {
  trace_f64(deep(100));
  return 0;
}
|}
  in
  let tiny_stack =
    { Gpusim.Machine.test_machine with Gpusim.Machine.local_bytes_per_thread = 16 * 1024 }
  in
  match Helpers.simulate ~machine:tiny_stack m with
  | exception Gpusim.Rvalue.Sim_error _ -> ()
  | _ -> Alcotest.fail "expected a local stack overflow trap"

let suite =
  suite
  @ [
      Alcotest.test_case "ternary on device" `Quick test_ternary_on_device;
      Alcotest.test_case "hex float roundtrip" `Quick test_hex_float_roundtrip;
      Alcotest.test_case "escape through select" `Quick test_escape_through_select;
      Alcotest.test_case "legacy generic pushes directly" `Quick
        test_legacy_generic_kernel_pushes_directly;
      Alcotest.test_case "fig10 shape on generic apps" `Slow test_fig10_shape_generic_apps;
      Alcotest.test_case "local stack overflow traps" `Quick test_local_stack_overflow_traps;
    ]

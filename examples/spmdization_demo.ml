(* SPMDzation demo: the paper's Figure 7.

   A generic-mode region with side effects in the sequential part,
   interleaved with SPMD-amenable code.  The demo shows (a) the kernel being
   converted to SPMD mode, (b) the guard-grouping optimization reducing the
   number of guarded regions and barriers, and (c) the cycle cost of each
   variant on the simulator.

     dune exec examples/spmdization_demo.exe *)

let figure7 =
  {|
double A[4];
double B[4];
double Out[16];
int main() {
  int n = 16;
  #pragma omp target teams distribute num_teams(2) thread_limit(8)
  for (int w = 0; w < n; w++) {
    A[0] = (double)w;          // side effect: needs a guard in SPMD mode
    B[0] = (double)(w * 2);    // second side effect: same guarded region
    #pragma omp parallel for
    for (int i = 0; i < 8; i++) {
      #pragma omp atomic
      Out[w % 16] += A[0] * 0.5 + B[0] * 0.25 + (double)i;
    }
  }
  double s = 0.0;
  for (int i = 0; i < 16; i++) { s += Out[i]; }
  trace_f64(s);
  return 0;
}
|}

let build label options =
  let m = Frontend.Codegen.compile ~file:"figure7.c" figure7 in
  let report = Openmpopt.Pass_manager.run ~options m in
  (match Ir.Verify.check m with Ok () -> () | Error e -> failwith e);
  let sim = Gpusim.Interp.create Gpusim.Machine.test_machine m in
  Gpusim.Interp.run_host sim;
  let stats = List.hd sim.Gpusim.Interp.kernel_stats in
  Fmt.pr "%-28s spmdized=%d guards=%-3d barriers=%-4d cycles=%-8d checksum=%a@." label
    report.Openmpopt.Pass_manager.spmdized report.Openmpopt.Pass_manager.guards
    stats.Gpusim.Interp.barriers stats.Gpusim.Interp.cycles
    (Fmt.list Gpusim.Rvalue.pp)
    (Gpusim.Interp.trace_values sim)

let () =
  let open Openmpopt.Pass_manager in
  Fmt.pr "== Figure 7: side-effect guarding during SPMDzation ==@.@.";
  build "generic (no SPMDzation)" { default_options with disable_spmdization = true };
  build "SPMD, naive guards" { default_options with disable_guard_grouping = true };
  build "SPMD, grouped guards" default_options;
  Fmt.pr
    "@.Grouping adjacent side effects shares one guarded region and one barrier@.\
     (compare the guards and barriers columns), exactly as in Fig. 7 of the paper.@."

(** Parser for the textual MiniIR form emitted by [Printer]. *)

exception Parse_error of string

val parse_module : string -> Irmod.t
(** @raise Parse_error with a description of the first syntax error. *)

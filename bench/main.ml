(* Benchmark harness: one Bechamel test per table and figure of the paper's
   evaluation, followed by the regeneration of every table at bench scale.

     dune exec bench/main.exe            # bechamel timings + all tables
     dune exec bench/main.exe -- tables  # tables only (faster)

   The bechamel micro-benchmarks time the full pipeline (compile + optimize
   + simulate) at tiny scale, so the numbers track the cost of regenerating
   each artifact; the tables themselves are produced at bench scale, which
   is where the paper's performance shapes hold. *)

open Bechamel
open Toolkit

let machine = Gpusim.Machine.bench_machine
let tiny = Proxyapps.App.Tiny

let run_config app config () =
  ignore (Harness.Runner.run ~machine ~scale:tiny (Proxyapps.Apps.find_exn app) config)

(* one test per figure/table of the evaluation section *)
let tests =
  [
    Test.make ~name:"fig9/opportunities"
      (Staged.stage (fun () -> ignore (Harness.Tables.fig9 ~machine ~scale:tiny ())));
    Test.make ~name:"fig10/xsbench" (Staged.stage (run_config "xsbench" Harness.Config.dev0));
    Test.make ~name:"fig10/rsbench" (Staged.stage (run_config "rsbench" Harness.Config.dev0));
    Test.make ~name:"fig10/su3bench" (Staged.stage (run_config "su3bench" Harness.Config.dev0));
    Test.make ~name:"fig10/miniqmc" (Staged.stage (run_config "miniqmc" Harness.Config.dev0));
    Test.make ~name:"fig11/xsbench"
      (Staged.stage (fun () ->
           ignore
             (Harness.Tables.fig11 ~machine ~scale:tiny (Proxyapps.Apps.find_exn "xsbench"))));
    Test.make ~name:"fig11/rsbench"
      (Staged.stage (fun () ->
           ignore
             (Harness.Tables.fig11 ~machine ~scale:tiny (Proxyapps.Apps.find_exn "rsbench"))));
    Test.make ~name:"fig11/su3bench"
      (Staged.stage (fun () ->
           ignore
             (Harness.Tables.fig11 ~machine ~scale:tiny (Proxyapps.Apps.find_exn "su3bench"))));
    Test.make ~name:"fig11/miniqmc"
      (Staged.stage (fun () ->
           ignore
             (Harness.Tables.fig11 ~machine ~scale:tiny (Proxyapps.Apps.find_exn "miniqmc"))));
    (* ablations called out in DESIGN.md *)
    Test.make ~name:"ablation/guard-grouping"
      (Staged.stage
         (run_config "su3bench"
            {
              Harness.Config.label = "no-grouping";
              build =
                Harness.Config.dev
                  {
                    Openmpopt.Pass_manager.default_options with
                    disable_guard_grouping = true;
                  };
            }));
    Test.make ~name:"ablation/internalization"
      (Staged.stage
         (run_config "xsbench"
            {
              Harness.Config.label = "no-internalization";
              build =
                Harness.Config.dev
                  {
                    Openmpopt.Pass_manager.default_options with
                    disable_internalization = true;
                  };
            }));
  ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) () in
  Fmt.pr "== Bechamel: time to regenerate each artifact (tiny scale) ==@.";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let result = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Fmt.pr "  %-28s %12.3f ms/run@." name (est /. 1e6)
          | _ -> Fmt.pr "  %-28s (no estimate)@." name)
        result)
    tests;
  Fmt.pr "@."

let tables () =
  let scale = Proxyapps.App.Bench in
  print_string (Harness.Tables.fig9 ~machine ~scale ());
  print_newline ();
  print_string (Harness.Tables.fig10 ~machine ~scale ());
  print_newline ();
  print_string (Harness.Tables.fig11_all ~machine ~scale ());
  print_newline ();
  print_string (Harness.Tables.pass_breakdown_all ~machine ~scale ());
  print_newline ();
  print_string (Harness.Tables.ablations ~machine ~scale ())

(* Machine-readable perf trajectory: every app at bench scale under the
   default developer build, with the pipeline trace attached, so future
   changes can be diffed against this file. *)
let observe_json path =
  let scale = Proxyapps.App.Bench in
  let records =
    List.map
      (fun app ->
        Harness.Runner.json_of_measurement
          (Harness.Runner.run ~machine ~scale ~with_trace:true app
             Harness.Config.dev0))
      Proxyapps.Apps.all
  in
  let json =
    Observe.Json.Obj
      [
        ("scale", Observe.Json.String "bench");
        ("config", Observe.Json.String Harness.Config.dev0.Harness.Config.label);
        ("measurements", Observe.Json.List records);
      ]
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Observe.Json.to_string json);
      Out_channel.output_char oc '\n');
  Fmt.pr "wrote %s@." path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if not (List.mem "tables" args) then benchmark ();
  tables ();
  observe_json "BENCH_observe.json"

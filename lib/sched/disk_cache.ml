(* Directory-backed blob cache.  No Unix dependency: Sys + channels are
   enough for mkdir-p (via repeated Sys.mkdir), atomic publish (write a
   unique temp file, Sys.rename over the destination) and lookup. *)

type t = {
  cache_dir : string;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()  (* lost a creation race *)
  end

let create ~dir =
  mkdir_p dir;
  {
    cache_dir = dir;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
  }

let dir t = t.cache_dir

(* keys are Cache.key digests, but sanitize anyway so a stray caller cannot
   escape the cache directory *)
let path_of t key =
  let safe =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
      key
  in
  Filename.concat t.cache_dir safe

let count_hit t ok =
  Mutex.lock t.mutex;
  if ok then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  Mutex.unlock t.mutex

let find t ~key =
  let path = path_of t key in
  if Sys.file_exists path then begin
    let data = In_channel.with_open_bin path In_channel.input_all in
    count_hit t true;
    Some data
  end
  else begin
    count_hit t false;
    None
  end

let store t ~key ~data =
  let path = path_of t key in
  (* Filename.temp_file picks a name unique across processes; the rename is
     same-directory, so the publish is atomic *)
  let tmp = Filename.temp_file ~temp_dir:t.cache_dir "sched-cache" ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc data);
  Sys.rename tmp path

let find_or_compute t ~key f =
  match find t ~key with
  | Some data -> data
  | None ->
    let data = f () in
    store t ~key ~data;
    data

let with_lock t f =
  Mutex.lock t.mutex;
  let v = f () in
  Mutex.unlock t.mutex;
  v

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)

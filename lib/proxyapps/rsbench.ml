(* RSBench: the multipole-representation cross-section lookup, the compute
   bound alternative to XSBench.  Seven locals are globalized by the
   front-end (Fig. 9: 7 / 0); without HeapToStack every thread allocates
   them from the device heap on each lookup, which reproduces the paper's
   out-of-memory failure of the unoptimized build (Fig. 11b). *)

let params = function
  | App.Tiny -> (64, 48, 3, 6, 4, 8)  (* poles, lookups, nuclides, windows, teams, threads *)
  | App.Bench -> (128, 512, 4, 4, 8, 64)

let source ~scale =
  let poles, lookups, nuclides, windows, teams, threads = params scale in
  Printf.sprintf
    {|
double pole_re[%d];
double pole_im[%d];
double results[%d];

static double lcg(long* seed) {
  seed[0] = (seed[0] * 1103515245 + 12345) %% 2147483648;
  return (double)(seed[0]) / 2147483648.0;
}

static void calculate_sig_t(double e, double* sigTfactors_re, double* sigTfactors_im) {
  for (int w = 0; w < 4; w++) {
    double phi = e * (double)(w + 1) * 3.14159265;
    sigTfactors_re[w] = cos(phi);
    sigTfactors_im[w] = 0.0 - sin(phi);
  }
}

static void pole_contrib(double e, int idx, double sTre, double sTim,
                         double inv_sqrt_e, double* acc) {
  double psi[2];
  double pr = pole_re[idx];
  double pi = pole_im[idx];
  psi[0] = pr * sTre - pi * sTim;
  psi[1] = pr * sTim + pi * sTre;
  acc[0] += psi[0] * inv_sqrt_e;
  acc[1] += psi[1] * inv_sqrt_e;
  acc[2] += psi[0] * psi[0] * 0.01;
  acc[3] += psi[1] * psi[1] * 0.01;
}

static void calculate_micro_xs(double e, int nuc, double* micro_xs,
                               double* sigTfactors_re, double* sigTfactors_im) {
  double acc[4];
  acc[0] = 0.0; acc[1] = 0.0; acc[2] = 0.0; acc[3] = 0.0;
  double inv_sqrt_e = 1.0 / sqrt(e + 0.000001);
  int per_window = %d / %d;
  for (int w = 0; w < %d; w++) {
    for (int p = 0; p < per_window; p++) {
      int idx = (w * per_window + p + nuc * 7) %% %d;
      pole_contrib(e, idx, sigTfactors_re[w %% 4], sigTfactors_im[w %% 4],
                   inv_sqrt_e, acc);
    }
  }
  micro_xs[0] = acc[0] + acc[2];
  micro_xs[1] = acc[1] + acc[3];
  micro_xs[2] = fabs(acc[0] - acc[3]);
  micro_xs[3] = fabs(acc[1] - acc[2]);
}

static void calculate_macro_xs(double e, double* macro_xs) {
  double micro_xs[4];
  double sigTfactors_re[4];
  double sigTfactors_im[4];
  for (int c = 0; c < 4; c++) { macro_xs[c] = 0.0; }
  calculate_sig_t(e, sigTfactors_re, sigTfactors_im);
  for (int n = 0; n < %d; n++) {
    calculate_micro_xs(e, n, micro_xs, sigTfactors_re, sigTfactors_im);
    for (int c = 0; c < 4; c++) {
      macro_xs[c] += micro_xs[c] * 0.25;
    }
  }
}

int main() {
  for (int i = 0; i < %d; i++) {
    pole_re[i] = (double)(i %% 31) * 0.03 + 0.2;
    pole_im[i] = (double)(i %% 17) * 0.05 + 0.1;
  }
  int n_lookups = %d;
  #pragma omp target teams distribute parallel for num_teams(%d) thread_limit(%d)
  for (int i = 0; i < n_lookups; i++) {
    long seed = i * 8121 + 28411;
    double e = lcg(&seed);
    double macro_xs[4];
    calculate_macro_xs(e, macro_xs);
    double m = 0.0;
    for (int c = 0; c < 4; c++) { m += macro_xs[c]; }
    results[i] = m;
  }
  double checksum = 0.0;
  for (int i = 0; i < n_lookups; i++) { checksum += results[i]; }
  trace_f64(checksum);
  return 0;
}
|}
    poles poles lookups poles windows windows poles nuclides poles lookups teams threads

let app : App.t =
  {
    App.name = "rsbench";
    description = "RSBench: multipole cross-section lookup (compute bound)";
    omp_source = (fun scale -> source ~scale);
    cuda_source = (fun scale -> source ~scale);
    expected_h2s = 7;
    expected_h2shared = 0;
    expected_spmdized = false;
  }

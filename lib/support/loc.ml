(* Source locations for MiniOMP programs and the remarks that reference them. *)

type t = { file : string; line : int; col : int }

let none = { file = "<unknown>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let is_none t = t.line = 0 && t.col = 0

let pp ppf t =
  if is_none t then Fmt.string ppf t.file
  else Fmt.pf ppf "%s:%d:%d" t.file t.line t.col

let to_string t = Fmt.str "%a" pp t

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

(* In-memory content-addressed cache; one mutex, accurate hit/miss
   accounting under concurrency. *)

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { mutex = Mutex.create (); table = Hashtbl.create 64; hits = 0; misses = 0 }

(* Frame every part with its length so ["ab"; "c"] and ["a"; "bc"] cannot
   collide, then fold the streaming hash — no buffer, no copy, one
   multiply per byte (Support.Hash64 replaced MD5 here; see its header). *)
let key parts =
  Support.Hash64.to_hex
    (List.fold_left
       (fun h p ->
         Support.Hash64.add_string (Support.Hash64.add_int h (String.length p)) p)
       Support.Hash64.empty parts)

let find_or_compute t ~key f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some v ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.mutex;
    v
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.mutex;
    let v = f () in
    Mutex.lock t.mutex;
    (* first insertion wins; concurrent computers of the same key produced
       equal values by the determinism contract *)
    let v =
      match Hashtbl.find_opt t.table key with
      | Some existing -> existing
      | None ->
        Hashtbl.replace t.table key v;
        v
    in
    Mutex.unlock t.mutex;
    v

(* Atomic overwrite: readers serialized on the same mutex observe either
   the old or the new value, never a torn entry.  The tier-upgrade path
   uses this to promote a fast-tier result to the full-pipeline one. *)
let replace t ~key v =
  Mutex.lock t.mutex;
  Hashtbl.replace t.table key v;
  Mutex.unlock t.mutex

(* Counter-neutral lookup: background maintenance (the upgrade worker)
   must not distort the request-path hit/miss accounting. *)
let peek t ~key =
  Mutex.lock t.mutex;
  let v = Hashtbl.find_opt t.table key in
  Mutex.unlock t.mutex;
  v

let with_lock t f =
  Mutex.lock t.mutex;
  let v = f () in
  Mutex.unlock t.mutex;
  v

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)

let hit_rate t =
  with_lock t (fun () ->
      let total = t.hits + t.misses in
      if total = 0 then 0. else float_of_int t.hits /. float_of_int total)

let length t = with_lock t (fun () -> Hashtbl.length t.table)

let reset_counters t =
  with_lock t (fun () ->
      t.hits <- 0;
      t.misses <- 0)

(** Directory-backed blob cache (the [--cache-dir] of [mompc]).

    One file per key under the cache directory, written atomically
    (temp file + rename), so concurrent writers of the same key — even
    across processes — leave a complete entry.  Keys must be filesystem-safe;
    use {!Cache.key} digests.

    Entries carry a digest header verified on every read.  A failing entry
    — torn write, disk corruption, an injected bit-flip — is moved to a
    [quarantine/] subdirectory, counted, reported through [on_corrupt], and
    treated as a miss: the cache recomputes, it never serves corrupt data. *)

type t

val create :
  ?injector:Fault.Injector.t ->
  ?on_corrupt:(key:string -> path:string -> unit) ->
  ?temp_age_s:float ->
  dir:string ->
  unit ->
  t
(** Creates [dir] (and missing parents) if needed.  [injector] arms the
    [Cache_corrupt] site: a firing {!store} flips one payload bit after
    digesting, so the entry fails verification on its next read.
    [on_corrupt] is called (with the key and the original path) whenever a
    read quarantines an entry — the driver surfaces it as a remark.

    Startup recovery: {!store} publishes via temp-file + rename, so a
    process dying between the two orphans a [.tmp] file forever.  [create]
    sweeps temps older than [temp_age_s] (default 600s — generous, so a
    live concurrent writer, whose temp exists for milliseconds, is never
    raced) into [quarantine/]. *)

val dir : t -> string

val find : t -> key:string -> string option

val store : t -> key:string -> data:string -> unit

val find_or_compute : t -> key:string -> (unit -> string) -> string

val hits : t -> int

val misses : t -> int

val corrupt : t -> int
(** Entries quarantined by failed verification since [create]. *)

val sweep_temps : ?max_age_s:float -> t -> int
(** Quarantine orphaned temp files older than [max_age_s] (default 600s)
    now; returns how many this call moved.  [create] already runs one
    sweep — this is for long-lived owners (the daemon) re-sweeping. *)

val swept : t -> int
(** Orphaned temp files quarantined since [create] (startup sweep
    included); surfaced in the daemon's stats JSON. *)

(** The one source of truth for the flag names, defaults and docs shared by
    [mompc], [mompd] and [run_experiments].

    Historically the three drivers drifted ([run_experiments] hand-parsed
    [-j]; cache/inject/stats flags existed only on [mompc]): every driver
    now assembles its command line from these terms, so a flag means the
    same thing, spells the same way and documents identically everywhere.
    The PR-4 deprecated aliases ([--domains], [--cache], [--stats],
    [--fault-inject]) completed their one-release grace period and were
    removed (docs/API.md migration table). *)

val jobs : int Cmdliner.Term.t
(** [-j N] / [--jobs N]: scheduler domains for batch work; default 1. *)

val cache_dir : string option Cmdliner.Term.t
(** [--cache-dir DIR]: content-addressed on-disk compilation cache. *)

val cache_max_bytes : int option Cmdliner.Term.t
(** [--cache-max-bytes BYTES]: byte quota on the disk cache (LRU-by-mtime
    eviction on store) and, for the daemon, an approximate-byte LRU cap
    on the in-memory result cache.  Unbounded when absent. *)

val cache_max_entries : int option Cmdliner.Term.t
(** [--cache-max-entries N]: entry-count cap on the caches (LRU
    eviction).  Unbounded when absent. *)

val inject : string list Cmdliner.Term.t
(** [--inject SITE[:RATE][:SEED]], repeatable.  Raw specs; validate with
    {!parse_injects}. *)

val parse_injects :
  string list -> (Fault.Injector.spec list, string list) result
(** Parse every spec; [Error msgs] lists each bad spec's message, in input
    order. *)

val stats_json : string option Cmdliner.Term.t
(** [--stats-json FILE]. *)

val trace : bool Cmdliner.Term.t
(** [--trace]: print the per-pass pipeline trace to stderr. *)

val retries : int Cmdliner.Term.t
(** [--retries N]: bounded retry on transient taxonomy codes; default 0. *)

val backoff : float Cmdliner.Term.t
(** [--backoff S]: base retry backoff, doubling per attempt; default 0.05. *)

val watchdog : float option Cmdliner.Term.t
(** [--watchdog S]: settle a hung job as a structured timeout (exit 24). *)

val backtrace : bool Cmdliner.Term.t
(** [--backtrace] (also [OMPGPU_BACKTRACE=1]): print captured backtraces
    under diagnostics. *)

val socket : ?default:string -> unit -> string option Cmdliner.Term.t
(** [--socket PATH]: the compile service's Unix-domain socket.  With
    [default], an absent flag yields [Some default]. *)

val tiny : bool Cmdliner.Term.t
(** [--tiny]: run proxy apps at Tiny scale (unit-test sized inputs). *)

(* Crash-only supervision of the serve loop (see the .mli). *)

module E = Fault.Ompgpu_error
module J = Observe.Json

type config = {
  server : Server.config;
  max_restarts : int;
  window_s : float;
  backoff_base_s : float;
  backoff_cap_s : float;
  log : string -> unit;
}

let default_config =
  {
    server = Server.default_config;
    max_restarts = 5;
    window_s = 10.;
    backoff_base_s = 0.05;
    backoff_cap_s = 1.0;
    log = ignore;
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  journal : (Journal.t * Journal.recovery) option;
  supervision : Server.supervision;
  mutex : Mutex.t;
  mutable current : Server.t option;
  mutable stopping : bool;
  mutable crash_times : float list;
}

let create cfg =
  (* Bind once, before the first incarnation: the listening socket (and
     its backlog) survives every serve-loop crash, so clients connecting
     during a restart queue instead of failing. *)
  let listen_fd = Server.bind_listener cfg.server.Server.socket_path in
  let supervision = Server.new_supervision () in
  let journal =
    match cfg.server.Server.state_dir with
    | None -> None
    | Some dir ->
      Some
        (Journal.open_ ?max_bytes:cfg.server.Server.journal_max_bytes
           ~on_rotate:(fun () -> supervision.Server.on_journal_rotate ())
           ~dir ())
  in
  {
    cfg;
    listen_fd;
    journal;
    supervision;
    mutex = Mutex.create ();
    current = None;
    stopping = false;
    crash_times = [];
  }

let supervision t = t.supervision
let recovery t =
  match t.journal with
  | Some (_, r) -> r
  | None -> Journal.empty_recovery

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let stop t =
  let server =
    locked t (fun () ->
        t.stopping <- true;
        t.current)
  in
  Option.iter Server.stop server

(* Deterministic jitter (same shape as the client's): replays back off
   identically, and a herd of supervisors desynchronizes. *)
let jitter key =
  let h = Hashtbl.hash key land 0xFFFF in
  0.75 +. (0.5 *. (float_of_int h /. 65536.))

let backoff_delay cfg ~restart =
  min cfg.backoff_cap_s
    (cfg.backoff_base_s *. (2. ** float_of_int (restart - 1)))
  *. jitter (cfg.server.Server.socket_path, restart)

let journal_event t ev members =
  match t.journal with
  | Some (j, _) -> Journal.event j ev members
  | None -> ()

let cleanup t =
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.server.Server.socket_path
   with Unix.Unix_error _ | Sys_error _ -> ());
  match t.journal with Some (j, _) -> Journal.close j | None -> ()

let run t =
  let rec incarnation () =
    if locked t (fun () -> t.stopping) then Ok ()
    else begin
      let server =
        Server.create ~listen_fd:t.listen_fd ?journal:t.journal
          ~supervision:t.supervision t.cfg.server
      in
      locked t (fun () -> t.current <- Some server);
      (* a stop that raced incarnation startup must still land *)
      if locked t (fun () -> t.stopping) then Server.stop server;
      match Server.serve_forever server with
      | () -> Ok () (* clean stop: shutdown request, signal, or [stop] *)
      | exception e ->
        let crash = Printexc.to_string e in
        let now = Unix.gettimeofday () in
        let recent =
          now
          :: List.filter
               (fun at -> now -. at <= t.cfg.window_s)
               t.crash_times
        in
        t.crash_times <- recent;
        t.supervision.Server.last_crash <- Some crash;
        if List.length recent > t.cfg.max_restarts then begin
          (* crash loop: the breaker opens instead of burning CPU on a
             daemon that cannot stay up; exit code 41 is the contract *)
          t.supervision.Server.breaker_open <- true;
          journal_event t "breaker-open"
            [
              ("crashes", J.Int (List.length recent));
              ("window_s", J.Float t.cfg.window_s);
              ("last", J.String crash);
            ];
          t.cfg.log
            (Printf.sprintf
               "mompd: circuit breaker open: %d crashes within %gs (last: %s)"
               (List.length recent) t.cfg.window_s crash);
          Error
            (E.make
               (E.Crash_loop
                  {
                    restarts = List.length recent;
                    window_s = t.cfg.window_s;
                  })
               ~phase:E.Serving
               (Printf.sprintf "serve loop crash-looping; last crash: %s"
                  crash))
        end
        else begin
          t.supervision.Server.restarts <-
            t.supervision.Server.restarts + 1;
          let restart = t.supervision.Server.restarts in
          let delay = backoff_delay t.cfg ~restart in
          journal_event t "restart"
            [
              ("n", J.Int restart);
              ("backoff_s", J.Float delay);
              ("crash", J.String crash);
            ];
          t.cfg.log
            (Printf.sprintf
               "mompd: serve loop crashed (%s); restart #%d in %.0fms" crash
               restart (delay *. 1000.));
          Unix.sleepf delay;
          incarnation ()
        end
    end
  in
  Fun.protect ~finally:(fun () -> cleanup t) incarnation

let run_config cfg = run (create cfg)

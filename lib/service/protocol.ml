(* Wire protocol v2 (see the .mli and docs/API.md).

   v2 (api_version 2): the config object gained an optional "pipeline"
   member — a pipeline spec string (Pass_manager.Pipeline.of_string) that
   supersedes "optimize"/"disable" and may not be combined with them. *)

module J = Observe.Json
module E = Fault.Ompgpu_error

let version = 2

type request =
  | Compile of {
      id : string;
      file : string;
      source : string;
      config : Ompgpu_api.Config.t;
      tenant : string option;
    }
  | Stats of { id : string }
  | Health of { id : string }
  | Fleet of { id : string }
  | Shutdown of { id : string }

type response =
  | Compiled of { id : string; op : string; result : Ompgpu_api.compiled }
  | Stats_reply of { id : string; stats : Observe.Json.t }
  | Health_reply of { id : string; health : Observe.Json.t }
  | Fleet_reply of { id : string; fleet : Observe.Json.t }
  | Shutdown_ack of { id : string }
  | Rejected of { id : string option; error : Fault.Ompgpu_error.t }

(* ------------------------------------------------------------------ *)
(* Config codec                                                        *)
(* ------------------------------------------------------------------ *)

(* The disable list names the paper artifact's pass toggles; absent
   members mean "default", so old clients keep working as fields grow. *)
let disable_names =
  [
    ("spmdization", (fun (o : Openmpopt.Pass_manager.options) -> o.disable_spmdization));
    ("deglobalization", fun o -> o.disable_deglobalization);
    ("state-machine-rewrite", fun o -> o.disable_state_machine_rewrite);
    ("folding", fun o -> o.disable_folding);
    ("internalization", fun o -> o.disable_internalization);
    ("guard-grouping", fun o -> o.disable_guard_grouping);
    ("heap-to-shared", fun o -> o.disable_heap_to_shared);
  ]

let apply_disable (o : Openmpopt.Pass_manager.options) = function
  | "spmdization" -> Ok { o with disable_spmdization = true }
  | "deglobalization" -> Ok { o with disable_deglobalization = true }
  | "state-machine-rewrite" -> Ok { o with disable_state_machine_rewrite = true }
  | "folding" -> Ok { o with disable_folding = true }
  | "internalization" -> Ok { o with disable_internalization = true }
  | "guard-grouping" -> Ok { o with disable_guard_grouping = true }
  | "heap-to-shared" -> Ok { o with disable_heap_to_shared = true }
  | s -> Error (Printf.sprintf "unknown pass toggle %S" s)

let config_to_json (c : Ompgpu_api.Config.t) =
  J.Obj
    ([ ("scheme", J.String (Frontend.Codegen.scheme_name c.scheme)) ]
    (* an explicit pipeline travels as its spec string and replaces the
       legacy optimize/disable members (they may not be combined) *)
    @ (match c.pipeline with
      | Some p ->
        [ ("pipeline", J.String (Openmpopt.Pass_manager.Pipeline.to_string p)) ]
      | None -> (
        [ ("optimize", J.Bool (c.options <> None)) ]
        @
        match c.options with
        | Some o ->
          let disabled =
            List.filter_map
              (fun (name, get) -> if get o then Some (J.String name) else None)
              disable_names
          in
          if disabled = [] then [] else [ ("disable", J.List disabled) ]
        | None -> []))
    @ [
        ("emit_ir", J.Bool c.emit_ir);
        ("run", J.Bool c.run_sim);
        ("remarks_only", J.Bool c.remarks_only);
        ("stats", J.Bool c.want_stats);
        ("trace", J.Bool c.print_trace);
        ( "inject",
          J.List
            (List.map
               (fun s -> J.String (Fault.Injector.spec_to_string s))
               c.inject) );
        ("retries", J.Int c.retries);
        ("backoff", J.Float c.backoff_s);
        ("backtrace", J.Bool c.backtraces);
      ])

let config_of_json j =
  let ( let* ) = Result.bind in
  let bool_member k default =
    match J.member k j with
    | None -> Ok default
    | Some (J.Bool b) -> Ok b
    | Some _ -> Error (Printf.sprintf "config.%s: expected a boolean" k)
  in
  let d = Ompgpu_api.Config.default in
  let* scheme =
    match J.member "scheme" j with
    | None -> Ok d.Ompgpu_api.Config.scheme
    | Some (J.String "simplified") -> Ok Frontend.Codegen.Simplified
    | Some (J.String "legacy") -> Ok Frontend.Codegen.Legacy
    | Some (J.String "cuda") -> Ok Frontend.Codegen.Cuda
    | Some _ -> Error "config.scheme: expected simplified|legacy|cuda"
  in
  let* pipeline =
    match J.member "pipeline" j with
    | None -> Ok None
    | Some (J.String s) -> (
      if J.member "optimize" j <> None || J.member "disable" j <> None then
        Error "config.pipeline: may not be combined with \"optimize\"/\"disable\""
      else
        match Openmpopt.Pass_manager.Pipeline.of_string s with
        | Ok p -> Ok (Some p)
        | Error msg -> Error ("config.pipeline: " ^ msg))
    | Some _ -> Error "config.pipeline: expected a pipeline spec string"
  in
  let* optimize = bool_member "optimize" false in
  let* options =
    if not optimize then
      match J.member "disable" j with
      | Some _ -> Error "config.disable: requires \"optimize\": true"
      | None -> Ok None
    else
      let* disabled =
        match J.member "disable" j with
        | None -> Ok []
        | Some (J.List items) ->
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match item with
              | J.String s -> Ok (s :: acc)
              | _ -> Error "config.disable: expected a list of strings")
            (Ok []) items
          |> Result.map List.rev
        | Some _ -> Error "config.disable: expected a list of strings"
      in
      let* options =
        List.fold_left
          (fun acc name ->
            let* o = acc in
            apply_disable o name)
          (Ok Openmpopt.Pass_manager.default_options)
          disabled
      in
      Ok (Some options)
  in
  let* emit_ir = bool_member "emit_ir" d.Ompgpu_api.Config.emit_ir in
  let* run_sim = bool_member "run" d.Ompgpu_api.Config.run_sim in
  let* remarks_only = bool_member "remarks_only" d.Ompgpu_api.Config.remarks_only in
  let* want_stats = bool_member "stats" d.Ompgpu_api.Config.want_stats in
  let* print_trace = bool_member "trace" d.Ompgpu_api.Config.print_trace in
  let* backtraces = bool_member "backtrace" d.Ompgpu_api.Config.backtraces in
  let* inject =
    match J.member "inject" j with
    | None -> Ok []
    | Some (J.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | J.String s -> (
            match Fault.Injector.parse_spec s with
            | Ok spec -> Ok (spec :: acc)
            | Error msg -> Error ("config.inject: " ^ msg))
          | _ -> Error "config.inject: expected a list of strings")
        (Ok []) items
      |> Result.map List.rev
    | Some _ -> Error "config.inject: expected a list of strings"
  in
  let* retries =
    match J.member "retries" j with
    | None -> Ok d.Ompgpu_api.Config.retries
    | Some (J.Int n) when n >= 0 -> Ok n
    | Some _ -> Error "config.retries: expected a non-negative integer"
  in
  let* backoff_s =
    match J.member "backoff" j with
    | None -> Ok d.Ompgpu_api.Config.backoff_s
    | Some (J.Float f) when f >= 0. -> Ok f
    | Some (J.Int n) when n >= 0 -> Ok (float_of_int n)
    | Some _ -> Error "config.backoff: expected a non-negative number"
  in
  Ok
    {
      Ompgpu_api.Config.scheme;
      options;
      pipeline;
      emit_ir;
      run_sim;
      remarks_only;
      want_stats;
      print_trace;
      inject;
      retries;
      backoff_s;
      backtraces;
    }

(* ------------------------------------------------------------------ *)
(* Request codec                                                       *)
(* ------------------------------------------------------------------ *)

let bad_request fmt =
  Printf.ksprintf
    (fun message -> E.make E.Bad_request ~phase:E.Serving message)
    fmt

let request_to_json = function
  | Compile { id; file; source; config; tenant } ->
    let op = if config.Ompgpu_api.Config.run_sim then "run" else "compile" in
    J.Obj
      ([
         ("v", J.Int version);
         ("id", J.String id);
         ("op", J.String op);
         ("file", J.String file);
         ("source", J.String source);
         ("config", config_to_json config);
       ]
      (* the member is omitted entirely for the anonymous tenant, so
         pre-fleet requests stay byte-identical *)
      @ match tenant with Some t -> [ ("tenant", J.String t) ] | None -> [])
  | Stats { id } ->
    J.Obj [ ("v", J.Int version); ("id", J.String id); ("op", J.String "stats") ]
  | Health { id } ->
    J.Obj [ ("v", J.Int version); ("id", J.String id); ("op", J.String "health") ]
  | Fleet { id } ->
    J.Obj [ ("v", J.Int version); ("id", J.String id); ("op", J.String "fleet") ]
  | Shutdown { id } ->
    J.Obj
      [ ("v", J.Int version); ("id", J.String id); ("op", J.String "shutdown") ]

let request_of_json j =
  match J.member "v" j with
  | Some (J.Int v) when v = version -> (
    match Option.bind (J.member "id" j) J.to_str with
    | None -> Error (bad_request "request without a string \"id\"")
    | Some id -> (
      match Option.bind (J.member "op" j) J.to_str with
      | None -> Error (bad_request "request without a string \"op\"")
      | Some (("compile" | "run") as op) -> (
        match Option.bind (J.member "source" j) J.to_str with
        | None -> Error (bad_request "%s request without a string \"source\"" op)
        | Some source -> (
          let file =
            Option.value
              (Option.bind (J.member "file" j) J.to_str)
              ~default:"<service>"
          in
          match
            ( config_of_json
                (Option.value (J.member "config" j) ~default:(J.Obj [])),
              match J.member "tenant" j with
              | None -> Ok None
              | Some (J.String t) -> Ok (Some t)
              | Some _ -> Error "tenant: expected a string" )
          with
          | Error msg, _ | _, Error msg -> Error (bad_request "%s" msg)
          | Ok config, Ok tenant ->
            let config =
              if op = "run" then { config with Ompgpu_api.Config.run_sim = true }
              else config
            in
            Ok (Compile { id; file; source; config; tenant })))
      | Some "stats" -> Ok (Stats { id })
      | Some "health" -> Ok (Health { id })
      | Some "fleet" -> Ok (Fleet { id })
      | Some "shutdown" -> Ok (Shutdown { id })
      | Some op -> Error (bad_request "unknown op %S" op)))
  | Some (J.Int v) ->
    Error (bad_request "unsupported protocol version %d (this server speaks %d)" v version)
  | _ -> Error (bad_request "request without an integer \"v\"")

(* ------------------------------------------------------------------ *)
(* Response codec                                                      *)
(* ------------------------------------------------------------------ *)

let response_to_json = function
  | Compiled { id; op; result } ->
    J.Obj
      ([
         ("v", J.Int version);
         ("id", J.String id);
         ("op", J.String op);
         ("ok", J.Bool (result.Ompgpu_api.exit_code = 0));
         ("exit_code", J.Int result.Ompgpu_api.exit_code);
         ("output", J.String result.Ompgpu_api.output);
         ("diagnostics", J.String result.Ompgpu_api.diagnostics);
       ]
      @ (match result.Ompgpu_api.error with
        | Some e -> [ ("error", E.to_json e) ]
        | None -> [])
      @
      match result.Ompgpu_api.stats with
      | Some s -> [ ("stats", s) ]
      | None -> [])
  | Stats_reply { id; stats } ->
    J.Obj
      [
        ("v", J.Int version);
        ("id", J.String id);
        ("op", J.String "stats");
        ("ok", J.Bool true);
        ("stats", stats);
      ]
  | Health_reply { id; health } ->
    J.Obj
      [
        ("v", J.Int version);
        ("id", J.String id);
        ("op", J.String "health");
        ("ok", J.Bool true);
        ("health", health);
      ]
  | Fleet_reply { id; fleet } ->
    J.Obj
      [
        ("v", J.Int version);
        ("id", J.String id);
        ("op", J.String "fleet");
        ("ok", J.Bool true);
        ("fleet", fleet);
      ]
  | Shutdown_ack { id } ->
    J.Obj
      [
        ("v", J.Int version);
        ("id", J.String id);
        ("op", J.String "shutdown");
        ("ok", J.Bool true);
      ]
  | Rejected { id; error } ->
    J.Obj
      [
        ("v", J.Int version);
        ("id", match id with Some id -> J.String id | None -> J.Null);
        ("ok", J.Bool false);
        ("error", E.to_json error);
      ]

(* Rebuild the client-side view.  The error member round-trips as far as
   the client needs it: kind name, exit code and message (the precise
   variant payloads stay server-side). *)
let error_of_json j =
  let message =
    Option.value (Option.bind (J.member "message" j) J.to_str) ~default:""
  in
  let kind =
    match Option.bind (J.member "kind" j) J.to_str with
    | Some "overload" ->
      let geti k =
        Option.value (Option.bind (J.member k j) J.to_int) ~default:0
      in
      E.Overload { pending = geti "pending"; capacity = geti "capacity" }
    | Some "bad-request" -> E.Bad_request
    | Some "timeout" -> E.Timeout { seconds = 0. }
    | Some "oom" -> E.Oom
    | _ -> E.Internal
  in
  E.make kind ~phase:E.Serving message

let response_of_json j =
  match J.member "v" j with
  | Some (J.Int v) when v = version -> (
    let id = Option.bind (J.member "id" j) J.to_str in
    match Option.bind (J.member "op" j) J.to_str with
    | Some (("compile" | "run") as op) -> (
      match
        ( id,
          Option.bind (J.member "exit_code" j) J.to_int,
          Option.bind (J.member "output" j) J.to_str,
          Option.bind (J.member "diagnostics" j) J.to_str )
      with
      | Some id, Some exit_code, Some output, Some diagnostics ->
        Ok
          (Compiled
             {
               id;
               op;
               result =
                 {
                   Ompgpu_api.exit_code;
                   output;
                   diagnostics;
                   error =
                     (if exit_code = 0 then None
                      else Option.map error_of_json (J.member "error" j));
                   stats = J.member "stats" j;
                 };
             })
      | _ -> Error "malformed compile response")
    | Some "stats" -> (
      match (id, J.member "stats" j) with
      | Some id, Some stats -> Ok (Stats_reply { id; stats })
      | _ -> Error "malformed stats response")
    | Some "health" -> (
      match (id, J.member "health" j) with
      | Some id, Some health -> Ok (Health_reply { id; health })
      | _ -> Error "malformed health response")
    | Some "fleet" -> (
      match (id, J.member "fleet" j) with
      | Some id, Some fleet -> Ok (Fleet_reply { id; fleet })
      | _ -> Error "malformed fleet response")
    | Some "shutdown" -> (
      match id with
      | Some id -> Ok (Shutdown_ack { id })
      | None -> Error "malformed shutdown response")
    | Some op -> Error (Printf.sprintf "unknown response op %S" op)
    | None -> (
      match J.member "error" j with
      | Some err -> Ok (Rejected { id; error = error_of_json err })
      | None -> Error "response without op or error"))
  | _ -> Error "response without a supported \"v\""

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let max_frame_bytes = 8 * 1024 * 1024

(* Bounded, never-raising framing: a hostile peer can send an endless
   line, garbage bytes, or hang up mid-frame, and the worst it gets is a
   structured [Bad_request] (and, for oversized frames, a severed
   connection — the unread remainder of the line cannot be resynchronized
   against). *)
let read_message ic =
  let buf = Buffer.create 256 in
  let rec fill () =
    match In_channel.input_char ic with
    | None -> if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | Some '\n' -> `Line (Buffer.contents buf)
    | Some c ->
      if Buffer.length buf >= max_frame_bytes then `Over
      else begin
        Buffer.add_char buf c;
        fill ()
      end
  in
  match fill () with
  | `Eof -> `Eof
  | `Over ->
    `Overflow
      (bad_request "oversized frame: request line exceeds %d bytes"
         max_frame_bytes)
  | `Line line -> (
    (* EOF before the newline lands here too: the truncated frame is
       decoded best-effort and, being torn JSON, rejected structurally *)
    match J.of_string line with
    | Ok j -> `Msg (Ok j)
    | Error msg -> `Msg (Error (bad_request "unparseable request: %s" msg)))

let write_message oc j =
  Out_channel.output_string oc (J.to_string ~minify:true j);
  Out_channel.output_char oc '\n';
  Out_channel.flush oc

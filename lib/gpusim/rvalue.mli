(** Runtime values of the simulator. *)

type space =
  | Sglobal
  | Sshared of int  (** owning team uid *)
  | Slocal of int  (** owning thread (global index); -1 = host *)

type ptr = { sp : space; addr : int }

type t =
  | I of int64  (** all integer widths, including i1 *)
  | F of float  (** f32 values are kept rounded to single precision *)
  | P of ptr
  | Fn of string
  | Undef

exception Sim_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise [Sim_error] with a formatted message. *)

val as_int : t -> int64
val as_float : t -> float
val as_ptr : t -> ptr
val is_null : t -> bool

val truncate_to : Ir.Types.t -> int64 -> int64
(** Normalize an integer to the width of the type (signed semantics). *)

val to_f32 : float -> float
(** Round to single precision. *)

val of_int64 : int64 -> t
(** [I v], but small values ([-1, 255]) return a shared boxed value — the
    hot path of the interpreter produces these constantly. *)

val of_bool : bool -> t
(** Shared [I 1L] / [I 0L]. *)

val of_const : Ir.Value.const -> t

val pp : Format.formatter -> t -> unit

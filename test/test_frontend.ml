open Frontend

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let tokens src =
  List.map (fun s -> s.Lexer.tok) (Lexer.tokenize ~file:"t.c" src)

let test_lexer_basic () =
  match tokens "int x = 42;" with
  | [ Lexer.KW "int"; Lexer.IDENT "x"; Lexer.PUNCT "="; Lexer.INT_LIT 42L; Lexer.PUNCT ";";
      Lexer.EOF ] ->
    ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_floats () =
  (match tokens "1.5 2e3 1e-5 0.25" with
  | [ Lexer.FLOAT_LIT a; Lexer.FLOAT_LIT b; Lexer.FLOAT_LIT c; Lexer.FLOAT_LIT d; Lexer.EOF ]
    ->
    Alcotest.(check (float 1e-9)) "1.5" 1.5 a;
    Alcotest.(check (float 1e-9)) "2e3" 2000.0 b;
    Alcotest.(check (float 1e-12)) "1e-5" 1e-5 c;
    Alcotest.(check (float 1e-9)) "0.25" 0.25 d
  | _ -> Alcotest.fail "float literals");
  match tokens "123" with
  | [ Lexer.INT_LIT 123L; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "integer literal"

let test_lexer_comments () =
  match tokens "int /* block \n comment */ x; // line\nint y;" with
  | [ Lexer.KW "int"; Lexer.IDENT "x"; Lexer.PUNCT ";"; Lexer.KW "int"; Lexer.IDENT "y";
      Lexer.PUNCT ";"; Lexer.EOF ] ->
    ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lexer_pragma () =
  match tokens "#pragma omp target teams num_teams(4)\nint x;" with
  | Lexer.PRAGMA ([ "target"; "teams"; "num_teams(4)" ], _) :: _ -> ()
  | _ -> Alcotest.fail "pragma tokenization"

let test_lexer_two_char_ops () =
  match tokens "a <= b && c != d" with
  | [ Lexer.IDENT "a"; Lexer.PUNCT "<="; Lexer.IDENT "b"; Lexer.PUNCT "&&"; Lexer.IDENT "c";
      Lexer.PUNCT "!="; Lexer.IDENT "d"; Lexer.EOF ] ->
    ()
  | _ -> Alcotest.fail "two-char operators"

let test_lexer_error () =
  match tokens "int $x;" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected lexer error"

(* ------------------------------------------------------------------ *)
(* Parser (AST level)                                                  *)
(* ------------------------------------------------------------------ *)

let parse_prog src = Cparse.parse_program ~file:"t.c" src

let test_parse_function () =
  let p = parse_prog "static double f(int a, double* b) { return a + b[0]; }" in
  match p.Ast.funcs with
  | [ fd ] ->
    Alcotest.(check string) "name" "f" fd.Ast.fname;
    Alcotest.(check bool) "static" true fd.Ast.fstatic;
    Alcotest.(check int) "params" 2 (List.length fd.Ast.fparams)
  | _ -> Alcotest.fail "one function expected"

let test_parse_globals () =
  let p = parse_prog "double A[4][8];\nint counter;" in
  match p.Ast.globals with
  | [ a; c ] ->
    Alcotest.(check bool) "2d array type" true
      (a.Ast.gty = Ast.Tarr (Ast.Tarr (Ast.Tdouble, 8), 4));
    Alcotest.(check bool) "scalar" true (c.Ast.gty = Ast.Tint)
  | _ -> Alcotest.fail "two globals expected"

let test_parse_precedence () =
  let p = parse_prog "int f() { return 1 + 2 * 3 < 4 && 5 > 6; }" in
  match p.Ast.funcs with
  | [ { Ast.fbody = Some { s = Ast.Block [ { s = Ast.Return (Some e); _ } ]; _ }; _ } ] -> (
    match e.Ast.e with
    | Ast.Binary (Ast.Land, _, _) -> ()
    | _ -> Alcotest.fail "&& should bind loosest")
  | _ -> Alcotest.fail "structure"

let test_parse_assumes () =
  let p =
    parse_prog "#pragma omp assume ext_spmd_amenable\nvoid f() { }\nvoid g() { }"
  in
  (match p.Ast.funcs with
  | [ f; g ] ->
    Alcotest.(check bool) "f has assumption" true (f.Ast.fassumes = [ Ast.A_spmd_amenable ]);
    Alcotest.(check bool) "g does not" true (g.Ast.fassumes = [])
  | _ -> Alcotest.fail "two functions")

let test_parse_errors () =
  let bad src =
    match parse_prog src with
    | exception Cparse.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  bad "int f( { }";
  bad "int f() { return }";
  bad "int f() { if x { } }";
  bad "#pragma omp bogus\nint f() {}";
  bad "int f() { for (;;) }"

let test_free_vars () =
  let p = parse_prog "int f(int a) { int b = a; { int c = b; b = c; } return b + g; }" in
  match p.Ast.funcs with
  | [ { Ast.fbody = Some body; _ } ] ->
    let fv = Ast.stmt_free_vars body in
    Alcotest.(check bool) "a free" true (Ast.SS.mem "a" fv);
    Alcotest.(check bool) "g free" true (Ast.SS.mem "g" fv);
    Alcotest.(check bool) "b bound" false (Ast.SS.mem "b" fv);
    Alcotest.(check bool) "c bound" false (Ast.SS.mem "c" fv)
  | _ -> Alcotest.fail "structure"

let test_addr_taken () =
  let p = parse_prog "void f() { int x; int y; g(&x); int* p = &y; }" in
  match p.Ast.funcs with
  | [ { Ast.fbody = Some body; _ } ] ->
    let at = Ast.addr_taken_vars body in
    Alcotest.(check bool) "x taken" true (Ast.SS.mem "x" at);
    Alcotest.(check bool) "y taken" true (Ast.SS.mem "y" at)
  | _ -> Alcotest.fail "structure"

(* ------------------------------------------------------------------ *)
(* Codegen: semantics via the simulator                                *)
(* ------------------------------------------------------------------ *)

let host_trace src = Helpers.run_trace src

let test_arith_semantics () =
  Alcotest.check Helpers.trace_testable "arith"
    [ "i:-3"; "i:1"; "i:2"; "i:42"; "i:7" ]
    (List.sort String.compare
       (host_trace
          {|
int main() {
  trace(6 * 7);
  trace(15 % 4 - 2);    // 3 - 2
  trace(10 / 5);        // 2
  trace(1 - 4);         // -3
  trace(23 % 8);        // 7
  return 0;
}
|}))

let test_float_semantics () =
  Alcotest.check Helpers.trace_testable "floats"
    [ "f:0.5"; "f:2"; "f:3.5" ]
    (host_trace
       {|
int main() {
  double a = 1.5;
  double b = 2.0;
  trace_f64(a + b);
  trace_f64(a / 3.0);
  trace_f64(b);
  return 0;
}
|})

let test_casts_and_promotions () =
  Alcotest.check Helpers.trace_testable "conversions"
    [ "f:2.5"; "i:2"; "i:3"; "i:5000000000" ]
    (host_trace
       {|
int main() {
  int i = 2;
  double d = i + 0.5;
  trace_f64(d);
  trace((int)d);
  trace((int)3.9);
  long big = 5000000000;
  trace(big);
  return 0;
}
|})

let test_control_flow () =
  Alcotest.check Helpers.trace_testable "loops and branches"
    [ "i:0"; "i:1"; "i:10"; "i:3" ]
    (host_trace
       {|
int main() {
  int sum = 0;
  for (int i = 0; i < 5; i++) { sum += i; }
  trace(sum);                       // 10
  int k = 0;
  while (k < 3) { k++; }
  trace(k);                         // 3
  if (sum > 5) { trace(1); } else { trace(2); }
  if (sum < 5) { trace(9); } else { trace(0); }
  return 0;
}
|})

let test_break_continue () =
  Alcotest.check Helpers.trace_testable "break/continue"
    [ "i:12" ]
    (host_trace
       {|
int main() {
  int sum = 0;
  for (int i = 0; i < 10; i++) {
    if (i == 2) { continue; }
    if (i == 6) { break; }
    sum += i;    // 0+1+3+4+5 = 13 - 1 = ... 0+1+3+4+5 = 13
  }
  trace(sum - 1);  // 12
  return 0;
}
|})

let test_short_circuit () =
  (* the right operand must not be evaluated when the left decides *)
  Alcotest.check Helpers.trace_testable "short circuit"
    [ "i:0"; "i:1"; "i:5" ]
    (host_trace
       {|
int side_effect() { trace(5); return 1; }
int main() {
  int a = 0;
  trace(a && side_effect());   // 0, no side effect
  trace(1 || side_effect());   // 1, no side effect
  if (1 && side_effect()) { }  // side effect exactly once
  return 0;
}
|})

let test_ternary_and_logical_not () =
  Alcotest.check Helpers.trace_testable "cond"
    [ "i:0"; "i:1"; "i:7"; "i:9" ]
    (host_trace
       {|
int main() {
  int x = 3;
  trace(x > 2 ? 7 : 8);
  trace(x < 2 ? 7 : 9);
  trace(!x);
  trace(!!x);
  return 0;
}
|})

let test_arrays_and_pointers () =
  Alcotest.check Helpers.trace_testable "arrays"
    [ "f:11"; "f:22"; "f:33" ]
    (host_trace
       {|
double G[4];
static void fill(double* p, int n) {
  for (int i = 0; i < n; i++) { p[i] = (double)(i + 1) * 11.0; }
}
int main() {
  fill(G, 3);
  double* q = G;
  trace_f64(q[0]);
  trace_f64(*(q + 1));
  trace_f64(G[2]);
  return 0;
}
|})

let test_multidim_arrays () =
  Alcotest.check Helpers.trace_testable "2d array"
    [ "f:5"; "f:6" ]
    (host_trace
       {|
double M[2][3];
int main() {
  M[1][2] = 5.0;
  M[0][0] = 6.0;
  trace_f64(M[1][2]);
  trace_f64(M[0][0]);
  return 0;
}
|})

let test_math_builtins () =
  Alcotest.check Helpers.trace_testable "math"
    [ "f:1.41421356"; "f:2"; "f:3"; "f:8" ]
    (List.map
       (fun s ->
         (* truncate to 9 significant digits like the helper already does *)
         s)
       (host_trace
          {|
int main() {
  trace_f64(sqrt(2.0));
  trace_f64(fabs(-2.0));
  trace_f64(fmax(1.0, 3.0));
  trace_f64(pow(2.0, 3.0));
  return 0;
}
|}))

let test_local_arrays_on_device () =
  (* a local array used in a combined kernel: globalized then recovered *)
  Helpers.assert_same_trace
    ~schemes:[ Frontend.Codegen.Simplified; Frontend.Codegen.Legacy; Frontend.Codegen.Cuda ]
    {|
double Out[8];
int main() {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (int i = 0; i < 8; i++) {
    double acc[2];
    acc[0] = (double)i;
    acc[1] = acc[0] * 2.0;
    Out[i] = acc[0] + acc[1];
  }
  double s = 0.0;
  for (int i = 0; i < 8; i++) { s += Out[i]; }
  trace_f64(s);
  return 0;
}
|}

let test_kernel_captures_by_value () =
  Alcotest.check Helpers.trace_testable "scalar capture"
    [ "f:30" ]
    (host_trace
       {|
double Out[4];
int main() {
  int n = 4;
  double scale = 2.5;
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(4)
  for (int i = 0; i < n; i++) { Out[i] = scale * (double)i; }
  double s = 0.0;
  for (int i = 0; i < n; i++) { s += Out[i]; }
  trace_f64(s + 15.0);
  return 0;
}
|})

let test_generic_kernel_team_private () =
  (* each team works on its own slice; team_val shared within the team *)
  Helpers.assert_same_trace
    ~schemes:[ Frontend.Codegen.Simplified; Frontend.Codegen.Legacy ]
    {|
double A[8];
int main() {
  #pragma omp target teams distribute num_teams(2) thread_limit(4)
  for (int i = 0; i < 8; i++) {
    double team_val = (double)(i * 10);
    #pragma omp parallel for
    for (int j = 0; j < 4; j++) {
      #pragma omp atomic
      team_val += 1.0;
    }
    A[i] = team_val;
  }
  for (int i = 0; i < 8; i++) { trace_f64(A[i]); }
  return 0;
}
|}

let test_barrier_in_region () =
  Helpers.assert_same_trace ~schemes:[ Frontend.Codegen.Simplified ]
    {|
double Stage[4];
double Out[4];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(4)
  {
    #pragma omp parallel
    {
      int t = omp_get_thread_num();
      Stage[t] = (double)(t + 1);
      #pragma omp barrier
      Out[t] = Stage[(t + 1) % 4];
    }
  }
  for (int i = 0; i < 4; i++) { trace_f64(Out[i]); }
  return 0;
}
|}

let test_nested_parallel_serializes () =
  (* a nested region runs sequentially on the encountering thread *)
  Alcotest.check Helpers.trace_testable "nested"
    [ "f:11" ]
    (host_trace
       {|
double Out[1];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(4)
  {
    #pragma omp parallel
    {
      if (omp_get_thread_num() == 0) {
        #pragma omp parallel for
        for (int i = 0; i < 4; i++) {
          #pragma omp atomic
          Out[0] += (double)i;   // nested: thread 0 runs 0+1+2+3
        }
      }
      #pragma omp atomic
      Out[0] += 1.0;             // all four threads
    }
  }
  trace_f64(Out[0] + 1.0);  // 6 + 4 + 1 = 11
  return 0;
}
|})

let test_codegen_errors () =
  let bad src =
    match Helpers.compile src with
    | exception Codegen.Error _ -> ()
    | _ -> Alcotest.failf "expected codegen error"
  in
  bad "int main() { unknown_fn(); return 0; }";
  bad "int main() { int x; return x(3); }";
  bad {|int main() { #pragma omp target teams distribute
        for (int i = 10; i > 0; i--) { } return 0; }|};
  bad {|int f() { #pragma omp target teams
        { return 3; } }|};
  bad "int main() { break; return 0; }"

let test_scheme_structural_differences () =
  let src =
    {|
double A[4];
static void touch(double* p) { p[0] += 1.0; }
int main() {
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(4)
  for (int i = 0; i < 4; i++) {
    double v = (double)i;
    touch(&v);
    A[i] = v;
  }
  return 0;
}
|}
  in
  let count_calls m name =
    List.fold_left
      (fun acc f ->
        Ir.Func.fold_instrs f ~init:acc ~g:(fun acc _ i ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Call (_, Ir.Instr.Direct n, _) when n = name -> acc + 1
            | _ -> acc))
      0 (Ir.Irmod.defined_funcs m)
  in
  let simplified = Helpers.compile ~scheme:Codegen.Simplified src in
  let legacy = Helpers.compile ~scheme:Codegen.Legacy src in
  let cuda = Helpers.compile ~scheme:Codegen.Cuda src in
  Alcotest.(check bool) "simplified uses alloc_shared" true
    (count_calls simplified "__kmpc_alloc_shared" > 0);
  (* the legacy scheme guards globalization behind a runtime mode check: the
     push exists statically on the generic-mode path, but an SPMD kernel
     dynamically takes the (unsound) local fast path — see the Fig. 3 test *)
  Alcotest.(check bool) "legacy outlined region carries the runtime mode check" true
    (count_calls legacy "__kmpc_data_sharing_mode_check" > 0);
  Alcotest.(check int) "cuda never globalizes" 0 (count_calls cuda "__kmpc_alloc_shared");
  (* legacy generic-mode device functions do use the runtime check pattern *)
  let legacy_generic =
    Helpers.compile ~scheme:Codegen.Legacy
      {|
double A[4];
static void touch(double* p) { double tmp[1]; tmp[0] = p[0]; p[0] = tmp[0] + 1.0; }
int main() {
  #pragma omp target teams num_teams(1) thread_limit(2)
  {
    double v = 1.0;
    touch(&v);
    A[0] = v;
  }
  return 0;
}
|}
  in
  Alcotest.(check bool) "legacy device fn uses mode check" true
    (count_calls legacy_generic "__kmpc_data_sharing_mode_check" > 0)

let test_kernel_modes () =
  let m =
    Helpers.compile
      {|
double A[4];
int main() {
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(2)
  for (int i = 0; i < 4; i++) { A[i] = 1.0; }
  #pragma omp target teams num_teams(1) thread_limit(2)
  { A[0] = 2.0; }
  return 0;
}
|}
  in
  match Ir.Irmod.kernels m with
  | [ k1; k2 ] ->
    let mode k = (Option.get k.Ir.Func.kernel).Ir.Func.exec_mode in
    Alcotest.(check bool) "combined is SPMD" true (mode k1 = Ir.Func.Spmd);
    Alcotest.(check bool) "teams-only is generic" true (mode k2 = Ir.Func.Generic)
  | ks -> Alcotest.failf "expected 2 kernels, got %d" (List.length ks)

(* property: random arithmetic expressions agree with a reference evaluator *)
let arb_expr_ints =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 8) (pair (int_range 1 50) (int_range 0 3)))

let prop_sum_pipeline ops =
  (* builds: x starts at 1; per op: 0:add k, 1:sub k, 2:mul (k%7+1), 3:mod... *)
  let body, expected =
    List.fold_left
      (fun (src, v) (k, op) ->
        match op with
        | 0 -> (src ^ Printf.sprintf "  x = x + %d;\n" k, v + k)
        | 1 -> (src ^ Printf.sprintf "  x = x - %d;\n" k, v - k)
        | 2 ->
          let f = (k mod 7) + 1 in
          (src ^ Printf.sprintf "  x = x * %d;\n" f, v * f)
        | _ ->
          let d = (k mod 9) + 1 in
          (src ^ Printf.sprintf "  x = x %% %d;\n" d, v mod d))
      ("", 1) ops
  in
  let src = Printf.sprintf "int main() {\n  int x = 1;\n%s  trace(x);\n  return 0;\n}" body in
  Helpers.run_trace src = [ Printf.sprintf "i:%d" expected ]

let suite =
  [
    Alcotest.test_case "lexer basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer floats" `Quick test_lexer_floats;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer pragma" `Quick test_lexer_pragma;
    Alcotest.test_case "lexer two-char ops" `Quick test_lexer_two_char_ops;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parse function" `Quick test_parse_function;
    Alcotest.test_case "parse globals" `Quick test_parse_globals;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse assumes" `Quick test_parse_assumes;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "free variables" `Quick test_free_vars;
    Alcotest.test_case "address taken" `Quick test_addr_taken;
    Alcotest.test_case "arith semantics" `Quick test_arith_semantics;
    Alcotest.test_case "float semantics" `Quick test_float_semantics;
    Alcotest.test_case "casts and promotions" `Quick test_casts_and_promotions;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "break/continue" `Quick test_break_continue;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "ternary and not" `Quick test_ternary_and_logical_not;
    Alcotest.test_case "arrays and pointers" `Quick test_arrays_and_pointers;
    Alcotest.test_case "multidim arrays" `Quick test_multidim_arrays;
    Alcotest.test_case "math builtins" `Quick test_math_builtins;
    Alcotest.test_case "device local arrays" `Quick test_local_arrays_on_device;
    Alcotest.test_case "kernel captures by value" `Quick test_kernel_captures_by_value;
    Alcotest.test_case "team-private sharing" `Quick test_generic_kernel_team_private;
    Alcotest.test_case "barrier in region" `Quick test_barrier_in_region;
    Alcotest.test_case "nested parallel serializes" `Quick test_nested_parallel_serializes;
    Alcotest.test_case "codegen errors" `Quick test_codegen_errors;
    Alcotest.test_case "scheme structural differences" `Quick
      test_scheme_structural_differences;
    Alcotest.test_case "kernel modes" `Quick test_kernel_modes;
    Helpers.qtest ~count:60 "random int pipelines" arb_expr_ints prop_sum_pipeline;
  ]

(* In-memory content-addressed cache; one mutex, accurate hit/miss
   accounting under concurrency.

   Bounded mode (PR 10): [create ?max_entries ?max_bytes ?size_of] turns
   the table into an LRU — an intrusive doubly-linked recency list over
   the Hashtbl nodes, maintained under the same mutex, so eviction is
   O(1) per entry and the lock-ordering story is unchanged.  With no caps
   the list is still maintained (a handful of pointer writes per
   operation) but nothing is ever evicted, which keeps [create ()]
   byte-for-byte compatible with every pre-governance caller. *)

type 'a node = {
  nkey : string;
  mutable value : 'a;
  mutable nbytes : int;
  mutable prev : 'a node option;  (* toward MRU *)
  mutable next : 'a node option;  (* toward LRU *)
}

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a node) Hashtbl.t;
  max_entries : int option;
  max_bytes : int option;
  size_of : 'a -> int;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used; evicted first *)
  mutable total_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?max_entries ?max_bytes ?(size_of = fun _ -> 0) () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    max_entries = Option.map (max 0) max_entries;
    max_bytes = Option.map (max 0) max_bytes;
    size_of;
    head = None;
    tail = None;
    total_bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Frame every part with its length so ["ab"; "c"] and ["a"; "bc"] cannot
   collide, then fold the streaming hash — no buffer, no copy, one
   multiply per byte (Support.Hash64 replaced MD5 here; see its header). *)
let key parts =
  Support.Hash64.to_hex
    (List.fold_left
       (fun h p ->
         Support.Hash64.add_string (Support.Hash64.add_int h (String.length p)) p)
       Support.Hash64.empty parts)

(* ---- recency list (call with t.mutex held) ---- *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  if t.head != Some node then begin
    unlink t node;
    push_front t node
  end

let over_cap t =
  (match t.max_entries with
  | Some cap -> Hashtbl.length t.table > cap
  | None -> false)
  || match t.max_bytes with Some cap -> t.total_bytes > cap | None -> false

(* Evict from the LRU end until back under both caps.  An entry larger
   than max_bytes on its own is evicted immediately after insertion — the
   caller still got its value; the cache just declines to retain it. *)
let rec evict_over t =
  if over_cap t then
    match t.tail with
    | None -> ()
    | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.nkey;
      t.total_bytes <- t.total_bytes - node.nbytes;
      t.evictions <- t.evictions + 1;
      evict_over t

let insert t ~key v =
  let node = { nkey = key; value = v; nbytes = t.size_of v; prev = None; next = None } in
  Hashtbl.replace t.table key node;
  push_front t node;
  t.total_bytes <- t.total_bytes + node.nbytes;
  evict_over t

(* ---- public operations ---- *)

let find_or_compute t ~key f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some node ->
    t.hits <- t.hits + 1;
    touch t node;
    let v = node.value in
    Mutex.unlock t.mutex;
    v
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.mutex;
    let v = f () in
    Mutex.lock t.mutex;
    (* first insertion wins; concurrent computers of the same key produced
       equal values by the determinism contract *)
    let v =
      match Hashtbl.find_opt t.table key with
      | Some existing -> existing.value
      | None ->
        insert t ~key v;
        v
    in
    Mutex.unlock t.mutex;
    v

(* Atomic overwrite: readers serialized on the same mutex observe either
   the old or the new value, never a torn entry.  The tier-upgrade path
   uses this to promote a fast-tier result to the full-pipeline one; when
   the fast entry was evicted mid-upgrade the promotion re-inserts, so the
   full-pipeline bytes land either way. *)
let replace t ~key v =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.table key with
  | Some node ->
    let nbytes = t.size_of v in
    t.total_bytes <- t.total_bytes - node.nbytes + nbytes;
    node.value <- v;
    node.nbytes <- nbytes;
    touch t node;
    evict_over t
  | None -> insert t ~key v);
  Mutex.unlock t.mutex

(* Counter-neutral lookup: background maintenance (the upgrade worker)
   must not distort the request-path hit/miss accounting — nor the
   recency order, so a peek never saves an entry from eviction. *)
let peek t ~key =
  Mutex.lock t.mutex;
  let v = Option.map (fun n -> n.value) (Hashtbl.find_opt t.table key) in
  Mutex.unlock t.mutex;
  v

let with_lock t f =
  Mutex.lock t.mutex;
  let v = f () in
  Mutex.unlock t.mutex;
  v

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)

let hit_rate t =
  with_lock t (fun () ->
      let total = t.hits + t.misses in
      if total = 0 then 0. else float_of_int t.hits /. float_of_int total)

let length t = with_lock t (fun () -> Hashtbl.length t.table)
let bytes t = with_lock t (fun () -> t.total_bytes)
let evictions t = with_lock t (fun () -> t.evictions)
let max_entries t = t.max_entries
let max_bytes t = t.max_bytes

let reset_counters t =
  with_lock t (fun () ->
      t.hits <- 0;
      t.misses <- 0)

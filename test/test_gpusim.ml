(* Simulator semantics: memory spaces, synchronization, the worker state
   machine, heap accounting, and the cost/statistics machinery. *)

let run ?machine src =
  let m = Helpers.compile src in
  Helpers.verify m;
  Helpers.simulate ?machine m

let stats_of sim =
  match sim.Gpusim.Interp.kernel_stats with
  | s :: _ -> s
  | [] -> Alcotest.fail "no kernel launched"

let test_launch_dimensions () =
  let sim =
    run
      {|
double A[8];
int main() {
  #pragma omp target teams distribute parallel for num_teams(3) thread_limit(5)
  for (int i = 0; i < 8; i++) { A[i] = 1.0; }
  return 0;
}
|}
  in
  let s = stats_of sim in
  Alcotest.(check int) "teams" 3 s.Gpusim.Interp.teams;
  Alcotest.(check int) "threads" 5 s.Gpusim.Interp.threads_per_team;
  Alcotest.(check bool) "cycles positive" true (s.Gpusim.Interp.cycles > 0);
  Alcotest.(check bool) "instructions counted" true (s.Gpusim.Interp.instructions > 0)

let test_default_launch_dimensions () =
  let sim =
    run
      {|
double A[8];
int main() {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 8; i++) { A[i] = 1.0; }
  return 0;
}
|}
  in
  let s = stats_of sim in
  let mach = Gpusim.Machine.test_machine in
  Alcotest.(check int) "default teams" mach.Gpusim.Machine.default_teams s.Gpusim.Interp.teams;
  Alcotest.(check int) "default threads" mach.Gpusim.Machine.default_threads
    s.Gpusim.Interp.threads_per_team

let test_cyclic_distribution_covers_all () =
  (* every iteration executed exactly once across teams x threads *)
  let sim =
    run
      {|
double A[37];
int main() {
  #pragma omp target teams distribute parallel for num_teams(3) thread_limit(4)
  for (int i = 0; i < 37; i++) {
    #pragma omp atomic
    A[i] += 1.0;
  }
  double bad = 0.0;
  for (int i = 0; i < 37; i++) { if (A[i] != 1.0) { bad += 1.0; } }
  trace_f64(bad);
  return 0;
}
|}
  in
  Alcotest.(check bool) "each iteration once" true
    (Gpusim.Interp.trace_values sim = [ Gpusim.Rvalue.F 0.0 ])

let test_atomics_race_free () =
  let sim =
    run
      {|
double Sum[1];
int main() {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(8)
  for (int i = 1; i <= 100; i++) {
    #pragma omp atomic
    Sum[0] += (double)i;
  }
  trace_f64(Sum[0]);
  return 0;
}
|}
  in
  Alcotest.(check bool) "gauss sum" true
    (Gpusim.Interp.trace_values sim = [ Gpusim.Rvalue.F 5050.0 ])

let test_cross_thread_local_detected () =
  (* the Figure 3 soundness scenario: without globalization (cuda scheme),
     cross-thread accesses hit the wrong thread's local memory *)
  let src =
    {|
int Ptr[4];
int main() {
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(4)
  for (int i = 0; i < 4; i++) {
    int Lcl = 42 + i;
    int* p = &Lcl;
    if (i == 3) { Ptr[0] = p[0]; }
    #pragma omp barrier
    Ptr[i] = p[0];
  }
  return 0;
}
|}
  in
  let m = Helpers.compile ~scheme:Frontend.Codegen.Cuda src in
  let sim = Helpers.simulate m in
  Alcotest.(check bool) "no cross-local accesses in private version" true
    (sim.Gpusim.Interp.mem.Gpusim.Mem.cross_local_accesses = 0)

let test_fig3_legacy_unsound_vs_simplified () =
  (* the exact Figure 3 program: all threads must observe thread 0's 42 *)
  let src =
    {|
int* Ptr;
int main() {
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(4)
  for (int i = 0; i < 4; i++) {
    int Lcl = 42 + i;
    if (i == 0) { Ptr = &Lcl; }
    #pragma omp barrier
    trace(Ptr[0]);
    #pragma omp barrier
  }
  return 0;
}
|}
  in
  Alcotest.check Helpers.trace_testable "simplified globalization is sound"
    [ "i:42"; "i:42"; "i:42"; "i:42" ]
    (Helpers.run_trace src);
  let legacy = Helpers.run_trace ~scheme:Frontend.Codegen.Legacy src in
  Alcotest.(check bool) "legacy SPMD fast path miscompiles (Fig. 3)" true
    (legacy <> [ "i:42"; "i:42"; "i:42"; "i:42" ])

let test_generic_mode_worker_state_machine () =
  let sim =
    run
      {|
double A[4];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(4)
  {
    #pragma omp parallel
    {
      int t = omp_get_thread_num();
      A[t] = (double)(t * t);
    }
  }
  for (int i = 0; i < 4; i++) { trace_f64(A[i]); }
  return 0;
}
|}
  in
  let values =
    List.map (fun v -> Gpusim.Rvalue.as_float v) (Gpusim.Interp.trace_values sim)
  in
  Alcotest.(check (list (float 1e-9))) "all workers participated" [ 0.; 1.; 4.; 9. ] values;
  let s = stats_of sim in
  Alcotest.(check bool) "indirect dispatch used" true (s.Gpusim.Interp.indirect_calls > 0)

let test_num_threads_clause_limits_region () =
  let sim =
    run
      {|
double A[8];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(8)
  {
    #pragma omp parallel num_threads(3)
    {
      int t = omp_get_thread_num();
      A[t] = A[t] + 1.0;
    }
  }
  double s = 0.0;
  for (int i = 0; i < 8; i++) { s += A[i]; }
  trace_f64(s);
  return 0;
}
|}
  in
  Alcotest.(check bool) "only 3 threads ran the region" true
    (Gpusim.Interp.trace_values sim = [ Gpusim.Rvalue.F 3.0 ])

let test_heap_accounting_and_oom () =
  (* per-thread allocations in a parallel context are charged against the
     device heap with concurrency scaling *)
  let src =
    {|
double Out[16];
int main() {
  #pragma omp target teams distribute parallel for num_teams(4) thread_limit(8)
  for (int i = 0; i < 32; i++) {
    double big[64];
    for (int k = 0; k < 64; k++) { big[k] = (double)k; }
    Out[i % 16] = big[63];
  }
  return 0;
}
|}
  in
  let m = Helpers.compile src in
  (* generous heap: runs fine and reports a high-water mark *)
  let sim = Helpers.simulate m in
  let s = stats_of sim in
  Alcotest.(check bool) "high water recorded" true (s.Gpusim.Interp.heap_high_water > 0);
  (* tiny heap: out of memory *)
  let tiny =
    { Gpusim.Machine.test_machine with Gpusim.Machine.heap_bytes = 4 * 1024 }
  in
  let m2 = Helpers.compile src in
  (match Helpers.simulate ~machine:tiny m2 with
  | exception Gpusim.Mem.Out_of_memory _ -> ()
  | _ -> Alcotest.fail "expected OOM with a tiny device heap")

let test_shared_memory_stats () =
  let sim =
    run
      {|
double A[4];
int main() {
  #pragma omp target teams distribute num_teams(1) thread_limit(4)
  for (int i = 0; i < 4; i++) {
    double v = (double)i;   // globalized: captured by the region below
    #pragma omp parallel for
    for (int j = 0; j < 2; j++) {
      #pragma omp atomic
      v += 1.0;
    }
    A[i] = v;
  }
  return 0;
}
|}
  in
  let s = stats_of sim in
  Alcotest.(check bool) "team shared stack used" true (s.Gpusim.Interp.shared_bytes > 0)

let test_register_estimate_monotone () =
  (* indirect calls in the worker loop inflate the register estimate *)
  let generic =
    Helpers.compile
      {|
double A[4];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(2)
  {
    #pragma omp parallel
    { A[omp_get_thread_num()] = 1.0; }
  }
  return 0;
}
|}
  in
  let kernel = List.hd (Ir.Irmod.kernels generic) in
  let regs_before = Gpusim.Regalloc.estimate generic kernel in
  ignore (Helpers.optimize generic);
  let regs_after = Gpusim.Regalloc.estimate generic kernel in
  Alcotest.(check bool) "optimization does not increase the estimate" true
    (regs_after <= regs_before)

let test_fuel_guards_infinite_loops () =
  let m =
    Helpers.compile
      {|
int main() {
  int x = 1;
  while (x) { x = 1; }
  return 0;
}
|}
  in
  let sim = Gpusim.Interp.create ~fuel:10_000 Gpusim.Machine.test_machine m in
  match Gpusim.Interp.run_host sim with
  | exception
      Fault.Ompgpu_error.Error { Fault.Ompgpu_error.kind = Fault.Ompgpu_error.Timeout _; _ }
    -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_determinism () =
  let src =
    {|
double A[16];
int main() {
  #pragma omp target teams distribute num_teams(2) thread_limit(4)
  for (int i = 0; i < 16; i++) {
    double v = (double)i;
    #pragma omp parallel for
    for (int j = 0; j < 4; j++) {
      #pragma omp atomic
      v += 0.25;
    }
    A[i] = v;
  }
  double s = 0.0;
  for (int i = 0; i < 16; i++) { s += A[i]; }
  trace_f64(s);
  return 0;
}
|}
  in
  let c1 = (stats_of (run src)).Gpusim.Interp.cycles in
  let c2 = (stats_of (run src)).Gpusim.Interp.cycles in
  Alcotest.(check int) "cycle counts are deterministic" c1 c2

let test_mem_encode_decode () =
  let open Gpusim.Rvalue in
  let roundtrip p =
    let p' = Gpusim.Mem.decode_ptr (Gpusim.Mem.encode_ptr p) in
    Alcotest.(check bool) "ptr roundtrip" true (p = p')
  in
  roundtrip { sp = Sglobal; addr = 0 };
  roundtrip { sp = Sglobal; addr = 123456 };
  roundtrip { sp = Sshared 17; addr = 40 };
  roundtrip { sp = Slocal 0; addr = 8 };
  roundtrip { sp = Slocal 999; addr = 65536 }

let test_typed_memory_roundtrip () =
  let mem = Gpusim.Mem.create Gpusim.Machine.test_machine in
  let open Gpusim.Rvalue in
  let p = { sp = Sglobal; addr = 64 } in
  Gpusim.Mem.write mem ~current:0 p Ir.Types.F64 (F 3.25);
  (match Gpusim.Mem.read mem ~current:0 p Ir.Types.F64 with
  | F v -> Alcotest.(check (float 0.0)) "f64" 3.25 v
  | _ -> Alcotest.fail "f64 readback");
  Gpusim.Mem.write mem ~current:0 p Ir.Types.I32 (I (-7L));
  (match Gpusim.Mem.read mem ~current:0 p Ir.Types.I32 with
  | I v -> Alcotest.(check int64) "i32 sign extended" (-7L) v
  | _ -> Alcotest.fail "i32 readback");
  Gpusim.Mem.write mem ~current:0 p Ir.Types.I8 (I 200L);
  (match Gpusim.Mem.read mem ~current:0 p Ir.Types.I8 with
  | I v -> Alcotest.(check int64) "i8 wraps signed" (-56L) v
  | _ -> Alcotest.fail "i8 readback");
  Gpusim.Mem.write mem ~current:0 p (Ir.Types.Ptr Ir.Types.Generic)
    (P { sp = Sshared 3; addr = 16 });
  match Gpusim.Mem.read mem ~current:0 p (Ir.Types.Ptr Ir.Types.Generic) with
  | P { sp = Sshared 3; addr = 16 } -> ()
  | _ -> Alcotest.fail "pointer readback"

let test_f32_rounding () =
  Alcotest.check Helpers.trace_testable "f32 arithmetic is single precision"
    [ "f:0.100000001" ]
    (Helpers.run_trace
       {|
int main() {
  float x = 0.1;
  trace_f64((double)x);
  return 0;
}
|})

let test_out_of_bounds_trapped () =
  let m =
    Helpers.compile
      {|
double A[4];
int main() {
  double* p = A;
  trace_f64(p[100000000]);
  return 0;
}
|}
  in
  match Helpers.simulate m with
  | exception Gpusim.Rvalue.Sim_error _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds trap"

let qcheck_encode =
  Helpers.qtest "pointer encode/decode"
    QCheck.(pair (int_bound 100000) (int_bound 4000))
    (fun (addr, owner) ->
      let open Gpusim.Rvalue in
      List.for_all
        (fun p -> Gpusim.Mem.decode_ptr (Gpusim.Mem.encode_ptr p) = p)
        [ { sp = Sglobal; addr }; { sp = Sshared owner; addr }; { sp = Slocal owner; addr } ])

let suite =
  [
    Alcotest.test_case "launch dimensions" `Quick test_launch_dimensions;
    Alcotest.test_case "default launch dimensions" `Quick test_default_launch_dimensions;
    Alcotest.test_case "cyclic distribution coverage" `Quick
      test_cyclic_distribution_covers_all;
    Alcotest.test_case "atomics" `Quick test_atomics_race_free;
    Alcotest.test_case "private locals stay private" `Quick test_cross_thread_local_detected;
    Alcotest.test_case "Fig 3: legacy unsound, simplified sound" `Quick
      test_fig3_legacy_unsound_vs_simplified;
    Alcotest.test_case "worker state machine" `Quick test_generic_mode_worker_state_machine;
    Alcotest.test_case "num_threads clause" `Quick test_num_threads_clause_limits_region;
    Alcotest.test_case "heap accounting and OOM" `Quick test_heap_accounting_and_oom;
    Alcotest.test_case "shared memory stats" `Quick test_shared_memory_stats;
    Alcotest.test_case "register estimate monotone" `Quick test_register_estimate_monotone;
    Alcotest.test_case "fuel guard" `Quick test_fuel_guards_infinite_loops;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "pointer encode/decode" `Quick test_mem_encode_decode;
    Alcotest.test_case "typed memory" `Quick test_typed_memory_roundtrip;
    Alcotest.test_case "f32 rounding" `Quick test_f32_rounding;
    Alcotest.test_case "bounds checking" `Quick test_out_of_bounds_trapped;
    qcheck_encode;
  ]

(* Renderers for the evaluation tables and figures.  Each produces the rows
   the paper reports; EXPERIMENTS.md records paper-vs-measured.

   Rendering is two-phase: collect every measurement through
   [Runner.run_batch] (parallel when a [pool] is given), then print from the
   ordered results into a buffer local to the call.  The buffer used to be a
   module-level global, which silently corrupted output when two tables were
   rendered from different domains; collection order is the only thing that
   parallelism may change, and batches preserve input order, so a table is
   byte-identical at any [-j]. *)

(* A per-call line printer over a private buffer.  The polymorphic record
   field keeps [line] usable at every format type inside the callback
   (a plain lambda parameter would be monomorphic). *)
type liner = { line : 'a. ('a, Format.formatter, unit, unit) format4 -> 'a }

let with_lines f =
  let bf = Buffer.create 4096 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string bf (s ^ "\n")) fmt in
  f { line };
  Buffer.contents bf

(* ------------------------------------------------------------------ *)
(* Figure 9: optimization opportunities and remarks per kernel          *)
(* ------------------------------------------------------------------ *)

let fig9 ?machine ?scale ?pool ?cache () =
  with_lines @@ fun { line } ->
  line "Figure 9: optimization opportunities and remarks (full pipeline)";
  line "%-10s | %-17s | %-17s | %-13s | %s" "app" "h2s / h2shared" "CSM / SPMDzation"
    "RTOpt EM / PL" "Remarks";
  line "%s" (String.make 78 '-');
  let measurements =
    Runner.run_batch ?machine ?scale ?pool ?cache
      (List.map (fun app -> (app, Config.dev0)) Proxyapps.Apps.all)
  in
  List.iter
    (fun (m : Runner.measurement) ->
      match m.Runner.outcome with
      | Runner.Ok { report = Some r; _ } ->
        let spmd = r.Openmpopt.Pass_manager.spmdized > 0 in
        let csm = r.Openmpopt.Pass_manager.custom_state_machines in
        let csm_str =
          if spmd then Printf.sprintf "(%d) / %d" (max 1 csm) 1
          else if csm > 0 then Printf.sprintf "%d / 0" csm
          else "n/a"
        in
        let remarks =
          List.length
            (List.filter
               (fun (rm : Openmpopt.Remark.t) -> rm.Openmpopt.Remark.kind = Openmpopt.Remark.Passed)
               r.Openmpopt.Pass_manager.remarks)
        in
        line "%-10s | %6d / %-8d | %-17s | %5d / %-5d | %d" m.Runner.app
          r.Openmpopt.Pass_manager.heap_to_stack r.Openmpopt.Pass_manager.heap_to_shared
          csm_str r.Openmpopt.Pass_manager.folds_exec_mode
          r.Openmpopt.Pass_manager.folds_parallel_level remarks
      | Runner.Ok { report = None; _ } -> line "%-10s | (no report)" m.Runner.app
      | Runner.Err { kind = Fault.Ompgpu_error.Oom; message; _ } ->
        line "%-10s | OOM: %s" m.Runner.app message
      | Runner.Err e -> line "%-10s | ERROR: %s" m.Runner.app (Fault.Ompgpu_error.to_string e))
    measurements

(* ------------------------------------------------------------------ *)
(* Figure 10: kernel time, shared memory, registers per build           *)
(* ------------------------------------------------------------------ *)

let fig10 ?machine ?scale ?pool ?cache () =
  (* one flat batch over every (app, config) cell, then render per app *)
  let jobs =
    List.concat_map
      (fun app ->
        List.map
          (fun config -> (app, config))
          (Config.fig10_configs app.Proxyapps.App.name))
      Proxyapps.Apps.all
  in
  let results = Runner.run_batch ?machine ?scale ?pool ?cache jobs in
  let by_app =
    List.map2 (fun (app, _) m -> (app.Proxyapps.App.name, m)) jobs results
  in
  with_lines @@ fun { line } ->
  line "Figure 10: kernel cycles, shared memory and register usage";
  line "%-10s %-28s %12s %10s %7s" "app" "build" "cycles" "SMem(KB)" "#Regs";
  line "%s" (String.make 72 '-');
  List.iter
    (fun app ->
      List.iter
        (fun (name, (m : Runner.measurement)) ->
          if String.equal name app.Proxyapps.App.name then
            match m.Runner.outcome with
            | Runner.Ok x ->
              line "%-10s %-28s %12d %10.2f %7d" m.Runner.app
                m.Runner.config.Config.label x.Runner.cycles
                (float_of_int x.Runner.smem_bytes /. 1024.0)
                x.Runner.registers
            | Runner.Err { kind = Fault.Ompgpu_error.Oom; _ } ->
              line "%-10s %-28s %12s" m.Runner.app m.Runner.config.Config.label "OOM"
            | Runner.Err e ->
              line "%-10s %-28s ERROR: %s" m.Runner.app m.Runner.config.Config.label
                (Fault.Ompgpu_error.to_string e))
        by_app;
      line "%s" "")
    Proxyapps.Apps.all

(* ------------------------------------------------------------------ *)
(* Figure 11: per-app relative performance                              *)
(* ------------------------------------------------------------------ *)

let check_consistency (measurements : Runner.measurement list) =
  (* all successful configs must agree on the application checksum *)
  let sums =
    List.filter_map
      (fun m ->
        match m.Runner.outcome with
        | Runner.Ok { checksum = Some c; _ } -> Some (m.Runner.config.Config.label, c)
        | _ -> None)
      measurements
  in
  match sums with
  | [] -> []
  | (_, ref_sum) :: _ ->
    List.filter_map
      (fun (label, c) ->
        if Float.abs (c -. ref_sum) > 1e-6 *. (1.0 +. Float.abs ref_sum) then
          Some (Printf.sprintf "MISMATCH %s: %.9g vs %.9g" label c ref_sum)
        else None)
      sums

let fig11 ?machine ?scale ?pool ?cache (app : Proxyapps.App.t) =
  let configs = Config.fig11_configs app.Proxyapps.App.name in
  let measurements = Runner.run_configs ?machine ?scale ?pool ?cache app configs in
  let baseline =
    List.find
      (fun m -> m.Runner.config.Config.label = "LLVM 12")
      measurements
  in
  with_lines @@ fun { line } ->
  line "Figure 11 (%s): GPU kernel performance relative to LLVM 12" app.Proxyapps.App.name;
  List.iter
    (fun m ->
      match m.Runner.outcome with
      | Runner.Ok _ -> (
        match Runner.relative ~baseline m with
        | Some r -> line "  %-32s %6.2fx" m.Runner.config.Config.label r
        | None -> line "  %-32s %6s" m.Runner.config.Config.label "n/a")
      | Runner.Err { kind = Fault.Ompgpu_error.Oom; _ } ->
        line "  %-32s %6s" m.Runner.config.Config.label "OOM"
      | Runner.Err e ->
        line "  %-32s ERROR: %s" m.Runner.config.Config.label
          (Fault.Ompgpu_error.to_string e))
    measurements;
  List.iter (fun msg -> line "  %s" msg) (check_consistency measurements)

let fig11_all ?machine ?scale ?pool ?cache () =
  String.concat "\n"
    (List.map (fun app -> fig11 ?machine ?scale ?pool ?cache app) Proxyapps.Apps.all)

(* ------------------------------------------------------------------ *)
(* Per-pass pipeline breakdown (Observe trace, dev0 build)              *)
(* ------------------------------------------------------------------ *)

let pass_breakdown ?machine ?scale (app : Proxyapps.App.t) =
  with_lines @@ fun { line } ->
  line "Pass breakdown (%s, %s): per-round pipeline effects" app.Proxyapps.App.name
    Config.dev0.Config.label;
  line "%-3s %-14s %10s %8s %8s %7s  %s" "rnd" "pass" "time(us)" "Δinstrs" "Δblocks"
    "Δallocs" "counters";
  line "%s" (String.make 76 '-');
  let m = Runner.run ?machine ?scale ~with_trace:true app Config.dev0 in
  match m.Runner.outcome with
  | Runner.Ok { trace = Some tr; _ } ->
    List.iter
      (fun (e : Observe.Trace.event) ->
        let counters =
          String.concat ", "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%+d" k v) e.counters)
        in
        line "%-3d %-14s %10.1f %+8d %+8d %+7d  %s" e.round e.pass (e.time_s *. 1e6)
          e.delta.Observe.Trace.instrs e.delta.Observe.Trace.blocks
          e.delta.Observe.Trace.allocs counters)
      (Observe.Trace.events tr)
  | Runner.Ok { trace = None; _ } -> line "  (no trace)"
  | Runner.Err { kind = Fault.Ompgpu_error.Oom; message; _ } -> line "  OOM: %s" message
  | Runner.Err e -> line "  ERROR: %s" (Fault.Ompgpu_error.to_string e)

let pass_breakdown_all ?machine ?scale () =
  String.concat "\n"
    (List.map (fun app -> pass_breakdown ?machine ?scale app) Proxyapps.Apps.all)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md): guard grouping and internalization            *)
(* ------------------------------------------------------------------ *)

let ablation_configs =
  [
    ("full pipeline", Openmpopt.Pass_manager.default_options);
    ( "no guard grouping (Fig. 7 off)",
      { Openmpopt.Pass_manager.default_options with disable_guard_grouping = true } );
    ( "no internalization",
      { Openmpopt.Pass_manager.default_options with disable_internalization = true } );
    ( "no heap-to-shared",
      { Openmpopt.Pass_manager.default_options with disable_heap_to_shared = true } );
  ]

let ablations ?machine ?scale ?pool ?cache () =
  let jobs =
    List.concat_map
      (fun app ->
        List.map
          (fun (label, options) ->
            (app, { Config.label; build = Config.dev options; inject = [] }))
          ablation_configs)
      Proxyapps.Apps.all
  in
  let results = Runner.run_batch ?machine ?scale ?pool ?cache jobs in
  let by_app =
    List.map2 (fun (app, _) m -> (app.Proxyapps.App.name, m)) jobs results
  in
  with_lines @@ fun { line } ->
  line "Ablations: cycles / barriers / guarded regions under pass variants";
  line "%-10s %-34s %12s %9s %7s" "app" "variant" "cycles" "barriers" "guards";
  line "%s" (String.make 78 '-');
  List.iter
    (fun app ->
      List.iter
        (fun (name, (m : Runner.measurement)) ->
          if String.equal name app.Proxyapps.App.name then
            let label = m.Runner.config.Config.label in
            match m.Runner.outcome with
            | Runner.Ok x ->
              let guards =
                match x.Runner.report with
                | Some r -> r.Openmpopt.Pass_manager.guards
                | None -> 0
              in
              line "%-10s %-34s %12d %9d %7d" m.Runner.app label x.Runner.cycles
                x.Runner.barriers guards
            | Runner.Err { kind = Fault.Ompgpu_error.Oom; _ } ->
              line "%-10s %-34s %12s" m.Runner.app label "OOM"
            | Runner.Err e ->
              line "%-10s %-34s ERROR: %s" m.Runner.app label
                (Fault.Ompgpu_error.to_string e))
        by_app;
      line "%s" "")
    Proxyapps.Apps.all

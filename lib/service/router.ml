(* The compile-fleet router (see the .mli and docs/FLEET.md).

   Layering mirrors Server: connection threads own all protocol work; the
   shards own all compile work (each one a full Supervisor+Journal+Server
   stack).  The router's own work per request is one ring lookup, one
   admission decision and one socket relay — it never compiles unless the
   whole fleet is unreachable.

   The one invariant everything here defends: a reply through the router
   is byte-identical to a reply from a lone daemon.  Compile requests are
   relayed as the client's original bytes and responses come back
   verbatim; the in-process fallback uses the exact encoder the shards
   use.  Routing reads a *parsed copy* and never touches the wire. *)

module J = Observe.Json
module E = Fault.Ompgpu_error

type backend = {
  name : string;
  socket_path : string;
  start : unit -> unit;
  stop : unit -> unit;
  alive : unit -> bool;
  pid : unit -> int option;
}

let inproc_backend (sup_cfg : Supervisor.config) ~name =
  (* one slot, written only by [start]/[stop] callers (create + the
     monitor thread), read by [alive] *)
  let current = ref None in
  let start () =
    let sup = Supervisor.create sup_cfg in
    let running = ref true in
    let thread =
      Thread.create
        (fun () ->
          (try ignore (Supervisor.run sup) with _ -> ());
          running := false)
        ()
    in
    current := Some (sup, running, thread)
  in
  let stop () =
    match !current with
    | None -> ()
    | Some (sup, _, thread) ->
      Supervisor.stop sup;
      (try Thread.join thread with _ -> ())
  in
  let alive () =
    match !current with Some (_, running, _) -> !running | None -> false
  in
  {
    name;
    socket_path = sup_cfg.Supervisor.server.Server.socket_path;
    start;
    stop;
    alive;
    pid = (fun () -> None);
  }

(* ------------------------------------------------------------------ *)
(* Per-tenant fair-queue admission                                     *)
(* ------------------------------------------------------------------ *)

module Admission = struct
  type slot = { mutable in_flight : int; mutable waiting : int }

  type t = {
    capacity : int;
    queue_deadline_s : float;
    mutex : Mutex.t;
    tenants : (string, slot) Hashtbl.t;
    mutable total : int;
  }

  type outcome = Admitted | Shed of { pending : int; capacity : int }

  let create ~capacity ~queue_deadline_s =
    {
      capacity = max 1 capacity;
      queue_deadline_s = max 0. queue_deadline_s;
      mutex = Mutex.create ();
      tenants = Hashtbl.create 8;
      total = 0;
    }

  let slot t tenant =
    match Hashtbl.find_opt t.tenants tenant with
    | Some s -> s
    | None ->
      let s = { in_flight = 0; waiting = 0 } in
      Hashtbl.add t.tenants tenant s;
      s

  let active t =
    Hashtbl.fold
      (fun _ s n -> if s.in_flight > 0 || s.waiting > 0 then n + 1 else n)
      t.tenants 0

  (* A tenant's share shrinks as tenants show up and is never zero: with
     [capacity] 4 and three active tenants each holds one slot and the
     fourth slot goes to whoever asks first — a greedy tenant saturates
     its share and waits, it cannot starve the others. *)
  let acquire t ~tenant =
    Mutex.lock t.mutex;
    let s = slot t tenant in
    s.waiting <- s.waiting + 1;
    let deadline = Unix.gettimeofday () +. t.queue_deadline_s in
    let rec wait () =
      let share = max 1 (t.capacity / max 1 (active t)) in
      if t.total < t.capacity && s.in_flight < share then begin
        s.waiting <- s.waiting - 1;
        s.in_flight <- s.in_flight + 1;
        t.total <- t.total + 1;
        Mutex.unlock t.mutex;
        Admitted
      end
      else if Unix.gettimeofday () >= deadline then begin
        s.waiting <- s.waiting - 1;
        let pending = t.total in
        Mutex.unlock t.mutex;
        Shed { pending; capacity = t.capacity }
      end
      else begin
        (* OCaml's Condition has no timed wait; a short poll bounds the
           queue latency without missing wakeups *)
        Mutex.unlock t.mutex;
        Thread.delay 0.002;
        Mutex.lock t.mutex;
        wait ()
      end
    in
    wait ()

  let release t ~tenant =
    Mutex.lock t.mutex;
    (match Hashtbl.find_opt t.tenants tenant with
    | Some s -> s.in_flight <- max 0 (s.in_flight - 1)
    | None -> ());
    t.total <- max 0 (t.total - 1);
    Mutex.unlock t.mutex

  let in_flight t =
    Mutex.lock t.mutex;
    let n = t.total in
    Mutex.unlock t.mutex;
    n
end

(* ------------------------------------------------------------------ *)
(* Config, shard health, router state                                  *)
(* ------------------------------------------------------------------ *)

type config = {
  socket_path : string;
  capacity : int;
  queue_deadline_s : float;
  relay_deadline_s : float;
  probe_interval_s : float;
  probe_deadline_s : float;
  degraded_after : int;
  down_after : int;
  max_respawns : int;
  respawn_window_s : float;
  eject_cooldown_s : float;
  vnodes : int;
  injector : Fault.Injector.t;
  log : string -> unit;
}

let default_config =
  {
    socket_path = "./mompd-router.sock";
    capacity = 16;
    queue_deadline_s = 0.25;
    relay_deadline_s = 30.0;
    probe_interval_s = 0.2;
    probe_deadline_s = 1.0;
    degraded_after = 1;
    down_after = 2;
    max_respawns = 3;
    respawn_window_s = 10.0;
    eject_cooldown_s = 2.0;
    vnodes = Ring.default_vnodes;
    injector = Fault.Injector.none;
    log = ignore;
  }

type shard_state = Up | Degraded | Down | Ejected

let state_name = function
  | Up -> "up"
  | Degraded -> "degraded"
  | Down -> "down"
  | Ejected -> "ejected"

type shard = {
  backend : backend;
  mutable state : shard_state;
  mutable consec_fail : int;  (* consecutive probe failures *)
  mutable probes_ok : int;
  mutable probes_fail : int;
  mutable respawns : int;
  mutable respawn_times : float list;  (* sliding ejection window *)
  mutable ejected_until : float;
  mutable failovers_from : int;  (* requests routed away after a failure *)
}

type counters = {
  mutable served : int;  (* response lines written, all kinds *)
  mutable routed : int;  (* compile lines settled by a shard *)
  mutable failovers : int;  (* candidate shards skipped after a failure *)
  mutable fallbacks : int;  (* compiles settled in-process *)
  mutable quota_shed : int;  (* fair-queue deadline expiries *)
  mutable fleet_requests : int;
  mutable stats_requests : int;
  mutable health_requests : int;
  mutable bad_requests : int;
}

type t = {
  cfg : config;
  ring : Ring.t;
  shards : shard array;  (* aligned with [Ring.shards] *)
  admission : Admission.t;
  listen_fd : Unix.file_descr;
  mutex : Mutex.t;
  counters : counters;
  mutable stopped : bool;
  mutable conns : (Unix.file_descr * Thread.t) list;
  mutable daemons : Thread.t list;  (* prober + monitor *)
  started_at : float;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let create cfg backends =
  if backends = [] then invalid_arg "Router.create: no shards";
  let cfg = { cfg with capacity = max 1 cfg.capacity; vnodes = max 1 cfg.vnodes } in
  let ring = Ring.create ~vnodes:cfg.vnodes (List.map (fun b -> b.name) backends) in
  let shards =
    Array.map
      (fun name ->
        {
          backend = List.find (fun b -> b.name = name) backends;
          state = Down;  (* probed up, never assumed up *)
          consec_fail = 0;
          probes_ok = 0;
          probes_fail = 0;
          respawns = 0;
          respawn_times = [];
          ejected_until = 0.;
          failovers_from = 0;
        })
      (Ring.shards ring)
  in
  Array.iter (fun s -> s.backend.start ()) shards;
  {
    cfg;
    ring;
    shards;
    admission =
      Admission.create ~capacity:cfg.capacity
        ~queue_deadline_s:cfg.queue_deadline_s;
    listen_fd = Server.bind_listener cfg.socket_path;
    mutex = Mutex.create ();
    counters =
      {
        served = 0;
        routed = 0;
        failovers = 0;
        fallbacks = 0;
        quota_shed = 0;
        fleet_requests = 0;
        stats_requests = 0;
        health_requests = 0;
        bad_requests = 0;
      };
    stopped = false;
    conns = [];
    daemons = [];
    started_at = Unix.gettimeofday ();
  }

(* ------------------------------------------------------------------ *)
(* Health probing and respawn/ejection                                 *)
(* ------------------------------------------------------------------ *)

let probe_once t shard =
  let injected =
    Fault.Injector.fire t.cfg.injector Fault.Injector.Probe_timeout
  in
  (not injected)
  &&
  match
    Client.connect ~deadline_s:t.cfg.probe_deadline_s
      ~socket_path:shard.backend.socket_path ()
  with
  | c ->
    let ok = Result.is_ok (Client.health c ()) in
    Client.close c;
    ok
  | exception _ -> false

let transition t shard next =
  if shard.state <> next then begin
    t.cfg.log
      (Printf.sprintf "shard %s: %s -> %s" shard.backend.name
         (state_name shard.state) (state_name next));
    shard.state <- next
  end

let probe_shard t shard =
  let ok = probe_once t shard in
  locked t (fun () ->
      if ok then begin
        shard.probes_ok <- shard.probes_ok + 1;
        shard.consec_fail <- 0;
        if shard.state <> Ejected then transition t shard Up
      end
      else begin
        shard.probes_fail <- shard.probes_fail + 1;
        shard.consec_fail <- shard.consec_fail + 1;
        if shard.state <> Ejected then
          if shard.consec_fail >= t.cfg.down_after then transition t shard Down
          else if shard.consec_fail >= t.cfg.degraded_after then
            transition t shard Degraded
      end)

let prober t =
  while not (locked t (fun () -> t.stopped)) do
    Array.iter
      (fun s ->
        if locked t (fun () -> s.state <> Ejected && not t.stopped) then
          probe_shard t s)
      t.shards;
    Thread.delay t.cfg.probe_interval_s
  done

(* The monitor owns [backend.alive]/[backend.start]: a dead shard is
   respawned with its place in the sliding window recorded, and a shard
   that burns through [max_respawns] respawns inside [respawn_window_s]
   is ejected — no longer probed, no longer a ring candidate — until the
   cooldown expires, when the window is cleared and it rejoins as [down]
   for the prober to vouch for. *)
let monitor_shard t shard =
  let now = Unix.gettimeofday () in
  match locked t (fun () -> shard.state) with
  | Ejected ->
    if now >= shard.ejected_until then begin
      locked t (fun () ->
          shard.respawn_times <- [];
          shard.consec_fail <- 0;
          transition t shard Down);
      if not (shard.backend.alive ()) then begin
        locked t (fun () -> shard.respawns <- shard.respawns + 1);
        try shard.backend.start () with _ -> ()
      end
    end
  | _ ->
    if not (shard.backend.alive ()) then begin
      let recent =
        List.filter
          (fun ts -> ts > now -. t.cfg.respawn_window_s)
          shard.respawn_times
      in
      if List.length recent >= t.cfg.max_respawns then begin
        locked t (fun () ->
            shard.ejected_until <- now +. t.cfg.eject_cooldown_s;
            transition t shard Ejected);
        t.cfg.log
          (Printf.sprintf "shard %s: crash-looping (%d respawns in %gs), ejected for %gs"
             shard.backend.name (List.length recent) t.cfg.respawn_window_s
             t.cfg.eject_cooldown_s)
      end
      else begin
        locked t (fun () ->
            shard.respawn_times <- now :: recent;
            shard.respawns <- shard.respawns + 1;
            shard.consec_fail <- 0;
            transition t shard Down);
        t.cfg.log (Printf.sprintf "shard %s: dead, respawning" shard.backend.name);
        try shard.backend.start () with _ -> ()
      end
    end

let monitor t =
  while not (locked t (fun () -> t.stopped)) do
    Array.iter (fun s -> monitor_shard t s) t.shards;
    Thread.delay (min 0.05 t.cfg.probe_interval_s)
  done

(* ------------------------------------------------------------------ *)
(* Ring candidates and the raw-line relay                              *)
(* ------------------------------------------------------------------ *)

(* Preference order for a key: ring order, ejected shards excluded, then
   stably bucketed up < degraded < down — a down shard is still worth one
   connect attempt (it may be mid-boot) before the in-process fallback.
   The injector can skip the primary ([shard-down]) or rotate the order
   ([ring-skew]): both produce cold-but-correct routing, which is exactly
   what the chaos harness wants to observe surviving. *)
let candidates t key =
  let ranked =
    locked t (fun () ->
        List.filter_map
          (fun i ->
            match t.shards.(i).state with
            | Ejected -> None
            | Up -> Some (0, i)
            | Degraded -> Some (1, i)
            | Down -> Some (2, i))
          (Ring.order t.ring key))
  in
  let order = List.map snd (List.stable_sort (fun (a, _) (b, _) -> compare a b) ranked) in
  let order =
    if Fault.Injector.fire t.cfg.injector Fault.Injector.Ring_skew then
      match order with [] | [ _ ] -> order | hd :: tl -> tl @ [ hd ]
    else order
  in
  if Fault.Injector.fire t.cfg.injector Fault.Injector.Shard_down then
    match order with [] -> [] | _ :: tl -> tl
  else order

(* Bounded raw-line framing: the same limits as [Protocol.read_message],
   but keeping the original bytes so the relay cannot re-encode. *)
let read_frame ic =
  let buf = Buffer.create 256 in
  let rec fill () =
    match In_channel.input_char ic with
    | None -> if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | Some '\n' -> `Line (Buffer.contents buf)
    | Some c ->
      if Buffer.length buf >= Protocol.max_frame_bytes then `Overflow
      else begin
        Buffer.add_char buf c;
        fill ()
      end
  in
  fill ()

let write_line oc line =
  Out_channel.output_string oc line;
  Out_channel.output_char oc '\n';
  Out_channel.flush oc

(* One request relayed to one shard over a fresh connection: the client's
   original line out, the shard's response line back, both verbatim. *)
let relay_once t shard line =
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_UNIX shard.backend.socket_path);
       if t.cfg.relay_deadline_s > 0. then begin
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.relay_deadline_s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.relay_deadline_s
       end
     with e ->
       Unix.close fd;
       raise e);
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_line (Unix.out_channel_of_descr fd) line;
        read_frame (Unix.in_channel_of_descr fd))
  with
  | `Line resp -> Ok resp
  | `Eof -> Error "connection closed before a response arrived"
  | `Overflow -> Error "oversized response frame"
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | exception Sys_error msg -> Error msg
  | exception Sys_blocked_io -> Error "relay deadline exceeded"
  | exception End_of_file -> Error "connection closed before a response arrived"

(* A shard answering "shed" (a settled Overload, exit 40) is healthy but
   full; the failover ladder tries the other shards before giving up. *)
let is_shed_line line =
  match J.of_string line with
  | Ok j -> (
    match Option.bind (J.member "exit_code" j) J.to_int with
    | Some 40 -> true
    | _ -> false)
  | Error _ -> false

(* A transport failure against a shard is stronger evidence than a missed
   probe: mark it down now, let the prober vouch it back up. *)
let strike t shard reason =
  locked t (fun () ->
      shard.failovers_from <- shard.failovers_from + 1;
      if shard.state <> Ejected then transition t shard Down);
  t.cfg.log
    (Printf.sprintf "shard %s: relay failed (%s), failing over"
       shard.backend.name reason)

(* ------------------------------------------------------------------ *)
(* Documents                                                           *)
(* ------------------------------------------------------------------ *)

let shard_counts t =
  locked t (fun () ->
      Array.fold_left
        (fun (up, degraded, down, ejected) s ->
          match s.state with
          | Up -> (up + 1, degraded, down, ejected)
          | Degraded -> (up, degraded + 1, down, ejected)
          | Down -> (up, degraded, down + 1, ejected)
          | Ejected -> (up, degraded, down, ejected + 1))
        (0, 0, 0, 0) t.shards)

let shard_stats_live t shard =
  match
    Client.connect ~deadline_s:t.cfg.probe_deadline_s
      ~socket_path:shard.backend.socket_path ()
  with
  | c ->
    let stats =
      match Client.stats c () with Ok s -> Some s | Error _ -> None
    in
    Client.close c;
    stats
  | exception _ -> None

(* Roll up the shards' [storage] sections (Server.storage_json) into one
   fleet-wide view: reachable, non-ejected shards' cache/disk/journal
   counters summed, plus how many shards actually reported.  The router
   itself holds no cache — its in-process fallback compiles are one-shot
   — so every number here is shard truth, fetched live under the probe
   deadline. *)
let storage_rollup t =
  let at path doc =
    List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some doc) path
  in
  let int_at path doc =
    Option.value ~default:0 (Option.bind (at path doc) J.to_int)
  in
  let reporting = ref 0 in
  let cache_entries = ref 0 and cache_bytes = ref 0 in
  let cache_evictions = ref 0 in
  let disk_bytes = ref 0 and disk_entries = ref 0 in
  let disk_evictions = ref 0 and disk_quarantined = ref 0 in
  let store_failures = ref 0 and breaker_trips = ref 0 in
  let rotations = ref 0 in
  Array.iter
    (fun s ->
      if locked t (fun () -> s.state) <> Ejected then
        match Option.bind (shard_stats_live t s) (J.member "storage") with
        | None -> ()
        | Some st ->
          incr reporting;
          cache_entries := !cache_entries + int_at [ "cache"; "entries" ] st;
          cache_bytes := !cache_bytes + int_at [ "cache"; "bytes" ] st;
          cache_evictions :=
            !cache_evictions + int_at [ "cache"; "evictions" ] st;
          disk_bytes := !disk_bytes + int_at [ "disk"; "bytes" ] st;
          disk_entries := !disk_entries + int_at [ "disk"; "entries" ] st;
          disk_evictions := !disk_evictions + int_at [ "disk"; "evictions" ] st;
          disk_quarantined :=
            !disk_quarantined + int_at [ "disk"; "quarantined" ] st;
          store_failures :=
            !store_failures + int_at [ "disk"; "store_failures" ] st;
          breaker_trips := !breaker_trips + int_at [ "disk"; "breaker_trips" ] st;
          rotations := !rotations + int_at [ "journal"; "rotations" ] st)
    t.shards;
  J.Obj
    [
      ("shards_reporting", J.Int !reporting);
      ( "cache",
        J.Obj
          [
            ("entries", J.Int !cache_entries);
            ("bytes", J.Int !cache_bytes);
            ("evictions", J.Int !cache_evictions);
          ] );
      ( "disk",
        J.Obj
          [
            ("bytes", J.Int !disk_bytes);
            ("entries", J.Int !disk_entries);
            ("evictions", J.Int !disk_evictions);
            ("quarantined", J.Int !disk_quarantined);
            ("store_failures", J.Int !store_failures);
            ("breaker_trips", J.Int !breaker_trips);
          ] );
      ("journal", J.Obj [ ("rotations", J.Int !rotations) ]);
    ]

let router_json t =
  let c = t.counters in
  locked t (fun () ->
      J.Obj
        [
          ("served", J.Int c.served);
          ("routed", J.Int c.routed);
          ("failovers", J.Int c.failovers);
          ("fallbacks", J.Int c.fallbacks);
          ("shed", J.Int c.quota_shed);
          ("fleet", J.Int c.fleet_requests);
          ("stats", J.Int c.stats_requests);
          ("health", J.Int c.health_requests);
          ("bad", J.Int c.bad_requests);
        ])

let health_json t =
  let up, _, _, _ = shard_counts t in
  Ompgpu_api.with_schema
    (J.Obj
       [
         ( "status",
           J.String
             (if locked t (fun () -> t.stopped) then "draining"
              else if up > 0 then "ok"
              else "degraded") );
         ("role", J.String "router");
         ("protocol", J.Int Protocol.version);
         ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
         ("shards_up", J.Int up);
         ("shards_total", J.Int (Array.length t.shards));
         ("in_flight", J.Int (Admission.in_flight t.admission));
         ("capacity", J.Int t.cfg.capacity);
       ])

let stats_json t =
  let up, degraded, down, ejected = shard_counts t in
  Ompgpu_api.with_schema
    (J.Obj
       [
         ("role", J.String "router");
         ("protocol", J.Int Protocol.version);
         ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
         ("capacity", J.Int t.cfg.capacity);
         ("in_flight", J.Int (Admission.in_flight t.admission));
         ("requests", router_json t);
         ("storage", storage_rollup t);
         ( "shards",
           J.Obj
             [
               ("total", J.Int (Array.length t.shards));
               ("up", J.Int up);
               ("degraded", J.Int degraded);
               ("down", J.Int down);
               ("ejected", J.Int ejected);
             ] );
       ])

let fleet_json t =
  let shard_entries =
    Array.to_list
      (Array.map
         (fun s ->
           let state, probes_ok, probes_fail, respawns, failovers_from =
             locked t (fun () ->
                 (s.state, s.probes_ok, s.probes_fail, s.respawns, s.failovers_from))
           in
           J.Obj
             [
               ("name", J.String s.backend.name);
               ("socket", J.String s.backend.socket_path);
               ( "pid",
                 match s.backend.pid () with
                 | Some pid -> J.Int pid
                 | None -> J.Null );
               ("state", J.String (state_name state));
               ("probes_ok", J.Int probes_ok);
               ("probes_failed", J.Int probes_fail);
               ("respawns", J.Int respawns);
               ("failovers_from", J.Int failovers_from);
               ( "stats",
                 match
                   if state = Ejected then None else shard_stats_live t s
                 with
                 | Some doc -> doc
                 | None -> J.Null );
             ])
         t.shards)
  in
  Ompgpu_api.with_schema
    (J.Obj
       [
         ("role", J.String "router");
         ("protocol", J.Int Protocol.version);
         ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
         ( "ring",
           J.Obj
             [
               ("vnodes", J.Int t.cfg.vnodes);
               ( "shards",
                 J.List
                   (Array.to_list
                      (Array.map (fun n -> J.String n) (Ring.shards t.ring))) );
             ] );
         ("capacity", J.Int t.cfg.capacity);
         ("in_flight", J.Int (Admission.in_flight t.admission));
         ("router", router_json t);
         ("shards", J.List shard_entries);
       ])

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let respond_raw t oc line =
  write_line oc line;
  locked t (fun () -> t.counters.served <- t.counters.served + 1)

let respond t oc response =
  respond_raw t oc (J.to_string ~minify:true (Protocol.response_to_json response))

(* One compile through the fleet: admission, then the failover ladder —
   every live candidate in ring order, then the in-process fallback — so
   the request settles with the right bytes no matter which shards died
   mid-flight.  Zero client-visible transport failures by construction. *)
let handle_compile t oc ~raw ~id ~file ~source ~config ~tenant =
  let op = if config.Ompgpu_api.Config.run_sim then "run" else "compile" in
  let tenant_key = Option.value tenant ~default:"<anon>" in
  match Admission.acquire t.admission ~tenant:tenant_key with
  | Admission.Shed { pending; capacity } ->
    locked t (fun () -> t.counters.quota_shed <- t.counters.quota_shed + 1);
    let result =
      Ompgpu_api.errored ~file
        (E.make
           (E.Overload { pending; capacity })
           ~phase:E.Serving
           (Printf.sprintf
              "request shed: tenant %S is over its fleet share (%d in flight \
               against a fleet capacity of %d); retry with backoff"
              tenant_key pending capacity))
    in
    respond t oc (Protocol.Compiled { id; op; result })
  | Admission.Admitted ->
    Fun.protect
      ~finally:(fun () -> Admission.release t.admission ~tenant:tenant_key)
      (fun () ->
        let key = Ompgpu_api.cache_key ~file ~config ~source in
        let rec ladder = function
          | [] ->
            (* the whole fleet is unreachable or shedding: settle the
               request here — the same compile the shards would run,
               byte-identical by construction *)
            locked t (fun () -> t.counters.fallbacks <- t.counters.fallbacks + 1);
            let result = Ompgpu_api.compile_buffered ~config ~file source in
            respond t oc (Protocol.Compiled { id; op; result })
          | i :: rest -> (
            let shard = t.shards.(i) in
            match relay_once t shard raw with
            | Ok resp when not (is_shed_line resp) ->
              locked t (fun () -> t.counters.routed <- t.counters.routed + 1);
              respond_raw t oc resp
            | Ok _shed ->
              locked t (fun () ->
                  t.counters.failovers <- t.counters.failovers + 1);
              ladder rest
            | Error reason ->
              strike t shard reason;
              locked t (fun () ->
                  t.counters.failovers <- t.counters.failovers + 1);
              ladder rest)
        in
        ladder (candidates t key))

let stop t =
  locked t (fun () -> t.stopped <- true);
  try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let bad () =
    locked t (fun () -> t.counters.bad_requests <- t.counters.bad_requests + 1)
  in
  let rec loop () =
    match read_frame ic with
    | `Eof -> ()
    | `Overflow ->
      bad ();
      respond t oc
        (Protocol.Rejected
           {
             id = None;
             error =
               E.make E.Bad_request ~phase:E.Serving
                 (Printf.sprintf "oversized frame: request line exceeds %d bytes"
                    Protocol.max_frame_bytes);
           })
      (* the unread remainder cannot be resynchronized against: sever *)
    | `Line raw ->
      (match J.of_string raw with
      | Error msg ->
        bad ();
        respond t oc
          (Protocol.Rejected
             {
               id = None;
               error =
                 E.make E.Bad_request ~phase:E.Serving
                   (Printf.sprintf "unparseable request: %s" msg);
             })
      | Ok j -> (
        match Protocol.request_of_json j with
        | Error error ->
          bad ();
          let id = Option.bind (J.member "id" j) J.to_str in
          respond t oc (Protocol.Rejected { id; error })
        | Ok (Protocol.Stats { id }) ->
          locked t (fun () ->
              t.counters.stats_requests <- t.counters.stats_requests + 1);
          respond t oc (Protocol.Stats_reply { id; stats = stats_json t })
        | Ok (Protocol.Health { id }) ->
          locked t (fun () ->
              t.counters.health_requests <- t.counters.health_requests + 1);
          respond t oc (Protocol.Health_reply { id; health = health_json t })
        | Ok (Protocol.Fleet { id }) ->
          locked t (fun () ->
              t.counters.fleet_requests <- t.counters.fleet_requests + 1);
          respond t oc (Protocol.Fleet_reply { id; fleet = fleet_json t })
        | Ok (Protocol.Shutdown { id }) ->
          respond t oc (Protocol.Shutdown_ack { id });
          stop t;
          raise Exit
        | Ok (Protocol.Compile { id; file; source; config; tenant }) ->
          handle_compile t oc ~raw ~id ~file ~source ~config ~tenant));
      loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Out_channel.flush oc with Sys_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      locked t (fun () ->
          t.conns <- List.filter (fun (fd', _) -> fd' != fd) t.conns))
    (fun () ->
      try loop () with
      | Exit -> ()
      | Sys_error _ | End_of_file -> ()
      | e ->
        (* never let one connection take the router down *)
        let error = E.make E.Internal ~phase:E.Serving (Printexc.to_string e) in
        (try respond t oc (Protocol.Rejected { id = None; error })
         with Sys_error _ | End_of_file -> ()))

(* ------------------------------------------------------------------ *)
(* Serve loop                                                          *)
(* ------------------------------------------------------------------ *)

let sever_connections t =
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    (locked t (fun () -> t.conns))

let join_connections t =
  List.iter (fun (_, th) -> Thread.join th) (locked t (fun () -> t.conns))

let shutdown_fleet t =
  sever_connections t;
  join_connections t;
  List.iter Thread.join (locked t (fun () -> t.daemons));
  Array.iter
    (fun s -> try s.backend.stop () with _ -> ())
    t.shards;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ()

let serve_forever t =
  locked t (fun () ->
      t.daemons <- [ Thread.create prober t; Thread.create monitor t ]);
  let rec accept_loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      let thread = Thread.create (fun () -> handle_connection t fd) () in
      locked t (fun () -> t.conns <- (fd, thread) :: t.conns);
      accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if locked t (fun () -> t.stopped) then () else accept_loop ()
    | exception Unix.Unix_error _ when locked t (fun () -> t.stopped) -> ()
  in
  match accept_loop () with
  | () -> shutdown_fleet t
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    locked t (fun () -> t.stopped <- true);
    shutdown_fleet t;
    Printexc.raise_with_backtrace e bt

let run cfg backends = serve_forever (create cfg backends)

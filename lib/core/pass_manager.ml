(* The OpenMPOpt pass driver.

   Mirrors the paper's pipeline: aggressive internalization first (module
   pass, "run early on the entire module"), then rounds of deglobalization,
   SPMDzation, state-machine rewriting, runtime-call folding, and generic
   cleanup ("run ... again late on each strongly connected component"; our
   rounds iterate the whole module, which subsumes the SCC scheduling at our
   module sizes).

   The disable flags match the artifact's LLVM flags:
   openmp-opt-disable-{spmdization, deglobalization, state-machine-rewrite,
   folding}. *)

type options = {
  disable_spmdization : bool;
  disable_deglobalization : bool;
  disable_state_machine_rewrite : bool;
  disable_folding : bool;
  disable_internalization : bool;  (* ablation *)
  disable_guard_grouping : bool;  (* ablation: Fig. 7 off *)
  disable_heap_to_shared : bool;  (* isolate plain HeapToStack (Fig. 11d) *)
  rounds : int;
}

let default_options =
  {
    disable_spmdization = false;
    disable_deglobalization = false;
    disable_state_machine_rewrite = false;
    disable_folding = false;
    disable_internalization = false;
    disable_guard_grouping = false;
    disable_heap_to_shared = false;
    rounds = 3;
  }

(* Stable, human-readable identity of an option set.  Part of the content
   address of a pipeline job (Sched.Cache): two jobs share a cache entry only
   if their input IR text AND this fingerprint agree, so every field must
   appear here.  Update this when adding an option field. *)
let options_fingerprint (o : options) =
  Printf.sprintf
    "spmd=%b;deglob=%b;csm=%b;fold=%b;internalize=%b;group=%b;h2shared=%b;rounds=%d"
    (not o.disable_spmdization)
    (not o.disable_deglobalization)
    (not o.disable_state_machine_rewrite)
    (not o.disable_folding)
    (not o.disable_internalization)
    (not o.disable_guard_grouping)
    (not o.disable_heap_to_shared)
    o.rounds

let all_disabled =
  {
    default_options with
    disable_spmdization = true;
    disable_deglobalization = true;
    disable_state_machine_rewrite = true;
    disable_folding = true;
    disable_internalization = true;
  }

(* First-class pipelines.

   A pipeline is a named, ordered list of pass descriptors plus a round
   count and the two behavior flags that parameterize individual passes
   (Fig. 7 guard grouping, HeapToShared).  The textual syntax is stable and
   part of the public surface (mompc --pipeline, protocol v2's "pipeline"
   member, cache keys):

     spec   ::= builtin | [name "="] passes ["@" rounds] flag*
     passes ::= pass ("," pass)*
     flag   ::= "!nogroup" | "!noshared"

   e.g. "fast=internalize,fold,cleanup@1".  A bare builtin name ("fast",
   "full") denotes that tier. *)
module Pipeline = struct
  type pass =
    | Internalize
    | Fold  (* mode-invariant folds + a simplify sweep, the "early" block *)
    | Deglobalize
    | Spmdize
    | State_machine
    | Fold_late  (* execution-mode folds *)
    | Dedup
    | Dead_regions
    | Cleanup  (* generic simplify *)

  let all_passes =
    [
      Internalize;
      Fold;
      Deglobalize;
      Spmdize;
      State_machine;
      Fold_late;
      Dedup;
      Dead_regions;
      Cleanup;
    ]

  let pass_name = function
    | Internalize -> "internalize"
    | Fold -> "fold"
    | Deglobalize -> "deglobalize"
    | Spmdize -> "spmdize"
    | State_machine -> "state-machine"
    | Fold_late -> "fold-late"
    | Dedup -> "dedup"
    | Dead_regions -> "dead-regions"
    | Cleanup -> "cleanup"

  let pass_of_name s = List.find_opt (fun p -> pass_name p = s) all_passes

  type t = {
    name : string;
    passes : pass list;
    rounds : int;
    grouping : bool;  (* Fig. 7 side-effect grouping during SPMDzation *)
    heap_to_shared : bool;  (* HeapToShared on during deglobalization *)
  }

  let max_rounds = 16

  let full =
    {
      name = "full";
      passes = all_passes;
      rounds = default_options.rounds;
      grouping = true;
      heap_to_shared = true;
    }

  let fast =
    {
      name = "fast";
      passes = [ Internalize; Fold; Cleanup ];
      rounds = 1;
      grouping = true;
      heap_to_shared = true;
    }

  let builtins = [ ("fast", fast); ("full", full) ]
  let find name = List.assoc_opt name builtins

  (* Semantic identity: everything but the name.  Two pipelines that agree
     here run the exact same pass sequence and produce the same bytes. *)
  let same_semantics a b =
    a.passes = b.passes && a.rounds = b.rounds && a.grouping = b.grouping
    && a.heap_to_shared = b.heap_to_shared

  let equal a b = a.name = b.name && same_semantics a b

  (* the spec body — everything after "name=" — doubles as the semantic
     fingerprint, so it must cover every field except the name *)
  let spec_body p =
    let passes = String.concat "," (List.map pass_name p.passes) in
    let flags =
      (if p.grouping then "" else "!nogroup")
      ^ if p.heap_to_shared then "" else "!noshared"
    in
    Printf.sprintf "%s@%d%s" passes p.rounds flags

  let to_string p = p.name ^ "=" ^ spec_body p
  let fingerprint p = "pipeline:" ^ spec_body p

  let valid_name s =
    String.length s > 0
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true | _ -> false)
         s

  let of_string s =
    let trim = String.trim in
    let s = trim s in
    match find s with
    | Some p -> Ok p
    | None -> (
      let ( let* ) = Result.bind in
      let name, body =
        match String.index_opt s '=' with
        | Some i ->
          (trim (String.sub s 0 i), trim (String.sub s (i + 1) (String.length s - i - 1)))
        | None -> ("custom", s)
      in
      let* () =
        if valid_name name then Ok ()
        else Error (Printf.sprintf "invalid pipeline name %S" name)
      in
      (* split off "!flag" suffixes *)
      let body, flags =
        match String.split_on_char '!' body with
        | [] -> ("", [])
        | b :: fs -> (trim b, List.map trim fs)
      in
      let* grouping, heap_to_shared =
        List.fold_left
          (fun acc flag ->
            let* g, h = acc in
            match flag with
            | "nogroup" -> Ok (false, h)
            | "noshared" -> Ok (g, false)
            | f -> Error (Printf.sprintf "unknown pipeline flag %S" ("!" ^ f)))
          (Ok (true, true))
          flags
      in
      let body, rounds_s =
        match String.index_opt body '@' with
        | Some i ->
          ( trim (String.sub body 0 i),
            Some (trim (String.sub body (i + 1) (String.length body - i - 1))) )
        | None -> (body, None)
      in
      let* rounds =
        match rounds_s with
        | None -> Ok 1
        | Some r -> (
          match int_of_string_opt r with
          | Some n when n >= 1 && n <= max_rounds -> Ok n
          | Some n ->
            Error (Printf.sprintf "pipeline rounds %d out of range 1..%d" n max_rounds)
          | None -> Error (Printf.sprintf "invalid pipeline round count %S" r))
      in
      let* passes =
        match String.split_on_char ',' body with
        | [ "" ] -> Error "empty pipeline (no passes)"
        | names ->
          List.fold_left
            (fun acc n ->
              let* ps = acc in
              let n = trim n in
              match pass_of_name n with
              | Some p -> Ok (p :: ps)
              | None ->
                Error
                  (Printf.sprintf "unknown pass %S (known: %s)" n
                     (String.concat ", " (List.map pass_name all_passes))))
            (Ok []) names
          |> Result.map List.rev
      in
      Ok { name; passes; rounds; grouping; heap_to_shared })

  (* The legacy boolean-toggle surface, mapped onto a pipeline.  The
     resulting pass sequence instruments exactly what [run] executed for the
     same options, so the two surfaces produce byte-identical results. *)
  let of_options (o : options) =
    let passes =
      List.filter
        (fun p ->
          match p with
          | Internalize -> not o.disable_internalization
          | Fold | Fold_late | Dedup | Dead_regions -> not o.disable_folding
          | Deglobalize -> not o.disable_deglobalization
          | Spmdize -> not o.disable_spmdization
          | State_machine -> not o.disable_state_machine_rewrite
          | Cleanup -> true)
        all_passes
    in
    let p =
      {
        name = "custom";
        passes;
        rounds = o.rounds;
        grouping = not o.disable_guard_grouping;
        heap_to_shared = not o.disable_heap_to_shared;
      }
    in
    match List.find_opt (fun (_, b) -> same_semantics p b) builtins with
    | Some (name, _) -> { p with name }
    | None -> p
end

type report = {
  remarks : Remark.t list;
  internalized : int;
  heap_to_stack : int;
  heap_to_shared : int;
  shared_bytes : int;
  spmdized : int;
  guards : int;
  custom_state_machines : int;
  csm_fallbacks : int;
  folds_exec_mode : int;
  folds_parallel_level : int;
  folds_thread_exec : int;
  folds_launch_bounds : int;
  deduplicated_calls : int;
  dead_regions : int;
}

let empty_report =
  {
    remarks = [];
    internalized = 0;
    heap_to_stack = 0;
    heap_to_shared = 0;
    shared_bytes = 0;
    spmdized = 0;
    guards = 0;
    custom_state_machines = 0;
    csm_fallbacks = 0;
    folds_exec_mode = 0;
    folds_parallel_level = 0;
    folds_thread_exec = 0;
    folds_launch_bounds = 0;
    deduplicated_calls = 0;
    dead_regions = 0;
  }

(* The int fields of the report, as named counters.  Order is stable; the
   trace layer diffs two of these lists to get per-pass increments, and the
   JSON export reuses the names as keys. *)
let counters_of_report (r : report) =
  [
    ("internalized", r.internalized);
    ("heap_to_stack", r.heap_to_stack);
    ("heap_to_shared", r.heap_to_shared);
    ("shared_bytes", r.shared_bytes);
    ("spmdized", r.spmdized);
    ("guards", r.guards);
    ("custom_state_machines", r.custom_state_machines);
    ("csm_fallbacks", r.csm_fallbacks);
    ("folds_exec_mode", r.folds_exec_mode);
    ("folds_parallel_level", r.folds_parallel_level);
    ("folds_thread_exec", r.folds_thread_exec);
    ("folds_launch_bounds", r.folds_launch_bounds);
    ("deduplicated_calls", r.deduplicated_calls);
    ("dead_regions", r.dead_regions);
  ]

let report_to_json (r : report) =
  let kind_name = function
    | Remark.Passed -> "passed"
    | Remark.Missed -> "missed"
    | Remark.Analysis -> "analysis"
  in
  Observe.Json.Obj
    (List.map (fun (k, v) -> (k, Observe.Json.Int v)) (counters_of_report r)
    @ [
        ( "remarks",
          Observe.Json.List
            (List.map
               (fun (rm : Remark.t) ->
                 Observe.Json.Obj
                   [
                     ("id", Observe.Json.Int rm.Remark.id);
                     ("kind", Observe.Json.String (kind_name rm.Remark.kind));
                     ("func", Observe.Json.String rm.Remark.func);
                     ( "loc",
                       Observe.Json.String (Support.Loc.to_string rm.Remark.loc) );
                     ("message", Observe.Json.String rm.Remark.message);
                   ])
               r.remarks) );
      ])

let pp_report ppf r =
  Fmt.pf ppf
    "internalized=%d h2s=%d h2shared=%d(%dB) spmdized=%d(guards=%d) csm=%d(fallback=%d) \
     folds: em=%d pl=%d te=%d launch=%d, %d remarks"
    r.internalized r.heap_to_stack r.heap_to_shared r.shared_bytes r.spmdized r.guards
    r.custom_state_machines r.csm_fallbacks r.folds_exec_mode r.folds_parallel_level
    r.folds_thread_exec r.folds_launch_bounds (List.length r.remarks);
  if r.deduplicated_calls > 0 || r.dead_regions > 0 then
    Fmt.pf ppf " dedup=%d dead-regions=%d" r.deduplicated_calls r.dead_regions

(* OMP100: calls to __kmpc-prefixed functions the registry does not know
   are either a runtime version mismatch or a user error; flag them, since
   every analysis must treat them as opaque. *)
let flag_unknown_runtime_calls (m : Ir.Irmod.t) (sink : Remark.sink) =
  List.iter
    (fun f ->
      Ir.Func.iter_instrs f ~g:(fun _ i ->
          match i.Ir.Instr.kind with
          | Ir.Instr.Call (_, Ir.Instr.Direct name, _)
            when String.length name >= 7
                 && String.sub name 0 7 = "__kmpc_"
                 && not (Devrt.Registry.is_runtime_fn name) ->
            Remark.emit sink
              (Remark.make ~kind:Remark.Analysis ~loc:i.Ir.Instr.loc ~func:f.Ir.Func.name
                 100 ~detail:("@" ^ name))
          | _ -> ()))
    (Ir.Irmod.defined_funcs m)

let run_pipeline ?(pipeline = Pipeline.full) ?(injector = Fault.Injector.none) ?trace
    ?sink (m : Ir.Irmod.t) : report =
  (* Every mutable artifact of one pipeline run — the remark sink, the
     counter record and the optional trace — is local to this invocation (or
     injected by the job context that owns it), never module-level state:
     the batch scheduler runs many pipelines concurrently on separate
     domains and their remarks/counters must not bleed into each other. *)
  let sink = match sink with Some s -> s | None -> Remark.sink () in
  let report = ref empty_report in
  (* Wrap one pass invocation: when a trace is attached, snapshot the module
     and the counters around [f] and record the deltas as one event.  The
     analyses a pass recomputes run inside the window, so the event's time
     includes them (that is the cost the pipeline actually pays). *)
  let instrument ~round ~pass f =
    (* the Pass_crash fault site lives here so every executed pass — traced
       or not — is a potential crash point with a precise (pass, round) id *)
    let f () =
      if Fault.Injector.fire injector Fault.Injector.Pass_crash then
        Fault.Ompgpu_error.raise_error
          (Fault.Ompgpu_error.Pass_crash { pass; round })
          ~phase:Fault.Ompgpu_error.Optimizing
          "injected crash in pass %s (round %d)" pass round;
      f ()
    in
    match trace with
    | None -> f ()
    | Some tr ->
      let before = Observe.Trace.snapshot m in
      let c0 = counters_of_report !report in
      let remarks0 = List.length (Remark.all sink) in
      let t0 = Sys.time () in
      f ();
      let time_s = Sys.time () -. t0 in
      let after = Observe.Trace.snapshot m in
      let counters =
        List.map2
          (fun (k, old_v) (_, new_v) -> (k, new_v - old_v))
          c0 (counters_of_report !report)
        @ [ ("remarks", List.length (Remark.all sink) - remarks0) ]
      in
      ignore (Observe.Trace.record_pass tr ~round ~pass ~time_s ~before ~after ~counters)
  in
  flag_unknown_runtime_calls m sink;
  (* Internalization is a module pass that runs once before round 1 ("run
     early on the entire module"), wherever it appears in the pass list. *)
  if List.mem Pipeline.Internalize pipeline.Pipeline.passes then
    instrument ~round:0 ~pass:Internalize.pass_name (fun () ->
        report := { !report with internalized = Internalize.run m sink });
  let add_folds counts =
    report :=
      {
        !report with
        folds_exec_mode = !report.folds_exec_mode + counts.Fold.exec_mode;
        folds_parallel_level = !report.folds_parallel_level + counts.Fold.parallel_level;
        folds_thread_exec = !report.folds_thread_exec + counts.Fold.thread_exec;
        folds_launch_bounds = !report.folds_launch_bounds + counts.Fold.launch_bounds;
      }
  in
  for round = 1 to pipeline.Pipeline.rounds do
    (* domains are recomputed per pass: deglobalization changes instructions *)
    let domains () =
      let cg = Analysis.Callgraph.compute m in
      Analysis.Exec_domain.compute m cg
    in
    let instrument ~pass f = instrument ~round ~pass f in
    let exec : Pipeline.pass -> unit = function
      | Pipeline.Internalize -> ()  (* ran once at round 0 *)
      (* mode-invariant folds first: pruning the sequential fallbacks before
         deglobalization avoids double-counted allocation sites; the sweep
         ends with a simplify so later passes see canonical IR *)
      | Pipeline.Fold ->
        instrument ~pass:(Fold.pass_name ^ "-early") (fun () ->
            add_folds (Fold.run ~fold_exec_mode:false m (domains ())));
        instrument ~pass:Simplify.pass_name (fun () -> ignore (Simplify.run m))
      | Pipeline.Deglobalize ->
        instrument ~pass:Deglobalize.pass_name (fun () ->
            let res =
              Deglobalize.run m (domains ()) sink
                ~heap_to_shared:pipeline.Pipeline.heap_to_shared
            in
            report :=
              {
                !report with
                heap_to_stack = !report.heap_to_stack + res.Deglobalize.to_stack;
                heap_to_shared = !report.heap_to_shared + res.Deglobalize.to_shared;
                shared_bytes = !report.shared_bytes + res.Deglobalize.shared_bytes;
              })
      | Pipeline.Spmdize ->
        instrument ~pass:Spmdization.pass_name (fun () ->
            let converted, guards =
              Spmdization.run m (domains ()) sink ~grouping:pipeline.Pipeline.grouping
            in
            report :=
              {
                !report with
                spmdized = !report.spmdized + converted;
                guards = !report.guards + guards;
              })
      | Pipeline.State_machine ->
        instrument ~pass:State_machine.pass_name (fun () ->
            let rewritten, fallbacks = State_machine.run m sink in
            report :=
              {
                !report with
                custom_state_machines = !report.custom_state_machines + rewritten;
                csm_fallbacks = !report.csm_fallbacks + fallbacks;
              })
      | Pipeline.Fold_late ->
        instrument ~pass:(Fold.pass_name ^ "-late") (fun () ->
            add_folds (Fold.run ~fold_exec_mode:true m (domains ())))
      (* deduplicate surviving runtime queries and drop effect-free regions *)
      | Pipeline.Dedup ->
        instrument ~pass:Dedup.pass_name (fun () ->
            let deduped = Dedup.dedup_runtime_calls m sink in
            report :=
              { !report with deduplicated_calls = !report.deduplicated_calls + deduped })
      | Pipeline.Dead_regions ->
        instrument ~pass:"dead-regions" (fun () ->
            let dead = Dedup.delete_dead_regions m sink in
            report := { !report with dead_regions = !report.dead_regions + dead })
      | Pipeline.Cleanup ->
        instrument ~pass:Simplify.pass_name (fun () -> ignore (Simplify.run m))
    in
    List.iter exec pipeline.Pipeline.passes
  done;
  (* analyses re-run each round and re-emit the same findings: dedupe *)
  let remarks =
    List.sort_uniq
      (fun (a : Remark.t) b ->
        compare
          (a.Remark.id, a.Remark.func, Support.Loc.to_string a.Remark.loc, a.Remark.message)
          (b.Remark.id, b.Remark.func, Support.Loc.to_string b.Remark.loc, b.Remark.message))
      (Remark.all sink)
  in
  { !report with remarks }

(* Deprecated alias (docs/API.md deprecation policy): the boolean-toggle
   surface, routed through [run_pipeline] via [Pipeline.of_options].  The
   mapped pipeline instruments the exact pass sequence the old driver
   executed, so existing callers see byte-identical results and traces. *)
let run ?(options = default_options) ?injector ?trace ?sink m =
  run_pipeline ~pipeline:(Pipeline.of_options options) ?injector ?trace ?sink m

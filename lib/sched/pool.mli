(** A fixed-size work-stealing job scheduler on OCaml 5 [Domain]s.

    The pool owns [domains] worker domains.  Each worker has its own
    array-backed ring deque under a per-worker stripe lock; submitted jobs
    are distributed round-robin, a worker services its own deque
    newest-first (LIFO, for locality) and steals the oldest job (FIFO)
    from a sibling when its own deque is empty.  A small gate mutex covers
    only parking and waking.  The pending-job count is bounded: [submit]
    blocks once [queue_capacity] jobs are queued, giving natural
    backpressure to producers.

    At most [active] workers (default: the runtime's recommended domain
    count) run eagerly; the rest are {e reserves}, spawned lazily —
    running (or even idling) more domains than the machine has cores is
    counterproductive under OCaml 5's stop-the-world minor GC, so on a
    constrained host a [domains:4] pool keeps only its active workers
    alive — until {!await_timeout} observes a job overstaying its deadline
    while work is queued, which engages a reserve within one poll
    interval.  Guarded batches therefore keep their liveness guarantees
    even when a job blocks its worker.

    Domain-safety contract for jobs: a job must not touch mutable state
    shared with another job (each compile/simulate job builds its own IR
    module, remark sink and trace; see docs/SCHEDULER.md).  Jobs must not
    themselves call [submit]/[await] on the same pool — the pool is a flat
    worker pool, not a nested fork-join runtime. *)

type t

type 'a future

(** Lifetime statistics of a pool (monotonic; read with {!stats}). *)
type stats = {
  submitted : int;  (** jobs accepted by {!submit} *)
  executed : int;  (** jobs completed (successfully or with an exception) *)
  stolen : int;  (** jobs a worker took from a sibling's deque *)
  max_pending : int;  (** high-water mark of the bounded queue *)
  waits : int;  (** times a worker parked on an empty scan *)
  boosts : int;  (** reserve engagements triggered by watchdog polls *)
}

val create : ?queue_capacity:int -> ?active:int -> domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] worker domains (at least 1).
    [queue_capacity] bounds the number of queued-but-not-started jobs
    (default [4 * domains]; at least 1).  [active] caps the eagerly
    running workers (default [min domains (Domain.recommended_domain_count
    ())]; clamped to [1..domains]) — the remainder start parked as
    reserves. *)

val domain_count : t -> int

val active_limit : t -> int
(** The number of eagerly running workers (see [create]'s [active]). *)

val worker_index : unit -> int option
(** The pool-worker index of the calling domain ([Some i] inside a job,
    [None] elsewhere).  Lets a job bind per-worker resources — e.g. the
    batch runner's scratch arenas — without synchronization. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job.  Blocks while the queue is at capacity.  Raises
    [Invalid_argument] if the pool has been shut down. *)

val await : 'a future -> 'a
(** Wait for a job's result.  Re-raises the job's exception (with its
    backtrace) if it failed. *)

val await_timeout : 'a future -> seconds:float -> 'a option
(** Like {!await}, but gives up after [seconds] and returns [None] (the job
    itself keeps running; a later {!await} still works).  Polls — OCaml's
    [Condition] has no timed wait — at a 5ms interval; every missed poll
    with queued work engages one parked reserve worker, so a blocked
    primary cannot stall a supervised batch. *)

val map_list : t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f xs] runs [f x] for every element as pool jobs and returns
    the results in input order — deterministic output for deterministic
    [f], whatever the execution interleaving.  Equivalent to
    [List.map f xs] observationally when [f] is pure per-element.
    [chunk] (default 1) coarsens tiny jobs: each pool job maps [chunk]
    consecutive elements, amortizing submit/wake/steal overhead. *)

val map_list_guarded :
  t ->
  ?watchdog_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?is_transient:(exn -> bool) ->
  (attempt:int -> 'a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** {!map_list} with per-job supervision; no exception escapes the batch —
    each job settles to [Ok] or [Error (exn, backtrace)], in input order.

    [watchdog_s]: a job not settled within this many seconds (measured from
    submission, so queue wait counts) is declared hung with a structured
    [Fault.Ompgpu_error.Timeout] — the stalled job keeps its domain until
    it returns on its own, but the batch makes progress.

    Failures satisfying [is_transient] (default: structured errors whose
    [Fault.Ompgpu_error.is_transient] holds — timeouts and allocation
    failures) are retried up to [retries] times with exponential backoff
    ([backoff_s] * 2^attempt).  The job function receives the attempt
    number (0 = first try) so it can derive fresh fault-injector coins. *)

val stats : t -> stats

val shutdown : t -> unit
(** Drain every queued job, then join the worker domains.  Idempotent. *)

val with_pool : ?queue_capacity:int -> ?active:int -> domains:int -> (t -> 'a) -> 'a
(** [create], run the callback, always [shutdown]. *)

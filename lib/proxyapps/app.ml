(* Common shape of a proxy application: a MiniOMP source for the OpenMP
   build, a (possibly restructured) source for the CUDA-style watermark
   build, and a scale knob so tests can run tiny configurations while the
   benchmark harness runs the paper-sized ones. *)

type scale = Tiny | Bench

type t = {
  name : string;
  description : string;
  omp_source : scale -> string;
  cuda_source : scale -> string;
  (* expected optimization opportunities under the full pipeline, for the
     Figure 9 table: (heap_to_stack, heap_to_shared, spmdized) *)
  expected_h2s : int;
  expected_h2shared : int;
  expected_spmdized : bool;
}

(* MiniIR values: constants are self-describing (they carry their type), so
   every operand position in the textual format is unambiguous. *)

type const =
  | CInt of Types.t * int64
  | CFloat of Types.t * float
  | CNull of Types.addrspace
  | CUndef of Types.t

type t =
  | Const of const
  | Reg of int  (* result of the instruction with this id, function-scoped *)
  | Arg of int  (* parameter index of the enclosing function *)
  | Global of string
  | Func of string

let i1 b = Const (CInt (Types.I1, if b then 1L else 0L))
let i32 n = Const (CInt (Types.I32, Int64.of_int n))
let i64 n = Const (CInt (Types.I64, Int64.of_int n))
let f32 x = Const (CFloat (Types.F32, x))
let f64 x = Const (CFloat (Types.F64, x))
let null space = Const (CNull space)
let undef ty = Const (CUndef ty)

let const_ty = function
  | CInt (ty, _) -> ty
  | CFloat (ty, _) -> ty
  | CNull space -> Types.Ptr space
  | CUndef ty -> ty

let equal_const a b =
  match (a, b) with
  | CInt (t1, v1), CInt (t2, v2) -> Types.equal t1 t2 && Int64.equal v1 v2
  | CFloat (t1, v1), CFloat (t2, v2) -> Types.equal t1 t2 && Float.equal v1 v2
  | CNull s1, CNull s2 -> s1 = s2
  | CUndef t1, CUndef t2 -> Types.equal t1 t2
  | (CInt _ | CFloat _ | CNull _ | CUndef _), _ -> false

let equal a b =
  match (a, b) with
  | Const c1, Const c2 -> equal_const c1 c2
  | Reg i, Reg j | Arg i, Arg j -> i = j
  | Global n1, Global n2 | Func n1, Func n2 -> String.equal n1 n2
  | (Const _ | Reg _ | Arg _ | Global _ | Func _), _ -> false

let pp_const ppf = function
  | CInt (ty, v) -> Fmt.pf ppf "%a %Ld" Types.pp ty v
  | CFloat (ty, v) -> Fmt.pf ppf "%a %h" Types.pp ty v
  | CNull space -> Fmt.pf ppf "null(%s)" (Types.space_name space)
  | CUndef ty -> Fmt.pf ppf "undef(%a)" Types.pp ty

let pp ppf = function
  | Const c -> pp_const ppf c
  | Reg i -> Fmt.pf ppf "%%%d" i
  | Arg i -> Fmt.pf ppf "%%arg%d" i
  | Global name -> Fmt.pf ppf "@%s" name
  | Func name -> Fmt.pf ppf "@%s" name

let to_string v = Fmt.str "%a" pp v

(* Integer constant view, used pervasively by folding passes. *)
let as_int = function Const (CInt (_, v)) -> Some v | _ -> None
let is_null = function Const (CNull _) -> true | _ -> false

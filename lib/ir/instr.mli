(** MiniIR instructions.  Each instruction has a function-unique id; its
    result (if any) is referenced as [Value.Reg id].  Kinds are mutable so
    the optimizer can rewrite instructions in place without invalidating
    uses. *)

type bin =
  | Add | Sub | Mul | Sdiv | Srem | Udiv | Urem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Fadd | Fsub | Fmul | Fdiv

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge
type fcmp = Oeq | One | Olt | Ole | Ogt | Oge
type cast = Zext | Sext | Trunc | Sitofp | Fptosi | Fpext | Fptrunc | Bitcast | Spacecast
type atomic = A_add | A_fadd | A_min | A_max | A_exchange | A_cas

type callee = Direct of string | Indirect of Value.t

type kind =
  | Alloca of Types.t * int  (** element type, count; yields ptr(local) *)
  | Load of Types.t * Value.t
  | Store of Types.t * Value.t * Value.t  (** type, value, pointer *)
  | Gep of Types.t * Value.t * Value.t
      (** result pointer type, base pointer, byte offset (i64) *)
  | Bin of bin * Types.t * Value.t * Value.t
  | Icmp of icmp * Types.t * Value.t * Value.t  (** operand type *)
  | Fcmp of fcmp * Types.t * Value.t * Value.t
  | Cast of cast * Types.t * Value.t  (** destination type *)
  | Select of Types.t * Value.t * Value.t * Value.t
  | Call of Types.t * callee * Value.t list  (** return type *)
  | Atomicrmw of atomic * Types.t * Value.t * Value.t
      (** op, value type, pointer, operand; yields the old value *)

type t = { id : int; mutable kind : kind; mutable loc : Support.Loc.t }

val make : ?loc:Support.Loc.t -> id:int -> kind -> t

val result_ty : t -> Types.t
val has_result : t -> bool

val operands : t -> Value.t list
(** All value operands (the callee of an indirect call included). *)

val map_operands : (Value.t -> Value.t) -> t -> unit
(** Rewrite every operand in place; the basis of replace-all-uses-with. *)

val callee_name : t -> string option

val is_pure : t -> bool
(** Purity at the IR level only: calls and atomics are never pure here; the
    analyses refine call purity using device-runtime knowledge. *)

val writes_memory : t -> bool
val reads_memory : t -> bool

(** Mnemonic tables used by the printer and parser. *)

val bin_name : bin -> string
val bin_of_name : string -> bin option
val icmp_name : icmp -> string
val icmp_of_name : string -> icmp option
val fcmp_name : fcmp -> string
val fcmp_of_name : string -> fcmp option
val cast_name : cast -> string
val cast_of_name : string -> cast option
val atomic_name : atomic -> string
val atomic_of_name : string -> atomic option

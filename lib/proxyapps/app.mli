(** Common shape of a proxy application (paper Section V-A). *)

(** [Tiny] keeps unit tests fast; [Bench] is the scale at which the paper's
    performance shapes hold (and at which RSBench's unoptimized build runs
    out of device heap). *)
type scale = Tiny | Bench

type t = {
  name : string;
  description : string;
  omp_source : scale -> string;  (** the OpenMP (CPU-style) MiniOMP source *)
  cuda_source : scale -> string;  (** the kernel-style watermark source *)
  expected_h2s : int;  (** Figure 9: HeapToStack count under the full pipeline *)
  expected_h2shared : int;  (** Figure 9: HeapToShared count *)
  expected_spmdized : bool;  (** Figure 9: generic kernel converted to SPMD *)
}

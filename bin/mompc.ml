(* mompc: the MiniOMP compiler driver — a thin client of the Ompgpu_api
   façade.

   Parses MiniOMP source files, lowers them with the selected globalization
   scheme, optionally runs the OpenMP-aware optimizer, prints remarks, and
   emits the resulting MiniIR.  Optionally runs each program on the GPU
   simulator and reports kernel statistics.

   Several files compile as one batch: [-j N] runs them on N scheduler
   domains (per-file output is buffered and printed in input order, so
   parallel output is byte-identical to sequential), and [--cache-dir DIR]
   memoizes each file's full compiler output on disk, content-addressed by
   source text, scheme and pass options.  [--daemon SOCKET] sends the
   compiles to a running [mompd] instead, sharing its warm caches — the
   printed bytes are identical either way.

   The disable flags mirror the paper artifact's LLVM flags
   openmp-opt-disable-... . *)

open Cmdliner
module A = Ompgpu_api

let scheme_conv =
  let parse = function
    | "simplified" -> Ok Frontend.Codegen.Simplified
    | "legacy" -> Ok Frontend.Codegen.Legacy
    | "cuda" -> Ok Frontend.Codegen.Cuda
    | s -> Error (`Msg ("unknown scheme: " ^ s))
  in
  let print ppf s = Fmt.string ppf (Frontend.Codegen.scheme_name s) in
  Arg.conv (parse, print)

(* Compile the batch through a running daemon, resiliently: each file
   gets the client's per-request deadline, bounded jittered retries over
   transient failures (dropped/reset connections, torn frames, shed
   requests) and transparent reconnect.  If the daemon still cannot
   settle a request — or no daemon is reachable at all — the file
   degrades silently to the in-process path, whose bytes are identical
   by construction, so `mompc --daemon` never fails merely because the
   daemon is down.  Unreadable files settle locally either way. *)
let compile_via_daemon ~socket_path ~config files =
  (* a daemon hanging up mid-request must surface as a retryable
     [Sys_error] on the session, not a process-killing SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let session = Service.Client.session ~socket_path () in
  Fun.protect
    ~finally:(fun () -> Service.Client.session_close session)
    (fun () ->
      List.map
        (fun file ->
          match In_channel.with_open_text file In_channel.input_all with
          | exception Sys_error msg ->
            A.errored ~file (A.Error.make A.Error.Internal ~phase:A.Error.Driver msg)
          | src -> (
            match Service.Client.session_compile session ~file ~config src with
            | Ok r -> r
            | Error _ -> A.compile_buffered ~config ~file src))
        files)

let run_compile files scheme pipeline_spec optimize no_spmd no_deglob no_csm
    no_fold no_group emit_ir run_sim remarks_only stats_json print_trace jobs
    cache_dir cache_max_bytes cache_max_entries inject retries backoff watchdog
    backtrace daemon =
  (* Backtrace printing is opt-in (OMPGPU_BACKTRACE=1 or --backtrace):
     diagnostics must be byte-stable across runs — the CI fault matrix
     compares two same-seed runs — and backtraces are not. *)
  let backtraces = backtrace || Sys.getenv_opt "OMPGPU_BACKTRACE" = Some "1" in
  if backtraces then Printexc.record_backtrace true;
  let options =
    if optimize then
      Some
        {
          Openmpopt.Pass_manager.default_options with
          disable_spmdization = no_spmd;
          disable_deglobalization = no_deglob;
          disable_state_machine_rewrite = no_csm;
          disable_folding = no_fold;
          disable_guard_grouping = no_group;
        }
    else None
  in
  (* A malformed --pipeline spec is a client error of the same class the
     daemon rejects with Bad_request, so the one-shot driver settles it
     under the same taxonomy exit code. *)
  let pipeline =
    match pipeline_spec with
    | None -> Ok None
    | Some spec -> (
      if options <> None then
        Error
          "may not be combined with -O/--openmp-opt or the \
           openmp-opt-disable-* toggles"
      else
        match A.Pipeline.of_string spec with
        | Ok p -> Ok (Some p)
        | Error msg -> Error msg)
  in
  match pipeline with
  | Error msg ->
    let e = A.Error.make A.Error.Bad_request ~phase:A.Error.Driver msg in
    Fmt.epr "mompc: --pipeline: %s@." msg;
    A.Error.exit_code e
  | Ok pipeline -> (
  match Cli_common.parse_injects inject with
  | Error msgs ->
    List.iter (fun m -> Fmt.epr "mompc: --inject: %s@." m) msgs;
    2
  | Ok specs ->
    if stats_json <> None && List.length files > 1 then begin
      Fmt.epr "mompc: --stats-json accepts a single input file@.";
      2
    end
    else begin
      let config =
        {
          A.Config.scheme;
          options;
          pipeline;
          emit_ir;
          run_sim;
          remarks_only;
          want_stats = stats_json <> None;
          print_trace;
          inject = specs;
          retries;
          backoff_s = backoff;
          backtraces;
        }
      in
      let results =
        match daemon with
        | Some socket_path -> (
          try Ok (compile_via_daemon ~socket_path ~config files)
          with Unix.Unix_error (err, _, _) ->
            Error
              (A.Error.make A.Error.Internal ~phase:A.Error.Serving
                 (Printf.sprintf "cannot reach daemon at %s: %s" socket_path
                    (Unix.error_message err))))
        | None ->
          Ok
            (A.compile_files ~jobs ?cache_dir ?cache_max_bytes
               ?cache_max_entries ?watchdog_s:watchdog
               ~on_cache_corrupt:(fun ~key ~path ->
                 Fmt.epr
                   "mompc: remark: cache entry %s failed verification, \
                    quarantined at %s@."
                   key path)
               ~config files)
      in
      match results with
      | Error e ->
        Fmt.epr "mompc: %s@." (A.Error.to_string e);
        A.Error.exit_code e
      | Ok results -> (
        List.iter
          (fun (r : A.compiled) ->
            print_string r.A.output;
            prerr_string r.A.diagnostics)
          results;
        flush stdout;
        flush stderr;
        let code =
          List.fold_left (fun acc (r : A.compiled) -> max acc r.A.exit_code) 0 results
        in
        (* The stats payload (single file only, checked above) is collected
           in-memory by the façade; the driver owns the side file. *)
        match (stats_json, results) with
        | Some path, [ { A.stats = Some stats; _ } ] -> (
          try
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (Observe.Json.to_string stats);
                Out_channel.output_char oc '\n');
            code
          with Sys_error msg ->
            Fmt.epr "cannot write stats: %s@." msg;
            max code 2)
        | _ -> code)
    end)

let files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE" ~doc:"MiniOMP source file(s); several compile as a batch")

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Frontend.Codegen.Simplified
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:"Globalization scheme: simplified (LLVM 13), legacy (LLVM 12), cuda")

let flag names doc = Arg.(value & flag & info names ~doc)

let cmd =
  let doc = "compile MiniOMP to MiniIR with OpenMP-aware optimization" in
  Cmd.v
    (Cmd.info "mompc" ~doc)
    Term.(
      const run_compile $ files_arg $ scheme_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "pipeline" ] ~docv:"SPEC"
              ~doc:
                "Run a first-class pass pipeline: a built-in tier \
                 ($(b,fast), $(b,full)) or a spec like \
                 $(b,fast=internalize,fold,cleanup\\@1) (see docs/API.md \
                 for the grammar).  Supersedes $(b,-O) and the \
                 $(b,openmp-opt-disable-*) toggles and may not be \
                 combined with them.")
      $ flag [ "O"; "openmp-opt" ] "Run the OpenMP-aware optimization pipeline"
      $ flag [ "openmp-opt-disable-spmdization" ] "Disable SPMDzation"
      $ flag [ "openmp-opt-disable-deglobalization" ] "Disable HeapToStack/HeapToShared"
      $ flag [ "openmp-opt-disable-state-machine-rewrite" ]
          "Disable the custom state machine rewrite"
      $ flag [ "openmp-opt-disable-folding" ] "Disable runtime-call folding"
      $ flag [ "openmp-opt-disable-guard-grouping" ]
          "Disable side-effect grouping before guard generation (Fig. 7)"
      $ Arg.(value & opt bool true & info [ "emit-ir" ] ~doc:"Print the final MiniIR")
      $ flag [ "run" ] "Execute on the GPU simulator and print kernel statistics"
      $ flag [ "remarks-only" ] "Suppress IR output; print only remarks"
      $ Cli_common.stats_json $ Cli_common.trace $ Cli_common.jobs
      $ Cli_common.cache_dir $ Cli_common.cache_max_bytes
      $ Cli_common.cache_max_entries $ Cli_common.inject $ Cli_common.retries
      $ Cli_common.backoff $ Cli_common.watchdog $ Cli_common.backtrace
      $ Arg.(
          value
          & opt (some string) None
          & info [ "daemon" ] ~docv:"SOCKET"
              ~doc:
                "Compile through the $(b,mompd) daemon listening on \
                 $(docv), sharing its warm caches; output is byte-identical \
                 to a local run.  $(b,-j), $(b,--cache-dir) and \
                 $(b,--watchdog) are the daemon's to decide and are ignored \
                 here."))

let () = exit (Cmd.eval' cmd)

(** Side-effect classification for SPMDzation (paper Section IV-B.3).

    When a generic-mode kernel becomes SPMD, formerly main-thread-only code
    is executed redundantly by every thread; each instruction is then
    [Amenable] (safe to duplicate), [Guardable] (wrap in an
    if-thread-0 guard plus barrier), or [Blocking] (prevents the
    conversion, e.g. a call into unknown external code without an
    [ext_spmd_amenable] assumption). *)

type classification = Amenable | Guardable | Blocking of string

type summary

val create : unit -> summary
(** Memoization for the per-function amenability facts. *)

val classify_instr : summary -> Ir.Irmod.t -> Ir.Func.t -> Ir.Instr.t -> classification

val func_is_amenable : summary -> Ir.Irmod.t -> Ir.Func.t -> bool
(** Every instruction of the function is amenable. *)

val func_may_sync : Ir.Irmod.t -> Ir.Func.t -> bool
(** May the function (transitively) synchronize threads? *)

(* Aggressive internalization (Section IV): duplicate externally visible
   functions into internal-only copies and redirect all intra-module uses to
   the copy.  The original is kept for unknown external callers; the copy
   has full visibility, so inter-procedural analyses are not poisoned by
   "could be called from anywhere". *)

open Ir
(* stable identifier used by the Observe trace layer *)
let pass_name = "internalize"

let clone_func (f : Func.t) new_name =
  let g =
    Func.make ~linkage:Func.Internal ~attrs:f.Func.attrs ?kernel:f.Func.kernel
      ~loc:f.Func.loc new_name ~ret_ty:f.Func.ret_ty ~params:f.Func.params
  in
  List.iter
    (fun b ->
      let nb = Block.make b.Block.label ~term:b.Block.term in
      List.iter
        (fun (i : Instr.t) ->
          Block.append nb (Instr.make ~loc:i.Instr.loc ~id:i.Instr.id i.Instr.kind))
        b.Block.instrs;
      Func.add_block g nb)
    f.Func.blocks;
  Support.Util.Id_gen.reserve g.Func.reg_gen
    (Func.fold_instrs f ~init:0 ~g:(fun acc _ i -> max acc i.Instr.id));
  g

let run (m : Irmod.t) (sink : Remark.sink) =
  let candidates =
    List.filter
      (fun f ->
        (not (Func.is_declaration f))
        && (not (Func.is_kernel f))
        && (not (String.equal f.Func.name "main"))
        && not (Devrt.Registry.is_runtime_fn f.Func.name))
      m.Irmod.funcs
  in
  let renames = ref [] in
  List.iter
    (fun f ->
      match f.Func.linkage with
      | Func.Internal -> ()
      | Func.Weak ->
        (* weak definitions may be replaced at link time: cannot duplicate *)
        Remark.emit sink
          (Remark.make ~kind:Remark.Missed ~loc:f.Func.loc ~func:f.Func.name 140)
      | Func.External ->
        let copy_name = Irmod.fresh_name m (f.Func.name ^ ".internalized") in
        let copy = clone_func f copy_name in
        Irmod.add_func m copy;
        renames := (f.Func.name, copy_name) :: !renames)
    candidates;
  let rename_map = !renames in
  if rename_map <> [] then begin
    let subst v =
      match v with
      | Value.Func n -> (
        match List.assoc_opt n rename_map with Some n' -> Value.Func n' | None -> v)
      | _ -> v
    in
    List.iter
      (fun f ->
        List.iter
          (fun b ->
            List.iter
              (fun (i : Instr.t) ->
                (match i.Instr.kind with
                | Instr.Call (ty, Instr.Direct callee, args) -> (
                  match List.assoc_opt callee rename_map with
                  | Some callee' -> i.Instr.kind <- Instr.Call (ty, Instr.Direct callee', args)
                  | None -> ())
                | _ -> ());
                Instr.map_operands subst i)
              b.Block.instrs;
            Block.map_term_operands subst b)
          f.Func.blocks)
      (Irmod.defined_funcs m)
  end;
  List.length rename_map

#!/bin/sh
# Regression test for the CI gate's fuzz exit path.
#
# `make ci` relies on `dune exec test/test_main.exe -- test fuzz` exiting
# nonzero when the differential fuzzer finds (and shrinks) a counterexample.
# A gate whose failing fuzz run exits 0 is not a gate, so this script pins
# the behavior: FUZZ_FORCE_FAIL=1 injects an always-failing property into
# the fuzz suite (see test/test_fuzz.ml) whose counterexample goes through
# the shrinker, and the exact invocation `make ci` uses must fail.
set -u

if FUZZ_FORCE_FAIL=1 FUZZ_SEED=42 FUZZ_ITERS=5 \
    dune exec test/test_main.exe -- test fuzz >/dev/null 2>&1; then
  echo "check_fuzz_exit: FAIL - forced-failing fuzz run exited 0" >&2
  exit 1
fi

if ! FUZZ_SEED=42 FUZZ_ITERS=5 \
    dune exec test/test_main.exe -- test fuzz >/dev/null 2>&1; then
  echo "check_fuzz_exit: FAIL - healthy fuzz run exited nonzero" >&2
  exit 1
fi

echo "check_fuzz_exit: OK - fuzz counterexamples propagate a nonzero exit"

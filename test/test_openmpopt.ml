(* The core optimizer: each pass individually, the pipeline, remarks, and
   differential semantics checks (optimizations must preserve traces). *)

open Openmpopt

let default = Pass_manager.default_options

(* ------------------------------------------------------------------ *)
(* HeapToStack / HeapToShared                                          *)
(* ------------------------------------------------------------------ *)

let h2s_src =
  {|
double Out[8];
static double use(double* p) { return p[0] * 2.0; }
int main() {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (int i = 0; i < 8; i++) {
    double v = (double)i;
    Out[i] = use(&v);
  }
  double s = 0.0;
  for (int i = 0; i < 8; i++) { s += Out[i]; }
  trace_f64(s);
  return 0;
}
|}

let test_heap_to_stack_fires () =
  let m = Helpers.compile h2s_src in
  let report = Helpers.optimize m in
  Alcotest.(check int) "one variable recovered" 1 report.Pass_manager.heap_to_stack;
  (* the runtime allocation is gone from the module *)
  let count_allocs =
    List.fold_left
      (fun acc f ->
        Ir.Func.fold_instrs f ~init:acc ~g:(fun acc _ i ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Call (_, Ir.Instr.Direct "__kmpc_alloc_shared", _) -> acc + 1
            | _ -> acc))
      0 (Ir.Irmod.defined_funcs m)
  in
  Alcotest.(check int) "no runtime allocations left" 0 count_allocs;
  Alcotest.check Helpers.trace_testable "semantics preserved" [ "f:56" ]
    (Helpers.run_trace ~options:default h2s_src)

let test_heap_to_stack_remark () =
  let m = Helpers.compile h2s_src in
  let report = Helpers.optimize m in
  Alcotest.(check bool) "OMP110 emitted" true
    (List.exists (fun r -> r.Remark.id = 110) report.Pass_manager.remarks)

let h2shared_src =
  {|
double Out[4];
int main() {
  #pragma omp target teams distribute num_teams(2) thread_limit(4)
  for (int i = 0; i < 4; i++) {
    double team_val = (double)(i + 1);
    #pragma omp parallel for
    for (int j = 0; j < 4; j++) {
      #pragma omp atomic
      team_val += 0.5;
    }
    Out[i] = team_val;
  }
  for (int i = 0; i < 4; i++) { trace_f64(Out[i]); }
  return 0;
}
|}

let test_heap_to_shared_fires () =
  let m = Helpers.compile h2shared_src in
  let report = Helpers.optimize m in
  Alcotest.(check bool) "team_val and the args buffer move to shared memory" true
    (report.Pass_manager.heap_to_shared >= 2);
  Alcotest.(check bool) "shared globals created" true
    (List.exists
       (fun g -> g.Ir.Irmod.gspace = Ir.Types.Shared)
       m.Ir.Irmod.globals);
  Alcotest.(check bool) "OMP111 emitted" true
    (List.exists (fun r -> r.Remark.id = 111) report.Pass_manager.remarks);
  Alcotest.check Helpers.trace_testable "semantics preserved"
    [ "f:3"; "f:4"; "f:5"; "f:6" ]
    (Helpers.run_trace ~options:default h2shared_src)

let test_deglobalization_missed_remark () =
  (* an allocation that escapes to unknown code cannot be recovered *)
  let src =
    {|
extern void unknown_sink(double* p);
double Out[4];
int main() {
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(4)
  for (int i = 0; i < 4; i++) {
    double v = (double)i;
    unknown_sink(&v);
    Out[i] = v;
  }
  return 0;
}
|}
  in
  let m = Helpers.compile src in
  let report = Helpers.optimize m in
  Alcotest.(check int) "nothing recovered" 0 report.Pass_manager.heap_to_stack;
  Alcotest.(check bool) "OMP112 missed-opportunity remark" true
    (List.exists
       (fun r -> r.Remark.id = 112 && r.Remark.kind = Remark.Missed)
       report.Pass_manager.remarks);
  Alcotest.(check bool) "OMP113 with capture reason" true
    (List.exists (fun r -> r.Remark.id = 113) report.Pass_manager.remarks)

let test_nocapture_assumption_enables_h2s () =
  let src assume =
    Printf.sprintf
      {|
%s
extern void annotated_sink(double* p);
double Out[4];
int main() {
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(4)
  for (int i = 0; i < 4; i++) {
    double v = (double)i;
    annotated_sink(&v);
    Out[i] = v;
  }
  return 0;
}
|}
      assume
  in
  let without = Helpers.compile (src "") in
  let with_ = Helpers.compile (src "#pragma omp assume ext_nocapture") in
  let r1 = Helpers.optimize without in
  let r2 = Helpers.optimize with_ in
  Alcotest.(check int) "blocked without the assumption" 0 r1.Pass_manager.heap_to_stack;
  Alcotest.(check int) "recovered with ext_nocapture" 1 r2.Pass_manager.heap_to_stack

let test_shared_budget_respected () =
  (* shared budget exceeded: stays globalized, with remarks *)
  let src =
    {|
double Out[2];
int main() {
  #pragma omp target teams distribute num_teams(1) thread_limit(2)
  for (int i = 0; i < 2; i++) {
    double huge[16000];   // 128 KB > the 64 KB budget
    huge[0] = (double)i;
    #pragma omp parallel for
    for (int j = 0; j < 2; j++) {
      #pragma omp atomic
      huge[0] += 1.0;
    }
    Out[i] = huge[0];
  }
  return 0;
}
|}
  in
  let m = Helpers.compile src in
  let report = Helpers.optimize m in
  Alcotest.(check bool) "huge allocation not placed in shared memory" true
    (report.Pass_manager.shared_bytes < 128 * 1024)

(* ------------------------------------------------------------------ *)
(* SPMDzation                                                          *)
(* ------------------------------------------------------------------ *)

let test_spmdization_converts () =
  let m = Helpers.compile h2shared_src in
  let report = Helpers.optimize m in
  Alcotest.(check int) "kernel converted" 1 report.Pass_manager.spmdized;
  let kernel = List.hd (Ir.Irmod.kernels m) in
  Alcotest.(check bool) "mode flipped" true
    ((Option.get kernel.Ir.Func.kernel).Ir.Func.exec_mode = Ir.Func.Spmd);
  Alcotest.(check bool) "worker state machine removed" true
    (Ir.Func.fold_instrs kernel ~init:true ~g:(fun acc _ i ->
         acc
         &&
         match i.Ir.Instr.kind with
         | Ir.Instr.Call (_, Ir.Instr.Direct "__kmpc_worker_wait", _) -> false
         | _ -> true));
  Alcotest.(check bool) "OMP120 emitted" true
    (List.exists (fun r -> r.Remark.id = 120) report.Pass_manager.remarks)

let test_spmdization_blocked_by_external_call () =
  let src =
    {|
extern void mystery();
double Out[2];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(2)
  {
    mystery();
    #pragma omp parallel
    { Out[omp_get_thread_num()] = 1.0; }
  }
  return 0;
}
|}
  in
  let m = Helpers.compile src in
  let report = Helpers.optimize m in
  Alcotest.(check int) "not converted" 0 report.Pass_manager.spmdized;
  Alcotest.(check bool) "OMP121 names the blocker" true
    (List.exists
       (fun r -> r.Remark.id = 121 && r.Remark.kind = Remark.Missed)
       report.Pass_manager.remarks)

let test_spmd_amenable_assumption_unblocks () =
  let src =
    {|
#pragma omp assume ext_spmd_amenable
extern void mystery();
double Out[2];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(2)
  {
    mystery();
    #pragma omp parallel
    { Out[omp_get_thread_num()] = 1.0; }
  }
  return 0;
}
|}
  in
  let m = Helpers.compile src in
  let report = Helpers.optimize m in
  Alcotest.(check int) "converted with the assumption" 1 report.Pass_manager.spmdized

let test_guard_grouping_reduces_barriers () =
  (* Figure 7: adjacent side effects separated by pure code share a guard *)
  let src =
    {|
double A[4];
double B[4];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(4)
  {
    A[0] = 1.0;
    // the address computation for B below is the SPMD-amenable code the
    // grouping optimization hoists above the pending guarded group
    B[0] = 30.0;
    #pragma omp parallel
    {
      #pragma omp atomic
      A[0] += 1.0;
    }
  }
  trace_f64(A[0] + B[0]);
  return 0;
}
|}
  in
  let grouped = Helpers.compile src in
  let r1 = Helpers.optimize grouped in
  let ungrouped = Helpers.compile src in
  let r2 =
    Helpers.optimize
      ~options:{ default with Pass_manager.disable_guard_grouping = true }
      ungrouped
  in
  Alcotest.(check bool) "both SPMDized" true
    (r1.Pass_manager.spmdized = 1 && r2.Pass_manager.spmdized = 1);
  Alcotest.(check bool) "grouping emits fewer guarded regions" true
    (r1.Pass_manager.guards < r2.Pass_manager.guards);
  (* and both are correct *)
  Alcotest.check Helpers.trace_testable "grouped semantics" [ "f:35" ]
    (Helpers.run_trace ~options:default src);
  Alcotest.check Helpers.trace_testable "ungrouped semantics" [ "f:35" ]
    (Helpers.run_trace
       ~options:{ default with Pass_manager.disable_guard_grouping = true }
       src)

let test_broadcast_of_guarded_values () =
  (* a value produced by a guarded side effect and used afterwards must be
     broadcast to all threads *)
  let src =
    {|
double A[4];
long Counter[1];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(4)
  {
    long ticket = Counter[0] + 5;
    Counter[0] = ticket;            // guarded store
    double seed = (double)ticket;   // uses the guarded computation
    #pragma omp parallel
    {
      int t = omp_get_thread_num();
      A[t] = seed + (double)t;
    }
  }
  for (int i = 0; i < 4; i++) { trace_f64(A[i]); }
  trace(Counter[0]);
  return 0;
}
|}
  in
  Alcotest.check Helpers.trace_testable "broadcast preserves semantics"
    (Helpers.run_trace src)
    (Helpers.run_trace ~options:default src)

(* ------------------------------------------------------------------ *)
(* Custom state machine                                                *)
(* ------------------------------------------------------------------ *)

let csm_options = { default with Pass_manager.disable_spmdization = true }

let test_csm_rewrites () =
  let m = Helpers.compile h2shared_src in
  let report = Helpers.optimize ~options:csm_options m in
  Alcotest.(check int) "state machine rewritten" 1 report.Pass_manager.custom_state_machines;
  Alcotest.(check int) "no fallback needed" 0 report.Pass_manager.csm_fallbacks;
  let kernel = List.hd (Ir.Irmod.kernels m) in
  let has_indirect =
    Ir.Func.fold_instrs kernel ~init:false ~g:(fun acc _ i ->
        acc
        || match i.Ir.Instr.kind with Ir.Instr.Call (_, Ir.Instr.Indirect _, _) -> true | _ -> false)
  in
  Alcotest.(check bool) "no indirect calls remain" false has_indirect;
  Alcotest.(check bool) "OMP130 emitted" true
    (List.exists (fun r -> r.Remark.id = 130) report.Pass_manager.remarks);
  Alcotest.check Helpers.trace_testable "semantics preserved"
    [ "f:3"; "f:4"; "f:5"; "f:6" ]
    (Helpers.run_trace ~options:csm_options h2shared_src)

let test_csm_fallback_for_unknown_regions () =
  let src =
    {|
#pragma omp assume ext_spmd_amenable
extern void external_may_parallel();
double Out[4];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(4)
  {
    external_may_parallel();
    #pragma omp parallel
    { Out[omp_get_thread_num()] = 2.0; }
  }
  return 0;
}
|}
  in
  let m = Helpers.compile src in
  (* also disable SPMDzation so the state machine survives to be rewritten *)
  let report = Helpers.optimize ~options:csm_options m in
  if report.Pass_manager.custom_state_machines > 0 then begin
    Alcotest.(check int) "fallback kept" 1 report.Pass_manager.csm_fallbacks;
    Alcotest.(check bool) "OMP132 fallback remark" true
      (List.exists (fun r -> r.Remark.id = 132) report.Pass_manager.remarks)
  end

let test_csm_multiple_regions_cascade () =
  let src =
    {|
double A[4];
double B[4];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(4)
  {
    #pragma omp parallel
    { A[omp_get_thread_num()] = 1.0; }
    #pragma omp parallel
    { B[omp_get_thread_num()] = 2.0; }
  }
  double s = 0.0;
  for (int i = 0; i < 4; i++) { s += A[i] + B[i]; }
  trace_f64(s);
  return 0;
}
|}
  in
  let m = Helpers.compile src in
  let report = Helpers.optimize ~options:csm_options m in
  Alcotest.(check int) "rewritten with two regions" 1
    report.Pass_manager.custom_state_machines;
  Alcotest.check Helpers.trace_testable "both regions dispatched by id" [ "f:12" ]
    (Helpers.run_trace ~options:csm_options src)

(* ------------------------------------------------------------------ *)
(* Folding                                                             *)
(* ------------------------------------------------------------------ *)

let test_fold_counts () =
  let m = Helpers.compile h2shared_src in
  let report = Helpers.optimize m in
  Alcotest.(check bool) "exec-mode folds" true (report.Pass_manager.folds_exec_mode > 0);
  Alcotest.(check bool) "parallel-level folds" true
    (report.Pass_manager.folds_parallel_level > 0);
  Alcotest.(check bool) "launch-bound folds" true
    (report.Pass_manager.folds_launch_bounds > 0);
  (* after full optimization no __kmpc_is_spmd_exec_mode calls survive *)
  let count =
    List.fold_left
      (fun acc f ->
        Ir.Func.fold_instrs f ~init:acc ~g:(fun acc _ i ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Call (_, Ir.Instr.Direct "__kmpc_is_spmd_exec_mode", _) -> acc + 1
            | _ -> acc))
      0 (Ir.Irmod.defined_funcs m)
  in
  Alcotest.(check int) "mode checks eliminated" 0 count

let test_no_launch_fold_without_clauses () =
  let src =
    {|
double A[4];
int main() {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 4; i++) { A[i] = 1.0; }
  return 0;
}
|}
  in
  let m = Helpers.compile src in
  let report = Helpers.optimize m in
  Alcotest.(check int) "no launch-bound folds without constants" 0
    report.Pass_manager.folds_launch_bounds

let test_fold_thread_id_main_only () =
  (* in main-thread-only code omp_get_thread_num folds to 0 *)
  let src =
    {|
double A[2];
static int who() { return omp_get_thread_num(); }
int main() {
  #pragma omp target teams num_teams(1) thread_limit(4)
  {
    A[0] = (double)who();
    #pragma omp parallel
    {
      #pragma omp atomic
      A[1] += 1.0;
    }
  }
  trace_f64(A[0]);
  trace_f64(A[1]);
  return 0;
}
|}
  in
  Alcotest.check Helpers.trace_testable "main-only tid folds to 0"
    (Helpers.run_trace src)
    (Helpers.run_trace ~options:default src)

(* ------------------------------------------------------------------ *)
(* Internalization and simplify                                        *)
(* ------------------------------------------------------------------ *)

let test_internalization () =
  let src =
    {|
double Out[2];
double exported_helper(double x) { return x + 1.0; }
int main() {
  #pragma omp target teams distribute parallel for num_teams(1) thread_limit(2)
  for (int i = 0; i < 2; i++) { Out[i] = exported_helper((double)i); }
  return 0;
}
|}
  in
  let m = Helpers.compile src in
  let report = Helpers.optimize m in
  Alcotest.(check bool) "exported function internalized" true
    (report.Pass_manager.internalized >= 1);
  Alcotest.(check bool) "internal copy exists" true
    (Ir.Irmod.find_func m "exported_helper.internalized" <> None);
  (* the original remains for external callers *)
  Alcotest.(check bool) "original kept" true
    (Ir.Irmod.find_func m "exported_helper" <> None)

let test_simplify_constant_folding () =
  let m =
    Ir.Parser.parse_module
      {|module "s"
declare void @__devrt_trace(i64)
define internal void @f() {
entry:
  %0 = add i32 i32 2, i32 3
  %1 = icmp slt i32 %0, i32 10
  cbr %1, yes, no
yes:
  call void @__devrt_trace(i64 1)
  ret
no:
  call void @__devrt_trace(i64 2)
  ret
}
|}
  in
  ignore (Simplify.run m);
  let f = Ir.Irmod.find_func_exn m "f" in
  Alcotest.(check int) "branch folded, dead block pruned" 1 (List.length f.Ir.Func.blocks)

let test_simplify_keeps_side_effects () =
  let m =
    Ir.Parser.parse_module
      {|module "s"
declare void @__devrt_trace(i64)
define internal void @f() {
entry:
  call void @__devrt_trace(i64 7)
  %1 = add i32 i32 1, i32 1
  ret
}
|}
  in
  ignore (Simplify.run m);
  let f = Ir.Irmod.find_func_exn m "f" in
  let instrs = (Ir.Func.entry f).Ir.Block.instrs in
  Alcotest.(check int) "dead add removed, trace kept" 1 (List.length instrs)

(* ------------------------------------------------------------------ *)
(* Remark registry                                                     *)
(* ------------------------------------------------------------------ *)

let test_remark_registry () =
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "OMP%d described" id)
        true
        (Remark.description id <> "Unknown remark."))
    [ 100; 110; 111; 112; 113; 120; 121; 130; 131; 132; 133; 150; 160; 170; 180 ];
  let r = Remark.make ~func:"f" 110 in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render contains id" true (contains (Remark.to_string r) "OMP110")

(* ------------------------------------------------------------------ *)
(* Differential semantics: every optimization level preserves traces   *)
(* ------------------------------------------------------------------ *)

let differential_programs =
  [
    ("fig1", {|
double A[8];
static double compute(int x) { return (double)x * 2.0 + 1.0; }
static void combine(double* a, double* b) { a[0] = a[0] + b[0]; }
int main() {
  #pragma omp target teams distribute num_teams(2) thread_limit(4)
  for (int i = 0; i < 8; i++) {
    double team_val = compute(i);
    #pragma omp parallel for
    for (int j = 0; j < 4; j++) {
      double thread_val = compute(j);
      #pragma omp atomic
      team_val += thread_val;
    }
    A[i] = team_val;
  }
  for (int i = 0; i < 8; i++) { trace_f64(A[i]); }
  return 0;
}
|});
    ("reduction", {|
double Sum[1];
int main() {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (int i = 0; i < 64; i++) {
    #pragma omp atomic
    Sum[0] += (double)(i % 7);
  }
  trace_f64(Sum[0]);
  return 0;
}
|});
    ("stencil", {|
double In[16];
double Out[16];
int main() {
  for (int i = 0; i < 16; i++) { In[i] = (double)(i * i % 11); }
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (int i = 1; i < 15; i++) {
    double window[3];
    window[0] = In[i - 1];
    window[1] = In[i];
    window[2] = In[i + 1];
    Out[i] = (window[0] + window[1] + window[2]) / 3.0;
  }
  double s = 0.0;
  for (int i = 0; i < 16; i++) { s += Out[i]; }
  trace_f64(s);
  return 0;
}
|});
    ("two-regions", {|
double A[4];
double B[4];
int main() {
  #pragma omp target teams distribute num_teams(1) thread_limit(4)
  for (int w = 0; w < 4; w++) {
    double stage = (double)(w + 1);
    #pragma omp parallel for
    for (int i = 0; i < 4; i++) {
      #pragma omp atomic
      A[i] += stage;
    }
    #pragma omp parallel for
    for (int i2 = 0; i2 < 4; i2++) {
      #pragma omp atomic
      B[i2] += A[i2] * 0.5;
    }
  }
  double s = 0.0;
  for (int i = 0; i < 4; i++) { s += A[i] + B[i]; }
  trace_f64(s);
  return 0;
}
|});
  ]

let differential_tests =
  List.map
    (fun (name, src) ->
      Alcotest.test_case ("differential: " ^ name) `Quick (fun () ->
          Helpers.assert_same_trace
            ~schemes:[ Frontend.Codegen.Simplified; Frontend.Codegen.Legacy ]
            ~option_sets:Helpers.all_opt_variants src))
    differential_programs

let suite =
  [
    Alcotest.test_case "heap-to-stack fires" `Quick test_heap_to_stack_fires;
    Alcotest.test_case "heap-to-stack remark" `Quick test_heap_to_stack_remark;
    Alcotest.test_case "heap-to-shared fires" `Quick test_heap_to_shared_fires;
    Alcotest.test_case "missed deglobalization remarks" `Quick
      test_deglobalization_missed_remark;
    Alcotest.test_case "ext_nocapture assumption" `Quick test_nocapture_assumption_enables_h2s;
    Alcotest.test_case "shared budget" `Quick test_shared_budget_respected;
    Alcotest.test_case "SPMDzation converts" `Quick test_spmdization_converts;
    Alcotest.test_case "SPMDzation blocked by external call" `Quick
      test_spmdization_blocked_by_external_call;
    Alcotest.test_case "ext_spmd_amenable unblocks" `Quick test_spmd_amenable_assumption_unblocks;
    Alcotest.test_case "guard grouping (Fig 7)" `Quick test_guard_grouping_reduces_barriers;
    Alcotest.test_case "broadcast of guarded values" `Quick test_broadcast_of_guarded_values;
    Alcotest.test_case "CSM rewrites" `Quick test_csm_rewrites;
    Alcotest.test_case "CSM fallback" `Quick test_csm_fallback_for_unknown_regions;
    Alcotest.test_case "CSM cascade over two regions" `Quick test_csm_multiple_regions_cascade;
    Alcotest.test_case "fold counts" `Quick test_fold_counts;
    Alcotest.test_case "no launch folds without clauses" `Quick
      test_no_launch_fold_without_clauses;
    Alcotest.test_case "fold tid in main-only code" `Quick test_fold_thread_id_main_only;
    Alcotest.test_case "internalization" `Quick test_internalization;
    Alcotest.test_case "simplify constant folding" `Quick test_simplify_constant_folding;
    Alcotest.test_case "simplify keeps side effects" `Quick test_simplify_keeps_side_effects;
    Alcotest.test_case "remark registry" `Quick test_remark_registry;
  ]
  @ differential_tests

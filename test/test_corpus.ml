(* The conformance corpus: PRNG stability, generator determinism, the
   differential matrix, the committed ledger, and the daemon traffic
   generator.  The pinned constants here are load-bearing: the corpus
   promises bit-identical programs from a seed on any OCaml version, and
   the cache key promises that no config change can silently alias a
   cached compile — both promises are only as good as their goldens. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checks = check Alcotest.string
let check64 = check Alcotest.int64

(* ------------------------------------------------------------------ *)
(* SplitMix64                                                          *)
(* ------------------------------------------------------------------ *)

(* The raw 64-bit stream is pinned forever: these are the reference
   SplitMix64 outputs for the given seeds, so a reimplementation (or an
   OCaml upgrade changing some library this leaned on) cannot silently
   reshuffle every corpus. *)
let splitmix_golden () =
  let t = Corpus.Splitmix.create 1L in
  check64 "draw 1 of seed 1" (-7995527694508729151L) (Corpus.Splitmix.next t);
  check64 "draw 2 of seed 1" (-4689498862643123097L) (Corpus.Splitmix.next t);
  check64 "draw 3 of seed 1" (-534904783426661026L) (Corpus.Splitmix.next t);
  let u = Corpus.Splitmix.create 42L in
  checks "bounded draws of seed 42" "3,2,4,1,2,5,1,7"
    (String.concat ","
       (List.init 8 (fun _ -> string_of_int (Corpus.Splitmix.int u 10))));
  let s = Corpus.Splitmix.split (Corpus.Splitmix.create 42L) "prog#0" in
  check64 "split stream prog#0 of seed 42" (-4158802791444587499L)
    (Corpus.Splitmix.next s)

let splitmix_streams () =
  (* equal seeds, equal streams *)
  let a = Corpus.Splitmix.create 7L and b = Corpus.Splitmix.create 7L in
  for i = 1 to 100 do
    check64 (Printf.sprintf "lockstep draw %d" i) (Corpus.Splitmix.next a)
      (Corpus.Splitmix.next b)
  done;
  (* a copy diverges from nothing: it replays the original's future *)
  let c = Corpus.Splitmix.copy a in
  let expect = List.init 10 (fun _ -> Corpus.Splitmix.next a) in
  List.iteri
    (fun i v -> check64 (Printf.sprintf "copy draw %d" i) v (Corpus.Splitmix.next c))
    expect;
  (* split depends on (seed, label), not on the parent's position *)
  let fresh = Corpus.Splitmix.split (Corpus.Splitmix.create 7L) "x" in
  let advanced =
    let p = Corpus.Splitmix.create 7L in
    ignore (Corpus.Splitmix.next p);
    ignore (Corpus.Splitmix.next p);
    Corpus.Splitmix.split p "x"
  in
  check64 "split is position-insensitive" (Corpus.Splitmix.next fresh)
    (Corpus.Splitmix.next advanced);
  (* bounded draws stay in bounds, including awkward bounds *)
  let r = Corpus.Splitmix.create 99L in
  List.iter
    (fun bound ->
      for _ = 1 to 200 do
        let v = Corpus.Splitmix.int r bound in
        if v < 0 || v >= bound then
          Alcotest.failf "Splitmix.int %d drew %d" bound v
      done)
    [ 1; 2; 3; 7; 255; 1 lsl 20 ]

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let generator_deterministic () =
  for i = 0 to 15 do
    let p1 = Corpus.Gen.generate (Corpus.Gen.program_stream ~root:42L i) in
    let p2 = Corpus.Gen.generate (Corpus.Gen.program_stream ~root:42L i) in
    checks
      (Printf.sprintf "program %d regenerates identically" i)
      (Corpus.Gen.render ~mode:Corpus.Gen.Generic p1)
      (Corpus.Gen.render ~mode:Corpus.Gen.Generic p2)
  done

(* the first programs of the canonical corpus (root 42) are pinned by
   digest: a grammar or PRNG change that reshuffles the corpus must show
   up as an intentional diff here and in test/corpus_ledger.expected *)
let generator_golden () =
  let renders =
    List.init 8 (fun i ->
        Corpus.Gen.render ~mode:Corpus.Gen.Generic
          (Corpus.Gen.generate (Corpus.Gen.program_stream ~root:42L i)))
  in
  checks "digest of corpus programs 0-7 (root 42)" "383b5f9ae97fb8d4"
    (String.sub (Sched.Cache.key ("corpus-renders" :: renders)) 0 16)

let generator_escape_invariant () =
  (* the determinism rule the barriers rely on: any program with an
     Escape runs one team whose trip count equals the thread limit *)
  for i = 0 to 199 do
    let p = Corpus.Gen.generate (Corpus.Gen.program_stream ~root:7L i) in
    if Corpus.Gen.has_escape p then
      checki (Printf.sprintf "escape program %d trip count" i) 4 p.Corpus.Gen.outer
  done

(* ------------------------------------------------------------------ *)
(* Cache-key stability (API golden)                                    *)
(* ------------------------------------------------------------------ *)

(* Ompgpu_api.cache_key addresses the disk cache and the daemon's warm
   cache.  Pinning it across schemes, configs and injection fingerprints
   catches both accidental key drift (every cache goes cold) and, worse,
   accidental key collisions (a config change that stops reaching the
   fingerprint would silently serve stale results). *)
let cache_key_golden () =
  let module Api = Ompgpu_api in
  let src = "int main() { return 0; }\n" in
  let key c = Api.cache_key ~file:"golden.c" ~config:c ~source:src in
  let expected =
    [
      (* re-pinned for mompc-cache-v6: api_version 2 keys hash the
         effective pipeline identity, so every pre-v6 key goes cold *)
      ("default", Api.Config.default, "215927b15809826e");
      ( "legacy",
        Api.Config.with_scheme Frontend.Codegen.Legacy Api.Config.default,
        "35a32b0741be8bc7" );
      ( "cuda",
        Api.Config.with_scheme Frontend.Codegen.Cuda Api.Config.default,
        "1679501d9da5882d" );
      ("optimized", Api.Config.optimized Api.Config.default,
       "01b3fc9f66293233");
      ("sim", Api.Config.with_sim Api.Config.default,
       "277379d18d2f61b6");
      ( "injected",
        Api.Config.with_inject
          [ { Fault.Injector.site = Fault.Injector.Mem_alloc; rate = 0.5; seed = 7 } ]
          Api.Config.default,
        "2f5a2045187a2f14" );
    ]
  in
  List.iter (fun (name, c, k) -> checks ("cache_key " ^ name) k (key c)) expected;
  (* and they are pairwise distinct — the non-aliasing half of the promise *)
  let keys = List.map (fun (_, c, _) -> key c) expected in
  checki "cache keys are pairwise distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  (* the source text joins the key too *)
  if
    String.equal
      (Ompgpu_api.cache_key ~file:"golden.c" ~config:Api.Config.default
         ~source:src)
      (Ompgpu_api.cache_key ~file:"golden.c" ~config:Api.Config.default
         ~source:(src ^ " "))
  then Alcotest.fail "cache_key ignored the source text";
  (* and the file label: diagnostics embed it, so the same source under
     two labels must never share a cache entry (the full-scale corpus
     caught the daemon aliasing exactly this) *)
  if
    String.equal
      (Ompgpu_api.cache_key ~file:"a.c" ~config:Api.Config.default ~source:src)
      (Ompgpu_api.cache_key ~file:"b.c" ~config:Api.Config.default ~source:src)
  then Alcotest.fail "cache_key ignored the file label"

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)
(* ------------------------------------------------------------------ *)

let matrix_smoke () =
  let results = Corpus.Matrix.run ~root:42L ~n:6 () in
  checki "cells per program"
    (List.length Corpus.Matrix.cells)
    (List.length (List.hd results).Corpus.Matrix.cells);
  (match Corpus.Matrix.failures results with
  | [] -> ()
  | (r, cr) :: _ ->
    Alcotest.failf "unexplained divergence: prog=%d cell=%s" r.Corpus.Matrix.index
      (Corpus.Matrix.cell_name cr.Corpus.Matrix.cell));
  (* every known verdict cites a class the classifier licenses *)
  List.iter
    (fun (r : Corpus.Matrix.program_result) ->
      List.iter
        (fun (cr : Corpus.Matrix.cell_result) ->
          match cr.Corpus.Matrix.verdict with
          | Corpus.Matrix.Known { cls; _ } ->
            (match Corpus.Matrix.classify cr.Corpus.Matrix.cell r.Corpus.Matrix.prog with
            | Some c -> checks "known verdict matches classify" c cls
            | None ->
              Alcotest.failf "known verdict %s in unlicensed cell %s" cls
                (Corpus.Matrix.cell_name cr.Corpus.Matrix.cell))
          | Corpus.Matrix.Pass | Corpus.Matrix.Fail _ -> ())
        r.Corpus.Matrix.cells)
    results

let matrix_cell_names_roundtrip () =
  List.iter
    (fun cell ->
      match Corpus.Matrix.cell_of_name (Corpus.Matrix.cell_name cell) with
      | Some c -> checks "roundtrip" (Corpus.Matrix.cell_name cell) (Corpus.Matrix.cell_name c)
      | None -> Alcotest.failf "cell %s lost by cell_of_name" (Corpus.Matrix.cell_name cell))
    Corpus.Matrix.cells

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)
(* ------------------------------------------------------------------ *)

let ledger_diff_unit () =
  let ok = function
    | Result.Ok () -> ()
    | Result.Error r -> Alcotest.failf "unexpected ledger diff: %s" r
  in
  ok (Corpus.Ledger.diff ~expected:"a\nb\n" ~actual:"a\nb\n");
  (* comment lines are commentary, not contract *)
  ok (Corpus.Ledger.diff ~expected:"# old note\na\nb\n" ~actual:"a\n# new note\nb\n");
  (match Corpus.Ledger.diff ~expected:"a\nb\n" ~actual:"a\nx\n" with
  | Result.Ok () -> Alcotest.fail "diff missed a changed line"
  | Result.Error _ -> ());
  match Corpus.Ledger.diff ~expected:"a\nb\n" ~actual:"a\n" with
  | Result.Ok () -> Alcotest.fail "diff missed a missing line"
  | Result.Error _ -> ()

(* The committed golden: the small canonical corpus (root 42, 48
   programs — what `make conformance-smoke` runs) renders exactly the
   ledger in test/corpus_ledger.expected. *)
let ledger_golden () =
  let results = Corpus.Matrix.run ~root:42L ~n:48 () in
  let actual = Corpus.Ledger.render ~root:42L results in
  let path =
    (* dune runtest runs in test/; dune exec test/test_main.exe runs in
       the project root *)
    if Sys.file_exists "corpus_ledger.expected" then "corpus_ledger.expected"
    else "test/corpus_ledger.expected"
  in
  let expected = In_channel.with_open_text path In_channel.input_all in
  match Corpus.Ledger.diff ~expected ~actual with
  | Result.Ok () -> ()
  | Result.Error report ->
    Alcotest.failf
      "corpus drifted from test/corpus_ledger.expected:@.%s@.regenerate with:\n\
       dune exec tools/conformance.exe -- --n 48 --seed 42 --ledger \
       test/corpus_ledger.expected" report

(* ------------------------------------------------------------------ *)
(* Daemon traffic                                                      *)
(* ------------------------------------------------------------------ *)

let traffic_smoke () =
  let s = Corpus.Traffic.run ~connections:2 ~domains:1 ~root:42L ~n:2 () in
  checki "jobs = programs x cells" (2 * List.length Corpus.Matrix.cells)
    s.Corpus.Traffic.jobs;
  checki "transport errors" 0 s.Corpus.Traffic.transport_errors;
  check Alcotest.bool "daemon answers byte-identical to in-process" true
    s.Corpus.Traffic.byte_identical;
  (* the observe section carries the schema stamp *)
  match Corpus.Traffic.to_json s with
  | Observe.Json.Obj (("schema", Observe.Json.Int v) :: _) ->
    checki "corpus section schema" Ompgpu_api.schema_version v
  | _ -> Alcotest.fail "corpus JSON section is not schema-stamped"

(* Regression for the cache-aliasing bug the full-scale corpus caught:
   the daemon's warm cache served one request's file label to a later
   request for the same source under a different name (diagnostics embed
   the label, so the bytes differed from in-process compilation).  The
   file label now joins Ompgpu_api.cache_key. *)
let traffic_no_file_alias () =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mompd-alias-%d.sock" (Unix.getpid ()))
  in
  let server =
    Service.Server.create
      { Service.Server.default_config with socket_path; domains = 1 }
  in
  let server_thread = Thread.create Service.Server.serve_forever server in
  let config = { Ompgpu_api.Config.default with run_sim = true; emit_ir = false } in
  (* malformed on purpose: the structured error line embeds the file *)
  let src = "int main() { long x = ; }\n" in
  let daemon =
    Service.Client.with_connection ~socket_path (fun c ->
        let compile file =
          match Service.Client.compile c ~file ~config src with
          | Ok r -> r
          | Error e ->
            Alcotest.failf "daemon compile %s: %s" file
              (Fault.Ompgpu_error.to_string e)
        in
        let a = compile "alias-a.c" in
        let b = compile "alias-b.c" in
        (match Service.Client.shutdown c () with
        | Ok () -> ()
        | Error e ->
          Alcotest.failf "shutdown: %s" (Fault.Ompgpu_error.to_string e));
        (a, b))
  in
  Thread.join server_thread;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let a, b = daemon in
  let expect file = Ompgpu_api.compile_buffered ~config ~file src in
  checks "alias-a.c keeps its own label"
    (expect "alias-a.c").Ompgpu_api.diagnostics a.Ompgpu_api.diagnostics;
  checks "alias-b.c keeps its own label"
    (expect "alias-b.c").Ompgpu_api.diagnostics b.Ompgpu_api.diagnostics

let suite =
  [
    Alcotest.test_case "splitmix: pinned reference draws" `Quick splitmix_golden;
    Alcotest.test_case "splitmix: stream discipline" `Quick splitmix_streams;
    Alcotest.test_case "generator: seed determinism" `Quick generator_deterministic;
    Alcotest.test_case "generator: pinned corpus prefix" `Quick generator_golden;
    Alcotest.test_case "generator: escape trip-count invariant" `Quick
      generator_escape_invariant;
    Alcotest.test_case "api: cache_key pinned across configs" `Quick cache_key_golden;
    Alcotest.test_case "matrix: smoke run has no unexplained divergence" `Quick
      matrix_smoke;
    Alcotest.test_case "matrix: cell names round-trip" `Quick
      matrix_cell_names_roundtrip;
    Alcotest.test_case "ledger: diff semantics" `Quick ledger_diff_unit;
    Alcotest.test_case "ledger: committed golden matches" `Slow ledger_golden;
    Alcotest.test_case "traffic: daemon corpus byte-identical" `Slow traffic_smoke;
    Alcotest.test_case "traffic: no file-label aliasing in warm cache" `Quick
      traffic_no_file_alias;
  ]

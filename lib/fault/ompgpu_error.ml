(* Structured error taxonomy (see the .mli and docs/ROBUSTNESS.md). *)

type phase =
  | Lexing
  | Parsing
  | Lowering
  | Verifying
  | Optimizing
  | Simulating
  | Scheduling
  | Caching
  | Driver
  | Serving

type kind =
  | Lex
  | Parse
  | Codegen
  | Verify
  | Pass_crash of { pass : string; round : int }
  | Sim_trap
  | Oom
  | Shared_budget_exceeded
  | Deadlock of { barrier : string }
  | Timeout of { seconds : float }
  | Cache_corrupt
  | Overload of { pending : int; capacity : int }
  | Crash_loop of { restarts : int; window_s : float }
  | Bad_request
  | Internal

type t = {
  kind : kind;
  phase : phase;
  loc : Support.Loc.t option;
  peer : string option;
  message : string;
  backtrace : string option;
}

exception Error of t

let make kind ~phase ?loc ?peer ?backtrace message =
  { kind; phase; loc; peer; message; backtrace }

let raise_error kind ~phase ?loc fmt =
  Fmt.kstr (fun message -> raise (Error (make kind ~phase ?loc message))) fmt

let kind_name = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Codegen -> "codegen"
  | Verify -> "verify"
  | Pass_crash _ -> "pass-crash"
  | Sim_trap -> "sim-trap"
  | Oom -> "oom"
  | Shared_budget_exceeded -> "shared-budget-exceeded"
  | Deadlock _ -> "deadlock"
  | Timeout _ -> "timeout"
  | Cache_corrupt -> "cache-corrupt"
  | Overload _ -> "overload"
  | Crash_loop _ -> "crash-loop"
  | Bad_request -> "bad-request"
  | Internal -> "internal"

let phase_name = function
  | Lexing -> "lexing"
  | Parsing -> "parsing"
  | Lowering -> "lowering"
  | Verifying -> "verifying"
  | Optimizing -> "optimizing"
  | Simulating -> "simulating"
  | Scheduling -> "scheduling"
  | Caching -> "caching"
  | Driver -> "driver"
  | Serving -> "serving"

(* Exit codes are API: scripts and CI match on them.  10-19 compile-time,
   20-29 simulation, 30-39 infrastructure, 40-49 service, 70 internal
   (sysexits' EX_SOFTWARE). *)
let exit_code t =
  match t.kind with
  | Lex -> 10
  | Parse -> 11
  | Codegen -> 12
  | Verify -> 13
  | Pass_crash _ -> 14
  | Sim_trap -> 20
  | Oom -> 21
  | Shared_budget_exceeded -> 22
  | Deadlock _ -> 23
  | Timeout _ -> 24
  | Cache_corrupt -> 30
  | Overload _ -> 40
  | Crash_loop _ -> 41
  | Bad_request -> 42
  | Internal -> 70

(* Retry policy (docs/ROBUSTNESS.md): a timeout may be scheduling pressure
   or an injected stall whose next attempt draws a fresh coin; an OOM may be
   concurrent heap pressure; an overloaded service sheds load it will accept
   again once the queue drains.  Everything else is deterministic — retrying
   a parse error or a miscompile-induced deadlock just repeats it. *)
let is_transient t =
  match t.kind with Timeout _ | Oom | Overload _ -> true | _ -> false

let transient_exn = function Error t -> is_transient t | _ -> false

let kind_detail = function
  | Pass_crash { pass; round } -> Printf.sprintf " (pass %s, round %d)" pass round
  | Deadlock { barrier } when barrier <> "" -> Printf.sprintf " (barrier %s)" barrier
  | Timeout { seconds } when seconds > 0. -> Printf.sprintf " (after %.2fs)" seconds
  | Overload { pending; capacity } ->
    Printf.sprintf " (%d in flight, capacity %d)" pending capacity
  | Crash_loop { restarts; window_s } ->
    Printf.sprintf " (%d crashes within %gs)" restarts window_s
  | _ -> ""

let to_string t =
  let loc =
    match t.loc with
    | Some l when not (Support.Loc.is_none l) -> " at " ^ Support.Loc.to_string l
    | _ -> ""
  in
  (* fleet-mode failures name the shard they failed against, so "daemon
     unreachable" always says *which* daemon *)
  let peer = match t.peer with Some p -> " via " ^ p | None -> "" in
  Printf.sprintf "%s error[%s]%s%s%s: %s" (phase_name t.phase) (kind_name t.kind)
    (kind_detail t.kind) loc peer t.message

let to_json t =
  Observe.Json.Obj
    ([
       ("kind", Observe.Json.String (kind_name t.kind));
       ("phase", Observe.Json.String (phase_name t.phase));
       ("exit_code", Observe.Json.Int (exit_code t));
       ("message", Observe.Json.String t.message);
     ]
    @ (match t.kind with
      | Pass_crash { pass; round } ->
        [ ("pass", Observe.Json.String pass); ("round", Observe.Json.Int round) ]
      | Deadlock { barrier } -> [ ("barrier", Observe.Json.String barrier) ]
      | Timeout { seconds } -> [ ("seconds", Observe.Json.Float seconds) ]
      | Overload { pending; capacity } ->
        [
          ("pending", Observe.Json.Int pending);
          ("capacity", Observe.Json.Int capacity);
        ]
      | Crash_loop { restarts; window_s } ->
        [
          ("restarts", Observe.Json.Int restarts);
          ("window_s", Observe.Json.Float window_s);
        ]
      | _ -> [])
    @ (match t.loc with
      | Some l -> [ ("loc", Observe.Json.String (Support.Loc.to_string l)) ]
      | None -> [])
    @ (match t.peer with
      | Some p -> [ ("peer", Observe.Json.String p) ]
      | None -> [])
    @
    match t.backtrace with
    | Some bt -> [ ("backtrace", Observe.Json.String bt) ]
    | None -> [])

let backtrace_of_raw bt =
  match Printexc.raw_backtrace_to_string bt with "" -> None | s -> Some s

let of_exn ~phase e bt =
  match e with
  | Error t ->
    if t.backtrace = None then { t with backtrace = backtrace_of_raw bt } else t
  | e ->
    make Internal ~phase ?backtrace:(backtrace_of_raw bt) (Printexc.to_string e)

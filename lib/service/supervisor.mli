(** Crash-only supervision of the compile daemon's serve loop.

    The supervisor owns what must survive a crash: the bound listening
    socket (so clients connecting during a restart queue in the backlog
    instead of failing) and the request {!Journal}.  Each incarnation of
    {!Server} borrows both; when a serve loop dies — a bug, an injected
    [daemon-kill] fault — the supervisor journals the crash and restarts
    the loop after a jittered exponential backoff
    ([backoff_base_s * 2^(n-1)], capped at [backoff_cap_s], jittered
    deterministically by ±25%).

    Crash-loop circuit breaker: more than [max_restarts] crashes inside a
    sliding [window_s]-second window opens the breaker — the supervisor
    stops restarting, journals [breaker-open], and {!run} returns the
    structured {!Fault.Ompgpu_error.Crash_loop} error, which [mompd]
    turns into the documented exit code 41.  A sick daemon fails fast and
    loud; clients degrade to in-process compilation.

    Supervision never changes observable compile output: every
    incarnation shares the same caches-on-disk, journal, and socket, and
    a compile answered by incarnation 3 is byte-identical to one answered
    by incarnation 1 (pinned by test/test_resilience.ml). *)

type config = {
  server : Server.config;
  max_restarts : int;  (** breaker threshold: crashes tolerated per window *)
  window_s : float;  (** sliding crash-counting window *)
  backoff_base_s : float;
  backoff_cap_s : float;
  log : string -> unit;  (** supervisor narration ([mompd] sends stderr) *)
}

val default_config : config
(** {!Server.default_config} underneath; breaker at 5 crashes / 10s;
    backoff 50ms doubling to a 1s cap; silent log. *)

type t

val create : config -> t
(** Bind the listening socket and open the journal (when
    [server.state_dir] is set) — both outlive every incarnation.  Raises
    [Unix.Unix_error] if the socket cannot be bound. *)

val run : t -> (unit, Fault.Ompgpu_error.t) result
(** Serve until a clean stop ([Ok ()]: shutdown request or {!stop}) or
    until the breaker opens ([Error], kind [Crash_loop]).  Always
    releases the socket (close + unlink) and closes the journal before
    returning. *)

val stop : t -> unit
(** Ask the current incarnation to drain and the supervisor to not
    restart.  Safe from a signal handler; idempotent. *)

val supervision : t -> Server.supervision
(** Live restart/breaker counters (shared with every incarnation's
    [health] answers). *)

val recovery : t -> Journal.recovery
(** What the journal's startup scan replayed (empty without a
    [state_dir]). *)

val run_config : config -> (unit, Fault.Ompgpu_error.t) result
(** [create] + [run]. *)

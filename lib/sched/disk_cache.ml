(* Directory-backed blob cache.  No Unix dependency: Sys + channels are
   enough for mkdir-p (via repeated Sys.mkdir), atomic publish (write a
   unique temp file, Sys.rename over the destination) and lookup.

   Entries are self-verifying: a digest header is prepended at store time
   and checked on every read.  An entry that fails the check — torn write,
   disk corruption, an injected bit-flip — is quarantined (moved aside, so
   a later run can inspect it) and reported as a miss: the cache heals by
   recomputing, it never serves corrupt data. *)

type t = {
  cache_dir : string;
  injector : Fault.Injector.t;
  on_corrupt : (key:string -> path:string -> unit) option;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
}

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()  (* lost a creation race *)
  end

let create ?(injector = Fault.Injector.none) ?on_corrupt ~dir () =
  mkdir_p dir;
  {
    cache_dir = dir;
    injector;
    on_corrupt;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    corrupt = 0;
  }

let dir t = t.cache_dir

(* keys are Cache.key digests, but sanitize anyway so a stray caller cannot
   escape the cache directory *)
let path_of t key =
  let safe =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
      key
  in
  Filename.concat t.cache_dir safe

let count_hit t ok =
  Mutex.lock t.mutex;
  if ok then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  Mutex.unlock t.mutex

(* Entry format: "sched-blob-v1:" ^ md5-hex(payload) ^ "\n" ^ payload.
   The magic doubles as a format version; headerless files (from an older
   layout or a foreign writer) fail verification like corrupt ones. *)
let header_magic = "sched-blob-v1:"
let digest_hex_len = 32
let header_len = String.length header_magic + digest_hex_len + 1

let encode_entry data = header_magic ^ Digest.to_hex (Digest.string data) ^ "\n" ^ data

let decode_entry raw =
  if
    String.length raw >= header_len
    && String.sub raw 0 (String.length header_magic) = header_magic
    && raw.[header_len - 1] = '\n'
  then begin
    let digest = String.sub raw (String.length header_magic) digest_hex_len in
    let data = String.sub raw header_len (String.length raw - header_len) in
    if String.equal digest (Digest.to_hex (Digest.string data)) then Some data else None
  end
  else None

(* Move a failed entry aside rather than deleting it: the quarantine
   directory preserves the evidence for post-mortem without ever being
   consulted by lookups. *)
let quarantine t ~key path =
  Mutex.lock t.mutex;
  t.corrupt <- t.corrupt + 1;
  Mutex.unlock t.mutex;
  let qdir = Filename.concat t.cache_dir "quarantine" in
  mkdir_p qdir;
  (try Sys.rename path (Filename.concat qdir (Filename.basename path))
   with Sys_error _ -> ()  (* lost a race with another reader; already moved *));
  match t.on_corrupt with Some f -> f ~key ~path | None -> ()

let find t ~key =
  let path = path_of t key in
  if Sys.file_exists path then begin
    let raw = In_channel.with_open_bin path In_channel.input_all in
    match decode_entry raw with
    | Some data ->
      count_hit t true;
      Some data
    | None ->
      quarantine t ~key path;
      count_hit t false;
      None
  end
  else begin
    count_hit t false;
    None
  end

(* Flip one payload bit after the digest was computed: the entry is
   well-formed on disk but fails verification on the next read. *)
let corrupt_entry entry =
  let b = Bytes.of_string entry in
  let pos = min (Bytes.length b - 1) header_len in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  Bytes.to_string b

let store t ~key ~data =
  let path = path_of t key in
  let entry = encode_entry data in
  let entry =
    if Fault.Injector.fire t.injector Fault.Injector.Cache_corrupt then
      corrupt_entry entry
    else entry
  in
  (* Filename.temp_file picks a name unique across processes; the rename is
     same-directory, so the publish is atomic *)
  let tmp = Filename.temp_file ~temp_dir:t.cache_dir "sched-cache" ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc entry);
  Sys.rename tmp path

let find_or_compute t ~key f =
  match find t ~key with
  | Some data -> data
  | None ->
    let data = f () in
    store t ~key ~data;
    data

let with_lock t f =
  Mutex.lock t.mutex;
  let v = f () in
  Mutex.unlock t.mutex;
  v

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let corrupt t = with_lock t (fun () -> t.corrupt)

(* Streaming FNV-1a over OCaml's native 63-bit integers.

   The content-address cache hashed megabytes of module text per batch
   through MD5 (buffer copy + a cryptographic compression function per
   block).  Cache keys need collision resistance against accident, not
   adversaries, so a multiplicative byte-at-a-time hash in a native int —
   one fused multiply per byte, no allocation at all — is the right
   price point.  The 64-bit FNV constants are truncated to OCaml's tagged
   63-bit int; keys are printed as 16 hex digits of the final state.

   Determinism: the fold is a pure function of the byte sequence on any
   64-bit platform (the tier-1 targets).  Keys address an in-process (or
   single-daemon) cache and are golden-pinned by the corpus suite; they
   are not a cross-platform wire format. *)

type t = int

(* FNV-1a offset basis / prime, masked into the native int range. *)
let empty : t = 0x3bf29ce484222325
let prime = 0x100000001b3

let add_char (h : t) c = (h lxor Char.code c) * prime

let add_string (h : t) s =
  let h = ref h in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * prime
  done;
  !h

(* Folds the int's own bytes (low to high), so framing lengths with
   [add_int] cannot alias with content bytes. *)
let add_int (h : t) n =
  let h = ref h and n = ref n in
  for _ = 0 to 7 do
    h := (!h lxor (!n land 0xff)) * prime;
    n := !n asr 8
  done;
  !h

let to_hex (h : t) = Printf.sprintf "%016x" (h land max_int)

(** The simulated memory subsystem: one global space (module globals + the
    device heap), one shared space per team, one local space per thread.

    Cross-thread access to local memory reproduces real GPU behaviour:
    local memory is thread-addressed, so dereferencing another thread's
    local pointer silently reads the *current* thread's local memory at the
    same offset — which is exactly how the paper's Figure 3 miscompiles
    under the legacy SPMD fast path.  Such accesses are counted. *)

type arena = { ab : Bytes.t; mutable ahigh : int }
(** A shared/local arena plus the high end of its written span (the dirty
    extent handed back to the scratch on release). *)

type t = {
  machine : Machine.t;
  injector : Fault.Injector.t;
  scratch : Scratch.t option;
  global : Bytes.t;
  shareds : (int, arena) Hashtbl.t;
  locals : (int, arena) Hashtbl.t;
  globals_layout : (string, int) Hashtbl.t;
  shared_layout : (string, int) Hashtbl.t;
  mutable globals_size : int;
  mutable static_shared_size : int;
  heap_base : int;
  mutable heap_cursor : int;
  mutable heap_free : (int * int) list;
  mutable heap_in_use : int;
  mutable heap_high_water : int;
  mutable gdirty_low : int;
  mutable gdirty_heap : int;
  mutable cross_local_accesses : int;
  mutable cached_ranges : (int * int) list;
}

exception Out_of_memory of string

val create : ?injector:Fault.Injector.t -> ?scratch:Scratch.t -> Machine.t -> t
(** [injector] arms the [Mem_alloc] fault site: [heap_alloc] then fails
    deterministically at the injected rate.  [scratch] recycles arena bytes
    across jobs of one pool worker; recycled arenas are zero-filled before
    reuse, so simulations stay byte-identical to the allocate-per-job
    path. *)

val release_shared : t -> int -> unit
(** Drop a team's shared arena (recycled into the scratch when present). *)

val release_local : t -> int -> unit
(** Drop a thread's local arena (recycled into the scratch when present). *)

val release : t -> unit
(** Hand every arena back to the scratch; the memory must not be used
    afterwards.  A no-op without a scratch. *)

val cache_threshold : int
(** Global arrays up to this size get the read-only-cache latency. *)

val layout_module : t -> Ir.Irmod.t -> unit
(** Place module globals: global-space globals in one arena, shared-space
    globals (HeapToShared results) at per-team offsets. *)

val global_addr : t -> string -> team:int -> Rvalue.ptr
val is_cached : t -> int -> bool

val read : t -> current:int -> Rvalue.ptr -> Ir.Types.t -> Rvalue.t
val write : t -> current:int -> Rvalue.ptr -> Ir.Types.t -> Rvalue.t -> unit

val encode_ptr : Rvalue.ptr -> int64
(** Pointers in memory are tag(2) | owner(22) | addr(40). *)

val decode_ptr : int64 -> Rvalue.ptr

val heap_alloc : t -> int -> Rvalue.ptr * int
(** Returns the block and the granted (rounded) size.
    @raise Out_of_memory when the arena itself is exhausted, or when the
    [Mem_alloc] fault site fires. *)

val heap_free_block : t -> int -> int -> unit

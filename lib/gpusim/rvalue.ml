(* Runtime values of the simulator. *)

type space =
  | Sglobal
  | Sshared of int  (* owning team *)
  | Slocal of int  (* owning thread (global index); -1 = host *)

type ptr = { sp : space; addr : int }

type t =
  | I of int64  (* all integer widths, including i1 *)
  | F of float  (* f32 values are kept rounded to single precision *)
  | P of ptr
  | Fn of string
  | Undef

exception Sim_error of string

let error fmt = Fmt.kstr (fun s -> raise (Sim_error s)) fmt

let as_int = function
  | I v -> v
  | Undef -> 0L
  | v -> error "expected integer, got %s" (match v with
      | F _ -> "float" | P _ -> "pointer" | Fn _ -> "function" | I _ | Undef -> "?")

let as_float = function
  | F v -> v
  | I v -> Int64.to_float v
  | Undef -> 0.0
  | _ -> error "expected float"

let as_ptr = function
  | P p -> p
  | I 0L -> { sp = Sglobal; addr = 0 }  (* null *)
  | Undef -> error "dereference of undef pointer"
  | _ -> error "expected pointer"

let is_null = function P { addr = 0; _ } | I 0L -> true | _ -> false

(* normalize an integer to the width of [ty] (sign-extended semantics) *)
let truncate_to ty v =
  match ty with
  | Ir.Types.I1 -> Int64.logand v 1L
  | Ir.Types.I8 -> Int64.shift_right (Int64.shift_left v 56) 56
  | Ir.Types.I32 -> Int64.shift_right (Int64.shift_left v 32) 32
  | _ -> v

let to_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

(* Shared physical values for the integers the hot path produces constantly
   (comparison results, loop counters, truncated bytes): a boxed [I] costs
   two heap blocks per result, and the interpreter makes hundreds of
   millions of them.  [-1, 255] covers i1/i8 and most induction values. *)
let small_ints = Array.init 257 (fun i -> I (Int64.of_int (i - 1)))

let of_int64 v =
  if Int64.compare v (-1L) >= 0 && Int64.compare v 255L <= 0 then
    Array.unsafe_get small_ints (Int64.to_int v + 1)
  else I v

let rv_false = of_int64 0L
let rv_true = of_int64 1L
let of_bool b = if b then rv_true else rv_false
let null_ptr = P { sp = Sglobal; addr = 0 }

let of_const (c : Ir.Value.const) =
  match c with
  | Ir.Value.CInt (ty, v) -> of_int64 (truncate_to ty v)
  | Ir.Value.CFloat (Ir.Types.F32, v) -> F (to_f32 v)
  | Ir.Value.CFloat (_, v) -> F v
  | Ir.Value.CNull _ -> null_ptr
  | Ir.Value.CUndef _ -> Undef

let pp ppf = function
  | I v -> Fmt.pf ppf "i:%Ld" v
  | F v -> Fmt.pf ppf "f:%g" v
  | P { sp = Sglobal; addr } -> Fmt.pf ppf "p:g:%d" addr
  | P { sp = Sshared t; addr } -> Fmt.pf ppf "p:s%d:%d" t addr
  | P { sp = Slocal t; addr } -> Fmt.pf ppf "p:l%d:%d" t addr
  | Fn name -> Fmt.pf ppf "fn:%s" name
  | Undef -> Fmt.string ppf "undef"

(* Deglobalization demo: the paper's Figure 4/5/6 scenario.

   A generic device function takes the addresses of two locals, so the
   front-end globalizes both.  Depending on the calling context, the
   middle-end either moves them back to the stack (HeapToStack), replaces
   them with static shared memory (HeapToShared), or must leave the runtime
   allocation in place and tells you why.

     dune exec examples/deglobalization_demo.exe *)

(* Figure 5b: device_function entered by the main thread of each team. *)
let one_thread_only =
  {|
double Out[4];
static void combine(double* arg, double* lcl) { lcl[0] = lcl[0] + arg[0]; }
static double device_function(double arg) {
  double lcl = 3.0;
  combine(&arg, &lcl);
  return lcl;
}
int main() {
  #pragma omp target teams num_teams(2) thread_limit(4)
  { Out[0] = device_function(39.0); }
  trace_f64(Out[0]);
  return 0;
}
|}

(* Figure 5c: the same function entered by many threads per team. *)
let many_threads =
  {|
double Out[8];
static void combine(double* arg, double* lcl) { lcl[0] = lcl[0] + arg[0]; }
static double device_function(double arg) {
  double lcl = 3.0;
  combine(&arg, &lcl);
  return lcl;
}
int main() {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (int i = 0; i < 8; i++) { Out[i] = device_function((double)i); }
  double s = 0.0;
  for (int i = 0; i < 8; i++) { s += Out[i]; }
  trace_f64(s);
  return 0;
}
|}

(* An allocation whose pointer escapes into unknown code: nothing fires,
   the remarks point at the capture (Fig. 6b / OMP112-113). *)
let escaping =
  {|
extern void unknown(double* p);
double Out[1];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(2)
  {
    double lcl = 1.0;
    unknown(&lcl);
    Out[0] = lcl;
  }
  return 0;
}
|}

let show title src =
  Fmt.pr "== %s ==@." title;
  let m = Frontend.Codegen.compile ~file:"demo.c" src in
  let report = Openmpopt.Pass_manager.run m in
  Fmt.pr "  heap-to-stack: %d, heap-to-shared: %d@."
    report.Openmpopt.Pass_manager.heap_to_stack
    report.Openmpopt.Pass_manager.heap_to_shared;
  List.iter
    (fun r -> Fmt.pr "  %s@." (Openmpopt.Remark.to_string r))
    report.Openmpopt.Pass_manager.remarks;
  (match Ir.Verify.check m with Ok () -> () | Error e -> failwith e);
  let sim = Gpusim.Interp.create Gpusim.Machine.test_machine m in
  (try
     Gpusim.Interp.run_host sim;
     Fmt.pr "  result: %a@.@."
       (Fmt.list ~sep:Fmt.sp Gpusim.Rvalue.pp)
       (Gpusim.Interp.trace_values sim)
   with Gpusim.Rvalue.Sim_error msg -> Fmt.pr "  simulation: %s@.@." msg)

let () =
  show "Figure 5b: main-thread-only call site (heap-to-stack + heap-to-shared)"
    one_thread_only;
  show "Figure 5c: multi-threaded call site (heap-to-stack only)" many_threads;
  show "escaping pointer (globalization must stay; actionable remarks)" escaping

(* The first-class pipeline surface (api_version 2).

   Three things are pinned here: the spec grammar round-trips (property
   test over arbitrary pipelines), bad specs fail with the offending
   token named, and the pipeline surface is identity-preserving — the
   [full] builtin produces byte-identical compiles and the same cache
   key as the legacy [optimized] toggle surface it supersedes. *)

module P = Openmpopt.Pass_manager.Pipeline
module A = Ompgpu_api

let tiny = Proxyapps.App.Tiny
let app_source name = (Proxyapps.Apps.find_exn name).Proxyapps.App.omp_source tiny

(* ------------------------------------------------------------------ *)
(* Spec grammar: round-trip property                                   *)
(* ------------------------------------------------------------------ *)

let gen_pipeline =
  QCheck.Gen.(
    let* name =
      oneof
        [
          return "fast";
          return "full";
          return "custom";
          map
            (fun cs -> String.concat "" (List.map (String.make 1) cs))
            (list_size (int_range 1 12)
               (oneofl
                  [ 'a'; 'b'; 'z'; 'A'; 'Z'; '0'; '9'; '_'; '-' ]));
        ]
    in
    (* non-empty pass list, duplicates allowed (a pass may legitimately
       run twice per round), order free *)
    let* passes = list_size (int_range 1 12) (oneofl P.all_passes) in
    let* rounds = int_range 1 P.max_rounds in
    let* grouping = bool in
    let* heap_to_shared = bool in
    return { P.name; passes; rounds; grouping; heap_to_shared })

let arb_pipeline =
  QCheck.make gen_pipeline ~print:P.to_string

let test_spec_roundtrip =
  Helpers.qtest ~count:500 "pipeline spec round-trips" arb_pipeline (fun p ->
      match P.of_string (P.to_string p) with
      | Error msg ->
        QCheck.Test.fail_reportf "own spec rejected: %s (spec %S)" msg
          (P.to_string p)
      | Ok p' ->
        if not (P.equal p p') then
          QCheck.Test.fail_reportf "round-trip changed the pipeline: %S -> %S"
            (P.to_string p) (P.to_string p');
        (* the fingerprint is the semantic identity: it must survive too *)
        String.equal (P.fingerprint p) (P.fingerprint p'))

let test_builtins () =
  Alcotest.(check bool)
    "bare name resolves the fast builtin" true
    (P.of_string "fast" = Ok P.fast);
  Alcotest.(check bool)
    "bare name resolves the full builtin" true
    (P.of_string " full " = Ok P.full);
  Alcotest.(check string)
    "fast spec golden" "fast=internalize,fold,cleanup@1" (P.to_string P.fast);
  (* the builtin names stay attached through a spec round-trip *)
  (match P.of_string (P.to_string P.full) with
  | Ok p -> Alcotest.(check string) "full keeps its name" "full" p.P.name
  | Error e -> Alcotest.failf "full spec rejected: %s" e);
  (* a nameless spec parses as "custom" *)
  match P.of_string "internalize,cleanup@2!nogroup" with
  | Ok p ->
    Alcotest.(check string) "anonymous specs are \"custom\"" "custom" p.P.name;
    Alcotest.(check int) "rounds parsed" 2 p.P.rounds;
    Alcotest.(check bool) "!nogroup parsed" false p.P.grouping;
    Alcotest.(check bool) "!noshared untouched" true p.P.heap_to_shared
  | Error e -> Alcotest.failf "anonymous spec rejected: %s" e

let test_bad_specs () =
  let expect_error what spec fragment =
    match P.of_string spec with
    | Ok p -> Alcotest.failf "%s: accepted as %S" what (P.to_string p)
    | Error msg ->
      let contains s frag =
        let ls = String.length s and lf = String.length frag in
        let rec go i = i + lf <= ls && (String.sub s i lf = frag || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: message %S mentions %S" what msg fragment)
        true (contains msg fragment)
  in
  expect_error "unknown pass" "internalize,warp-speed@2" "warp-speed";
  expect_error "unknown pass lists the known ones" "warp-speed" "internalize";
  expect_error "empty body" "tier=" "empty pipeline";
  expect_error "zero rounds" "fold@0" "out of range";
  expect_error "rounds beyond the cap" "fold@99" "out of range";
  expect_error "garbage rounds" "fold@many" "invalid pipeline round";
  expect_error "unknown flag" "fold@1!turbo" "!turbo";
  expect_error "invalid name" "no spaces=fold@1" "invalid pipeline name"

(* ------------------------------------------------------------------ *)
(* Identity: pipeline [full] == legacy [optimized]                     *)
(* ------------------------------------------------------------------ *)

let test_of_options_maps_to_full () =
  let p = P.of_options Openmpopt.Pass_manager.default_options in
  Alcotest.(check bool)
    "default options are the full builtin" true (P.equal p P.full);
  Alcotest.(check string)
    "same fingerprint" (P.fingerprint P.full) (P.fingerprint p);
  (* a disabled pass leaves the builtin set and loses the name *)
  let p' =
    P.of_options
      { Openmpopt.Pass_manager.default_options with disable_spmdization = true }
  in
  Alcotest.(check string) "custom once toggled" "custom" p'.P.name;
  Alcotest.(check bool)
    "spmdize dropped" false (List.mem P.Spmdize p'.P.passes)

let test_full_pipeline_byte_identical () =
  (* the acceptance criterion for the redesign: an explicit
     [with_pipeline full] config compiles to the exact bytes the legacy
     [optimized] config produced, and shares its cache key *)
  let file = "x.momp" in
  let source = app_source "xsbench" in
  let legacy = A.Config.(default |> optimized |> with_sim) in
  let piped = A.Config.(default |> with_pipeline A.Pipeline.full |> with_sim) in
  Alcotest.(check string)
    "same config fingerprint"
    (A.Config.fingerprint legacy) (A.Config.fingerprint piped);
  Alcotest.(check string)
    "same cache key"
    (A.cache_key ~file ~config:legacy ~source)
    (A.cache_key ~file ~config:piped ~source);
  let a = A.compile_buffered ~config:legacy ~file source in
  let b = A.compile_buffered ~config:piped ~file source in
  Alcotest.(check int) "exit code" a.A.exit_code b.A.exit_code;
  Alcotest.(check string) "stdout bytes" a.A.output b.A.output;
  Alcotest.(check string) "stderr bytes" a.A.diagnostics b.A.diagnostics

let test_fast_pipeline_differs () =
  (* the fast tier must be a real tier: cheaper identity, distinct cache
     key, and still a successful compile *)
  let file = "x.momp" in
  let source = app_source "su3bench" in
  let full = A.Config.(default |> with_pipeline A.Pipeline.full) in
  let fast = A.Config.(default |> with_pipeline A.Pipeline.fast) in
  Alcotest.(check bool)
    "fast and full have distinct cache keys" false
    (String.equal
       (A.cache_key ~file ~config:full ~source)
       (A.cache_key ~file ~config:fast ~source));
  let r = A.compile_buffered ~config:fast ~file source in
  Alcotest.(check int) "fast tier compiles cleanly" 0 r.A.exit_code

let suite =
  [
    test_spec_roundtrip;
    Alcotest.test_case "builtins" `Quick test_builtins;
    Alcotest.test_case "bad-specs" `Quick test_bad_specs;
    Alcotest.test_case "of-options-maps-to-full" `Quick
      test_of_options_maps_to_full;
    Alcotest.test_case "full-matches-legacy-optimized" `Quick
      test_full_pipeline_byte_identical;
    Alcotest.test_case "fast-is-a-distinct-tier" `Quick
      test_fast_pipeline_differs;
  ]

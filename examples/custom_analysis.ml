(* Using the library below the front end: build MiniIR directly with the
   Builder API, run the inter-procedural analyses, and query their results —
   the workflow of someone prototyping a new OpenMP-aware optimization.

     dune exec examples/custom_analysis.exe *)

open Ir

(* Build:  define device_function(arg):
             lcl = alloc_shared 8
             combine(&arg-copy, lcl)
             free_shared lcl
   plus a kernel that calls it from the main thread only — the paper's
   Figure 4a / 5b configuration, written at the IR level. *)
let build_module () =
  let m = Irmod.create ~name:"custom" () in
  Devrt.Registry.declare_in m;
  let gptr = Types.Ptr Types.Generic in

  (* combine(a, b): *b += *a *)
  let combine =
    Func.make "combine" ~ret_ty:Types.Void ~params:[ ("a", gptr); ("b", gptr) ]
  in
  Irmod.add_func m combine;
  let b = Builder.create combine in
  Builder.position_at_end b (Builder.new_block b "entry");
  let av = Builder.load b Types.F64 (Value.Arg 0) in
  let bv = Builder.load b Types.F64 (Value.Arg 1) in
  let sum = Builder.bin b Instr.Fadd Types.F64 av bv in
  Builder.store b Types.F64 sum (Value.Arg 1);
  Builder.ret b None;

  (* device_function(x): globalized local + call *)
  let device_fn =
    Func.make "device_function" ~ret_ty:Types.F64 ~params:[ ("x", Types.F64) ]
  in
  Irmod.add_func m device_fn;
  let b = Builder.create device_fn in
  Builder.position_at_end b (Builder.new_block b "entry");
  let arg_slot = Builder.call b gptr "__kmpc_alloc_shared" [ Value.i64 8 ] in
  Builder.store b Types.F64 (Value.Arg 0) arg_slot;
  let lcl_slot = Builder.call b gptr "__kmpc_alloc_shared" [ Value.i64 8 ] in
  Builder.store b Types.F64 (Value.f64 1.5) lcl_slot;
  ignore (Builder.call b Types.Void "combine" [ arg_slot; lcl_slot ]);
  let result = Builder.load b Types.F64 lcl_slot in
  ignore (Builder.call b Types.Void "__kmpc_free_shared" [ lcl_slot; Value.i64 8 ]);
  ignore (Builder.call b Types.Void "__kmpc_free_shared" [ arg_slot; Value.i64 8 ]);
  Builder.ret b (Some result);

  (* a generic-mode kernel calling it from the main thread *)
  let kernel =
    Func.make ~linkage:Func.External "kernel" ~ret_ty:Types.Void ~params:[]
      ~kernel:{ Func.exec_mode = Func.Generic; num_teams = Some 2; num_threads = Some 4 }
  in
  Irmod.add_func m kernel;
  let b = Builder.create kernel in
  let entry = Builder.new_block b "entry" in
  let worker = Builder.new_block b "worker" in
  let main_bb = Builder.new_block b "main" in
  Builder.position_at_end b entry;
  let r = Builder.call b Types.I32 "__kmpc_target_init" [ Value.i32 0 ] in
  let is_main = Builder.icmp b Instr.Eq Types.I32 r (Value.i32 (-1)) in
  Builder.cbr b is_main main_bb.Block.label worker.Block.label;
  Builder.position_at_end b worker;
  Builder.ret b None;
  Builder.position_at_end b main_bb;
  ignore (Builder.call b Types.F64 "device_function" [ Value.f64 2.5 ]);
  ignore (Builder.call b Types.Void "__kmpc_target_deinit" [ Value.i32 0 ]);
  Builder.ret b None;
  m

let () =
  let m = build_module () in
  (match Verify.check m with Ok () -> () | Error e -> failwith e);
  Fmt.pr "== module ==@.%a@." Printer.pp_module m;

  (* run the analyses the optimizer is built from *)
  let cg = Analysis.Callgraph.compute m in
  let domains = Analysis.Exec_domain.compute m cg in
  Fmt.pr "== execution domains ==@.";
  List.iter
    (fun f ->
      Fmt.pr "  %-18s %a@." f.Func.name Analysis.Exec_domain.pp_domain
        (Analysis.Exec_domain.func_domain domains f.Func.name))
    (Irmod.defined_funcs m);

  Fmt.pr "@.== escape analysis on the two allocations ==@.";
  let ctx = Analysis.Escape.create m in
  let device_fn = Irmod.find_func_exn m "device_function" in
  Func.iter_instrs device_fn ~g:(fun _ i ->
      match i.Instr.kind with
      | Instr.Call (_, Instr.Direct "__kmpc_alloc_shared", _) ->
        let verdict = Analysis.Escape.pointer_escapes ctx device_fn i in
        let freed =
          Analysis.Escape.free_always_reached device_fn ~alloc:i
            ~free_name:"__kmpc_free_shared"
        in
        Fmt.pr "  %%%d: %s, free %s@." i.Instr.id
          (match verdict with
          | Analysis.Escape.No_escape -> "does not escape"
          | Analysis.Escape.Escapes why -> "escapes (" ^ why ^ ")")
          (if freed then "always reached" else "may be skipped")
      | _ -> ());

  Fmt.pr "@.== after the OpenMPOpt pipeline ==@.";
  let report = Openmpopt.Pass_manager.run m in
  Fmt.pr "  %a@." Openmpopt.Pass_manager.pp_report report;
  (match Verify.check m with Ok () -> () | Error e -> failwith e);
  Fmt.pr "@.%a@." Printer.pp_func (Irmod.find_func_exn m "device_function")

(** Inter-procedural pointer-capture ("escape to another thread") analysis —
    the first check of the paper's HeapToStack transformation — plus the
    second check (is the matching deallocation always reached?).

    A pointer escapes when it is stored to memory that is not a provably
    private slot, returned, passed to unknown or address-taken code, or
    handed to a runtime call that may capture it.  Derived pointers (gep,
    casts, selects, loads from private holder slots) are tracked; passing
    the pointer to a defined function recurses into the callee's uses of
    the corresponding parameter, with memoization. *)

type verdict = No_escape | Escapes of string  (** reason, for the remarks *)

val is_no_escape : verdict -> bool

type ctx

val create : Ir.Irmod.t -> ctx
(** A memoized analysis context for one module. *)

val pointer_escapes : ctx -> Ir.Func.t -> Ir.Instr.t -> verdict
(** May the pointer produced by [alloc] in [f] escape to another thread? *)

val free_always_reached : Ir.Func.t -> alloc:Ir.Instr.t -> free_name:string -> bool
(** On every path from the allocation to a return of the function, is a
    [free_name] call taking the allocation's result reached? *)

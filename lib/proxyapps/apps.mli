(** All proxy applications, in the order of the paper's evaluation:
    XSBench, RSBench, SU3Bench, miniQMC. *)

val all : App.t list

val find : string -> App.t option

val find_exn : string -> App.t
(** @raise Failure on unknown names. *)

(** The corpus as a serving workload.

    Drives every matrix cell of a corpus through a live [mompd] server —
    booted in-process on a private Unix socket — over [connections]
    resilient client sessions ({!Service.Client.session}), twice: a cold
    pass against empty caches and a warm pass against the daemon's
    in-memory result cache.  Throughput (compiles/sec) is the
    first-class metric (DiOMP treats distributed offload compilation as
    a serving problem); byte-identity of every daemon answer against
    in-process {!Ompgpu_api.compile_buffered} is the correctness bar. *)

type stats = {
  programs : int;
  jobs : int;  (** programs x matrix cells *)
  connections : int;
  domains : int;  (** server pool domains *)
  cold_s : float;
  warm_s : float;
  cold_cps : float;  (** compiles/sec, cold caches *)
  warm_cps : float;  (** compiles/sec, warm in-memory cache *)
  byte_identical : bool;
      (** every cold and warm daemon answer matched the in-process bytes *)
  transport_errors : int;
      (** sessions that exhausted their retry budget (0 on a healthy run) *)
}

val run :
  ?connections:int -> ?domains:int -> root:int64 -> n:int -> unit -> stats
(** Defaults: 4 connections, 2 server domains.  Blocks until the server
    has drained and stopped; never raises on daemon-side failures (they
    surface as [transport_errors] / [byte_identical = false]). *)

val to_json : stats -> Observe.Json.t
(** The schema-stamped ["corpus"] section of [BENCH_observe.json]. *)

(** Directory-backed blob cache (the [--cache-dir] of [mompc]).

    One file per key under the cache directory, written atomically
    (temp file + rename), so concurrent writers of the same key — even
    across processes — leave a complete entry.  Keys must be filesystem-safe;
    use {!Cache.key} digests.

    Entries carry a digest header verified on every read.  A failing entry
    — torn write, disk corruption, an injected bit-flip — is moved to a
    [quarantine/] subdirectory, counted, reported through [on_corrupt], and
    treated as a miss: the cache recomputes, it never serves corrupt data.

    Governance: [create] digest-verifies every existing entry up front
    (the startup scrub), quarantining corrupt ones eagerly and seeding an
    in-memory byte ledger with the survivors.  {!store} enforces the
    optional byte quota / entry cap by deleting oldest-written entries
    first (LRU by mtime) and *never raises*: a failed write (ENOSPC,
    EDQUOT, permissions, the injected [Disk_full] site) is counted, and
    [failure_threshold] consecutive failures trip a breaker that skips
    writes until a re-probe after [reprobe_after_s] — the caller already
    has the computed result, so a full disk only costs warm hits. *)

type t

val create :
  ?injector:Fault.Injector.t ->
  ?on_corrupt:(key:string -> path:string -> unit) ->
  ?temp_age_s:float ->
  ?max_bytes:int ->
  ?max_entries:int ->
  ?failure_threshold:int ->
  ?reprobe_after_s:float ->
  dir:string ->
  unit ->
  t
(** Creates [dir] (and missing parents) if needed.  [injector] arms the
    [Cache_corrupt] site (a firing {!store} flips one payload bit after
    digesting, so the entry fails verification on its next read) and the
    [Disk_full] site (a firing {!store} fails as if the disk were full).
    [on_corrupt] is called (with the key and the original path) whenever a
    read or the scrub quarantines an entry — the driver surfaces it as a
    remark.

    Startup recovery: {!store} publishes via temp-file + rename, so a
    process dying between the two orphans a [.tmp] file forever.  [create]
    sweeps temps older than [temp_age_s] (default 600s — generous, so a
    live concurrent writer, whose temp exists for milliseconds, is never
    raced) into [quarantine/], then scrubs: every remaining entry is
    digest-verified, corrupt ones are quarantined on the spot, and the
    byte ledger starts exact.  A directory over its new quota converges
    (oldest entries evicted) before [create] returns.

    [max_bytes]/[max_entries] bound the on-disk footprint (enforced on
    every store); [failure_threshold] (default 3) consecutive store
    failures open the write breaker, re-probed after [reprobe_after_s]
    (default 5s). *)

val dir : t -> string

val find : t -> key:string -> string option
(** Open-directly lookup: a concurrent quarantine, eviction or peer
    delete between any existence check and the read would race, so there
    is no existence check — an unopenable or unreadable entry is a plain
    miss, never an exception. *)

val store : t -> key:string -> data:string -> unit
(** Never raises; see the module header for the failure/breaker policy. *)

val find_or_compute : t -> key:string -> (unit -> string) -> string

val hits : t -> int

val misses : t -> int

val corrupt : t -> int
(** Entries quarantined by failed verification since [create] (scrub
    included). *)

val sweep_temps : ?max_age_s:float -> t -> int
(** Quarantine orphaned temp files older than [max_age_s] (default 600s)
    now; returns how many this call moved.  [create] already runs one
    sweep — this is for long-lived owners (the daemon) re-sweeping. *)

val swept : t -> int
(** Orphaned temp files quarantined since [create] (startup sweep
    included); surfaced in the daemon's stats JSON. *)

val scrubbed : t -> int
(** Entries digest-verified by the startup scrub. *)

val evictions : t -> int
(** Entries deleted by the quota since [create]. *)

val bytes : t -> int
(** The ledger: on-disk bytes of verified entries this process knows
    about (exact when it owns the directory alone). *)

val entries : t -> int
(** Ledger entry count. *)

val store_failures : t -> int
(** Failed {!store} attempts since [create] (injected or real). *)

val breaker_trips : t -> int
(** How many times consecutive failures opened the write breaker. *)

val writes_disabled : t -> bool
(** Whether the breaker is open right now (stores are being skipped;
    clears by timeout + successful re-probe). *)

val max_bytes : t -> int option

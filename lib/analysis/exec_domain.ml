(* Execution-domain analysis: which threads execute a given block, call site,
   or function?

   In a generic-mode kernel, __kmpc_target_init separates the main thread
   (return value -1) from the workers.  Code on the main edge is executed by
   the main thread alone until a parallel region activates the workers.  The
   inter-procedural part propagates this over the call graph: a device
   function is [Main_only] if every call site is in main-only code of some
   kernel, [Parallel] if only reached from parallel regions, [Both]
   otherwise.

   This is the analysis behind HeapToShared ("determines if the runtime
   allocation is only executed by the main thread of the OpenMP team"),
   SPMDzation guards, and the folding of omp_get_thread_num in sequential
   regions. *)

module SM = Support.Util.String_map
module SS = Support.Util.String_set

open Ir

type domain = Main_only | Parallel | Both

let join a b =
  match (a, b) with
  | Main_only, Main_only -> Main_only
  | Parallel, Parallel -> Parallel
  | _ -> Both

let pp_domain ppf = function
  | Main_only -> Fmt.string ppf "main-only"
  | Parallel -> Fmt.string ppf "parallel"
  | Both -> Fmt.string ppf "both"

type t = {
  block_domains : domain SM.t SM.t;  (* function -> block label -> domain *)
  func_domains : domain SM.t;  (* summary per function *)
  parallel_regions : SS.t;  (* outlined functions passed to __kmpc_parallel_51 *)
}

(* Recognize the generic-mode prologue:
     %r = call i32 @__kmpc_target_init(i32 0)
     %c = icmp eq i32 %r, -1        (or icmp ne)
     cbr %c, main_label, worker_label
   Returns (main_label, worker_label) if matched. *)
let generic_prologue (f : Func.t) =
  match f.Func.blocks with
  | [] -> None
  | entry :: _ -> (
    let init_reg =
      List.find_map
        (fun i ->
          match i.Instr.kind with
          | Instr.Call (_, Instr.Direct "__kmpc_target_init", _) -> Some i.Instr.id
          | _ -> None)
        entry.Block.instrs
    in
    match init_reg with
    | None -> None
    | Some r -> (
      let cmp =
        List.find_map
          (fun i ->
            match i.Instr.kind with
            | Instr.Icmp (cc, _, Value.Reg r', Value.Const (Value.CInt (_, -1L)))
              when r' = r && (cc = Instr.Eq || cc = Instr.Ne) ->
              Some (i.Instr.id, cc)
            | _ -> None)
          entry.Block.instrs
      in
      match (cmp, entry.Block.term) with
      | Some (c, cc), Block.Cbr (Value.Reg c', l1, l2) when c = c' ->
        (* icmp eq .. -1 : true edge is the main thread *)
        if cc = Instr.Eq then Some (l1, l2) else Some (l2, l1)
      | _ -> None))

(* The set of functions used as parallel-region entry points. *)
let find_parallel_regions (m : Irmod.t) =
  List.fold_left
    (fun acc f ->
      Func.fold_instrs f ~init:acc ~g:(fun acc _ i ->
          match i.Instr.kind with
          | Instr.Call (_, Instr.Direct "__kmpc_parallel_51", Value.Func fn :: _) ->
            SS.add fn acc
          | _ -> acc))
    SS.empty (Irmod.defined_funcs m)

(* Per-block domains inside one kernel via forward dataflow on CFG edges. *)
let kernel_block_domains (f : Func.t) =
  let cfg = Cfg.compute f in
  match f.Func.kernel with
  | None -> SM.empty
  | Some { Func.exec_mode = Func.Spmd; _ } ->
    List.fold_left (fun m b -> SM.add b.Block.label Parallel m) SM.empty f.Func.blocks
  | Some { Func.exec_mode = Func.Generic; _ } -> (
    match generic_prologue f with
    | None ->
      (* No recognizable prologue: assume everything may be executed by all
         threads (conservative). *)
      List.fold_left (fun m b -> SM.add b.Block.label Both m) SM.empty f.Func.blocks
    | Some (main_l, worker_l) ->
      let entry_l = (Func.entry f).Block.label in
      let dom = ref (SM.singleton entry_l Both) in
      (* seed the two edges of the prologue branch *)
      let seed = [ (main_l, Main_only); (worker_l, Parallel) ] in
      let get l = SM.find_opt l !dom in
      let update l d =
        let next = match get l with None -> d | Some old -> join old d in
        if get l <> Some next then begin
          dom := SM.add l next !dom;
          true
        end
        else false
      in
      List.iter (fun (l, d) -> ignore (update l d)) seed;
      Support.Util.fixpoint (fun () ->
          let changed = ref false in
          List.iter
            (fun b ->
              let label = b.Block.label in
              match get label with
              | None -> ()
              | Some d ->
                List.iter
                  (fun s ->
                    (* do not overwrite the seeded prologue edges from entry *)
                    if not (String.equal label entry_l && (s = main_l || s = worker_l))
                    then if update s d then changed := true)
                  (Cfg.succs cfg label))
            (Cfg.blocks_in_order cfg);
          !changed);
      (* unreachable blocks default to Both *)
      List.fold_left
        (fun m b ->
          let label = b.Block.label in
          SM.add label (match SM.find_opt label m with Some d -> d | None -> Both) m)
        !dom f.Func.blocks)

let compute (m : Irmod.t) (cg : Callgraph.t) =
  let parallel_regions = find_parallel_regions m in
  let block_domains =
    List.fold_left
      (fun acc k -> SM.add k.Func.name (kernel_block_domains k) acc)
      SM.empty (Irmod.kernels m)
  in
  (* function summaries: fixpoint over the call graph *)
  let func_domains = ref SM.empty in
  let get name = SM.find_opt name !func_domains in
  let set name d =
    match get name with
    | Some old when join old d = old -> false
    | Some old ->
      func_domains := SM.add name (join old d) !func_domains;
      true
    | None ->
      func_domains := SM.add name d !func_domains;
      true
  in
  List.iter (fun k -> ignore (set k.Func.name Main_only)) (Irmod.kernels m);
  SS.iter (fun r -> ignore (set r Parallel)) parallel_regions;
  (* Externally visible functions may be called from unknown contexts; this
     is the precision loss that the internalization pass avoids. *)
  List.iter
    (fun f ->
      match f.Func.linkage with
      | Func.External | Func.Weak ->
        if not (Func.is_kernel f) then ignore (set f.Func.name Both)
      | Func.Internal -> ())
    (Irmod.defined_funcs m);
  Support.Util.fixpoint (fun () ->
      let changed = ref false in
      List.iter
        (fun f ->
          let fname = f.Func.name in
          let caller_domain_of_site b i =
            (* domain at a call site: block domain inside kernels, the
               caller's summary otherwise *)
            match Func.is_kernel f with
            | true -> (
              match SM.find_opt fname block_domains with
              | Some bd -> (
                match SM.find_opt b.Block.label bd with Some d -> d | None -> Both)
              | None -> Both)
            | false -> ( match get fname with Some d -> d | None -> Both)
            |> fun d ->
            ignore i;
            d
          in
          Func.iter_instrs f ~g:(fun b i ->
              match i.Instr.kind with
              | Instr.Call (_, Instr.Direct callee, _)
                when not (Devrt.Registry.is_runtime_fn callee) ->
                (* a parallel-region entry keeps its Parallel domain no
                   matter where the launch happens *)
                if not (SS.mem callee parallel_regions) then begin
                  let d = caller_domain_of_site b i in
                  if set callee d then changed := true
                end
              | Instr.Call (_, Instr.Indirect _, _) ->
                SS.iter
                  (fun target ->
                    if not (SS.mem target parallel_regions) then
                      if set target Both then changed := true)
                  cg.Callgraph.address_taken
              | _ -> ()))
        (Irmod.defined_funcs m);
      !changed);
  { block_domains; func_domains = !func_domains; parallel_regions }

(* Domain of a specific instruction in a specific function. *)
let instr_domain t (f : Func.t) (b : Block.t) =
  if Func.is_kernel f then
    match SM.find_opt f.Func.name t.block_domains with
    | Some bd -> ( match SM.find_opt b.Block.label bd with Some d -> d | None -> Both)
    | None -> Both
  else
    match SM.find_opt f.Func.name t.func_domains with
    | Some d -> d
    | None -> Both  (* never-called function: unknown context *)

let func_domain t name =
  match SM.find_opt name t.func_domains with Some d -> d | None -> Both

let is_parallel_region t name = SS.mem name t.parallel_regions

(* Runtime-call folding (Section IV-C): replace device runtime queries with
   constants when the answer is statically known.

   Execution mode   __kmpc_is_spmd_exec_mode folds when every kernel that can
                    reach the containing function runs in the same mode.
   Parallel level   __kmpc_parallel_level folds when the containing function
                    executes in a statically known nesting context and no
                    nested parallelism exists in the module.
   Thread execution __gpu_thread_id folds to 0 in main-thread-only code.
   Launch bounds    __gpu_num_threads/__gpu_num_teams fold when all reaching
                    kernels carry the same constant clause.

   Per the paper, no user-facing remarks are emitted for these folds (the
   calls often originate in the runtime glue, not user code); counts are
   reported for the Figure 9 table instead. *)

open Ir
module SM = Support.Util.String_map
module SS = Support.Util.String_set
(* stable identifier used by the Observe trace layer *)
let pass_name = "fold"

type counts = {
  mutable exec_mode : int;
  mutable parallel_level : int;
  mutable thread_exec : int;
  mutable launch_bounds : int;
}

(* Does any parallel region (transitively) launch another parallel region?
   If not, the parallel level inside regions is exactly 1. *)
let has_nested_parallelism (m : Irmod.t) cg (domains : Analysis.Exec_domain.t) =
  ignore domains;
  let regions =
    List.filter
      (fun f -> Analysis.Exec_domain.is_parallel_region domains f.Func.name)
      (Irmod.defined_funcs m)
  in
  List.exists
    (fun r ->
      let reach = Analysis.Callgraph.reachable_from cg [ r.Func.name ] in
      SS.exists
        (fun fname ->
          match Irmod.find_func m fname with
          | Some f ->
            Func.fold_instrs f ~init:false ~g:(fun acc _ i ->
                acc
                ||
                match i.Instr.kind with
                | Instr.Call (_, Instr.Direct "__kmpc_parallel_51", _) -> true
                | _ -> false)
          | None -> false)
        reach)
    regions

(* Replace a call instruction's uses with a constant and delete the call. *)
let fold_call (f : Func.t) (b : Block.t) (i : Instr.t) const =
  Func.replace_uses f ~old_v:(Value.Reg i.Instr.id) ~new_v:const;
  b.Block.instrs <- List.filter (fun j -> j.Instr.id <> i.Instr.id) b.Block.instrs

(* [fold_exec_mode] must only be enabled after SPMDzation has settled the
   final execution mode of every kernel; the other folds are mode-invariant
   and run early so the sequential-fallback branches disappear before
   deglobalization counts allocation sites. *)
let run ?(fold_exec_mode = true) (m : Irmod.t) (domains : Analysis.Exec_domain.t) =
  let cg = Analysis.Callgraph.compute m in
  let reaching = Analysis.Callgraph.reaching_kernels cg in
  let counts = { exec_mode = 0; parallel_level = 0; thread_exec = 0; launch_bounds = 0 } in
  let nested = has_nested_parallelism m cg domains in
  let kernel_mode name =
    match Irmod.find_func m name with
    | Some { Func.kernel = Some k; _ } -> Some k.Func.exec_mode
    | _ -> None
  in
  let kernel_threads name =
    match Irmod.find_func m name with
    | Some { Func.kernel = Some k; _ } -> k.Func.num_threads
    | _ -> None
  in
  let kernel_teams name =
    match Irmod.find_func m name with
    | Some { Func.kernel = Some k; _ } -> k.Func.num_teams
    | _ -> None
  in
  (* all-equal over the kernels reaching [fname]; None when unknown/empty *)
  let consensus fname extract =
    match SM.find_opt fname reaching with
    | None -> None
    | Some kernels when SS.is_empty kernels -> None
    | Some kernels -> (
      let values = List.filter_map extract (SS.elements kernels) in
      if List.length values <> SS.cardinal kernels then None
      else
        match values with
        | [] -> None
        | v :: rest -> if List.for_all (( = ) v) rest then Some v else None)
  in
  List.iter
    (fun f ->
      let fname = f.Func.name in
      let domain = Analysis.Exec_domain.func_domain domains fname in
      let domain =
        (* inside a kernel, use the per-block domain at each call site *)
        domain
      in
      ignore domain;
      List.iter
        (fun b ->
          let site_domain = Analysis.Exec_domain.instr_domain domains f b in
          List.iter
            (fun (i : Instr.t) ->
              match i.Instr.kind with
              | Instr.Call (_, Instr.Direct "__kmpc_is_spmd_exec_mode", [])
                when fold_exec_mode -> (
                match consensus fname kernel_mode with
                | Some Func.Spmd ->
                  fold_call f b i (Value.i1 true);
                  counts.exec_mode <- counts.exec_mode + 1
                | Some Func.Generic ->
                  fold_call f b i (Value.i1 false);
                  counts.exec_mode <- counts.exec_mode + 1
                | None -> ())
              | Instr.Call (_, Instr.Direct "__kmpc_parallel_level", []) -> (
                if nested then ()
                else
                  match site_domain with
                  | Analysis.Exec_domain.Parallel ->
                    (* in SPMD kernels the whole body counts as level 1 *)
                    fold_call f b i (Value.i32 1);
                    counts.parallel_level <- counts.parallel_level + 1
                  | Analysis.Exec_domain.Main_only ->
                    fold_call f b i (Value.i32 0);
                    counts.parallel_level <- counts.parallel_level + 1
                  | Analysis.Exec_domain.Both -> ())
              | Instr.Call (_, Instr.Direct "__gpu_thread_id", []) -> (
                match site_domain with
                | Analysis.Exec_domain.Main_only
                  when not (Func.is_kernel f && f.Func.kernel <> None
                           && (match f.Func.kernel with
                              | Some k -> k.Func.exec_mode = Func.Spmd
                              | None -> false)) ->
                  fold_call f b i (Value.i32 0);
                  counts.thread_exec <- counts.thread_exec + 1
                | _ -> ())
              | Instr.Call (_, Instr.Direct ("__gpu_num_threads"
                                            | "__kmpc_get_hardware_num_threads"), []) -> (
                match consensus fname kernel_threads with
                | Some n ->
                  fold_call f b i (Value.i32 n);
                  counts.launch_bounds <- counts.launch_bounds + 1
                | None -> ())
              | Instr.Call (_, Instr.Direct "__gpu_num_teams", []) -> (
                match consensus fname kernel_teams with
                | Some n ->
                  fold_call f b i (Value.i32 n);
                  counts.launch_bounds <- counts.launch_bounds + 1
                | None -> ())
              | _ -> ())
            b.Block.instrs)
        f.Func.blocks)
    (Irmod.defined_funcs m);
  counts

(* Machine description and cost model for the cycle-approximate GPU
   simulator.  The constants model a V100-class device at the granularity
   the paper's effects require: runtime-call overheads, memory-space
   latencies, synchronization, and the generic-mode state machine costs.
   Absolute values are not meant to match silicon; ratios are what drive the
   reproduced figures. *)

type costs = {
  alu : int;
  imul : int;
  idiv : int;
  fadd : int;
  fmul : int;
  fdiv : int;
  cast : int;
  local_access : int;
  shared_access : int;
  (* runtime-stack shared allocations are laid out AoS per allocation, so
     warp accesses are uncoalesced / bank-conflicted, unlike the legacy
     SoA-coalesced aggregate or compiler-placed static shared memory *)
  shared_uncoalesced_access : int;
  global_access : int;
  global_cached_access : int;  (* small arrays resident in the RO cache *)
  call : int;  (* direct call overhead *)
  indirect_call : int;  (* function-pointer call: no inlining, ABI spill *)
  runtime_query : int;  (* bitcode-visible queries (inlined-runtime model) *)
  runtime_query_opaque : int;  (* opaque library entry points (LLVM-12 model) *)
  barrier : int;
  target_init_generic : int;
  target_init_spmd : int;
  target_init_cuda : int;
  target_deinit : int;
  parallel_publish : int;  (* main signals workers *)
  parallel_join : int;
  worker_resume : int;  (* worker woken from the state machine *)
  worker_done : int;
  alloc_shared_main : int;  (* bump allocation on the team's shared stack *)
  alloc_shared_parallel : int;  (* contended global-heap path *)
  free_shared : int;
  push_stack : int;  (* legacy aggregated allocation *)
  pop_stack : int;
  atomic_global : int;
  atomic_shared : int;
  math_sqrt : int;
  math_trig : int;
  math_pow : int;
  trace : int;
}

let default_costs =
  {
    alu = 1;
    imul = 3;
    idiv = 18;
    fadd = 2;
    fmul = 3;
    fdiv = 16;
    cast = 1;
    local_access = 2;
    shared_access = 8;
    shared_uncoalesced_access = 96;
    global_access = 60;
    global_cached_access = 14;
    call = 8;
    indirect_call = 45;
    runtime_query = 10;
    runtime_query_opaque = 300;
    barrier = 40;
    target_init_generic = 400;
    target_init_spmd = 80;
    target_init_cuda = 10;
    target_deinit = 40;
    (* generic-mode parallel-region launch: signaling the workers through
       the state machine costs on the order of a microsecond on LLVM-12-era
       runtimes; these constants are what make CPU-style kernels with tiny
       parallel regions (SU3Bench v0) an order of magnitude slower than
       their SPMDzed forms *)
    parallel_publish = 1400;
    parallel_join = 900;
    worker_resume = 350;
    worker_done = 70;
    alloc_shared_main = 45;
    alloc_shared_parallel = 280;
    free_shared = 18;
    push_stack = 70;
    pop_stack = 80;  (* opaque runtime entry, like the mode check *)
    atomic_global = 90;
    atomic_shared = 24;
    math_sqrt = 22;
    math_trig = 40;
    math_pow = 65;
    trace = 4;
  }

type t = {
  name : string;
  num_sms : int;
  warp_size : int;
  max_threads_per_team : int;
  shared_bytes_per_team : int;
  (* the device runtime's dynamic data-sharing stack is a small carve-out of
     shared memory (LLVM 13 kept it tiny); __kmpc_alloc_shared falls back to
     the global heap beyond it *)
  dyn_shared_stack_bytes : int;
  local_bytes_per_thread : int;
  heap_bytes : int;  (* device heap used by globalization fallbacks *)
  global_bytes : int;  (* storage for module globals *)
  default_teams : int;
  default_threads : int;
  registers_per_sm : int;
  max_warps_per_sm : int;
  costs : costs;
}

let v100_like =
  {
    name = "v100-like";
    num_sms = 80;
    warp_size = 32;
    max_threads_per_team = 1024;
    shared_bytes_per_team = 96 * 1024;
    dyn_shared_stack_bytes = 2048;
    local_bytes_per_thread = 64 * 1024;
    heap_bytes = 8 * 1024 * 1024;  (* LIBOMPTARGET_HEAP_SIZE default scale *)
    global_bytes = 64 * 1024 * 1024;
    default_teams = 80;
    default_threads = 128;
    registers_per_sm = 65536;
    max_warps_per_sm = 64;
    costs = default_costs;
  }

(* A small machine for unit tests: deterministic and fast. *)
let test_machine =
  {
    v100_like with
    name = "test";
    num_sms = 4;
    default_teams = 2;
    default_threads = 8;
    heap_bytes = 256 * 1024;
    global_bytes = 4 * 1024 * 1024;
    shared_bytes_per_team = 16 * 1024;
    local_bytes_per_thread = 64 * 1024;
  }

(* The machine used by the experiment harness: small enough that the proxy
   applications simulate quickly, with a heap sized so that the paper's
   RSBench out-of-memory behaviour reproduces (Fig. 11b). *)
let bench_machine =
  {
    v100_like with
    name = "bench";
    num_sms = 8;
    default_teams = 8;
    default_threads = 64;
    heap_bytes = 64 * 1024;
    global_bytes = 16 * 1024 * 1024;
    shared_bytes_per_team = 48 * 1024;
  }

(* Development tool: compile, optionally optimize, simulate, print stats. *)
let () =
  let file = Sys.argv.(1) in
  let scheme = match (try Sys.argv.(2) with _ -> "simplified") with
    | "legacy" -> Frontend.Codegen.Legacy
    | "cuda" -> Frontend.Codegen.Cuda
    | _ -> Frontend.Codegen.Simplified
  in
  let optarg = try Sys.argv.(3) with _ -> "" in
  let opt = optarg <> "" && optarg <> "noopt" in
  let has f = List.mem f (String.split_on_char ',' optarg) in
  let options =
    { Openmpopt.Pass_manager.default_options with
      disable_spmdization = has "no-spmd";
      disable_deglobalization = has "no-deglob";
      disable_state_machine_rewrite = has "no-csm";
      disable_folding = has "no-fold";
      disable_guard_grouping = has "no-group";
    }
  in
  let src = In_channel.with_open_text file In_channel.input_all in
  let m = Frontend.Codegen.compile ~scheme ~file src in
  (match Ir.Verify.check m with Ok () -> () | Error e -> failwith ("pre-opt: " ^ e));
  if opt then begin
    let report = Openmpopt.Pass_manager.run ~options m in
    Format.printf "opt: %a@." Openmpopt.Pass_manager.pp_report report;
    List.iter (fun r -> Format.printf "  %s@." (Openmpopt.Remark.to_string r))
      report.Openmpopt.Pass_manager.remarks;
    (match Ir.Verify.check m with
     | Ok () -> ()
     | Error e ->
       Format.printf "%a@." Ir.Printer.pp_module m;
       failwith ("post-opt: " ^ e))
  end;
  if Array.length Sys.argv > 4 && Sys.argv.(4) = "dump" then
    Format.printf "%a@." Ir.Printer.pp_module m;
  let sim = Gpusim.Interp.create Gpusim.Machine.test_machine m in
  Gpusim.Interp.run_host sim;
  Printf.printf "kernel cycles: %d\n" (Gpusim.Interp.total_kernel_cycles sim);
  Printf.printf "trace:";
  List.iter (fun v -> Printf.printf " %s" (Fmt.str "%a" Gpusim.Rvalue.pp v))
    (Gpusim.Interp.trace_values sim);
  print_newline ();
  List.iter (fun (s : Gpusim.Interp.launch_stats) ->
    Printf.printf "%s: cycles=%d instrs=%d regs=%d smem=%d heapHW=%d rtcalls=%d barriers=%d ind=%d teams=%d thr=%d\n"
      s.kernel_name s.cycles s.instructions s.registers s.shared_bytes s.heap_high_water
      s.runtime_calls s.barriers s.indirect_calls s.teams s.threads_per_team)
    sim.kernel_stats

(* Regenerate every table and figure of the paper's evaluation section.

     dune exec bin/run_experiments.exe                 # everything, sequential
     dune exec bin/run_experiments.exe -- -j 4         # everything, 4 domains
     dune exec bin/run_experiments.exe -- fig9
     dune exec bin/run_experiments.exe -- fig11 xsbench --tiny

   Every figure collects its measurements through the Sched work-stealing
   pool ([-j N], default 1) and a shared content-addressed result cache, so
   configurations that repeat across tables (e.g. dev0 appears in Figures
   9, 10 and 11) are compiled and simulated once.  Tables are rendered from
   ordered batch results: the output is byte-identical at every [-j]. *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let tiny = List.mem "--tiny" args in
  let rec extract_j acc = function
    | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
      | _ ->
        prerr_endline "run_experiments: -j expects a positive integer";
        exit 2)
    | a :: rest -> extract_j (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let jobs, args = extract_j [] args in
  let jobs = Option.value jobs ~default:1 in
  let args = List.filter (fun a -> a <> "--tiny") args in
  let scale = if tiny then Proxyapps.App.Tiny else Proxyapps.App.Bench in
  let machine = Gpusim.Machine.bench_machine in
  Sched.Pool.with_pool ~domains:jobs @@ fun pool ->
  let cache : Harness.Runner.outcome Sched.Cache.t = Sched.Cache.create () in
  let fig9 () = Harness.Tables.fig9 ~machine ~scale ~pool ~cache () in
  let fig10 () = Harness.Tables.fig10 ~machine ~scale ~pool ~cache () in
  let fig11_all () = Harness.Tables.fig11_all ~machine ~scale ~pool ~cache () in
  let ablations () = Harness.Tables.ablations ~machine ~scale ~pool ~cache () in
  let all () =
    print_string (fig9 ());
    print_newline ();
    print_string (fig10 ());
    print_newline ();
    print_string (fig11_all ());
    print_newline ();
    print_string (ablations ())
  in
  match args with
  | [] -> all ()
  | [ "fig9" ] -> print_string (fig9 ())
  | [ "fig10" ] -> print_string (fig10 ())
  | [ "fig11" ] -> print_string (fig11_all ())
  | [ "fig11"; name ] ->
    print_string
      (Harness.Tables.fig11 ~machine ~scale ~pool ~cache (Proxyapps.Apps.find_exn name))
  | [ "ablations" ] -> print_string (ablations ())
  | _ ->
    prerr_endline
      "usage: run_experiments [fig9|fig10|fig11 [app]|ablations] [--tiny] [-j N]";
    exit 2

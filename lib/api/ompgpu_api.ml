(* The stable public API façade (see the .mli and docs/API.md).

   The compile path here is the former body of bin/mompc.ml's compile_one,
   moved behind the façade so that the one-shot CLI, the persistent service
   (mompd), and embedders all run the exact same code — byte-identical
   output is a correctness property the test suite pins. *)

let api_version = 2
let schema_version = Observe.Json.schema_version
let with_schema = Observe.Json.with_schema

module Error = Fault.Ompgpu_error
module Json = Observe.Json
module Trace = Observe.Trace
module Injector = Fault.Injector
module Options = Openmpopt.Pass_manager
module Scheme = Frontend.Codegen
module Builds = Harness.Config
module Runner = Harness.Runner
module Tables = Harness.Tables
module App = Proxyapps.App
module Apps = Proxyapps.Apps

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

module Pipeline = Openmpopt.Pass_manager.Pipeline

module Config = struct
  type t = {
    scheme : Frontend.Codegen.scheme;
    options : Openmpopt.Pass_manager.options option;
    pipeline : Pipeline.t option;
    emit_ir : bool;
    run_sim : bool;
    remarks_only : bool;
    want_stats : bool;
    print_trace : bool;
    inject : Fault.Injector.spec list;
    retries : int;
    backoff_s : float;
    backtraces : bool;
  }

  let default =
    {
      scheme = Frontend.Codegen.Simplified;
      options = None;
      pipeline = None;
      emit_ir = true;
      run_sim = false;
      remarks_only = false;
      want_stats = false;
      print_trace = false;
      inject = [];
      retries = 0;
      backoff_s = 0.05;
      backtraces = false;
    }

  let with_scheme scheme t = { t with scheme }

  (* deprecated (api_version 2): the PR-4 toggle surface; prefer
     [with_pipeline].  [pipeline] wins when both are set. *)
  let optimized ?(options = Openmpopt.Pass_manager.default_options) t =
    { t with options = Some options }

  let with_pipeline pipeline t = { t with pipeline = Some pipeline }

  (* The pipeline this config actually runs: an explicit [pipeline] wins,
     a bare deprecated [options] is mapped via [Pipeline.of_options]
     (byte-identical by construction), [None] means O0. *)
  let pipeline_of t =
    match t.pipeline with
    | Some p -> Some p
    | None -> Option.map Openmpopt.Pass_manager.Pipeline.of_options t.options

  let with_sim t = { t with run_sim = true }
  let with_stats t = { t with want_stats = true }
  let with_trace t = { t with print_trace = true }
  let with_inject inject t = { t with inject }
  let with_retries ?backoff_s retries t =
    { t with retries; backoff_s = Option.value backoff_s ~default:t.backoff_s }

  (* Everything that shapes the compiled bytes, in one stable string.
     [want_stats]/[print_trace] join because they change what is emitted
     (a stats payload, trace lines in diagnostics); [retries]/[backoff_s]
     do not — only successful results are ever cached, and a success's
     bytes do not depend on how many failed attempts preceded it.  The
     injector fingerprint keeps injected and clean compiles apart.

     Optimization identity goes through the *effective pipeline*
     ([pipeline_of]), so a deprecated [optimized] config and an equivalent
     [with_pipeline] config share cache entries — they run the same pass
     sequence and produce the same bytes. *)
  let fingerprint t =
    String.concat ";"
      [
        Frontend.Codegen.scheme_name t.scheme;
        (match pipeline_of t with
        | None -> "noopt"
        | Some p -> Openmpopt.Pass_manager.Pipeline.fingerprint p);
        Fault.Injector.fingerprint (Fault.Injector.create t.inject);
        Printf.sprintf "emit=%b;sim=%b;remarks-only=%b;stats=%b;trace=%b"
          t.emit_ir t.run_sim t.remarks_only t.want_stats t.print_trace;
      ]
end

(* ------------------------------------------------------------------ *)
(* One-source compilation                                              *)
(* ------------------------------------------------------------------ *)

type compiled = {
  exit_code : int;
  output : string;
  diagnostics : string;
  error : Error.t option;
  stats : Observe.Json.t option;
}

(* One attempt: lower, verify, optimize, simulate, collect stats — all
   output buffered, every failure settled into a structured error. *)
let compile_attempt ~(config : Config.t) ~injector ~file src : compiled =
  let out_buf = Buffer.create 1024 in
  let err_buf = Buffer.create 1024 in
  let out = Format.formatter_of_buffer out_buf in
  let err = Format.formatter_of_buffer err_buf in
  let stats = ref None in
  let finish code error =
    Format.pp_print_flush out ();
    Format.pp_print_flush err ();
    {
      exit_code = code;
      output = Buffer.contents out_buf;
      diagnostics = Buffer.contents err_buf;
      error;
      stats = !stats;
    }
  in
  (* Every failure exits through here: one stable diagnostic line, the
     taxonomy's exit code, and (opt-in) the captured backtrace. *)
  let fail (e : Error.t) =
    Fmt.pf err "%s: %s@." file (Error.to_string e);
    (if config.Config.backtraces then
       match e.Error.backtrace with
       | Some bt -> Fmt.pf err "%s@." (String.trim bt)
       | None -> ());
    finish (Error.exit_code e) (Some e)
  in
  let classify ~phase e =
    Harness.Errors.classify ~phase e (Printexc.get_raw_backtrace ())
  in
  match Frontend.Codegen.compile ~scheme:config.Config.scheme ~file src with
  | exception e -> fail (classify ~phase:Error.Lowering e)
  | m -> (
    match Ir.Verify.check m with
    | Result.Error msg ->
      fail (Error.make Error.Verify ~phase:Error.Verifying ("front end: " ^ msg))
    | Result.Ok () -> (
      (* the trace feeds both --trace (human-readable) and the stats payload *)
      let trace =
        if config.Config.print_trace || config.Config.want_stats then
          Some (Observe.Trace.create ())
        else None
      in
      let opt_report = ref None in
      let opt_error = ref None in
      (match Config.pipeline_of config with
      | None -> ()
      | Some pipeline -> (
        match Openmpopt.Pass_manager.run_pipeline ~pipeline ~injector ?trace m with
        | exception e -> opt_error := Some (classify ~phase:Error.Optimizing e)
        | report ->
          opt_report := Some report;
          List.iter
            (fun r -> Fmt.pf err "%s@." (Openmpopt.Remark.to_string r))
            report.Openmpopt.Pass_manager.remarks;
          Fmt.pf err "openmp-opt: %a@." Openmpopt.Pass_manager.pp_report report;
          (match Ir.Verify.check m with
          | Result.Error msg ->
            opt_error :=
              Some
                (Error.make Error.Verify ~phase:Error.Verifying
                   ("after openmp-opt: " ^ msg))
          | Result.Ok () -> ());
          if config.Config.print_trace then
            Option.iter
              (fun tr ->
                Fmt.pf err "openmp-opt trace:@.";
                List.iter
                  (fun e -> Fmt.pf err "  %a@." Observe.Trace.pp_event e)
                  (Observe.Trace.events tr))
              trace));
      match !opt_error with
      | Some e -> fail e
      | None ->
        if config.Config.emit_ir && not config.Config.remarks_only then
          Fmt.pf out "%a" Ir.Printer.pp_module m;
        let sim_result =
          if config.Config.run_sim then begin
            let sim =
              Gpusim.Interp.create ~injector Gpusim.Machine.bench_machine m
            in
            match Gpusim.Interp.run_host sim with
            | exception e -> Result.Error (classify ~phase:Error.Simulating e)
            | () ->
              Fmt.pf out "; kernel cycles: %d@."
                (Gpusim.Interp.total_kernel_cycles sim);
              List.iter
                (fun (s : Gpusim.Interp.launch_stats) ->
                  Fmt.pf out
                    "; %s: cycles=%d regs=%d smem=%dB heap=%dB instrs=%d \
                     barriers=%d atomics=%d div-branches=%d@."
                    s.Gpusim.Interp.kernel_name s.Gpusim.Interp.cycles
                    s.Gpusim.Interp.registers s.Gpusim.Interp.shared_bytes
                    s.Gpusim.Interp.heap_high_water s.Gpusim.Interp.instructions
                    s.Gpusim.Interp.barriers
                    (s.Gpusim.Interp.atomics_global + s.Gpusim.Interp.atomics_shared)
                    s.Gpusim.Interp.divergent_branches)
                sim.Gpusim.Interp.kernel_stats;
              Fmt.pf out "; trace:%a@."
                (Fmt.list ~sep:Fmt.sp Gpusim.Rvalue.pp)
                (Gpusim.Interp.trace_values sim);
              Result.Ok (Some sim)
          end
          else Result.Ok None
        in
        match sim_result with
        | Result.Error e -> fail e
        | Result.Ok sim_result ->
          if config.Config.want_stats then
            stats :=
              Some
                (with_schema
                   (Observe.Json.Obj
                      ([
                         ("file", Observe.Json.String file);
                         ( "scheme",
                           Observe.Json.String
                             (Frontend.Codegen.scheme_name config.Config.scheme)
                         );
                         ( "report",
                           match !opt_report with
                           | Some r -> Openmpopt.Pass_manager.report_to_json r
                           | None -> Observe.Json.Null );
                         ( "passes",
                           match trace with
                           | Some tr -> Observe.Trace.to_json tr
                           | None -> Observe.Json.List [] );
                       ]
                      @
                      match sim_result with
                      | Some sim -> [ ("sim", Gpusim.Stats.json_of_sim sim) ]
                      | None -> [])));
          finish 0 None))

let compile_buffered ?(config = Config.default) ?(file = "<source>") src =
  (* Per-(file, attempt) injector: the coin sequence a source sees does not
     depend on batch order or domain count, and a retry draws fresh coins.
     [stall] exercises the pool watchdog when pool-stall is armed. *)
  let base = Fault.Injector.create config.Config.inject in
  let rec attempt_loop n =
    let injector = Fault.Injector.derive base (Printf.sprintf "%s#%d" file n) in
    Fault.Injector.stall injector;
    let r = compile_attempt ~config ~injector ~file src in
    match r.error with
    | Some e when n < config.Config.retries && Error.is_transient e ->
      Unix.sleepf (config.Config.backoff_s *. float_of_int (1 lsl n));
      attempt_loop (n + 1)
    | _ -> r
  in
  attempt_loop 0

let compile ?config ?file src =
  let r = compile_buffered ?config ?file src in
  match r.error with Some e -> Result.Error e | None -> Result.Ok r

(* ------------------------------------------------------------------ *)
(* Caching                                                             *)
(* ------------------------------------------------------------------ *)

(* v3: v2 lived in bin/mompc.ml and did not cover the stats/trace
   selection (those runs bypassed the disk cache entirely); the service's
   in-memory cache does cache them, so the selection joins the key.
   v4: the file label joins the key.  Diagnostics embed it (remarks,
   error lines), so two compiles of the same source under different
   labels produce different bytes — the conformance corpus caught the
   daemon's warm cache serving one request's file label to another
   request at scale.
   v6: optimization identity moved from the options record's fingerprint
   to the effective pipeline's (api_version 2) — same behavior now maps
   to the same key whether it was requested via the deprecated toggles
   or a first-class pipeline, and explicit pipelines (tiers, custom
   specs) are addressable at all. *)
let cache_version = "mompc-cache-v6"

let cache_key ~file ~config ~source =
  Sched.Cache.key [ cache_version; file; source; Config.fingerprint config ]

let compiled_to_json (r : compiled) =
  Observe.Json.Obj
    ([
       ("code", Observe.Json.Int r.exit_code);
       ("out", Observe.Json.String r.output);
       ("err", Observe.Json.String r.diagnostics);
     ]
    @ (match r.error with
      | Some e -> [ ("error", Error.to_json e) ]
      | None -> [])
    @
    match r.stats with Some s -> [ ("stats", s) ] | None -> [])

let compiled_of_json j =
  match
    ( Option.bind (Observe.Json.member "code" j) Observe.Json.to_int,
      Option.bind (Observe.Json.member "out" j) Observe.Json.to_str,
      Option.bind (Observe.Json.member "err" j) Observe.Json.to_str )
  with
  | Some code, Some out, Some err ->
    (* the structured error does not round-trip as a value (messages and
       kinds do, in the JSON); cached entries are successes anyway *)
    Some
      {
        exit_code = code;
        output = out;
        diagnostics = err;
        error = None;
        stats = Observe.Json.member "stats" j;
      }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The batch driver (mompc FILE...)                                    *)
(* ------------------------------------------------------------------ *)

let errored ~file e =
  {
    exit_code = Error.exit_code e;
    output = "";
    diagnostics = Printf.sprintf "%s: %s\n" file (Error.to_string e);
    error = Some e;
    stats = None;
  }

let compile_files ?(jobs = 1) ?cache_dir ?cache_max_bytes ?cache_max_entries
    ?watchdog_s ?(on_cache_corrupt = fun ~key:_ ~path:_ -> ()) ~config files =
  let base_injector = Fault.Injector.create config.Config.inject in
  let cache =
    (* stats payloads and --trace lines embed wall times: a cached replay
       would be byte-stable but would serve one run's times forever, so
       those runs bypass the disk cache (the in-memory service cache makes
       the opposite choice; see docs/API.md). *)
    if (not config.Config.want_stats) && not config.Config.print_trace then
      Option.map
        (fun dir ->
          Sched.Disk_cache.create ~injector:base_injector
            ~on_corrupt:on_cache_corrupt ?max_bytes:cache_max_bytes
            ?max_entries:cache_max_entries ~dir ())
        cache_dir
    else None
  in
  let one file =
    match In_channel.with_open_text file In_channel.input_all with
    | exception Sys_error msg ->
      errored ~file
        (Error.make Error.Internal ~phase:Error.Driver msg)
    | src -> (
      match cache with
      | None -> compile_buffered ~config ~file src
      | Some cache -> (
        let key = cache_key ~file ~config ~source:src in
        match
          Option.bind (Sched.Disk_cache.find cache ~key) (fun s ->
              match Observe.Json.of_string s with
              | Result.Ok j -> compiled_of_json j
              | Result.Error _ -> None)
        with
        | Some r -> r
        | None ->
          let r = compile_buffered ~config ~file src in
          (* failed compiles are not cached: they are cheap and the user
             is about to edit the file anyway *)
          if r.exit_code = 0 then
            Sched.Disk_cache.store cache ~key
              ~data:(Observe.Json.to_string (compiled_to_json r));
          r))
  in
  if jobs > 1 && List.length files > 1 then
    Sched.Pool.with_pool ~domains:jobs (fun pool ->
        match watchdog_s with
        | None -> Sched.Pool.map_list pool one files
        | Some watchdog_s ->
          (* The guard turns a hung job into a structured Timeout; the
             per-file retry loop already lives inside [compile_buffered],
             so the guard itself does not retry. *)
          Sched.Pool.map_list_guarded pool ~watchdog_s
            (fun ~attempt:_ file -> one file)
            files
          |> List.map2
               (fun file -> function
                 | Result.Ok r -> r
                 | Result.Error (e, bt) ->
                   errored ~file
                     (Harness.Errors.classify ~phase:Error.Scheduling e bt))
               files)
  else List.map one files

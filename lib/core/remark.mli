(** Optimization remarks (paper Section IV-D, Figure 8).

    Remarks carry the OMP1xx identifiers of the upstream implementation;
    [Passed] remarks report performed transformations, [Missed] ones are
    actionable missed opportunities (their messages include the suggested
    source change, e.g. the [ext_spmd_amenable] assumption), and
    [Analysis] remarks add supporting detail. *)

type kind = Passed | Missed | Analysis

type t = {
  id : int;  (** e.g. 110 for OMP110 *)
  kind : kind;
  loc : Support.Loc.t;
  func : string;  (** enclosing function *)
  message : string;
}

val registry : (int * string) list
(** All known remark identifiers with their one-line descriptions. *)

val description : int -> string
(** Description for an id; ["Unknown remark."] for ids outside the registry. *)

val make :
  ?kind:kind -> ?loc:Support.Loc.t -> func:string -> ?detail:string -> int -> t
(** [make ~func id] builds a remark from the registry description; [detail]
    is appended in parentheses (e.g. the capture reason, or a byte count). *)

val pp : Format.formatter -> t -> unit
(** Clang-style rendering:
    [file:line:col: remark: ... \[OMP110\] \[-Rpass=openmp-opt\] (in f)]. *)

val to_string : t -> string

(** A mutable collector threaded through the passes.

    Ownership contract (domain safety): a sink belongs to exactly one
    pipeline run — create a fresh one per job and never share a sink
    between concurrent [Pass_manager.run] invocations.  There is
    deliberately no module-level default sink. *)
type sink

val sink : unit -> sink
val emit : sink -> t -> unit
val all : sink -> t list
(** Remarks in emission order. *)

val count : ?id:int -> ?kind:kind -> sink -> int
(** Number of collected remarks matching the given filters. *)

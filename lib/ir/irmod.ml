(* A MiniIR module: globals plus functions, in declaration order. *)

type global = {
  gname : string;
  gty : Types.t;
  gspace : Types.addrspace;
  mutable ginit : Value.const option;  (* None = zero-initialized *)
  mutable glinkage : Func.linkage;
}

type t = {
  mutable mname : string;
  mutable globals : global list;
  mutable funcs : Func.t list;
}

let create ?(name = "module") () = { mname = name; globals = []; funcs = [] }

let add_func m f =
  if List.exists (fun g -> String.equal g.Func.name f.Func.name) m.funcs then
    Support.Util.failf "Irmod.add_func: duplicate function %s" f.Func.name;
  m.funcs <- m.funcs @ [ f ]

let find_func m name = List.find_opt (fun f -> String.equal f.Func.name name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> Support.Util.failf "Irmod.find_func: no function %s" name

let remove_func m name =
  m.funcs <- List.filter (fun f -> not (String.equal f.Func.name name)) m.funcs

let add_global m g =
  if List.exists (fun g' -> String.equal g'.gname g.gname) m.globals then
    Support.Util.failf "Irmod.add_global: duplicate global %s" g.gname;
  m.globals <- m.globals @ [ g ]

let find_global m name = List.find_opt (fun g -> String.equal g.gname name) m.globals

let kernels m = List.filter Func.is_kernel m.funcs

let defined_funcs m = List.filter (fun f -> not (Func.is_declaration f)) m.funcs

(* Functions whose address is taken somewhere in the module (operand position,
   not direct-call position).  These are the possible targets of indirect
   calls; spurious call edges to them inflate register usage, which is
   exactly the effect the custom state machine rewrite removes. *)
let address_taken_funcs m =
  let taken = Hashtbl.create 16 in
  List.iter
    (fun f ->
      Func.iter_instrs f ~g:(fun _ i ->
          List.iter
            (fun v -> match v with Value.Func n -> Hashtbl.replace taken n () | _ -> ())
            (Instr.operands i)))
    m.funcs;
  List.iter
    (fun g ->
      match g.ginit with
      | Some c -> (
        match c with
        | Value.CInt _ | Value.CFloat _ | Value.CNull _ | Value.CUndef _ -> ())
      | None -> ())
    m.globals;
  List.filter (fun f -> Hashtbl.mem taken f.Func.name) m.funcs

(* A fresh name not yet used by any function or global. *)
let fresh_name m base =
  let exists n = find_func m n <> None || find_global m n <> None in
  if not (exists base) then base
  else
    let rec loop i =
      let n = Printf.sprintf "%s.%d" base i in
      if exists n then loop (i + 1) else n
    in
    loop 1

(** Renderers for the evaluation tables and figures.  Each returns the rows
    the paper reports; EXPERIMENTS.md records paper-vs-measured.

    Every renderer collects its measurements through {!Runner.run_batch}
    first and renders from the ordered results into a buffer local to the
    call, so a table is byte-identical whether it was produced sequentially
    or on a [pool] at any [-j], and concurrent renderers cannot corrupt
    each other's output.  [cache] shares pipeline results across tables
    that measure the same (module, options, machine, scale) cell. *)

val fig9 :
  ?machine:Gpusim.Machine.t ->
  ?scale:Proxyapps.App.scale ->
  ?pool:Sched.Pool.t ->
  ?cache:Runner.outcome Sched.Cache.t ->
  unit ->
  string
(** Figure 9: optimization opportunities and remarks per kernel. *)

val fig10 :
  ?machine:Gpusim.Machine.t ->
  ?scale:Proxyapps.App.scale ->
  ?pool:Sched.Pool.t ->
  ?cache:Runner.outcome Sched.Cache.t ->
  unit ->
  string
(** Figure 10: kernel cycles, shared memory, registers per build. *)

val check_consistency : Runner.measurement list -> string list
(** Cross-check the application checksum across configurations; returns a
    MISMATCH line per disagreement (empty = all consistent). *)

val fig11 :
  ?machine:Gpusim.Machine.t ->
  ?scale:Proxyapps.App.scale ->
  ?pool:Sched.Pool.t ->
  ?cache:Runner.outcome Sched.Cache.t ->
  Proxyapps.App.t ->
  string
(** One application's Figure 11 plot (relative to LLVM 12). *)

val fig11_all :
  ?machine:Gpusim.Machine.t ->
  ?scale:Proxyapps.App.scale ->
  ?pool:Sched.Pool.t ->
  ?cache:Runner.outcome Sched.Cache.t ->
  unit ->
  string

val pass_breakdown :
  ?machine:Gpusim.Machine.t -> ?scale:Proxyapps.App.scale -> Proxyapps.App.t -> string
(** Per-round/per-pass pipeline breakdown for one application under the
    default developer build: wall time, IR deltas and report-counter
    increments, from the [Observe.Trace] events.  Trace times are wall
    times, so this table is not expected to be reproducible byte-for-byte
    and takes no pool. *)

val pass_breakdown_all :
  ?machine:Gpusim.Machine.t -> ?scale:Proxyapps.App.scale -> unit -> string

val ablations :
  ?machine:Gpusim.Machine.t ->
  ?scale:Proxyapps.App.scale ->
  ?pool:Sched.Pool.t ->
  ?cache:Runner.outcome Sched.Cache.t ->
  unit ->
  string
(** The DESIGN.md ablations: guard grouping, internalization, heap-to-shared. *)

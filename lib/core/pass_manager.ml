(* The OpenMPOpt pass driver.

   Mirrors the paper's pipeline: aggressive internalization first (module
   pass, "run early on the entire module"), then rounds of deglobalization,
   SPMDzation, state-machine rewriting, runtime-call folding, and generic
   cleanup ("run ... again late on each strongly connected component"; our
   rounds iterate the whole module, which subsumes the SCC scheduling at our
   module sizes).

   The disable flags match the artifact's LLVM flags:
   openmp-opt-disable-{spmdization, deglobalization, state-machine-rewrite,
   folding}. *)

type options = {
  disable_spmdization : bool;
  disable_deglobalization : bool;
  disable_state_machine_rewrite : bool;
  disable_folding : bool;
  disable_internalization : bool;  (* ablation *)
  disable_guard_grouping : bool;  (* ablation: Fig. 7 off *)
  disable_heap_to_shared : bool;  (* isolate plain HeapToStack (Fig. 11d) *)
  rounds : int;
}

let default_options =
  {
    disable_spmdization = false;
    disable_deglobalization = false;
    disable_state_machine_rewrite = false;
    disable_folding = false;
    disable_internalization = false;
    disable_guard_grouping = false;
    disable_heap_to_shared = false;
    rounds = 3;
  }

(* Stable, human-readable identity of an option set.  Part of the content
   address of a pipeline job (Sched.Cache): two jobs share a cache entry only
   if their input IR text AND this fingerprint agree, so every field must
   appear here.  Update this when adding an option field. *)
let options_fingerprint (o : options) =
  Printf.sprintf
    "spmd=%b;deglob=%b;csm=%b;fold=%b;internalize=%b;group=%b;h2shared=%b;rounds=%d"
    (not o.disable_spmdization)
    (not o.disable_deglobalization)
    (not o.disable_state_machine_rewrite)
    (not o.disable_folding)
    (not o.disable_internalization)
    (not o.disable_guard_grouping)
    (not o.disable_heap_to_shared)
    o.rounds

let all_disabled =
  {
    default_options with
    disable_spmdization = true;
    disable_deglobalization = true;
    disable_state_machine_rewrite = true;
    disable_folding = true;
    disable_internalization = true;
  }

type report = {
  remarks : Remark.t list;
  internalized : int;
  heap_to_stack : int;
  heap_to_shared : int;
  shared_bytes : int;
  spmdized : int;
  guards : int;
  custom_state_machines : int;
  csm_fallbacks : int;
  folds_exec_mode : int;
  folds_parallel_level : int;
  folds_thread_exec : int;
  folds_launch_bounds : int;
  deduplicated_calls : int;
  dead_regions : int;
}

let empty_report =
  {
    remarks = [];
    internalized = 0;
    heap_to_stack = 0;
    heap_to_shared = 0;
    shared_bytes = 0;
    spmdized = 0;
    guards = 0;
    custom_state_machines = 0;
    csm_fallbacks = 0;
    folds_exec_mode = 0;
    folds_parallel_level = 0;
    folds_thread_exec = 0;
    folds_launch_bounds = 0;
    deduplicated_calls = 0;
    dead_regions = 0;
  }

(* The int fields of the report, as named counters.  Order is stable; the
   trace layer diffs two of these lists to get per-pass increments, and the
   JSON export reuses the names as keys. *)
let counters_of_report (r : report) =
  [
    ("internalized", r.internalized);
    ("heap_to_stack", r.heap_to_stack);
    ("heap_to_shared", r.heap_to_shared);
    ("shared_bytes", r.shared_bytes);
    ("spmdized", r.spmdized);
    ("guards", r.guards);
    ("custom_state_machines", r.custom_state_machines);
    ("csm_fallbacks", r.csm_fallbacks);
    ("folds_exec_mode", r.folds_exec_mode);
    ("folds_parallel_level", r.folds_parallel_level);
    ("folds_thread_exec", r.folds_thread_exec);
    ("folds_launch_bounds", r.folds_launch_bounds);
    ("deduplicated_calls", r.deduplicated_calls);
    ("dead_regions", r.dead_regions);
  ]

let report_to_json (r : report) =
  let kind_name = function
    | Remark.Passed -> "passed"
    | Remark.Missed -> "missed"
    | Remark.Analysis -> "analysis"
  in
  Observe.Json.Obj
    (List.map (fun (k, v) -> (k, Observe.Json.Int v)) (counters_of_report r)
    @ [
        ( "remarks",
          Observe.Json.List
            (List.map
               (fun (rm : Remark.t) ->
                 Observe.Json.Obj
                   [
                     ("id", Observe.Json.Int rm.Remark.id);
                     ("kind", Observe.Json.String (kind_name rm.Remark.kind));
                     ("func", Observe.Json.String rm.Remark.func);
                     ( "loc",
                       Observe.Json.String (Support.Loc.to_string rm.Remark.loc) );
                     ("message", Observe.Json.String rm.Remark.message);
                   ])
               r.remarks) );
      ])

let pp_report ppf r =
  Fmt.pf ppf
    "internalized=%d h2s=%d h2shared=%d(%dB) spmdized=%d(guards=%d) csm=%d(fallback=%d) \
     folds: em=%d pl=%d te=%d launch=%d, %d remarks"
    r.internalized r.heap_to_stack r.heap_to_shared r.shared_bytes r.spmdized r.guards
    r.custom_state_machines r.csm_fallbacks r.folds_exec_mode r.folds_parallel_level
    r.folds_thread_exec r.folds_launch_bounds (List.length r.remarks);
  if r.deduplicated_calls > 0 || r.dead_regions > 0 then
    Fmt.pf ppf " dedup=%d dead-regions=%d" r.deduplicated_calls r.dead_regions

(* OMP100: calls to __kmpc-prefixed functions the registry does not know
   are either a runtime version mismatch or a user error; flag them, since
   every analysis must treat them as opaque. *)
let flag_unknown_runtime_calls (m : Ir.Irmod.t) (sink : Remark.sink) =
  List.iter
    (fun f ->
      Ir.Func.iter_instrs f ~g:(fun _ i ->
          match i.Ir.Instr.kind with
          | Ir.Instr.Call (_, Ir.Instr.Direct name, _)
            when String.length name >= 7
                 && String.sub name 0 7 = "__kmpc_"
                 && not (Devrt.Registry.is_runtime_fn name) ->
            Remark.emit sink
              (Remark.make ~kind:Remark.Analysis ~loc:i.Ir.Instr.loc ~func:f.Ir.Func.name
                 100 ~detail:("@" ^ name))
          | _ -> ()))
    (Ir.Irmod.defined_funcs m)

let run ?(options = default_options) ?(injector = Fault.Injector.none) ?trace ?sink
    (m : Ir.Irmod.t) : report =
  (* Every mutable artifact of one pipeline run — the remark sink, the
     counter record and the optional trace — is local to this invocation (or
     injected by the job context that owns it), never module-level state:
     the batch scheduler runs many pipelines concurrently on separate
     domains and their remarks/counters must not bleed into each other. *)
  let sink = match sink with Some s -> s | None -> Remark.sink () in
  let report = ref empty_report in
  (* Wrap one pass invocation: when a trace is attached, snapshot the module
     and the counters around [f] and record the deltas as one event.  The
     analyses a pass recomputes run inside the window, so the event's time
     includes them (that is the cost the pipeline actually pays). *)
  let instrument ~round ~pass f =
    (* the Pass_crash fault site lives here so every executed pass — traced
       or not — is a potential crash point with a precise (pass, round) id *)
    let f () =
      if Fault.Injector.fire injector Fault.Injector.Pass_crash then
        Fault.Ompgpu_error.raise_error
          (Fault.Ompgpu_error.Pass_crash { pass; round })
          ~phase:Fault.Ompgpu_error.Optimizing
          "injected crash in pass %s (round %d)" pass round;
      f ()
    in
    match trace with
    | None -> f ()
    | Some tr ->
      let before = Observe.Trace.snapshot m in
      let c0 = counters_of_report !report in
      let remarks0 = List.length (Remark.all sink) in
      let t0 = Sys.time () in
      f ();
      let time_s = Sys.time () -. t0 in
      let after = Observe.Trace.snapshot m in
      let counters =
        List.map2
          (fun (k, old_v) (_, new_v) -> (k, new_v - old_v))
          c0 (counters_of_report !report)
        @ [ ("remarks", List.length (Remark.all sink) - remarks0) ]
      in
      ignore (Observe.Trace.record_pass tr ~round ~pass ~time_s ~before ~after ~counters)
  in
  flag_unknown_runtime_calls m sink;
  if not options.disable_internalization then
    instrument ~round:0 ~pass:Internalize.pass_name (fun () ->
        report := { !report with internalized = Internalize.run m sink });
  let add_folds counts =
    report :=
      {
        !report with
        folds_exec_mode = !report.folds_exec_mode + counts.Fold.exec_mode;
        folds_parallel_level = !report.folds_parallel_level + counts.Fold.parallel_level;
        folds_thread_exec = !report.folds_thread_exec + counts.Fold.thread_exec;
        folds_launch_bounds = !report.folds_launch_bounds + counts.Fold.launch_bounds;
      }
  in
  for round = 1 to options.rounds do
    let domains () =
      let cg = Analysis.Callgraph.compute m in
      Analysis.Exec_domain.compute m cg
    in
    let instrument ~pass f = instrument ~round ~pass f in
    (* mode-invariant folds first: pruning the sequential fallbacks before
       deglobalization avoids double-counted allocation sites *)
    if not options.disable_folding then begin
      instrument ~pass:(Fold.pass_name ^ "-early") (fun () ->
          add_folds (Fold.run ~fold_exec_mode:false m (domains ())));
      instrument ~pass:Simplify.pass_name (fun () -> ignore (Simplify.run m))
    end;
    if not options.disable_deglobalization then
      instrument ~pass:Deglobalize.pass_name (fun () ->
          let res =
            Deglobalize.run m (domains ()) sink
              ~heap_to_shared:(not options.disable_heap_to_shared)
          in
          report :=
            {
              !report with
              heap_to_stack = !report.heap_to_stack + res.Deglobalize.to_stack;
              heap_to_shared = !report.heap_to_shared + res.Deglobalize.to_shared;
              shared_bytes = !report.shared_bytes + res.Deglobalize.shared_bytes;
            });
    (* domains are recomputed per pass: deglobalization changes instructions *)
    if not options.disable_spmdization then
      instrument ~pass:Spmdization.pass_name (fun () ->
          let converted, guards =
            Spmdization.run m (domains ()) sink
              ~grouping:(not options.disable_guard_grouping)
          in
          report :=
            {
              !report with
              spmdized = !report.spmdized + converted;
              guards = !report.guards + guards;
            });
    if not options.disable_state_machine_rewrite then
      instrument ~pass:State_machine.pass_name (fun () ->
          let rewritten, fallbacks = State_machine.run m sink in
          report :=
            {
              !report with
              custom_state_machines = !report.custom_state_machines + rewritten;
              csm_fallbacks = !report.csm_fallbacks + fallbacks;
            });
    if not options.disable_folding then begin
      instrument ~pass:(Fold.pass_name ^ "-late") (fun () ->
          add_folds (Fold.run ~fold_exec_mode:true m (domains ())));
      (* deduplicate surviving runtime queries and drop effect-free regions *)
      instrument ~pass:Dedup.pass_name (fun () ->
          let deduped = Dedup.dedup_runtime_calls m sink in
          report :=
            { !report with deduplicated_calls = !report.deduplicated_calls + deduped });
      instrument ~pass:"dead-regions" (fun () ->
          let dead = Dedup.delete_dead_regions m sink in
          report := { !report with dead_regions = !report.dead_regions + dead })
    end;
    instrument ~pass:Simplify.pass_name (fun () -> ignore (Simplify.run m))
  done;
  (* analyses re-run each round and re-emit the same findings: dedupe *)
  let remarks =
    List.sort_uniq
      (fun (a : Remark.t) b ->
        compare
          (a.Remark.id, a.Remark.func, Support.Loc.to_string a.Remark.loc, a.Remark.message)
          (b.Remark.id, b.Remark.func, Support.Loc.to_string b.Remark.loc, b.Remark.message))
      (Remark.all sink)
  in
  { !report with remarks }

module E = Fault.Ompgpu_error

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     Unix.close fd;
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try flush t.oc with Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_connection ~socket_path f =
  let t = connect ~socket_path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let transport_error fmt =
  Printf.ksprintf (fun m -> Error (E.make E.Internal ~phase:E.Serving m)) fmt

let roundtrip_json t j =
  Protocol.write_message t.oc j;
  match Protocol.read_message t.ic with
  | None -> transport_error "connection closed before a response arrived"
  | Some (Error e) -> Error e
  | Some (Ok reply) -> Ok reply

let roundtrip t request =
  match roundtrip_json t (Protocol.request_to_json request) with
  | Error e -> Error e
  | Ok j -> (
    match Protocol.response_of_json j with
    | Ok r -> Ok r
    | Error msg -> transport_error "undecodable response: %s" msg)

(* A [Rejected] response is the daemon speaking the taxonomy; surface its
   error directly.  Any other unexpected shape is a protocol breakdown. *)
let rejected_or_mismatch ~expected = function
  | Protocol.Rejected { error; _ } -> Error error
  | Protocol.Compiled _ -> transport_error "expected a %s reply, got a compile result" expected
  | Protocol.Stats_reply _ -> transport_error "expected a %s reply, got stats" expected
  | Protocol.Shutdown_ack _ ->
    transport_error "expected a %s reply, got a shutdown acknowledgement" expected

let compile t ?(id = "c0") ?(file = "<service>") ~config source =
  match roundtrip t (Protocol.Compile { id; file; source; config }) with
  | Error e -> Error e
  | Ok (Protocol.Compiled { result; _ }) -> Ok result
  | Ok other -> rejected_or_mismatch ~expected:"compile" other

let stats t ?(id = "s0") () =
  match roundtrip t (Protocol.Stats { id }) with
  | Error e -> Error e
  | Ok (Protocol.Stats_reply { stats; _ }) -> Ok stats
  | Ok other -> rejected_or_mismatch ~expected:"stats" other

let shutdown t ?(id = "q0") () =
  match roundtrip t (Protocol.Shutdown { id }) with
  | Error e -> Error e
  | Ok (Protocol.Shutdown_ack _) -> Ok ()
  | Ok other -> rejected_or_mismatch ~expected:"shutdown" other

(** Backward liveness of virtual registers and the derived register-pressure
    estimate that feeds the simulator's register statistic (Figure 10). *)

type block_liveness = {
  live_in : Support.Util.Int_set.t;
  live_out : Support.Util.Int_set.t;
}

val compute : Func.t -> block_liveness Support.Util.String_map.t
(** Per-block liveness, keyed by label. *)

val max_pressure : Func.t -> int
(** Maximum number of simultaneously live registers at any program point
    (at least the parameter count; 0 for declarations). *)

(** A fixed-size work-stealing job scheduler on OCaml 5 [Domain]s.

    The pool owns [domains] worker domains.  Each worker has its own deque;
    submitted jobs are distributed round-robin, a worker services its own
    deque newest-first (LIFO, for locality) and steals the oldest job
    (FIFO) from a sibling when its own deque is empty.  The pending-job
    count is bounded: [submit] blocks once [queue_capacity] jobs are
    queued, giving natural backpressure to producers.

    Domain-safety contract for jobs: a job must not touch mutable state
    shared with another job (each compile/simulate job builds its own IR
    module, remark sink and trace; see docs/SCHEDULER.md).  Jobs must not
    themselves call [submit]/[await] on the same pool — the pool is a flat
    worker pool, not a nested fork-join runtime. *)

type t

type 'a future

(** Lifetime statistics of a pool (monotonic; read with {!stats}). *)
type stats = {
  submitted : int;  (** jobs accepted by {!submit} *)
  executed : int;  (** jobs completed (successfully or with an exception) *)
  stolen : int;  (** jobs a worker took from a sibling's deque *)
  max_pending : int;  (** high-water mark of the bounded queue *)
}

val create : ?queue_capacity:int -> domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] worker domains (at least 1).
    [queue_capacity] bounds the number of queued-but-not-started jobs
    (default [4 * domains]; at least 1). *)

val domain_count : t -> int

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job.  Blocks while the queue is at capacity.  Raises
    [Invalid_argument] if the pool has been shut down. *)

val await : 'a future -> 'a
(** Wait for a job's result.  Re-raises the job's exception (with its
    backtrace) if it failed. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f xs] runs [f x] for every element as pool jobs and returns
    the results in input order — deterministic output for deterministic
    [f], whatever the execution interleaving.  Equivalent to
    [List.map f xs] observationally when [f] is pure per-element. *)

val stats : t -> stats

val shutdown : t -> unit
(** Drain every queued job, then join the worker domains.  Idempotent. *)

val with_pool : ?queue_capacity:int -> domains:int -> (t -> 'a) -> 'a
(** [create], run the callback, always [shutdown]. *)
